// Package robustscaler is a QoS-aware proactive autoscaler for
// scaling-per-query workloads (container registries, CI/CD runners,
// FaaS-style services where every query gets its own instance). It
// reproduces the system described in "RobustScaler: QoS-Aware Autoscaling
// for Complex Workloads" (ICDE 2022):
//
//   - query arrivals are modeled as a non-homogeneous Poisson process
//     whose log-intensity is trained with a periodicity-regularized
//     likelihood via ADMM (robust to noise, outliers and missing data);
//   - the fitted intensity is extrapolated to forecast upcoming traffic;
//   - instance creation times are chosen by stochastically constrained
//     optimization, guaranteeing a target hitting probability, expected
//     response time, or cost budget per query.
//
// # Quick start (library)
//
//	series := robustscaler.CountsFromArrivals(arrivals, 0, end, 60)
//	model, err := robustscaler.Train(series, robustscaler.DefaultTrainConfig())
//	policy, err := robustscaler.NewHPPolicy(model, 0.9, robustscaler.FixedPending(13), 1, 0)
//	result, err := robustscaler.Replay(queries, policy, robustscaler.ReplayConfig{
//	    Start: trainEnd, End: end, Pending: robustscaler.FixedPending(13), Tick: 1,
//	})
//	fmt.Println(result.HitRate(), result.RelativeCost())
//
// # Quick start (serving many workloads)
//
// The scalerd daemon (cmd/scalerd) serves any number of independent
// workloads from one process — each workload gets its own arrival
// history, model and plans, refreshed by a background retraining pool:
//
//	scalerd -listen :8080 -retrain-every 1800 -retrain-workers 4
//
//	curl -XPOST :8080/v1/workloads/registry-eu/arrivals -d '{"timestamps":[...]}'
//	curl -XPOST :8080/v1/workloads/registry-eu/train
//	curl ':8080/v1/workloads/registry-eu/plan?variant=hp&target=0.9&horizon=600'
//	curl ':8080/v1/workloads/ci-runners/forecast?from=0&to=3600'
//	curl :8080/v1/workloads
//
// Embedders can skip HTTP and drive internal/engine directly: an
// engine.Registry maps workload IDs to per-workload Engines (ingest →
// train → plan) with sharded locking and a RetrainAll worker-pool sweep.
//
// The subsystems (NHPP trainer, decision solvers, simulator, baseline
// policies, trace generators) are exposed under internal/ and re-exported
// here only where a downstream user needs them.
package robustscaler

import (
	"fmt"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/periodicity"
	"robustscaler/internal/scaler"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
	"robustscaler/internal/timeseries"
)

// Query is one unit of work: arrival epoch and service duration, seconds.
type Query = sim.Query

// Result carries the QoS and cost metrics of a replay; see the methods on
// sim.Result (HitRate, RTAvg, RTQuantile, RelativeCost, ...).
type Result = sim.Result

// Policy is the autoscaling policy interface accepted by Replay.
type Policy = sim.Autoscaler

// PendingDist describes instance startup (pending) times.
type PendingDist = stats.Dist

// FixedPending returns a deterministic pending-time distribution — the
// fixed pod startup time of the paper's experiments.
func FixedPending(seconds float64) PendingDist {
	return stats.Deterministic{Value: seconds}
}

// ExpPending returns an exponentially distributed pending time with the
// given mean, for environments with variable cold-start latency.
func ExpPending(mean float64) PendingDist {
	return stats.Exponential{Mean: mean}
}

// CountsFromArrivals bins raw arrival timestamps into a count series with
// bin width dt covering [start, end) — the input format of Train.
func CountsFromArrivals(arrivals []float64, start, end, dt float64) *timeseries.Series {
	return timeseries.FromArrivals(arrivals, start, end, dt)
}

// TrainConfig controls model training.
type TrainConfig struct {
	// WinsorK clips count outliers beyond K robust standard deviations
	// before fitting; ≤0 disables. This is the robust-decomposition guard
	// in front of the likelihood.
	WinsorK float64
	// DetectPeriodicity runs the periodicity detector and enables the DL
	// regularization term when a cycle is found.
	DetectPeriodicity bool
	// Periodicity tunes the detector (used when DetectPeriodicity).
	Periodicity periodicity.Options
	// Fit tunes the ADMM trainer. Fit.Period is overwritten by detection
	// when DetectPeriodicity is on.
	Fit nhpp.FitConfig
}

// DefaultTrainConfig returns the configuration used across the paper
// experiments: outlier clipping at 6 robust sigmas, periodicity detection
// with hour-scale aggregation, and the default ADMM settings.
func DefaultTrainConfig() TrainConfig {
	p := periodicity.DefaultOptions()
	return TrainConfig{
		WinsorK:           6,
		DetectPeriodicity: true,
		Periodicity:       p,
		Fit:               nhpp.DefaultFitConfig(),
	}
}

// Model is a trained arrival model: an NHPP whose intensity extrapolates
// periodically beyond the training window. It implements the forecast
// role of the pipeline and is the input to the policy constructors.
type Model struct {
	// NHPP is the fitted process; it satisfies the intensity interface
	// used by the decision solvers.
	NHPP *nhpp.Model
	// PeriodBins is the detected period in training bins (0 = none).
	PeriodBins int
	// PeriodSeconds is the detected period in seconds (0 = none).
	PeriodSeconds float64
	// FitStats reports ADMM convergence diagnostics.
	FitStats nhpp.FitStats
}

// Train fits the NHPP arrival model to a count series, running the full
// pipeline of the paper's Fig. 2: periodicity detection → regularized
// likelihood → ADMM.
func Train(counts *timeseries.Series, cfg TrainConfig) (*Model, error) {
	return TrainWarm(counts, cfg, nil)
}

// TrainWarm is Train with an optional warm start: warm is a previous
// model's ADMM solution (Model.NHPP.WarmState()), used as the starting
// iterate when it is compatible with this fit's grid, detected period
// and penalties. Incompatible or nil warm states silently run cold;
// Model.FitStats.WarmStarted reports which path ran. Training is
// strictly convex, so warm and cold starts agree up to the solver
// tolerance — warm starting changes the cost of a refit, not its result.
func TrainWarm(counts *timeseries.Series, cfg TrainConfig, warm *nhpp.WarmState) (*Model, error) {
	if counts == nil || counts.Len() == 0 {
		return nil, fmt.Errorf("robustscaler: empty count series")
	}
	// Detect periodicity first (the detector clips outliers internally),
	// then apply the seasonal-aware robust clipping: one-off anomalies are
	// removed relative to the same phase of other cycles, while recurring
	// spikes — legitimate load the autoscaler must provision for — are
	// preserved.
	fit := cfg.Fit
	if cfg.DetectPeriodicity {
		if res, ok := periodicity.Detect(counts, cfg.Periodicity); ok {
			fit.Period = res.Period
		} else {
			fit.Period = 0
		}
	}
	work := counts.Clone()
	if cfg.WinsorK > 0 {
		if fit.Period > 0 {
			work.WinsorizeMADSeasonal(fit.Period, cfg.WinsorK)
		} else {
			work.WinsorizeMAD(cfg.WinsorK)
		}
	}
	m, st, err := nhpp.FitWarm(work.Start, work.Dt, work.Values, fit, warm)
	if err != nil {
		return nil, fmt.Errorf("robustscaler: training failed: %w", err)
	}
	out := &Model{NHPP: m, PeriodBins: m.Period, FitStats: st}
	if m.Period > 0 {
		out.PeriodSeconds = float64(m.Period) * work.Dt
	}
	return out, nil
}

// Rate returns the modeled (or extrapolated) intensity λ(t), queries/s.
func (m *Model) Rate(t float64) float64 { return m.NHPP.Rate(t) }

// NewHPPolicy builds a RobustScaler-HP policy targeting hitting
// probability target ∈ (0,1), with the given pending-time distribution,
// planning window Δ (seconds) and RNG seed.
func NewHPPolicy(m *Model, target float64, pending PendingDist, delta float64, seed int64) (Policy, error) {
	if m == nil {
		return nil, fmt.Errorf("robustscaler: nil model")
	}
	return scaler.NewRobustScaler(m.NHPP, scaler.RobustConfig{
		Variant:    scaler.HP,
		Alpha:      1 - target,
		Tau:        pending,
		PlanWindow: delta,
		Seed:       seed,
	})
}

// NewRTPolicy builds a RobustScaler-RT policy: waitBudget is the allowed
// expected waiting time d − µs (seconds, net of processing).
func NewRTPolicy(m *Model, waitBudget float64, pending PendingDist, delta float64, seed int64) (Policy, error) {
	if m == nil {
		return nil, fmt.Errorf("robustscaler: nil model")
	}
	return scaler.NewRobustScaler(m.NHPP, scaler.RobustConfig{
		Variant:    scaler.RT,
		RTTarget:   waitBudget,
		Tau:        pending,
		PlanWindow: delta,
		Seed:       seed,
	})
}

// NewCostPolicy builds a RobustScaler-cost policy: idleBudget is the
// allowed expected idle time per instance B − µτ − µs (seconds).
func NewCostPolicy(m *Model, idleBudget float64, pending PendingDist, delta float64, seed int64) (Policy, error) {
	if m == nil {
		return nil, fmt.Errorf("robustscaler: nil model")
	}
	return scaler.NewRobustScaler(m.NHPP, scaler.RobustConfig{
		Variant:    scaler.Cost,
		CostBudget: idleBudget,
		Tau:        pending,
		PlanWindow: delta,
		Seed:       seed,
	})
}

// NewBackupPool returns the Backup Pool baseline with pool size b
// (b = 0 is pure reactive scaling).
func NewBackupPool(b int) Policy { return &scaler.BP{B: b} }

// NewAdaptiveBackupPool returns the Adaptive Backup Pool baseline with
// the given QPS multiplier.
func NewAdaptiveBackupPool(factor float64) Policy { return scaler.NewAdapBP(factor) }

// ReplayConfig configures a trace replay.
type ReplayConfig struct {
	// Start and End bound the replayed time range, seconds.
	Start, End float64
	// Pending draws instance startup times.
	Pending PendingDist
	// MeanPending µτ is used for the reactive-baseline cost; when 0 it is
	// taken from Pending's median.
	MeanPending float64
	// Tick is the planning interval Δ in seconds (0 disables ticks).
	Tick float64
	// Seed drives pending-time draws.
	Seed int64
	// MeasureDecisionLatency enables the real-environment model: planner
	// wall-clock time delays when creations take effect.
	MeasureDecisionLatency bool
	// ActuationLatency adds a fixed delay (seconds) to creations when
	// MeasureDecisionLatency is on.
	ActuationLatency float64
}

// Replay runs the policy against the queries (sorted by arrival) and
// returns the QoS/cost metrics.
func Replay(queries []Query, policy Policy, cfg ReplayConfig) (*Result, error) {
	if cfg.Pending == nil {
		return nil, fmt.Errorf("robustscaler: ReplayConfig.Pending is required")
	}
	mp := cfg.MeanPending
	if mp == 0 {
		mp = cfg.Pending.Quantile(0.5)
	}
	return sim.Run(queries, policy, sim.Config{
		Start:                  cfg.Start,
		End:                    cfg.End,
		PendingDist:            cfg.Pending,
		MeanPending:            mp,
		TickInterval:           cfg.Tick,
		Seed:                   cfg.Seed,
		MeasureDecisionLatency: cfg.MeasureDecisionLatency,
		ActuationLatency:       cfg.ActuationLatency,
	})
}
