// Package gen is the workload-generator corpus: a family of seedable,
// deterministic traffic generators covering the arrival shapes the
// paper's evaluation cares about — multi-period diurnal/weekly sinusoid
// mixes, flash crowds (sudden spike plus decay), heavy-tailed bursts
// (Pareto inter-arrival and service times), regime changes that should
// trip retraining, and compositions of all of the above. The
// closed-loop harness in internal/scenario replays these through the
// real ingest → train → plan pipeline, so an optimization that breaks
// one traffic shape fails a committed envelope instead of shipping.
//
// Every generator is a pure function of (its parameters, the seed):
// the same seed always yields the identical trace, byte for byte. No
// generator touches the global math/rand state — each call builds its
// own rand.Rand from the seed, and composite generators derive
// per-part sub-seeds with a splitmix64 step so parts stay independent
// yet reproducible.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
	"robustscaler/internal/trace"
)

// Day and Week are the calendar periods (seconds) the corpus shapes are
// built from.
const (
	Hour = 3600.0
	Day  = 86400.0
	Week = 7 * Day
)

// Frame is the time frame and per-query scale every generator shares:
// the generated span, its train/test split, the instance startup scale
// and the service-time distribution attached to each query.
type Frame struct {
	// Start, End bound the generated span, seconds.
	Start, End float64
	// TrainEnd splits training data [Start, TrainEnd) from test data
	// [TrainEnd, End).
	TrainEnd float64
	// MeanPending is the instance startup time µτ (seconds) scenarios
	// replay with.
	MeanPending float64
	// Service draws per-query processing times; nil means a fixed
	// MeanService.
	Service stats.Dist
	// MeanService documents the average processing time µs, used for
	// the reactive-baseline cost.
	MeanService float64
}

// Validate rejects unusable frames.
func (f Frame) Validate() error {
	if f.End <= f.Start {
		return fmt.Errorf("gen: empty frame [%g, %g)", f.Start, f.End)
	}
	if f.TrainEnd <= f.Start || f.TrainEnd > f.End {
		return fmt.Errorf("gen: train split %g outside (%g, %g]", f.TrainEnd, f.Start, f.End)
	}
	if f.MeanPending < 0 {
		return fmt.Errorf("gen: negative pending %g", f.MeanPending)
	}
	return nil
}

// service returns the frame's service-time distribution.
func (f Frame) service() stats.Dist {
	if f.Service != nil {
		return f.Service
	}
	s := f.MeanService
	if s <= 0 {
		s = 1
	}
	return stats.Deterministic{Value: s}
}

// Generator produces one workload shape. Implementations must be
// deterministic under seed: Generate(seed) twice yields identical
// query slices.
type Generator interface {
	// Name identifies the generator in corpus tables and scorecards.
	Name() string
	// Frame returns the generated span and per-query scale.
	Frame() Frame
	// Generate draws the trace for the seed, sorted by arrival.
	Generate(seed int64) []sim.Query
}

// Intensities is implemented by generators whose ground-truth arrival
// intensity is closed-form (everything except the heavy-tailed renewal
// process), e.g. for accuracy metrics against the truth.
type Intensities interface {
	// Intensity returns the exact λ(t) the generator samples from.
	Intensity() nhpp.Intensity
}

// Trace materializes a generator into a replayable trace.Trace carrying
// the frame's split and scale metadata.
func Trace(g Generator, seed int64) *trace.Trace {
	f := g.Frame()
	return &trace.Trace{
		Name:        g.Name(),
		Queries:     g.Generate(seed),
		Start:       f.Start,
		End:         f.End,
		TrainEnd:    f.TrainEnd,
		MeanPending: f.MeanPending,
		MeanService: f.MeanService,
	}
}

// splitmix64 is the sub-seed derivation step: one application per part
// index keeps composite parts on independent, reproducible streams
// without any shared-state hand-off.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// subSeed derives the i-th child seed of seed.
func subSeed(seed int64, i int) int64 {
	return int64(splitmix64(uint64(seed) + uint64(i)*0x9e3779b97f4a7c15))
}

// fromIntensity draws an NHPP trace from λ(t) and attaches service
// times, all from one seeded stream.
func fromIntensity(f Frame, in nhpp.Intensity, seed int64) []sim.Query {
	rng := rand.New(rand.NewSource(seed))
	arrivals := nhpp.Simulate(rng, in, f.Start, f.End)
	svc := f.service()
	qs := make([]sim.Query, len(arrivals))
	for i, a := range arrivals {
		qs[i] = sim.Query{Arrival: a, Service: positive(svc.Sample(rng))}
	}
	return qs
}

// positive floors service draws at a microsecond; trace validation
// rejects non-positive service times.
func positive(v float64) float64 {
	if v < 1e-6 {
		return 1e-6
	}
	return v
}

// funcIntensity wraps a closed-form rate into the Intensity interface
// with an integration grid sized for the corpus scales.
func funcIntensity(f Frame, rate func(t float64) float64) nhpp.Intensity {
	span := f.End - f.Start
	step := span / 4096
	if step > 60 {
		step = 60
	}
	if step < 1 {
		step = 1
	}
	return nhpp.Func{F: rate, Step: step, MaxHorizon: 2 * span}
}

// mergeQueries merges per-part query streams (each sorted) into one
// sorted stream — the superposition of the part processes.
func mergeQueries(parts [][]sim.Query) []sim.Query {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]sim.Query, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out
}

// clampRate floors an intensity at a small positive level: the log
// intensity the trainer fits must stay finite, and a strictly positive
// floor keeps simulated spans from going fully silent.
func clampRate(v float64) float64 {
	if v < 1e-9 || math.IsNaN(v) {
		return 1e-9
	}
	return v
}
