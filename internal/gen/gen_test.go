package gen

import (
	"math"
	"reflect"
	"testing"

	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
)

// testFrame is a compact one-day frame shared by the unit tests.
func testFrame() Frame {
	return Frame{Start: 0, End: Day, TrainEnd: 18 * Hour, MeanPending: 13,
		Service: stats.Exponential{Mean: 30}, MeanService: 30}
}

// corpus returns one generator of every family, small enough for unit
// tests.
func corpus() []Generator {
	f := testFrame()
	wf := Frame{Start: 0, End: 2 * Week, TrainEnd: 10 * Day, MeanPending: 13,
		Service: stats.Exponential{Mean: 30}, MeanService: 30}
	multi := MultiPeriodic{ID: "multi", Span: wf, Level: 0.05, Harmonics: []Harmonic{
		{Period: Day, Amp: 0.6}, {Period: Week, Amp: 0.3},
	}}
	flash := FlashCrowd{ID: "flash", Span: f, Base: 0.05, SpikeAt: 12 * Hour,
		Peak: 2, RampUp: 120, Decay: 1800}
	heavy := HeavyTail{ID: "heavy", Span: f, MeanGap: 20, TailIndex: 1.5, ServiceTailIndex: 1.8}
	regime := RegimeChange{ID: "regime", Span: f, Regimes: []Regime{
		{Until: 12 * Hour, Level: 0.05}, {Level: 0.25},
	}}
	comp := Composite{ID: "comp", Span: f, Parts: []Generator{flash, heavy}}
	return []Generator{multi, flash, heavy, regime, comp}
}

// TestDeterministicUnderSeed is the corpus-wide determinism regression:
// the same seed must reproduce the identical trace, and a different
// seed must not.
func TestDeterministicUnderSeed(t *testing.T) {
	for _, g := range corpus() {
		a := g.Generate(42)
		b := g.Generate(42)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different traces", g.Name())
		}
		if len(a) == 0 {
			t.Fatalf("%s: empty trace", g.Name())
		}
		c := g.Generate(43)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical traces", g.Name())
		}
	}
}

// TestTraceInvariants checks every generated trace is replayable:
// sorted arrivals inside the frame, positive service times, and a valid
// train/test split via trace.Trace validation.
func TestTraceInvariants(t *testing.T) {
	for _, g := range corpus() {
		tr := Trace(g, 7)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
		if got, want := tr.Name, g.Name(); got != want {
			t.Errorf("trace name %q, want %q", got, want)
		}
	}
}

// TestCompositeSuperposition: the composite stream is exactly the
// merge of its parts generated on the derived sub-seeds.
func TestCompositeSuperposition(t *testing.T) {
	f := testFrame()
	flash := FlashCrowd{ID: "flash", Span: f, Base: 0.05, SpikeAt: 12 * Hour,
		Peak: 2, RampUp: 120, Decay: 1800}
	heavy := HeavyTail{ID: "heavy", Span: f, MeanGap: 20, TailIndex: 1.5}
	comp := Composite{ID: "comp", Span: f, Parts: []Generator{flash, heavy}}

	const seed = 99
	got := comp.Generate(seed)
	want := len(flash.Generate(subSeed(seed, 0))) + len(heavy.Generate(subSeed(seed, 1)))
	if len(got) != want {
		t.Fatalf("composite has %d queries, parts sum to %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Arrival < got[i-1].Arrival {
			t.Fatalf("composite out of order at %d", i)
		}
	}
}

// TestCompositeIntensity: when every part has a ground truth the
// composite's is their sum; a heavy-tailed part removes it.
func TestCompositeIntensity(t *testing.T) {
	f := testFrame()
	flash := FlashCrowd{ID: "flash", Span: f, Base: 0.05, SpikeAt: 12 * Hour,
		Peak: 2, RampUp: 120, Decay: 1800}
	regime := RegimeChange{ID: "regime", Span: f, Regimes: []Regime{{Level: 0.1}}}
	withTruth := Composite{ID: "c1", Span: f, Parts: []Generator{flash, regime}}
	in := withTruth.Intensity()
	if in == nil {
		t.Fatal("composite of closed-form parts has no intensity")
	}
	at := 6 * Hour
	want := flash.Rate(at) + regime.Rate(at)
	if got := in.Rate(at); math.Abs(got-want) > 1e-12 {
		t.Errorf("composite rate %g, want %g", got, want)
	}
	heavy := HeavyTail{ID: "heavy", Span: f, MeanGap: 20, TailIndex: 1.5}
	noTruth := Composite{ID: "c2", Span: f, Parts: []Generator{flash, heavy}}
	if noTruth.Intensity() != nil {
		t.Error("composite with a renewal part should have no closed-form intensity")
	}
}

// TestFrameValidate covers the frame sanity checks.
func TestFrameValidate(t *testing.T) {
	if err := testFrame().Validate(); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	bad := []Frame{
		{Start: 0, End: 0, TrainEnd: 0},
		{Start: 0, End: 100, TrainEnd: 0},
		{Start: 0, End: 100, TrainEnd: 200},
		{Start: 0, End: 100, TrainEnd: 50, MeanPending: -1},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad frame %d accepted", i)
		}
	}
}

// TestSubSeedIndependence: derived sub-seeds differ across indices and
// parent seeds.
func TestSubSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 4; seed++ {
		for i := 0; i < 4; i++ {
			s := subSeed(seed, i)
			if seen[s] {
				t.Fatalf("sub-seed collision at seed=%d i=%d", seed, i)
			}
			seen[s] = true
		}
	}
}

// arrivalsOf projects query arrival epochs.
func arrivalsOf(qs []sim.Query) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = q.Arrival
	}
	return out
}
