package gen

// Statistical-shape tests: each generator family is pinned to the
// property that defines it — recovered periods for the sinusoid mixes,
// spike location and decay for flash crowds, the Hill tail index for
// heavy-tailed bursts, and change-point location for regime shifts.
// These hold for any seed; a fixed one keeps the suite deterministic.

import (
	"math"
	"sort"
	"testing"

	"robustscaler/internal/periodicity"
	"robustscaler/internal/stats"
	"robustscaler/internal/timeseries"
)

// TestMultiPeriodicShape: the realized counts of a diurnal+weekly mix
// track the closed-form intensity (high correlation) and carry a strong
// daily autocorrelation.
func TestMultiPeriodicShape(t *testing.T) {
	wf := Frame{Start: 0, End: 4 * Week, TrainEnd: 3 * Week, MeanPending: 13, MeanService: 30}
	g := MultiPeriodic{ID: "dw", Span: wf, Level: 0.05, Harmonics: []Harmonic{
		{Period: Day, Amp: 0.6}, {Period: Week, Amp: 0.3},
	}}
	qs := g.Generate(1)
	s := timeseries.FromArrivals(arrivalsOf(qs), wf.Start, wf.End, Hour)

	truth := make([]float64, s.Len())
	for i := range truth {
		truth[i] = g.Rate(s.Start+(float64(i)+0.5)*s.Dt) * s.Dt
	}
	if c := correlation(s.Values, truth); c < 0.8 {
		t.Errorf("counts/truth correlation %.3f < 0.8", c)
	}

	acf := periodicity.ACF(detrend(s.Values), 7*24+12)
	if acf[24] < 0.3 {
		t.Errorf("daily ACF %.3f < 0.3", acf[24])
	}
	// The day lag must be a genuine peak, not a slope of a trend: both
	// half-day neighbors sit below it.
	if acf[24] <= acf[12] || acf[24] <= acf[36] {
		t.Errorf("day lag is not an ACF peak: acf[12]=%.3f acf[24]=%.3f acf[36]=%.3f",
			acf[12], acf[24], acf[36])
	}
}

// TestFlashCrowdShape: quiet baseline before the spike, the busiest
// window right after onset, and decay back toward baseline.
func TestFlashCrowdShape(t *testing.T) {
	f := Frame{Start: 0, End: Day, TrainEnd: 18 * Hour, MeanPending: 13, MeanService: 30}
	g := FlashCrowd{ID: "flash", Span: f, Base: 0.05, SpikeAt: 12 * Hour,
		Peak: 3, RampUp: 120, Decay: 1800}
	qs := g.Generate(2)
	s := timeseries.FromArrivals(arrivalsOf(qs), f.Start, f.End, 300)

	// Busiest 5-minute bin starts within [onset, onset+decay].
	best, bestV := 0, -1.0
	for i, v := range s.Values {
		if v > bestV {
			best, bestV = i, v
		}
	}
	peakAt := s.Start + float64(best)*s.Dt
	if peakAt < g.SpikeAt-s.Dt || peakAt > g.SpikeAt+g.Decay {
		t.Errorf("peak bin at %gs, want within [%g, %g]", peakAt, g.SpikeAt, g.SpikeAt+g.Decay)
	}

	// Pre-spike rate ≈ baseline.
	pre := s.Slice(0, int(g.SpikeAt/s.Dt))
	if qps := pre.MeanQPS(); math.Abs(qps-g.Base) > 0.6*g.Base {
		t.Errorf("pre-spike QPS %.4f far from base %.4f", qps, g.Base)
	}
	// Five decay constants later the added rate is < 1% of the peak:
	// the tail should be near baseline again.
	tailStart := int((g.SpikeAt + g.RampUp + 5*g.Decay) / s.Dt)
	tail := s.Slice(tailStart, s.Len())
	if qps := tail.MeanQPS(); qps > 3*g.Base {
		t.Errorf("post-decay QPS %.4f did not return toward base %.4f", qps, g.Base)
	}
}

// TestHeavyTailShape: the Hill estimator over the largest inter-arrival
// gaps recovers the configured tail index, and service times carry the
// configured service tail.
func TestHeavyTailShape(t *testing.T) {
	f := Frame{Start: 0, End: 2 * Day, TrainEnd: Day, MeanPending: 13, MeanService: 30}
	g := HeavyTail{ID: "heavy", Span: f, MeanGap: 10, TailIndex: 1.5, ServiceTailIndex: 1.8}
	qs := g.Generate(3)
	if len(qs) < 2000 {
		t.Fatalf("only %d arrivals", len(qs))
	}
	gaps := make([]float64, 0, len(qs)-1)
	for i := 1; i < len(qs); i++ {
		gaps = append(gaps, qs[i].Arrival-qs[i-1].Arrival)
	}
	if got := hill(gaps, 500); math.Abs(got-g.TailIndex) > 0.35 {
		t.Errorf("inter-arrival Hill index %.3f, want %.1f ± 0.35", got, g.TailIndex)
	}
	svcs := make([]float64, len(qs))
	for i, q := range qs {
		svcs[i] = q.Service
	}
	if got := hill(svcs, 500); math.Abs(got-g.ServiceTailIndex) > 0.4 {
		t.Errorf("service Hill index %.3f, want %.1f ± 0.4", got, g.ServiceTailIndex)
	}
	// Pareto service draws sit above the scale parameter.
	xm := stats.ParetoWithMean(f.MeanService, g.ServiceTailIndex).Xm
	for _, v := range svcs {
		if v < xm-1e-9 {
			t.Fatalf("service %.3f below Pareto scale %.3f", v, xm)
		}
	}
}

// TestRegimeChangeShape: a CUSUM scan over binned counts localizes the
// level shift at the configured change-point.
func TestRegimeChangeShape(t *testing.T) {
	f := Frame{Start: 0, End: Day, TrainEnd: 18 * Hour, MeanPending: 13, MeanService: 30}
	g := RegimeChange{ID: "regime", Span: f, Regimes: []Regime{
		{Until: 10 * Hour, Level: 0.05}, {Level: 0.3},
	}}
	qs := g.Generate(4)
	s := timeseries.FromArrivals(arrivalsOf(qs), f.Start, f.End, 600)

	cp := cusumChangePoint(s.Values)
	at := s.Start + float64(cp)*s.Dt
	want := g.ChangePoints()[0]
	if math.Abs(at-want) > Hour {
		t.Errorf("change point at %gs, want %g ± %g", at, want, Hour)
	}

	// Realized levels on both sides match the configuration.
	preQPS := s.Slice(0, cp).MeanQPS()
	postQPS := s.Slice(cp, s.Len()).MeanQPS()
	if math.Abs(preQPS-0.05) > 0.03 || math.Abs(postQPS-0.3) > 0.1 {
		t.Errorf("regime levels %.3f → %.3f, want 0.05 → 0.3", preQPS, postQPS)
	}
}

// hill is the Hill tail-index estimator over the k largest order
// statistics: α̂ = k / Σ_{i<k} ln(x_(n-i) / x_(n-k)).
func hill(xs []float64, k int) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if k >= n {
		k = n - 1
	}
	xk := sorted[n-1-k]
	var s float64
	for i := 0; i < k; i++ {
		s += math.Log(sorted[n-1-i] / xk)
	}
	return float64(k) / s
}

// cusumChangePoint returns the index maximizing |Σ_{j<i}(x_j - mean)|,
// the classic single change-point locator.
func cusumChangePoint(xs []float64) int {
	mean := stats.Mean(xs)
	best, bestV, acc := 0, 0.0, 0.0
	for i, v := range xs {
		acc += v - mean
		if a := math.Abs(acc); a > bestV {
			best, bestV = i+1, a
		}
	}
	return best
}

// correlation returns the Pearson correlation of two equal-length
// series.
func correlation(a, b []float64) float64 {
	ma, mb := stats.Mean(a), stats.Mean(b)
	var num, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		num += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return num / math.Sqrt(va*vb)
}

// detrend subtracts the mean.
func detrend(xs []float64) []float64 {
	m := stats.Mean(xs)
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v - m
	}
	return out
}
