package gen

import (
	"fmt"
	"math"
	"math/rand"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
)

// Harmonic is one sinusoidal component of a multi-periodic intensity.
type Harmonic struct {
	// Period is the cycle length in seconds.
	Period float64
	// Amp is the relative amplitude: the component contributes
	// Amp·sin(2πt/Period + Phase) to the level multiplier.
	Amp float64
	// Phase offsets the cycle, radians.
	Phase float64
}

// MultiPeriodic is a sum-of-sinusoids intensity around a mean level —
// the diurnal + weekly mix of real service traffic:
//
//	λ(t) = Level · max(ε, 1 + Σ_j Amp_j·sin(2πt/P_j + φ_j))
//
// The defining shape: the binned counts carry every component's period,
// so periodicity detection must recover them.
type MultiPeriodic struct {
	ID        string
	Span      Frame
	Level     float64 // mean QPS
	Harmonics []Harmonic
}

// Name implements Generator.
func (g MultiPeriodic) Name() string { return g.ID }

// Frame implements Generator.
func (g MultiPeriodic) Frame() Frame { return g.Span }

// Rate returns the closed-form intensity.
func (g MultiPeriodic) Rate(t float64) float64 {
	v := 1.0
	for _, h := range g.Harmonics {
		v += h.Amp * math.Sin(2*math.Pi*t/h.Period+h.Phase)
	}
	return clampRate(g.Level * v)
}

// Intensity implements Intensities.
func (g MultiPeriodic) Intensity() nhpp.Intensity { return funcIntensity(g.Span, g.Rate) }

// Generate implements Generator.
func (g MultiPeriodic) Generate(seed int64) []sim.Query {
	return fromIntensity(g.Span, g.Intensity(), seed)
}

// FlashCrowd is a low, flat baseline broken by one sudden spike — the
// thundering-herd shape (a product launch, a cache stampede): the rate
// ramps to Base+Peak over RampUp seconds at SpikeAt, then decays
// exponentially with e-folding time Decay. The defining shape: a
// change-point at SpikeAt, a maximum right after it, and a return to
// baseline within a few Decay constants.
type FlashCrowd struct {
	ID      string
	Span    Frame
	Base    float64 // baseline QPS
	SpikeAt float64 // onset, absolute seconds
	Peak    float64 // added QPS at the top of the spike
	RampUp  float64 // seconds from onset to peak (0 = instantaneous)
	Decay   float64 // e-folding time of the decay, seconds
}

// Name implements Generator.
func (g FlashCrowd) Name() string { return g.ID }

// Frame implements Generator.
func (g FlashCrowd) Frame() Frame { return g.Span }

// Rate returns the closed-form intensity.
func (g FlashCrowd) Rate(t float64) float64 {
	v := g.Base
	dt := t - g.SpikeAt
	switch {
	case dt < 0:
	case dt < g.RampUp:
		v += g.Peak * dt / g.RampUp
	default:
		v += g.Peak * math.Exp(-(dt-g.RampUp)/g.Decay)
	}
	return clampRate(v)
}

// Intensity implements Intensities.
func (g FlashCrowd) Intensity() nhpp.Intensity { return funcIntensity(g.Span, g.Rate) }

// Generate implements Generator.
func (g FlashCrowd) Generate(seed int64) []sim.Query {
	return fromIntensity(g.Span, g.Intensity(), seed)
}

// HeavyTail is a renewal process with Pareto(α) inter-arrival times and
// Pareto service times — traffic that arrives in bursts separated by
// long silences, the regime where Poisson assumptions and mean-based
// pool sizing degrade. α ≤ 2 gives infinite inter-arrival variance;
// the corpus uses α in (1, 2]. The defining shape: the Hill estimator
// over the largest inter-arrival gaps recovers the tail index.
type HeavyTail struct {
	ID   string
	Span Frame
	// MeanGap is the mean inter-arrival time, seconds.
	MeanGap float64
	// TailIndex is the Pareto α of the inter-arrival law (> 1, so the
	// mean exists and MeanGap is well-defined).
	TailIndex float64
	// ServiceTailIndex is the Pareto α of the service-time law; 0 uses
	// the frame's Service distribution instead.
	ServiceTailIndex float64
}

// Name implements Generator.
func (g HeavyTail) Name() string { return g.ID }

// Frame implements Generator.
func (g HeavyTail) Frame() Frame { return g.Span }

// Generate implements Generator.
func (g HeavyTail) Generate(seed int64) []sim.Query {
	if g.TailIndex <= 1 {
		panic(fmt.Sprintf("gen: HeavyTail %q tail index %g must be > 1", g.ID, g.TailIndex))
	}
	rng := rand.New(rand.NewSource(seed))
	gap := stats.ParetoWithMean(g.MeanGap, g.TailIndex)
	svc := g.Span.service()
	if g.ServiceTailIndex > 1 {
		svc = stats.ParetoWithMean(g.Span.MeanService, g.ServiceTailIndex)
	}
	var qs []sim.Query
	// Start the renewal process one draw before the frame so the first
	// arrival is not pinned to Start.
	t := g.Span.Start + gap.Sample(rng)
	for t < g.Span.End {
		qs = append(qs, sim.Query{Arrival: t, Service: positive(svc.Sample(rng))})
		t += gap.Sample(rng)
	}
	return qs
}

// Regime is one level stretch of a RegimeChange intensity.
type Regime struct {
	// Until is the absolute end of the regime, seconds; the last
	// regime's Until is ignored (it runs to the frame end).
	Until float64
	// Level is the regime's mean QPS.
	Level float64
}

// RegimeChange is a piecewise-level intensity with abrupt shifts — the
// deployment-driven traffic migrations that must trip retraining: a
// model fit on the old level is wrong within minutes of the shift. An
// optional diurnal modulation rides on top so the shift is a level
// change, not the only structure. The defining shape: a change-point
// detector on the binned counts localizes each shift.
type RegimeChange struct {
	ID      string
	Span    Frame
	Regimes []Regime
	// DiurnalAmp modulates every regime by 1+DiurnalAmp·sin(2πt/Day).
	DiurnalAmp float64
}

// Name implements Generator.
func (g RegimeChange) Name() string { return g.ID }

// Frame implements Generator.
func (g RegimeChange) Frame() Frame { return g.Span }

// Rate returns the closed-form intensity.
func (g RegimeChange) Rate(t float64) float64 {
	level := 0.0
	if n := len(g.Regimes); n > 0 {
		level = g.Regimes[n-1].Level
		for _, r := range g.Regimes[:n-1] {
			if t < r.Until {
				level = r.Level
				break
			}
		}
	}
	v := level * (1 + g.DiurnalAmp*math.Sin(2*math.Pi*t/Day))
	return clampRate(v)
}

// ChangePoints returns the regime boundaries, absolute seconds.
func (g RegimeChange) ChangePoints() []float64 {
	var out []float64
	for _, r := range g.Regimes[:max(0, len(g.Regimes)-1)] {
		out = append(out, r.Until)
	}
	return out
}

// Intensity implements Intensities.
func (g RegimeChange) Intensity() nhpp.Intensity { return funcIntensity(g.Span, g.Rate) }

// Generate implements Generator.
func (g RegimeChange) Generate(seed int64) []sim.Query {
	return fromIntensity(g.Span, g.Intensity(), seed)
}

// Composite superposes other generators: the merged stream of all
// parts, each on an independent sub-seed derived from the composite's
// seed. Superposed NHPPs are again an NHPP with summed intensity, so
// when every part exposes a ground truth the composite does too.
type Composite struct {
	ID    string
	Span  Frame
	Parts []Generator
}

// Name implements Generator.
func (g Composite) Name() string { return g.ID }

// Frame implements Generator.
func (g Composite) Frame() Frame { return g.Span }

// Generate implements Generator: each part draws on subSeed(seed, i),
// then the streams merge into one sorted superposition, clipped to the
// composite frame.
func (g Composite) Generate(seed int64) []sim.Query {
	parts := make([][]sim.Query, len(g.Parts))
	for i, p := range g.Parts {
		parts[i] = p.Generate(subSeed(seed, i))
	}
	merged := mergeQueries(parts)
	out := merged[:0]
	for _, q := range merged {
		if q.Arrival >= g.Span.Start && q.Arrival < g.Span.End {
			out = append(out, q)
		}
	}
	return out
}

// Intensity implements Intensities when every part does; it returns nil
// otherwise (e.g. a heavy-tailed part has no closed-form λ).
func (g Composite) Intensity() nhpp.Intensity {
	rates := make([]func(float64) float64, 0, len(g.Parts))
	for _, p := range g.Parts {
		in, ok := p.(Intensities)
		if !ok {
			return nil
		}
		pin := in.Intensity()
		rates = append(rates, pin.Rate)
	}
	return funcIntensity(g.Span, func(t float64) float64 {
		var v float64
		for _, r := range rates {
			v += r(t)
		}
		return v
	})
}
