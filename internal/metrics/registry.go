package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair on a series. Order is preserved as
// given at registration, per Prometheus idiom (callers pick a stable
// order; the registry renders what it was handed).
type Label struct {
	Name, Value string
}

// kind discriminates what a series holds.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) exposition() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// sameType reports whether two kinds may share a family (a static
// gauge and a GaugeFunc can; a counter and a histogram cannot).
func (k kind) sameType(o kind) bool { return k.exposition() == o.exposition() }

// series is one labeled instrument inside a family.
type series struct {
	labels []Label
	key    string // canonical label encoding, for dedup and sorting
	kind   kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family groups every series of one metric name.
type family struct {
	name, help string
	kind       kind
	series     []*series
	byKey      map[string]*series
}

// Registry holds named instruments and renders them as one Prometheus
// text page. Registration is idempotent: asking for a (name, labels)
// pair that exists returns the existing instrument, so packages can
// re-instrument without double counting. All methods are safe for
// concurrent use; instrument updates themselves never touch the
// registry lock.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// labelKey canonicalizes a label set for dedup. Label names and values
// land between \x00 separators, so distinct sets cannot collide.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String()
}

// register resolves (name, labels) to its series, creating family and
// series as needed. A name reused with a different metric type panics:
// that is a programming error worth failing loudly at init, not a
// runtime condition.
func (r *Registry) register(name, help string, k kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, byKey: make(map[string]*series)}
		r.fams[name] = f
	} else if !f.kind.sameType(k) {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.kind.exposition(), k.exposition()))
	}
	key := labelKey(labels)
	if s := f.byKey[key]; s != nil {
		return s
	}
	s := &series{labels: append([]Label(nil), labels...), key: key, kind: k}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter returns the counter registered under (name, labels),
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge registered under (name, labels), creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram registered under (name, labels),
// creating it with the given bucket bounds on first use (later calls
// keep the original bounds).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	if s.hist == nil {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// CounterFunc registers a counter whose value is computed at scrape
// time — the shape fleet-wide aggregates take (sum over live engines).
// Re-registering the same (name, labels) replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindCounterFunc, labels)
	s.fn = fn
}

// GaugeFunc registers a gauge computed at scrape time (ages, depths,
// set sizes). Re-registering the same (name, labels) replaces the
// function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindGaugeFunc, labels)
	s.fn = fn
}

// WritePrometheus renders every registered instrument in the
// Prometheus text exposition format (version 0.0.4): families sorted
// by name, series sorted by label key, histograms expanded into
// cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	srs := make([][]*series, len(names))
	for i, name := range names {
		f := r.fams[name]
		fams[i] = f
		ss := append([]*series(nil), f.series...)
		sort.Slice(ss, func(a, b int) bool { return ss[a].key < ss[b].key })
		srs[i] = ss
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.exposition())
		for _, s := range srs[i] {
			writeSeries(&b, f.name, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Value returns the current value of the series registered under
// (name, labels) and whether it exists — counters and counter funcs as
// their total, gauges as their level, histograms as their observation
// count. It exists for tests and cross-checking tools (cmd/bench), not
// for scraping.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		return 0, false
	}
	s := f.byKey[labelKey(labels)]
	if s == nil {
		return 0, false
	}
	switch s.kind {
	case kindCounter:
		return float64(s.counter.Value()), true
	case kindGauge:
		return s.gauge.Value(), true
	case kindHistogram:
		return float64(s.hist.Count()), true
	default:
		return s.fn(), true
	}
}

func writeSeries(b *strings.Builder, name string, s *series) {
	switch s.kind {
	case kindCounter:
		writeSample(b, name, s.labels, "", "", float64(s.counter.Value()))
	case kindGauge:
		writeSample(b, name, s.labels, "", "", s.gauge.Value())
	case kindCounterFunc, kindGaugeFunc:
		writeSample(b, name, s.labels, "", "", s.fn())
	case kindHistogram:
		cum, count, sum := s.hist.snapshot()
		for i, bound := range s.hist.bounds {
			writeSample(b, name+"_bucket", s.labels, "le", formatFloat(bound), float64(cum[i]))
		}
		writeSample(b, name+"_bucket", s.labels, "le", "+Inf", float64(cum[len(cum)-1]))
		writeSample(b, name+"_sum", s.labels, "", "", sum)
		writeSample(b, name+"_count", s.labels, "", "", float64(count))
	}
}

// writeSample renders one `name{labels} value` line; extraName/Value
// appends a synthetic label (the histogram `le`).
func writeSample(b *strings.Builder, name string, labels []Label, extraName, extraValue string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a sample value: integers without a decimal point
// (the common counter case), everything else in Go's shortest form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
