package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeFloat(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	var f Float
	f.Add(0.25)
	f.Add(0.5)
	if got := f.Value(); got != 0.75 {
		t.Fatalf("float = %g, want 0.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	// Cumulative: ≤1 → 2 (0.5, 1), ≤5 → 3 (+3), ≤10 → 4 (+7), +Inf → 5.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if count != 5 || sum != 111.5 {
		t.Fatalf("count=%d sum=%g, want 5, 111.5", count, sum)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Label{"k", "v"})
	b := r.Counter("x_total", "help", Label{"k", "v"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("x_total", "help", Label{"k", "w"})
	if other == a {
		t.Fatal("distinct labels share a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("name reuse across types did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("rs_events_total", "events seen", Label{"format", "ndjson"}).Add(3)
	r.Counter("rs_events_total", "events seen", Label{"format", "json"}).Add(1)
	r.Gauge("rs_temp", "a gauge").Set(1.5)
	r.GaugeFunc("rs_age_seconds", "an age", func() float64 { return 7 })
	r.Histogram("rs_lat_seconds", "latency", []float64{0.1, 1}).Observe(0.05)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP rs_events_total events seen\n",
		"# TYPE rs_events_total counter\n",
		`rs_events_total{format="json"} 1`,
		`rs_events_total{format="ndjson"} 3`,
		"# TYPE rs_temp gauge\n",
		"rs_temp 1.5",
		"rs_age_seconds 7",
		"# TYPE rs_lat_seconds histogram\n",
		`rs_lat_seconds_bucket{le="0.1"} 1`,
		`rs_lat_seconds_bucket{le="1"} 1`,
		`rs_lat_seconds_bucket{le="+Inf"} 1`,
		"rs_lat_seconds_sum 0.05",
		"rs_lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must be sorted by name; label sets within a family too.
	if strings.Index(out, "rs_age_seconds") > strings.Index(out, "rs_events_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
	if strings.Index(out, `format="json"`) > strings.Index(out, `format="ndjson"`) {
		t.Fatalf("series not sorted by label:\n%s", out)
	}
}

func TestValueLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", Label{"a", "b"}).Add(9)
	if v, ok := r.Value("c_total", Label{"a", "b"}); !ok || v != 9 {
		t.Fatalf("Value = %g, %v; want 9, true", v, ok)
	}
	if _, ok := r.Value("c_total", Label{"a", "z"}); ok {
		t.Fatal("unknown label set reported present")
	}
	if _, ok := r.Value("nope"); ok {
		t.Fatal("unknown family reported present")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{"p", "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{p="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", sb.String())
	}
}

// TestConcurrentUpdates exercises every instrument from many goroutines
// under -race: the update paths must be lock-free and race-free.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "")
	g := r.Gauge("cg", "")
	h := r.Histogram("ch_seconds", "", DefBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 1000)
				var sb strings.Builder
				if i%250 == 0 {
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("totals = %d/%g/%d, want 8000 each", c.Value(), g.Value(), h.Count())
	}
	if math.IsNaN(h.Sum()) {
		t.Fatal("histogram sum is NaN")
	}
}
