// Package metrics is a dependency-free observability core: atomic
// counters, gauges and fixed-bucket histograms, collected in a Registry
// that renders the Prometheus text exposition format. It exists so the
// control plane's hot paths (ingest, planning) can be instrumented with
// nothing but single atomic operations — instruments are resolved once
// at registration time, never looked up per event, and no instrument
// ever takes a lock on the update path.
//
// The Registry is the slow half: it owns the name → instrument map
// (guarded by a mutex that only registration and scraping touch) and
// serializes everything into one /metrics page. Computed values — fleet
// aggregates, ages, queue depths — register as GaugeFunc/CounterFunc
// and are evaluated at scrape time.
package metrics

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; updates are single atomic adds.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// addFloat64 atomically adds d to a float64 stored as bits — the CAS
// loop shared by Gauge.Add and Float.Add.
func addFloat64(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Gauge is a float64 that can go up and down. The zero value is ready
// to use; Set is a single atomic store, Add a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (which may be negative) to the gauge.
func (g *Gauge) Add(d float64) { addFloat64(&g.bits, d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Float is a monotonically increasing float64 total — a counter whose
// increments are fractional (accumulated seconds, say). Updates are a
// CAS loop; reads are one atomic load.
type Float struct {
	bits atomic.Uint64
}

// Add accumulates d; callers must only pass non-negative values.
func (f *Float) Add(d float64) { addFloat64(&f.bits, d) }

// Value returns the accumulated total.
func (f *Float) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets, the
// Prometheus histogram shape: one counter per upper bound plus an
// implicit +Inf bucket, a total count and a running sum. Observe is a
// binary search plus two atomic adds and one CAS — no locks, so it is
// safe on request paths.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds, +Inf excluded
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     Float
}

// NewHistogram creates a histogram over the given strictly increasing
// upper bounds (the +Inf bucket is implicit). Registry.Histogram is the
// usual constructor; this one serves instruments that live outside any
// registry (per-object histograms aggregated elsewhere).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Branchless-ish lower bound: buckets are few (≤ ~20), a linear scan
	// beats binary search on real bucket counts and stays allocation-free.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// snapshot returns cumulative bucket counts aligned with bounds plus
// the +Inf bucket, and the count/sum, all read atomically per cell (the
// page as a whole is not a consistent cut, per Prometheus convention).
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.buckets))
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), h.sum.Value()
}

// DefBuckets are general-purpose latency bounds in seconds, from 100µs
// to ~100s — wide enough for both HTTP handlers and model refits.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}
