package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"robustscaler/internal/gen"
	"robustscaler/internal/stats"
)

// smallScenario is a fast corpus entry for unit tests: one hourly
// sinusoid over 8 hours, trained on 6. It runs the full closed loop
// (ingest → train → plan → replay ×3 policies) in about a second.
func smallScenario() Scenario {
	f := gen.Frame{
		Start:       0,
		End:         8 * gen.Hour,
		TrainEnd:    6 * gen.Hour,
		MeanPending: 13,
		Service:     stats.Exponential{Mean: 30},
		MeanService: 30,
	}
	return Scenario{
		Gen: gen.MultiPeriodic{ID: "test_hourly", Span: f, Level: 0.1,
			Harmonics: []gen.Harmonic{{Period: gen.Hour, Amp: 0.5}}},
		SeedOffset:      7,
		AggregateWindow: 1,
		MinPeriod:       3,
		BPSize:          2,
		AdapFactor:      60,
		QuickTestSpan:   gen.Hour,
		Envelope: Envelope{
			MaxWAPE:         1.5,
			MinHitRate:      0.3,
			MaxRelativeCost: 5,
		},
	}
}

func TestRunSmallScenario(t *testing.T) {
	s, err := Run(smallScenario(), 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "test_hourly" {
		t.Errorf("name %q", s.Name)
	}
	if s.TrainQueries == 0 || s.TestQueries == 0 {
		t.Fatalf("degenerate split: %d train, %d test", s.TrainQueries, s.TestQueries)
	}
	if s.TestSpanSeconds != 2*gen.Hour {
		t.Errorf("full test span %g, want %g", s.TestSpanSeconds, 2*gen.Hour)
	}
	if s.Forecast == nil || s.Forecast.Bins == 0 {
		t.Fatal("no forecast score")
	}
	if s.Robust.HitRate < 0 || s.Robust.HitRate > 1 {
		t.Errorf("hit rate %g out of range", s.Robust.HitRate)
	}
	if s.Robust.RelativeCost < 1 {
		t.Errorf("relative cost %g below the clairvoyant floor", s.Robust.RelativeCost)
	}
	// The envelope declares three bounds, so three checks must appear.
	if len(s.Checks) != 3 {
		t.Errorf("got %d checks, want 3: %+v", len(s.Checks), s.Checks)
	}
	if !s.OK {
		t.Errorf("generous envelope missed: %+v", s.Checks)
	}
}

func TestRunQuickTruncatesTestSpan(t *testing.T) {
	s, err := Run(smallScenario(), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.TestSpanSeconds != gen.Hour {
		t.Errorf("quick test span %g, want %g", s.TestSpanSeconds, gen.Hour)
	}
}

// TestRunCorpusDeterministic is the scorecard regression: two runs of
// the same corpus and seed must marshal byte-identically — no wall
// clock, no global randomness, no map iteration order anywhere in the
// loop.
func TestRunCorpusDeterministic(t *testing.T) {
	corpus := []Scenario{smallScenario()}
	marshal := func() []byte {
		rep, err := RunCorpus(corpus, 42, true)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("reruns differ:\n%s\n%s", a, b)
	}
}

func TestRunCorpusSeedMatters(t *testing.T) {
	corpus := []Scenario{smallScenario()}
	a, err := RunCorpus(corpus, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCorpus(corpus, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Scenarios[0].TrainQueries == b.Scenarios[0].TrainQueries &&
		a.Scenarios[0].Robust == b.Scenarios[0].Robust {
		t.Error("different seeds produced identical scores")
	}
}

func TestEnvelopeMissFailsScenario(t *testing.T) {
	sc := smallScenario()
	sc.Envelope = Envelope{MinHitRate: 1.1} // unreachable
	s, err := Run(sc, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.OK {
		t.Error("impossible envelope reported ok")
	}
	rep, err := RunCorpus([]Scenario{sc}, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EnvelopesOK {
		t.Error("report EnvelopesOK despite a missed scenario")
	}
}

// TestCorpusWellFormed pins the committed corpus's static shape without
// running it: unique names, valid frames, and a non-trivial envelope on
// every entry.
func TestCorpusWellFormed(t *testing.T) {
	corpus := Corpus()
	if len(corpus) < 5 {
		t.Fatalf("corpus has %d scenarios, want >= 5", len(corpus))
	}
	seen := map[string]bool{}
	for _, sc := range corpus {
		name := sc.Gen.Name()
		if name == "" {
			t.Fatal("scenario with empty name")
		}
		if seen[name] {
			t.Fatalf("duplicate scenario name %q", name)
		}
		seen[name] = true
		if err := sc.Gen.Frame().Validate(); err != nil {
			t.Errorf("%s: invalid frame: %v", name, err)
		}
		if sc.Envelope == (Envelope{}) {
			t.Errorf("%s: empty envelope asserts nothing", name)
		}
		if sc.Envelope.MinHitRate <= 0 || sc.Envelope.MaxRelativeCost <= 0 {
			t.Errorf("%s: envelope must bound hit rate and cost", name)
		}
	}
}
