// Package scenario is the closed-loop harness over the workload corpus
// in internal/gen: each scenario drives a generated trace end-to-end
// through the real engine lifecycle (ingest → train → plan/forecast)
// and then replays the held-out test span in internal/sim, scoring
// forecast accuracy (WAPE and Poisson pinball loss per horizon) and the
// QoS/cost of the engine-trained RobustScaler policy against the BP and
// AdapBP baselines. Every scenario carries an Envelope — hard numeric
// bounds on those scores — asserted on every run; cmd/scenario writes
// the scorecard as SCENARIOS.json, which is committed and jq-gated in
// CI the same way BENCH_hotpath.json is.
//
// Everything is a pure function of the base seed: generators, the
// engine's Monte Carlo streams and the simulator draws all derive from
// it, and the report carries no wall-clock state, so two runs of the
// same corpus produce byte-identical scorecards (regression-tested).
package scenario

import (
	"fmt"
	"math"

	"robustscaler"
	"robustscaler/internal/engine"
	"robustscaler/internal/gen"
	"robustscaler/internal/scaler"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
	"robustscaler/internal/timeseries"
)

// forecastStep is the scoring bin width (seconds): predicted vs actual
// query counts are compared on 10-minute bins.
const forecastStep = 600.0

// Scenario is one corpus entry: a generator plus the engine/simulation
// parameters and the envelope its scores must stay inside.
type Scenario struct {
	// Gen produces the workload trace.
	Gen gen.Generator
	// SeedOffset decorrelates the scenario from its corpus siblings; the
	// effective seed is baseSeed + SeedOffset.
	SeedOffset int64
	// Dt is the engine's modeling bin width, seconds (0 = 60).
	Dt float64
	// AggregateWindow / MinPeriod tune periodicity detection (bins of
	// Dt / bins of the aggregated series); 0 keeps the fleet default.
	AggregateWindow int
	MinPeriod       int
	// Tick is the planning interval Δ for the policy replays (0 = 5).
	Tick float64
	// HPTarget is the RobustScaler-HP hitting-probability target
	// (0 = 0.9).
	HPTarget float64
	// BPSize and AdapFactor parameterize the baseline policies.
	BPSize     int
	AdapFactor float64
	// RetrainAt splits training ingest into two phases at this epoch:
	// the engine first trains on [Start, RetrainAt) only, is scored
	// stale, then ingests the rest and must trip a background-style
	// Retrain before being scored fresh. 0 runs a single phase.
	RetrainAt float64
	// QuickTestSpan truncates the replayed test window in quick mode,
	// seconds after TrainEnd (0 keeps the full window).
	QuickTestSpan float64
	// Envelope bounds the scores.
	Envelope Envelope
}

// Envelope is the per-scenario score bounds. A zero field skips its
// check, so each scenario asserts only the claims its shape supports.
type Envelope struct {
	// MaxWAPE bounds the whole-horizon forecast WAPE.
	MaxWAPE float64 `json:"max_wape,omitempty"`
	// MaxPinball90 bounds the normalized q90 pinball loss.
	MaxPinball90 float64 `json:"max_pinball90,omitempty"`
	// MinPeriodSeconds/MaxPeriodSeconds bound the detected period.
	MinPeriodSeconds float64 `json:"min_period_seconds,omitempty"`
	MaxPeriodSeconds float64 `json:"max_period_seconds,omitempty"`
	// MinHitRate floors the robust policy's hit rate.
	MinHitRate float64 `json:"min_hit_rate,omitempty"`
	// MaxRelativeCost caps the robust policy's relative cost.
	MaxRelativeCost float64 `json:"max_relative_cost,omitempty"`
	// MinHitVsAdapBP floors robustHit − adapHit (negative = allowed
	// slack; the paper's beats-or-matches claim).
	MinHitVsAdapBP float64 `json:"min_hit_vs_adapbp,omitempty"`
	// MaxCostVsAdapBP caps robustRelCost / adapRelCost.
	MaxCostVsAdapBP float64 `json:"max_cost_vs_adapbp,omitempty"`
	// MinRetrainGain floors staleWAPE / freshWAPE for two-phase
	// scenarios: retraining after the regime change must improve the
	// forecast at least this much.
	MinRetrainGain float64 `json:"min_retrain_gain,omitempty"`
}

// ForecastScore is the forecast-accuracy block of a scenario score.
type ForecastScore struct {
	// WAPE is Σ|pred−actual| / Σactual over the whole test horizon.
	WAPE float64 `json:"wape"`
	// WAPEFirstHour is the same over the first hour only.
	WAPEFirstHour float64 `json:"wape_first_hour"`
	// Pinball50/Pinball90 are the mean pinball losses of the Poisson
	// q50/q90 count forecasts, normalized by the mean actual count.
	Pinball50 float64 `json:"pinball50"`
	Pinball90 float64 `json:"pinball90"`
	// Bins is the number of scored forecast bins.
	Bins int `json:"bins"`
}

// PolicyScore is one policy's replay metrics.
type PolicyScore struct {
	HitRate          float64 `json:"hit_rate"`
	RTAvg            float64 `json:"rt_avg_seconds"`
	RTP95            float64 `json:"rt_p95_seconds"`
	RelativeCost     float64 `json:"relative_cost"`
	InstancesCreated int     `json:"instances_created"`
}

// RetrainScore records the two-phase (stale → retrain → fresh) loop.
type RetrainScore struct {
	// StaleWAPE is the forecast error of the model trained before the
	// regime change; FreshWAPE after the post-change refit.
	StaleWAPE float64 `json:"stale_wape"`
	FreshWAPE float64 `json:"fresh_wape"`
	// Gain is StaleWAPE / FreshWAPE.
	Gain float64 `json:"gain"`
	// Refitted asserts the engine's staleness tracking tripped the
	// refit (Retrain reported a run).
	Refitted bool `json:"refitted"`
}

// Check is one evaluated envelope bound.
type Check struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Bound float64 `json:"bound"`
	OK    bool    `json:"ok"`
}

// Score is one scenario's full scorecard entry.
type Score struct {
	Name            string         `json:"name"`
	TrainQueries    int            `json:"train_queries"`
	TestQueries     int            `json:"test_queries"`
	TestSpanSeconds float64        `json:"test_span_seconds"`
	PeriodSeconds   float64        `json:"detected_period_seconds"`
	Forecast        *ForecastScore `json:"forecast,omitempty"`
	Retrain         *RetrainScore  `json:"retrain,omitempty"`
	Robust          PolicyScore    `json:"robust_hp"`
	BP              PolicyScore    `json:"bp"`
	AdapBP          PolicyScore    `json:"adapbp"`
	Envelope        Envelope       `json:"envelope"`
	Checks          []Check        `json:"checks"`
	OK              bool           `json:"ok"`
}

// Report is the scorecard file schema (SCENARIOS.json). It carries no
// wall-clock state: reruns of the same corpus and seed are
// byte-identical.
type Report struct {
	Quick       bool    `json:"quick"`
	Seed        int64   `json:"seed"`
	Scenarios   []Score `json:"scenarios"`
	EnvelopesOK bool    `json:"envelopes_ok"`
}

// defaults fills the zero-valued knobs.
func (sc *Scenario) defaults() {
	if sc.Dt == 0 {
		sc.Dt = 60
	}
	if sc.Tick == 0 {
		sc.Tick = 5
	}
	if sc.HPTarget == 0 {
		sc.HPTarget = 0.9
	}
}

// trainConfig builds the per-scenario training configuration.
func (sc *Scenario) trainConfig() robustscaler.TrainConfig {
	cfg := robustscaler.DefaultTrainConfig()
	if sc.AggregateWindow > 0 {
		cfg.Periodicity.AggregateWindow = sc.AggregateWindow
	}
	if sc.MinPeriod > 0 {
		cfg.Periodicity.MinPeriod = sc.MinPeriod
	}
	return cfg
}

// Run drives one scenario through the closed loop and scores it.
func Run(sc Scenario, baseSeed int64, quick bool) (*Score, error) {
	sc.defaults()
	seed := baseSeed + sc.SeedOffset
	f := sc.Gen.Frame()
	tr := gen.Trace(sc.Gen, seed)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: generated trace invalid: %w", tr.Name, err)
	}

	testEnd := f.End
	if quick && sc.QuickTestSpan > 0 && f.TrainEnd+sc.QuickTestSpan < f.End {
		testEnd = f.TrainEnd + sc.QuickTestSpan
	}
	trainQ := tr.Train()
	testQ := clipQueries(tr.Test(), testEnd)
	if len(trainQ) < 2 || len(testQ) == 0 {
		return nil, fmt.Errorf("scenario %s: degenerate split (%d train, %d test)", tr.Name, len(trainQ), len(testQ))
	}
	testArr := arrivalsOf(testQ)
	actual := timeseries.FromArrivals(testArr, f.TrainEnd, testEnd, forecastStep)

	// The real engine: per-workload config, injectable clock pinned to
	// the train/test boundary so plan anchoring is reproducible.
	ecfg := engine.DefaultConfig()
	ecfg.Dt = sc.Dt
	ecfg.Pending = f.MeanPending
	ecfg.HistoryWindow = 0
	ecfg.MCSamples = 200
	ecfg.Seed = seed
	ecfg.Now = func() float64 { return f.TrainEnd }
	ecfg.Train = sc.trainConfig()
	eng, err := engine.New(ecfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: engine: %w", tr.Name, err)
	}

	score := &Score{
		Name:            tr.Name,
		TrainQueries:    len(trainQ),
		TestQueries:     len(testQ),
		TestSpanSeconds: testEnd - f.TrainEnd,
		Envelope:        sc.Envelope,
	}

	trainArr := arrivalsOf(trainQ)
	if sc.RetrainAt > 0 {
		// Two-phase loop: train on the pre-change prefix, score the stale
		// forecast, then ingest the rest — the engine's generation
		// tracking must mark the model stale and Retrain must refit.
		cut := splitIndex(trainArr, sc.RetrainAt)
		if cut < 2 || cut >= len(trainArr) {
			return nil, fmt.Errorf("scenario %s: retrain split at %g leaves %d/%d arrivals", tr.Name, sc.RetrainAt, cut, len(trainArr))
		}
		if _, err := eng.Ingest(trainArr[:cut]); err != nil {
			return nil, fmt.Errorf("scenario %s: ingest phase 1: %w", tr.Name, err)
		}
		if _, err := eng.Train(); err != nil {
			return nil, fmt.Errorf("scenario %s: train phase 1: %w", tr.Name, err)
		}
		staleFc, err := forecastScore(eng, f.TrainEnd, testEnd, actual)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: stale forecast: %w", tr.Name, err)
		}
		if _, err := eng.Ingest(trainArr[cut:]); err != nil {
			return nil, fmt.Errorf("scenario %s: ingest phase 2: %w", tr.Name, err)
		}
		refitted, err := eng.Retrain()
		if err != nil {
			return nil, fmt.Errorf("scenario %s: retrain: %w", tr.Name, err)
		}
		freshFc, err := forecastScore(eng, f.TrainEnd, testEnd, actual)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: fresh forecast: %w", tr.Name, err)
		}
		// A perfect fresh forecast would make the gain infinite; cap it so
		// the scorecard stays valid JSON.
		gain := 1e6
		if freshFc.WAPE > 0 {
			gain = staleFc.WAPE / freshFc.WAPE
		}
		score.Retrain = &RetrainScore{
			StaleWAPE: staleFc.WAPE,
			FreshWAPE: freshFc.WAPE,
			Gain:      round6(gain),
			Refitted:  refitted,
		}
		score.Forecast = freshFc
	} else {
		if _, err := eng.Ingest(trainArr); err != nil {
			return nil, fmt.Errorf("scenario %s: ingest: %w", tr.Name, err)
		}
		if _, err := eng.Train(); err != nil {
			return nil, fmt.Errorf("scenario %s: train: %w", tr.Name, err)
		}
		fc, err := forecastScore(eng, f.TrainEnd, testEnd, actual)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: forecast: %w", tr.Name, err)
		}
		score.Forecast = fc
	}
	score.PeriodSeconds = eng.Status().PeriodSeconds

	// Plan smoke through the engine's own planning path: the scenario
	// must exercise the same code a live control plane serves.
	if _, err := eng.Plan(engine.PlanRequest{
		Variant: "hp", Target: sc.HPTarget, Horizon: 600,
		Now: f.TrainEnd, HasNow: true,
	}); err != nil {
		return nil, fmt.Errorf("scenario %s: plan: %w", tr.Name, err)
	}

	// Closed loop: the replayed policy plans on the engine-trained
	// model, not a side-channel refit.
	model := eng.Model()
	if model == nil {
		return nil, fmt.Errorf("scenario %s: engine has no model after training", tr.Name)
	}
	tau := stats.Deterministic{Value: f.MeanPending}
	robust, err := scaler.NewRobustScaler(model.NHPP, scaler.RobustConfig{
		Variant:    scaler.HP,
		Alpha:      1 - sc.HPTarget,
		Tau:        tau,
		MCSamples:  200,
		PlanWindow: sc.Tick,
		Seed:       seed,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: policy: %w", tr.Name, err)
	}

	simCfg := sim.Config{
		Start:        f.TrainEnd,
		End:          testEnd,
		PendingDist:  tau,
		MeanPending:  f.MeanPending,
		MeanService:  f.MeanService,
		TickInterval: sc.Tick,
		Seed:         seed,
	}
	replay := func(p sim.Autoscaler) (PolicyScore, error) {
		res, err := sim.Run(testQ, p, simCfg)
		if err != nil {
			return PolicyScore{}, err
		}
		return PolicyScore{
			HitRate:          round6(res.HitRate()),
			RTAvg:            round6(res.RTAvg()),
			RTP95:            round6(res.RTQuantile(0.95)),
			RelativeCost:     round6(res.RelativeCost()),
			InstancesCreated: res.InstancesCreated,
		}, nil
	}
	if score.Robust, err = replay(robust); err != nil {
		return nil, fmt.Errorf("scenario %s: robust replay: %w", tr.Name, err)
	}
	if score.BP, err = replay(&scaler.BP{B: sc.BPSize}); err != nil {
		return nil, fmt.Errorf("scenario %s: BP replay: %w", tr.Name, err)
	}
	if score.AdapBP, err = replay(scaler.NewAdapBP(sc.AdapFactor)); err != nil {
		return nil, fmt.Errorf("scenario %s: AdapBP replay: %w", tr.Name, err)
	}

	score.Checks = evaluate(score)
	score.OK = true
	for _, c := range score.Checks {
		if !c.OK {
			score.OK = false
		}
	}
	return score, nil
}

// RunCorpus runs every scenario and assembles the scorecard. Envelope
// misses do not abort the corpus — the report records them and
// EnvelopesOK goes false, which cmd/scenario turns into a non-zero
// exit.
func RunCorpus(corpus []Scenario, baseSeed int64, quick bool) (*Report, error) {
	rep := &Report{Quick: quick, Seed: baseSeed, EnvelopesOK: true}
	for _, sc := range corpus {
		s, err := Run(sc, baseSeed, quick)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, *s)
		if !s.OK {
			rep.EnvelopesOK = false
		}
	}
	return rep, nil
}

// evaluate applies the envelope to the scores.
func evaluate(s *Score) []Check {
	e := s.Envelope
	var checks []Check
	atMost := func(name string, v, bound float64) {
		if bound > 0 {
			checks = append(checks, Check{Name: name, Value: round6(v), Bound: bound, OK: v <= bound})
		}
	}
	atLeast := func(name string, v, bound float64) {
		if bound > 0 {
			checks = append(checks, Check{Name: name, Value: round6(v), Bound: bound, OK: v >= bound})
		}
	}
	if s.Forecast != nil {
		atMost("forecast_wape", s.Forecast.WAPE, e.MaxWAPE)
		atMost("forecast_pinball90", s.Forecast.Pinball90, e.MaxPinball90)
	}
	atLeast("detected_period_seconds", s.PeriodSeconds, e.MinPeriodSeconds)
	atMost("detected_period_seconds", s.PeriodSeconds, e.MaxPeriodSeconds)
	atLeast("robust_hit_rate", s.Robust.HitRate, e.MinHitRate)
	atMost("robust_relative_cost", s.Robust.RelativeCost, e.MaxRelativeCost)
	if e.MinHitVsAdapBP != 0 {
		d := s.Robust.HitRate - s.AdapBP.HitRate
		checks = append(checks, Check{Name: "hit_vs_adapbp", Value: round6(d), Bound: e.MinHitVsAdapBP, OK: d >= e.MinHitVsAdapBP})
	}
	if e.MaxCostVsAdapBP > 0 && s.AdapBP.RelativeCost > 0 {
		r := s.Robust.RelativeCost / s.AdapBP.RelativeCost
		checks = append(checks, Check{Name: "cost_vs_adapbp", Value: round6(r), Bound: e.MaxCostVsAdapBP, OK: r <= e.MaxCostVsAdapBP})
	}
	if e.MinRetrainGain > 0 {
		v, refitted := 0.0, false
		if s.Retrain != nil {
			v, refitted = s.Retrain.Gain, s.Retrain.Refitted
		}
		checks = append(checks, Check{Name: "retrain_gain", Value: round6(v), Bound: e.MinRetrainGain, OK: refitted && v >= e.MinRetrainGain})
	}
	return checks
}

// forecastScore reads the engine's forecast over [from, to) and scores
// it against the actual binned test counts.
func forecastScore(eng *engine.Engine, from, to float64, actual *timeseries.Series) (*ForecastScore, error) {
	pts, err := eng.Forecast(from, to, forecastStep)
	if err != nil {
		return nil, err
	}
	n := actual.Len()
	if len(pts) < n {
		n = len(pts)
	}
	firstHour := int(math.Ceil(gen.Hour / forecastStep))
	var absErr, absErr1h, act, act1h, pin50, pin90 float64
	for i := 0; i < n; i++ {
		pred := pts[i].QPS * forecastStep
		a := actual.Values[i]
		diff := math.Abs(pred - a)
		absErr += diff
		act += a
		if i < firstHour {
			absErr1h += diff
			act1h += a
		}
		pin50 += pinball(a, poissonQuantile(pred, 0.5), 0.5)
		pin90 += pinball(a, poissonQuantile(pred, 0.9), 0.9)
	}
	fc := &ForecastScore{Bins: n}
	if act > 0 {
		fc.WAPE = round6(absErr / act)
		meanCount := act / float64(n)
		fc.Pinball50 = round6(pin50 / float64(n) / meanCount)
		fc.Pinball90 = round6(pin90 / float64(n) / meanCount)
	}
	if act1h > 0 {
		fc.WAPEFirstHour = round6(absErr1h / act1h)
	}
	return fc, nil
}

// pinball is the quantile (pinball) loss ρ_q(actual − predicted).
func pinball(actual, predicted, q float64) float64 {
	u := actual - predicted
	if u >= 0 {
		return q * u
	}
	return (q - 1) * u
}

// poissonQuantile returns the smallest k with P(X ≤ k) ≥ q for
// X ~ Poisson(lambda) — the count forecast at quantile q when bin
// counts follow the fitted NHPP.
func poissonQuantile(lambda, q float64) float64 {
	if lambda <= 0 {
		return 0
	}
	p := stats.Poisson{Lambda: lambda}
	// Start a few sigmas below the mean and scan; bin means in the corpus
	// are O(10²), so the scan is short.
	k := int(lambda - 10*math.Sqrt(lambda) - 2)
	if k < 0 {
		k = 0
	}
	for p.CDF(k) < q {
		k++
	}
	for k > 0 && p.CDF(k-1) >= q {
		k--
	}
	return float64(k)
}

// splitIndex returns the first index of sorted arr at or after t.
func splitIndex(arr []float64, t float64) int {
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := (lo + hi) / 2
		if arr[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// clipQueries keeps queries arriving before end.
func clipQueries(qs []sim.Query, end float64) []sim.Query {
	out := qs
	for len(out) > 0 && out[len(out)-1].Arrival >= end {
		out = out[:len(out)-1]
	}
	return out
}

// arrivalsOf projects arrival epochs.
func arrivalsOf(qs []sim.Query) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = q.Arrival
	}
	return out
}

// round6 rounds to 6 decimals so scorecards stay tidy and reruns stay
// byte-identical.
func round6(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	return math.Round(v*1e6) / 1e6
}
