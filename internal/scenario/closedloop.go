package scenario

// The closed-loop scorecard: the same corpus traces, replayed through
// the full autoscaler pipeline instead of the bare planning policy.
// Each scenario trains the real engine on the ingest phase, then drives
// the held-out test span through pipeline.SimPolicy — Collect the
// committed pool from the simulator, Analyze expected arrivals off the
// engine-trained NHPP, Optimize through the same HPA-style Decider the
// live controller runs, Actuate with the simulator's reconcile verbs —
// and scores SLO violations and cost against the BP and AdapBP
// baselines. Two pipeline variants run per scenario: "pipeline" with
// every behavior disabled (the paper's pure pool model, decision per
// tick) and "guarded" with a scale-down stabilization window and
// cooldown, which must cut instance churn without giving up the QoS
// floor — the anti-flapping claim, asserted numerically.
//
// Like SCENARIOS.json, the report is a pure function of the base seed:
// the Decider has no clock and no RNG, so reruns are byte-identical
// (CLOSEDLOOP.json is committed and gated in CI).

import (
	"fmt"

	"robustscaler/internal/engine"
	"robustscaler/internal/gen"
	"robustscaler/internal/pipeline"
	"robustscaler/internal/scaler"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
)

// ClosedLoopScenario is one closed-loop corpus entry: a base scenario
// (trace, engine knobs, baselines — its planning Envelope is ignored),
// the behaviors under test for the guarded variant, and the envelope
// the closed-loop scores are gated on.
type ClosedLoopScenario struct {
	Scenario Scenario
	// Guard is the HPA-style behavior set of the guarded variant.
	Guard engine.AutoscaleKnobs
	// Envelope bounds the closed-loop scores.
	Envelope ClosedLoopEnvelope
}

// ClosedLoopEnvelope is the per-scenario closed-loop bounds. A zero
// field skips its check.
type ClosedLoopEnvelope struct {
	// MinHitRate floors the ungated pipeline's hit rate.
	MinHitRate float64 `json:"min_hit_rate,omitempty"`
	// MaxRelativeCost caps the ungated pipeline's relative cost.
	MaxRelativeCost float64 `json:"max_relative_cost,omitempty"`
	// MinHitVsAdapBP floors pipelineHit − adapHit (negative = allowed
	// slack).
	MinHitVsAdapBP float64 `json:"min_hit_vs_adapbp,omitempty"`
	// MaxCostVsAdapBP caps pipelineRelCost / adapRelCost.
	MaxCostVsAdapBP float64 `json:"max_cost_vs_adapbp,omitempty"`
	// MinHitVsBP floors pipelineHit − bpHit.
	MinHitVsBP float64 `json:"min_hit_vs_bp,omitempty"`
	// MinGuardedHitRate floors the guarded variant's hit rate — the
	// behaviors may not buy stability by dropping queries.
	MinGuardedHitRate float64 `json:"min_guarded_hit_rate,omitempty"`
	// MaxGuardedChurnRatio caps guardedCreated / pipelineCreated: the
	// stabilization window and cooldown must reduce instance churn.
	MaxGuardedChurnRatio float64 `json:"max_guarded_churn_ratio,omitempty"`
}

// ClosedLoopScore is one scenario's closed-loop scorecard entry.
type ClosedLoopScore struct {
	Name             string             `json:"name"`
	TestQueries      int                `json:"test_queries"`
	TestSpanSeconds  float64            `json:"test_span_seconds"`
	Pipeline         PolicyScore        `json:"pipeline"`
	Decisions        pipeline.SimStats  `json:"decisions"`
	Guarded          PolicyScore        `json:"guarded"`
	GuardedDecisions pipeline.SimStats  `json:"guarded_decisions"`
	BP               PolicyScore        `json:"bp"`
	AdapBP           PolicyScore        `json:"adapbp"`
	Envelope         ClosedLoopEnvelope `json:"envelope"`
	Checks           []Check            `json:"checks"`
	OK               bool               `json:"ok"`
}

// ClosedLoopReport is the CLOSEDLOOP.json schema. No wall-clock state:
// reruns of the same corpus and seed are byte-identical.
type ClosedLoopReport struct {
	Quick       bool              `json:"quick"`
	Seed        int64             `json:"seed"`
	Scenarios   []ClosedLoopScore `json:"scenarios"`
	EnvelopesOK bool              `json:"envelopes_ok"`
}

// ClosedLoopCorpus returns the committed closed-loop corpus: the
// planning corpus's traces (matched by generator name, so the two
// scorecards exercise identical workloads) under closed-loop envelopes.
// Bounds are calibrated from full runs with margin and must hold in
// quick mode too.
func ClosedLoopCorpus() []ClosedLoopScenario {
	base := make(map[string]Scenario, 8)
	for _, sc := range Corpus() {
		base[sc.Gen.Name()] = sc
	}
	// One guard set across the corpus: a 10-minute scale-down
	// stabilization window, a 1-minute cooldown after each scale-down,
	// and a floor of one warm instance — the runbook defaults the README
	// documents.
	guard := engine.AutoscaleKnobs{
		MinReplicas:                   1,
		ScaleDownStabilizationSeconds: 600,
		ScaleDownCooldownSeconds:      60,
	}
	return []ClosedLoopScenario{
		{
			// The bread-and-butter shape: the pipeline must match the
			// planning policy's QoS-per-cost standing against the
			// baselines, and the behaviors must cut churn hard.
			Scenario: base["diurnal_weekly"],
			Guard:    guard,
			Envelope: ClosedLoopEnvelope{
				MinHitRate:           0.80,
				MaxRelativeCost:      2.0,
				MinHitVsAdapBP:       -0.05,
				MaxCostVsAdapBP:      1.15,
				MinGuardedHitRate:    0.80,
				MaxGuardedChurnRatio: 1.0,
			},
		},
		{
			// Flash crowd: untrained spike in the test window. Both the
			// pipeline and AdapBP react late; the envelope pins bounded
			// degradation, and the guard must not make the recovery worse.
			Scenario: base["flash_crowd"],
			Guard:    guard,
			Envelope: ClosedLoopEnvelope{
				MinHitRate:           0.12,
				MaxRelativeCost:      2.0,
				MinGuardedHitRate:    0.12,
				MaxGuardedChurnRatio: 1.05,
			},
		},
		{
			// Heavy-tailed bursts: the Poisson-degraded regime. The
			// pipeline must still hold the level-accuracy QoS floor at a
			// fraction of AdapBP's cost.
			Scenario: base["heavy_tail"],
			Guard:    guard,
			Envelope: ClosedLoopEnvelope{
				MinHitRate:           0.85,
				MaxRelativeCost:      2.2,
				MinHitVsAdapBP:       -0.03,
				MaxCostVsAdapBP:      0.85,
				MinGuardedHitRate:    0.85,
				MaxGuardedChurnRatio: 1.0,
			},
		},
	}
}

// RunClosedLoop drives one closed-loop scenario and scores it.
func RunClosedLoop(cl ClosedLoopScenario, baseSeed int64, quick bool) (*ClosedLoopScore, error) {
	sc := cl.Scenario
	if sc.Gen == nil {
		return nil, fmt.Errorf("closed loop: scenario has no generator")
	}
	sc.defaults()
	seed := baseSeed + sc.SeedOffset
	f := sc.Gen.Frame()
	tr := gen.Trace(sc.Gen, seed)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("closed loop %s: generated trace invalid: %w", tr.Name, err)
	}

	testEnd := f.End
	if quick && sc.QuickTestSpan > 0 && f.TrainEnd+sc.QuickTestSpan < f.End {
		testEnd = f.TrainEnd + sc.QuickTestSpan
	}
	trainQ := tr.Train()
	testQ := clipQueries(tr.Test(), testEnd)
	if len(trainQ) < 2 || len(testQ) == 0 {
		return nil, fmt.Errorf("closed loop %s: degenerate split (%d train, %d test)", tr.Name, len(trainQ), len(testQ))
	}

	// The real engine, trained through the same ingest → train path the
	// control plane serves; the pipeline's Analyze stage reads Λ off it.
	ecfg := engine.DefaultConfig()
	ecfg.Dt = sc.Dt
	ecfg.Pending = f.MeanPending
	ecfg.HistoryWindow = 0
	ecfg.MCSamples = 200
	ecfg.Seed = seed
	ecfg.Now = func() float64 { return f.TrainEnd }
	ecfg.Train = sc.trainConfig()
	eng, err := engine.New(ecfg)
	if err != nil {
		return nil, fmt.Errorf("closed loop %s: engine: %w", tr.Name, err)
	}
	if _, err := eng.Ingest(arrivalsOf(trainQ)); err != nil {
		return nil, fmt.Errorf("closed loop %s: ingest: %w", tr.Name, err)
	}
	if _, err := eng.Train(); err != nil {
		return nil, fmt.Errorf("closed loop %s: train: %w", tr.Name, err)
	}

	score := &ClosedLoopScore{
		Name:            tr.Name,
		TestQueries:     len(testQ),
		TestSpanSeconds: testEnd - f.TrainEnd,
		Envelope:        cl.Envelope,
	}

	simCfg := sim.Config{
		Start:        f.TrainEnd,
		End:          testEnd,
		PendingDist:  stats.Deterministic{Value: f.MeanPending},
		MeanPending:  f.MeanPending,
		MeanService:  f.MeanService,
		TickInterval: sc.Tick,
		Seed:         seed,
	}
	replay := func(p sim.Autoscaler) (PolicyScore, error) {
		res, err := sim.Run(testQ, p, simCfg)
		if err != nil {
			return PolicyScore{}, err
		}
		return PolicyScore{
			HitRate:          round6(res.HitRate()),
			RTAvg:            round6(res.RTAvg()),
			RTP95:            round6(res.RTQuantile(0.95)),
			RelativeCost:     round6(res.RelativeCost()),
			InstancesCreated: res.InstancesCreated,
		}, nil
	}

	// The replenish lead is the pool model's horizon: pending time plus
	// one planning tick, matching the live controller's default.
	lead := f.MeanPending + sc.Tick
	plain := &pipeline.SimPolicy{Analyzer: eng, Target: sc.HPTarget, Lead: lead}
	if score.Pipeline, err = replay(plain); err != nil {
		return nil, fmt.Errorf("closed loop %s: pipeline replay: %w", tr.Name, err)
	}
	score.Decisions = plain.Stats()
	guarded := &pipeline.SimPolicy{Analyzer: eng, Knobs: cl.Guard, Target: sc.HPTarget, Lead: lead}
	if score.Guarded, err = replay(guarded); err != nil {
		return nil, fmt.Errorf("closed loop %s: guarded replay: %w", tr.Name, err)
	}
	score.GuardedDecisions = guarded.Stats()
	if score.BP, err = replay(&scaler.BP{B: sc.BPSize}); err != nil {
		return nil, fmt.Errorf("closed loop %s: BP replay: %w", tr.Name, err)
	}
	if score.AdapBP, err = replay(scaler.NewAdapBP(sc.AdapFactor)); err != nil {
		return nil, fmt.Errorf("closed loop %s: AdapBP replay: %w", tr.Name, err)
	}

	score.Checks = evaluateClosedLoop(score)
	score.OK = true
	for _, c := range score.Checks {
		if !c.OK {
			score.OK = false
		}
	}
	return score, nil
}

// RunClosedLoopCorpus runs every closed-loop scenario and assembles the
// scorecard. Envelope misses do not abort — the report records them and
// EnvelopesOK goes false, which cmd/closedloop turns into a non-zero
// exit.
func RunClosedLoopCorpus(corpus []ClosedLoopScenario, baseSeed int64, quick bool) (*ClosedLoopReport, error) {
	rep := &ClosedLoopReport{Quick: quick, Seed: baseSeed, EnvelopesOK: true}
	for _, cl := range corpus {
		s, err := RunClosedLoop(cl, baseSeed, quick)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, *s)
		if !s.OK {
			rep.EnvelopesOK = false
		}
	}
	return rep, nil
}

// evaluateClosedLoop applies the closed-loop envelope to the scores.
func evaluateClosedLoop(s *ClosedLoopScore) []Check {
	e := s.Envelope
	var checks []Check
	atMost := func(name string, v, bound float64) {
		if bound > 0 {
			checks = append(checks, Check{Name: name, Value: round6(v), Bound: bound, OK: v <= bound})
		}
	}
	atLeast := func(name string, v, bound float64) {
		if bound > 0 {
			checks = append(checks, Check{Name: name, Value: round6(v), Bound: bound, OK: v >= bound})
		}
	}
	atLeast("pipeline_hit_rate", s.Pipeline.HitRate, e.MinHitRate)
	atMost("pipeline_relative_cost", s.Pipeline.RelativeCost, e.MaxRelativeCost)
	if e.MinHitVsAdapBP != 0 {
		d := s.Pipeline.HitRate - s.AdapBP.HitRate
		checks = append(checks, Check{Name: "hit_vs_adapbp", Value: round6(d), Bound: e.MinHitVsAdapBP, OK: d >= e.MinHitVsAdapBP})
	}
	if e.MaxCostVsAdapBP > 0 && s.AdapBP.RelativeCost > 0 {
		r := s.Pipeline.RelativeCost / s.AdapBP.RelativeCost
		checks = append(checks, Check{Name: "cost_vs_adapbp", Value: round6(r), Bound: e.MaxCostVsAdapBP, OK: r <= e.MaxCostVsAdapBP})
	}
	if e.MinHitVsBP != 0 {
		d := s.Pipeline.HitRate - s.BP.HitRate
		checks = append(checks, Check{Name: "hit_vs_bp", Value: round6(d), Bound: e.MinHitVsBP, OK: d >= e.MinHitVsBP})
	}
	atLeast("guarded_hit_rate", s.Guarded.HitRate, e.MinGuardedHitRate)
	if e.MaxGuardedChurnRatio > 0 && s.Pipeline.InstancesCreated > 0 {
		r := float64(s.Guarded.InstancesCreated) / float64(s.Pipeline.InstancesCreated)
		checks = append(checks, Check{Name: "guarded_churn_ratio", Value: round6(r), Bound: e.MaxGuardedChurnRatio, OK: r <= e.MaxGuardedChurnRatio})
	}
	return checks
}
