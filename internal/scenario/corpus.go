package scenario

import (
	"robustscaler/internal/gen"
	"robustscaler/internal/stats"
)

// frame builds the shared corpus frame: exponential 30 s service times
// and the paper's 13 s pod startup.
func frame(end, trainEnd float64) gen.Frame {
	return gen.Frame{
		Start:       0,
		End:         end,
		TrainEnd:    trainEnd,
		MeanPending: 13,
		Service:     stats.Exponential{Mean: 30},
		MeanService: 30,
	}
}

// Corpus returns the committed scenario corpus: one entry per generator
// family plus a composition, each with the envelope its SCENARIOS.json
// scores are gated on. Envelope bounds are calibrated from full-corpus
// runs with margin; they must hold in quick mode too (quick only
// truncates the replayed test span).
func Corpus() []Scenario {
	dw := frame(4*gen.Week, 3*gen.Week)
	day := frame(gen.Day, 18*gen.Hour)
	twoDay := frame(2*gen.Day, gen.Day)
	twoWeek := frame(2*gen.Week, 11*gen.Day)

	return []Scenario{
		{
			// Diurnal + weekly sinusoid mix: the bread-and-butter shape the
			// NHPP model must nail — period recovered, tight forecast, and
			// the robust policy at or above the baselines on QoS per cost.
			Gen: gen.MultiPeriodic{ID: "diurnal_weekly", Span: dw, Level: 0.05,
				Harmonics: []gen.Harmonic{{Period: gen.Day, Amp: 0.6}, {Period: gen.Week, Amp: 0.3}}},
			SeedOffset:      101,
			AggregateWindow: 60, // hourly aggregation before detection
			MinPeriod:       12,
			BPSize:          2,
			AdapFactor:      40,
			QuickTestSpan:   gen.Day,
			Envelope: Envelope{
				MaxWAPE:          0.40,
				MaxPinball90:     0.60,
				MinPeriodSeconds: 0.9 * gen.Day,
				MaxPeriodSeconds: 1.1 * gen.Week,
				MinHitRate:       0.80,
				MaxRelativeCost:  2.0,
				MinHitVsAdapBP:   -0.05,
				MaxCostVsAdapBP:  1.15,
			},
		},
		{
			// Flash crowd: the spike hits inside the test window, untrained.
			// No forecast can see it coming — the envelope pins how the
			// policies degrade, not prophecy: the robust policy must stay
			// within slack of AdapBP (both react late) at bounded cost.
			Gen: gen.FlashCrowd{ID: "flash_crowd", Span: day, Base: 0.05,
				SpikeAt: 20 * gen.Hour, Peak: 1.0, RampUp: 120, Decay: 1800},
			SeedOffset:      102,
			AggregateWindow: 10,
			MinPeriod:       3,
			BPSize:          2,
			AdapFactor:      120,
			QuickTestSpan:   3 * gen.Hour,
			Envelope: Envelope{
				MaxWAPE:         1.2,
				MinHitRate:      0.12,
				MaxRelativeCost: 2.0,
			},
		},
		{
			// Heavy-tailed bursts: Pareto inter-arrivals and service times,
			// the regime where Poisson math degrades. Only level-accuracy
			// and bounded-degradation claims are enforceable.
			Gen: gen.HeavyTail{ID: "heavy_tail", Span: twoDay, MeanGap: 20,
				TailIndex: 1.5, ServiceTailIndex: 1.8},
			SeedOffset:      103,
			AggregateWindow: 10,
			MinPeriod:       3,
			BPSize:          3,
			AdapFactor:      120,
			QuickTestSpan:   4 * gen.Hour,
			Envelope: Envelope{
				MaxWAPE:         1.2,
				MinHitRate:      0.85,
				MaxRelativeCost: 2.2,
				MinHitVsAdapBP:  -0.03,
				MaxCostVsAdapBP: 0.80,
			},
		},
		{
			// Regime change: the level shifts 6× mid-training. The two-phase
			// loop trains on the pre-change prefix, must be marked stale by
			// the post-change ingest, and the tripped refit must shrink the
			// forecast error by the envelope's gain factor.
			Gen: gen.RegimeChange{ID: "regime_change", Span: day,
				Regimes:    []gen.Regime{{Until: 12 * gen.Hour, Level: 0.05}, {Level: 0.3}},
				DiurnalAmp: 0.2},
			SeedOffset:      104,
			AggregateWindow: 10,
			MinPeriod:       3,
			BPSize:          5,
			AdapFactor:      30,
			RetrainAt:       12 * gen.Hour,
			QuickTestSpan:   3 * gen.Hour,
			Envelope: Envelope{
				MaxWAPE:         0.50,
				MinRetrainGain:  2.0,
				MinHitRate:      0.80,
				MaxRelativeCost: 2.0,
				MinHitVsAdapBP:  -0.13,
				MaxCostVsAdapBP: 1.00,
			},
		},
		{
			// Composite: diurnal base + heavy-tailed background + a flash
			// crowd in the test window — the everything-at-once stress. The
			// diurnal mass dominates, so forecast and QoS envelopes hold,
			// looser than the clean diurnal scenario.
			Gen: gen.Composite{ID: "composite", Span: twoWeek, Parts: []gen.Generator{
				gen.MultiPeriodic{ID: "composite/diurnal", Span: twoWeek, Level: 0.04,
					Harmonics: []gen.Harmonic{{Period: gen.Day, Amp: 0.5}}},
				gen.HeavyTail{ID: "composite/heavy", Span: twoWeek, MeanGap: 120, TailIndex: 1.6},
				gen.FlashCrowd{ID: "composite/flash", Span: twoWeek, Base: 0.01,
					SpikeAt: 11.5 * gen.Day, Peak: 0.8, RampUp: 120, Decay: 1800},
			}},
			SeedOffset:      105,
			AggregateWindow: 60,
			MinPeriod:       12,
			BPSize:          3,
			AdapFactor:      120,
			QuickTestSpan:   gen.Day,
			Envelope: Envelope{
				MaxWAPE:          0.80,
				MinPeriodSeconds: 0.9 * gen.Day,
				MaxPeriodSeconds: 1.1 * gen.Day,
				MinHitRate:       0.65,
				MaxRelativeCost:  2.2,
				MaxCostVsAdapBP:  0.80,
			},
		},
	}
}
