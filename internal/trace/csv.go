package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"robustscaler/internal/sim"
)

// WriteCSV encodes the trace as CSV with header
// "arrival_s,service_s" — the interchange format of the cmd tools.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arrival_s", "service_s"}); err != nil {
		return err
	}
	for _, q := range t.Queries {
		rec := []string{
			strconv.FormatFloat(q.Arrival, 'g', -1, 64),
			strconv.FormatFloat(q.Service, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a trace written by WriteCSV. Name, time range and split
// are supplied by the caller; trainFrac in (0,1] positions TrainEnd.
func ReadCSV(r io.Reader, name string, trainFrac float64) (*Trace, error) {
	if trainFrac <= 0 || trainFrac > 1 {
		return nil, fmt.Errorf("trace: trainFrac %g outside (0,1]", trainFrac)
	}
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	start := 0
	if rows[0][0] == "arrival_s" {
		start = 1
	}
	t := &Trace{Name: name}
	for i := start; i < len(rows); i++ {
		if len(rows[i]) < 2 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want 2", i, len(rows[i]))
		}
		a, err := strconv.ParseFloat(rows[i][0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d arrival: %w", i, err)
		}
		s, err := strconv.ParseFloat(rows[i][1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d service: %w", i, err)
		}
		t.Queries = append(t.Queries, sim.Query{Arrival: a, Service: s})
	}
	t.sortQueries()
	if n := len(t.Queries); n > 0 {
		t.Start = t.Queries[0].Arrival
		t.End = t.Queries[n-1].Arrival + 1
		t.TrainEnd = t.Start + trainFrac*(t.End-t.Start)
		var sum float64
		for _, q := range t.Queries {
			sum += q.Service
		}
		t.MeanService = sum / float64(n)
	}
	return t, nil
}
