package trace

import (
	"bytes"
	"math"
	"testing"

	"robustscaler/internal/periodicity"
	"robustscaler/internal/sim"
)

func TestSyntheticCRSShape(t *testing.T) {
	tr := SyntheticCRS(1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	n := len(tr.Queries)
	// Paper: 21 059 queries over 4 weeks. Allow generous slack for the
	// stochastic draw.
	if n < 10000 || n > 45000 {
		t.Fatalf("CRS has %d queries, want ≈21k", n)
	}
	meanQPS := float64(n) / (4 * week)
	if meanQPS < 0.004 || meanQPS > 0.02 {
		t.Fatalf("CRS mean QPS %g, want ≈0.0087", meanQPS)
	}
	if tr.TrainEnd != 3*week {
		t.Fatalf("train split at %g, want 3 weeks", tr.TrainEnd)
	}
	// Heavy-tailed service times around the paper's ≈175 s floor.
	var sum float64
	for _, q := range tr.Queries {
		sum += q.Service
	}
	mean := sum / float64(n)
	if mean < 100 || mean > 260 {
		t.Fatalf("CRS mean service %g, want ≈170", mean)
	}
}

func TestSyntheticCRSWeeklyPeriodDetectable(t *testing.T) {
	tr := SyntheticCRS(2)
	// Aggregate to 1-hour bins; weekly period = 168 bins.
	s := tr.TrainCountSeries(3600)
	opt := periodicity.DefaultOptions()
	opt.MinPeriod = 12
	res, ok := periodicity.Detect(s, opt)
	if !ok {
		t.Fatal("no period detected in CRS stand-in")
	}
	// Accept the daily (24) or weekly (168) harmonic.
	if !(near(res.Period, 24, 4) || near(res.Period, 168, 17)) {
		t.Fatalf("detected period %d h, want ≈24 or ≈168", res.Period)
	}
}

func near(got, want, tol int) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestSyntheticGoogleShape(t *testing.T) {
	tr := SyntheticGoogle(3)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	n := len(tr.Queries)
	// Paper: 20 254 jobs over 24 h.
	if n < 10000 || n > 40000 {
		t.Fatalf("Google has %d queries, want ≈20k", n)
	}
	// Spikes: the max 1-minute bin should dwarf the median bin.
	s := tr.CountSeries(60)
	med := s.Median()
	var max float64
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	if max < 4*(med+1) {
		t.Fatalf("Google spikes missing: max bin %g vs median %g", max, med)
	}
}

func TestSyntheticAlibabaShapeAndBurst(t *testing.T) {
	tr := SyntheticAlibaba(4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	n := len(tr.Queries)
	// Paper: 503 850 jobs over 5 days.
	if n < 250000 || n > 900000 {
		t.Fatalf("Alibaba has %d queries, want ≈500k", n)
	}
	// The day-4 burst must clearly exceed the same window on other days.
	b0, b1 := AlibabaBurstWindow()
	countIn := func(a, b float64) int {
		c := 0
		for _, q := range tr.Queries {
			if q.Arrival >= a && q.Arrival < b {
				c++
			}
		}
		return c
	}
	burst := countIn(b0, b1)
	sameWindowDay1 := countIn(b0-2*day, b1-2*day)
	if burst < 3*sameWindowDay1 {
		t.Fatalf("burst count %d not anomalous vs %d", burst, sameWindowDay1)
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := SyntheticGoogle(7)
	b := SyntheticGoogle(7)
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatalf("same seed diverged at query %d", i)
		}
	}
	c := SyntheticGoogle(8)
	if len(a.Queries) == len(c.Queries) {
		same := true
		for i := range a.Queries {
			if a.Queries[i] != c.Queries[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestTrainTestSplit(t *testing.T) {
	tr := SyntheticGoogle(5)
	train, test := tr.Train(), tr.Test()
	if len(train)+len(test) != len(tr.Queries) {
		t.Fatal("split loses queries")
	}
	for _, q := range train {
		if q.Arrival >= tr.TrainEnd {
			t.Fatal("train query past split")
		}
	}
	for _, q := range test {
		if q.Arrival < tr.TrainEnd {
			t.Fatal("test query before split")
		}
	}
}

func TestRemoveRange(t *testing.T) {
	tr := &Trace{Name: "x", Start: 0, End: 100, TrainEnd: 50,
		Queries: []sim.Query{{Arrival: 10, Service: 1}, {Arrival: 20, Service: 1}, {Arrival: 30, Service: 1}, {Arrival: 40, Service: 1}}}
	tr.RemoveRange(15, 35)
	if len(tr.Queries) != 2 {
		t.Fatalf("RemoveRange kept %d, want 2", len(tr.Queries))
	}
	if tr.Queries[0].Arrival != 10 || tr.Queries[1].Arrival != 40 {
		t.Fatal("wrong queries kept")
	}
}

func TestThin(t *testing.T) {
	tr := SyntheticGoogle(6)
	before := len(tr.Queries)
	b0, b1 := 0.0, 6*hour
	countIn := func() int {
		c := 0
		for _, q := range tr.Queries {
			if q.Arrival >= b0 && q.Arrival < b1 {
				c++
			}
		}
		return c
	}
	inBefore := countIn()
	tr.Thin(b0, b1, 0.25, 9)
	inAfter := countIn()
	if math.Abs(float64(inAfter)-0.25*float64(inBefore)) > 0.08*float64(inBefore) {
		t.Fatalf("Thin kept %d of %d, want ≈25%%", inAfter, inBefore)
	}
	if len(tr.Queries)-inAfter != before-inBefore {
		t.Fatal("Thin touched queries outside the window")
	}
}

func TestPerturb(t *testing.T) {
	tr := SyntheticGoogle(7)
	orig := tr.Clone()
	tr.Perturb(2, 10)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deletion windows [h, h+300) must be (nearly) empty.
	for _, q := range tr.Queries {
		off := math.Mod(q.Arrival-tr.Start, hour)
		if off >= 30 && off < 270 { // interior, away from jittered edges
			t.Fatalf("query at offset %g inside deletion window", off)
		}
	}
	// Addition windows should have grown roughly (1+c)×.
	countWindow := func(tt *Trace, lo, hi float64) int {
		c := 0
		for _, q := range tt.Queries {
			off := math.Mod(q.Arrival-tt.Start, hour)
			if off >= lo && off < hi {
				c++
			}
		}
		return c
	}
	before := countWindow(orig, 360, 660)
	after := countWindow(tr, 330, 690) // widened for jitter
	if after < 2*before {
		t.Fatalf("addition windows grew %d → %d, want ≈3×", before, after)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := SyntheticGoogle(11)
	cp := tr.Clone()
	cp.Queries[0].Arrival = -999
	if tr.Queries[0].Arrival == -999 {
		t.Fatal("Clone aliases queries")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := &Trace{Name: "rt", Start: 0, End: 100, TrainEnd: 50,
		Queries: []sim.Query{{Arrival: 1.5, Service: 2.25}, {Arrival: 3.75, Service: 10}, {Arrival: 99, Service: 0.5}}}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "rt", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Queries) != 3 {
		t.Fatalf("round trip has %d queries", len(back.Queries))
	}
	for i := range back.Queries {
		if back.Queries[i] != tr.Queries[i] {
			t.Fatalf("query %d mismatch: %+v vs %+v", i, back.Queries[i], tr.Queries[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString(""), "x", 0.5); err == nil {
		t.Fatal("empty CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("arrival_s,service_s\nnope,1\n"), "x", 0.5); err == nil {
		t.Fatal("bad float accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1,2\n"), "x", 0); err == nil {
		t.Fatal("bad trainFrac accepted")
	}
}

func TestCountSeriesTotals(t *testing.T) {
	tr := SyntheticGoogle(12)
	s := tr.CountSeries(60)
	if int(s.Total()) != len(tr.Queries) {
		t.Fatalf("CountSeries total %g != %d queries", s.Total(), len(tr.Queries))
	}
}
