// Package trace provides workload traces for the experiments: synthetic
// stand-ins for the three real-world traces the paper evaluates on (which
// are proprietary or require external downloads), the perturbation and
// missing-data injectors of Sec. VII, and CSV encoding for external
// traces. Each generator reproduces the structural properties the paper
// highlights — rate level, periodicity, noise, spikes — so the autoscalers
// exercise identical code paths; see DESIGN.md §3 for the substitution
// rationale.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/sim"
	"robustscaler/internal/timeseries"
)

// Trace is a replayable workload with its train/test split and the
// pending-time scale its experiments use.
type Trace struct {
	Name    string
	Queries []sim.Query
	Start   float64 // seconds
	End     float64
	// TrainEnd splits training data [Start, TrainEnd) from test data
	// [TrainEnd, End).
	TrainEnd float64
	// MeanPending µτ and MeanService µs document the trace's instance
	// startup scale and average processing time.
	MeanPending float64
	MeanService float64
}

const (
	day  = 86400.0
	week = 7 * day
	hour = 3600.0
)

// Train returns the training-portion queries.
func (t *Trace) Train() []sim.Query { return t.rangeQueries(t.Start, t.TrainEnd) }

// Test returns the test-portion queries.
func (t *Trace) Test() []sim.Query { return t.rangeQueries(t.TrainEnd, t.End) }

func (t *Trace) rangeQueries(a, b float64) []sim.Query {
	var out []sim.Query
	for _, q := range t.Queries {
		if q.Arrival >= a && q.Arrival < b {
			out = append(out, q)
		}
	}
	return out
}

// CountSeries bins the full trace's arrivals into counts with the given
// Δt (seconds).
func (t *Trace) CountSeries(dt float64) *timeseries.Series {
	arr := make([]float64, len(t.Queries))
	for i, q := range t.Queries {
		arr[i] = q.Arrival
	}
	return timeseries.FromArrivals(arr, t.Start, t.End, dt)
}

// TrainCountSeries bins only the training portion.
func (t *Trace) TrainCountSeries(dt float64) *timeseries.Series {
	arr := []float64{}
	for _, q := range t.Train() {
		arr = append(arr, q.Arrival)
	}
	return timeseries.FromArrivals(arr, t.Start, t.TrainEnd, dt)
}

// Clone deep-copies the trace.
func (t *Trace) Clone() *Trace {
	out := *t
	out.Queries = make([]sim.Query, len(t.Queries))
	copy(out.Queries, t.Queries)
	return &out
}

// sortQueries restores arrival order after edits.
func (t *Trace) sortQueries() {
	sort.Slice(t.Queries, func(i, j int) bool {
		return t.Queries[i].Arrival < t.Queries[j].Arrival
	})
}

// RemoveRange deletes all queries with arrival in [a, b) — the paper's
// missing-data injection (an entire day is removed from the CRS trace).
func (t *Trace) RemoveRange(a, b float64) {
	kept := t.Queries[:0]
	for _, q := range t.Queries {
		if q.Arrival < a || q.Arrival >= b {
			kept = append(kept, q)
		}
	}
	t.Queries = kept
}

// Thin keeps each query in [a, b) with probability keep — used to erase
// the Alibaba burst down to its baseline level.
func (t *Trace) Thin(a, b, keep float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	kept := t.Queries[:0]
	for _, q := range t.Queries {
		if q.Arrival >= a && q.Arrival < b && rng.Float64() >= keep {
			continue
		}
		kept = append(kept, q)
	}
	t.Queries = kept
}

// Perturb applies the Sec. VII-B1 perturbation of size c: starting from
// the trace beginning, every hour the queries inside a five-minute window
// are deleted; starting from the sixth minute, every hour c additional
// copies of the queries inside a five-minute window are injected (with
// small jitter so arrivals stay distinct).
func (t *Trace) Perturb(c int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	// Delete [h·3600, h·3600+300).
	kept := t.Queries[:0]
	for _, q := range t.Queries {
		off := math.Mod(q.Arrival-t.Start, hour)
		if off >= 0 && off < 300 {
			continue
		}
		kept = append(kept, q)
	}
	t.Queries = kept
	// Duplicate queries in [h·3600+360, h·3600+660) c times.
	var added []sim.Query
	for _, q := range t.Queries {
		off := math.Mod(q.Arrival-t.Start, hour)
		if off >= 360 && off < 660 {
			for k := 0; k < c; k++ {
				jitter := (rng.Float64() - 0.5) * 60
				a := q.Arrival + jitter
				if a < t.Start {
					a = t.Start
				}
				if a >= t.End {
					a = t.End - 1e-6
				}
				added = append(added, sim.Query{Arrival: a, Service: q.Service})
			}
		}
	}
	t.Queries = append(t.Queries, added...)
	t.sortQueries()
}

// hourlyNoise builds a deterministic log-normal multiplier per hour,
// giving traces the rough, non-smooth texture of real QPS series.
func hourlyNoise(rng *rand.Rand, hours int, sigma float64) []float64 {
	m := make([]float64, hours+1)
	for i := range m {
		m[i] = math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
	}
	return m
}

// generate draws an NHPP trace from the intensity and attaches service
// times from the sampler.
func generate(name string, seed int64, in nhpp.Intensity, start, end, trainEnd float64,
	service func(rng *rand.Rand) float64, meanPending, meanService float64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	arrivals := nhpp.Simulate(rng, in, start, end)
	qs := make([]sim.Query, len(arrivals))
	for i, a := range arrivals {
		qs[i] = sim.Query{Arrival: a, Service: service(rng)}
	}
	return &Trace{
		Name:        name,
		Queries:     qs,
		Start:       start,
		End:         end,
		TrainEnd:    trainEnd,
		MeanPending: meanPending,
		MeanService: meanService,
	}
}

// SyntheticCRS reproduces the structure of the container-registry trace:
// four weeks, ≈21k queries (mean QPS ≈ 0.0087), a weekly cycle with
// work-hour days, strong hourly noise, and heavy-tailed processing times
// whose mean sits near the paper's ≈175 s response-time floor. The first
// three weeks are training data, the last week is test data.
func SyntheticCRS(seed int64) *Trace {
	noiseRng := rand.New(rand.NewSource(seed ^ 0x5eed0c25))
	noise := hourlyNoise(noiseRng, int(4*week/hour), 0.25)
	in := nhpp.Func{
		F: func(t float64) float64 {
			d := math.Mod(t, day) / day   // position in day
			w := math.Mod(t, week) / week // position in week
			// Weekday factor: weekends quieter.
			wd := 1.0
			if w >= 5.0/7 {
				wd = 0.35
			}
			// Daytime hump.
			diurnal := 0.25 + 1.5*math.Exp(-squared((d-0.55)/0.18))
			base := 0.0087 * wd * diurnal / 0.82 // normalized to mean ≈ 0.0087
			h := int(t / hour)
			if h >= 0 && h < len(noise) {
				base *= noise[h]
			}
			return base
		},
		Step:       60,
		MaxHorizon: 5 * week,
	}
	svc := func(rng *rand.Rand) float64 {
		// LogNormal(µ=ln 64, σ=1.4): mean ≈ 170 s, 99.9% ≈ 5 000 s —
		// matching the paper's RT floor near 180 s and multi-thousand
		// second tail quantiles.
		return math.Exp(math.Log(64) + 1.4*rng.NormFloat64())
	}
	return generate("CRS", seed, in, 0, 4*week, 3*week, svc, 30, 170)
}

// SyntheticGoogle reproduces the Google cluster 2019 "cluster b" day:
// 24 hours, ≈20k jobs (mean QPS ≈ 0.23), recurrent sharp spikes on an
// hourly lattice over a diurnal baseline. First 18 h train, last 6 h test.
func SyntheticGoogle(seed int64) *Trace {
	noiseRng := rand.New(rand.NewSource(seed ^ 0x900913))
	noise := hourlyNoise(noiseRng, 24, 0.15)
	in := nhpp.Func{
		F: func(t float64) float64 {
			d := math.Mod(t, day) / day
			base := 0.12 * (1 + 0.5*math.Sin(2*math.Pi*(d-0.25)))
			// Recurrent spike in the first 5 minutes of every hour.
			off := math.Mod(t, hour)
			if off < 300 {
				base += 1.3
			}
			h := int(t / hour)
			if h >= 0 && h < len(noise) {
				base *= noise[h]
			}
			return base
		},
		Step:       30,
		MaxHorizon: 2 * day,
	}
	svc := func(rng *rand.Rand) float64 { return rng.ExpFloat64() * 120 }
	return generate("Google", seed, in, 0, day, 18*hour, svc, 13, 120)
}

// SyntheticAlibaba reproduces the Alibaba cluster 2018 slice: five days,
// ≈500k jobs (mean QPS ≈ 1.17), diurnal periodicity with recurrent
// spikes, plus one unexpected burst on day four — the anomaly the paper's
// robustness study removes. First four days train, last day test.
func SyntheticAlibaba(seed int64) *Trace {
	noiseRng := rand.New(rand.NewSource(seed ^ 0xa11baba))
	noise := hourlyNoise(noiseRng, int(5*day/hour), 0.15)
	in := nhpp.Func{
		F: func(t float64) float64 {
			d := math.Mod(t, day) / day
			base := 1.0 * (0.45 + 1.1*math.Exp(-squared((d-0.5)/0.22)))
			// Recurrent spikes every 6 hours.
			off := math.Mod(t, 6*hour)
			if off < 600 {
				base += 2.0
			}
			// Unexpected burst on day 4: 40 minutes at ~6× the peak.
			if t >= 3.3*day && t < 3.3*day+2400 {
				base += 8.0
			}
			h := int(t / hour)
			if h >= 0 && h < len(noise) {
				base *= noise[h]
			}
			return base
		},
		Step:       30,
		MaxHorizon: 6 * day,
	}
	svc := func(rng *rand.Rand) float64 { return rng.ExpFloat64() * 60 }
	return generate("Alibaba", seed, in, 0, 5*day, 4*day, svc, 13, 60)
}

// AlibabaBurstWindow reports the synthetic Alibaba anomaly interval, used
// by the robustness experiment to erase it.
func AlibabaBurstWindow() (float64, float64) { return 3.3 * day, 3.3*day + 2400 }

func squared(x float64) float64 { return x * x }

// Validate checks trace invariants: sorted arrivals within range and
// positive service times.
func (t *Trace) Validate() error {
	prev := math.Inf(-1)
	for i, q := range t.Queries {
		if q.Arrival < t.Start || q.Arrival >= t.End {
			return fmt.Errorf("trace %s: query %d arrival %g outside [%g,%g)", t.Name, i, q.Arrival, t.Start, t.End)
		}
		if q.Arrival < prev {
			return fmt.Errorf("trace %s: query %d out of order", t.Name, i)
		}
		if q.Service <= 0 {
			return fmt.Errorf("trace %s: query %d non-positive service %g", t.Name, i, q.Service)
		}
		prev = q.Arrival
	}
	if t.TrainEnd <= t.Start || t.TrainEnd > t.End {
		return fmt.Errorf("trace %s: bad train split %g", t.Name, t.TrainEnd)
	}
	return nil
}
