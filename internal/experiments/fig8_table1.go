package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"robustscaler/internal/decision"
	"robustscaler/internal/nhpp"
	"robustscaler/internal/scaler"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
)

// fig8Intensity is the paper's synthetic high-QPS intensity
// λ(t) = peak·(4·u·(1−u))^40 + 0.001 with u = (t mod 3600)/3600 — an
// hourly cycle whose peak the paper sets so QPS spans many orders of
// magnitude. (The paper's text mentions QPS up to 10⁴ while its formula
// peaks at 10³; we follow the formula and sweep the peak separately in
// ExpFig8.)
func fig8Intensity(peak float64) nhpp.Func {
	return nhpp.Func{
		F: func(t float64) float64 {
			u := math.Mod(t, 3600) / 3600
			return peak*math.Pow(4*u*(1-u), 40) + 0.001
		},
		Step:       1,
		MaxHorizon: 36000,
	}
}

// ExpFig8 measures the runtime of one scaling-decision update (solving
// (3), (5) or (7) for every query expected in the next Δ = 5 s) as the
// QPS grows — the paper's Fig. 8 scatter. Monte Carlo size is R = 1000
// (paper setting; Quick mode reduces it).
func (r *Runner) ExpFig8() []*Table {
	qpsGrid := []float64{0.01, 0.1, 1, 10, 100, 1000, 10000}
	if r.opt.Quick {
		qpsGrid = []float64{0.1, 10, 1000}
	}
	mc := 1000
	if r.opt.Quick {
		mc = 200
	}
	const delta = 5.0
	t := &Table{
		ID:     "Fig8",
		Title:  "Runtime (s) of one decision update (Δ=5 s window, R=1000 MC) vs QPS",
		Header: []string{"qps", "decisions", "HP_runtime_s", "RT_runtime_s", "cost_runtime_s"},
	}
	rng := rand.New(rand.NewSource(r.opt.Seed + 41))
	tauD := stats.Deterministic{Value: 13}
	for _, qps := range qpsGrid {
		in := nhpp.Constant{Lambda: qps}
		k := int(qps*delta) + 1
		times := make(map[string]float64, 3)
		var decided int
		for _, variant := range []string{"HP", "RT", "cost"} {
			h := decision.NewHorizon(in, 0, math.Max(delta/float64(k), 1e-4), 0)
			xi := make([]float64, mc)
			tau := make([]float64, mc)
			start := time.Now()
			decided = 0
			for i := 1; i <= k; i++ {
				for s := range xi {
					u, ok := h.SampleArrival(rng, i)
					if !ok {
						u = delta * 10
					}
					xi[s] = u
					tau[s] = tauD.Value
				}
				switch variant {
				case "HP":
					decision.SolveHP(xi, tau, 0.1)
				case "RT":
					decision.SolveRT(xi, tau, 1.0)
				case "cost":
					decision.SolveCost(xi, tau, 2.0)
				}
				decided++
			}
			times[variant] = time.Since(start).Seconds()
		}
		t.Rows = append(t.Rows, []string{
			f(qps), fmt.Sprintf("%d", decided),
			f(times["HP"]), f(times["RT"]), f(times["cost"]),
		})
	}
	return []*Table{t}
}

// ExpTable1 reproduces Table I: on the synthetic high-QPS trace, each
// RobustScaler variant is run with Monte Carlo approximation and the
// achieved QoS/cost level is compared against its target (HP 0.9, net RT
// 1 s, idle cost 2 s).
func (r *Runner) ExpTable1() []*Table {
	peak := 200.0 // paper formula peak is 1000; reduced for tractable replay
	horizon := 7 * 3600.0
	trainEnd := 6 * 3600.0
	if r.opt.Quick {
		peak = 20
	}
	in := fig8Intensity(peak)
	rng := rand.New(rand.NewSource(r.opt.Seed + 42))
	arrivals := nhpp.Simulate(rng, in, 0, horizon)
	queries := make([]sim.Query, len(arrivals))
	for i, a := range arrivals {
		queries[i] = sim.Query{Arrival: a, Service: stats.Exponential{Mean: 20}.Sample(rng)}
	}
	// Train on the first six hours.
	var trainArr []float64
	var testQ []sim.Query
	for i, a := range arrivals {
		if a < trainEnd {
			trainArr = append(trainArr, a)
		} else {
			testQ = append(testQ, queries[i])
		}
	}
	model := r.fitSynthetic(trainArr, trainEnd)

	tauD := stats.Deterministic{Value: 13}
	mc := 1000
	if r.opt.Quick {
		mc = 200
	}
	const delta = 5.0
	run := func(v scaler.Variant, value float64) *sim.Result {
		cfg := scaler.RobustConfig{
			Variant: v, Tau: tauD, MCSamples: mc, PlanWindow: delta,
			Seed: r.opt.Seed + 43,
		}
		switch v {
		case scaler.HP:
			cfg.Alpha = 1 - value
		case scaler.RT:
			cfg.RTTarget = value
		case scaler.Cost:
			cfg.CostBudget = value
		}
		p, err := scaler.NewRobustScaler(model, cfg)
		if err != nil {
			panic(err)
		}
		res, err := sim.Run(testQ, p, sim.Config{
			Start: trainEnd, End: horizon,
			PendingDist: tauD, MeanPending: 13, MeanService: 20,
			TickInterval: delta, Seed: r.opt.Seed + 44,
		})
		if err != nil {
			panic(err)
		}
		return res
	}
	t := &Table{
		ID:     "Table1",
		Title:  "Accuracy of RobustScalers with Monte Carlo approximation on simulated data",
		Header: []string{"variant", "target", "achieved"},
	}
	resHP := run(scaler.HP, 0.9)
	t.Rows = append(t.Rows, []string{"RobustScaler-HP (hit prob)", "0.9", f(resHP.HitRate())})
	resRT := run(scaler.RT, 1.0)
	t.Rows = append(t.Rows, []string{"RobustScaler-RT (net RT, s)", "1", f(stats.Mean(resRT.Waits))})
	resC := run(scaler.Cost, 2.0)
	t.Rows = append(t.Rows, []string{"RobustScaler-cost (idle s/instance)", "2", f(resC.IdleCostPerQuery(13))})
	return []*Table{t}
}

// fitSynthetic trains an NHPP on raw arrivals with Δt = 60 s and the
// known hourly period.
func (r *Runner) fitSynthetic(arrivals []float64, end float64) *nhpp.Model {
	dt := 60.0
	n := int(end / dt)
	counts := make([]float64, n)
	for _, a := range arrivals {
		idx := int(a / dt)
		if idx >= 0 && idx < n {
			counts[idx]++
		}
	}
	cfg := nhpp.DefaultFitConfig()
	cfg.Period = 60 // 3600 s / 60 s bins
	m, _, err := nhpp.Fit(0, dt, counts, cfg)
	if err != nil {
		panic(err)
	}
	return m
}
