package experiments

import (
	"fmt"

	"robustscaler/internal/scaler"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
	"robustscaler/internal/trace"
)

// ExpFig9 reproduces the robustness study of Fig. 9: QoS/cost sweeps of
// RobustScaler-HP and RobustScaler-cost on (a,b) the CRS trace with and
// without a full missing day, and (c,d) the Alibaba trace with and
// without its day-4 burst anomaly. Robust behaviour means near-identical
// metric pairs across the "w/" and "w/o" rows.
func (r *Runner) ExpFig9() []*Table {
	var tables []*Table

	// CRS: remove one entire day of the fourth (test) week, and also from
	// any retraining input; per the paper the metrics should barely move.
	crs := r.Trace("crs")
	missing := crs.Clone()
	missingDayStart := crs.TrainEnd + 86400
	missing.RemoveRange(missingDayStart, missingDayStart+86400)
	// Also drop a training day to exercise the model's robustness.
	missing.RemoveRange(14*86400, 15*86400)
	mOrig := r.Model("crs")
	mMiss := r.trainOn(missing)
	tables = append(tables, r.robustnessSweep("Fig9-CRS", "CRS with vs without missing data",
		crs, missing, mOrig.NHPP, mMiss.NHPP))

	// Alibaba: erase the day-4 burst down to its baseline.
	ali := r.Trace("alibaba")
	noBurst := ali.Clone()
	b0, b1 := trace.AlibabaBurstWindow()
	noBurst.Thin(b0, b1, 0.2, r.opt.Seed+51)
	mAli := r.Model("alibaba")
	mNoBurst := r.trainOn(noBurst)
	tables = append(tables, r.robustnessSweep("Fig9-Alibaba", "Alibaba with vs without burst anomaly",
		ali, noBurst, mAli.NHPP, mNoBurst.NHPP))
	return tables
}

// robustnessSweep runs HP and cost sweeps on the original and modified
// traces.
func (r *Runner) robustnessSweep(id, title string, orig, modified *trace.Trace, mOrig, mMod intensityModel) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"policy", "dataset", "hit_rate", "rt_avg", "relative_cost"},
	}
	g := r.grids(traceKey(orig.Name))
	seed := r.opt.Seed + 52
	addPair := func(label string, mkPolicy func(m intensityModel) sim.Autoscaler) {
		resO := r.replay(orig, mkPolicy(mOrig), seed)
		t.Rows = append(t.Rows, []string{label, "original", f(resO.HitRate()), f(resO.RTAvg()), f(resO.RelativeCost())})
		resM := r.replay(modified, mkPolicy(mMod), seed)
		t.Rows = append(t.Rows, []string{label, "modified", f(resM.HitRate()), f(resM.RTAvg()), f(resM.RelativeCost())})
	}
	for _, hp := range g.HPTargets {
		hp := hp
		addPair(fmt.Sprintf("RS-HP(%.2f)", hp), func(m intensityModel) sim.Autoscaler {
			return r.mustRobust(scaler.RobustConfig{
				Variant: scaler.HP, Alpha: 1 - hp,
				Tau:        stats.Deterministic{Value: orig.MeanPending},
				MCSamples:  r.mcSamples(),
				PlanWindow: r.tick(),
				Seed:       seed,
			}, m)
		})
	}
	for _, cb := range g.CostBudgs {
		cb := cb
		addPair(fmt.Sprintf("RS-cost(%.3g)", cb), func(m intensityModel) sim.Autoscaler {
			return r.mustRobust(scaler.RobustConfig{
				Variant: scaler.Cost, CostBudget: cb,
				Tau:        stats.Deterministic{Value: orig.MeanPending},
				MCSamples:  r.mcSamples(),
				PlanWindow: r.tick(),
				Seed:       seed,
			}, m)
		})
	}
	return t
}

// intensityModel is the forecast interface the policies consume.
type intensityModel = robustIntensity

// ExpTable2 reproduces Table II: response-time quantiles of
// RobustScaler-HP and RobustScaler-cost on the CRS trace before and after
// missing-data injection.
func (r *Runner) ExpTable2() []*Table {
	crs := r.Trace("crs")
	missing := crs.Clone()
	missingDayStart := crs.TrainEnd + 86400
	missing.RemoveRange(missingDayStart, missingDayStart+86400)
	missing.RemoveRange(14*86400, 15*86400)
	mOrig := r.Model("crs")
	mMiss := r.trainOn(missing)
	seed := r.opt.Seed + 53

	mk := func(v scaler.Variant, value float64, m intensityModel) sim.Autoscaler {
		cfg := scaler.RobustConfig{
			Variant:   v,
			Tau:       stats.Deterministic{Value: crs.MeanPending},
			MCSamples: r.mcSamples(), PlanWindow: r.tick(), Seed: seed,
		}
		if v == scaler.HP {
			cfg.Alpha = 1 - value
		} else {
			cfg.CostBudget = value
		}
		return r.mustRobust(cfg, m)
	}
	quantiles := []float64{0.75, 0.95, 0.99, 0.999}
	t := &Table{
		ID:     "Table2",
		Title:  "Response time quantiles (s) before/after missing data injection on CRS",
		Header: []string{"quantile", "RS-HP original", "RS-HP w/ missing", "RS-cost original", "RS-cost w/ missing"},
	}
	resHPw := r.replay(crs, mk(scaler.HP, 0.9, mOrig.NHPP), seed)
	resHPwo := r.replay(missing, mk(scaler.HP, 0.9, mMiss.NHPP), seed)
	resCw := r.replay(crs, mk(scaler.Cost, 60, mOrig.NHPP), seed)
	resCwo := r.replay(missing, mk(scaler.Cost, 60, mMiss.NHPP), seed)
	for _, q := range quantiles {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f%%", q*100),
			f(resHPw.RTQuantile(q)), f(resHPwo.RTQuantile(q)),
			f(resCw.RTQuantile(q)), f(resCwo.RTQuantile(q)),
		})
	}
	return []*Table{t}
}

// traceKey maps a trace display name back to its runner key.
func traceKey(name string) string {
	switch name {
	case "CRS":
		return "crs"
	case "Google":
		return "google"
	case "Alibaba":
		return "alibaba"
	default:
		panic(fmt.Sprintf("experiments: unknown trace name %q", name))
	}
}
