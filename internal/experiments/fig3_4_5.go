package experiments

import (
	"fmt"

	"robustscaler/internal/scaler"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
)

// ExpFig3 summarizes the QPS series of the three traces at Δt = 60 s
// (Fig. 3 plots the raw series; the table reports the summary statistics
// that characterize each panel: rate level, burstiness and peak).
func (r *Runner) ExpFig3() []*Table {
	t := &Table{
		ID:     "Fig3",
		Title:  "QPS series of the three traces (Δt=60 s bins)",
		Header: []string{"trace", "queries", "days", "mean_qps", "median_qps", "p99_qps", "max_qps"},
	}
	for _, name := range []string{"crs", "alibaba", "google"} {
		tr := r.Trace(name)
		s := tr.CountSeries(60)
		qps := s.QPS()
		t.Rows = append(t.Rows, []string{
			tr.Name,
			fmt.Sprintf("%d", len(tr.Queries)),
			f((tr.End - tr.Start) / 86400),
			f(s.MeanQPS()),
			f(stats.Quantile(qps, 0.5)),
			f(stats.Quantile(qps, 0.99)),
			f(stats.Quantile(qps, 1)),
		})
	}
	return []*Table{t}
}

// paretoRow runs one policy point and formats the Fig. 4 metrics.
func (r *Runner) paretoRow(name string, policy sim.Autoscaler, label string, seed int64) []string {
	tr := r.Trace(name)
	res := r.replay(tr, policy, seed)
	return []string{
		label,
		fmt.Sprintf("%d", res.NumQueries),
		f(res.HitRate()),
		f(res.RTAvg()),
		f(res.RelativeCost()),
	}
}

// ExpFig4 produces the Pareto sweeps of Fig. 4: for each trace, every
// autoscaler is swept over its trade-off parameter and the resulting
// (hit rate, rt avg, relative cost) triples are reported. Plotting
// hit_rate vs relative_cost gives panels (a)(c)(e); rt_avg vs
// relative_cost gives (b)(d)(f).
func (r *Runner) ExpFig4() []*Table {
	var tables []*Table
	for _, name := range []string{"crs", "alibaba", "google"} {
		tr := r.Trace(name)
		g := r.grids(name)
		t := &Table{
			ID:     "Fig4-" + tr.Name,
			Title:  fmt.Sprintf("Pareto sweep on %s trace (hit_rate & rt_avg vs relative_cost)", tr.Name),
			Header: []string{"policy", "queries", "hit_rate", "rt_avg", "relative_cost"},
		}
		seed := r.opt.Seed + 11
		for _, b := range g.BP {
			t.Rows = append(t.Rows, r.paretoRow(name, &scaler.BP{B: b}, fmt.Sprintf("BP(%d)", b), seed))
		}
		for _, c := range g.AdapBP {
			t.Rows = append(t.Rows, r.paretoRow(name, scaler.NewAdapBP(c), fmt.Sprintf("AdapBP(%g)", c), seed))
		}
		m := r.Model(name)
		for _, hp := range g.HPTargets {
			p := r.robustPolicy(name, m, scaler.HP, hp, seed)
			t.Rows = append(t.Rows, r.paretoRow(name, p, fmt.Sprintf("RS-HP(%.2f)", hp), seed))
		}
		for _, rt := range g.RTBudgets {
			p := r.robustPolicy(name, m, scaler.RT, rt, seed)
			t.Rows = append(t.Rows, r.paretoRow(name, p, fmt.Sprintf("RS-RT(%.3g)", rt), seed))
		}
		for _, cb := range g.CostBudgs {
			p := r.robustPolicy(name, m, scaler.Cost, cb, seed)
			t.Rows = append(t.Rows, r.paretoRow(name, p, fmt.Sprintf("RS-cost(%.3g)", cb), seed))
		}
		tables = append(tables, t)
	}
	return tables
}

// ExpFig5 reports QoS variability on the CRS trace: per policy point, the
// mean and variance of hit rate and response time averaged over
// consecutive 50-query windows (the paper's Fig. 5 construction).
func (r *Runner) ExpFig5() []*Table {
	const window = 50
	name := "crs"
	tr := r.Trace(name)
	g := r.grids(name)
	t := &Table{
		ID:     "Fig5",
		Title:  "QoS variance on CRS trace (50-query windows)",
		Header: []string{"policy", "hit_mean", "hit_var", "rt_mean", "rt_var"},
	}
	seed := r.opt.Seed + 21
	addRow := func(label string, policy sim.Autoscaler) {
		res := r.replay(tr, policy, seed)
		hm, hv := res.HitRateWindowStats(window)
		rm, rv := res.RTWindowStats(window)
		t.Rows = append(t.Rows, []string{label, f(hm), f(hv), f(rm), f(rv)})
	}
	for _, b := range g.BP {
		addRow(fmt.Sprintf("BP(%d)", b), &scaler.BP{B: b})
	}
	for _, c := range g.AdapBP {
		addRow(fmt.Sprintf("AdapBP(%g)", c), scaler.NewAdapBP(c))
	}
	m := r.Model(name)
	for _, hp := range g.HPTargets {
		addRow(fmt.Sprintf("RS-HP(%.2f)", hp), r.robustPolicy(name, m, scaler.HP, hp, seed))
	}
	for _, rt := range g.RTBudgets {
		addRow(fmt.Sprintf("RS-RT(%.3g)", rt), r.robustPolicy(name, m, scaler.RT, rt, seed))
	}
	for _, cb := range g.CostBudgs {
		addRow(fmt.Sprintf("RS-cost(%.3g)", cb), r.robustPolicy(name, m, scaler.Cost, cb, seed))
	}
	return []*Table{t}
}

// ExpFig67 compares AdapBP and RobustScaler-HP on the CRS trace under
// growing perturbation sizes c = 1, 2, 4, 6 (Figs. 6 and 7): every hour a
// five-minute window of queries is deleted and another window is inflated
// c-fold. The model is retrained on the perturbed training data.
func (r *Runner) ExpFig67() []*Table {
	name := "crs"
	base := r.Trace(name)
	g := r.grids(name)
	cs := []int{1, 2, 4, 6}
	if r.opt.Quick {
		cs = []int{1, 6}
	}
	t := &Table{
		ID:     "Fig6-7",
		Title:  "AdapBP vs RobustScaler-HP on perturbed CRS trace",
		Header: []string{"c", "policy", "hit_rate", "rt_avg", "relative_cost"},
	}
	seed := r.opt.Seed + 31
	for _, c := range cs {
		pert := base.Clone()
		pert.Perturb(c, r.opt.Seed+int64(c))
		m := r.trainOn(pert)
		for _, factor := range g.AdapBP {
			res := r.replay(pert, scaler.NewAdapBP(factor), seed)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", c), fmt.Sprintf("AdapBP(%g)", factor),
				f(res.HitRate()), f(res.RTAvg()), f(res.RelativeCost()),
			})
		}
		for _, hp := range g.HPTargets {
			cfg := scaler.RobustConfig{
				Variant: scaler.HP, Alpha: 1 - hp,
				Tau:        stats.Deterministic{Value: base.MeanPending},
				MCSamples:  r.mcSamples(),
				PlanWindow: r.tick(),
				Seed:       seed,
			}
			p, err := scaler.NewRobustScaler(m.NHPP, cfg)
			if err != nil {
				panic(err)
			}
			res := r.replay(pert, p, seed)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", c), fmt.Sprintf("RS-HP(%.2f)", hp),
				f(res.HitRate()), f(res.RTAvg()), f(res.RelativeCost()),
			})
		}
	}
	return []*Table{t}
}
