package experiments

import (
	"math"
	"math/rand"
	"time"

	"robustscaler/internal/decision"
	"robustscaler/internal/linalg"
	"robustscaler/internal/nhpp"
	"robustscaler/internal/scaler"
	"robustscaler/internal/stats"
)

// ExpAblationSolvers times the design alternatives DESIGN.md §4 calls
// out: banded Cholesky vs dense Cholesky vs conjugate gradient for the
// ADMM r-subproblem, and Algorithm 3 (sort-and-search) vs naive bisection
// for the RT decision.
func (r *Runner) ExpAblationSolvers() []*Table {
	rng := rand.New(rand.NewSource(r.opt.Seed + 91))

	// --- Linear-system ablation on an ADMM-shaped matrix. ---
	tDim, period := 1200, 48
	if r.opt.Quick {
		tDim, period = 400, 24
	}
	weights := linalg.NewVector(tDim)
	for i := range weights {
		weights[i] = 0.5 + rng.Float64()
	}
	mat := linalg.NewSymBanded(tDim, period)
	mat.AddDiag(weights)
	linalg.AddD2Gram(mat, 1)
	linalg.AddDLGram(mat, 1, period)
	b := linalg.NewVector(tDim)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	solve := &Table{
		ID:     "AblationSolve",
		Title:  "ADMM r-subproblem solvers (single solve, T×T SPD system)",
		Header: []string{"solver", "T", "bandwidth", "runtime_s"},
	}
	start := time.Now()
	fact, err := mat.Cholesky(nil)
	if err != nil {
		panic(err)
	}
	fact.Solve(linalg.NewVector(tDim), b)
	solve.Rows = append(solve.Rows, []string{"banded Cholesky", f(float64(tDim)), f(float64(period)), f(time.Since(start).Seconds())})

	start = time.Now()
	if _, err := linalg.DenseCholeskySolve(mat.Dense(), b); err != nil {
		panic(err)
	}
	solve.Rows = append(solve.Rows, []string{"dense Cholesky", f(float64(tDim)), f(float64(period)), f(time.Since(start).Seconds())})

	// CG via a single-iteration NHPP fit at matching scale.
	counts := make([]float64, tDim)
	for i := range counts {
		counts[i] = float64(stats.Poisson{Lambda: 30}.Sample(rng))
	}
	cfg := nhpp.DefaultFitConfig()
	cfg.Period = period
	cfg.MaxIter = 1
	cfg.Solver = nhpp.SolverCG
	start = time.Now()
	if _, _, err := nhpp.Fit(0, 60, counts, cfg); err != nil {
		panic(err)
	}
	solve.Rows = append(solve.Rows, []string{"conjugate gradient", f(float64(tDim)), f(float64(period)), f(time.Since(start).Seconds())})

	// --- Algorithm 3 vs naive bisection. ---
	rSamples := 20000
	if r.opt.Quick {
		rSamples = 4000
	}
	xi := make([]float64, rSamples)
	tau := make([]float64, rSamples)
	for i := range xi {
		xi[i] = rng.ExpFloat64() * 40
		tau[i] = 13
	}
	alg3 := &Table{
		ID:     "AblationSortSearch",
		Title:  "RT decision: Algorithm 3 sort-and-search vs naive bisection",
		Header: []string{"method", "R", "runtime_s", "x_diff"},
	}
	start = time.Now()
	xFast := decision.SolveRT(xi, tau, 2)
	fastT := time.Since(start).Seconds()
	start = time.Now()
	xSlow := decision.NaiveSolveRT(xi, tau, 2, 1e-9)
	slowT := time.Since(start).Seconds()
	alg3.Rows = append(alg3.Rows, []string{"Algorithm 3", f(float64(rSamples)), f(fastT), "0"})
	alg3.Rows = append(alg3.Rows, []string{"naive bisection", f(float64(rSamples)), f(slowT), f(math.Abs(xFast - xSlow))})
	return []*Table{solve, alg3}
}

// ExpAblationKappa compares planning with the local forecast intensity
// against planning with a constant global upper bound λ̄ (the distinction
// the paper draws after Proposition 2: a local κ yields stabler, cheaper
// decisions). Both policies target HP 0.9 on the Google trace.
func (r *Runner) ExpAblationKappa() []*Table {
	name := "google"
	tr := r.Trace(name)
	m := r.Model(name)
	seed := r.opt.Seed + 92
	end := r.testEnd(tr)

	localPolicy := r.robustPolicy(name, m, scaler.HP, 0.9, seed)
	globalBound := m.NHPP.MaxRate(tr.TrainEnd, end)
	globalPolicy := r.mustRobust(scaler.RobustConfig{
		Variant: scaler.HP, Alpha: 0.1,
		Tau:        stats.Deterministic{Value: tr.MeanPending},
		MCSamples:  r.mcSamples(),
		PlanWindow: r.tick(),
		Seed:       seed,
	}, nhpp.Constant{Lambda: globalBound})

	t := &Table{
		ID:     "AblationKappa",
		Title:  "Local-intensity planning vs global upper bound λ̄ (Google, HP target 0.9)",
		Header: []string{"planning intensity", "hit_rate", "rt_avg", "relative_cost"},
	}
	resL := r.replay(tr, localPolicy, seed)
	t.Rows = append(t.Rows, []string{"local forecast", f(resL.HitRate()), f(resL.RTAvg()), f(resL.RelativeCost())})
	resG := r.replay(tr, globalPolicy, seed)
	t.Rows = append(t.Rows, []string{"global bound", f(resG.HitRate()), f(resG.RTAvg()), f(resG.RelativeCost())})

	// The κ thresholds themselves, for reference (eq. 8).
	kLocal := decision.Kappa(m.NHPP.Rate(tr.TrainEnd), stats.Deterministic{Value: tr.MeanPending}, 0.1, nil, 0)
	kGlobal := decision.Kappa(globalBound, stats.Deterministic{Value: tr.MeanPending}, 0.1, nil, 0)
	t.Rows = append(t.Rows, []string{"κ local / κ global", f(float64(kLocal)), f(float64(kGlobal)), ""})
	return []*Table{t}
}
