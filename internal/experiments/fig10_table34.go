package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/scaler"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
)

// ExpFig10 reproduces Fig. 10: nominal versus actual QoS/cost levels on
// the CRS trace for the three variants (panels a–c; ideal behaviour is
// actual ≈ nominal) and the planning-frequency ablation (panel d: cost
// grows as the planning interval Δ widens).
func (r *Runner) ExpFig10() []*Table {
	name := "crs"
	tr := r.Trace(name)
	m := r.Model(name)
	seed := r.opt.Seed + 61

	nominalHP := []float64{0.3, 0.5, 0.7, 0.85, 0.95}
	nominalRT := []float64{25, 15, 8, 4, 1.5}
	nominalCost := []float64{10, 30, 60, 120, 240}
	if r.opt.Quick {
		nominalHP = thinFloats(nominalHP)
		nominalRT = thinFloats(nominalRT)
		nominalCost = thinFloats(nominalCost)
	}

	ctrl := &Table{
		ID:     "Fig10abc",
		Title:  "Nominal vs actual QoS/cost levels on CRS",
		Header: []string{"variant", "nominal", "actual"},
	}
	for _, hp := range nominalHP {
		res := r.replay(tr, r.robustPolicy(name, m, scaler.HP, hp, seed), seed)
		ctrl.Rows = append(ctrl.Rows, []string{"HP (hit prob)", f(hp), f(res.HitRate())})
	}
	for _, rt := range nominalRT {
		res := r.replay(tr, r.robustPolicy(name, m, scaler.RT, rt, seed), seed)
		ctrl.Rows = append(ctrl.Rows, []string{"RT (net wait s)", f(rt), f(stats.Mean(res.Waits))})
	}
	for _, cb := range nominalCost {
		res := r.replay(tr, r.robustPolicy(name, m, scaler.Cost, cb, seed), seed)
		ctrl.Rows = append(ctrl.Rows, []string{"cost (idle s/inst)", f(cb), f(res.IdleCostPerQuery(tr.MeanPending))})
	}

	deltas := []float64{1, 5, 15, 30, 60}
	if r.opt.Quick {
		deltas = []float64{5, 60}
	}
	freq := &Table{
		ID:     "Fig10d",
		Title:  "Cost vs planning interval Δ for RobustScaler-HP(0.9) on CRS",
		Header: []string{"delta_s", "hit_rate", "rt_avg", "relative_cost"},
	}
	for _, d := range deltas {
		p := r.mustRobust(scaler.RobustConfig{
			Variant: scaler.HP, Alpha: 0.1,
			Tau:        stats.Deterministic{Value: tr.MeanPending},
			MCSamples:  r.mcSamples(),
			PlanWindow: d,
			Seed:       seed,
		}, m.NHPP)
		end := r.testEnd(tr)
		res, err := sim.Run(tr.Test(), p, sim.Config{
			Start: tr.TrainEnd, End: end,
			PendingDist: stats.Deterministic{Value: tr.MeanPending},
			MeanPending: tr.MeanPending, MeanService: tr.MeanService,
			TickInterval: d, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		freq.Rows = append(freq.Rows, []string{f(d), f(res.HitRate()), f(res.RTAvg()), f(res.RelativeCost())})
	}
	return []*Table{ctrl, freq}
}

// ExpTable3 reproduces Table III: the impact of the periodicity
// regularization on intensity-estimate accuracy. Arrival data is drawn
// from the paper's ground truth λ(t) = 4¹⁰·u¹⁰·(1−u)¹⁰ + 0.1 with daily
// period over one week, and the NHPP is fitted with and without the DL
// term.
func (r *Runner) ExpTable3() []*Table {
	const (
		dayS   = 86400.0
		weekS  = 7 * dayS
		dtBin  = 60.0
		period = 1440 // day of minute bins
	)
	truthF := func(t float64) float64 {
		u := math.Mod(t, dayS) / dayS
		return math.Pow(4*u*(1-u), 10) + 0.1
	}
	horizon := weekS
	if r.opt.Quick {
		horizon = 3 * dayS
	}
	rng := rand.New(rand.NewSource(r.opt.Seed + 71))
	in := nhpp.Func{F: truthF, Step: 30, MaxHorizon: horizon * 2}
	arrivals := nhpp.Simulate(rng, in, 0, horizon)
	n := int(horizon / dtBin)
	counts := make([]float64, n)
	for _, a := range arrivals {
		idx := int(a / dtBin)
		if idx >= 0 && idx < n {
			counts[idx]++
		}
	}
	truth := make([]float64, n)
	for i := range truth {
		truth[i] = truthF((float64(i) + 0.5) * dtBin)
	}
	cfgNo := nhpp.DefaultFitConfig()
	cfgNo.Period = 0
	mNo, _, err := nhpp.Fit(0, dtBin, counts, cfgNo)
	if err != nil {
		panic(err)
	}
	cfgYes := nhpp.DefaultFitConfig()
	cfgYes.Period = period
	mYes, _, err := nhpp.Fit(0, dtBin, counts, cfgYes)
	if err != nil {
		panic(err)
	}
	mseNo := stats.MSE(mNo.IntensitySeries(), truth)
	mseYes := stats.MSE(mYes.IntensitySeries(), truth)
	maeNo := stats.MAE(mNo.IntensitySeries(), truth)
	maeYes := stats.MAE(mYes.IntensitySeries(), truth)
	t := &Table{
		ID:     "Table3",
		Title:  "Impact of periodicity regularization on NHPP intensity error",
		Header: []string{"metric", "NHPP w/o reg.", "NHPP w/ reg.", "improvement"},
	}
	t.Rows = append(t.Rows, []string{"MSE", f(mseNo), f(mseYes), fmt.Sprintf("%.0f%%", 100*(1-mseYes/mseNo))})
	t.Rows = append(t.Rows, []string{"MAE", f(maeNo), f(maeYes), fmt.Sprintf("%.0f%%", 100*(1-maeYes/maeNo))})
	return []*Table{t}
}

// ExpTable4 reproduces Table IV: RobustScaler-HP(0.9) on the CRS trace in
// the idealized simulated environment versus the "real" environment,
// where planner wall-clock time plus an actuation latency delays when
// creations take effect (our substitution for the paper's Alibaba
// Serverless Kubernetes deployment; see DESIGN.md §3).
func (r *Runner) ExpTable4() []*Table {
	name := "crs"
	tr := r.Trace(name)
	m := r.Model(name)
	seed := r.opt.Seed + 81
	mk := func() sim.Autoscaler {
		return r.mustRobust(scaler.RobustConfig{
			Variant: scaler.HP, Alpha: 0.1,
			Tau:        stats.Deterministic{Value: tr.MeanPending},
			MCSamples:  r.mcSamples(),
			PlanWindow: r.tick(),
			Seed:       seed,
		}, m.NHPP)
	}
	simRes := r.replayLatency(tr, mk(), seed, false, 0)
	realRes := r.replayLatency(tr, mk(), seed, true, 1.0)
	t := &Table{
		ID:     "Table4",
		Title:  "RobustScaler-HP(0.9) in simulated vs real (latency-aware) environments on CRS",
		Header: []string{"environment", "HP", "RT", "cost_per_query_s"},
	}
	t.Rows = append(t.Rows, []string{"Simulated", f(simRes.HitRate()), f(simRes.RTAvg()), f(simRes.CostPerQuery())})
	t.Rows = append(t.Rows, []string{"Real (latency-aware)", f(realRes.HitRate()), f(realRes.RTAvg()), f(realRes.CostPerQuery())})
	return []*Table{t}
}
