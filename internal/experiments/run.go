package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Registry maps experiment IDs to their drivers.
func (r *Runner) Registry() map[string]func() []*Table {
	return map[string]func() []*Table{
		"fig3":            r.ExpFig3,
		"fig4":            r.ExpFig4,
		"fig5":            r.ExpFig5,
		"fig6-7":          r.ExpFig67,
		"fig8":            r.ExpFig8,
		"fig9":            r.ExpFig9,
		"fig10":           r.ExpFig10,
		"table1":          r.ExpTable1,
		"table2":          r.ExpTable2,
		"table3":          r.ExpTable3,
		"table4":          r.ExpTable4,
		"ablation-solver": r.ExpAblationSolvers,
		"ablation-kappa":  r.ExpAblationKappa,
	}
}

// IDs returns all experiment IDs in stable order.
func (r *Runner) IDs() []string {
	reg := r.Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunAndPrint executes one experiment by ID, writing its tables to w.
func (r *Runner) RunAndPrint(id string, w io.Writer) error {
	fn, ok := r.Registry()[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, r.IDs())
	}
	for _, t := range fn() {
		t.Fprint(w)
	}
	return nil
}
