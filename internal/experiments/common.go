// Package experiments regenerates every table and figure of the paper's
// evaluation section (Sec. VII) on the synthetic trace stand-ins. Each
// ExpXxx driver returns printable tables with the same rows/series the
// paper reports; cmd/experiments prints them and bench_test.go wraps them
// in testing.B benchmarks. Options.Quick shrinks sweeps and horizons so a
// full pass stays fast; the full mode reproduces the paper-scale setup.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"robustscaler"
	"robustscaler/internal/nhpp"
	"robustscaler/internal/scaler"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
	"robustscaler/internal/trace"
)

// robustIntensity is the forecast interface consumed by the RobustScaler
// policies (either a trained model or a closed-form intensity).
type robustIntensity = nhpp.Intensity

// Options controls an experiment run.
type Options struct {
	// Seed drives every stochastic component, making runs reproducible.
	Seed int64
	// Quick shrinks replay horizons, sweep grids and Monte Carlo sizes so
	// the whole suite finishes in minutes; full mode matches the paper's
	// scale.
	Quick bool
}

// Table is one printable result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// Runner caches traces and trained models across experiments.
type Runner struct {
	opt Options

	mu     sync.Mutex
	traces map[string]*trace.Trace
	models map[string]*robustscaler.Model
}

// NewRunner builds a runner.
func NewRunner(opt Options) *Runner {
	return &Runner{
		opt:    opt,
		traces: map[string]*trace.Trace{},
		models: map[string]*robustscaler.Model{},
	}
}

// Trace returns (and caches) the named trace: crs, google, or alibaba.
func (r *Runner) Trace(name string) *trace.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.traces[name]; ok {
		return t
	}
	var t *trace.Trace
	switch name {
	case "crs":
		t = trace.SyntheticCRS(r.opt.Seed + 101)
	case "google":
		t = trace.SyntheticGoogle(r.opt.Seed + 102)
	case "alibaba":
		t = trace.SyntheticAlibaba(r.opt.Seed + 103)
	default:
		panic(fmt.Sprintf("experiments: unknown trace %q", name))
	}
	r.traces[name] = t
	return t
}

// testEnd bounds the replay window; Quick mode truncates the test span.
func (r *Runner) testEnd(t *trace.Trace) float64 {
	if !r.opt.Quick {
		return t.End
	}
	span := t.End - t.TrainEnd
	switch t.Name {
	case "CRS":
		span = 86400 // one test day instead of a week
	case "Google":
		span = 2 * 3600
	case "Alibaba":
		span = 2 * 3600
	}
	if t.TrainEnd+span > t.End {
		return t.End
	}
	return t.TrainEnd + span
}

// tick returns the planning interval Δ.
func (r *Runner) tick() float64 {
	if r.opt.Quick {
		return 5
	}
	return 1
}

// mcSamples returns the Monte Carlo size R for the RT/cost solvers.
func (r *Runner) mcSamples() int {
	if r.opt.Quick {
		return 100
	}
	return 1000
}

// trainConfig returns the model-training configuration for a trace.
func (r *Runner) trainConfig(t *trace.Trace) robustscaler.TrainConfig {
	cfg := robustscaler.DefaultTrainConfig()
	// Aggregate minute bins before periodicity detection: CRS-scale
	// traffic is too sparse per minute for the spectral test (Sec. IV).
	switch t.Name {
	case "CRS":
		cfg.Periodicity.AggregateWindow = 60 // hours
		cfg.Periodicity.MinPeriod = 12
	case "Google", "Alibaba":
		cfg.Periodicity.AggregateWindow = 10
		cfg.Periodicity.MinPeriod = 3
	}
	return cfg
}

// Model returns (and caches) the NHPP model trained on the trace's
// training portion with Δt = 60 s, the paper's resolution.
func (r *Runner) Model(name string) *robustscaler.Model {
	r.mu.Lock()
	if m, ok := r.models[name]; ok {
		r.mu.Unlock()
		return m
	}
	r.mu.Unlock()
	t := r.Trace(name)
	m := r.trainOn(t)
	r.mu.Lock()
	r.models[name] = m
	r.mu.Unlock()
	return m
}

// trainOn trains a fresh model on an arbitrary (possibly modified) trace.
func (r *Runner) trainOn(t *trace.Trace) *robustscaler.Model {
	series := t.TrainCountSeries(60)
	m, err := robustscaler.Train(series, r.trainConfig(t))
	if err != nil {
		panic(fmt.Sprintf("experiments: training on %s: %v", t.Name, err))
	}
	return m
}

// replay runs a policy over the trace's test portion.
func (r *Runner) replay(t *trace.Trace, policy sim.Autoscaler, seed int64) *sim.Result {
	return r.replayLatency(t, policy, seed, false, 0)
}

func (r *Runner) replayLatency(t *trace.Trace, policy sim.Autoscaler, seed int64, measure bool, actuation float64) *sim.Result {
	end := r.testEnd(t)
	res, err := sim.Run(t.Test(), policy, sim.Config{
		Start:                  t.TrainEnd,
		End:                    end,
		PendingDist:            stats.Deterministic{Value: t.MeanPending},
		MeanPending:            t.MeanPending,
		MeanService:            t.MeanService,
		TickInterval:           r.tick(),
		Seed:                   seed,
		MeasureDecisionLatency: measure,
		ActuationLatency:       actuation,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: replay %s: %v", t.Name, err))
	}
	return res
}

// robustPolicy builds a RobustScaler variant for the trace's model.
func (r *Runner) robustPolicy(name string, m *robustscaler.Model, v scaler.Variant, value float64, seed int64) sim.Autoscaler {
	t := r.Trace(name)
	cfg := scaler.RobustConfig{
		Variant:    v,
		Tau:        stats.Deterministic{Value: t.MeanPending},
		MCSamples:  r.mcSamples(),
		PlanWindow: r.tick(),
		Seed:       seed,
	}
	switch v {
	case scaler.HP:
		cfg.Alpha = 1 - value
	case scaler.RT:
		cfg.RTTarget = value
	case scaler.Cost:
		cfg.CostBudget = value
	}
	p, err := scaler.NewRobustScaler(m.NHPP, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: policy: %v", err))
	}
	return p
}

// mustRobust builds a RobustScaler policy or panics (experiment configs
// are static, so a failure is a bug).
func (r *Runner) mustRobust(cfg scaler.RobustConfig, in nhpp.Intensity) sim.Autoscaler {
	p, err := scaler.NewRobustScaler(in, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: building policy: %v", err))
	}
	return p
}

// sweeps returns the per-trace parameter grids used by the Pareto
// experiments (Fig. 4/5): BP pool sizes, AdapBP factors, and the target
// grids for the three RobustScaler variants.
type sweepGrids struct {
	BP        []int
	AdapBP    []float64
	HPTargets []float64
	RTBudgets []float64
	CostBudgs []float64
}

func (r *Runner) grids(name string) sweepGrids {
	var g sweepGrids
	switch name {
	case "crs":
		g = sweepGrids{
			BP:        []int{0, 1, 2, 3, 4, 6, 8},
			AdapBP:    []float64{0, 60, 120, 240, 480, 960},
			HPTargets: []float64{0.3, 0.5, 0.7, 0.85, 0.95},
			RTBudgets: []float64{25, 15, 8, 4, 1.5},
			CostBudgs: []float64{10, 30, 60, 120, 240},
		}
	case "google":
		g = sweepGrids{
			BP:        []int{0, 1, 2, 5, 10, 20, 40},
			AdapBP:    []float64{0, 10, 25, 50, 100, 200},
			HPTargets: []float64{0.3, 0.5, 0.7, 0.85, 0.95},
			RTBudgets: []float64{11, 8, 5, 2.5, 1},
			CostBudgs: []float64{0.5, 2, 5, 12, 30},
		}
	case "alibaba":
		g = sweepGrids{
			BP:        []int{0, 10, 30, 75, 150, 300, 450},
			AdapBP:    []float64{0, 15, 30, 60, 120, 240},
			HPTargets: []float64{0.3, 0.5, 0.7, 0.85, 0.95},
			RTBudgets: []float64{11, 8, 5, 2.5, 1},
			CostBudgs: []float64{0.5, 2, 5, 12, 30},
		}
	default:
		panic(fmt.Sprintf("experiments: unknown trace %q", name))
	}
	if r.opt.Quick {
		g.BP = thinInts(g.BP)
		g.AdapBP = thinFloats(g.AdapBP)
		g.HPTargets = thinFloats(g.HPTargets)
		g.RTBudgets = thinFloats(g.RTBudgets)
		g.CostBudgs = thinFloats(g.CostBudgs)
	}
	return g
}

// thinInts keeps every other grid point (plus the last).
func thinInts(xs []int) []int {
	var out []int
	for i := 0; i < len(xs); i += 2 {
		out = append(out, xs[i])
	}
	if len(xs) > 0 && (len(xs)-1)%2 != 0 {
		out = append(out, xs[len(xs)-1])
	}
	return out
}

func thinFloats(xs []float64) []float64 {
	var out []float64
	for i := 0; i < len(xs); i += 2 {
		out = append(out, xs[i])
	}
	if len(xs) > 0 && (len(xs)-1)%2 != 0 {
		out = append(out, xs[len(xs)-1])
	}
	return out
}
