package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickRunner() *Runner {
	return NewRunner(Options{Seed: 1, Quick: true})
}

func cell(t *Table, row, col int) string { return t.Rows[row][col] }

func cellFloat(tb testing.TB, t *Table, row, col int) float64 {
	v, err := strconv.ParseFloat(cell(t, row, col), 64)
	if err != nil {
		tb.Fatalf("table %s cell (%d,%d) = %q not a float", t.ID, row, col, cell(t, row, col))
	}
	return v
}

func TestExpFig3Shapes(t *testing.T) {
	r := quickRunner()
	tables := r.ExpFig3()
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("Fig3 should have one table with 3 rows")
	}
	// CRS is the low-rate trace; Alibaba the high-rate one.
	var crsQPS, aliQPS float64
	for i := range tables[0].Rows {
		switch cell(tables[0], i, 0) {
		case "CRS":
			crsQPS = cellFloat(t, tables[0], i, 3)
		case "Alibaba":
			aliQPS = cellFloat(t, tables[0], i, 3)
		}
	}
	if crsQPS <= 0 || aliQPS <= 0 || crsQPS >= aliQPS {
		t.Fatalf("trace rate ordering wrong: CRS %g vs Alibaba %g", crsQPS, aliQPS)
	}
}

func TestExpTable3RegularizationHelps(t *testing.T) {
	r := quickRunner()
	tables := r.ExpTable3()
	tb := tables[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("Table3 rows = %d", len(tb.Rows))
	}
	mseNo := cellFloat(t, tb, 0, 1)
	mseYes := cellFloat(t, tb, 0, 2)
	if mseYes >= mseNo {
		t.Fatalf("periodicity regularization did not improve MSE: %g vs %g", mseYes, mseNo)
	}
	if !strings.HasSuffix(cell(tb, 0, 3), "%") {
		t.Fatalf("improvement cell %q not a percentage", cell(tb, 0, 3))
	}
}

func TestExpFig8RuntimeGrowsWithQPS(t *testing.T) {
	r := quickRunner()
	tb := r.ExpFig8()[0]
	if len(tb.Rows) < 2 {
		t.Fatal("Fig8 needs at least two QPS points")
	}
	first := cellFloat(t, tb, 0, 3)             // RT runtime at low QPS
	last := cellFloat(t, tb, len(tb.Rows)-1, 3) // RT runtime at high QPS
	if last <= first {
		t.Fatalf("decision runtime did not grow with QPS: %g → %g", first, last)
	}
}

func TestExpAblationSolvers(t *testing.T) {
	r := quickRunner()
	tables := r.ExpAblationSolvers()
	if len(tables) != 2 {
		t.Fatalf("want 2 ablation tables, got %d", len(tables))
	}
	solve := tables[0]
	banded := cellFloat(t, solve, 0, 3)
	dense := cellFloat(t, solve, 1, 3)
	if banded >= dense {
		t.Fatalf("banded solve (%g s) should beat dense (%g s)", banded, dense)
	}
	alg3 := tables[1]
	xDiff := cellFloat(t, alg3, 1, 3)
	if xDiff > 1e-3 {
		t.Fatalf("Algorithm 3 and bisection disagree by %g", xDiff)
	}
}

func TestRunAndPrintUnknownID(t *testing.T) {
	r := quickRunner()
	var buf bytes.Buffer
	if err := r.RunAndPrint("nope", &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := r.RunAndPrint("fig3", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig3") {
		t.Fatal("output missing table header")
	}
}

func TestRegistryCoversAllPaperArtifacts(t *testing.T) {
	r := quickRunner()
	want := []string{"fig3", "fig4", "fig5", "fig6-7", "fig8", "fig9", "fig10",
		"table1", "table2", "table3", "table4"}
	reg := r.Registry()
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
}

func TestTableFprintAligned(t *testing.T) {
	tb := &Table{ID: "X", Title: "t", Header: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}, {"333", "4"}}}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
}
