package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"robustscaler/internal/pipeline"
)

// seedTrained ingests periodic traffic into id and trains it, so the
// recommendation pipeline has a model to analyze.
func seedTrained(t *testing.T, ts *httptest.Server, id string, fakeNow float64) {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/workloads/"+id+"/arrivals",
		map[string]any{"timestamps": trafficArrivals(7, fakeNow)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/workloads/"+id+"/train", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("train: %d %s", resp.StatusCode, body)
	}
	resp.Body.Close()
}

// The autoscale sub-config rides the same merge + CAS plane as train:
// partial PUTs merge over the current knobs, versions bump, and a stale
// version is a 409.
func TestAutoscaleConfigLifecycle(t *testing.T) {
	const fakeNow = 4 * 3600.0
	_, ts := newTestServer(t, fakeNow)
	seedTrained(t, ts, "w", fakeNow)
	url := ts.URL + "/v1/workloads/w/config"

	type cfgDoc struct {
		Version   int64 `json:"version"`
		Autoscale struct {
			Enabled                       bool    `json:"enabled"`
			MinReplicas                   int     `json:"min_replicas"`
			MaxReplicas                   int     `json:"max_replicas"`
			ScaleDownStabilizationSeconds float64 `json:"scale_down_stabilization_seconds"`
		} `json:"autoscale"`
	}

	resp := putJSON(t, url, `{"autoscale": {"min_replicas": 2, "max_replicas": 40}}`)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("PUT autoscale: %d %s", resp.StatusCode, body)
	}
	got := decode[cfgDoc](t, resp)
	if got.Autoscale.MinReplicas != 2 || got.Autoscale.MaxReplicas != 40 {
		t.Fatalf("merged knobs = %+v", got.Autoscale)
	}

	// A second partial PUT touches one knob and keeps the others.
	resp = putJSON(t, url, `{"autoscale": {"scale_down_stabilization_seconds": 300}}`)
	got2 := decode[cfgDoc](t, resp)
	if got2.Autoscale.MinReplicas != 2 || got2.Autoscale.MaxReplicas != 40 ||
		got2.Autoscale.ScaleDownStabilizationSeconds != 300 {
		t.Fatalf("partial PUT stomped siblings: %+v", got2.Autoscale)
	}
	if got2.Version <= got.Version {
		t.Fatalf("version did not bump: %d then %d", got.Version, got2.Version)
	}

	// CAS: the now-stale first version must be rejected with 409.
	resp = putJSON(t, url, `{"version": 1, "autoscale": {"enabled": true}}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-version PUT: %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
}

// Bad autoscale documents are 400s with the offending field named, and
// rejected updates leave the config untouched — the same contract
// TestConfigAPIValidation pins for the train sub-config.
func TestAutoscaleConfigValidation(t *testing.T) {
	const fakeNow = 4 * 3600.0
	_, ts := newTestServer(t, fakeNow)
	seedTrained(t, ts, "w", fakeNow)
	url := ts.URL + "/v1/workloads/w/config"

	cases := []struct {
		name, body, wantInError string
	}{
		{"min above max", `{"autoscale": {"min_replicas": 5, "max_replicas": 2}}`, "min_replicas"},
		{"negative min", `{"autoscale": {"min_replicas": -1}}`, "min_replicas"},
		{"negative stabilization", `{"autoscale": {"scale_down_stabilization_seconds": -60}}`, "stabilization"},
		{"negative cooldown", `{"autoscale": {"scale_down_cooldown_seconds": -1}}`, "cooldown"},
		{"negative interval", `{"autoscale": {"interval_seconds": -5}}`, "interval"},
		{"NaN window", `{"autoscale": {"scale_down_stabilization_seconds": "nan"}}`, "json"},
		{"target at 1", `{"autoscale": {"target": 1.0}}`, "target"},
		{"negative up step", `{"autoscale": {"scale_up_max_step": -3}}`, "scale_up_max_step"},
		{"unknown knob", `{"autoscale": {"min_replica": 1}}`, "min_replica"},
		{"unknown nested object", `{"autoscale": {"behaviors": {}}}`, "behaviors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := putJSON(t, url, tc.body)
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("PUT %s: %d %s, want 400", tc.body, resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.wantInError) {
				t.Fatalf("error %q does not name %q", body, tc.wantInError)
			}
		})
	}

	// None of the rejections changed the config.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	got := decode[struct {
		Version   int64 `json:"version"`
		Autoscale struct {
			MinReplicas int `json:"min_replicas"`
		} `json:"autoscale"`
	}](t, resp)
	if got.Version != 1 || got.Autoscale.MinReplicas != 0 {
		t.Fatalf("config changed by rejected PUTs: %+v", got)
	}
}

// statsDoc is the composite stats response: engine stats plus the
// pipeline's autoscale status block.
type statsDoc struct {
	ArrivalsRecorded int64            `json:"arrivals_recorded"`
	Autoscale        *pipeline.Status `json:"autoscale"`
}

// The recommendation endpoint runs the full Collect → Analyze →
// Optimize pass and honors the HPA-style behaviors set through the
// config plane.
func TestRecommendationEndpointHonorsBehaviors(t *testing.T) {
	const fakeNow = 4 * 3600.0
	_, ts := newTestServer(t, fakeNow)
	seedTrained(t, ts, "w", fakeNow)
	recURL := ts.URL + "/v1/workloads/w/recommendation"
	cfgURL := ts.URL + "/v1/workloads/w/config"

	// No behaviors: a raw model-driven recommendation.
	resp, err := http.Get(recURL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET recommendation: %d %s", resp.StatusCode, body)
	}
	rec := decode[pipeline.Recommendation](t, resp)
	if rec.Workload != "w" || rec.Now != fakeNow {
		t.Fatalf("recommendation identity: %+v", rec)
	}
	if rec.Raw <= 0 || rec.Desired != rec.Raw || rec.ClampedBy != "" {
		t.Fatalf("unconstrained recommendation should be the raw quantile: %+v", rec)
	}
	raw := rec.Raw

	// A max below the raw recommendation caps it.
	putJSON(t, cfgURL, `{"autoscale": {"max_replicas": 1}}`).Body.Close()
	rec = decode[pipeline.Recommendation](t, mustGet(t, recURL))
	if rec.Desired != 1 || rec.ClampedBy != pipeline.ClampMaxReplicas {
		t.Fatalf("max clamp: %+v", rec)
	}

	// A min above it floors it.
	putJSON(t, cfgURL, `{"autoscale": {"max_replicas": 0, "min_replicas": `+itoa(raw+50)+`}}`).Body.Close()
	rec = decode[pipeline.Recommendation](t, mustGet(t, recURL))
	if rec.Desired != raw+50 || rec.ClampedBy != pipeline.ClampMinReplicas {
		t.Fatalf("min clamp: %+v", rec)
	}

	// A scale-up step bounds the move relative to the current count
	// (0 on the dry-run actuator before any actuation).
	putJSON(t, cfgURL, `{"autoscale": {"min_replicas": 0, "scale_up_max_step": 2}}`).Body.Close()
	rec = decode[pipeline.Recommendation](t, mustGet(t, recURL))
	if rec.Desired != 2 || rec.ClampedBy != pipeline.ClampUpStep || rec.Verdict != pipeline.VerdictUp {
		t.Fatalf("up-step clamp: %+v", rec)
	}

	// Identical state, identical bytes: the pinned clock makes the
	// decision replayable.
	a := getBytes(t, recURL)
	b := getBytes(t, recURL)
	if a != b {
		t.Fatalf("recommendation not byte-deterministic:\n%s\n%s", a, b)
	}

	// The stats composite surfaces the pipeline's view of the same
	// decision.
	st := decode[statsDoc](t, mustGet(t, ts.URL+"/v1/workloads/w/stats"))
	if st.Autoscale == nil || st.Autoscale.LastRecommendation == nil {
		t.Fatalf("stats missing autoscale block: %+v", st)
	}
	if st.Autoscale.LastRecommendation.Desired != rec.Desired {
		t.Fatalf("stats recommendation %+v != endpoint %+v", st.Autoscale.LastRecommendation, rec)
	}
	if st.ArrivalsRecorded == 0 {
		t.Fatalf("engine stats lost in the composite: %+v", st)
	}

	// A cold workload has no model, so the pipeline reports the
	// analyze-stage failure as a 409-style engine error, not a panic.
	postJSON(t, ts.URL+"/v1/workloads/cold/arrivals", map[string]any{"timestamps": []float64{1, 2, 3}}).Body.Close()
	resp, err = http.Get(ts.URL + "/v1/workloads/cold/recommendation")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("recommendation for an untrained workload succeeded")
	}
}

// With the sim actuator and autoscale enabled, the background sweep
// actuates decisions and the anti-flapping windows hold end-to-end:
// once a sweep scales the workload down, no later sweep scales it down
// again inside the cooldown.
func TestAutoscaleSweepActuatesAndHonorsCooldown(t *testing.T) {
	now := 4 * 3600.0
	cfg := DefaultConfig()
	cfg.MCSamples = 200
	cfg.Now = func() float64 { return now }
	cfg.Train.DetectPeriodicity = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.SetActuator("sim"); err != nil {
		t.Fatal(err)
	}
	seedTrained(t, ts, "w", now)
	putJSON(t, ts.URL+"/v1/workloads/w/config",
		`{"autoscale": {"enabled": true, "min_replicas": 1, "interval_seconds": 10,
		  "scale_down_cooldown_seconds": 600, "scale_up_max_step": 3}}`).Body.Close()

	lastDownAt := -1.0
	prevDesired := -1
	for i := 0; i < 240; i++ {
		now += 15
		decided, failed := s.Pipelines().SweepOnce()
		if failed != 0 {
			t.Fatalf("t=%g: %d pipeline failures", now, failed)
		}
		if decided == 0 {
			t.Fatalf("t=%g: due sweep decided nothing", now)
		}
		st := decode[statsDoc](t, mustGet(t, ts.URL+"/v1/workloads/w/stats"))
		as := st.Autoscale
		if as == nil || !as.Enabled || as.LastRecommendation == nil {
			t.Fatalf("t=%g: stats autoscale block %+v", now, as)
		}
		d := as.LastRecommendation.Desired
		if d < 1 {
			t.Fatalf("t=%g: desired %d below min_replicas", now, d)
		}
		if as.Replicas.Desired != d {
			t.Fatalf("t=%g: actuator desired %d != decision %d", now, as.Replicas.Desired, d)
		}
		if prevDesired >= 0 {
			if d > prevDesired+3 {
				t.Fatalf("t=%g: scale-up step %d → %d exceeds max step 3", now, prevDesired, d)
			}
			if d < prevDesired {
				if lastDownAt >= 0 && now-lastDownAt < 600 {
					t.Fatalf("t=%g: scale-down %gs after the previous one, inside the 600s cooldown",
						now, now-lastDownAt)
				}
				lastDownAt = now
			}
		}
		prevDesired = d
	}
	if prevDesired < 0 {
		t.Fatal("no decisions observed")
	}
	// The sim cluster tracked actuations and reports lifecycle churn.
	st := decode[statsDoc](t, mustGet(t, ts.URL+"/v1/workloads/w/stats"))
	if st.Autoscale.Replicas.Actuations == 0 {
		t.Fatalf("sim actuator recorded no actuations: %+v", st.Autoscale.Replicas)
	}
}

// Deleting and recreating a workload must reset its stabilization
// history: the fresh controller starts with an empty window.
func TestAutoscaleStateResetsOnWorkloadDelete(t *testing.T) {
	const fakeNow = 4 * 3600.0
	s, ts := newTestServer(t, fakeNow)
	seedTrained(t, ts, "w", fakeNow)
	mustGet(t, ts.URL+"/v1/workloads/w/recommendation").Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workloads/w", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	seedTrained(t, ts, "w", fakeNow)
	st := decode[statsDoc](t, mustGet(t, ts.URL+"/v1/workloads/w/stats"))
	if st.Autoscale == nil {
		t.Fatal("stats missing autoscale block")
	}
	if st.Autoscale.LastRecommendation != nil {
		t.Fatalf("recreated workload inherited autoscale state: %+v", st.Autoscale.LastRecommendation)
	}
	_ = s
}

func getBytes(t *testing.T, url string) string {
	t.Helper()
	resp := mustGet(t, url)
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

func itoa(n int) string {
	return strconv.Itoa(n)
}
