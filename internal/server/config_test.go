package server

import (
	"bytes"
	"net/http"
	"testing"
)

func putJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestConfigAPILifecycle(t *testing.T) {
	_, ts := newTestServer(t, 0)

	// Config routes never create workloads: 404 until the first ingest.
	resp, err := http.Get(ts.URL + "/v1/workloads/svc/config")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET config of unknown workload: %d, want 404", resp.StatusCode)
	}
	r := putJSON(t, ts.URL+"/v1/workloads/svc/config", `{"pending": 20}`)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("PUT config of unknown workload: %d, want 404", r.StatusCode)
	}

	postJSON(t, ts.URL+"/v1/workloads/svc/arrivals", map[string]any{"timestamps": []float64{1, 2, 3}}).Body.Close()

	// Fresh workloads carry the fleet defaults at version 1.
	got := decode[map[string]any](t, mustGet(t, ts.URL+"/v1/workloads/svc/config"))
	if got["version"] != float64(1) || got["dt"] != float64(60) || got["hp_target"] != 0.9 {
		t.Fatalf("fresh config = %v", got)
	}

	// Partial PUT: named fields change, the rest hold, version bumps.
	resp = putJSON(t, ts.URL+"/v1/workloads/svc/config", `{"pending": 20, "hp_target": 0.75}`)
	got = decode[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT config: %d (%v)", resp.StatusCode, got)
	}
	if got["version"] != float64(2) || got["pending"] != float64(20) ||
		got["hp_target"] != 0.75 || got["dt"] != float64(60) {
		t.Fatalf("updated config = %v", got)
	}

	// Status surfaces the config version.
	st := decode[map[string]any](t, mustGet(t, ts.URL+"/v1/workloads/svc/status"))
	if st["config_version"] != float64(2) {
		t.Fatalf("status config_version = %v, want 2", st["config_version"])
	}

	// Optimistic concurrency: a stale version is a 409.
	r = putJSON(t, ts.URL+"/v1/workloads/svc/config", `{"version": 1, "pending": 99}`)
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("stale-version PUT: %d, want 409", r.StatusCode)
	}
	// The matching version applies.
	resp = putJSON(t, ts.URL+"/v1/workloads/svc/config", `{"version": 2, "pending": 25}`)
	got = decode[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK || got["version"] != float64(3) || got["pending"] != float64(25) {
		t.Fatalf("versioned PUT = %d %v", resp.StatusCode, got)
	}

	// The nested train knobs merge the same way: one knob set, the
	// others (and the rest of the config) keep their values.
	resp = putJSON(t, ts.URL+"/v1/workloads/svc/config", `{"train": {"admm_max_iter": 200, "disable_warm_start": true}}`)
	got = decode[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT train knobs: %d (%v)", resp.StatusCode, got)
	}
	train, ok := got["train"].(map[string]any)
	if !ok || train["admm_max_iter"] != float64(200) ||
		train["admm_tol"] != float64(0) || train["disable_warm_start"] != true {
		t.Fatalf("train knobs after PUT = %v", got["train"])
	}
	if got["pending"] != float64(25) {
		t.Fatalf("train-knob PUT disturbed pending: %v", got["pending"])
	}
	resp = putJSON(t, ts.URL+"/v1/workloads/svc/config", `{"train": {"admm_tol": 0.001}}`)
	got = decode[map[string]any](t, resp)
	train, _ = got["train"].(map[string]any)
	if resp.StatusCode != http.StatusOK || train["admm_max_iter"] != float64(200) ||
		train["admm_tol"] != 0.001 || train["disable_warm_start"] != true {
		t.Fatalf("partial train-knob PUT = %d %v", resp.StatusCode, got["train"])
	}
}

func TestConfigAPIValidation(t *testing.T) {
	_, ts := newTestServer(t, 0)
	postJSON(t, ts.URL+"/v1/workloads/svc/arrivals", map[string]any{"timestamps": []float64{1, 2, 3}}).Body.Close()

	cases := []struct{ name, body string }{
		{"unknown field", `{"dtt": 30}`},
		{"bad json", `{`},
		{"zero dt", `{"dt": 0}`},
		{"hp target out of range", `{"hp_target": 1.5}`},
		{"negative pending", `{"pending": -3}`},
		{"mc samples zero", `{"mc_samples": 0}`},
		{"string value", `{"pending": "fast"}`},
		{"unknown train knob", `{"train": {"iters": 5}}`},
		{"negative admm_max_iter", `{"train": {"admm_max_iter": -1}}`},
		{"admm_tol out of range", `{"train": {"admm_tol": 1.5}}`},
		{"candidate period below 2*dt", `{"train": {"candidate_periods": [30]}}`},
		{"negative candidate period", `{"train": {"candidate_periods": [-3600]}}`},
		{"non-numeric candidate period", `{"train": {"candidate_periods": ["daily"]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := putJSON(t, ts.URL+"/v1/workloads/svc/config", tc.body)
			r.Body.Close()
			if r.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s: status %d, want 400", tc.name, r.StatusCode)
			}
		})
	}
	// None of the rejected updates moved the version.
	got := decode[map[string]any](t, mustGet(t, ts.URL+"/v1/workloads/svc/config"))
	if got["version"] != float64(1) {
		t.Fatalf("version after rejected updates = %v, want 1", got["version"])
	}
}

// TestConfigPeriodicityKnobs drives the periodicity knobs through the
// merge plane: set, read back, and reset with an explicit empty list.
func TestConfigPeriodicityKnobs(t *testing.T) {
	_, ts := newTestServer(t, 0)
	postJSON(t, ts.URL+"/v1/workloads/svc/arrivals", map[string]any{"timestamps": []float64{1, 2, 3}}).Body.Close()

	trainOf := func(m map[string]any) map[string]any {
		t.Helper()
		tr, ok := m["train"].(map[string]any)
		if !ok {
			t.Fatalf("config has no train block: %v", m)
		}
		return tr
	}

	r := putJSON(t, ts.URL+"/v1/workloads/svc/config",
		`{"train": {"candidate_periods": [86400, 604800], "disable_periodicity": false}}`)
	got := decode[map[string]any](t, r)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("PUT periodicity knobs: %d (%v)", r.StatusCode, got)
	}
	tr := trainOf(got)
	cp, ok := tr["candidate_periods"].([]any)
	if !ok || len(cp) != 2 || cp[0] != float64(86400) || cp[1] != float64(604800) {
		t.Fatalf("candidate_periods after PUT = %v", tr["candidate_periods"])
	}

	// A partial train PUT must keep the untouched knob.
	r = putJSON(t, ts.URL+"/v1/workloads/svc/config", `{"train": {"disable_periodicity": true}}`)
	got = decode[map[string]any](t, r)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("PUT disable_periodicity: %d (%v)", r.StatusCode, got)
	}
	tr = trainOf(got)
	if tr["disable_periodicity"] != true {
		t.Fatalf("disable_periodicity = %v, want true", tr["disable_periodicity"])
	}
	if cp, _ := tr["candidate_periods"].([]any); len(cp) != 2 {
		t.Fatalf("partial PUT dropped candidate_periods: %v", tr["candidate_periods"])
	}

	// An explicit empty list resets the knob to the unrestricted default
	// (and the field disappears from the rendered config).
	r = putJSON(t, ts.URL+"/v1/workloads/svc/config", `{"train": {"candidate_periods": []}}`)
	got = decode[map[string]any](t, r)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("PUT reset: %d (%v)", r.StatusCode, got)
	}
	if v, present := trainOf(got)["candidate_periods"]; present {
		t.Fatalf("reset left candidate_periods = %v", v)
	}
}

// TestConfigDefaultsDrivePlans proves the per-workload targets are live:
// a plan request without ?target= uses the workload's configured
// default, not a fleet constant.
func TestConfigDefaultsDrivePlans(t *testing.T) {
	const horizon = 6 * 3600.0
	_, ts := newTestServer(t, horizon)
	postJSON(t, ts.URL+"/v1/workloads/svc/arrivals",
		map[string]any{"timestamps": trafficArrivals(3, horizon)}).Body.Close()
	resp := postJSON(t, ts.URL+"/v1/workloads/svc/train", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("train: %d", resp.StatusCode)
	}
	resp.Body.Close()

	planURL := func(params string) string {
		return ts.URL + "/v1/workloads/svc/plan?now=21600" + params
	}
	_, explicit := getBody(t, planURL("&variant=hp&target=0.5&horizon=900"))
	_, def09 := getBody(t, planURL("&variant=hp&horizon=900"))
	if explicit == def09 {
		t.Fatal("target=0.5 and the 0.9 default produced identical plans; defaulting is broken either way")
	}

	// Reconfigure the workload default to 0.5 (and the horizon to 900):
	// the bare request must now match the explicit one byte for byte.
	r := putJSON(t, ts.URL+"/v1/workloads/svc/config", `{"hp_target": 0.5, "plan_horizon": 900}`)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("PUT config: %d", r.StatusCode)
	}
	r.Body.Close()
	_, def05 := getBody(t, planURL("&variant=hp"))
	if def05 != explicit {
		t.Fatalf("configured default not used:\nbare     %s\nexplicit %s", def05, explicit)
	}
}

// TestConfigSurvivesRestart proves a PUT config is durable: snapshot,
// boot a fresh server from the same dir, and the tuned values (and
// version) are back.
func TestConfigSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, 0)
	if err := s1.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts1.URL+"/v1/workloads/svc/arrivals", map[string]any{"timestamps": []float64{1, 2, 3}}).Body.Close()
	r := putJSON(t, ts1.URL+"/v1/workloads/svc/config", `{"pending": 21, "retrain_every": 900}`)
	want := decode[map[string]any](t, r)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("PUT config: %d", r.StatusCode)
	}
	postJSON(t, ts1.URL+"/v1/admin/snapshot", map[string]any{}).Body.Close()
	ts1.Close()

	s2, ts2 := newTestServer(t, 0)
	if n, err := s2.Registry().Restore(dir); err != nil || n != 1 {
		t.Fatalf("Restore = (%d, %v), want (1, nil)", n, err)
	}
	got := decode[map[string]any](t, mustGet(t, ts2.URL+"/v1/workloads/svc/config"))
	for _, k := range []string{"version", "pending", "retrain_every", "dt"} {
		if got[k] != want[k] {
			t.Fatalf("restored config %s = %v, want %v (full: %v)", k, got[k], want[k], got)
		}
	}
}
