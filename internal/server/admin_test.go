package server

import (
	"net/http"
	"strings"
	"testing"

	"robustscaler/internal/engine"
	"robustscaler/internal/store"
)

// TestGenerationsAndRestoreEndpoint drives the point-in-time restore
// surface end to end: two snapshot generations, a rollback to the
// first over HTTP, and the fleet serving the rolled-back history
// immediately — no restart.
func TestGenerationsAndRestoreEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, 0)
	if err := s.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	s.st.SetRetain(4)

	postJSON(t, ts.URL+"/v1/workloads/web/arrivals", map[string]any{"timestamps": []float64{1, 2, 3}}).Body.Close()
	postJSON(t, ts.URL+"/v1/admin/snapshot", map[string]any{}).Body.Close()
	postJSON(t, ts.URL+"/v1/workloads/web/arrivals", map[string]any{"timestamps": []float64{4, 5}}).Body.Close()
	postJSON(t, ts.URL+"/v1/admin/snapshot", map[string]any{}).Body.Close()

	resp := mustGet(t, ts.URL+"/v1/admin/generations")
	gens := decode[map[string][]store.GenerationInfo](t, resp)["generations"]
	if len(gens) != 2 {
		t.Fatalf("generations = %+v, want 2", gens)
	}
	if !gens[1].Current || gens[0].Current {
		t.Fatalf("newest generation should be current: %+v", gens)
	}

	// Unknown generation → 404; missing field → 400.
	r := postJSON(t, ts.URL+"/v1/admin/restore-generation", map[string]any{"generation": 999})
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("restore unknown generation status %d, want 404", r.StatusCode)
	}
	r = postJSON(t, ts.URL+"/v1/admin/restore-generation", map[string]any{})
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("restore without generation status %d, want 400", r.StatusCode)
	}

	// Roll back to the first generation: 3 arrivals, not 5.
	r = postJSON(t, ts.URL+"/v1/admin/restore-generation", map[string]any{"generation": gens[0].Seq})
	body := decode[map[string]any](t, r)
	if r.StatusCode != http.StatusOK || body["workloads"] != float64(1) {
		t.Fatalf("restore status %d body %v", r.StatusCode, body)
	}
	st := decode[statusResponse](t, mustGet(t, ts.URL+"/v1/workloads/web/status"))
	if st.Arrivals != 3 {
		t.Fatalf("arrivals after rollback = %d, want 3", st.Arrivals)
	}

	// Traffic accepted after the rollback is on the restored timeline.
	postJSON(t, ts.URL+"/v1/workloads/web/arrivals", map[string]any{"timestamps": []float64{6, 7}}).Body.Close()
	st = decode[statusResponse](t, mustGet(t, ts.URL+"/v1/workloads/web/status"))
	if st.Arrivals != 5 {
		t.Fatalf("arrivals after post-rollback ingest = %d, want 5", st.Arrivals)
	}
}

// TestAdminGenerationsWithoutDataDir pins the disabled-persistence
// contract for the restore surface: 409, same as the snapshot endpoint.
func TestAdminGenerationsWithoutDataDir(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp := mustGet(t, ts.URL+"/v1/admin/generations")
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("generations without data dir: status %d, want 409", resp.StatusCode)
	}
	r := postJSON(t, ts.URL+"/v1/admin/restore-generation", map[string]any{"generation": 1})
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("restore without data dir: status %d, want 409", r.StatusCode)
	}
}

// TestHealthzBootDegraded pins the degraded-boot contract: casualties
// reported by restore-on-boot flip /healthz to "degraded" with the
// detail inline, but the status stays 200 — a restart cannot fix
// quarantined files, so a failing health check would only crash-loop a
// process whose surviving workloads serve fine.
func TestHealthzBootDegraded(t *testing.T) {
	s, ts := newTestServer(t, 0)
	s.SetBootDegraded(
		[]store.Quarantined{{ID: "api", File: "workloads/api.json", Reason: "checksum mismatch"}},
		[]engine.WALResetIssue{{ID: "web", Reason: "the log and the snapshot describe different timelines"}},
	)
	status, body := getBody(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("degraded boot healthz status %d, want 200", status)
	}
	for _, want := range []string{`"status":"degraded"`, `"api"`, `"checksum mismatch"`, `"web"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("healthz body missing %s: %s", want, body)
		}
	}

	// Empty casualties leave the boot clean.
	s2, ts2 := newTestServer(t, 0)
	s2.SetBootDegraded(nil, nil)
	if _, body := getBody(t, ts2.URL+"/healthz"); !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("clean boot healthz: %s", body)
	}
}
