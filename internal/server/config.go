package server

// Per-workload config API:
//
//	GET /v1/workloads/{id}/config   the workload's current EngineConfig
//	PUT /v1/workloads/{id}/config   update any subset of its fields
//
// PUT is a merge: fields present in the body replace the current
// values, fields absent keep them, and unknown fields are a 400 (a
// typo'd knob must not silently no-op). The optional "version" field is
// an optimistic-concurrency token — when present it must match the
// workload's current config version or the update is rejected with 409,
// so two operators editing the same workload cannot silently stomp each
// other. Validation failures are 400s and leave the config untouched.
//
// A workload must exist to be configured (404 otherwise): like every
// non-ingest route, config reads and writes never create workloads —
// only a valid arrivals POST does. New workloads start from the fleet
// defaults (scalerd's flags); tune them after the first ingest.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"robustscaler/internal/engine"
)

// maxConfigBytes caps a PUT config body; the document is a handful of
// scalars, so anything past 1 MiB is garbage or an attack.
const maxConfigBytes = 1 << 20

// configUpdate is the PUT body: pointer fields distinguish "absent"
// (keep the current value) from an explicit zero.
type configUpdate struct {
	Version       *int64           `json:"version"`
	Dt            *float64         `json:"dt"`
	Pending       *float64         `json:"pending"`
	HistoryWindow *float64         `json:"history_window"`
	MCSamples     *int             `json:"mc_samples"`
	HPTarget      *float64         `json:"hp_target"`
	RTTarget      *float64         `json:"rt_target"`
	CostTarget    *float64         `json:"cost_target"`
	PlanHorizon   *float64         `json:"plan_horizon"`
	RetrainEvery  *float64         `json:"retrain_every"`
	Train         *trainUpdate     `json:"train"`
	Autoscale     *autoscaleUpdate `json:"autoscale"`
}

// trainUpdate is the nested train-knobs merge: like the top level,
// pointer fields distinguish "absent" from an explicit zero, so a PUT
// can reset one knob to the fleet default (0) without touching the
// others.
type trainUpdate struct {
	ADMMMaxIter        *int       `json:"admm_max_iter"`
	ADMMTol            *float64   `json:"admm_tol"`
	DisableWarmStart   *bool      `json:"disable_warm_start"`
	DisablePeriodicity *bool      `json:"disable_periodicity"`
	CandidatePeriods   *[]float64 `json:"candidate_periods"`
}

// autoscaleUpdate is the nested autoscale-knobs merge: pointer fields
// distinguish "absent" from an explicit zero, so a PUT can reset one
// behavior to its default (0) without touching the others. Unknown keys
// inside it are 400s like everywhere else — the decoder's
// DisallowUnknownFields applies to nested objects too.
type autoscaleUpdate struct {
	Enabled                       *bool    `json:"enabled"`
	MinReplicas                   *int     `json:"min_replicas"`
	MaxReplicas                   *int     `json:"max_replicas"`
	Target                        *float64 `json:"target"`
	LeadSeconds                   *float64 `json:"lead_seconds"`
	IntervalSeconds               *float64 `json:"interval_seconds"`
	ScaleUpMaxStep                *int     `json:"scale_up_max_step"`
	ScaleDownMaxStep              *int     `json:"scale_down_max_step"`
	ScaleDownStabilizationSeconds *float64 `json:"scale_down_stabilization_seconds"`
	ScaleDownCooldownSeconds      *float64 `json:"scale_down_cooldown_seconds"`
}

// merge applies the update over cur and returns the result: fields
// present in the update replace the current values, absent fields keep
// them. Shared by the single-workload PUT and the bulk admin endpoint,
// so "what a partial config document means" has exactly one
// definition. Pure — validation and the version CAS happen inside
// Engine.SetEngineConfig.
func (u *configUpdate) merge(cur engine.EngineConfig) engine.EngineConfig {
	merged := cur
	if u.Dt != nil {
		merged.Dt = *u.Dt
	}
	if u.Pending != nil {
		merged.Pending = *u.Pending
	}
	if u.HistoryWindow != nil {
		merged.HistoryWindow = *u.HistoryWindow
	}
	if u.MCSamples != nil {
		merged.MCSamples = *u.MCSamples
	}
	if u.HPTarget != nil {
		merged.HPTarget = *u.HPTarget
	}
	if u.RTTarget != nil {
		merged.RTTarget = *u.RTTarget
	}
	if u.CostTarget != nil {
		merged.CostTarget = *u.CostTarget
	}
	if u.PlanHorizon != nil {
		merged.PlanHorizon = *u.PlanHorizon
	}
	if u.RetrainEvery != nil {
		merged.RetrainEvery = *u.RetrainEvery
	}
	if u.Train != nil {
		if u.Train.ADMMMaxIter != nil {
			merged.Train.ADMMMaxIter = *u.Train.ADMMMaxIter
		}
		if u.Train.ADMMTol != nil {
			merged.Train.ADMMTol = *u.Train.ADMMTol
		}
		if u.Train.DisableWarmStart != nil {
			merged.Train.DisableWarmStart = *u.Train.DisableWarmStart
		}
		if u.Train.DisablePeriodicity != nil {
			merged.Train.DisablePeriodicity = *u.Train.DisablePeriodicity
		}
		if u.Train.CandidatePeriods != nil {
			// Copy, and keep an explicit [] as nil: "candidate_periods": []
			// resets the knob to the unrestricted default.
			if len(*u.Train.CandidatePeriods) == 0 {
				merged.Train.CandidatePeriods = nil
			} else {
				merged.Train.CandidatePeriods = append([]float64(nil), (*u.Train.CandidatePeriods)...)
			}
		}
	}
	if u.Autoscale != nil {
		if u.Autoscale.Enabled != nil {
			merged.Autoscale.Enabled = *u.Autoscale.Enabled
		}
		if u.Autoscale.MinReplicas != nil {
			merged.Autoscale.MinReplicas = *u.Autoscale.MinReplicas
		}
		if u.Autoscale.MaxReplicas != nil {
			merged.Autoscale.MaxReplicas = *u.Autoscale.MaxReplicas
		}
		if u.Autoscale.Target != nil {
			merged.Autoscale.Target = *u.Autoscale.Target
		}
		if u.Autoscale.LeadSeconds != nil {
			merged.Autoscale.LeadSeconds = *u.Autoscale.LeadSeconds
		}
		if u.Autoscale.IntervalSeconds != nil {
			merged.Autoscale.IntervalSeconds = *u.Autoscale.IntervalSeconds
		}
		if u.Autoscale.ScaleUpMaxStep != nil {
			merged.Autoscale.ScaleUpMaxStep = *u.Autoscale.ScaleUpMaxStep
		}
		if u.Autoscale.ScaleDownMaxStep != nil {
			merged.Autoscale.ScaleDownMaxStep = *u.Autoscale.ScaleDownMaxStep
		}
		if u.Autoscale.ScaleDownStabilizationSeconds != nil {
			merged.Autoscale.ScaleDownStabilizationSeconds = *u.Autoscale.ScaleDownStabilizationSeconds
		}
		if u.Autoscale.ScaleDownCooldownSeconds != nil {
			merged.Autoscale.ScaleDownCooldownSeconds = *u.Autoscale.ScaleDownCooldownSeconds
		}
	}
	return merged
}

func (s *Server) handleConfigGet(w http.ResponseWriter, _ *http.Request, e *engine.Engine) {
	s.writeJSON(w, e.EngineConfig())
}

func (s *Server) handleConfigPut(w http.ResponseWriter, r *http.Request, e *engine.Engine) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxConfigBytes))
	dec.DisallowUnknownFields()
	var u configUpdate
	if err := dec.Decode(&u); err != nil {
		http.Error(w, "bad config JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	cur := e.EngineConfig()
	if u.Version != nil && *u.Version != cur.Version {
		http.Error(w, fmt.Sprintf("config version conflict: update carries version %d, current is %d; re-read and retry",
			*u.Version, cur.Version), http.StatusConflict)
		return
	}
	applied, err := e.SetEngineConfig(u.merge(cur))
	if err != nil {
		if errors.Is(err, engine.ErrConflict) {
			// A concurrent update landed between our read and the swap.
			// Without an explicit version the client asked for "apply over
			// whatever is there", but we cannot honor that blindly — the
			// merge base is gone — so surface the race for a retry.
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		httpError(w, err)
		return
	}
	s.writeJSON(w, applied)
}
