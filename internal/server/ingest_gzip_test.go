package server

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// assertNoWorkload fails if the ingest attempt brought the workload
// into existence — the all-or-nothing contract for rejected bodies.
func assertNoWorkload(t *testing.T, s *Server, id string) {
	t.Helper()
	if _, ok := s.Registry().Get(id); ok {
		t.Fatalf("rejected ingest created workload %q", id)
	}
}

// TestGzipEmptyBody pins the degenerate gzip body: zero bytes is not a
// gzip stream (no header), so the request is a clean 400 and no
// workload is created.
func TestGzipEmptyBody(t *testing.T) {
	s, ts := newTestServer(t, 0)
	r := postBody(t, ts.URL+"/v1/workloads/gz-empty/arrivals", "application/x-ndjson", "gzip", nil)
	defer r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty gzip body: status %d, want 400", r.StatusCode)
	}
	assertNoWorkload(t, s, "gz-empty")
}

// TestGzipTrailingGarbage pins a valid gzip member followed by trailing
// junk: the decompressor hits the junk where the next member's header
// should be, the decode fails, and — because decode completes before
// the workload is resolved — nothing is partially ingested.
func TestGzipTrailingGarbage(t *testing.T) {
	s, ts := newTestServer(t, 0)
	body := append(gzipBody(t, ndjsonBody([]float64{1, 2, 3})), []byte("trailing garbage")...)
	r := postBody(t, ts.URL+"/v1/workloads/gz-trail/arrivals", "application/x-ndjson", "gzip", body)
	defer r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("gzip with trailing garbage: status %d, want 400", r.StatusCode)
	}
	assertNoWorkload(t, s, "gz-trail")
}

// TestGzipDecompressedSizeCap pins the boundary of -max-ingest-bytes on
// the inflated stream: a member that decompresses to exactly the cap is
// accepted in full, one extra byte is a clean 413 with no partial
// ingest and no workload created. (The compressed body is far below the
// cap either way — only the decompressed-size check can catch this.)
func TestGzipDecompressedSizeCap(t *testing.T) {
	s, ts := newTestServer(t, 0)
	// 100 lines of "16000.25\n" — 9 bytes each, 900 bytes inflated.
	line := "16000.25\n"
	payload := []byte(strings.Repeat(line, 100))
	s.SetMaxIngestBytes(int64(len(payload)))

	r := postBody(t, ts.URL+"/v1/workloads/gz-cap/arrivals", "application/x-ndjson", "gzip", gzipBody(t, payload))
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("member of exactly the cap: status %d, want 200", r.StatusCode)
	}
	rec := decode[map[string]any](t, r)
	if rec["recorded"] != float64(100) {
		t.Fatalf("recorded = %v, want 100", rec["recorded"])
	}

	// One decompressed byte past the cap: 413, all-or-nothing.
	over := append(bytes.Clone(payload), '\n')
	r2 := postBody(t, ts.URL+"/v1/workloads/gz-over/arrivals", "application/x-ndjson", "gzip", gzipBody(t, over))
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("member one byte past the cap: status %d, want 413", r2.StatusCode)
	}
	assertNoWorkload(t, s, "gz-over")
	// The accepted workload kept exactly its own batch: the oversized
	// request touched nothing.
	st := decode[map[string]any](t, mustGet(t, ts.URL+"/v1/workloads/gz-cap/stats"))
	if st["arrivals_recorded"] != float64(100) {
		t.Fatalf("gz-cap arrivals after oversized sibling = %v, want 100", st["arrivals_recorded"])
	}
}
