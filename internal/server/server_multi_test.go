package server

import (
	"fmt"
	"io"
	"net/http"
	"testing"
)

// getBody fetches a URL and returns status + body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMultiWorkloadIsolation is the acceptance check for the engine
// extraction: one server process carries two workloads with independent
// models, and traffic to workload A never changes workload B's forecast
// or plan output.
func TestMultiWorkloadIsolation(t *testing.T) {
	const horizon = 4 * 3600.0
	_, ts := newTestServer(t, horizon)

	// Two workloads with different traffic shapes.
	postJSON(t, ts.URL+"/v1/workloads/registry-eu/arrivals",
		map[string]any{"timestamps": trafficArrivals(1, horizon)}).Body.Close()
	postJSON(t, ts.URL+"/v1/workloads/ci-runners/arrivals",
		map[string]any{"timestamps": trafficArrivals(2, horizon)}).Body.Close()
	for _, id := range []string{"registry-eu", "ci-runners"} {
		resp := postJSON(t, ts.URL+"/v1/workloads/"+id+"/train", map[string]any{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("train %s status %d", id, resp.StatusCode)
		}
		resp.Body.Close()
	}

	planURL := fmt.Sprintf("%s/v1/workloads/ci-runners/plan?variant=hp&target=0.9&horizon=300&now=%g", ts.URL, horizon)
	fcURL := fmt.Sprintf("%s/v1/workloads/ci-runners/forecast?from=%g&to=%g&step=300", ts.URL, horizon, horizon+3600)
	_, planBefore := getBody(t, planURL)
	_, fcBefore := getBody(t, fcURL)

	// Hammer workload A with new traffic and retrain it.
	extra := trafficArrivals(3, horizon)
	for i := range extra {
		extra[i] += horizon
	}
	postJSON(t, ts.URL+"/v1/workloads/registry-eu/arrivals", map[string]any{"timestamps": extra}).Body.Close()
	postJSON(t, ts.URL+"/v1/workloads/registry-eu/train", map[string]any{}).Body.Close()

	// Workload B's outputs are byte-identical.
	if _, planAfter := getBody(t, planURL); planAfter != planBefore {
		t.Fatalf("B's plan changed after traffic to A:\nbefore: %s\nafter:  %s", planBefore, planAfter)
	}
	if _, fcAfter := getBody(t, fcURL); fcAfter != fcBefore {
		t.Fatal("B's forecast changed after traffic to A")
	}
}

// TestLegacyRoutesRetired pins the removal of the pre-multi-tenant
// single-workload aliases: every retired path is a plain 404, and
// probing them never registers a workload.
func TestLegacyRoutesRetired(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp := postJSON(t, ts.URL+"/v1/arrivals", map[string]any{"timestamps": []float64{1, 2}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/arrivals status %d, want 404", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/train", map[string]any{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/train status %d, want 404", resp.StatusCode)
	}
	for _, path := range []string{"/v1/plan", "/v1/forecast", "/v1/status"} {
		if status, _ := getBody(t, ts.URL+path); status != http.StatusNotFound {
			t.Fatalf("GET %s status %d, want 404", path, status)
		}
	}
	if status, body := getBody(t, ts.URL+"/v1/workloads"); status != http.StatusOK || body != "{\"workloads\":[]}\n" {
		t.Fatalf("workload list %d: %q (legacy probes must not register anything)", status, body)
	}
}

func TestWorkloadListAndDelete(t *testing.T) {
	_, ts := newTestServer(t, 0)
	if status, body := getBody(t, ts.URL+"/v1/workloads"); status != http.StatusOK || body != "{\"workloads\":[]}\n" {
		t.Fatalf("empty list %d: %q", status, body)
	}
	postJSON(t, ts.URL+"/v1/workloads/a/arrivals", map[string]any{"timestamps": []float64{1, 2}}).Body.Close()
	postJSON(t, ts.URL+"/v1/workloads/b/arrivals", map[string]any{"timestamps": []float64{1, 2}}).Body.Close()
	if _, body := getBody(t, ts.URL+"/v1/workloads"); body != "{\"workloads\":[\"a\",\"b\"]}\n" {
		t.Fatalf("list %q", body)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workloads/a", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete status %d, want 404", resp2.StatusCode)
	}
	if _, body := getBody(t, ts.URL+"/v1/workloads"); body != "{\"workloads\":[\"b\"]}\n" {
		t.Fatalf("list after delete %q", body)
	}
	// Non-finite query parameters are rejected at the parse layer; a
	// NaN now= used to panic the plan handler.
	postJSON(t, ts.URL+"/v1/workloads/b/arrivals", map[string]any{"timestamps": []float64{3, 4, 5, 6}}).Body.Close()
	postJSON(t, ts.URL+"/v1/workloads/b/train", map[string]any{}).Body.Close()
	for _, q := range []string{"now=NaN", "target=NaN", "horizon=Inf", "now=+Inf"} {
		if status, _ := getBody(t, ts.URL+"/v1/workloads/b/plan?"+q); status != http.StatusBadRequest {
			t.Fatalf("plan?%s status %d, want 400", q, status)
		}
	}

	// Reads of unknown workloads are 404s and never register anything:
	// a typo'd or scanning GET must not grow the registry or resurrect
	// a deleted workload.
	for _, path := range []string{"/v1/workloads/typo/plan", "/v1/workloads/typo/forecast", "/v1/workloads/a/status"} {
		if status, _ := getBody(t, ts.URL+path); status != http.StatusNotFound {
			t.Fatalf("GET %s status %d, want 404", path, status)
		}
	}
	if _, body := getBody(t, ts.URL+"/v1/workloads"); body != "{\"workloads\":[\"b\"]}\n" {
		t.Fatalf("list grew from read-only GETs: %q", body)
	}
	// Invalid writes don't create either: train on an unknown workload
	// is a 404, and a malformed arrivals body never registers the id.
	resp3 := postJSON(t, ts.URL+"/v1/workloads/new/train", map[string]any{})
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("train on unknown workload status %d, want 404", resp3.StatusCode)
	}
	resp4 := postJSON(t, ts.URL+"/v1/workloads/new/arrivals", map[string]any{"timestamps": []float64{}})
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ingest status %d, want 400", resp4.StatusCode)
	}
	resp5 := postJSON(t, ts.URL+"/v1/workloads/new/arrivals", map[string]any{"timestamps": []float64{1e300}})
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range ingest status %d, want 400", resp5.StatusCode)
	}
	if _, body := getBody(t, ts.URL+"/v1/workloads"); body != "{\"workloads\":[\"b\"]}\n" {
		t.Fatalf("list grew from invalid writes: %q", body)
	}
	// Only a valid ingest brings a workload into existence.
	postJSON(t, ts.URL+"/v1/workloads/new/arrivals", map[string]any{"timestamps": []float64{1, 2}}).Body.Close()
	if _, body := getBody(t, ts.URL+"/v1/workloads"); body != "{\"workloads\":[\"b\",\"new\"]}\n" {
		t.Fatalf("list after valid ingest %q", body)
	}
}
