package server

import (
	"bufio"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and parses the exposition into a map from
// full series line key (name plus label block, exactly as rendered) to
// value.
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsCountersMove is the acceptance test for the observability
// plane: every layer's counters must advance as traffic flows through
// ingest, train, plan/forecast (miss then hit) and snapshot.
func TestMetricsCountersMove(t *testing.T) {
	const horizon = 4 * 3600.0
	dir := t.TempDir()
	s, ts := newTestServer(t, horizon)
	if err := s.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}

	arr := trafficArrivals(1, horizon)
	postJSON(t, ts.URL+"/v1/workloads/svc/arrivals", map[string]any{"timestamps": arr[:len(arr)/2]}).Body.Close()
	nd := ndjsonBody(arr[len(arr)/2:])
	postBody(t, ts.URL+"/v1/workloads/svc/arrivals", "application/x-ndjson", "", nd).Body.Close()
	if resp := postJSON(t, ts.URL+"/v1/workloads/svc/train", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("train status %d", resp.StatusCode)
	}
	planURL := ts.URL + "/v1/workloads/svc/plan?variant=hp&target=0.9&horizon=600&now=" +
		strconv.FormatFloat(horizon, 'f', -1, 64)
	mustGet(t, planURL).Body.Close() // miss
	mustGet(t, planURL).Body.Close() // hit
	fcURL := ts.URL + "/v1/workloads/svc/forecast?from=14400&to=18000&step=300"
	mustGet(t, fcURL).Body.Close()
	mustGet(t, fcURL).Body.Close()
	if resp := postJSON(t, ts.URL+"/v1/admin/snapshot", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}

	m := scrape(t, ts.URL)
	wantEvents := float64(len(arr))
	for series, want := range map[string]float64{
		`robustscaler_ingest_events_total{format="json"}`:                                  float64(len(arr) / 2),
		`robustscaler_ingest_events_total{format="ndjson"}`:                                float64(len(arr) - len(arr)/2),
		`robustscaler_ingest_events_total{format="binary"}`:                                0,
		"robustscaler_engine_ingested_events_total":                                        wantEvents,
		"robustscaler_engine_ingested_batches_total":                                       2,
		"robustscaler_refits_total":                                                        1,
		"robustscaler_refit_failures_total":                                                0,
		"robustscaler_plan_cache_hits_total":                                               1,
		"robustscaler_plan_cache_misses_total":                                             1,
		"robustscaler_forecast_cache_hits_total":                                           1,
		"robustscaler_forecast_cache_misses_total":                                         1,
		"robustscaler_workloads":                                                           1,
		"robustscaler_workloads_stale":                                                     0,
		"robustscaler_snapshots_total":                                                     1,
		"robustscaler_snapshot_failures_total":                                             0,
		"robustscaler_store_commits_total":                                                 1,
		"robustscaler_store_commit_failures_total":                                         0,
		"robustscaler_store_manifest_seq":                                                  1,
		"robustscaler_store_workloads":                                                     1,
		`robustscaler_http_requests_total{route="GET /v1/workloads/{id}/plan",code="2xx"}`: 2,
	} {
		if got, ok := m[series]; !ok || got != want {
			t.Errorf("%s = %g (present %v), want %g", series, got, ok, want)
		}
	}
	// Durations and sizes are machine-dependent; assert they moved.
	if m["robustscaler_refit_seconds_count"] < 1 {
		t.Errorf("refit_seconds histogram did not observe the fit")
	}
	if m["robustscaler_snapshot_seconds_count"] < 1 {
		t.Errorf("snapshot_seconds histogram did not observe the snapshot")
	}
	if m["robustscaler_store_bytes_written_total"] <= 0 || m["robustscaler_store_files_written_total"] != 1 {
		t.Errorf("store write counters = %g bytes / %g files, want >0 / 1",
			m["robustscaler_store_bytes_written_total"], m["robustscaler_store_files_written_total"])
	}
	if m["robustscaler_snapshot_last_success_age_seconds"] < 0 {
		t.Errorf("last-success age still reports 'never' after a successful snapshot")
	}
	if m[`robustscaler_http_request_seconds_count{route="POST /v1/workloads/{id}/arrivals"}`] != 2 {
		t.Errorf("arrivals route latency histogram count = %g, want 2",
			m[`robustscaler_http_request_seconds_count{route="POST /v1/workloads/{id}/arrivals"}`])
	}
}

// TestWorkloadStatsEndpoint pins the per-workload JSON summary: its
// counters must match the traffic the workload actually served, and an
// unknown workload must 404 without being created.
func TestWorkloadStatsEndpoint(t *testing.T) {
	const horizon = 4 * 3600.0
	_, ts := newTestServer(t, horizon)
	arr := trafficArrivals(2, horizon)
	postJSON(t, ts.URL+"/v1/workloads/svc/arrivals", map[string]any{"timestamps": arr}).Body.Close()
	postJSON(t, ts.URL+"/v1/workloads/svc/train", nil).Body.Close()
	planURL := ts.URL + "/v1/workloads/svc/plan?variant=hp&target=0.9&horizon=600&now=" +
		strconv.FormatFloat(horizon, 'f', -1, 64)
	mustGet(t, planURL).Body.Close()
	mustGet(t, planURL).Body.Close()

	st := decode[map[string]any](t, mustGet(t, ts.URL+"/v1/workloads/svc/stats"))
	for field, want := range map[string]float64{
		"arrivals_recorded":       float64(len(arr)),
		"ingested_events_total":   float64(len(arr)),
		"ingested_batches_total":  1,
		"refits_total":            1,
		"refit_failures_total":    0,
		"plan_cache_hits_total":   1,
		"plan_cache_misses_total": 1,
		"staleness_generations":   0,
		"plan_cache_entries":      1,
		"config_version":          1,
	} {
		if got, ok := st[field].(float64); !ok || got != want {
			t.Errorf("stats[%s] = %v, want %g", field, st[field], want)
		}
	}
	if st["model_ready"] != true {
		t.Errorf("stats model_ready = %v, want true", st["model_ready"])
	}
	if st["refit_seconds_total"].(float64) <= 0 {
		t.Errorf("refit_seconds_total = %v, want > 0", st["refit_seconds_total"])
	}
	if st["last_refit_at"].(float64) != horizon {
		t.Errorf("last_refit_at = %v, want %g (the fake clock)", st["last_refit_at"], horizon)
	}

	resp, err := http.Get(ts.URL + "/v1/workloads/nope/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stats for unknown workload: status %d, want 404", resp.StatusCode)
	}
}

// breakDataDir replaces the data directory with a regular file, so
// every subsequent commit fails; fixDataDir undoes it.
func breakDataDir(t *testing.T, dir string) {
	t.Helper()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func fixDataDir(t *testing.T, dir string) {
	t.Helper()
	if err := os.Remove(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "workloads"), 0o755); err != nil {
		t.Fatal(err)
	}
}

// TestDeletePersistFailureIs500 is the regression test for the delete
// bugfix: when the durable persist behind DELETE fails, the response
// must be a 500 carrying the error — not a 200 with persisted:false
// buried in the body — while the in-memory delete still stands.
func TestDeletePersistFailureIs500(t *testing.T) {
	const horizon = 4 * 3600.0
	dir := t.TempDir()
	s, ts := newTestServer(t, horizon)
	if err := s.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	arr := trafficArrivals(3, horizon)
	postJSON(t, ts.URL+"/v1/workloads/doomed/arrivals", map[string]any{"timestamps": arr}).Body.Close()

	breakDataDir(t, dir)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workloads/doomed", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("delete with failing store: status %d, want 500", resp.StatusCode)
	}
	body := decode[map[string]any](t, resp)
	if body["deleted"] != true || body["persisted"] != false {
		t.Fatalf("delete body = %v, want deleted:true persisted:false", body)
	}
	if msg, _ := body["persist_error"].(string); msg == "" {
		t.Fatalf("delete body carries no persist_error: %v", body)
	}
	// The in-memory delete stood: the workload is gone.
	if _, ok := s.Registry().Get("doomed"); ok {
		t.Fatal("workload still registered after failed-persist delete")
	}
}

// TestHealthzDegradedOnSnapshotFailures pins the health bugfix: the
// endpoint reports 503 "degraded" while snapshots fail consecutively
// and returns to 200 "ok" after the next success.
func TestHealthzDegradedOnSnapshotFailures(t *testing.T) {
	const horizon = 4 * 3600.0
	dir := t.TempDir()
	s, ts := newTestServer(t, horizon)
	if err := s.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/v1/workloads/svc/arrivals",
		map[string]any{"timestamps": trafficArrivals(4, horizon)}).Body.Close()

	health := func() (int, map[string]any) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, decode[map[string]any](t, resp)
	}

	if code, body := health(); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthy healthz = %d %v, want 200 ok", code, body)
	}

	breakDataDir(t, dir)
	if resp := postJSON(t, ts.URL+"/v1/admin/snapshot", nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("snapshot into broken dir: status %d, want 500", resp.StatusCode)
	}
	code, body := health()
	if code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("degraded healthz = %d %v, want 503 degraded", code, body)
	}
	pers, _ := body["persistence"].(map[string]any)
	if pers == nil || pers["consecutive_failures"].(float64) < 1 || pers["last_error"] == "" {
		t.Fatalf("degraded healthz persistence detail = %v", pers)
	}
	if m := scrape(t, ts.URL); m["robustscaler_snapshot_consecutive_failures"] < 1 {
		t.Fatalf("consecutive-failures gauge = %g, want >= 1", m["robustscaler_snapshot_consecutive_failures"])
	}

	fixDataDir(t, dir)
	if resp := postJSON(t, ts.URL+"/v1/admin/snapshot", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot after repair: status %d, want 200", resp.StatusCode)
	}
	if code, body := health(); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("recovered healthz = %d %v, want 200 ok", code, body)
	}
}

// failWriter is a ResponseWriter whose body writes always fail — the
// shape of a client that disconnected mid-response.
type failWriter struct {
	*httptest.ResponseRecorder
}

func (f *failWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }

// TestWriteJSONCountsEncodeFailures pins the writeJSON bugfix: encode
// errors are no longer discarded — each one increments the encode-
// failure counter (and the status, already committed, stays what the
// handler chose).
func TestWriteJSONCountsEncodeFailures(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	before, _ := s.Metrics().Value("robustscaler_response_encode_failures_total")
	s.writeJSON(&failWriter{httptest.NewRecorder()}, map[string]any{"k": "v"})
	after, ok := s.Metrics().Value("robustscaler_response_encode_failures_total")
	if !ok || after != before+1 {
		t.Fatalf("encode-failure counter = %g (present %v), want %g", after, ok, before+1)
	}
	// A healthy writer must not count.
	s.writeJSON(httptest.NewRecorder(), map[string]any{"k": "v"})
	if again, _ := s.Metrics().Value("robustscaler_response_encode_failures_total"); again != after {
		t.Fatalf("healthy encode moved the failure counter: %g -> %g", after, again)
	}
}
