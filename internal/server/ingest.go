package server

// Ingest content negotiation. POST arrivals accepts three bodies:
//
//	application/json          {"timestamps": [t1, ...]} — the original
//	                          format, now decoded as a token stream
//	application/x-ndjson      one JSON number per line, streamed
//	application/octet-stream  little-endian float64s, streamed
//
// plus transparent Content-Encoding: gzip over any of them. All three
// formats decode incrementally into pooled chunks (internal/encode)
// and land in the engine through the append-only sorted fast path, so
// a million-event body is materialized exactly once — in the arrival
// history itself.
//
// Every body is capped by http.MaxBytesReader (and, for gzip, a second
// cap on the decompressed stream), mapped to 413; unknown content
// types and encodings are 415. Validation still happens before the
// workload is resolved: a malformed or oversized body never creates —
// or ingests into — anything.

import (
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sort"

	"robustscaler/internal/encode"
	"robustscaler/internal/engine"
)

// DefaultMaxIngestBytes caps one arrivals body (compressed and
// decompressed alike): 64 MiB, comfortably above a million-event JSON
// body while keeping a runaway client from exhausting memory.
const DefaultMaxIngestBytes = 64 << 20

// handleArrivals negotiates the body format and routes it to the
// matching decoder. All formats validate the full batch before
// resolving the workload, so only a well-formed ingest creates one.
func (s *Server) handleArrivals(w http.ResponseWriter, r *http.Request, id string) {
	if s.maxIngestBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxIngestBytes)
	}
	body := io.Reader(r.Body)
	switch enc := r.Header.Get("Content-Encoding"); enc {
	case "", "identity":
	case "gzip", "x-gzip":
		zr, release, err := encode.Gzip(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		defer release()
		body = zr
		if s.maxIngestBytes > 0 {
			// MaxBytesReader above only sees compressed bytes; bound the
			// inflated stream too so a gzip bomb can't sidestep the cap.
			body = encode.LimitReader(body, s.maxIngestBytes)
		}
	default:
		http.Error(w, fmt.Sprintf("unsupported Content-Encoding %q (want gzip or identity)", enc),
			http.StatusUnsupportedMediaType)
		return
	}

	ct := r.Header.Get("Content-Type")
	mt := ct
	if ct != "" {
		if parsed, _, err := mime.ParseMediaType(ct); err == nil {
			mt = parsed
		}
	}
	switch mt {
	case "application/x-ndjson", "application/ndjson":
		s.ingestStream(w, body, id, "ndjson", encode.DecodeNDJSON)
	case "application/octet-stream":
		s.ingestStream(w, body, id, "binary", encode.DecodeBinary)
	default:
		// Everything else — including no Content-Type at all, or curl's
		// default form encoding — takes the original JSON-array format,
		// exactly as it did before content negotiation existed (so an
		// unknown type stays a "bad JSON" 400, not a 415) — but decoded
		// incrementally now: DecodeJSONArray streams the body token by
		// token into pooled chunks, so -max-ingest-bytes is enforced as
		// the body arrives and the legacy format no longer buffers whole
		// bodies on the decode side.
		s.ingestStream(w, body, id, "json", encode.DecodeJSONArray)
	}
}

// ingestStream runs one of the chunked decoders and pushes the result
// through the engine's sorted fast path. Decode and validation complete
// before the workload is resolved, preserving the all-or-nothing
// contract of the JSON path; sorted streams (the overwhelmingly common
// case — producers emit in arrival order) skip the defensive copy and
// sort entirely.
func (s *Server) ingestStream(w http.ResponseWriter, body io.Reader, id, format string,
	decode func(io.Reader, encode.CheckFunc) (*encode.Batch, error)) {
	batch, err := decode(body, engine.ValidateTimestamps)
	if err != nil {
		ingestReadError(w, err)
		return
	}
	defer batch.Release()
	if batch.Count == 0 {
		http.Error(w, "timestamps required", http.StatusBadRequest)
		return
	}
	e, err := s.reg.GetOrCreate(id)
	if err != nil {
		httpError(w, err)
		return
	}
	chunks := batch.Chunks
	if !batch.Sorted {
		flat := batch.Flatten()
		sort.Float64s(flat)
		chunks = [][]float64{flat}
	}
	total, err := e.IngestSortedChunks(chunks)
	if err != nil {
		httpError(w, err)
		return
	}
	// Counted only after the engine accepted the batch, so the per-
	// format series agrees with what actually landed (and, unlike the
	// per-engine counters, survives the workload's later deletion).
	s.ingestEvents[format].Add(uint64(batch.Count))
	s.writeJSON(w, map[string]any{"recorded": batch.Count, "total": total})
}

// ingestReadError maps body-read failures: size caps → 413, invalid
// timestamps → the engine mapping (400), anything else → 400 with the
// decoder's message.
func ingestReadError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe), errors.Is(err, encode.ErrTooLarge):
		http.Error(w, "request body exceeds the ingest size limit", http.StatusRequestEntityTooLarge)
	case errors.Is(err, engine.ErrInvalid):
		httpError(w, err)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}
