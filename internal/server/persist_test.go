package server

import (
	"fmt"
	"net/http"
	"testing"
)

// TestSnapshotRestorePreservesPlans is the acceptance check for
// persistence: a server's full workload fleet is snapshotted over HTTP,
// the process is "killed" (server discarded), and a freshly booted
// server restored from the same data dir serves byte-identical plan,
// forecast and status responses — no cold-start forecasting gap.
func TestSnapshotRestorePreservesPlans(t *testing.T) {
	const horizon = 4 * 3600.0
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, horizon)
	s1.SetDataDir(dir)

	ids := []string{"registry-eu", "ci-runners"}
	for i, id := range ids {
		postJSON(t, ts1.URL+"/v1/workloads/"+id+"/arrivals",
			map[string]any{"timestamps": trafficArrivals(int64(i+1), horizon)}).Body.Close()
		resp := postJSON(t, ts1.URL+"/v1/workloads/"+id+"/train", map[string]any{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("train %s status %d", id, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Responses to pin across the restart. now= is fixed so both
	// processes plan from the same anchor.
	var paths []string
	for _, id := range ids {
		paths = append(paths,
			fmt.Sprintf("/v1/workloads/%s/plan?variant=hp&target=0.9&horizon=1800&now=%g", id, horizon),
			fmt.Sprintf("/v1/workloads/%s/forecast?from=%g&to=%g&step=300", id, horizon, horizon+3600),
			"/v1/workloads/"+id+"/status",
		)
	}
	before := make(map[string]string)
	for _, p := range paths {
		code, body := getBody(t, ts1.URL+p)
		if code != http.StatusOK {
			t.Fatalf("GET %s status %d: %s", p, code, body)
		}
		before[p] = body
	}

	// Operator-triggered snapshot, then kill the first process.
	resp := postJSON(t, ts1.URL+"/v1/admin/snapshot", map[string]any{})
	snap := decode[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK || snap["workloads"] != float64(len(ids)) {
		t.Fatalf("admin snapshot status %d body %v", resp.StatusCode, snap)
	}
	ts1.Close()

	// Boot a fresh server against the same data dir, as scalerd does.
	s2, ts2 := newTestServer(t, horizon)
	if n, err := s2.Registry().Restore(dir); err != nil || n != len(ids) {
		t.Fatalf("Restore = (%d, %v), want (%d, nil)", n, err, len(ids))
	}
	wl := decode[map[string][]string](t, mustGet(t, ts2.URL+"/v1/workloads"))
	if len(wl["workloads"]) != len(ids) {
		t.Fatalf("workloads after restore = %v", wl)
	}
	for _, p := range paths {
		code, body := getBody(t, ts2.URL+p)
		if code != http.StatusOK {
			t.Fatalf("GET %s after restore: status %d: %s", p, code, body)
		}
		if body != before[p] {
			t.Fatalf("GET %s changed across restart:\nbefore: %s\nafter:  %s", p, before[p], body)
		}
	}
}

// TestDeleteIsDurable pins the delete-vs-snapshot interaction: with
// persistence enabled, a DELETE re-snapshots immediately, so a restart
// cannot resurrect the removed workload from a stale snapshot.
func TestDeleteIsDurable(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, 0)
	s1.SetDataDir(dir)
	for _, id := range []string{"keep", "drop"} {
		postJSON(t, ts1.URL+"/v1/workloads/"+id+"/arrivals",
			map[string]any{"timestamps": []float64{1, 2, 3}}).Body.Close()
	}
	postJSON(t, ts1.URL+"/v1/admin/snapshot", map[string]any{}).Body.Close()

	req, err := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/workloads/drop", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := decode[map[string]any](t, resp)
	if body["deleted"] != true || body["persisted"] != true {
		t.Fatalf("delete response = %v, want deleted+persisted", body)
	}
	ts1.Close()

	s2, _ := newTestServer(t, 0)
	if n, err := s2.Registry().Restore(dir); err != nil || n != 1 {
		t.Fatalf("Restore = (%d, %v), want (1, nil)", n, err)
	}
	if _, ok := s2.Registry().Get("drop"); ok {
		t.Fatal("deleted workload resurrected by restore")
	}
	if _, ok := s2.Registry().Get("keep"); !ok {
		t.Fatal("surviving workload missing after restore")
	}
}

// TestAdminSnapshotWithoutDataDir pins the disabled-persistence
// contract: a clear 409, not a 500 or a silent no-op.
func TestAdminSnapshotWithoutDataDir(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp := postJSON(t, ts.URL+"/v1/admin/snapshot", map[string]any{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("snapshot without data dir: status %d, want 409", resp.StatusCode)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
