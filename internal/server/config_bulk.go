package server

// Bulk config API:
//
//	PUT /v1/admin/config
//
// applies one partial-config merge to many workloads in a single
// request. Targets are an explicit workload list, a path.Match glob
// over the registered workload IDs, or both (the union). The merge
// document is the same shape PUT /v1/workloads/{id}/config accepts and
// flows through exactly the same path per workload — configUpdate
// merge, then Engine.SetEngineConfig validation and version CAS — so a
// bulk update can not do anything a loop of single PUTs could not.
//
// The one deliberate difference: the per-workload "version" CAS token
// is rejected here (400). One version number cannot be a valid base
// for many workloads, and silently applying it to each would turn the
// concurrency guard into a lottery.
//
// The response reports per-workload results; the request itself is
// 200 whenever it was well-formed, even if individual workloads failed
// (a bulk operator needs the full scoreboard, not the first error).
// Explicitly listed workloads that do not exist are reported with code
// 404 — like every non-ingest route, config writes never create
// workloads. Glob targets only ever match existing ones.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"path"
	"sort"

	"robustscaler/internal/engine"
)

type bulkConfigRequest struct {
	Workloads []string        `json:"workloads"`
	Glob      string          `json:"glob"`
	Config    json.RawMessage `json:"config"`
}

// BulkConfigResult is one workload's outcome inside a bulk config
// response.
type BulkConfigResult struct {
	OK bool `json:"ok"`
	// Version is the workload's config version after a successful
	// update (CAS token for follow-up single-workload edits).
	Version int64 `json:"version,omitempty"`
	// Code is the HTTP status this failure would have had on the
	// single-workload route (400 invalid, 404 unknown, 409 conflict).
	Code  int    `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
}

// BulkConfigResponse is the PUT /v1/admin/config response body. The
// fleet router merges one of these per node into a single fleet-wide
// scoreboard of the same shape.
type BulkConfigResponse struct {
	Matched int                         `json:"matched"`
	Updated int                         `json:"updated"`
	Results map[string]BulkConfigResult `json:"results"`
}

func (s *Server) handleBulkConfig(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxConfigBytes))
	dec.DisallowUnknownFields()
	var req bulkConfigRequest
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad bulk config JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Workloads) == 0 && req.Glob == "" {
		http.Error(w, "bulk config needs a target: \"workloads\" list, \"glob\", or both", http.StatusBadRequest)
		return
	}
	if req.Glob != "" {
		if _, err := path.Match(req.Glob, "probe"); err != nil {
			http.Error(w, "bad glob "+req.Glob+": "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if len(req.Config) == 0 {
		http.Error(w, "bulk config needs a \"config\" merge document", http.StatusBadRequest)
		return
	}
	var u configUpdate
	cdec := json.NewDecoder(bytes.NewReader(req.Config))
	cdec.DisallowUnknownFields()
	if err := cdec.Decode(&u); err != nil {
		http.Error(w, "bad config JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if u.Version != nil {
		http.Error(w, "\"version\" is a per-workload CAS token and not valid in a bulk update; use PUT /v1/workloads/{id}/config",
			http.StatusBadRequest)
		return
	}

	// Resolve targets. A workload named both explicitly and by the
	// glob is updated once.
	targets := make(map[string]bool) // id -> explicitly listed
	for _, id := range req.Workloads {
		targets[id] = true
	}
	if req.Glob != "" {
		for _, id := range s.reg.Workloads() {
			if ok, _ := path.Match(req.Glob, id); ok {
				if !targets[id] {
					targets[id] = false
				}
			}
		}
	}

	resp := BulkConfigResponse{Results: make(map[string]BulkConfigResult, len(targets))}
	ids := make([]string, 0, len(targets))
	for id := range targets {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic apply order, for logs and tests
	for _, id := range ids {
		e, ok := s.reg.Get(id)
		if !ok {
			resp.Results[id] = BulkConfigResult{Code: http.StatusNotFound, Error: "unknown workload"}
			continue
		}
		resp.Matched++
		applied, err := e.SetEngineConfig(u.merge(e.EngineConfig()))
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, engine.ErrConflict) {
				// A concurrent single-workload update raced our merge;
				// same surface as the single route — retry.
				code = http.StatusConflict
			}
			resp.Results[id] = BulkConfigResult{Code: code, Error: err.Error()}
			continue
		}
		resp.Updated++
		resp.Results[id] = BulkConfigResult{OK: true, Version: applied.Version}
	}
	s.writeJSON(w, resp)
}
