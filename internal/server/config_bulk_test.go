package server

import (
	"net/http"
	"testing"
)

// seedWorkloads ingests one batch into each id so the workloads exist.
func seedWorkloads(t *testing.T, base string, ids ...string) {
	t.Helper()
	for _, id := range ids {
		resp := postJSON(t, base+"/v1/workloads/"+id+"/arrivals", map[string]any{"timestamps": []float64{1, 2, 3}})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed ingest %s: %d", id, resp.StatusCode)
		}
	}
}

func TestBulkConfigExplicitList(t *testing.T) {
	_, ts := newTestServer(t, 0)
	seedWorkloads(t, ts.URL, "api-eu", "api-us", "batch-1")

	resp := putJSON(t, ts.URL+"/v1/admin/config",
		`{"workloads": ["api-eu", "api-us", "ghost"], "config": {"pending": 25, "hp_target": 0.8}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk config: %d", resp.StatusCode)
	}
	got := decode[BulkConfigResponse](t, resp)
	if got.Matched != 2 || got.Updated != 2 {
		t.Fatalf("matched/updated = %d/%d, want 2/2 (%+v)", got.Matched, got.Updated, got)
	}
	for _, id := range []string{"api-eu", "api-us"} {
		r := got.Results[id]
		if !r.OK || r.Version != 2 {
			t.Fatalf("result[%s] = %+v, want ok at version 2", id, r)
		}
	}
	if r := got.Results["ghost"]; r.OK || r.Code != http.StatusNotFound {
		t.Fatalf("result[ghost] = %+v, want 404 entry", r)
	}
	// Untargeted workload untouched; targeted ones actually changed.
	cfg := decode[map[string]any](t, mustGet(t, ts.URL+"/v1/workloads/batch-1/config"))
	if cfg["version"] != float64(1) {
		t.Fatalf("batch-1 config touched: %v", cfg)
	}
	cfg = decode[map[string]any](t, mustGet(t, ts.URL+"/v1/workloads/api-eu/config"))
	if cfg["pending"] != float64(25) || cfg["hp_target"] != 0.8 || cfg["version"] != float64(2) {
		t.Fatalf("api-eu config = %v", cfg)
	}
}

func TestBulkConfigGlob(t *testing.T) {
	_, ts := newTestServer(t, 0)
	seedWorkloads(t, ts.URL, "api-eu", "api-us", "batch-1")

	resp := putJSON(t, ts.URL+"/v1/admin/config",
		`{"glob": "api-*", "config": {"mc_samples": 300}}`)
	got := decode[BulkConfigResponse](t, resp)
	if resp.StatusCode != http.StatusOK || got.Matched != 2 || got.Updated != 2 {
		t.Fatalf("glob bulk: %d %+v", resp.StatusCode, got)
	}
	if _, ok := got.Results["batch-1"]; ok {
		t.Fatal("glob api-* matched batch-1")
	}

	// Union of glob and explicit list, deduplicated.
	resp = putJSON(t, ts.URL+"/v1/admin/config",
		`{"glob": "api-*", "workloads": ["api-eu", "batch-1"], "config": {"pending": 9}}`)
	got = decode[BulkConfigResponse](t, resp)
	if got.Matched != 3 || got.Updated != 3 || len(got.Results) != 3 {
		t.Fatalf("union bulk: %+v", got)
	}
	if got.Results["api-eu"].Version != 3 {
		t.Fatalf("api-eu updated twice in one request: %+v", got.Results["api-eu"])
	}
}

// Per-workload validation rides the same path as the single PUT: an
// invalid merge result fails that workload (code 400) and leaves its
// config untouched, while valid targets in the same request succeed.
func TestBulkConfigPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, 0)
	seedWorkloads(t, ts.URL, "a", "b")
	// dt must be positive: "a" keeps version 1, "b" still updates...
	resp := putJSON(t, ts.URL+"/v1/admin/config",
		`{"workloads": ["a"], "config": {"dt": -5}}`)
	got := decode[BulkConfigResponse](t, resp)
	if resp.StatusCode != http.StatusOK || got.Updated != 0 || got.Matched != 1 {
		t.Fatalf("invalid bulk: %d %+v", resp.StatusCode, got)
	}
	if r := got.Results["a"]; r.OK || r.Code != http.StatusBadRequest || r.Error == "" {
		t.Fatalf("result[a] = %+v, want 400 with detail", r)
	}
	cfg := decode[map[string]any](t, mustGet(t, ts.URL+"/v1/workloads/a/config"))
	if cfg["version"] != float64(1) || cfg["dt"] != float64(60) {
		t.Fatalf("failed bulk update mutated config: %v", cfg)
	}
}

func TestBulkConfigRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, 0)
	seedWorkloads(t, ts.URL, "a")
	for name, body := range map[string]string{
		"no target":       `{"config": {"pending": 5}}`,
		"no config":       `{"workloads": ["a"]}`,
		"bad glob":        `{"glob": "[", "config": {"pending": 5}}`,
		"unknown field":   `{"workloads": ["a"], "config": {"pendingg": 5}}`,
		"version in bulk": `{"workloads": ["a"], "config": {"version": 1, "pending": 5}}`,
		"garbage":         `{`,
	} {
		resp := putJSON(t, ts.URL+"/v1/admin/config", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", name, resp.StatusCode)
		}
	}
	// Nothing got applied by any of the rejects.
	cfg := decode[map[string]any](t, mustGet(t, ts.URL+"/v1/workloads/a/config"))
	if cfg["version"] != float64(1) {
		t.Fatalf("rejected bulk updates mutated config: %v", cfg)
	}
}
