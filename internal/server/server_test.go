package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"robustscaler/internal/nhpp"
)

// newTestServer builds a server with a fake clock at fakeNow.
func newTestServer(t *testing.T, fakeNow float64) (*Server, *httptest.Server) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MCSamples = 200
	cfg.Now = func() float64 { return fakeNow }
	cfg.Train.DetectPeriodicity = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// trafficArrivals draws a periodic NHPP for ingestion.
func trafficArrivals(seed int64, horizon float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	in := nhpp.Func{F: func(t float64) float64 {
		return 0.3 + 0.25*math.Sin(2*math.Pi*t/3600)
	}, Step: 10, MaxHorizon: horizon * 2}
	return nhpp.Simulate(rng, in, 0, horizon)
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestIngestTrainPlanFlow(t *testing.T) {
	const horizon = 6 * 3600.0
	_, ts := newTestServer(t, horizon)
	arr := trafficArrivals(1, horizon)

	// Ingest in two batches.
	half := len(arr) / 2
	resp := postJSON(t, ts.URL+"/v1/workloads/w/arrivals", map[string]any{"timestamps": arr[:half]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arrivals status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/workloads/w/arrivals", map[string]any{"timestamps": arr[half:]})
	got := decode[map[string]any](t, resp)
	if int(got["total"].(float64)) != len(arr) {
		t.Fatalf("total = %v, want %d", got["total"], len(arr))
	}

	// Train.
	resp = postJSON(t, ts.URL+"/v1/workloads/w/train", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("train status %d", resp.StatusCode)
	}
	tr := decode[trainResponse](t, resp)
	if !tr.Converged {
		t.Fatal("training did not converge")
	}
	if math.Abs(tr.PeriodSeconds-3600) > 600 {
		t.Fatalf("period %g, want ≈3600", tr.PeriodSeconds)
	}

	// Plan: creation times must be within the horizon, non-decreasing,
	// and the first κ entries should be immediate (lead 0).
	resp2, err := http.Get(fmt.Sprintf("%s/v1/workloads/w/plan?variant=hp&target=0.9&horizon=120&now=%g", ts.URL, horizon))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d", resp2.StatusCode)
	}
	plan := decode[planResponse](t, resp2)
	if len(plan.Plan) == 0 {
		t.Fatal("empty plan")
	}
	prev := -1.0
	for _, e := range plan.Plan {
		if e.CreateAt < horizon || e.CreateAt > horizon+120 {
			t.Fatalf("creation %g outside [now, now+120]", e.CreateAt)
		}
		if e.CreateAt < prev {
			t.Fatal("plan not sorted")
		}
		prev = e.CreateAt
	}
	if plan.Kappa < 1 {
		t.Fatalf("κ = %d, expected ≥ 1 at this rate", plan.Kappa)
	}
	if plan.Plan[0].LeadSecs != 0 {
		t.Fatalf("first planned creation should be immediate, lead %g", plan.Plan[0].LeadSecs)
	}
}

func TestPlanVariants(t *testing.T) {
	const horizon = 4 * 3600.0
	_, ts := newTestServer(t, horizon)
	arr := trafficArrivals(2, horizon)
	postJSON(t, ts.URL+"/v1/workloads/w/arrivals", map[string]any{"timestamps": arr}).Body.Close()
	postJSON(t, ts.URL+"/v1/workloads/w/train", map[string]any{}).Body.Close()

	for _, variant := range []string{"rt", "cost"} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/workloads/w/plan?variant=%s&target=2&horizon=60&now=%g", ts.URL, variant, horizon))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s plan status %d", variant, resp.StatusCode)
		}
		plan := decode[planResponse](t, resp)
		if plan.Variant != variant {
			t.Fatalf("variant echo %q", plan.Variant)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/workloads/w/plan?variant=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus variant status %d", resp.StatusCode)
	}
}

func TestForecastEndpoint(t *testing.T) {
	const horizon = 4 * 3600.0
	_, ts := newTestServer(t, horizon)
	arr := trafficArrivals(3, horizon)
	postJSON(t, ts.URL+"/v1/workloads/w/arrivals", map[string]any{"timestamps": arr}).Body.Close()
	postJSON(t, ts.URL+"/v1/workloads/w/train", map[string]any{}).Body.Close()

	resp, err := http.Get(fmt.Sprintf("%s/v1/workloads/w/forecast?from=%g&to=%g&step=300", ts.URL, horizon, horizon+3600))
	if err != nil {
		t.Fatal(err)
	}
	pts := decode[[]forecastPoint](t, resp)
	if len(pts) != 12 {
		t.Fatalf("forecast points %d, want 12", len(pts))
	}
	for _, p := range pts {
		if p.QPS < 0 || p.QPS > 10 {
			t.Fatalf("implausible forecast %g qps", p.QPS)
		}
	}
}

func TestPlanWithoutModelConflicts(t *testing.T) {
	_, ts := newTestServer(t, 0)
	// The workload must exist (reads on unknown IDs are 404s); only a
	// model is missing.
	postJSON(t, ts.URL+"/v1/workloads/w/arrivals", map[string]any{"timestamps": []float64{1, 2}}).Body.Close()
	resp, err := http.Get(ts.URL + "/v1/workloads/w/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("plan without model: status %d, want 409", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/v1/workloads/w/forecast")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("forecast without model: status %d, want 409", resp2.StatusCode)
	}
}

func TestTrainNeedsArrivals(t *testing.T) {
	_, ts := newTestServer(t, 0)
	// One arrival registers the workload but is below the two the fitter
	// needs.
	postJSON(t, ts.URL+"/v1/workloads/w/arrivals", map[string]any{"timestamps": []float64{5}}).Body.Close()
	resp := postJSON(t, ts.URL+"/v1/workloads/w/train", map[string]any{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("train without data: status %d, want 409", resp.StatusCode)
	}
}

func TestArrivalsValidation(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp := postJSON(t, ts.URL+"/v1/workloads/w/arrivals", map[string]any{"timestamps": []float64{}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty timestamps: status %d, want 400", resp.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/v1/workloads/w/arrivals", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", r2.StatusCode)
	}
	r3, err := http.Get(ts.URL + "/v1/workloads/w/arrivals")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET arrivals: status %d, want 405", r3.StatusCode)
	}
}

func TestStatusReflectsState(t *testing.T) {
	const horizon = 4 * 3600.0
	_, ts := newTestServer(t, horizon)
	st, err := http.Get(ts.URL + "/v1/workloads/w/status")
	if err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if st.StatusCode != http.StatusNotFound {
		t.Fatalf("status before any ingest: %d, want 404 (workload doesn't exist)", st.StatusCode)
	}
	arr := trafficArrivals(4, horizon)
	postJSON(t, ts.URL+"/v1/workloads/w/arrivals", map[string]any{"timestamps": arr}).Body.Close()
	postJSON(t, ts.URL+"/v1/workloads/w/train", map[string]any{}).Body.Close()
	st2, err := http.Get(ts.URL + "/v1/workloads/w/status")
	if err != nil {
		t.Fatal(err)
	}
	after := decode[statusResponse](t, st2)
	if !after.ModelReady || after.Arrivals != len(arr) || after.TrainedOn != len(arr) {
		t.Fatalf("status after train wrong: %+v", after)
	}
	if after.RateNow <= 0 {
		t.Fatalf("rate now %g", after.RateNow)
	}
}

func TestHistoryWindowTrimming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HistoryWindow = 100
	cfg.Now = func() float64 { return 0 }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	postJSON(t, ts.URL+"/v1/workloads/w/arrivals", map[string]any{"timestamps": []float64{0, 10, 500, 560, 590}}).Body.Close()
	st, err := http.Get(ts.URL + "/v1/workloads/w/status")
	if err != nil {
		t.Fatal(err)
	}
	got := decode[statusResponse](t, st)
	if got.Arrivals != 3 {
		t.Fatalf("history trimmed to %d arrivals, want 3 (window 100 ending at 590)", got.Arrivals)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dt = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero Dt accepted")
	}
	cfg = DefaultConfig()
	cfg.Pending = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative pending accepted")
	}
}
