package server

// Observability for the HTTP layer: per-route request counters (by
// status class) and latency histograms, the /metrics exposition
// endpoint, and the per-workload /stats summary. Instruments are
// resolved once, when the mux is built — a request updates them with
// atomic operations only, never a registry lookup.

import (
	"net/http"
	"time"

	"robustscaler/internal/engine"
	"robustscaler/internal/metrics"
)

// routeMetrics are one route's pre-resolved instruments. The three
// eager status classes are the ones this API can produce in volume;
// anything else falls back to a registry lookup on the (cold) error
// path.
type routeMetrics struct {
	seconds *metrics.Histogram
	c2xx    *metrics.Counter
	c4xx    *metrics.Counter
	c5xx    *metrics.Counter
}

const (
	reqTotalName   = "robustscaler_http_requests_total"
	reqTotalHelp   = "HTTP requests served, by route pattern and status class."
	reqSecondsName = "robustscaler_http_request_seconds"
	reqSecondsHelp = "HTTP request latency, by route pattern."
)

// instrument wraps a handler with request counting and latency
// observation under the given route label (the mux pattern, so
// {id} cardinality never reaches the metric space).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	label := metrics.Label{Name: "route", Value: route}
	rm := &routeMetrics{
		seconds: s.metrics.Histogram(reqSecondsName, reqSecondsHelp, metrics.DefBuckets, label),
		c2xx:    s.metrics.Counter(reqTotalName, reqTotalHelp, label, metrics.Label{Name: "code", Value: "2xx"}),
		c4xx:    s.metrics.Counter(reqTotalName, reqTotalHelp, label, metrics.Label{Name: "code", Value: "4xx"}),
		c5xx:    s.metrics.Counter(reqTotalName, reqTotalHelp, label, metrics.Label{Name: "code", Value: "5xx"}),
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		rm.seconds.Observe(time.Since(start).Seconds())
		switch sw.code / 100 {
		case 2:
			rm.c2xx.Inc()
		case 4:
			rm.c4xx.Inc()
		case 5:
			rm.c5xx.Inc()
		default:
			s.metrics.Counter(reqTotalName, reqTotalHelp, label,
				metrics.Label{Name: "code", Value: statusClass(sw.code)}).Inc()
		}
	}
}

func statusClass(code int) string {
	switch code / 100 {
	case 1:
		return "1xx"
	case 3:
		return "3xx"
	default:
		return "other"
	}
}

// statusWriter remembers the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Metrics exposes the server's metrics registry, e.g. for cmd/scalerd
// to add process-level series or for cmd/bench to cross-check counters
// against its own tallies.
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// handleMetrics serves the whole fleet's metrics in the Prometheus
// text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WritePrometheus(w); err != nil {
		s.encodeFailures.Inc()
	}
}

// handleStats serves one workload's JSON observability summary.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request, e *engine.Engine) {
	s.writeJSON(w, e.Stats())
}
