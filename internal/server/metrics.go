package server

// Observability for the HTTP layer: the shared per-route
// instrumentation lives in internal/httpmetrics (the fleet router uses
// the same middleware over its own registry); this file wires it to
// the server plus the /metrics exposition endpoint and the
// per-workload /stats summary.

import (
	"net/http"

	"robustscaler/internal/engine"
	"robustscaler/internal/httpmetrics"
	"robustscaler/internal/metrics"
	"robustscaler/internal/pipeline"
)

// instrument wraps a handler with request counting and latency
// observation under the given route label (the mux pattern, so
// {id} cardinality never reaches the metric space).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return httpmetrics.Wrap(s.metrics, route, h)
}

// Metrics exposes the server's metrics registry, e.g. for cmd/scalerd
// to add process-level series or for cmd/bench to cross-check counters
// against its own tallies.
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// handleMetrics serves the node's metrics in the Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WritePrometheus(w); err != nil {
		s.encodeFailures.Inc()
	}
}

// statsResponse is the engine's observability summary plus the
// autoscaler pipeline's view of the workload — last decision, clamp
// reason, remaining cooldown, and live replica state.
type statsResponse struct {
	engine.Stats
	Autoscale *pipeline.Status `json:"autoscale,omitempty"`
}

// handleStats serves one workload's JSON observability summary.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, e *engine.Engine) {
	st := s.pipelines.For(r.PathValue("id"), e).Status()
	s.writeJSON(w, statsResponse{Stats: e.Stats(), Autoscale: &st})
}
