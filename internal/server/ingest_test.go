package server

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"testing"
)

func postBody(t *testing.T, url, contentType, contentEncoding string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if contentEncoding != "" {
		req.Header.Set("Content-Encoding", contentEncoding)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func ndjsonBody(vals []float64) []byte {
	var buf bytes.Buffer
	for _, v := range vals {
		buf.WriteString(strconv.FormatFloat(v, 'f', -1, 64))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func binaryBody(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func gzipBody(t *testing.T, body []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(body); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIngestFormatsEquivalent proves every wire format lands the same
// state: same totals, and byte-identical plans afterwards.
func TestIngestFormatsEquivalent(t *testing.T) {
	const horizon = 4 * 3600.0
	_, ts := newTestServer(t, horizon)
	arr := trafficArrivals(6, horizon)

	cases := []struct {
		id, contentType, contentEncoding string
		body                             []byte
	}{
		{"json", "application/json", "", mustJSON(arr)},
		{"json-gz", "application/json", "gzip", gzipBody(t, mustJSON(arr))},
		{"ndjson", "application/x-ndjson", "", ndjsonBody(arr)},
		{"ndjson-params", "application/x-ndjson; charset=utf-8", "", ndjsonBody(arr)},
		{"ndjson-gz", "application/x-ndjson", "gzip", gzipBody(t, ndjsonBody(arr))},
		{"binary", "application/octet-stream", "", binaryBody(arr)},
		{"binary-gz", "application/octet-stream", "gzip", gzipBody(t, binaryBody(arr))},
	}
	for _, tc := range cases {
		resp := postBody(t, ts.URL+"/v1/workloads/"+tc.id+"/arrivals", tc.contentType, tc.contentEncoding, tc.body)
		got := decode[map[string]any](t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d (%v)", tc.id, resp.StatusCode, got)
		}
		if int(got["recorded"].(float64)) != len(arr) || int(got["total"].(float64)) != len(arr) {
			t.Fatalf("%s: recorded/total = %v, want %d", tc.id, got, len(arr))
		}
	}
	// Same arrivals → same fit → byte-identical plans across formats.
	var want string
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/workloads/"+tc.id+"/train", map[string]any{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s train: status %d", tc.id, resp.StatusCode)
		}
		resp.Body.Close()
		_, plan := getBody(t, fmt.Sprintf("%s/v1/workloads/%s/plan?variant=hp&target=0.9&horizon=600&now=%g", ts.URL, tc.id, horizon))
		if want == "" {
			want = plan
		} else if plan != want {
			t.Fatalf("%s: plan differs from the JSON baseline:\n%s\n%s", tc.id, plan, want)
		}
	}
}

// TestIngestUnsortedStreamStillLands: streaming bodies without
// monotonic order fall back to sort-then-append and still record.
func TestIngestUnsortedStreamStillLands(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp := postBody(t, ts.URL+"/v1/workloads/w/arrivals", "application/x-ndjson", "",
		[]byte("30\n10\n20\n"))
	got := decode[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK || int(got["total"].(float64)) != 3 {
		t.Fatalf("unsorted ndjson: status %d, body %v", resp.StatusCode, got)
	}
	// Follow-up in-order batch appends after the sorted history.
	resp2 := postBody(t, ts.URL+"/v1/workloads/w/arrivals", "application/x-ndjson", "", []byte("25\n40\n"))
	got2 := decode[map[string]any](t, resp2)
	if int(got2["total"].(float64)) != 5 {
		t.Fatalf("merge after unsorted ingest: %v", got2)
	}
}

// TestIngestStreamValidation: bad bodies are 400s and never create the
// workload, exactly like the JSON path.
func TestIngestStreamValidation(t *testing.T) {
	_, ts := newTestServer(t, 0)
	cases := []struct {
		name, contentType string
		body              []byte
	}{
		{"ndjson-garbage", "application/x-ndjson", []byte("1\nnope\n")},
		{"ndjson-nan", "application/x-ndjson", []byte("1\nNaN\n")},
		{"ndjson-huge", "application/x-ndjson", []byte("1\n2e15\n")},
		{"ndjson-empty", "application/x-ndjson", nil},
		{"binary-truncated", "application/octet-stream", binaryBody([]float64{1, 2})[:9]},
		{"binary-nan", "application/octet-stream", binaryBody([]float64{1, math.NaN()})},
		{"binary-empty", "application/octet-stream", nil},
	}
	for _, tc := range cases {
		resp := postBody(t, ts.URL+"/v1/workloads/stream-bad/arrivals", tc.contentType, "", tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// Unknown content types fall back to the JSON path (pre-negotiation
	// clients never set the header): a non-JSON body is a 400, and a
	// JSON body ingests fine even under a bogus type.
	r := postBody(t, ts.URL+"/v1/workloads/stream-bad/arrivals", "text/csv", "", []byte("1,2"))
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("text/csv: status %d, want 400", r.StatusCode)
	}
	r = postBody(t, ts.URL+"/v1/workloads/stream-bad/arrivals", "application/json", "br", []byte("{}"))
	r.Body.Close()
	if r.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("brotli encoding: status %d, want 415", r.StatusCode)
	}
	// Garbage gzip framing: 400.
	r = postBody(t, ts.URL+"/v1/workloads/stream-bad/arrivals", "application/x-ndjson", "gzip", []byte("not gzip"))
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad gzip: status %d, want 400", r.StatusCode)
	}
	// None of the failures registered the workload.
	if _, body := getBody(t, ts.URL+"/v1/workloads"); body != "{\"workloads\":[]}\n" {
		t.Fatalf("invalid streaming writes created workloads: %q", body)
	}
	// A JSON body under an unrecognized content type still ingests —
	// pre-negotiation clients (curl's default form encoding) never set
	// the header.
	r = postBody(t, ts.URL+"/v1/workloads/form-json/arrivals", "application/x-www-form-urlencoded", "",
		[]byte(`{"timestamps":[1,2]}`))
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("JSON body under form content type: status %d, want 200 (legacy clients)", r.StatusCode)
	}
}

// TestIngestSizeLimit: bodies over -max-ingest-bytes are 413, for raw,
// JSON and gzip-inflated payloads alike.
func TestIngestSizeLimit(t *testing.T) {
	s, ts := newTestServer(t, 0)
	s.SetMaxIngestBytes(1 << 10)

	big := make([]float64, 1000) // 8 KB binary, ~4 KB ndjson
	for i := range big {
		big[i] = float64(i)
	}
	cases := []struct {
		name, contentType, contentEncoding string
		body                               []byte
	}{
		{"binary", "application/octet-stream", "", binaryBody(big)},
		{"ndjson", "application/x-ndjson", "", ndjsonBody(big)},
		{"json", "application/json", "", mustJSON(big)},
		// ~40 bytes compressed, 8 KB inflated: only the decompressed cap
		// can catch it.
		{"gzip-bomb", "application/octet-stream", "gzip", gzipBody(t, binaryBody(big))},
	}
	for _, tc := range cases {
		resp := postBody(t, ts.URL+"/v1/workloads/big/arrivals", tc.contentType, tc.contentEncoding, tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413", tc.name, resp.StatusCode)
		}
	}
	// Within the limit still works.
	resp := postBody(t, ts.URL+"/v1/workloads/big/arrivals", "application/octet-stream", "", binaryBody(big[:100]))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("under-limit body: status %d", resp.StatusCode)
	}
	// SetMaxIngestBytes(0) lifts the cap.
	s.SetMaxIngestBytes(0)
	resp = postBody(t, ts.URL+"/v1/workloads/big/arrivals", "application/octet-stream", "", binaryBody(big))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("uncapped body: status %d", resp.StatusCode)
	}
}

func mustJSON(vals []float64) []byte {
	var buf bytes.Buffer
	buf.WriteString(`{"timestamps":[`)
	for i, v := range vals {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	buf.WriteString(`]}`)
	return buf.Bytes()
}
