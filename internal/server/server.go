// Package server exposes RobustScaler as an HTTP control plane, the shape
// an operator integrates with a cluster autoscaler (e.g. as a Kubernetes
// sidecar): arrival events stream in, the NHPP model is (re)trained on
// demand or on a timer, and scaling plans — the next instance creation
// times — are served as JSON.
package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"robustscaler"
	"robustscaler/internal/decision"
	"robustscaler/internal/stats"
	"robustscaler/internal/timeseries"
)

// Config parameterizes the control plane.
type Config struct {
	// Dt is the modeling bin width in seconds.
	Dt float64
	// Pending is the instance startup time τ in seconds.
	Pending float64
	// Train configures model fitting.
	Train robustscaler.TrainConfig
	// HistoryWindow bounds the retained arrival history in seconds;
	// 0 keeps everything.
	HistoryWindow float64
	// MCSamples for the rt/cost plan variants.
	MCSamples int
	// Seed drives Monte Carlo draws.
	Seed int64
	// Now supplies the current time as a Unix-epoch-like second count;
	// defaults to time.Now. Tests inject a fake clock.
	Now func() float64
}

// DefaultConfig returns a production-shaped configuration.
func DefaultConfig() Config {
	return Config{
		Dt:            60,
		Pending:       13,
		Train:         robustscaler.DefaultTrainConfig(),
		HistoryWindow: 28 * 86400,
		MCSamples:     1000,
	}
}

// Server is the HTTP control plane. It is safe for concurrent use.
type Server struct {
	cfg Config

	mu       sync.Mutex
	arrivals []float64 // sorted
	model    *robustscaler.Model
	trainedN int // arrivals included in the current model
	rng      *rand.Rand
}

// New creates a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("server: non-positive Dt %g", cfg.Dt)
	}
	if cfg.Pending < 0 {
		return nil, fmt.Errorf("server: negative pending time %g", cfg.Pending)
	}
	if cfg.MCSamples <= 0 {
		cfg.MCSamples = 1000
	}
	if cfg.Now == nil {
		cfg.Now = func() float64 { return float64(time.Now().UnixNano()) / 1e9 }
	}
	return &Server{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/arrivals", s.handleArrivals)
	mux.HandleFunc("/v1/train", s.handleTrain)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/forecast", s.handleForecast)
	mux.HandleFunc("/v1/status", s.handleStatus)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// arrivalsRequest is the POST /v1/arrivals body.
type arrivalsRequest struct {
	Timestamps []float64 `json:"timestamps"`
}

func (s *Server) handleArrivals(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req arrivalsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad JSON: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Timestamps) == 0 {
		http.Error(w, "timestamps required", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.arrivals = append(s.arrivals, req.Timestamps...)
	sort.Float64s(s.arrivals)
	if s.cfg.HistoryWindow > 0 && len(s.arrivals) > 0 {
		cut := s.arrivals[len(s.arrivals)-1] - s.cfg.HistoryWindow
		i := sort.SearchFloat64s(s.arrivals, cut)
		s.arrivals = s.arrivals[i:]
	}
	n := len(s.arrivals)
	s.mu.Unlock()
	writeJSON(w, map[string]any{"recorded": len(req.Timestamps), "total": n})
}

// trainResponse is the POST /v1/train reply.
type trainResponse struct {
	Bins          int     `json:"bins"`
	PeriodSeconds float64 `json:"period_seconds"`
	Iterations    int     `json:"admm_iterations"`
	Converged     bool    `json:"converged"`
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	arr := append([]float64(nil), s.arrivals...)
	s.mu.Unlock()
	if len(arr) < 2 {
		http.Error(w, "need at least 2 recorded arrivals", http.StatusConflict)
		return
	}
	series := buildSeries(arr, s.cfg.Dt)
	model, err := robustscaler.Train(series, s.cfg.Train)
	if err != nil {
		http.Error(w, fmt.Sprintf("training failed: %v", err), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	s.model = model
	s.trainedN = len(arr)
	s.mu.Unlock()
	writeJSON(w, trainResponse{
		Bins:          series.Len(),
		PeriodSeconds: model.PeriodSeconds,
		Iterations:    model.FitStats.Iterations,
		Converged:     model.FitStats.Converged,
	})
}

// buildSeries bins arrivals with the configured Δt, aligned to the first
// arrival.
func buildSeries(arr []float64, dt float64) *timeseries.Series {
	start := arr[0]
	end := arr[len(arr)-1] + dt
	return timeseries.FromArrivals(arr, start, end, dt)
}

// PlanEntry is one planned instance creation.
type PlanEntry struct {
	QueryIndex int     `json:"query_index"`
	CreateAt   float64 `json:"create_at"`
	LeadSecs   float64 `json:"lead_seconds"`
}

// planResponse is the GET /v1/plan reply.
type planResponse struct {
	Now     float64     `json:"now"`
	Variant string      `json:"variant"`
	Target  float64     `json:"target"`
	Kappa   int         `json:"kappa"`
	Plan    []PlanEntry `json:"plan"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	model := s.model
	s.mu.Unlock()
	if model == nil {
		http.Error(w, "no trained model; POST /v1/train first", http.StatusConflict)
		return
	}
	q := r.URL.Query()
	variant := q.Get("variant")
	if variant == "" {
		variant = "hp"
	}
	target, err := floatParam(q.Get("target"), 0.9)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	horizon, err := floatParam(q.Get("horizon"), 600)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now, err := floatParam(q.Get("now"), s.cfg.Now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	maxEntries := 10000

	tau := s.cfg.Pending
	alpha := 0.1
	if variant == "hp" {
		if target <= 0 || target >= 1 {
			http.Error(w, "hp target must be in (0,1)", http.StatusBadRequest)
			return
		}
		alpha = 1 - target
	}
	kappa := decision.Kappa(model.Rate(now), stats.Deterministic{Value: tau}, alpha, nil, 0)
	h := decision.NewHorizon(model.NHPP, now, s.cfg.Dt/4, 0)

	s.mu.Lock()
	rng := s.rng
	s.mu.Unlock()

	resp := planResponse{Now: now, Variant: variant, Target: target, Kappa: kappa}
	tauS := make([]float64, s.cfg.MCSamples)
	for i := range tauS {
		tauS[i] = tau
	}
	for i := 1; len(resp.Plan) < maxEntries; i++ {
		var x float64
		switch variant {
		case "hp":
			qv, ok := h.QuantileArrival(i, alpha)
			if !ok {
				i = maxEntries // no more mass
				break
			}
			x = qv - tau
		case "rt", "cost":
			xi := make([]float64, s.cfg.MCSamples)
			ok := true
			for k := range xi {
				u, o := h.SampleArrival(rng, i)
				if !o {
					ok = false
					break
				}
				xi[k] = u - now
			}
			if !ok {
				i = maxEntries
				break
			}
			if variant == "rt" {
				x = now + decision.SolveRT(xi, tauS, target)
			} else {
				x = now + decision.SolveCost(xi, tauS, target)
			}
		default:
			http.Error(w, fmt.Sprintf("unknown variant %q", variant), http.StatusBadRequest)
			return
		}
		if x < now {
			x = now
		}
		if x > now+horizon {
			break
		}
		resp.Plan = append(resp.Plan, PlanEntry{QueryIndex: i, CreateAt: x, LeadSecs: x - now})
	}
	writeJSON(w, resp)
}

// forecastPoint is one sample of the predicted intensity.
type forecastPoint struct {
	T   float64 `json:"t"`
	QPS float64 `json:"qps"`
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	model := s.model
	s.mu.Unlock()
	if model == nil {
		http.Error(w, "no trained model; POST /v1/train first", http.StatusConflict)
		return
	}
	q := r.URL.Query()
	from, err := floatParam(q.Get("from"), s.cfg.Now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	to, err := floatParam(q.Get("to"), from+3600)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	step, err := floatParam(q.Get("step"), s.cfg.Dt)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if step <= 0 || to <= from || (to-from)/step > 100000 {
		http.Error(w, "invalid range/step", http.StatusBadRequest)
		return
	}
	var pts []forecastPoint
	for t := from; t < to; t += step {
		pts = append(pts, forecastPoint{T: t, QPS: model.Rate(t)})
	}
	writeJSON(w, pts)
}

// statusResponse is the GET /v1/status reply.
type statusResponse struct {
	Arrivals      int     `json:"arrivals_recorded"`
	TrainedOn     int     `json:"arrivals_in_model"`
	ModelReady    bool    `json:"model_ready"`
	PeriodSeconds float64 `json:"period_seconds"`
	RateNow       float64 `json:"rate_now_qps"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	resp := statusResponse{
		Arrivals:   len(s.arrivals),
		TrainedOn:  s.trainedN,
		ModelReady: s.model != nil,
	}
	if s.model != nil {
		resp.PeriodSeconds = s.model.PeriodSeconds
		resp.RateNow = s.model.Rate(s.cfg.Now())
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func floatParam(raw string, def float64) (float64, error) {
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad numeric parameter %q", raw)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
