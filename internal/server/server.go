// Package server exposes the multi-workload scaling engine as an HTTP
// control plane, the shape an operator integrates with a cluster
// autoscaler (e.g. a Kubernetes operator reconciling many scaled
// targets). One process serves any number of independent workloads —
// registries, CI runners, FaaS functions — each with its own arrival
// history, NHPP model and plans, isolated under
//
//	POST   /v1/workloads/{id}/arrivals   record query arrivals (JSON,
//	                                     NDJSON or binary; optionally gzip)
//	POST   /v1/workloads/{id}/train      (re)fit the workload's NHPP model
//	GET    /v1/workloads/{id}/plan       upcoming creation times
//	GET    /v1/workloads/{id}/forecast   predicted intensity
//	GET    /v1/workloads/{id}/recommendation  replica recommendation (pipeline)
//	GET    /v1/workloads/{id}/status     model/ingestion state
//	DELETE /v1/workloads/{id}            drop the workload
//	GET    /v1/workloads                 list workload IDs
//	POST   /v1/admin/snapshot            persist all workloads to the data dir
//	GET    /v1/admin/generations         list retained snapshot generations
//	POST   /v1/admin/restore-generation  point-in-time restore to a retained one
//
// All model state and math live in internal/engine; this package only
// parses requests, routes them to the right Engine in the registry, and
// encodes responses. Plans, forecasts and recommendations are served
// through the autoscaler pipeline's staged seams (internal/pipeline):
// the Analyzer seam for model reads, a per-workload Controller for the
// Collect → Analyze → Optimize → Actuate recommendation path.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"

	"robustscaler/internal/engine"
	"robustscaler/internal/metrics"
	"robustscaler/internal/pipeline"
	"robustscaler/internal/store"
)

// Config parameterizes the control plane; it is the engine configuration
// shared by every workload.
type Config = engine.Config

// DefaultConfig returns a production-shaped configuration.
func DefaultConfig() Config { return engine.DefaultConfig() }

// Server is the HTTP control plane over a workload registry. It is safe
// for concurrent use.
type Server struct {
	reg *engine.Registry
	// st is the open snapshot store operator-triggered and
	// delete-triggered snapshots commit into; nil disables the admin
	// snapshot endpoint. Set once before serving (SetStore/SetDataDir).
	st *store.Store
	// maxIngestBytes caps one arrivals body, compressed and decompressed
	// alike; ≤0 disables the cap. Set once before serving
	// (SetMaxIngestBytes); defaults to DefaultMaxIngestBytes.
	maxIngestBytes int64
	// metrics is the process-wide observability registry behind GET
	// /metrics: the engine fleet's aggregates are registered at New, the
	// store's at SetStore, and the HTTP layer's per-route series when
	// the mux is built.
	metrics *metrics.Registry
	// encodeFailures counts responses whose JSON encoding failed after
	// the status line was committed (client gone, or an unencodable
	// value) — the failures writeJSON used to swallow.
	encodeFailures *metrics.Counter
	// ingestEvents counts accepted arrival timestamps by wire format;
	// unlike the per-engine counters these survive workload deletion.
	ingestEvents map[string]*metrics.Counter
	// boot carries what restore-on-boot had to give up on: quarantined
	// snapshot files and write-ahead logs reset over timeline mismatches.
	// Set once before serving (SetBootDegraded); nil means a clean boot.
	boot *bootReport
	// pipelines multiplexes the per-workload autoscaler controllers the
	// plan/forecast/recommendation routes run through. The actuation
	// backend defaults to dry-run; SetActuator swaps it before traffic.
	pipelines *pipeline.Manager
}

// bootReport is the degraded-boot detail /healthz exposes.
type bootReport struct {
	Quarantined []store.Quarantined    `json:"quarantined,omitempty"`
	WALReset    []engine.WALResetIssue `json:"wal_reset,omitempty"`
}

// New creates a Server with an empty workload registry and a live
// metrics registry already instrumented over it.
func New(cfg Config) (*Server, error) {
	reg, err := engine.NewRegistry(cfg)
	if err != nil {
		return nil, err
	}
	m := metrics.NewRegistry()
	reg.Instrument(m)
	s := &Server{reg: reg, maxIngestBytes: DefaultMaxIngestBytes, metrics: m}
	s.pipelines = pipeline.NewManager(reg, nil)
	s.pipelines.Instrument(m)
	s.encodeFailures = m.Counter("robustscaler_response_encode_failures_total",
		"Responses whose body could not be fully written after the status was sent (truncated reply: vanished client or encode error).")
	s.ingestEvents = map[string]*metrics.Counter{}
	for _, format := range []string{"json", "ndjson", "binary"} {
		s.ingestEvents[format] = m.Counter("robustscaler_ingest_events_total",
			"Arrival timestamps accepted over HTTP, by wire format (gzip variants included).",
			metrics.Label{Name: "format", Value: format})
	}
	return s, nil
}

// SetMaxIngestBytes caps one arrivals request body (413 beyond it); n
// ≤ 0 removes the cap. Call it once at startup, before the handler
// serves traffic.
func (s *Server) SetMaxIngestBytes(n int64) { s.maxIngestBytes = n }

// Registry exposes the workload registry, e.g. to start a background
// retrainer or snapshotter over it.
func (s *Server) Registry() *engine.Registry { return s.reg }

// Pipelines exposes the autoscaler pipeline manager, e.g. to start the
// background actuation loop over it.
func (s *Server) Pipelines() *pipeline.Manager { return s.pipelines }

// SetActuator selects the pipeline actuation backend: "dryrun" (the
// default — decisions are recorded, nothing is created) or "sim" (an
// in-process simulated cluster that models instance startup with the
// workload's pending time). Call it once at startup, before traffic;
// controllers already created keep their backend.
func (s *Server) SetActuator(mode string) error {
	switch mode {
	case "", "dryrun":
		s.pipelines.SetActuatorFactory(nil)
	case "sim":
		s.pipelines.SetActuatorFactory(func(id string, e *engine.Engine) pipeline.Actuator {
			return pipeline.NewSimCluster(e.EngineConfig().Pending)
		})
	default:
		return fmt.Errorf("unknown actuator %q (want dryrun or sim)", mode)
	}
	return nil
}

// SetStore enables persistence side effects (the POST /v1/admin/
// snapshot endpoint, durable deletes), committing into st, and
// registers the store's metrics. Call it once at startup, before the
// handler serves traffic; nil (the default) keeps them disabled.
func (s *Server) SetStore(st *store.Store) {
	s.st = st
	if st != nil {
		st.Instrument(s.metrics)
	}
}

// SetDataDir is SetStore over a freshly opened store in dir.
func (s *Server) SetDataDir(dir string) error {
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	s.SetStore(st)
	return nil
}

// SetBootDegraded records what restore-on-boot quarantined or reset so
// /healthz can report a degraded (but serving) process. Call it once at
// startup, before the handler serves traffic; empty slices leave the
// boot clean.
func (s *Server) SetBootDegraded(quarantined []store.Quarantined, walReset []engine.WALResetIssue) {
	if len(quarantined) == 0 && len(walReset) == 0 {
		return
	}
	s.boot = &bootReport{Quarantined: quarantined, WALReset: walReset}
}

// Response shapes are the engine's JSON-tagged types.
type (
	trainResponse  = engine.TrainInfo
	planResponse   = engine.Plan
	forecastPoint  = engine.ForecastPoint
	statusResponse = engine.Status
)

// PlanEntry is one planned instance creation.
type PlanEntry = engine.PlanEntry

// engineHandler is a route body that already has its workload resolved.
type engineHandler func(w http.ResponseWriter, r *http.Request, e *engine.Engine)

// Handler returns the HTTP routes, each wrapped in the request-metrics
// middleware under its mux pattern (so the `route` label is the
// "METHOD /path/{id}" template, never a concrete workload ID).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("GET /healthz", s.handleHealth)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /v1/workloads", s.handleList)
	handle("DELETE /v1/workloads/{id}", s.handleDelete)
	handle("POST /v1/workloads/{id}/arrivals", func(w http.ResponseWriter, r *http.Request) {
		s.handleArrivals(w, r, r.PathValue("id"))
	})
	handle("POST /v1/workloads/{id}/train", s.workload(s.handleTrain))
	handle("GET /v1/workloads/{id}/plan", s.workload(s.handlePlan))
	handle("GET /v1/workloads/{id}/forecast", s.workload(s.handleForecast))
	handle("GET /v1/workloads/{id}/recommendation", s.workload(s.handleRecommendation))
	handle("GET /v1/workloads/{id}/status", s.workload(s.handleStatus))
	handle("GET /v1/workloads/{id}/stats", s.workload(s.handleStats))
	handle("GET /v1/workloads/{id}/config", s.workload(s.handleConfigGet))
	handle("PUT /v1/workloads/{id}/config", s.workload(s.handleConfigPut))
	handle("PUT /v1/admin/config", s.handleBulkConfig)
	handle("POST /v1/admin/snapshot", s.handleSnapshot)
	handle("GET /v1/admin/generations", s.handleGenerations)
	handle("POST /v1/admin/restore-generation", s.handleRestoreGeneration)
	return mux
}

// workload resolves the {id} path segment without creating anything: an
// unknown workload is a 404, not a registration. Only a valid arrivals
// POST brings a workload into existence (handleArrivals), so typo'd
// trains, scanning GETs and garbage bodies never grow the registry or
// resurrect deleted workloads.
func (s *Server) workload(h engineHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, ok := s.reg.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown workload", http.StatusNotFound)
			return
		}
		h(w, r, e)
	}
}

// handleHealth reports process health. Liveness alone is not health:
// with persistence enabled, a snapshot pipeline that keeps failing
// means a restart loses state, so consecutive snapshot failures turn
// the report into 503 "degraded" (with the failure detail inline) and
// an orchestrator's health check can act before the data loss happens.
// Boot-time casualties — quarantined snapshot files, write-ahead logs
// reset over timeline mismatches — also mark the report "degraded",
// but with a 200: a restart cannot fix them (the same files are still
// bad), so a 503 would only crash-loop the process while the healthy
// workloads could have been serving. Without a store there is nothing
// to degrade and the check is plain liveness.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"status": "ok"}
	if s.boot != nil {
		resp["status"] = "degraded"
		resp["boot"] = s.boot
	}
	if s.st != nil {
		h := s.reg.SnapshotHealth()
		resp["persistence"] = h
		if h.ConsecutiveFailures > 0 {
			resp["status"] = "degraded"
			s.writeJSONStatus(w, http.StatusServiceUnavailable, resp)
			return
		}
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	ids := s.reg.Workloads()
	if ids == nil {
		ids = []string{}
	}
	s.writeJSON(w, map[string]any{"workloads": ids})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.reg.Remove(r.PathValue("id")) {
		http.Error(w, "unknown workload", http.StatusNotFound)
		return
	}
	resp := map[string]any{"deleted": true}
	if s.st != nil {
		// Make the delete durable right away: otherwise a restart before
		// the next snapshot tick would resurrect the workload from the
		// stale snapshot. The in-memory delete stands either way, but a
		// persistence failure means exactly that resurrection is still
		// possible — surface it as a 500 (deleted:true in the body says
		// the in-memory half happened) instead of burying persisted:false
		// inside a 200 no automation would read.
		if _, err := s.reg.SnapshotTo(s.st); err != nil {
			resp["persisted"] = false
			resp["persist_error"] = err.Error()
			s.writeJSONStatus(w, http.StatusInternalServerError, resp)
			return
		}
		resp["persisted"] = true
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request, e *engine.Engine) {
	info, err := e.Train()
	if err != nil {
		httpError(w, err)
		return
	}
	s.writeJSON(w, info)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request, e *engine.Engine) {
	// Model reads go through the pipeline's Analyzer seam. The engine
	// satisfies it directly, so the response bytes are identical to the
	// pre-pipeline path — the seam buys substitutability, not a copy.
	az := s.pipelines.For(r.PathValue("id"), e).Analyzer()
	q := r.URL.Query()
	req := engine.PlanRequest{Variant: q.Get("variant")}
	// Requests that omit target/horizon fall back to the workload's own
	// configured defaults (PUT /config), not a fleet-wide constant.
	ec := az.EngineConfig()
	defTarget := ec.HPTarget
	switch req.Variant {
	case "rt":
		defTarget = ec.RTTarget
	case "cost":
		defTarget = ec.CostTarget
	}
	var err error
	if req.Target, err = floatParam(q.Get("target"), defTarget); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Horizon, err = floatParam(q.Get("horizon"), ec.PlanHorizon); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if raw := q.Get("now"); raw != "" {
		if req.Now, err = floatParam(raw, 0); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req.HasNow = true
	}
	plan, err := az.Plan(req)
	if err != nil {
		httpError(w, err)
		return
	}
	s.writeJSON(w, plan)
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request, e *engine.Engine) {
	az := s.pipelines.For(r.PathValue("id"), e).Analyzer()
	q := r.URL.Query()
	from, err := floatParam(q.Get("from"), az.Now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	to, err := floatParam(q.Get("to"), from+3600)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	step, err := floatParam(q.Get("step"), az.EngineConfig().Dt)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The engine caches the rendered body next to the points, so the
	// steady state of a polling dashboard is a map hit plus one Write —
	// no per-request re-marshal. The bytes match writeJSON output.
	body, err := az.ForecastJSON(from, to, step)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(body); err != nil {
		s.encodeFailures.Inc()
		log.Printf("server: writing forecast response failed (response truncated): %v", err)
	}
}

// handleRecommendation runs one full Collect → Analyze → Optimize pass
// and returns the decision with its inputs and the behavior or window
// that clamped it. The decision is recorded in the workload's
// stabilization history (a served recommendation is a decision the
// anti-flapping window must see) but is not actuated — only the
// background loop applies decisions.
func (s *Server) handleRecommendation(w http.ResponseWriter, r *http.Request, e *engine.Engine) {
	rec, err := s.pipelines.For(r.PathValue("id"), e).Recommend()
	if err != nil {
		httpError(w, err)
		return
	}
	s.writeJSON(w, rec)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, e *engine.Engine) {
	s.writeJSON(w, e.Status())
}

// handleSnapshot persists every workload on operator demand — the
// manual counterpart of the background snapshotter, e.g. right before a
// planned deploy. 409 when persistence is not configured, so automation
// can distinguish "disabled" from "failed".
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.st == nil {
		http.Error(w, "snapshots disabled: start scalerd with -data-dir", http.StatusConflict)
		return
	}
	stats, err := s.reg.SnapshotTo(s.st)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, map[string]any{
		"workloads": stats.Total,
		"written":   stats.Written,
		"unchanged": stats.Kept,
		"dir":       s.st.Dir(),
	})
}

// handleGenerations lists the retained snapshot generations an operator
// can roll back to — newest last, the current one flagged.
func (s *Server) handleGenerations(w http.ResponseWriter, _ *http.Request) {
	if s.st == nil {
		http.Error(w, "snapshots disabled: start scalerd with -data-dir", http.StatusConflict)
		return
	}
	gens := s.st.Generations()
	if gens == nil {
		gens = []store.GenerationInfo{}
	}
	s.writeJSON(w, map[string]any{"generations": gens})
}

// handleRestoreGeneration rolls the whole fleet back to a retained
// snapshot generation: the store's manifest is repointed on disk, then
// every in-memory engine is rebuilt from it and the write-ahead logs
// are reset (their records describe the abandoned timeline). Traffic
// accepted after the restore is durable as usual. The restore itself
// advances the generation sequence, so a mistaken rollback is undoable
// through the same endpoint while the overwritten generation is still
// retained.
func (s *Server) handleRestoreGeneration(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		http.Error(w, "snapshots disabled: start scalerd with -data-dir", http.StatusConflict)
		return
	}
	var req struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if req.Generation == 0 {
		http.Error(w, `missing "generation"`, http.StatusBadRequest)
		return
	}
	if err := s.st.RestoreGeneration(req.Generation); err != nil {
		code := http.StatusInternalServerError
		if strings.Contains(err.Error(), "no retained generation") {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	restored, err := s.reg.ReloadFrom(s.st)
	if err != nil {
		// The disk rollback took but the in-memory reload didn't: the
		// process is now serving state that disagrees with the manifest.
		// Report loudly; the operator restarts (boot reloads the manifest).
		http.Error(w, fmt.Sprintf("generation restored on disk but reload failed (restart to converge): %v", err), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, map[string]any{
		"restored_generation": req.Generation,
		"workloads":           restored,
	})
}

// httpError maps engine errors onto HTTP statuses: missing data/model →
// 409 (train first), invalid parameters → 400, anything else → 500.
func httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrNoData), errors.Is(err, engine.ErrNoModel):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, engine.ErrInvalid):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func floatParam(raw string, def float64) (float64, error) {
	if raw == "" {
		return def, nil
	}
	// ParseFloat accepts "NaN"/"Inf"; a NaN sails through every range
	// check downstream (all comparisons false), so reject non-finite
	// values here.
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad numeric parameter %q", raw)
	}
	return v, nil
}

// writeJSON encodes a 200 response body. Encode errors cannot change
// the status line (it is already on the wire), but they are not
// swallowed either: each one is counted and logged, so a truncated
// response — a vanished client, or an unencodable value — shows up in
// /metrics instead of disappearing.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	s.writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus is writeJSON with an explicit status code.
func (s *Server) writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.encodeFailures.Inc()
		log.Printf("server: encoding %d response failed (response truncated): %v", code, err)
	}
}
