package store

// Generation retention, point-in-time restore, and quarantine.
//
// Retention: every commit's manifest is also archived under
// <dir>/generations/gen-<seq>.rsman (when SetRetain allows more than
// one), and the workload files a retained generation references are
// exempt from deletion and the orphan sweep. Because commits never
// write over a live file — each changed workload gets a fresh name —
// keeping N manifests IS keeping N consistent point-in-time snapshots,
// at the cost of only the files that actually changed between them.
//
// Restore: RestoreGeneration re-installs an archived manifest's
// workload set as a NEW commit (the sequence keeps moving forward, so
// the abandoned timeline's manifests remain distinct archives and a
// restore can itself be undone by restoring the pre-restore
// generation).
//
// Quarantine: LoadTolerant is the boot loader that refuses to die on a
// single bad workload file — the file is moved into <dir>/quarantine/
// for forensics, the manifest is rewritten without it, and the caller
// gets the survivors plus a report. Manifest-level corruption still
// fails loudly: there is no safe way to guess what a fleet looked like.

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

const (
	// GenerationsDir holds archived manifests, one per retained commit.
	GenerationsDir = "generations"
	// QuarantineDir receives workload files that failed validation at
	// boot; they are kept for forensics, never read again.
	QuarantineDir = "quarantine"
)

// SetRetain sets how many committed generations (including the current
// one) stay restorable. n ≤ 1 disables archiving — exactly the pre-
// retention behavior. Takes effect on the next commit; already-archived
// generations beyond the new limit are pruned then too.
func (s *Store) SetRetain(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retain = n
}

// GenerationInfo describes one restorable snapshot generation.
type GenerationInfo struct {
	Seq         uint64 `json:"seq"`
	SavedAtUnix int64  `json:"saved_at_unix"`
	Workloads   int    `json:"workloads"`
	Current     bool   `json:"current"`
}

// Generations lists the restorable generations, oldest first. The
// current manifest is always included (marked Current), whether or not
// an archive copy of it exists.
func (s *Store) Generations() []GenerationInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GenerationInfo, 0, len(s.gens)+1)
	for seq, g := range s.gens {
		if seq == s.seq {
			continue // reported from the live manifest below
		}
		out = append(out, GenerationInfo{Seq: seq, SavedAtUnix: g.SavedAtUnix, Workloads: len(g.Workloads)})
	}
	if s.seq > 0 && !s.legacy {
		out = append(out, GenerationInfo{Seq: s.seq, SavedAtUnix: s.savedAt, Workloads: len(s.entries), Current: true})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// RestoreGeneration re-installs archived generation target as a new
// commit: its workload files are validated first (a retained
// generation's files are protected from deletion, so they should all
// verify), then a fresh manifest naming exactly that set lands at
// sequence current+1. The caller owns reloading engines from the store
// afterwards. Restoring the current generation is a no-op.
func (s *Store) RestoreGeneration(target uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.legacy {
		return errors.New("store: cannot restore a generation before the v1→v2 migration commit")
	}
	if target == s.seq && s.seq != 0 {
		return nil
	}
	g, ok := s.gens[target]
	if !ok {
		return fmt.Errorf("store: no retained generation %d (have %s)", target, s.generationListLocked())
	}
	// Validate every file the generation names before touching the
	// manifest: a restore must be all-or-nothing.
	for _, en := range g.Workloads {
		body, err := readChecked(filepath.Join(s.dir, WorkloadDir, en.File), workloadMagic, versionV2)
		if err != nil {
			return fmt.Errorf("store: generation %d is not restorable: workload %q (%s): %v", target, en.ID, en.File, err)
		}
		if len(body) != en.Len || crc32.ChecksumIEEE(body) != en.CRC {
			return fmt.Errorf("store: generation %d is not restorable: %s does not match the generation's recorded checksum/length for %q", target, en.File, en.ID)
		}
	}
	next := make(map[string]manifestEntry, len(g.Workloads))
	for _, en := range g.Workloads {
		next[en.ID] = en
	}
	if err := s.installManifestLocked(next); err != nil {
		return fmt.Errorf("store: restoring generation %d: %w", target, err)
	}
	return nil
}

func (s *Store) generationListLocked() string {
	seqs := make([]string, 0, len(s.gens))
	for seq := range s.gens {
		seqs = append(seqs, strconv.FormatUint(seq, 10))
	}
	sort.Strings(seqs)
	if len(seqs) == 0 {
		return "none"
	}
	return strings.Join(seqs, ", ")
}

// installManifestLocked writes a new manifest covering exactly next,
// archives it per the retention policy, updates the in-memory state and
// deletes files no retained generation references anymore. Shared by
// RestoreGeneration and the quarantine rewrite; Commit has its own
// inline tail (it also tracks write stats) but the archive/prune/delete
// helpers below are common.
func (s *Store) installManifestLocked(next map[string]manifestEntry) error {
	seq := s.seq + 1
	entries := make([]manifestEntry, 0, len(next))
	for _, en := range next {
		entries = append(entries, en)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	p := manifestPayload{SavedAtUnix: time.Now().Unix(), Seq: seq, Workloads: entries}
	body, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("encoding manifest: %w", err)
	}
	manifest := encodeFile(manifestMagic, body)
	if err := writeFileAtomic(s.dir, ManifestFile, manifest); err != nil {
		return fmt.Errorf("installing manifest: %w", err)
	}
	syncDir(s.dir)
	pruned := s.archiveAndPruneLocked(seq, manifest, p)
	old := s.entries
	s.entries = next
	s.seq = seq
	s.savedAt = p.SavedAtUnix
	s.deleteUnreferencedLocked(old, pruned)
	return nil
}

// archiveAndPruneLocked archives the just-committed manifest (content
// already encoded) when retention wants more than the live copy, then
// prunes archives beyond the retention limit. It returns the manifest
// entries of pruned generations so the caller can delete their files if
// nothing else references them. Archive failures are swallowed: the
// commit itself stands, the generation just won't be restorable.
func (s *Store) archiveAndPruneLocked(seq uint64, manifest []byte, p manifestPayload) []manifestEntry {
	if s.retain > 1 {
		if err := writeFileAtomic(filepath.Join(s.dir, GenerationsDir), generationFileName(seq), manifest); err == nil {
			s.gens[seq] = p
		}
	}
	var pruned []manifestEntry
	limit := s.retain
	if limit < 1 {
		limit = 1
	}
	// The live generation counts toward the limit; keep the newest
	// limit-1 archives besides it (an archive of the live seq is not
	// "besides it").
	seqs := make([]uint64, 0, len(s.gens))
	for g := range s.gens {
		if g != seq {
			seqs = append(seqs, g)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for i, g := range seqs {
		if i < limit-1 {
			continue
		}
		pruned = append(pruned, s.gens[g].Workloads...)
		delete(s.gens, g)
		os.Remove(filepath.Join(s.dir, GenerationsDir, generationFileName(g)))
	}
	return pruned
}

// referencedLocked is the set of workload files named by the live
// manifest or any retained generation — the files that must survive.
func (s *Store) referencedLocked() map[string]bool {
	ref := make(map[string]bool, len(s.entries))
	for _, en := range s.entries {
		ref[en.File] = true
	}
	for _, g := range s.gens {
		for _, en := range g.Workloads {
			ref[en.File] = true
		}
	}
	return ref
}

// deleteUnreferencedLocked removes the files of a replaced manifest
// (old) and of pruned generations that no retained generation
// references anymore. Returns how many files were deleted.
func (s *Store) deleteUnreferencedLocked(old map[string]manifestEntry, pruned []manifestEntry) int {
	ref := s.referencedLocked()
	removed := 0
	seen := map[string]bool{}
	drop := func(file string) {
		if file == "" || ref[file] || seen[file] {
			return
		}
		seen[file] = true
		if os.Remove(filepath.Join(s.dir, WorkloadDir, file)) == nil {
			removed++
		}
	}
	for _, en := range old {
		drop(en.File)
	}
	for _, en := range pruned {
		drop(en.File)
	}
	return removed
}

// loadGenerationsLocked reads the archived manifests at Open, before
// the orphan sweep (their files must count as referenced). Unreadable
// or malformed archives are discarded — an archive is redundant by
// definition, and keeping a bad one would only block restores.
func (s *Store) loadGenerationsLocked() {
	dir := filepath.Join(s.dir, GenerationsDir)
	des, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range des {
		seq, ok := parseGenerationFileName(de.Name())
		if !ok {
			continue
		}
		body, err := readChecked(filepath.Join(dir, de.Name()), manifestMagic, versionV2)
		if err != nil {
			os.Remove(filepath.Join(dir, de.Name()))
			continue
		}
		var p manifestPayload
		if err := json.Unmarshal(body, &p); err != nil || p.Seq != seq {
			os.Remove(filepath.Join(dir, de.Name()))
			continue
		}
		s.gens[seq] = p
	}
}

func generationFileName(seq uint64) string {
	return fmt.Sprintf("gen-%016d.rsman", seq)
}

func parseGenerationFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "gen-") || !strings.HasSuffix(name, ".rsman") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "gen-"), ".rsman"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// ── Tolerant boot load & quarantine ─────────────────────────────────────

// Quarantined reports one workload file set aside at boot.
type Quarantined struct {
	ID     string `json:"id"`
	File   string `json:"file"`
	Reason string `json:"reason"`
}

// LoadTolerant is Load for booting: instead of failing the whole fleet
// on one unreadable workload file, it moves the bad file into
// <dir>/quarantine/, rewrites the manifest without it, and returns the
// workloads that did validate plus a report of what was set aside.
// Manifest-level corruption (and legacy v1 corruption — the monolithic
// file has no salvageable pieces) still fails hard. An error rewriting
// the manifest is fatal too: booting on state the store cannot
// re-persist coherently would just defer the crash.
func (s *Store) LoadTolerant() ([]Workload, []Quarantined, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.legacy {
		ws, err := LoadV1(s.dir)
		return ws, nil, err
	}
	if s.seq == 0 {
		return nil, nil, fmt.Errorf("%w in %s", ErrNoSnapshot, s.dir)
	}
	ids := make([]string, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []Workload
	var quarantined []Quarantined
	for _, id := range ids {
		en := s.entries[id]
		w, err := s.loadEntryLocked(en)
		if err != nil {
			quarantined = append(quarantined, Quarantined{ID: id, File: en.File, Reason: err.Error()})
			continue
		}
		out = append(out, w)
	}
	if len(quarantined) > 0 {
		if err := s.quarantineLocked(quarantined); err != nil {
			return nil, quarantined, err
		}
	}
	return out, quarantined, nil
}

// loadEntryLocked reads and fully validates one workload file.
func (s *Store) loadEntryLocked(en manifestEntry) (Workload, error) {
	var w Workload
	body, err := readChecked(filepath.Join(s.dir, WorkloadDir, en.File), workloadMagic, versionV2)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return w, fmt.Errorf("file is missing")
		}
		return w, err
	}
	if len(body) != en.Len || crc32.ChecksumIEEE(body) != en.CRC {
		return w, fmt.Errorf("file does not match the manifest's recorded checksum/length")
	}
	if err := json.Unmarshal(body, &w); err != nil {
		return w, fmt.Errorf("decoding payload: %v", err)
	}
	if w.ID != en.ID {
		return w, fmt.Errorf("file holds workload %q, manifest says %q", w.ID, en.ID)
	}
	return w, nil
}

// Quarantine sets aside one workload whose file passed the store's
// checks but whose blob the engine rejected (CRC-valid JSON encoding a
// state the current build refuses). Same mechanics as the boot path:
// file moved, manifest rewritten without the workload.
func (s *Store) Quarantine(id, reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.legacy {
		return errors.New("store: cannot quarantine from a legacy v1 snapshot")
	}
	en, ok := s.entries[id]
	if !ok {
		return nil
	}
	return s.quarantineLocked([]Quarantined{{ID: id, File: en.File, Reason: reason}})
}

// quarantineLocked moves the named files into QuarantineDir and
// rewrites the manifest without their workloads.
func (s *Store) quarantineLocked(bad []Quarantined) error {
	qdir := filepath.Join(s.dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("store: creating quarantine dir: %w", err)
	}
	next := make(map[string]manifestEntry, len(s.entries))
	for id, en := range s.entries {
		next[id] = en
	}
	for _, q := range bad {
		// Move, not delete: the bytes are evidence. Best-effort — a
		// missing file has nothing to move.
		os.Rename(filepath.Join(s.dir, WorkloadDir, q.File), filepath.Join(qdir, q.File))
		delete(next, q.ID)
	}
	if err := s.installManifestLocked(next); err != nil {
		return fmt.Errorf("store: rewriting manifest after quarantine: %w", err)
	}
	return nil
}
