// Package store persists workload snapshots across process restarts: a
// versioned, integrity-checked on-disk format with atomic replacement,
// so a crash mid-write can never leave a half-written snapshot where the
// next boot would read it. The package is a pure persistence layer — it
// moves opaque per-workload state blobs to and from disk and knows
// nothing about what is inside them; internal/engine owns the blob
// schema (Engine.MarshalState / Engine.RestoreState).
//
// # File format
//
// A snapshot is a single file, SnapshotFile, inside the data directory:
//
//	robustscaler-snapshot v1 crc32=<8 hex digits> len=<payload bytes>\n
//	<payload>
//
// The first line is an ASCII header; everything after the first newline
// is the payload, a JSON object:
//
//	{"saved_at_unix": <seconds>, "workloads": [{"id": "...", "state": {...}}, ...]}
//
// The header carries the format version, the IEEE CRC-32 of the payload
// and the payload's exact byte length. Load verifies all three before
// parsing, so truncation (len mismatch), bit rot (CRC mismatch) and
// format skew (version mismatch) are each rejected with a clean error
// instead of a decode panic or a silently partial restore.
//
// # Atomicity
//
// Save writes the snapshot to a unique temporary file in the same
// directory, fsyncs it, and only then renames it over SnapshotFile.
// Rename within one directory is atomic on POSIX filesystems, so readers
// (and the next boot) see either the previous complete snapshot or the
// new complete snapshot, never a mix. Concurrent Save calls are safe:
// each writes its own temp file and the last rename wins.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// SnapshotFile is the snapshot's file name inside the data directory.
const SnapshotFile = "snapshot.rsnap"

// formatVersion is the on-disk format version written and accepted by
// this package. Bump it when the header or payload layout changes
// incompatibly; Load rejects files from other versions.
const formatVersion = 1

// headerMagic opens every snapshot header line.
const headerMagic = "robustscaler-snapshot"

// Sentinel errors. Callers match them with errors.Is.
var (
	// ErrNoSnapshot means the data directory holds no snapshot yet — the
	// clean cold-boot case, distinct from a snapshot that exists but
	// cannot be read.
	ErrNoSnapshot = errors.New("store: no snapshot")
	// ErrCorrupt means a snapshot file exists but failed validation
	// (truncated, checksum mismatch, malformed header or payload).
	ErrCorrupt = errors.New("store: corrupt snapshot")
)

// Workload is one workload's persisted record: its registry ID and the
// opaque state blob produced by Engine.MarshalState. The blob is kept as
// raw JSON so this package never needs to understand — or version — the
// engine's schema.
type Workload struct {
	ID    string          `json:"id"`
	State json.RawMessage `json:"state"`
}

// payload is the JSON document behind the header line.
type payload struct {
	SavedAtUnix int64      `json:"saved_at_unix"`
	Workloads   []Workload `json:"workloads"`
}

// Save atomically writes a snapshot of the given workloads into dir,
// replacing any previous snapshot. The directory must exist. On error
// the previous snapshot, if any, is left intact.
func Save(dir string, workloads []Workload) error {
	body, err := json.Marshal(payload{
		SavedAtUnix: time.Now().Unix(),
		Workloads:   workloads,
	})
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	header := fmt.Sprintf("%s v%d crc32=%08x len=%d\n",
		headerMagic, formatVersion, crc32.ChecksumIEEE(body), len(body))

	// Temp file in the same directory so the final rename cannot cross a
	// filesystem boundary (rename is only atomic within one filesystem).
	f, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp file: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.WriteString(header); err != nil {
		return cleanup(fmt.Errorf("store: writing snapshot: %w", err))
	}
	if _, err := f.Write(body); err != nil {
		return cleanup(fmt.Errorf("store: writing snapshot: %w", err))
	}
	// Flush to stable storage before the rename makes the file visible:
	// otherwise a power cut could leave a fully-renamed but empty file.
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("store: syncing snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		return cleanup(fmt.Errorf("store: closing snapshot: %w", err))
	}
	if err := os.Rename(tmp, filepath.Join(dir, SnapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	// Best-effort directory sync so the rename itself survives a crash;
	// not all platforms/filesystems support syncing a directory handle.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and validates the snapshot in dir. It returns ErrNoSnapshot
// when none has been written yet, and an error wrapping ErrCorrupt when
// a snapshot exists but fails header, length, checksum or JSON
// validation.
//
// Load also sweeps temp files orphaned by a Save that crashed between
// creating its temp file and the rename, so crash loops cannot
// accumulate them. Load therefore must not run concurrently with Save —
// in practice it runs once at boot, before any snapshotter starts.
func Load(dir string) ([]Workload, error) {
	if matches, err := filepath.Glob(filepath.Join(dir, ".snapshot-*.tmp")); err == nil {
		for _, m := range matches {
			os.Remove(m)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w in %s", ErrNoSnapshot, dir)
		}
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: missing header line", ErrCorrupt)
	}
	var version int
	var sum uint32
	var length int
	if n, err := fmt.Sscanf(string(data[:nl]), headerMagic+" v%d crc32=%x len=%d",
		&version, &sum, &length); err != nil || n != 3 {
		return nil, fmt.Errorf("%w: malformed header %q", ErrCorrupt, string(data[:nl]))
	}
	if version != formatVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d (this build reads v%d)", version, formatVersion)
	}
	body := data[nl+1:]
	if len(body) != length {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d (truncated?)", ErrCorrupt, len(body), length)
	}
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: checksum %08x does not match header %08x", ErrCorrupt, got, sum)
	}
	var p payload
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCorrupt, err)
	}
	return p.Workloads, nil
}
