// Package store persists workload snapshots across process restarts: a
// versioned, integrity-checked on-disk format with atomic replacement,
// so a crash mid-write can never leave a half-written snapshot where the
// next boot would read it. The package is a pure persistence layer — it
// moves opaque per-workload state blobs to and from disk and knows
// nothing about what is inside them; internal/engine owns the blob
// schema (Engine.MarshalState / Engine.RestoreState).
//
// # v2 layout: manifest + one file per workload
//
// A Store is a directory:
//
//	<dir>/manifest.rsman             the commit point
//	<dir>/workloads/<name>.rsnap     one file per workload
//
// Every file carries the same self-validating envelope — an ASCII
// header line with the format version, the IEEE CRC-32 of the payload
// and the payload's exact byte length, followed by the payload:
//
//	robustscaler-manifest v2 crc32=<8 hex> len=<bytes>\n
//	{"saved_at_unix": ..., "seq": ..., "workloads": [{"id", "file", "crc32", "len"}, ...]}
//
//	robustscaler-workload v2 crc32=<8 hex> len=<bytes>\n
//	{"id": "...", "state": {...}}
//
// The manifest names exactly which workload files make up the current
// snapshot, and records each file's checksum and length, so Load can
// reject a torn or mixed-generation directory instead of silently
// restoring a partial fleet. Workload files embed their own ID, so a
// file paired with the wrong manifest entry is detected too.
//
// # Incremental commits
//
// Commit takes the blobs that changed plus the IDs that did not: only
// changed workloads get a new file (named with a fresh commit sequence
// number, never renamed over a live file), unchanged workloads keep the
// file the previous manifest points at. A fleet of 10k idle workloads
// therefore costs one small manifest write per tick, not 10k rewrites.
//
// # Crash safety
//
// The manifest rename is the commit point. Until it lands, the previous
// manifest still names only previous-generation files, which are never
// written over (new files get new names); after it lands, the new
// manifest names only fully fsynced new files. Replaced and dropped
// files are deleted only after the commit point, and a crash anywhere
// in between leaves orphans that Open sweeps. Every file is written to
// a temp file in its own directory, fsynced, and renamed into place.
//
// A Store expects to be the directory's only writer while open
// (scalerd's boot sequence guarantees this); two concurrently open
// Stores on one directory can race each other's commits, exactly like
// two daemons sharing a data dir.
//
// # Legacy v1 format and migration
//
// Before v2 the whole fleet lived in one monolithic file,
// <dir>/snapshot.rsnap (SaveV1/LoadV1 still read and write it — tests
// and rollback tooling use them). Open detects a directory holding only
// a v1 snapshot and serves Load from it transparently; the first Commit
// writes the v2 layout and removes the legacy file, so migration is one
// ordinary snapshot tick. If both a manifest and a legacy file exist
// (a crash between those two steps), the manifest — written first —
// wins and the leftover legacy file is removed.
package store

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// File names inside the data directory.
const (
	// SnapshotFile is the legacy v1 monolithic snapshot.
	SnapshotFile = "snapshot.rsnap"
	// ManifestFile is the v2 commit point.
	ManifestFile = "manifest.rsman"
	// WorkloadDir holds the v2 per-workload snapshot files.
	WorkloadDir = "workloads"
)

// Format versions. v1 is the monolithic snapshot; v2 is the
// manifest-plus-per-workload layout.
const (
	versionV1 = 1
	versionV2 = 2
)

// Header magics. Each file kind has its own, so a workload file can
// never be mistaken for a manifest (or vice versa) even if renamed.
const (
	snapshotMagic = "robustscaler-snapshot"
	manifestMagic = "robustscaler-manifest"
	workloadMagic = "robustscaler-workload"
)

// Sentinel errors. Callers match them with errors.Is.
var (
	// ErrNoSnapshot means the data directory holds no snapshot yet — the
	// clean cold-boot case, distinct from a snapshot that exists but
	// cannot be read.
	ErrNoSnapshot = errors.New("store: no snapshot")
	// ErrCorrupt means snapshot state exists but failed validation
	// (truncated, checksum mismatch, malformed header or payload, or a
	// manifest that disagrees with the files it names).
	ErrCorrupt = errors.New("store: corrupt snapshot")
)

// Workload is one workload's persisted record: its registry ID and the
// opaque state blob produced by Engine.MarshalState. The blob is kept as
// raw JSON so this package never needs to understand — or version — the
// engine's schema.
type Workload struct {
	ID    string          `json:"id"`
	State json.RawMessage `json:"state"`
}

// manifestEntry names one workload file and pins its content.
type manifestEntry struct {
	ID   string `json:"id"`
	File string `json:"file"`
	CRC  uint32 `json:"crc32"`
	Len  int    `json:"len"`
}

// manifestPayload is the JSON document behind the manifest header.
type manifestPayload struct {
	SavedAtUnix int64           `json:"saved_at_unix"`
	Seq         uint64          `json:"seq"`
	Workloads   []manifestEntry `json:"workloads"`
}

// CommitStats reports what one Commit did — the observable half of the
// incremental-snapshot contract (an idle fleet commits with Written 0).
type CommitStats struct {
	// Total workloads in the committed manifest.
	Total int
	// Written is how many workload files this commit wrote.
	Written int
	// Kept is how many unchanged files the manifest reuses.
	Kept int
	// Removed is how many replaced or dropped files were deleted.
	Removed int
}

// Store is an open snapshot directory: the committed manifest held in
// memory plus the machinery to advance it atomically. Safe for
// concurrent use; see the package comment for the single-writer
// expectation across processes.
type Store struct {
	dir string
	// nonce makes this Store's file names unique even against another
	// Store instance racing on the same directory (a misuse, but one
	// that must corrupt nothing).
	nonce string

	mu      sync.Mutex
	seq     uint64
	entries map[string]manifestEntry
	// savedAt is the live manifest's SavedAtUnix (Generations reports it).
	savedAt int64
	// retain is how many generations (including the live one) stay
	// restorable; ≤1 disables archiving. See SetRetain.
	retain int
	// gens holds the archived generation manifests, by sequence.
	gens map[uint64]manifestPayload
	// legacy marks a directory still on the v1 monolithic format: reads
	// come from snapshot.rsnap until the first Commit migrates it.
	legacy bool
	// metrics, when set (Instrument), observes every commit.
	metrics *storeMetrics
}

// Open opens (creating if needed) the data directory and reads its
// manifest. A directory holding only a legacy v1 snapshot opens in
// migration mode — Load serves the v1 content and the first Commit
// rewrites it as v2. A corrupt manifest fails Open with ErrCorrupt so a
// boot can stop before overwriting the evidence. Open also sweeps temp
// files and workload files orphaned by a crashed commit.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, WorkloadDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, GenerationsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating generations dir: %w", err)
	}
	var nonce [4]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("store: generating nonce: %w", err)
	}
	s := &Store{
		dir:     dir,
		nonce:   hex.EncodeToString(nonce[:]),
		entries: map[string]manifestEntry{},
		gens:    map[uint64]manifestPayload{},
	}

	body, err := readChecked(filepath.Join(dir, ManifestFile), manifestMagic, versionV2)
	switch {
	case err == nil:
		var p manifestPayload
		if err := json.Unmarshal(body, &p); err != nil {
			return nil, fmt.Errorf("%w: decoding manifest: %v", ErrCorrupt, err)
		}
		for _, en := range p.Workloads {
			if en.ID == "" || en.File == "" || en.File != filepath.Base(en.File) {
				return nil, fmt.Errorf("%w: manifest entry %+v is malformed", ErrCorrupt, en)
			}
			if _, dup := s.entries[en.ID]; dup {
				return nil, fmt.Errorf("%w: manifest lists workload %q twice", ErrCorrupt, en.ID)
			}
			s.entries[en.ID] = en
		}
		s.seq = p.Seq
		if s.seq == 0 {
			s.seq = 1 // a committed manifest always has a positive sequence
		}
		s.savedAt = p.SavedAtUnix
		// A leftover legacy snapshot next to a manifest usually means a
		// crash landed between the migration commit and the legacy
		// cleanup — the manifest is the commit point, so that v1 file is
		// dead. But a v1 file NEWER than the manifest means a pre-v2
		// build ran (and accumulated state) after the migration — a
		// rollback period whose data must not be silently discarded.
		// Fail loudly and let the operator pick a side.
		if legacy, lerr := loadV1Payload(dir); lerr == nil {
			if legacy.SavedAtUnix > p.SavedAtUnix {
				return nil, fmt.Errorf("store: %s is newer than %s (a pre-v2 build ran after migration?); move one aside to choose which state boots", SnapshotFile, ManifestFile)
			}
			os.Remove(filepath.Join(dir, SnapshotFile))
		} else if !errors.Is(lerr, ErrNoSnapshot) {
			// An unreadable v1 file next to a valid manifest could be a
			// truncated rollback-era snapshot — possibly newer than the
			// manifest. Deleting it would destroy the evidence silently;
			// make the operator decide, like the readable-newer case.
			return nil, fmt.Errorf("store: %s exists next to %s but cannot be read (%v); move one aside to choose which state boots", SnapshotFile, ManifestFile, lerr)
		}
	case errors.Is(err, fs.ErrNotExist):
		if _, statErr := os.Stat(filepath.Join(dir, SnapshotFile)); statErr == nil {
			s.legacy = true
		}
	default:
		return nil, err
	}
	// Archived generations must be known before the sweep: their files
	// count as referenced.
	s.loadGenerationsLocked()
	s.sweepLocked()
	return s, nil
}

// Dir returns the data directory this store persists into.
func (s *Store) Dir() string { return s.dir }

// Has reports whether the committed manifest covers the workload — i.e.
// whether an unchanged workload may be carried by ID instead of
// rewritten. Always false in legacy (pre-migration) mode, which is what
// forces the first v2 commit to write every workload.
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.legacy {
		return false
	}
	_, ok := s.entries[id]
	return ok
}

// CoveredIDs returns every workload ID the committed manifest covers —
// the set eligible for Commit's keep list — and ok=false in legacy
// mode, where nothing can be carried by ID.
func (s *Store) CoveredIDs() ([]string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.legacy {
		return nil, false
	}
	ids := make([]string, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	return ids, true
}

// Len returns how many workloads the committed snapshot covers.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.legacy {
		if ws, err := LoadV1(s.dir); err == nil {
			return len(ws)
		}
		return 0
	}
	return len(s.entries)
}

// Load reads and validates the committed snapshot: every workload file
// the manifest names, checked against both its own header and the
// manifest's recorded checksum and length. It returns ErrNoSnapshot
// when nothing has ever been committed, and an error wrapping
// ErrCorrupt when state exists but fails validation. In legacy mode it
// reads the v1 monolithic snapshot instead.
func (s *Store) Load() ([]Workload, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.legacy {
		return LoadV1(s.dir)
	}
	if s.seq == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoSnapshot, s.dir)
	}
	ids := make([]string, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Workload, 0, len(ids))
	for _, id := range ids {
		en := s.entries[id]
		body, err := readChecked(filepath.Join(s.dir, WorkloadDir, en.File), workloadMagic, versionV2)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil, fmt.Errorf("%w: manifest names %s for workload %q but the file is missing", ErrCorrupt, en.File, id)
			}
			return nil, fmt.Errorf("workload %q (%s): %w", id, en.File, err)
		}
		if len(body) != en.Len || crc32.ChecksumIEEE(body) != en.CRC {
			return nil, fmt.Errorf("%w: %s does not match the manifest's recorded checksum/length for %q", ErrCorrupt, en.File, id)
		}
		var w Workload
		if err := json.Unmarshal(body, &w); err != nil {
			return nil, fmt.Errorf("%w: decoding %s: %v", ErrCorrupt, en.File, err)
		}
		if w.ID != id {
			return nil, fmt.Errorf("%w: %s holds workload %q, manifest says %q", ErrCorrupt, en.File, w.ID, id)
		}
		out = append(out, w)
	}
	return out, nil
}

// Commit atomically advances the snapshot to cover exactly the
// workloads in changed ∪ keep: changed blobs are written as fresh
// files, keep IDs reuse the file the current manifest names (they must
// be covered — see Has), and any previously committed workload in
// neither set is dropped. On error the previous snapshot is intact; on
// success replaced and dropped files are deleted and, in legacy mode,
// the v1 monolithic snapshot is removed (migration complete).
func (s *Store) Commit(changed []Workload, keep []string) (CommitStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	stats, bytes, err := s.commitLocked(changed, keep)
	s.recordCommitLocked(time.Since(start), stats.Written, bytes, err)
	return stats, err
}

func (s *Store) commitLocked(changed []Workload, keep []string) (CommitStats, int64, error) {
	var stats CommitStats
	var wrote int64
	seq := s.seq + 1
	next := make(map[string]manifestEntry, len(changed)+len(keep))
	for _, id := range keep {
		en, ok := s.entries[id]
		if !ok || s.legacy {
			return stats, wrote, fmt.Errorf("store: cannot keep workload %q: not covered by the committed manifest", id)
		}
		next[id] = en
	}

	// Write the changed workload files first; none is visible to a
	// reader until the manifest below names it.
	var newFiles []string
	abort := func(err error) (CommitStats, int64, error) {
		for _, f := range newFiles {
			os.Remove(filepath.Join(s.dir, WorkloadDir, f))
		}
		return stats, wrote, err
	}
	// Distinct IDs can collide on (sanitized prefix, FNV-64) — workload
	// IDs are client-chosen, and a same-name rename inside one commit
	// would clobber the first file and poison the snapshot. Track the
	// names this manifest will hold and disambiguate on collision.
	usedNames := make(map[string]bool, len(next)+len(changed))
	for _, en := range next {
		usedNames[en.File] = true
	}
	for _, w := range changed {
		if w.ID == "" {
			return abort(errors.New("store: empty workload id in commit"))
		}
		if _, dup := next[w.ID]; dup {
			return abort(fmt.Errorf("store: workload %q appears twice in commit", w.ID))
		}
		body, err := json.Marshal(Workload{ID: w.ID, State: w.State})
		if err != nil {
			return abort(fmt.Errorf("store: encoding workload %q: %w", w.ID, err))
		}
		name := workloadFileName(w.ID, seq, s.nonce)
		for i := 2; usedNames[name]; i++ {
			name = fmt.Sprintf("%s~%d", workloadFileName(w.ID, seq, s.nonce), i)
		}
		usedNames[name] = true
		content := encodeFile(workloadMagic, body)
		if err := writeFileAtomic(filepath.Join(s.dir, WorkloadDir), name, content); err != nil {
			return abort(fmt.Errorf("store: writing workload %q: %w", w.ID, err))
		}
		wrote += int64(len(content))
		newFiles = append(newFiles, name)
		next[w.ID] = manifestEntry{ID: w.ID, File: name, CRC: crc32.ChecksumIEEE(body), Len: len(body)}
	}

	// Make the new workload files' directory entries durable BEFORE the
	// manifest that names them becomes the commit point — POSIX gives no
	// cross-directory ordering, and a manifest that survives a power cut
	// while its files' dirents do not would fail the next boot. Syncs
	// are best-effort (not every platform/filesystem supports syncing a
	// directory handle), matching the write-side fsync guarantees.
	if len(newFiles) > 0 {
		syncDir(filepath.Join(s.dir, WorkloadDir))
	}
	entries := make([]manifestEntry, 0, len(next))
	for _, en := range next {
		entries = append(entries, en)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	savedAt := time.Now().Unix()
	body, err := json.Marshal(manifestPayload{SavedAtUnix: savedAt, Seq: seq, Workloads: entries})
	if err != nil {
		return abort(fmt.Errorf("store: encoding manifest: %w", err))
	}
	manifest := encodeFile(manifestMagic, body)
	if err := writeFileAtomic(s.dir, ManifestFile, manifest); err != nil {
		return abort(fmt.Errorf("store: installing manifest: %w", err))
	}
	wrote += int64(len(manifest))
	syncDir(s.dir)

	// Committed. Archive this generation per the retention policy, then
	// delete every file neither the new manifest nor a retained
	// generation references.
	pruned := s.archiveAndPruneLocked(seq, manifest, manifestPayload{SavedAtUnix: savedAt, Seq: seq, Workloads: entries})
	if s.legacy {
		os.Remove(filepath.Join(s.dir, SnapshotFile))
		s.legacy = false
	}
	old := s.entries
	s.entries = next
	s.seq = seq
	s.savedAt = savedAt
	stats.Removed = s.deleteUnreferencedLocked(old, pruned)
	stats.Total = len(next)
	stats.Written = len(changed)
	stats.Kept = len(keep)
	return stats, wrote, nil
}

// sweepLocked removes temp files and workload files the manifest does
// not name — the debris of a commit that crashed before its commit
// point (or after it, before cleanup ran).
func (s *Store) sweepLocked() {
	for _, pat := range []string{".tmp-*", ".snapshot-*.tmp", filepath.Join(GenerationsDir, ".tmp-*")} {
		if matches, err := filepath.Glob(filepath.Join(s.dir, pat)); err == nil {
			for _, m := range matches {
				os.Remove(m)
			}
		}
	}
	dir := filepath.Join(s.dir, WorkloadDir)
	names, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	referenced := s.referencedLocked()
	for _, de := range names {
		if !referenced[de.Name()] {
			os.Remove(filepath.Join(dir, de.Name()))
		}
	}
}

// workloadFileName derives a per-commit file name: a sanitized slice of
// the ID for human eyes, the full ID's FNV-64 hash for uniqueness, the
// commit sequence and the store nonce so a new generation never renames
// over a live file.
func workloadFileName(id string, seq uint64, nonce string) string {
	return fmt.Sprintf("%s-%016x-%d-%s.rsnap", sanitizeID(id), fnv1a(id), seq, nonce)
}

// sanitizeID keeps a recognizable, filesystem-safe prefix of the ID.
func sanitizeID(id string) string {
	const maxLen = 40
	b := make([]byte, 0, maxLen)
	for i := 0; i < len(id) && len(b) < maxLen; i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	if len(b) == 0 {
		return "workload"
	}
	return string(b)
}

// fnv1a is the 64-bit FNV-1a hash.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// encodeFile wraps a payload in the self-validating envelope.
func encodeFile(magic string, body []byte) []byte {
	header := fmt.Sprintf("%s v%d crc32=%08x len=%d\n", magic, versionV2, crc32.ChecksumIEEE(body), len(body))
	out := make([]byte, 0, len(header)+len(body))
	out = append(out, header...)
	return append(out, body...)
}

// readChecked reads a file and validates its envelope: magic, version,
// length and checksum. A missing file passes the fs.ErrNotExist through
// for the caller to classify; everything else that fails is ErrCorrupt
// (or a distinct version-skew error, which may be a perfectly valid
// file for another build).
func readChecked(path, magic string, version int) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: %s is missing its header line", ErrCorrupt, filepath.Base(path))
	}
	var v int
	var sum uint32
	var length int
	if n, err := fmt.Sscanf(string(data[:nl]), magic+" v%d crc32=%x len=%d", &v, &sum, &length); err != nil || n != 3 {
		return nil, fmt.Errorf("%w: malformed header %q in %s", ErrCorrupt, string(data[:nl]), filepath.Base(path))
	}
	if v != version {
		return nil, fmt.Errorf("store: unsupported %s version %d in %s (this build reads v%d)", magic, v, filepath.Base(path), version)
	}
	body := data[nl+1:]
	if len(body) != length {
		return nil, fmt.Errorf("%w: %s payload is %d bytes, header says %d (truncated?)", ErrCorrupt, filepath.Base(path), len(body), length)
	}
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: %s checksum %08x does not match header %08x", ErrCorrupt, filepath.Base(path), got, sum)
	}
	return body, nil
}

// writeFileAtomic writes content to dir/name via a fsynced temp file
// and an atomic rename, so readers see the old file or the new one,
// never a mix.
func writeFileAtomic(dir, name string, content []byte) error {
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(content); err != nil {
		return cleanup(err)
	}
	// Flush to stable storage before the rename makes the file visible:
	// otherwise a power cut could leave a fully-renamed but empty file.
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir best-effort fsyncs a directory so completed renames survive a
// crash.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// ── Legacy v1 monolithic format ─────────────────────────────────────────

// v1Payload is the JSON document behind the v1 header line.
type v1Payload struct {
	SavedAtUnix int64      `json:"saved_at_unix"`
	Workloads   []Workload `json:"workloads"`
}

// SaveV1 atomically writes a legacy v1 monolithic snapshot of the given
// workloads into dir, replacing any previous one. Kept for migration
// tests and emergency rollback to pre-v2 builds; production code
// commits through a Store.
func SaveV1(dir string, workloads []Workload) error {
	body, err := json.Marshal(v1Payload{SavedAtUnix: time.Now().Unix(), Workloads: workloads})
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	header := fmt.Sprintf("%s v%d crc32=%08x len=%d\n", snapshotMagic, versionV1, crc32.ChecksumIEEE(body), len(body))
	content := append([]byte(header), body...)
	if err := writeFileAtomic(dir, SnapshotFile, content); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	syncDir(dir)
	return nil
}

// LoadV1 reads and validates a legacy v1 monolithic snapshot in dir. It
// returns ErrNoSnapshot when none exists and an error wrapping
// ErrCorrupt when one exists but fails header, length, checksum or JSON
// validation.
func LoadV1(dir string) ([]Workload, error) {
	p, err := loadV1Payload(dir)
	if err != nil {
		return nil, err
	}
	return p.Workloads, nil
}

func loadV1Payload(dir string) (v1Payload, error) {
	var p v1Payload
	body, err := readChecked(filepath.Join(dir, SnapshotFile), snapshotMagic, versionV1)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return p, fmt.Errorf("%w in %s", ErrNoSnapshot, dir)
		}
		return p, err
	}
	if err := json.Unmarshal(body, &p); err != nil {
		return p, fmt.Errorf("%w: decoding payload: %v", ErrCorrupt, err)
	}
	return p, nil
}
