package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestV1FixtureMigratesBitIdentically is the committed-fixture
// migration gate: a tiny v1 monolithic snapshot checked into testdata
// must load byte-identically through the v2 store — before migration
// (legacy read path), and again after the migration commit rewrites it
// into the per-workload layout. The fixture never changes, so any
// future format drift that silently alters restored state blobs fails
// here, in CI, against bytes written by the v1 implementation of
// record.
func TestV1FixtureMigratesBitIdentically(t *testing.T) {
	dir := t.TempDir()
	fixture, err := os.ReadFile(filepath.Join("testdata", "v1-snapshot.rsnap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile), fixture, 0o644); err != nil {
		t.Fatal(err)
	}
	goldenRaw, err := os.ReadFile(filepath.Join("testdata", "v1-golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var golden []Workload
	if err := json.Unmarshal(goldenRaw, &golden); err != nil {
		t.Fatal(err)
	}

	assertGolden := func(stage string, got []Workload) {
		t.Helper()
		if len(got) != len(golden) {
			t.Fatalf("%s: loaded %d workloads, want %d", stage, len(got), len(golden))
		}
		for i := range golden {
			if got[i].ID != golden[i].ID {
				t.Fatalf("%s: workload %d id %q, want %q", stage, i, got[i].ID, golden[i].ID)
			}
			if !bytes.Equal(got[i].State, golden[i].State) {
				t.Fatalf("%s: workload %q state blob drifted:\ngot  %s\nwant %s",
					stage, got[i].ID, got[i].State, golden[i].State)
			}
		}
	}

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	assertGolden("legacy read", ws)

	// Migrate: one commit moves the fixture into the v2 layout.
	if _, err := st.Commit(ws, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotFile)); !os.IsNotExist(err) {
		t.Fatal("legacy snapshot survived the migration commit")
	}
	ws, err = st.Load()
	if err != nil {
		t.Fatal(err)
	}
	assertGolden("post-migration read", ws)

	// And once more through a cold reopen, as a restarted daemon would.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ws, err = st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	assertGolden("reopened read", ws)
}
