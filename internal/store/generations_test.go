package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wl builds one workload whose blob encodes v, so generations are
// distinguishable by content.
func wl(id string, v int) Workload {
	return Workload{ID: id, State: json.RawMessage(fmt.Sprintf(`{"v":%d}`, v))}
}

// commitGen commits one generation with the given content version.
func commitGen(t *testing.T, st *Store, v int, ids ...string) {
	t.Helper()
	ws := make([]Workload, 0, len(ids))
	for _, id := range ids {
		ws = append(ws, wl(id, v))
	}
	if _, err := st.Commit(ws, nil); err != nil {
		t.Fatalf("commit v%d: %v", v, err)
	}
}

// loadVersions maps workload ID to the blob's content version.
func loadVersions(t *testing.T, st *Store) map[string]int {
	t.Helper()
	ws, err := st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	out := map[string]int{}
	for _, w := range ws {
		var p struct {
			V int `json:"v"`
		}
		if err := json.Unmarshal(w.State, &p); err != nil {
			t.Fatalf("blob for %q: %v", w.ID, err)
		}
		out[w.ID] = p.V
	}
	return out
}

func TestGenerationRetentionKeepsLastN(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	st.SetRetain(3)
	for v := 1; v <= 5; v++ {
		commitGen(t, st, v, "web", "api")
	}
	gens := st.Generations()
	if len(gens) != 3 {
		t.Fatalf("Generations = %+v, want last 3", gens)
	}
	for i, g := range gens {
		if g.Seq != uint64(i+3) || g.Workloads != 2 {
			t.Fatalf("generation %d = %+v, want seq %d with 2 workloads", i, g, i+3)
		}
	}
	if !gens[2].Current || gens[0].Current || gens[1].Current {
		t.Fatalf("current flag misplaced: %+v", gens)
	}
	// 3 retained generations × 2 workloads, all distinct files.
	if files := workloadFiles(t, dir); len(files) != 6 {
		t.Fatalf("have %d workload files, want 6 (3 gens × 2): %v", len(files), files)
	}
}

func TestRetainDisabledByDefault(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	for v := 1; v <= 3; v++ {
		commitGen(t, st, v, "web")
	}
	gens := st.Generations()
	if len(gens) != 1 || !gens[0].Current {
		t.Fatalf("without SetRetain, Generations = %+v, want only current", gens)
	}
	if files := workloadFiles(t, dir); len(files) != 1 {
		t.Fatalf("have %d workload files, want 1: %v", len(files), files)
	}
}

func TestRestoreGeneration(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	st.SetRetain(4)
	commitGen(t, st, 1, "web", "api")
	commitGen(t, st, 2, "web", "api", "batch") // gen 2 adds a workload
	commitGen(t, st, 3, "web")                 // gen 3 drops two

	if err := st.RestoreGeneration(2); err != nil {
		t.Fatalf("RestoreGeneration(2): %v", err)
	}
	got := loadVersions(t, st)
	want := map[string]int{"web": 2, "api": 2, "batch": 2}
	if len(got) != len(want) {
		t.Fatalf("after restore, fleet = %v, want %v", got, want)
	}
	for id, v := range want {
		if got[id] != v {
			t.Fatalf("after restore, %q = v%d, want v%d", id, got[id], v)
		}
	}
	// The restore is itself a new generation; the abandoned timeline
	// (gen 3) is still retained, so the restore can be undone.
	gens := st.Generations()
	last := gens[len(gens)-1]
	if !last.Current || last.Seq != 4 {
		t.Fatalf("restore did not advance the sequence: %+v", gens)
	}
	if err := st.RestoreGeneration(3); err != nil {
		t.Fatalf("undoing the restore via gen 3: %v", err)
	}
	got = loadVersions(t, st)
	if len(got) != 1 || got["web"] != 3 {
		t.Fatalf("after restoring gen 3, fleet = %v, want web v3 only", got)
	}
}

func TestRestoreGenerationUnknown(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	st.SetRetain(2)
	commitGen(t, st, 1, "web")
	err := st.RestoreGeneration(42)
	if err == nil || !strings.Contains(err.Error(), "no retained generation") {
		t.Fatalf("RestoreGeneration(42) err = %v", err)
	}
	// Restoring the current generation is a no-op, not an error.
	if err := st.RestoreGeneration(1); err != nil {
		t.Fatalf("restore of current generation: %v", err)
	}
}

func TestGenerationsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	st.SetRetain(3)
	for v := 1; v <= 3; v++ {
		commitGen(t, st, v, "web")
	}

	// Reopen: the sweep must not eat retained generations' files, and
	// restore must still work.
	st2 := open(t, dir)
	st2.SetRetain(3)
	gens := st2.Generations()
	if len(gens) != 3 {
		t.Fatalf("after reopen, Generations = %+v, want 3", gens)
	}
	if err := st2.RestoreGeneration(1); err != nil {
		t.Fatalf("RestoreGeneration(1) after reopen: %v", err)
	}
	if got := loadVersions(t, st2); got["web"] != 1 {
		t.Fatalf("restored fleet = %v, want web v1", got)
	}
}

func TestPruneDropsOldGenerationFiles(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	st.SetRetain(2)
	for v := 1; v <= 4; v++ {
		commitGen(t, st, v, "web")
	}
	// Only gens 3 and 4 retained → exactly 2 workload files and 2
	// archive manifests.
	if files := workloadFiles(t, dir); len(files) != 2 {
		t.Fatalf("have %d workload files, want 2: %v", len(files), files)
	}
	des, err := os.ReadDir(filepath.Join(dir, GenerationsDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 2 {
		t.Fatalf("have %d archived manifests, want 2", len(des))
	}
	if err := st.RestoreGeneration(1); err == nil {
		t.Fatal("RestoreGeneration(1) succeeded after gen 1 was pruned")
	}
}

func TestSharedFilesSurvivePrune(t *testing.T) {
	// An unchanged workload keeps its file across generations; pruning a
	// generation must not delete a file newer generations still name.
	dir := t.TempDir()
	st := open(t, dir)
	st.SetRetain(2)
	commitGen(t, st, 1, "web")
	if _, err := st.Commit(nil, []string{"web"}); err != nil { // gen 2: same file kept
		t.Fatal(err)
	}
	if _, err := st.Commit(nil, []string{"web"}); err != nil { // gen 3: prunes gen 1
		t.Fatal(err)
	}
	if got := loadVersions(t, st); got["web"] != 1 {
		t.Fatalf("shared file vanished with the pruned generation: %v", got)
	}
}

func TestLoadTolerantQuarantinesBadFile(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	commitGen(t, st, 1, "web", "api", "batch")

	// Corrupt api's file on disk.
	var apiFile string
	for name := range workloadFiles(t, dir) {
		if strings.HasPrefix(name, "api-") {
			apiFile = name
		}
	}
	path := filepath.Join(dir, WorkloadDir, apiFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict Load refuses; tolerant load boots the survivors.
	if _, err := st.Load(); err == nil {
		t.Fatal("strict Load accepted a corrupt workload file")
	}
	ws, quarantined, err := st.LoadTolerant()
	if err != nil {
		t.Fatalf("LoadTolerant: %v", err)
	}
	if len(ws) != 2 {
		t.Fatalf("LoadTolerant returned %d workloads, want 2 survivors", len(ws))
	}
	if len(quarantined) != 1 || quarantined[0].ID != "api" || quarantined[0].Reason == "" {
		t.Fatalf("quarantined = %+v", quarantined)
	}
	// The bad file moved into quarantine/ and the manifest no longer
	// names it: strict Load now succeeds with the survivors.
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, apiFile)); err != nil {
		t.Fatalf("quarantined file not preserved: %v", err)
	}
	got, err := st.Load()
	if err != nil {
		t.Fatalf("Load after quarantine: %v", err)
	}
	if len(got) != 2 || st.Has("api") {
		t.Fatalf("manifest still covers the quarantined workload")
	}
	// And the repair is durable: a fresh Open sees the same two.
	st2 := open(t, dir)
	got2, err := st2.Load()
	if err != nil || len(got2) != 2 {
		t.Fatalf("after reopen, Load = %d workloads, %v", len(got2), err)
	}
}

func TestLoadTolerantMissingFile(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	commitGen(t, st, 1, "web", "api")
	for name := range workloadFiles(t, dir) {
		if strings.HasPrefix(name, "web-") {
			os.Remove(filepath.Join(dir, WorkloadDir, name))
		}
	}
	ws, quarantined, err := st.LoadTolerant()
	if err != nil {
		t.Fatalf("LoadTolerant: %v", err)
	}
	if len(ws) != 1 || ws[0].ID != "api" {
		t.Fatalf("survivors = %+v, want just api", ws)
	}
	if len(quarantined) != 1 || quarantined[0].ID != "web" {
		t.Fatalf("quarantined = %+v, want web", quarantined)
	}
}

func TestLoadTolerantEmptyStore(t *testing.T) {
	st := open(t, t.TempDir())
	_, _, err := st.LoadTolerant()
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}

func TestQuarantineByID(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	commitGen(t, st, 1, "web", "api")
	if err := st.Quarantine("web", "engine rejected blob"); err != nil {
		t.Fatalf("Quarantine: %v", err)
	}
	if st.Has("web") {
		t.Fatal("manifest still covers quarantined workload")
	}
	ws, err := st.Load()
	if err != nil || len(ws) != 1 || ws[0].ID != "api" {
		t.Fatalf("Load = %+v, %v", ws, err)
	}
	des, err := os.ReadDir(filepath.Join(dir, QuarantineDir))
	if err != nil || len(des) != 1 {
		t.Fatalf("quarantine dir = %v entries, %v", len(des), err)
	}
	// Quarantining an unknown workload is a no-op.
	if err := st.Quarantine("nope", "x"); err != nil {
		t.Fatalf("Quarantine(unknown): %v", err)
	}
}
