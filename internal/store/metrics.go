package store

// Observability for the persistence layer. Instrument registers the
// store's commit-side metrics into an internal/metrics.Registry; once
// attached, every Commit — background tick, admin endpoint, durable
// delete — feeds them. The store works identically uninstrumented (all
// hooks are nil-checked), so tests and tools that only move snapshots
// around pay nothing.

import (
	"time"

	"robustscaler/internal/metrics"
)

// storeMetrics are the instruments Commit updates. The two gauges are
// static values refreshed at commit time rather than scrape-time
// functions: a GaugeFunc would have to take s.mu, and a scrape landing
// during a slow commit (the lock is held across every file fsync)
// would stall the whole /metrics page exactly when it matters most.
type storeMetrics struct {
	commits        *metrics.Counter
	commitFailures *metrics.Counter
	filesWritten   *metrics.Counter
	bytesWritten   *metrics.Counter
	commitSeconds  *metrics.Histogram
	manifestSeq    *metrics.Gauge
	workloads      *metrics.Gauge
}

// Instrument registers this store's metrics into m and starts feeding
// them: the counters and the commit-duration histogram advance as
// commits run, the manifest-generation and workload-count gauges are
// primed here and refreshed on every successful commit. Call once at
// startup.
func (s *Store) Instrument(m *metrics.Registry) {
	sm := &storeMetrics{
		commits: m.Counter("robustscaler_store_commits_total",
			"Snapshot commits that reached the manifest rename."),
		commitFailures: m.Counter("robustscaler_store_commit_failures_total",
			"Snapshot commits that failed (previous manifest kept)."),
		filesWritten: m.Counter("robustscaler_store_files_written_total",
			"Workload snapshot files written (manifest writes excluded)."),
		bytesWritten: m.Counter("robustscaler_store_bytes_written_total",
			"Bytes written into the data dir, headers and manifests included."),
		commitSeconds: m.Histogram("robustscaler_store_commit_seconds",
			"Wall time of one snapshot commit (file writes + manifest rename).", metrics.DefBuckets),
		manifestSeq: m.Gauge("robustscaler_store_manifest_seq",
			"Committed manifest generation; 0 before the first commit."),
		workloads: m.Gauge("robustscaler_store_workloads",
			"Workloads the committed snapshot covers."),
	}
	// Prime the gauges from the opened state (Len reads the legacy v1
	// snapshot when migration is pending — once, at startup).
	count := s.Len()
	s.mu.Lock()
	sm.manifestSeq.Set(float64(s.seq))
	sm.workloads.Set(float64(count))
	s.metrics = sm
	s.mu.Unlock()
}

// recordCommitLocked folds one Commit outcome into the instruments;
// called with s.mu held (Commit's own lock), where s.metrics, s.seq
// and the new manifest are stable.
func (s *Store) recordCommitLocked(dur time.Duration, files int, bytes int64, err error) {
	sm := s.metrics
	if sm == nil {
		return
	}
	sm.commitSeconds.Observe(dur.Seconds())
	if err != nil {
		sm.commitFailures.Inc()
		return
	}
	sm.commits.Inc()
	sm.filesWritten.Add(uint64(files))
	sm.bytesWritten.Add(uint64(bytes))
	sm.manifestSeq.Set(float64(s.seq))
	sm.workloads.Set(float64(len(s.entries)))
}
