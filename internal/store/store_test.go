package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sample returns a small but non-trivial workload set.
func sample() []Workload {
	return []Workload{
		{ID: "ci-runners", State: json.RawMessage(`{"dt":60,"arrivals":[1,2,3]}`)},
		{ID: "registry-eu", State: json.RawMessage(`{"dt":30,"arrivals":[]}`)},
	}
}

// open opens a Store, failing the test on error.
func open(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// workloadFiles lists the per-workload snapshot files in dir.
func workloadFiles(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, WorkloadDir))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, e := range entries {
		out[e.Name()] = true
	}
	return out
}

func TestCommitLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	want := sample()
	stats, err := st.Commit(want, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != 2 || stats.Written != 2 || stats.Kept != 0 {
		t.Fatalf("stats = %+v, want 2 written", stats)
	}
	got, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// A fresh Store over the same dir reads the same state.
	got, err = open(t, dir).Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened round trip mismatch: got %+v", got)
	}
}

func TestIncrementalCommitRewritesOnlyChanged(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	if _, err := st.Commit(sample(), nil); err != nil {
		t.Fatal(err)
	}
	before := workloadFiles(t, dir)

	// An idle tick: nothing changed, nothing written.
	stats, err := st.Commit(nil, []string{"ci-runners", "registry-eu"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != 0 || stats.Kept != 2 || stats.Total != 2 {
		t.Fatalf("idle commit stats = %+v, want 0 written / 2 kept", stats)
	}
	if got := workloadFiles(t, dir); !reflect.DeepEqual(got, before) {
		t.Fatalf("idle commit touched workload files: %v -> %v", before, got)
	}

	// One dirty workload out of two: exactly one new file, the other
	// file byte-untouched.
	changed := Workload{ID: "ci-runners", State: json.RawMessage(`{"dt":60,"arrivals":[1,2,3,4]}`)}
	stats, err = st.Commit([]Workload{changed}, []string{"registry-eu"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != 1 || stats.Kept != 1 || stats.Removed != 1 {
		t.Fatalf("dirty commit stats = %+v, want 1 written / 1 kept / 1 removed", stats)
	}
	after := workloadFiles(t, dir)
	if len(after) != 2 {
		t.Fatalf("workload dir holds %d files, want 2: %v", len(after), after)
	}
	kept := 0
	for name := range after {
		if before[name] {
			kept++
		}
	}
	if kept != 1 {
		t.Fatalf("want exactly 1 file carried over, got %d (%v -> %v)", kept, before, after)
	}
	got, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := []Workload{changed, sample()[1]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after dirty commit: got %+v, want %+v", got, want)
	}
}

func TestCommitDropsWorkloadsLeftOut(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	if _, err := st.Commit(sample(), nil); err != nil {
		t.Fatal(err)
	}
	stats, err := st.Commit(nil, []string{"registry-eu"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != 1 || stats.Removed != 1 {
		t.Fatalf("drop commit stats = %+v, want total 1 / removed 1", stats)
	}
	got, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "registry-eu" {
		t.Fatalf("after drop: %+v", got)
	}
	if st.Has("ci-runners") {
		t.Fatal("dropped workload still reported by Has")
	}
}

func TestCommitRejectsUncoveredKeep(t *testing.T) {
	st := open(t, t.TempDir())
	if _, err := st.Commit(nil, []string{"ghost"}); err == nil {
		t.Fatal("keeping an uncommitted workload must fail")
	}
}

func TestLoadEmptyStore(t *testing.T) {
	st := open(t, t.TempDir())
	if _, err := st.Load(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
	// A committed empty fleet is a valid (empty) snapshot, not a cold
	// boot: a restart must not mistake "everything was deleted" for
	// "never saved".
	if _, err := st.Commit(nil, nil); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load()
	if err != nil {
		t.Fatalf("load of committed empty fleet: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty fleet loaded %d workloads", len(got))
	}
}

func TestOpenSweepsOrphans(t *testing.T) {
	// A crash between workload-file writes and the manifest rename
	// leaves next-generation files the manifest never names; the next
	// Open must remove them and serve the previous commit.
	dir := t.TempDir()
	st := open(t, dir)
	if _, err := st.Commit(sample(), nil); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"orphan-9999-zz.rsnap", ".tmp-123"} {
		if err := os.WriteFile(filepath.Join(dir, WorkloadDir, name), []byte("partial"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-manifest"), []byte("partial"), 0o600); err != nil {
		t.Fatal(err)
	}
	st2 := open(t, dir)
	got, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sample()) {
		t.Fatalf("load after orphan sweep: %+v", got)
	}
	if files := workloadFiles(t, dir); len(files) != 2 {
		t.Fatalf("orphans not swept: %v", files)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-manifest")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp manifest not swept")
	}
}

// corruptFile applies f to a file's bytes and writes them back.
func corruptFile(t *testing.T, path string, f func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsCorruptManifest(t *testing.T) {
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-2] ^= 0xff
			return out
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"no header", func([]byte) []byte { return []byte("{}") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			st := open(t, dir)
			if _, err := st.Commit(sample(), nil); err != nil {
				t.Fatal(err)
			}
			corruptFile(t, filepath.Join(dir, ManifestFile), tc.mut)
			if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestLoadRejectsTamperedWorkloadFile(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	if _, err := st.Commit(sample(), nil); err != nil {
		t.Fatal(err)
	}
	var victim string
	for name := range workloadFiles(t, dir) {
		victim = name
		break
	}
	corruptFile(t, filepath.Join(dir, WorkloadDir, victim), func(b []byte) []byte {
		out := append([]byte(nil), b...)
		out[len(out)-2] ^= 0xff
		return out
	})
	if _, err := open(t, dir).Load(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of tampered workload file = %v, want ErrCorrupt", err)
	}
}

func TestLoadRejectsMissingWorkloadFile(t *testing.T) {
	// A manifest naming a file that is gone is a torn directory, not a
	// cold boot: fail loudly instead of restoring a partial fleet.
	dir := t.TempDir()
	st := open(t, dir)
	if _, err := st.Commit(sample(), nil); err != nil {
		t.Fatal(err)
	}
	st2 := open(t, dir)
	for name := range workloadFiles(t, dir) {
		if err := os.Remove(filepath.Join(dir, WorkloadDir, name)); err != nil {
			t.Fatal(err)
		}
		break
	}
	if _, err := st2.Load(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load with missing workload file = %v, want ErrCorrupt", err)
	}
}

func TestManifestVersionSkewIsNotCorruption(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	if _, err := st.Commit(sample(), nil); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(dir, ManifestFile), func(b []byte) []byte {
		return []byte(strings.Replace(string(b), " v2 ", " v999 ", 1))
	})
	_, err := Open(dir)
	if err == nil || !strings.Contains(err.Error(), "version 999") {
		t.Fatalf("err = %v, want unsupported-version error", err)
	}
	// Version skew is not corruption: the file may be perfectly valid
	// for a newer build, so it must not match ErrCorrupt.
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("version mismatch misreported as corruption")
	}
}

// ── v1 legacy format & migration ────────────────────────────────────────

func TestV1SaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sample()
	if err := SaveV1(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadV1(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestV1LoadMissingSnapshot(t *testing.T) {
	if _, err := LoadV1(t.TempDir()); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}

func TestV1LoadRejectsCorruption(t *testing.T) {
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-2] ^= 0xff
			return out
		}},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-7] }},
		{"missing header", func(b []byte) []byte { return []byte("{}") }},
		{"garbage header", func(b []byte) []byte { return append([]byte("not-a-snapshot v1 x=y\n"), b...) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := SaveV1(dir, sample()); err != nil {
				t.Fatal(err)
			}
			corruptFile(t, filepath.Join(dir, SnapshotFile), tc.mut)
			if _, err := LoadV1(dir); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestMigrationFromV1(t *testing.T) {
	// Read-side migration is transparent: a directory holding only a v1
	// monolithic snapshot loads as-is, the first commit writes the v2
	// layout, removes the legacy file, and subsequent opens read v2.
	dir := t.TempDir()
	want := sample()
	if err := SaveV1(dir, want); err != nil {
		t.Fatal(err)
	}
	st := open(t, dir)
	got, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy load mismatch: got %+v", got)
	}
	if st.Has(want[0].ID) {
		t.Fatal("legacy mode must report Has=false so the migration commit rewrites everything")
	}
	stats, err := st.Commit(got, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != len(want) {
		t.Fatalf("migration commit wrote %d, want %d", stats.Written, len(want))
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("legacy snapshot not removed after migration commit")
	}
	got, err = open(t, dir).Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-migration load mismatch: got %+v", got)
	}
}

func TestMigrationCrashAfterCommitPoint(t *testing.T) {
	// A crash between the manifest rename and the legacy-file removal
	// leaves both on disk; the manifest is the commit point, so the next
	// Open serves v2 and clears the leftover v1 file.
	dir := t.TempDir()
	if err := SaveV1(dir, []Workload{{ID: "stale", State: json.RawMessage(`{}`)}}); err != nil {
		t.Fatal(err)
	}
	// Capture the pre-migration bytes so the "leftover" really is the
	// old file (older saved_at than the manifest), as in a real crash.
	legacy, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	st := open(t, dir)
	if _, err := st.Commit(sample(), nil); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash by resurrecting the legacy file post-commit.
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := open(t, dir).Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sample()) {
		t.Fatalf("manifest did not win over leftover legacy file: %+v", got)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("leftover legacy snapshot not removed")
	}
}

func TestRollbackNewerV1FailsLoudly(t *testing.T) {
	// After a v2 migration, a pre-v2 build may run for a while (a
	// rollback) and write fresh v1 snapshots holding data the manifest
	// has never seen. Re-upgrading must not silently discard them.
	dir := t.TempDir()
	st := open(t, dir)
	if _, err := st.Commit(sample(), nil); err != nil {
		t.Fatal(err)
	}
	// Forge a v1 snapshot stamped strictly after the manifest.
	manifest, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	var p manifestPayload
	if err := json.Unmarshal(manifest[bytes.IndexByte(manifest, '\n')+1:], &p); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(v1Payload{
		SavedAtUnix: p.SavedAtUnix + 10,
		Workloads:   []Workload{{ID: "rollback-era", State: json.RawMessage(`{}`)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	header := fmt.Sprintf("%s v%d crc32=%08x len=%d\n", snapshotMagic, versionV1, crc32.ChecksumIEEE(body), len(body))
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile), append([]byte(header), body...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "newer than") {
		t.Fatalf("Open with newer v1 snapshot = %v, want loud rollback error", err)
	}
	// The operator resolves it by removing one side; legacy wins here.
	if err := os.Remove(filepath.Join(dir, ManifestFile)); err != nil {
		t.Fatal(err)
	}
	got, err := open(t, dir).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "rollback-era" {
		t.Fatalf("legacy state after operator resolution = %+v", got)
	}
}

func TestWorkloadFileNameSanitization(t *testing.T) {
	dir := t.TempDir()
	st := open(t, dir)
	hostile := []Workload{
		{ID: "../../etc/passwd", State: json.RawMessage(`{}`)},
		{ID: "weird id/with:stuff", State: json.RawMessage(`{}`)},
	}
	if _, err := st.Commit(hostile, nil); err != nil {
		t.Fatal(err)
	}
	// Everything must land inside the workloads dir, and load back.
	for name := range workloadFiles(t, dir) {
		if strings.Contains(name, "/") {
			t.Fatalf("unsanitized file name %q", name)
		}
	}
	got, err := open(t, dir).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("hostile ids round trip: %+v", got)
	}
}
