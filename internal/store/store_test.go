package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sample returns a small but non-trivial workload set.
func sample() []Workload {
	return []Workload{
		{ID: "ci-runners", State: json.RawMessage(`{"dt":60,"arrivals":[1,2,3]}`)},
		{ID: "registry-eu", State: json.RawMessage(`{"dt":30,"arrivals":[]}`)},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sample()
	if err := Save(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestSaveReplacesPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, sample()); err != nil {
		t.Fatal(err)
	}
	want := []Workload{{ID: "only", State: json.RawMessage(`{}`)}}
	if err := Save(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("second save not visible: got %+v", got)
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, sample()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != SnapshotFile {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("dir holds %v, want only %s", names, SnapshotFile)
	}
}

func TestLoadMissingSnapshot(t *testing.T) {
	_, err := Load(t.TempDir())
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}

func TestLoadSweepsOrphanedTempFiles(t *testing.T) {
	// A crash between CreateTemp and rename leaves a temp file behind;
	// the next boot's Load must clean it up, with or without a valid
	// snapshot alongside.
	dir := t.TempDir()
	if err := Save(dir, sample()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{".snapshot-123.tmp", ".snapshot-zzz.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Load(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != SnapshotFile {
		t.Fatalf("orphaned temp files not swept: %v", entries)
	}
}

// corrupt applies f to the snapshot bytes and writes them back.
func corrupt(t *testing.T, dir string, f func([]byte) []byte) {
	t.Helper()
	path := filepath.Join(dir, SnapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-2] ^= 0xff
			return out
		}},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-7] }},
		{"missing header", func(b []byte) []byte { return []byte("{}") }},
		{"garbage header", func(b []byte) []byte { return append([]byte("not-a-snapshot v1 x=y\n"), b...) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := Save(dir, sample()); err != nil {
				t.Fatal(err)
			}
			corrupt(t, dir, tc.mut)
			_, err := Load(dir)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestLoadRejectsFutureVersion(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, sample()); err != nil {
		t.Fatal(err)
	}
	corrupt(t, dir, func(b []byte) []byte {
		return []byte(strings.Replace(string(b), " v1 ", " v999 ", 1))
	})
	_, err := Load(dir)
	if err == nil || !strings.Contains(err.Error(), "version 999") {
		t.Fatalf("err = %v, want unsupported-version error", err)
	}
	// Version skew is not corruption: the file may be perfectly valid for
	// a newer build, so it must not match ErrCorrupt.
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("version mismatch misreported as corruption")
	}
}

func TestLoadRejectsCheckedPayloadJSON(t *testing.T) {
	// A snapshot whose header is self-consistent but whose payload is not
	// JSON: the CRC passes, the decode must still fail cleanly.
	dir := t.TempDir()
	if err := Save(dir, nil); err != nil {
		t.Fatal(err)
	}
	corrupt(t, dir, func([]byte) []byte {
		body := []byte("not json at all")
		return append([]byte("robustscaler-snapshot v1 crc32=4d390002 len=15\n"), body...)
	})
	_, err := Load(dir)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
