package periodicity

import (
	"math"
	"testing"

	"robustscaler/internal/gen"
	"robustscaler/internal/timeseries"
)

// Property tests against the scenario workload generators: the detector
// must recover the periods the generator put in, and must not invent
// one the generator left out. These pin the detector and the generator
// family to each other — if either drifts, the shapes stop agreeing.

// binned draws a generated trace and bins its arrivals.
func binned(t *testing.T, g gen.Generator, seed int64, dt float64) *timeseries.Series {
	t.Helper()
	f := g.Frame()
	qs := g.Generate(seed)
	if len(qs) == 0 {
		t.Fatal("generator produced no queries")
	}
	arr := make([]float64, len(qs))
	for i, q := range qs {
		arr[i] = q.Arrival
	}
	return timeseries.FromArrivals(arr, f.Start, f.End, dt)
}

func dwFrame() gen.Frame {
	return gen.Frame{Start: 0, End: 4 * gen.Week, TrainEnd: 3 * gen.Week,
		MeanPending: 13, MeanService: 30}
}

// TestDetectRecoversDiurnalAndWeekly: a diurnal+weekly sinusoid mix
// must yield both generated periods — the unrestricted scan finds one
// of them, and restricting the candidate list to either recovers that
// one specifically.
func TestDetectRecoversDiurnalAndWeekly(t *testing.T) {
	g := gen.MultiPeriodic{ID: "prop_dw", Span: dwFrame(), Level: 0.05,
		Harmonics: []gen.Harmonic{{Period: gen.Day, Amp: 0.6}, {Period: gen.Week, Amp: 0.3}}}
	const dt = 600.0
	s := binned(t, g, 11, dt)

	opt := DefaultOptions()
	opt.AggregateWindow = 6 // 1 h samples
	opt.MinPeriod = 4

	dayBins := int(gen.Day / dt)   // 144
	weekBins := int(gen.Week / dt) // 1008

	res, ok := Detect(s, opt)
	if !ok {
		t.Fatal("no period detected in a diurnal+weekly mix")
	}
	gotSec := float64(res.Period) * dt
	if math.Abs(gotSec-gen.Day) > 0.1*gen.Day && math.Abs(gotSec-gen.Week) > 0.1*gen.Week {
		t.Fatalf("unrestricted detection found %g s, want ≈ day or week", gotSec)
	}

	for _, tc := range []struct {
		name   string
		cands  []int
		period float64
	}{
		{"day", []int{dayBins}, gen.Day},
		{"week", []int{weekBins}, gen.Week},
	} {
		opt := opt
		opt.CandidatePeriods = tc.cands
		res, ok := Detect(s, opt)
		if !ok {
			t.Fatalf("%s: restricted detection found nothing", tc.name)
		}
		if got := float64(res.Period) * dt; math.Abs(got-tc.period) > 0.1*tc.period {
			t.Fatalf("%s: detected %g s, want ≈ %g", tc.name, got, tc.period)
		}
	}
}

// TestDetectRejectsGeneratedNoise: aperiodic generator shapes — a flat
// Poisson stream and heavy-tailed bursts — must not produce a spurious
// period, restricted or not.
func TestDetectRejectsGeneratedNoise(t *testing.T) {
	flat := gen.MultiPeriodic{ID: "prop_flat", Span: dwFrame(), Level: 0.05}
	bursty := gen.HeavyTail{ID: "prop_bursty",
		Span:    gen.Frame{Start: 0, End: 2 * gen.Day, TrainEnd: gen.Day, MeanPending: 13, MeanService: 30},
		MeanGap: 20, TailIndex: 1.5}

	opt := DefaultOptions()
	opt.AggregateWindow = 6
	opt.MinPeriod = 4

	for _, tc := range []struct {
		name string
		g    gen.Generator
		dt   float64
	}{
		{"flat poisson", flat, 600},
		{"heavy tail", bursty, 60},
	} {
		s := binned(t, tc.g, 13, tc.dt)
		if res, ok := Detect(s, opt); ok {
			t.Fatalf("%s: spurious period %d bins (power %g, acf %g)", tc.name, res.Period, res.Power, res.ACF)
		}
		// A candidate restriction must not conjure the period either.
		ropt := opt
		ropt.CandidatePeriods = []int{int(gen.Day / tc.dt)}
		if res, ok := Detect(s, ropt); ok {
			t.Fatalf("%s: restriction invented period %d bins", tc.name, res.Period)
		}
	}
}
