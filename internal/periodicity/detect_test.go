package periodicity

import (
	"math"
	"math/rand"
	"testing"

	"robustscaler/internal/timeseries"
)

// periodicSeries builds a sinusoid-plus-noise count series with the given
// period in bins.
func periodicSeries(rng *rand.Rand, n, period int, amp, base, noise float64) *timeseries.Series {
	s := timeseries.New(0, 60, n)
	for i := range s.Values {
		v := base + amp*math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		s.Values[i] = v
	}
	return s
}

func TestDetectCleanPeriodicSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, period := range []int{24, 60, 144} {
		s := periodicSeries(rng, period*8, period, 10, 20, 0.5)
		res, ok := Detect(s, DefaultOptions())
		if !ok {
			t.Fatalf("period %d not detected", period)
		}
		if math.Abs(float64(res.Period-period)) > float64(period)/10 {
			t.Fatalf("period %d detected as %d", period, res.Period)
		}
	}
}

func TestDetectNoisyPeriodicSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := periodicSeries(rng, 1200, 100, 8, 15, 4) // SNR = 2
	res, ok := Detect(s, DefaultOptions())
	if !ok {
		t.Fatal("noisy periodic signal not detected")
	}
	if res.Period < 90 || res.Period > 110 {
		t.Fatalf("detected period %d, want ≈100", res.Period)
	}
}

func TestDetectWithOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := periodicSeries(rng, 1000, 125, 10, 20, 1)
	// Inject a huge burst (like the Alibaba day-4 anomaly).
	for i := 400; i < 410; i++ {
		s.Values[i] += 500
	}
	res, ok := Detect(s, DefaultOptions())
	if !ok {
		t.Fatal("periodic signal with outliers not detected")
	}
	if res.Period < 112 || res.Period > 138 {
		t.Fatalf("detected period %d, want ≈125", res.Period)
	}
}

func TestDetectRejectsWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	falsePositives := 0
	for trial := 0; trial < 10; trial++ {
		s := timeseries.New(0, 60, 600)
		for i := range s.Values {
			s.Values[i] = math.Abs(10 + 3*rng.NormFloat64())
		}
		if _, ok := Detect(s, DefaultOptions()); ok {
			falsePositives++
		}
	}
	if falsePositives > 1 {
		t.Fatalf("white noise produced %d/10 false detections", falsePositives)
	}
}

func TestDetectRejectsShortSeries(t *testing.T) {
	s := timeseries.New(0, 60, 5)
	if _, ok := Detect(s, DefaultOptions()); ok {
		t.Fatal("detected a period in a 5-point series")
	}
}

func TestDetectWithAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Sparse counts: Poisson-thin traffic whose hourly cycle only shows up
	// after aggregation (the Sec. IV motivation).
	period := 120
	s := timeseries.New(0, 60, period*10)
	for i := range s.Values {
		rate := 0.5 + 0.45*math.Sin(2*math.Pi*float64(i)/float64(period))
		// crude Poisson draw via exponential gaps
		cnt := 0
		acc := rng.ExpFloat64() / math.Max(rate, 1e-9)
		for acc < 1 {
			cnt++
			acc += rng.ExpFloat64() / math.Max(rate, 1e-9)
		}
		s.Values[i] = float64(cnt)
	}
	opt := DefaultOptions()
	opt.AggregateWindow = 10
	res, ok := Detect(s, opt)
	if !ok {
		t.Fatal("aggregated sparse periodic traffic not detected")
	}
	if res.Period < 100 || res.Period > 140 {
		t.Fatalf("detected period %d bins, want ≈120", res.Period)
	}
}

func TestDetectConstantSeries(t *testing.T) {
	s := timeseries.New(0, 60, 500)
	for i := range s.Values {
		s.Values[i] = 42
	}
	if _, ok := Detect(s, DefaultOptions()); ok {
		t.Fatal("constant series should have no period")
	}
}
