package periodicity

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := make([]complex128, n)
		copy(got, x)
		FFT(got)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*(1+cmplx.Abs(want[i])) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 64)
	orig := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	FFT(x)
	IFFT(x)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("round trip bin %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=6")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestPeriodogramParseval(t *testing.T) {
	// Parseval: Σ|x|² == Σ|X|²/N over the padded transform. Periodogram
	// divides by len(x) instead, so check the peak is at the right bin for
	// a pure cosine and that DC carries the mean.
	n := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * float64(i) / 32) // period 32
	}
	power, padded := Periodogram(x)
	// Strongest non-DC bin should be at k = padded/32.
	best, bestVal := 0, 0.0
	for k := 1; k < len(power); k++ {
		if power[k] > bestVal {
			best, bestVal = k, power[k]
		}
	}
	wantBin := padded / 32
	if best != wantBin {
		t.Fatalf("peak at bin %d, want %d", best, wantBin)
	}
}

func TestACFPeriodicSignal(t *testing.T) {
	n := 400
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/50) + 3
	}
	acf := ACF(x, 120)
	if math.Abs(acf[0]-1) > 1e-12 {
		t.Fatalf("ACF(0) = %g, want 1", acf[0])
	}
	// The biased estimator shrinks by (1 − lag/n) = 0.875 at lag 50.
	if acf[50] < 0.85 {
		t.Fatalf("ACF at true period = %g, want ≥ 0.85", acf[50])
	}
	if acf[25] > 0 {
		t.Fatalf("ACF at half period = %g, want negative", acf[25])
	}
}

func TestACFConstantSeries(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	acf := ACF(x, 4)
	if acf[0] != 1 {
		t.Fatalf("constant ACF(0) = %g", acf[0])
	}
	for lag := 1; lag <= 4; lag++ {
		if acf[lag] != 0 {
			t.Fatalf("constant ACF(%d) = %g, want 0", lag, acf[lag])
		}
	}
}

func TestACFMaxLagClamp(t *testing.T) {
	x := []float64{1, 2, 3}
	acf := ACF(x, 99)
	if len(acf) != 3 {
		t.Fatalf("ACF length %d, want clamp to n", len(acf))
	}
}
