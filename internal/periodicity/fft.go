// Package periodicity detects cyclic patterns in QPS series. It stands in
// for the RobustPeriod detector the paper cites [18]: a periodogram over a
// median-detrended, outlier-clipped, time-aggregated series, cross-checked
// against the autocorrelation function. The detected period length L feeds
// the DL regularization term of the NHPP loss.
package periodicity

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 Cooley–Tukey FFT of x. len(x) must be a
// power of two.
func FFT(x []complex128) {
	fftDir(x, false)
}

// IFFT computes the inverse FFT (including the 1/n normalization).
func IFFT(x []complex128) {
	fftDir(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftDir(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("periodicity: FFT length %d not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// nextPow2 returns the smallest power of two ≥ n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Periodogram returns the power spectrum |FFT(x)|²/n at frequencies
// k = 0..n/2 after zero-padding x to the next power of two ≥ 2·len(x)
// (padding reduces spectral leakage when len(x) is not a power of two).
// The returned padded length is needed to convert frequency bins back to
// periods in samples.
func Periodogram(x []float64) (power []float64, padded int) {
	n := len(x)
	if n == 0 {
		return nil, 0
	}
	padded = nextPow2(2 * n)
	buf := make([]complex128, padded)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	FFT(buf)
	half := padded/2 + 1
	power = make([]float64, half)
	for k := 0; k < half; k++ {
		power[k] = real(buf[k])*real(buf[k]) + imag(buf[k])*imag(buf[k])
	}
	for k := range power {
		power[k] /= float64(n)
	}
	return power, padded
}

// ACF returns the (biased) autocorrelation function of x at lags
// 0..maxLag, computed via the Wiener–Khinchin theorem in O(n log n).
func ACF(x []float64, maxLag int) []float64 {
	n := len(x)
	if n == 0 || maxLag < 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	padded := nextPow2(2 * n)
	buf := make([]complex128, padded)
	for i, v := range x {
		buf[i] = complex(v-mean, 0)
	}
	FFT(buf)
	for i, c := range buf {
		buf[i] = complex(real(c)*real(c)+imag(c)*imag(c), 0)
	}
	IFFT(buf)
	out := make([]float64, maxLag+1)
	c0 := real(buf[0])
	if c0 <= 0 {
		// Constant series: define ACF as 1 at lag 0, 0 elsewhere.
		out[0] = 1
		return out
	}
	for lag := 0; lag <= maxLag; lag++ {
		out[lag] = real(buf[lag]) / c0
	}
	return out
}
