package periodicity

import (
	"math"
	"math/rand"
	"testing"

	"robustscaler/internal/timeseries"
)

// BenchmarkFFT measures the radix-2 transform at periodogram size.
func BenchmarkFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 8192)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFT(buf)
	}
}

// BenchmarkDetect measures end-to-end period detection on a two-week
// hourly series.
func BenchmarkDetect(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := timeseries.New(0, 3600, 336)
	for i := range s.Values {
		s.Values[i] = 20 + 10*math.Sin(2*math.Pi*float64(i)/24) + 2*rng.NormFloat64()
	}
	opt := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Detect(s, opt); !ok {
			b.Fatal("detection failed")
		}
	}
}

// BenchmarkACF measures the Wiener–Khinchin autocorrelation.
func BenchmarkACF(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ACF(x, 1024)
	}
}
