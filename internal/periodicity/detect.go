package periodicity

import (
	"math"
	"sort"

	"robustscaler/internal/timeseries"
)

// Options tunes the detector. The zero value is not usable; use
// DefaultOptions.
type Options struct {
	// AggregateWindow pools this many bins by averaging before detection
	// (Sec. IV time aggregation). 1 disables aggregation.
	AggregateWindow int
	// MaxPeriodFrac caps candidate periods at this fraction of the series
	// length; at least ~3 full cycles must be observed for a credible
	// detection.
	MaxPeriodFrac float64
	// MinPeriod is the smallest admissible period in (aggregated) samples.
	MinPeriod int
	// SignificanceLevel is the Fisher-style false-alarm probability for the
	// periodogram peak test under the white-noise null.
	SignificanceLevel float64
	// ACFThreshold requires the autocorrelation at the candidate lag to
	// exceed this value.
	ACFThreshold float64
	// WinsorK clips values beyond K robust standard deviations before
	// detection; ≤0 disables clipping.
	WinsorK float64
	// CandidatePeriods restricts detection to these periods, expressed in
	// original (pre-aggregation) bins, each matched with ±10% tolerance to
	// absorb frequency quantization. Empty scans every period. With a
	// restriction in place the harmonic-escalation step is skipped: the
	// caller has declared the admissible period set, so the detector must
	// not wander off to an unlisted multiple.
	CandidatePeriods []int
}

// DefaultOptions returns the detector configuration used throughout the
// experiments.
func DefaultOptions() Options {
	return Options{
		AggregateWindow:   1,
		MaxPeriodFrac:     1.0 / 3.0,
		MinPeriod:         4,
		SignificanceLevel: 0.01,
		ACFThreshold:      0.2,
		WinsorK:           5,
	}
}

// Result describes one detected period.
type Result struct {
	// Period is the cycle length in original (pre-aggregation) bins.
	Period int
	// Power is the periodogram power at the detected frequency.
	Power float64
	// ACF is the autocorrelation at the detected lag.
	ACF float64
}

// Detect finds the dominant period of the series, if any. It returns
// (Result, true) on detection. The returned period is expressed in the
// series' own bin units (after multiplying back any aggregation).
func Detect(s *timeseries.Series, opt Options) (Result, bool) {
	work := s.Clone()
	if opt.WinsorK > 0 {
		work.WinsorizeMAD(opt.WinsorK)
	}
	if opt.AggregateWindow > 1 {
		work = work.Aggregate(opt.AggregateWindow)
	}
	x := work.Values
	n := len(x)
	if n < 8 {
		return Result{}, false
	}
	// Median detrend for robustness to level shifts.
	med := work.Median()
	det := make([]float64, n)
	for i, v := range x {
		det[i] = v - med
	}

	power, padded := Periodogram(det)
	if len(power) < 3 {
		return Result{}, false
	}
	// Fisher-style significance: under white noise the periodogram
	// ordinates are ~Exp(mean); a peak is significant when
	// peak > mean · ln(m/α) with m ordinates tested.
	m := len(power) - 1
	var meanPow float64
	for _, p := range power[1:] {
		meanPow += p
	}
	meanPow /= float64(m)
	if meanPow <= 0 {
		return Result{}, false
	}
	threshold := meanPow * math.Log(float64(m)/opt.SignificanceLevel)

	maxPeriod := int(float64(n) * opt.MaxPeriodFrac)
	minPeriod := opt.MinPeriod
	if minPeriod < 2 {
		minPeriod = 2
	}
	if maxPeriod < minPeriod {
		return Result{}, false
	}

	agg := opt.AggregateWindow
	if agg < 1 {
		agg = 1
	}
	restricted := len(opt.CandidatePeriods) > 0
	admissible := func(lag int) bool {
		if !restricted {
			return true
		}
		orig := lag * agg
		for _, c := range opt.CandidatePeriods {
			if c <= 0 {
				continue
			}
			tol := 0.1 * float64(c)
			if tol < float64(agg) {
				tol = float64(agg)
			}
			if math.Abs(float64(orig-c)) <= tol {
				return true
			}
		}
		return false
	}

	// Candidate frequencies sorted by power, strongest first.
	type cand struct {
		k     int
		power float64
	}
	var cands []cand
	for k := 1; k < len(power); k++ {
		if power[k] <= threshold {
			continue
		}
		period := int(math.Round(float64(padded) / float64(k)))
		if period < minPeriod || period > maxPeriod {
			continue
		}
		if !admissible(period) {
			continue
		}
		cands = append(cands, cand{k, power[k]})
	}
	if len(cands) == 0 {
		return Result{}, false
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].power > cands[j].power })

	acf := ACF(det, maxPeriod)
	for _, c := range cands {
		period := int(math.Round(float64(padded) / float64(c.k)))
		lag, ok := refineACFPeak(acf, period)
		if !ok || acf[lag] < opt.ACFThreshold {
			continue
		}
		if restricted {
			// ACF refinement can drift off the declared period set; if it
			// did, this candidate frequency is not usable.
			if !admissible(lag) {
				continue
			}
		} else {
			lag = escalateHarmonic(acf, lag, maxPeriod, n)
		}
		return Result{Period: lag * agg, Power: c.power, ACF: acf[lag]}, true
	}
	return Result{}, false
}

// escalateHarmonic checks integer multiples of the detected lag: when a
// longer multiple has a clearly higher autocorrelation, the true season is
// the longer one and the detected lag is merely its strongest harmonic —
// e.g. daily rhythm inside a weekly cycle with weekend effects. Without
// this, the seasonal model would average weekdays and weekends together.
func escalateHarmonic(acf []float64, lag, maxPeriod, n int) int {
	// The biased ACF estimator shrinks by (1 − lag/n), which would hide a
	// long season behind its strongest harmonic; compare bias-corrected
	// values, demanding a noise-aware margin so pure short cycles are not
	// spuriously escalated.
	corrected := func(l int) float64 {
		return acf[l] * float64(n) / float64(n-l)
	}
	best := lag
	for k := 2; k*lag <= maxPeriod; k++ {
		cand, ok := refineACFPeak(acf, k*lag)
		if !ok || cand >= n {
			continue
		}
		margin := 0.05 + 1/math.Sqrt(float64(n-cand))
		if corrected(cand) > corrected(best)+margin {
			best = cand
		}
	}
	return best
}

// refineACFPeak walks from the candidate lag to the nearest local maximum
// of the ACF within ±20% of the lag, returning the refined lag. It rejects
// candidates whose neighborhood contains no local maximum.
func refineACFPeak(acf []float64, lag int) (int, bool) {
	if lag < 1 || lag >= len(acf) {
		return 0, false
	}
	radius := lag / 5
	if radius < 2 {
		radius = 2
	}
	lo := lag - radius
	if lo < 1 {
		lo = 1
	}
	hi := lag + radius
	if hi > len(acf)-1 {
		hi = len(acf) - 1
	}
	best, bestVal := -1, math.Inf(-1)
	for l := lo; l <= hi; l++ {
		if acf[l] > bestVal {
			best, bestVal = l, acf[l]
		}
	}
	if best <= 0 {
		return 0, false
	}
	// Require a genuine local maximum (not a monotone edge of the window),
	// unless the window is clipped at the array border.
	if best > lo && best < hi {
		if acf[best] < acf[best-1] || acf[best] < acf[best+1] {
			return 0, false
		}
	}
	return best, true
}
