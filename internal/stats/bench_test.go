package stats

import (
	"math/rand"
	"testing"
)

// BenchmarkGammaSample measures the Marsaglia–Tsang sampler (the hot path
// of arrival-epoch sampling in the decision module).
func BenchmarkGammaSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := Gamma{Shape: 25, Scale: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Sample(rng)
	}
}

// BenchmarkGammaQuantile measures the Newton-refined quantile (the κ
// computation and the exact HP path).
func BenchmarkGammaQuantile(b *testing.B) {
	g := Gamma{Shape: 25, Scale: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Quantile(0.1)
	}
}

// BenchmarkPoissonSampleSmall exercises the Knuth branch (λ < 10).
func BenchmarkPoissonSampleSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p := Poisson{Lambda: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Sample(rng)
	}
}

// BenchmarkPoissonSampleLarge exercises the PTRS branch used when binning
// high-QPS intensities.
func BenchmarkPoissonSampleLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := Poisson{Lambda: 60000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Sample(rng)
	}
}

// BenchmarkRegIncGammaP measures the special-function core.
func BenchmarkRegIncGammaP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RegIncGammaP(25, 20)
	}
}

// BenchmarkQuantile measures the empirical quantile on a decision-sized
// sample.
func BenchmarkQuantile(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantile(xs, 0.1)
	}
}
