package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Poisson is the Poisson distribution with rate Lambda. It models the query
// count within one Δt bin of the NHPP: Q_t ~ Poisson(exp(r_t)·Δt).
type Poisson struct {
	Lambda float64
}

// Mean returns λ.
func (p Poisson) Mean() float64 { return p.Lambda }

// Variance returns λ.
func (p Poisson) Variance() float64 { return p.Lambda }

// PMF returns P(X = k).
func (p Poisson) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(p.Lambda) - p.Lambda - lg)
}

// CDF returns P(X ≤ k) = Q(k+1, λ), the upper incomplete gamma identity.
func (p Poisson) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if p.Lambda == 0 {
		return 1
	}
	return RegIncGammaQ(float64(k)+1, p.Lambda)
}

// Sample draws one variate. It uses Knuth inversion for small λ and the
// PTRS transformed-rejection method (Hörmann 1993) for λ ≥ 10, giving O(1)
// expected time at any rate — important because the Fig. 8 scalability
// experiment pushes λ·Δt into the tens of thousands.
func (p Poisson) Sample(rng *rand.Rand) int {
	switch {
	case p.Lambda < 0:
		panic(fmt.Sprintf("stats: Poisson rate %g < 0", p.Lambda))
	case p.Lambda == 0:
		return 0
	case p.Lambda < 10:
		return poissonKnuth(rng, p.Lambda)
	default:
		return poissonPTRS(rng, p.Lambda)
	}
}

func poissonKnuth(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	prod := rng.Float64()
	for prod > l {
		k++
		prod *= rng.Float64()
	}
	return k
}

// poissonPTRS implements Hörmann's PTRS algorithm.
func poissonPTRS(rng *rand.Rand, lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLam := math.Log(lambda)
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(kf)
		}
		if kf < 0 || (us < 0.013 && v > us) {
			continue
		}
		k := kf
		lgk, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLam-lambda-lgk {
			return int(k)
		}
	}
}

// Exponential is the exponential distribution with mean Mean (rate 1/Mean).
// The paper uses it for query processing times in the synthetic experiments
// (mean 20 s in Fig. 8 / Table I).
type Exponential struct {
	Mean float64
}

// PDF returns the density at x.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return math.Exp(-x/e.Mean) / e.Mean
}

// CDF returns P(X ≤ x).
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-x/e.Mean)
}

// Quantile returns the p-quantile.
func (e Exponential) Quantile(p float64) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: Exponential.Quantile p=%g outside [0,1]", p))
	}
	return -e.Mean * math.Log(1-p)
}

// Sample draws one variate.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() * e.Mean
}

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma²)). Used for
// heavy-tailed processing times in the CRS trace stand-in, whose RT
// distribution the paper reports with quantiles up to 99.9%.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// Mean returns exp(μ + σ²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// CDF returns P(X ≤ x).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return NormalCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Quantile returns the p-quantile.
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*NormalQuantile(p))
}

// Sample draws one variate.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Deterministic is a degenerate distribution that always returns Value —
// the fixed 13 s pod pending time of the paper's simulated experiments.
type Deterministic struct {
	Value float64
}

// CDF returns the step CDF.
func (d Deterministic) CDF(x float64) float64 {
	if x < d.Value {
		return 0
	}
	return 1
}

// Quantile returns Value for every p.
func (d Deterministic) Quantile(float64) float64 { return d.Value }

// Sample returns Value.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.Value }

// Dist is the sampling interface shared by the positive continuous
// distributions above; pending and processing times are specified through
// it.
type Dist interface {
	Sample(rng *rand.Rand) float64
	Quantile(p float64) float64
	CDF(x float64) float64
}

var (
	_ Dist = Exponential{}
	_ Dist = LogNormal{}
	_ Dist = Deterministic{}
)
