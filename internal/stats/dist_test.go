package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestGammaCDFQuantileRoundTrip(t *testing.T) {
	for _, g := range []Gamma{{0.5, 1}, {1, 2}, {3, 0.5}, {10, 1}, {57, 1}, {200, 3}} {
		for _, p := range []float64{0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999} {
			x := g.Quantile(p)
			back := g.CDF(x)
			if math.Abs(back-p) > 1e-8 {
				t.Fatalf("Gamma(%g,%g): CDF(Quantile(%g)) = %g", g.Shape, g.Scale, p, back)
			}
		}
	}
}

func TestGammaShape1IsExponential(t *testing.T) {
	g := Gamma{Shape: 1, Scale: 2}
	e := Exponential{Mean: 2}
	for _, x := range []float64{0.1, 0.5, 1, 3, 8} {
		if math.Abs(g.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Fatalf("Gamma(1,2) CDF(%g) != Exp(2) CDF: %g vs %g", x, g.CDF(x), e.CDF(x))
		}
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, g := range []Gamma{{0.5, 1}, {2, 3}, {9, 0.25}, {40, 1}} {
		const n = 200000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := g.Sample(rng)
			if x < 0 {
				t.Fatalf("Gamma sample %g < 0", x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		varr := sumSq/n - mean*mean
		if math.Abs(mean-g.Mean()) > 0.03*g.Mean()+0.01 {
			t.Fatalf("Gamma(%g,%g) sample mean %g, want %g", g.Shape, g.Scale, mean, g.Mean())
		}
		if math.Abs(varr-g.Variance()) > 0.1*g.Variance()+0.02 {
			t.Fatalf("Gamma(%g,%g) sample var %g, want %g", g.Shape, g.Scale, varr, g.Variance())
		}
	}
}

func TestGammaPDFIntegratesToCDF(t *testing.T) {
	g := Gamma{Shape: 3, Scale: 1.5}
	// Trapezoid integral of the PDF up to x should match the CDF.
	const dx = 1e-3
	var acc float64
	prev := g.PDF(0)
	for x := dx; x <= 12; x += dx {
		cur := g.PDF(x)
		acc += (prev + cur) / 2 * dx
		prev = cur
		if math.Mod(x, 2) < dx {
			if math.Abs(acc-g.CDF(x)) > 1e-4 {
				t.Fatalf("∫pdf up to %g = %g, CDF = %g", x, acc, g.CDF(x))
			}
		}
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lam := range []float64{0.1, 1, 5, 30} {
		p := Poisson{Lambda: lam}
		var s float64
		for k := 0; k < 400; k++ {
			s += p.PMF(k)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("Poisson(%g) PMF sums to %g", lam, s)
		}
	}
}

func TestPoissonCDFMatchesPMFSum(t *testing.T) {
	for _, lam := range []float64{0.5, 4, 17} {
		p := Poisson{Lambda: lam}
		var cum float64
		for k := 0; k <= 60; k++ {
			cum += p.PMF(k)
			if math.Abs(p.CDF(k)-cum) > 1e-9 {
				t.Fatalf("Poisson(%g) CDF(%d) = %g, cumulative PMF = %g", lam, k, p.CDF(k), cum)
			}
		}
	}
}

func TestPoissonSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Cover both the Knuth branch (λ<10) and the PTRS branch (λ≥10).
	for _, lam := range []float64{0.2, 3, 9.9, 10.1, 50, 1000, 20000} {
		p := Poisson{Lambda: lam}
		n := 100000
		if lam > 100 {
			n = 20000
		}
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			k := float64(p.Sample(rng))
			if k < 0 {
				t.Fatalf("negative Poisson sample")
			}
			sum += k
			sumSq += k * k
		}
		mean := sum / float64(n)
		varr := sumSq/float64(n) - mean*mean
		tol := 4 * math.Sqrt(lam/float64(n)) // ±4 std errors
		if math.Abs(mean-lam) > tol+0.01 {
			t.Fatalf("Poisson(%g) sample mean %g (tol %g)", lam, mean, tol)
		}
		if math.Abs(varr-lam) > 0.1*lam+0.05 {
			t.Fatalf("Poisson(%g) sample variance %g", lam, varr)
		}
	}
}

func TestPoissonSampleZeroRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := (Poisson{Lambda: 0}).Sample(rng); got != 0 {
		t.Fatalf("Poisson(0) sample = %d, want 0", got)
	}
}

func TestExponential(t *testing.T) {
	e := Exponential{Mean: 20}
	if math.Abs(e.Quantile(e.CDF(13))-13) > 1e-9 {
		t.Fatal("Exponential quantile/CDF round trip failed")
	}
	rng := rand.New(rand.NewSource(2))
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += e.Sample(rng)
	}
	if mean := sum / n; math.Abs(mean-20) > 0.5 {
		t.Fatalf("Exponential sample mean %g, want 20", mean)
	}
}

func TestLogNormal(t *testing.T) {
	l := LogNormal{Mu: 2, Sigma: 0.5}
	// Median is exp(μ).
	if math.Abs(l.Quantile(0.5)-math.Exp(2)) > 1e-9 {
		t.Fatalf("LogNormal median %g, want %g", l.Quantile(0.5), math.Exp(2))
	}
	if math.Abs(l.CDF(l.Quantile(0.9))-0.9) > 1e-9 {
		t.Fatal("LogNormal quantile/CDF round trip failed")
	}
	rng := rand.New(rand.NewSource(8))
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := l.Sample(rng)
		if x <= 0 {
			t.Fatal("LogNormal sample not positive")
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-l.Mean()) > 0.02*l.Mean() {
		t.Fatalf("LogNormal sample mean %g, want %g", mean, l.Mean())
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 13}
	if d.Sample(nil) != 13 || d.Quantile(0.99) != 13 || d.CDF(12.9) != 0 || d.CDF(13) != 1 {
		t.Fatal("Deterministic distribution misbehaves")
	}
}

// The i-th arrival epoch of a unit-rate Poisson process is Gamma(i, 1):
// partial sums of Exp(1) must match the Gamma CDF. This identity underpins
// the κ threshold (eq. 8) and the proofs of Propositions 1–2.
func TestGammaArrivalEpochIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const (
		i = 7
		n = 100000
	)
	g := Gamma{Shape: i, Scale: 1}
	x0 := g.Quantile(0.3)
	var below int
	for trial := 0; trial < n; trial++ {
		var sum float64
		for j := 0; j < i; j++ {
			sum += rng.ExpFloat64()
		}
		if sum <= x0 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("empirical Gamma(7,1) CDF at q30 = %g, want 0.30", frac)
	}
}
