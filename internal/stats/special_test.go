package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegIncGammaIdentities(t *testing.T) {
	// P(1, x) = 1 − e^{−x}.
	for _, x := range []float64{0, 0.1, 0.5, 1, 2, 5, 10, 50} {
		want := 1 - math.Exp(-x)
		got := RegIncGammaP(1, x)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	// P + Q = 1.
	for _, a := range []float64{0.3, 1, 2.5, 10, 100} {
		for _, x := range []float64{0.01, 0.5, 1, 3, 9, 20, 150} {
			p, q := RegIncGammaP(a, x), RegIncGammaQ(a, x)
			if math.Abs(p+q-1) > 1e-10 {
				t.Fatalf("P+Q != 1 at a=%g x=%g: %g", a, x, p+q)
			}
		}
	}
	// Recurrence P(a+1,x) = P(a,x) − x^a e^{−x}/Γ(a+1).
	for _, a := range []float64{0.5, 1, 3, 7} {
		for _, x := range []float64{0.2, 1, 4, 12} {
			lg, _ := math.Lgamma(a + 1)
			want := RegIncGammaP(a, x) - math.Exp(a*math.Log(x)-x-lg)
			got := RegIncGammaP(a+1, x)
			if math.Abs(got-want) > 1e-10 {
				t.Fatalf("recurrence failed a=%g x=%g: %g vs %g", a, x, got, want)
			}
		}
	}
}

func TestRegIncGammaMonotonicProperty(t *testing.T) {
	f := func(aRaw, x1Raw, x2Raw float64) bool {
		a := 0.1 + math.Mod(math.Abs(aRaw), 50)
		x1 := math.Mod(math.Abs(x1Raw), 100)
		x2 := math.Mod(math.Abs(x2Raw), 100)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return RegIncGammaP(a, x1) <= RegIncGammaP(a, x2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncGammaPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { RegIncGammaP(0, 1) },
		func() { RegIncGammaP(1, -1) },
		func() { RegIncGammaQ(-2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on invalid input")
				}
			}()
			fn()
		}()
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.15865525393145707, -1},
		{0.9772498680518208, 2},
		{0.999, 3.090232306167813},
		{0.001, -3.090232306167813},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("NormalQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("NormalQuantile endpoints should be ±Inf")
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	for p := 0.001; p < 1; p += 0.013 {
		back := NormalCDF(NormalQuantile(p))
		if math.Abs(back-p) > 1e-12 {
			t.Fatalf("round trip at p=%g gave %g", p, back)
		}
	}
}
