// Package stats provides the probability substrate RobustScaler needs:
// Gamma / Poisson / Exponential / LogNormal distributions with CDFs,
// quantiles and exact samplers, the regularized incomplete gamma function,
// and empirical-sample summaries. Everything is built on the standard
// library only; Go has no scientific stack, so the special functions are
// implemented here (series + continued-fraction evaluation, Numerical
// Recipes style).
package stats

import (
	"fmt"
	"math"
)

// RegIncGammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x ≥ 0. P(a, x) is the CDF at x of the
// Gamma distribution with shape a and scale 1 — the central quantity in the
// paper's time-rescaling arguments (Propositions 1–2) and the κ threshold.
func RegIncGammaP(a, x float64) float64 {
	switch {
	case a <= 0:
		panic(fmt.Sprintf("stats: RegIncGammaP requires a > 0, got %g", a))
	case x < 0:
		panic(fmt.Sprintf("stats: RegIncGammaP requires x >= 0, got %g", x))
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// RegIncGammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 − P(a, x).
func RegIncGammaQ(a, x float64) float64 {
	switch {
	case a <= 0:
		panic(fmt.Sprintf("stats: RegIncGammaQ requires a > 0, got %g", a))
	case x < 0:
		panic(fmt.Sprintf("stats: RegIncGammaQ requires x >= 0, got %g", x))
	case x == 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a,x) by its power series, converging fast for
// x < a+1.
func gammaPSeries(a, x float64) float64 {
	const (
		maxIter = 1000
		eps     = 1e-15
	)
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	v := sum * math.Exp(-x+a*math.Log(x)-lg)
	return clamp01(v)
}

// gammaQContinuedFraction evaluates Q(a,x) by its Lentz continued fraction,
// converging fast for x ≥ a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const (
		maxIter = 1000
		eps     = 1e-15
		tiny    = 1e-300
	)
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	v := math.Exp(-x+a*math.Log(x)-lg) * h
	return clamp01(v)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// LogGamma returns ln Γ(x) for x > 0.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
