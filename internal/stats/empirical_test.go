package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %g, want 4", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Fatal("empty-slice Mean/Variance should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Quantile([]float64{42}, 0.7); got != 42 {
		t.Fatalf("singleton quantile = %g", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

// Quantile must be monotone in p and bracketed by min/max.
func TestQuantileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		sorted := make([]float64, n)
		copy(sorted, xs)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := Quantile(xs, p)
			if q < prev-1e-12 || q < sorted[0]-1e-12 || q > sorted[n-1]+1e-12 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMSEAndMAE(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 2, 1}
	if got := MSE(a, b); math.Abs(got-5.0/3) > 1e-12 {
		t.Fatalf("MSE = %g, want %g", got, 5.0/3)
	}
	if got := MAE(a, b); got != 1 {
		t.Fatalf("MAE = %g, want 1", got)
	}
}

func TestWindowedMeans(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	got := WindowedMeans(xs, 3)
	want := []float64{2, 5} // ragged tail {7} dropped
	if len(got) != len(want) {
		t.Fatalf("WindowedMeans length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WindowedMeans[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
