package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Pareto is the Pareto (type I) distribution with scale Xm > 0 and tail
// index Alpha > 0: P(X > x) = (Xm/x)^Alpha for x ≥ Xm. It models the
// heavy-tailed service and inter-arrival times of bursty workloads —
// small Alpha means heavier tails (Alpha ≤ 1 has infinite mean,
// Alpha ≤ 2 infinite variance), the regime where mean-based forecasting
// and pooling heuristics degrade.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// ParetoWithMean returns the Pareto distribution with tail index alpha
// (> 1) whose mean is the given value: Xm = mean·(alpha−1)/alpha.
func ParetoWithMean(mean, alpha float64) Pareto {
	if alpha <= 1 {
		panic(fmt.Sprintf("stats: ParetoWithMean needs alpha > 1, got %g", alpha))
	}
	if mean <= 0 {
		panic(fmt.Sprintf("stats: ParetoWithMean needs mean > 0, got %g", mean))
	}
	return Pareto{Xm: mean * (alpha - 1) / alpha, Alpha: alpha}
}

// Mean returns α·Xm/(α−1) for α > 1, +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// CDF returns P(X ≤ x).
func (p Pareto) CDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Quantile returns the q-quantile Xm·(1−q)^(−1/α).
func (p Pareto) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Pareto.Quantile q=%g outside [0,1]", q))
	}
	if q == 1 {
		return math.Inf(1)
	}
	return p.Xm * math.Pow(1-q, -1/p.Alpha)
}

// Sample draws one variate by inversion.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	// 1−Float64() is in (0, 1]: inversion never divides by zero.
	return p.Xm * math.Pow(1-rng.Float64(), -1/p.Alpha)
}

var _ Dist = Pareto{}
