package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestParetoMoments(t *testing.T) {
	p := ParetoWithMean(10, 2.5)
	if got := p.Mean(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("ParetoWithMean mean %g, want 10", got)
	}
	if got := (Pareto{Xm: 1, Alpha: 0.9}).Mean(); !math.IsInf(got, 1) {
		t.Fatalf("alpha<=1 mean %g, want +Inf", got)
	}
}

func TestParetoQuantileCDFRoundTrip(t *testing.T) {
	p := Pareto{Xm: 3, Alpha: 1.7}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.999} {
		x := p.Quantile(q)
		if got := p.CDF(x); math.Abs(got-q) > 1e-9 {
			t.Errorf("CDF(Quantile(%g)) = %g", q, got)
		}
	}
	if p.CDF(p.Xm-1e-9) != 0 {
		t.Error("CDF below Xm must be 0")
	}
	if !math.IsInf(p.Quantile(1), 1) {
		t.Error("Quantile(1) must be +Inf")
	}
}

func TestParetoSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := ParetoWithMean(5, 3) // finite variance: the sample mean converges
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := p.Sample(rng)
		if v < p.Xm {
			t.Fatalf("sample %g below scale %g", v, p.Xm)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-5) > 0.25 {
		t.Errorf("sample mean %g, want ≈ 5", mean)
	}
}
