package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Gamma is the Gamma distribution with shape k and scale θ
// (mean kθ, variance kθ²). With scale 1 and integer shape i it is the
// distribution of the i-th arrival epoch of a unit-rate Poisson process,
// which is how the paper computes κ (eq. 8) and proves Propositions 1–2.
type Gamma struct {
	Shape float64
	Scale float64
}

// Mean returns kθ.
func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

// Variance returns kθ².
func (g Gamma) Variance() float64 { return g.Shape * g.Scale * g.Scale }

// PDF returns the density at x.
func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if g.Shape < 1 {
			return math.Inf(1)
		}
		if g.Shape == 1 {
			return 1 / g.Scale
		}
		return 0
	}
	k, th := g.Shape, g.Scale
	lg, _ := math.Lgamma(k)
	return math.Exp((k-1)*math.Log(x) - x/th - lg - k*math.Log(th))
}

// CDF returns P(X ≤ x).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncGammaP(g.Shape, x/g.Scale)
}

// Quantile returns the p-quantile, i.e. the smallest x with CDF(x) ≥ p.
// It uses a Wilson–Hilferty initial guess refined by Newton iterations with
// bisection safeguards.
func (g Gamma) Quantile(p float64) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: Gamma.Quantile p=%g outside [0,1]", p))
	}
	if p == 0 {
		return 0
	}
	if p == 1 {
		return math.Inf(1)
	}
	k := g.Shape
	// Wilson–Hilferty approximation for the initial guess (scale-1).
	z := NormalQuantile(p)
	c := 1 - 1/(9*k) + z/(3*math.Sqrt(k))
	x := k * c * c * c
	if x <= 0 || math.IsNaN(x) {
		x = k * math.Exp((math.Log(p)+LogGamma(k+1))/k) // small-x series inversion
		if x <= 0 || math.IsNaN(x) {
			x = 1e-8
		}
	}
	lo, hi := 0.0, math.Inf(1)
	for i := 0; i < 200; i++ {
		f := RegIncGammaP(k, x) - p
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		lg, _ := math.Lgamma(k)
		pdf := math.Exp((k-1)*math.Log(x) - x - lg)
		var next float64
		if pdf > 0 {
			next = x - f/pdf
		}
		if pdf == 0 || next <= lo || next >= hi || math.IsNaN(next) {
			// Bisection fallback.
			if math.IsInf(hi, 1) {
				next = 2 * x
			} else {
				next = (lo + hi) / 2
			}
		}
		if math.Abs(next-x) <= 1e-12*(1+x) {
			x = next
			break
		}
		x = next
	}
	return x * g.Scale
}

// Sample draws one variate using the Marsaglia–Tsang squeeze method
// (with Ahrens–Dieter boost for shape < 1).
func (g Gamma) Sample(rng *rand.Rand) float64 {
	k := g.Shape
	if k < 1 {
		// X = Y·U^{1/k} with Y ~ Gamma(k+1, 1).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return Gamma{Shape: k + 1, Scale: g.Scale}.Sample(rng) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * g.Scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * g.Scale
		}
	}
}

// NormalQuantile returns the p-quantile of the standard normal
// distribution using the Acklam rational approximation refined by one
// Halley step against math.Erfc. Accuracy is ~1e-15 over (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormalCDF returns the standard normal CDF at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
