package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN for fewer than
// one observation.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Quantile returns the p-quantile of xs using linear interpolation between
// order statistics (type-7, the numpy/R default). It sorts a copy.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: Quantile p=%g outside [0,1]", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, p)
}

// QuantileSorted is Quantile for an already ascending-sorted slice.
func QuantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MSE returns the mean squared error between a and b.
func MSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: MSE length mismatch")
	}
	if len(a) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

// MAE returns the mean absolute error between a and b.
func MAE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: MAE length mismatch")
	}
	if len(a) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a))
}

// WindowedMeans splits xs into consecutive windows of size w (dropping the
// ragged tail) and returns the mean of each window. This is exactly the
// Fig. 5 construction: "average the response times of every 50 queries".
func WindowedMeans(xs []float64, w int) []float64 {
	if w <= 0 {
		panic(fmt.Sprintf("stats: WindowedMeans window %d <= 0", w))
	}
	n := len(xs) / w
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Mean(xs[i*w:(i+1)*w]))
	}
	return out
}
