// Package ring implements a deterministic consistent-hash ring used to
// place workload IDs on scalerd fleet nodes.
//
// Each member node contributes VirtualNodes points on a 64-bit hash
// circle; a key is owned by the node whose point is the first at or
// clockwise after the key's hash. Placement is a pure function of
// (seed, virtual-node count, member names): two rings built with the
// same configuration and members agree on every key, across processes
// and restarts. Changing membership moves only the keys whose owning
// arc changed hands — adding a node steals roughly 1/(N+1) of the
// keyspace from the existing N nodes and nothing moves between
// survivors (property-tested in ring_test.go).
//
// Ring is not safe for concurrent mutation; the fleet router keeps an
// immutable Ring behind an atomic pointer and mutates a Clone.
package ring

import (
	"fmt"
	"math"
	"sort"
)

// DefaultVirtualNodes is the per-node point count used when Config
// leaves VirtualNodes zero. 128 points per node keeps the max/mean
// ownership share under ~1.35 for small fleets (see TestBalance) while
// membership changes stay cheap (N*128 point inserts).
const DefaultVirtualNodes = 128

// Config parameterizes ring construction.
type Config struct {
	// VirtualNodes is the number of hash-circle points per member.
	// Zero means DefaultVirtualNodes. More points flatten the
	// ownership distribution at the cost of membership-change work.
	VirtualNodes int
	// Seed perturbs every point and key hash. Two rings with
	// different seeds place keys independently; a fleet must use one
	// seed consistently or placement (and therefore data location)
	// silently diverges.
	Seed uint64
}

type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over named nodes.
type Ring struct {
	cfg    Config
	points []point // sorted by (hash, node)
	nodes  map[string]struct{}
}

// New returns an empty ring with the given configuration.
func New(cfg Config) *Ring {
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = DefaultVirtualNodes
	}
	return &Ring{cfg: cfg, nodes: make(map[string]struct{})}
}

// Add inserts a member. Adding an existing member or an empty name is
// an error.
func (r *Ring) Add(node string) error {
	if node == "" {
		return fmt.Errorf("ring: empty node name")
	}
	if _, ok := r.nodes[node]; ok {
		return fmt.Errorf("ring: node %q already a member", node)
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.cfg.VirtualNodes; i++ {
		r.points = append(r.points, point{hash: r.pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return nil
}

// Remove deletes a member. Removing a non-member is an error.
func (r *Ring) Remove(node string) error {
	if _, ok := r.nodes[node]; !ok {
		return fmt.Errorf("ring: node %q not a member", node)
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// Owner returns the member that owns key. ok is false on an empty
// ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := r.keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the last point to the first
	}
	return r.points[i].node, true
}

// Has reports whether node is a member.
func (r *Ring) Has(node string) bool {
	_, ok := r.nodes[node]
	return ok
}

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// VirtualNodes returns the effective per-member point count.
func (r *Ring) VirtualNodes() int { return r.cfg.VirtualNodes }

// Seed returns the placement seed.
func (r *Ring) Seed() uint64 { return r.cfg.Seed }

// Clone returns an independent copy; mutations to either side do not
// affect the other. This is the copy-on-write primitive the router's
// atomic route table relies on.
func (r *Ring) Clone() *Ring {
	c := &Ring{cfg: r.cfg, nodes: make(map[string]struct{}, len(r.nodes))}
	for n := range r.nodes {
		c.nodes[n] = struct{}{}
	}
	c.points = append([]point(nil), r.points...)
	return c
}

// Shares returns each member's fraction of the hash circle — the
// expected share of a uniform key population it owns. Fractions sum
// to 1 on a non-empty ring. Exported for the fleet ownership gauges.
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.nodes))
	if len(r.points) == 0 {
		return out
	}
	const full = float64(math.MaxUint64) + 1
	prev := r.points[len(r.points)-1].hash // arc wraps from the last point
	for _, p := range r.points {
		arc := p.hash - prev // unsigned subtraction handles the wrap
		out[p.node] += float64(arc) / full
		prev = p.hash
	}
	return out
}

// fnv1a64 hashes the seed followed by s (FNV-1a), then applies a
// murmur3-style finalization mix. Raw FNV-1a avalanches poorly on the
// short, near-identical strings fleets use for node names ("n0", "n1",
// ...), which leaves vnode points structurally correlated and the ring
// badly imbalanced; the bijective fmix64 step fixes the distribution
// while staying a pure, platform-independent function — which is what
// makes placement deterministic for the life of a data directory.
func fnv1a64(seed uint64, s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (r *Ring) keyHash(key string) uint64 { return fnv1a64(r.cfg.Seed, key) }

func (r *Ring) pointHash(node string, idx int) uint64 {
	// The replica index is folded in as four explicit bytes rather
	// than decimal formatting so "node1"+11 and "node11"+1 cannot
	// collide into the same point string.
	var buf [4]byte
	buf[0] = byte(idx >> 24)
	buf[1] = byte(idx >> 16)
	buf[2] = byte(idx >> 8)
	buf[3] = byte(idx)
	return fnv1a64(r.cfg.Seed, node+"\x00"+string(buf[:]))
}
