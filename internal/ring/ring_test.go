package ring

import (
	"fmt"
	"math"
	"testing"
)

func build(t *testing.T, cfg Config, nodes ...string) *Ring {
	t.Helper()
	r := New(cfg)
	for _, n := range nodes {
		if err := r.Add(n); err != nil {
			t.Fatalf("Add(%q): %v", n, err)
		}
	}
	return r
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("workload-%04d", i)
	}
	return out
}

func owners(t *testing.T, r *Ring, ks []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(ks))
	for _, k := range ks {
		n, ok := r.Owner(k)
		if !ok {
			t.Fatalf("Owner(%q) on %d-node ring: no owner", k, r.Len())
		}
		out[k] = n
	}
	return out
}

// Two rings built independently with the same config and members must
// agree on every key — placement is a pure function of configuration,
// which is what lets a restarted fleet find its data again.
func TestDeterministicPlacement(t *testing.T) {
	cfg := Config{VirtualNodes: 64, Seed: 42}
	a := build(t, cfg, "n0", "n1", "n2", "n3")
	// Different insertion order must not matter either.
	b := build(t, cfg, "n3", "n1", "n0", "n2")
	for _, k := range keys(2000) {
		ao, _ := a.Owner(k)
		bo, _ := b.Owner(k)
		if ao != bo {
			t.Fatalf("placement differs for %q: %q vs %q", k, ao, bo)
		}
	}
}

// Different seeds must place keys differently (otherwise the seed is
// decorative and colliding fleets would shard identically).
func TestSeedChangesPlacement(t *testing.T) {
	a := build(t, Config{Seed: 1}, "n0", "n1", "n2")
	b := build(t, Config{Seed: 2}, "n0", "n1", "n2")
	moved := 0
	ks := keys(2000)
	for _, k := range ks {
		ao, _ := a.Owner(k)
		bo, _ := b.Owner(k)
		if ao != bo {
			moved++
		}
	}
	if moved == 0 {
		t.Fatalf("seed had no effect on placement over %d keys", len(ks))
	}
}

// The consistent-hashing contract: adding a node moves keys only TO
// the new node (never between survivors), and moves roughly 1/(N+1)
// of them — bounded here at 2x the fair share.
func TestAddMovesBoundedKeysOnlyToNewNode(t *testing.T) {
	ks := keys(4000)
	for _, n := range []int{1, 2, 3, 4, 7} {
		cfg := Config{VirtualNodes: 128, Seed: 7}
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("n%d", i)
		}
		r := build(t, cfg, nodes...)
		before := owners(t, r, ks)
		newNode := fmt.Sprintf("n%d", n)
		if err := r.Add(newNode); err != nil {
			t.Fatal(err)
		}
		after := owners(t, r, ks)
		moved := 0
		for _, k := range ks {
			if before[k] != after[k] {
				moved++
				if after[k] != newNode {
					t.Fatalf("N=%d: key %q moved %q -> %q, not to the new node %q",
						n, k, before[k], after[k], newNode)
				}
			}
		}
		fair := float64(len(ks)) / float64(n+1)
		if f := float64(moved); f > 2*fair {
			t.Fatalf("N=%d: adding a node moved %d keys, > 2x fair share %.0f", n, moved, fair)
		}
		if moved == 0 {
			t.Fatalf("N=%d: adding a node moved no keys", n)
		}
	}
}

// The inverse: removing a node moves only that node's keys, and the
// survivors keep everything they had.
func TestRemoveMovesOnlyVictimsKeys(t *testing.T) {
	cfg := Config{VirtualNodes: 128, Seed: 7}
	r := build(t, cfg, "n0", "n1", "n2", "n3")
	ks := keys(4000)
	before := owners(t, r, ks)
	if err := r.Remove("n2"); err != nil {
		t.Fatal(err)
	}
	after := owners(t, r, ks)
	for _, k := range ks {
		if before[k] == "n2" {
			if after[k] == "n2" {
				t.Fatalf("key %q still owned by removed node", k)
			}
		} else if before[k] != after[k] {
			t.Fatalf("key %q moved %q -> %q though its owner survived", k, before[k], after[k])
		}
	}
}

// Add-then-remove must restore the original placement exactly: the
// ring has no hidden history.
func TestAddRemoveRoundTrip(t *testing.T) {
	cfg := Config{VirtualNodes: 64, Seed: 3}
	r := build(t, cfg, "n0", "n1", "n2")
	ks := keys(1000)
	before := owners(t, r, ks)
	if err := r.Add("n3"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("n3"); err != nil {
		t.Fatal(err)
	}
	after := owners(t, r, ks)
	for _, k := range ks {
		if before[k] != after[k] {
			t.Fatalf("placement of %q not restored: %q -> %q", k, before[k], after[k])
		}
	}
}

// With the default virtual-node count, ownership over a real key
// population stays within a loose balance envelope.
func TestBalance(t *testing.T) {
	r := build(t, Config{Seed: 11}, "n0", "n1", "n2", "n3")
	ks := keys(20000)
	counts := map[string]int{}
	for _, k := range ks {
		n, _ := r.Owner(k)
		counts[n]++
	}
	mean := float64(len(ks)) / float64(r.Len())
	for n, c := range counts {
		if f := float64(c); f > 1.6*mean || f < mean/1.6 {
			t.Fatalf("node %q owns %d keys, outside [%.0f, %.0f]", n, c, mean/1.6, 1.6*mean)
		}
	}
}

// Shares must sum to 1 and roughly agree with a sampled key census.
func TestShares(t *testing.T) {
	r := build(t, Config{Seed: 11}, "n0", "n1", "n2", "n3")
	shares := r.Shares()
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %g, want 1", sum)
	}
	ks := keys(20000)
	counts := map[string]int{}
	for _, k := range ks {
		n, _ := r.Owner(k)
		counts[n]++
	}
	for n, s := range shares {
		emp := float64(counts[n]) / float64(len(ks))
		if math.Abs(emp-s) > 0.05 {
			t.Fatalf("node %q: analytic share %.3f vs empirical %.3f", n, s, emp)
		}
	}
}

func TestMembershipErrors(t *testing.T) {
	r := New(Config{})
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if err := r.Add(""); err == nil {
		t.Fatal("Add(\"\") succeeded")
	}
	if err := r.Add("n0"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("n0"); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if err := r.Remove("nope"); err == nil {
		t.Fatal("Remove of non-member succeeded")
	}
	if !r.Has("n0") || r.Has("n1") {
		t.Fatal("Has wrong")
	}
	if got := r.Nodes(); len(got) != 1 || got[0] != "n0" {
		t.Fatalf("Nodes() = %v", got)
	}
}

// Clone must be fully independent of its origin.
func TestCloneIndependence(t *testing.T) {
	r := build(t, Config{VirtualNodes: 32, Seed: 5}, "n0", "n1")
	ks := keys(500)
	before := owners(t, r, ks)
	c := r.Clone()
	if err := c.Add("n2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("n0"); err != nil {
		t.Fatal(err)
	}
	after := owners(t, r, ks)
	for _, k := range ks {
		if before[k] != after[k] {
			t.Fatalf("mutating a clone changed the original: %q %q -> %q", k, before[k], after[k])
		}
	}
	if r.Len() != 2 || c.Len() != 2 || !c.Has("n2") || c.Has("n0") {
		t.Fatal("clone membership wrong")
	}
}
