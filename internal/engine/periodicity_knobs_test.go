package engine

import (
	"math"
	"testing"
)

// TestCandidatePeriodsRestrictDetection drives the per-workload
// periodicity knobs through the config plane into an actual fit: the
// hourly test traffic must be detected unrestricted, must still be
// detected when the candidate list names the true period, must NOT be
// detected when the list names only a wrong period (the detector may
// not invent an unlisted cycle), and must vanish entirely when
// detection is disabled.
func TestCandidatePeriodsRestrictDetection(t *testing.T) {
	const now = 12 * 3600.0
	mk := func(mut func(*EngineConfig)) *Engine {
		t.Helper()
		cfg := testConfig(now)
		// The fleet default aggregates to 1 h samples (daily periods); the
		// test traffic cycles hourly, so detect on 5 min samples.
		cfg.Train.Periodicity.AggregateWindow = 5
		cfg.Train.Periodicity.MinPeriod = 4
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if mut != nil {
			ec := e.EngineConfig()
			mut(&ec)
			if _, err := e.SetEngineConfig(ec); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Ingest(trafficArrivals(7, now)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Train(); err != nil {
			t.Fatal(err)
		}
		return e
	}

	if p := mk(nil).Status().PeriodSeconds; math.Abs(p-3600) > 600 {
		t.Fatalf("unrestricted: detected period %g, want ≈ 3600", p)
	}
	if p := mk(func(c *EngineConfig) {
		c.Train.CandidatePeriods = []float64{3600}
	}).Status().PeriodSeconds; math.Abs(p-3600) > 600 {
		t.Fatalf("candidates=[3600]: detected period %g, want ≈ 3600", p)
	}
	if p := mk(func(c *EngineConfig) {
		c.Train.CandidatePeriods = []float64{1800}
	}).Status().PeriodSeconds; p != 0 {
		t.Fatalf("candidates=[1800]: detector invented period %g from an hourly workload", p)
	}
	if p := mk(func(c *EngineConfig) {
		c.Train.DisablePeriodicity = true
	}).Status().PeriodSeconds; p != 0 {
		t.Fatalf("disable_periodicity: still detected period %g", p)
	}
}

// TestPeriodicityKnobChangeStalesModel is the knob-change → stale-model
// regression: updating the periodicity knobs must mark the installed
// model stale so the next retrain sweep refits under the new policy.
func TestPeriodicityKnobChangeStalesModel(t *testing.T) {
	const now = 4 * 3600.0
	e := trainedEngine(t, now)

	if ran, err := e.Retrain(); err != nil || ran {
		t.Fatalf("fresh model retrained (ran=%v err=%v)", ran, err)
	}

	ec := e.EngineConfig()
	ec.Train.CandidatePeriods = []float64{3600}
	if _, err := e.SetEngineConfig(ec); err != nil {
		t.Fatal(err)
	}
	if ran, err := e.Retrain(); err != nil || !ran {
		t.Fatalf("candidate-period change did not trip a refit (ran=%v err=%v)", ran, err)
	}
	if ran, err := e.Retrain(); err != nil || ran {
		t.Fatalf("second sweep refit again (ran=%v err=%v)", ran, err)
	}

	// Reordering-free no-op: writing the identical list back must NOT
	// stale the model.
	ec = e.EngineConfig()
	ec.Train.CandidatePeriods = []float64{3600}
	if _, err := e.SetEngineConfig(ec); err != nil {
		t.Fatal(err)
	}
	if ran, err := e.Retrain(); err != nil || ran {
		t.Fatalf("identical knob rewrite tripped a refit (ran=%v err=%v)", ran, err)
	}

	ec = e.EngineConfig()
	ec.Train.DisablePeriodicity = true
	if _, err := e.SetEngineConfig(ec); err != nil {
		t.Fatal(err)
	}
	if ran, err := e.Retrain(); err != nil || !ran {
		t.Fatalf("disable_periodicity change did not trip a refit (ran=%v err=%v)", ran, err)
	}
}

// TestCandidatePeriodsValidate rejects unusable candidate lists at the
// config plane.
func TestCandidatePeriodsValidate(t *testing.T) {
	const now = 4 * 3600.0
	e := trainedEngine(t, now)
	dt := e.EngineConfig().Dt
	long := make([]float64, maxCandidatePeriods+1)
	for i := range long {
		long[i] = 3600
	}
	for _, tc := range []struct {
		name    string
		periods []float64
	}{
		{"negative", []float64{-60}},
		{"NaN", []float64{math.NaN()}},
		{"below 2*dt", []float64{2*dt - 1}},
		{"beyond maxSeconds", []float64{2e9}},
		{"oversized list", long},
	} {
		ec := e.EngineConfig()
		ec.Train.CandidatePeriods = tc.periods
		if _, err := e.SetEngineConfig(ec); err == nil {
			t.Fatalf("%s: invalid candidate_periods accepted", tc.name)
		}
	}
	if got := e.EngineConfig().Train.CandidatePeriods; len(got) != 0 {
		t.Fatalf("rejected updates leaked into the config: %v", got)
	}
}
