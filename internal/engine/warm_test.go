package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestTrainWarmStartsOnlyOverNewData pins when the engine seeds a fit
// from the previous solution: never on the first fit, never on a refit
// over unchanged arrivals (which must reproduce the installed model
// bit-for-bit — see TestPlanCacheTrainInvalidates), always on a refit
// after new arrivals landed.
func TestTrainWarmStartsOnlyOverNewData(t *testing.T) {
	const now = 4 * 3600.0
	e, err := New(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(trafficArrivals(7, now)); err != nil {
		t.Fatal(err)
	}
	info, err := e.Train()
	if err != nil {
		t.Fatal(err)
	}
	if info.WarmStarted {
		t.Fatal("first fit claims a warm start")
	}
	coldIters := info.Iterations

	// Explicit retrain over identical arrivals: cold again.
	info, err = e.Train()
	if err != nil {
		t.Fatal(err)
	}
	if info.WarmStarted {
		t.Fatal("refit over unchanged arrivals warm-started (must be reproducible)")
	}

	// New arrivals → the refit warm-starts and converges faster.
	if _, err := e.Ingest([]float64{now + 10, now + 20, now + 30}); err != nil {
		t.Fatal(err)
	}
	info, err = e.Train()
	if err != nil {
		t.Fatal(err)
	}
	if !info.WarmStarted {
		t.Fatal("refit over new arrivals did not warm-start")
	}
	if info.Iterations >= coldIters {
		t.Fatalf("warm refit took %d iterations, cold took %d", info.Iterations, coldIters)
	}

	st := e.Stats()
	if st.WarmStartRefits != 1 || st.ColdStartRefits != 2 {
		t.Fatalf("warm/cold refit counters = %d/%d, want 1/2", st.WarmStartRefits, st.ColdStartRefits)
	}
	if st.RefitADMMIterations == 0 {
		t.Fatal("ADMM iteration counter did not accumulate")
	}
}

// TestTrainKnobsPlumbing proves the per-workload TrainKnobs reach the
// solver: a one-iteration budget shows up in TrainInfo, and
// DisableWarmStart forces refits over new data back to cold starts.
func TestTrainKnobsPlumbing(t *testing.T) {
	const now = 4 * 3600.0
	e := trainedEngine(t, now)

	ec := e.EngineConfig()
	ec.Train.ADMMMaxIter = 1
	if _, err := e.SetEngineConfig(ec); err != nil {
		t.Fatal(err)
	}
	// The knob change marked the model stale; the refit must respect the
	// one-iteration budget.
	ran, err := e.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("knob change did not mark the model stale")
	}
	info, err := e.Train() // unchanged data: cold, still capped
	if err != nil {
		t.Fatal(err)
	}
	if info.Iterations != 1 {
		t.Fatalf("admm_max_iter=1 ignored: fit ran %d iterations", info.Iterations)
	}

	ec = e.EngineConfig()
	ec.Train.ADMMMaxIter = 0
	ec.Train.DisableWarmStart = true
	if _, err := e.SetEngineConfig(ec); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]float64{now + 5}); err != nil {
		t.Fatal(err)
	}
	info, err = e.Train()
	if err != nil {
		t.Fatal(err)
	}
	if info.WarmStarted {
		t.Fatal("disable_warm_start=true still warm-started")
	}
}

// TestTrainKnobsValidate rejects out-of-range solver knobs at the
// config plane, leaving the config untouched.
func TestTrainKnobsValidate(t *testing.T) {
	const now = 4 * 3600.0
	e := trainedEngine(t, now)
	for _, tc := range []struct {
		name string
		mut  func(*EngineConfig)
	}{
		{"negative max_iter", func(c *EngineConfig) { c.Train.ADMMMaxIter = -1 }},
		{"huge max_iter", func(c *EngineConfig) { c.Train.ADMMMaxIter = 2_000_000 }},
		{"negative tol", func(c *EngineConfig) { c.Train.ADMMTol = -0.1 }},
		{"tol >= 1", func(c *EngineConfig) { c.Train.ADMMTol = 1 }},
	} {
		ec := e.EngineConfig()
		tc.mut(&ec)
		if _, err := e.SetEngineConfig(ec); err == nil {
			t.Fatalf("%s: invalid train knob accepted", tc.name)
		}
	}
	if got := e.EngineConfig().Train; got.ADMMMaxIter != 0 || got.ADMMTol != 0 ||
		got.DisableWarmStart || got.DisablePeriodicity || len(got.CandidatePeriods) != 0 {
		t.Fatalf("rejected updates leaked into the config: %+v", got)
	}
}

// TestForecastJSONByteCache pins the rendered-bytes fast path: a hit
// returns the identical buffer (no re-marshal), the bytes match what
// encoding the Forecast result produces, and every model-swapping path
// — ingest, train, config update, restore — invalidates it.
func TestForecastJSONByteCache(t *testing.T) {
	const now = 4 * 3600.0
	e := trainedEngine(t, now)
	b1, err := e.ForecastJSON(now, now+3600, 60)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := e.Forecast(now, now+3600, 60)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(pts)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(b1, want) {
		t.Fatalf("cached body differs from encoding the points:\n%s\nvs\n%s", b1, want)
	}
	b2, err := e.ForecastJSON(now, now+3600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if &b1[0] != &b2[0] {
		t.Fatal("identical forecast re-rendered instead of hitting the byte cache")
	}

	invalidate := []struct {
		name string
		do   func() error
	}{
		{"ingest", func() error {
			_, err := e.Ingest([]float64{now + 1})
			return err
		}},
		{"train", func() error {
			_, err := e.Train()
			return err
		}},
		{"config update", func() error {
			ec := e.EngineConfig()
			ec.Pending = ec.Pending + 1
			_, err := e.SetEngineConfig(ec)
			return err
		}},
	}
	prev := b2
	for _, tc := range invalidate {
		if err := tc.do(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		b, err := e.ForecastJSON(now, now+3600, 60)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if &b[0] == &prev[0] {
			t.Fatalf("forecast byte cache survived %s", tc.name)
		}
		prev = b
	}

	// Restore into a fresh engine: its bytes are its own, and — the
	// stale-bytes regression this guards — rendered from the restored
	// model, not inherited from any prior serving state.
	blob, err := e.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	dst, err := New(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	b3, err := dst.ForecastJSON(now, now+3600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if &b3[0] == &prev[0] {
		t.Fatal("restored engine shares forecast bytes with its source")
	}
	if !bytes.Equal(b3, prev) {
		t.Fatal("restored engine renders different forecast bytes for the same model")
	}
}

// TestConcurrentWarmRefits drives a registry of workloads through
// repeated ingest + RetrainAll sweeps with concurrent forecast readers —
// the steady state of scalerd — under the race detector: warm states
// are shared between the serving model and the refit pool, so this is
// the test that proves the sharing is read-only.
func TestConcurrentWarmRefits(t *testing.T) {
	const now = 4 * 3600.0
	cfg := testConfig(now)
	r, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workloads = 8
	for i := 0; i < workloads; i++ {
		e, err := r.GetOrCreate(fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Ingest(trafficArrivals(int64(i+1), now)); err != nil {
			t.Fatal(err)
		}
	}
	if refitted, failed := r.RetrainAll(4); refitted != workloads || failed != 0 {
		t.Fatalf("initial sweep: refitted %d, failed %d", refitted, failed)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < workloads; i++ {
		e, _ := r.Get(fmt.Sprintf("w%d", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.ForecastJSON(now, now+1800, 60); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < workloads; i++ {
			e, _ := r.Get(fmt.Sprintf("w%d", i))
			if _, err := e.Ingest([]float64{now + float64(round*10+i)}); err != nil {
				t.Fatal(err)
			}
		}
		if refitted, failed := r.RetrainAll(4); refitted != workloads || failed != 0 {
			t.Fatalf("sweep %d: refitted %d, failed %d", round, refitted, failed)
		}
	}
	close(stop)
	wg.Wait()

	// Most sweep refits warm-start; the remainder legitimately fall back
	// cold when a new arrival shifts the detected period by a bin (the
	// objective changed, so the old solution must not transfer).
	warm, cold := uint64(0), uint64(0)
	for i := 0; i < workloads; i++ {
		st, _ := r.Get(fmt.Sprintf("w%d", i))
		s := st.Stats()
		warm += s.WarmStartRefits
		cold += s.ColdStartRefits
	}
	total := uint64(4 * workloads) // initial sweep + 3 refit sweeps
	if warm+cold != total {
		t.Fatalf("warm %d + cold %d != %d refits", warm, cold, total)
	}
	if warm < uint64(3*workloads)/2 {
		t.Fatalf("only %d of %d sweep refits warm-started", warm, 3*workloads)
	}
}
