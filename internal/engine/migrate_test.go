package engine

import (
	"testing"

	"robustscaler/internal/store"
)

// SnapshotWorkloadTo is the migration gate's durability step: it must
// rewrite exactly the named workload's blob, carry every other
// manifested workload by ID untouched, and leave a snapshot the
// ordinary restore path accepts.
func TestSnapshotWorkloadTo(t *testing.T) {
	const now = 4 * 3600.0
	dir := t.TempDir()
	reg, err := NewRegistry(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"a", "b", "c"}
	for i, id := range ids {
		e, err := reg.GetOrCreate(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Ingest(trafficArrivals(int64(i+1), now)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SnapshotTo(st); err != nil {
		t.Fatal(err)
	}

	// Mutate every workload, persist only "b".
	before := map[string]int{}
	for i, id := range ids {
		e, _ := reg.Get(id)
		before[id] = e.Status().Arrivals
		if _, err := e.Ingest([]float64{now + 10 + float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.SnapshotWorkloadTo(st, "b"); err != nil {
		t.Fatal(err)
	}

	// A fresh registry restored from disk sees b's new arrival and the
	// others' pre-mutation state.
	r2, err := NewRegistry(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := r2.RestoreFrom(st); err != nil || n != len(ids) {
		t.Fatalf("restore: %d, %v", n, err)
	}
	for _, id := range ids {
		e, ok := r2.Get(id)
		if !ok {
			t.Fatalf("workload %s missing after per-workload snapshot", id)
		}
		want := before[id]
		if id == "b" {
			want++
		}
		if got := e.Status().Arrivals; got != want {
			t.Fatalf("restored %s arrivals = %d, want %d", id, got, want)
		}
	}

	// The per-workload commit primes the incremental bookkeeping: the
	// next full snapshot rewrites only the still-dirty workloads.
	stats, err := reg.SnapshotTo(st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != 2 || stats.Total != len(ids) {
		t.Fatalf("full snapshot after per-workload commit wrote %d of %d, want 2 of %d",
			stats.Written, stats.Total, len(ids))
	}

	// Unknown workloads are an error, and the snapshot is untouched.
	if err := reg.SnapshotWorkloadTo(st, "ghost"); err == nil {
		t.Fatal("per-workload snapshot of unregistered workload succeeded")
	}
	if got := st.Len(); got != len(ids) {
		t.Fatalf("store covers %d workloads after rejected snapshot, want %d", got, len(ids))
	}
}
