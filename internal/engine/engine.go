// Package engine owns the model lifecycle of scaled workloads: each
// Engine holds one workload's arrival history, fitted NHPP model and
// plan/forecast math, and a Registry multiplexes many such workloads in
// one process with per-workload locking (sharded — no global mutex) plus
// a background retraining worker pool. The HTTP control plane
// (internal/server) is a thin routing layer over this package, the shape
// a reconciler-style autoscaler operator integrates with: one registry
// of scaled targets, each with an isolated model and concurrent
// retraining.
//
// The registry is also the unit of durability: Registry.Snapshot and
// Registry.Restore persist every workload's history, model and config
// through internal/store's atomic on-disk format (per-workload
// serialization via Engine.MarshalState / Engine.RestoreState), and a
// background Snapshotter keeps the snapshot fresh the same way the
// Retrainer keeps models fresh.
package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"robustscaler"
	"robustscaler/internal/decision"
	"robustscaler/internal/stats"
	"robustscaler/internal/timeseries"
)

// Sentinel errors; the HTTP layer maps them onto status codes.
var (
	// ErrNoData means training was requested before enough arrivals.
	ErrNoData = errors.New("need at least 2 recorded arrivals")
	// ErrNoModel means a plan/forecast was requested before training.
	ErrNoModel = errors.New("no trained model; train first")
	// ErrInvalid wraps request-validation failures.
	ErrInvalid = errors.New("invalid request")
)

// Config parameterizes one workload's engine (and, via Registry, every
// workload it creates).
type Config struct {
	// Dt is the modeling bin width in seconds.
	Dt float64
	// Pending is the instance startup time τ in seconds.
	Pending float64
	// Train configures model fitting.
	Train robustscaler.TrainConfig
	// HistoryWindow bounds the retained arrival history in seconds;
	// 0 keeps everything.
	HistoryWindow float64
	// MCSamples for the rt/cost plan variants.
	MCSamples int
	// Seed drives Monte Carlo draws.
	Seed int64
	// Now supplies the current time as a Unix-epoch-like second count;
	// defaults to time.Now. Tests inject a fake clock.
	Now func() float64
}

// DefaultConfig returns a production-shaped configuration.
func DefaultConfig() Config {
	return Config{
		Dt:            60,
		Pending:       13,
		Train:         robustscaler.DefaultTrainConfig(),
		HistoryWindow: 28 * 86400,
		MCSamples:     1000,
	}
}

// validate normalizes defaults in place and rejects unusable settings.
func (c *Config) validate() error {
	if c.Dt <= 0 {
		return fmt.Errorf("engine: non-positive Dt %g", c.Dt)
	}
	if c.Pending < 0 {
		return fmt.Errorf("engine: negative pending time %g", c.Pending)
	}
	if c.MCSamples <= 0 {
		c.MCSamples = 1000
	}
	if c.Now == nil {
		c.Now = func() float64 { return float64(time.Now().UnixNano()) / 1e9 }
	}
	return nil
}

// Engine is the scaling brain of a single workload: sorted arrival
// history, the current NHPP model, and the decision math that turns the
// model into creation plans. All methods are safe for concurrent use,
// with one carve-out: RestoreState rewrites the configuration that
// other methods read without locking, so it must complete before the
// engine serves traffic (the boot sequence in cmd/scalerd guarantees
// this). Model fitting runs outside the lock so a slow refit never
// blocks ingest or planning.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	arrivals []float64 // sorted
	model    *robustscaler.Model
	trainedN int // arrivals included in the current model
	// gen counts ingested batches; trainedGen is the gen the current
	// model saw. Staleness is a generation comparison, not an arrival
	// count: with a full history window the trim can remove exactly as
	// many points as a batch adds, leaving the count unchanged while the
	// data under the model rolls over.
	gen        int64
	trainedGen int64
	// failedGen is the gen of the last failed fit; the background
	// retrainer skips the workload until new arrivals advance gen, so a
	// permanently degenerate history isn't refit on every sweep.
	failedGen int64
	rng       *rand.Rand
}

// New creates an Engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Config returns the engine's (normalized) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Now reads the engine's clock — the injectable time source callers use
// to default request anchors consistently with the engine.
func (e *Engine) Now() float64 { return e.cfg.Now() }

// maxTimestamp bounds accepted arrival epochs (seconds): ~31M years
// either side of the epoch — far past any clock, but small enough that
// a stray millisecond-scaled or corrupted value can't wedge training
// with an astronomically wide series or trim away the real history.
const maxTimestamp = 1e15

// ValidateTimestamps rejects batches Ingest would refuse, so callers
// can vet a batch before creating a workload for it.
func ValidateTimestamps(timestamps []float64) error {
	for _, t := range timestamps {
		if math.IsNaN(t) || t < -maxTimestamp || t > maxTimestamp {
			return fmt.Errorf("%w: timestamp %g out of range", ErrInvalid, t)
		}
	}
	return nil
}

// Ingest records a batch of arrival timestamps and returns the retained
// total. The batch is sorted on its own and, in the steady state of
// in-order traffic, appended in O(batch); only a batch overlapping
// already-recorded history pays a linear merge — never a full re-sort.
func (e *Engine) Ingest(timestamps []float64) (int, error) {
	if len(timestamps) == 0 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return len(e.arrivals), nil
	}
	if err := ValidateTimestamps(timestamps); err != nil {
		return 0, err
	}
	batch := append([]float64(nil), timestamps...)
	if !sort.Float64sAreSorted(batch) {
		sort.Float64s(batch)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// A batch that already falls entirely outside the history window
	// (e.g. a backfill replaying expired data) changes nothing: skip the
	// merge and the gen bump so it doesn't trigger a redundant refit.
	if n := len(e.arrivals); n > 0 && e.cfg.HistoryWindow > 0 &&
		batch[len(batch)-1] < e.arrivals[n-1]-e.cfg.HistoryWindow {
		return n, nil
	}
	e.gen++
	if n := len(e.arrivals); n == 0 || batch[0] >= e.arrivals[n-1] {
		e.arrivals = append(e.arrivals, batch...)
	} else {
		e.arrivals = mergeSorted(e.arrivals, batch)
	}
	if e.cfg.HistoryWindow > 0 {
		cut := e.arrivals[len(e.arrivals)-1] - e.cfg.HistoryWindow
		if i := sort.SearchFloat64s(e.arrivals, cut); i > 0 {
			// Re-slice rather than compact: a memmove of the whole
			// retained history per batch would make steady-state ingest
			// O(total) again. The dead prefix is reclaimed when append
			// outgrows the backing array, which amortizes to O(batch).
			e.arrivals = e.arrivals[i:]
		}
	}
	return len(e.arrivals), nil
}

// mergeSorted merges two sorted slices into a fresh sorted slice.
func mergeSorted(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// TrainInfo reports the outcome of a fit.
type TrainInfo struct {
	Bins          int     `json:"bins"`
	PeriodSeconds float64 `json:"period_seconds"`
	Iterations    int     `json:"admm_iterations"`
	Converged     bool    `json:"converged"`
	// Installed is false when a concurrent fit over fresher arrivals won
	// the swap; the stats above then describe the discarded model.
	Installed bool `json:"installed"`
}

// Train snapshots the arrival history, fits the NHPP model (outside the
// lock), and installs it unless a concurrent fit already covered more
// arrivals.
func (e *Engine) Train() (TrainInfo, error) {
	e.mu.Lock()
	arr := append([]float64(nil), e.arrivals...)
	gen := e.gen
	e.mu.Unlock()
	if len(arr) < 2 {
		return TrainInfo{}, ErrNoData
	}
	// Bound the series the fit materializes: a history whose span/Δt is
	// astronomical (one stray far-off timestamp with no history window)
	// must fail cleanly instead of allocating an O(span/Δt) series in
	// the background retrainer.
	if bins := (arr[len(arr)-1] - arr[0]) / e.cfg.Dt; bins > maxTrainBins {
		e.mu.Lock()
		if gen > e.failedGen {
			e.failedGen = gen
		}
		e.mu.Unlock()
		return TrainInfo{}, fmt.Errorf("%w: history spans %.3g bins (max %g); trim or set HistoryWindow", ErrInvalid, bins, float64(maxTrainBins))
	}
	series := buildSeries(arr, e.cfg.Dt)
	// The arrival history is already bounded to HistoryWindow at ingest,
	// so the fit covers the whole series (window 0).
	model, err := robustscaler.FitWindow(series, 0, e.cfg.Train)
	if err != nil {
		e.mu.Lock()
		if gen > e.failedGen {
			e.failedGen = gen
		}
		e.mu.Unlock()
		return TrainInfo{}, fmt.Errorf("training failed: %w", err)
	}
	e.mu.Lock()
	installed := gen >= e.trainedGen
	if installed {
		e.model = model
		e.trainedN = len(arr)
		e.trainedGen = gen
	}
	e.mu.Unlock()
	return TrainInfo{
		Bins:          series.Len(),
		PeriodSeconds: model.PeriodSeconds,
		Iterations:    model.FitStats.Iterations,
		Converged:     model.FitStats.Converged,
		Installed:     installed,
	}, nil
}

// Retrain refits only when arrivals accumulated since the last fit — the
// idempotent step the background worker pool calls on every sweep. It
// reports whether a refit ran; on error the previous model is kept, per
// the retraining semantics of robustscaler.FitWindow.
func (e *Engine) Retrain() (bool, error) {
	e.mu.Lock()
	stale := len(e.arrivals) >= 2 && e.gen != e.trainedGen && e.gen != e.failedGen
	e.mu.Unlock()
	if !stale {
		return false, nil
	}
	_, err := e.Train()
	return err == nil, err
}

// buildSeries bins arrivals with the configured Δt, aligned to the first
// arrival.
func buildSeries(arr []float64, dt float64) *timeseries.Series {
	start := arr[0]
	end := arr[len(arr)-1] + dt
	return timeseries.FromArrivals(arr, start, end, dt)
}

// PlanRequest parameterizes one planning round.
type PlanRequest struct {
	// Variant is "hp" (default), "rt" or "cost".
	Variant string
	// Target is the HP probability, RT wait budget, or cost idle budget.
	Target float64
	// Horizon bounds how far ahead creations are planned, seconds.
	Horizon float64
	// Now anchors the plan; NaN or 0 with HasNow false uses the clock.
	Now    float64
	HasNow bool
}

// PlanEntry is one planned instance creation.
type PlanEntry struct {
	QueryIndex int     `json:"query_index"`
	CreateAt   float64 `json:"create_at"`
	LeadSecs   float64 `json:"lead_seconds"`
}

// Plan is a full planning-round result.
type Plan struct {
	Now     float64     `json:"now"`
	Variant string      `json:"variant"`
	Target  float64     `json:"target"`
	Kappa   int         `json:"kappa"`
	Plan    []PlanEntry `json:"plan"`
}

// maxPlanEntries bounds one planning round.
const maxPlanEntries = 10000

// maxTrainBins bounds the series a fit materializes (~3.8 years of
// minute bins).
const maxTrainBins = 2_000_000

// Plan computes upcoming instance creation times from the current model:
// the κ threshold (eq. 8) plus one creation time per upcoming query via
// the variant's solver.
func (e *Engine) Plan(req PlanRequest) (*Plan, error) {
	e.mu.Lock()
	model := e.model
	e.mu.Unlock()
	if model == nil {
		return nil, ErrNoModel
	}
	variant := req.Variant
	if variant == "" {
		variant = "hp"
	}
	target := req.Target
	horizon := req.Horizon
	now := req.Now
	if !req.HasNow {
		now = e.cfg.Now()
	}
	// A NaN passes every range check below (all comparisons false) and
	// eventually poisons the decision horizon into an index panic.
	for _, v := range []float64{now, target, horizon} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite plan parameter", ErrInvalid)
		}
	}

	tau := e.cfg.Pending
	alpha := 0.1
	var rng *rand.Rand
	var tauS, xi []float64
	switch variant {
	case "hp":
		if target <= 0 || target >= 1 {
			return nil, fmt.Errorf("%w: hp target must be in (0,1)", ErrInvalid)
		}
		alpha = 1 - target
	case "rt", "cost":
		// Monte Carlo draws come from a child RNG forked under the lock,
		// so concurrent planning rounds stay race-free yet deterministic
		// in sequential use. The parent stream only advances for the MC
		// variants — interleaved hp or invalid requests must not perturb
		// a reproducible rt/cost sequence. The sample buffers are also
		// only needed here; hp plans are quantile-exact.
		e.mu.Lock()
		rng = rand.New(rand.NewSource(e.rng.Int63()))
		e.mu.Unlock()
		tauS = make([]float64, e.cfg.MCSamples)
		for i := range tauS {
			tauS[i] = tau
		}
		xi = make([]float64, e.cfg.MCSamples)
	default:
		return nil, fmt.Errorf("%w: unknown variant %q", ErrInvalid, variant)
	}
	kappa := decision.Kappa(model.Rate(now), stats.Deterministic{Value: tau}, alpha, nil, 0)
	h := decision.NewHorizon(model.NHPP, now, e.cfg.Dt/4, 0)

	resp := &Plan{Now: now, Variant: variant, Target: target, Kappa: kappa}
planLoop:
	for i := 1; len(resp.Plan) < maxPlanEntries; i++ {
		var x float64
		switch variant {
		case "hp":
			qv, ok := h.QuantileArrival(i, alpha)
			if !ok {
				break planLoop // no more mass
			}
			x = qv - tau
		case "rt", "cost":
			for k := range xi {
				u, ok := h.SampleArrival(rng, i)
				if !ok {
					break planLoop // no more mass
				}
				xi[k] = u - now
			}
			if variant == "rt" {
				x = now + decision.SolveRT(xi, tauS, target)
			} else {
				x = now + decision.SolveCost(xi, tauS, target)
			}
		}
		if x < now {
			x = now
		}
		if x > now+horizon {
			break
		}
		resp.Plan = append(resp.Plan, PlanEntry{QueryIndex: i, CreateAt: x, LeadSecs: x - now})
	}
	return resp, nil
}

// ForecastPoint is one sample of the predicted intensity.
type ForecastPoint struct {
	T   float64 `json:"t"`
	QPS float64 `json:"qps"`
}

// Forecast samples the modeled intensity λ(t) on [from, to) at the given
// step.
func (e *Engine) Forecast(from, to, step float64) ([]ForecastPoint, error) {
	e.mu.Lock()
	model := e.model
	e.mu.Unlock()
	if model == nil {
		return nil, ErrNoModel
	}
	// NaN bounds defeat every comparison below and make the loop spin
	// forever; direct API callers don't pass the HTTP layer's screening.
	for _, v := range []float64{from, to, step} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite forecast parameter", ErrInvalid)
		}
	}
	if step <= 0 || to <= from || (to-from)/step > 100000 {
		return nil, fmt.Errorf("%w: invalid range/step", ErrInvalid)
	}
	// Advance by index, not accumulation: at large magnitudes t += step
	// can round back to t and loop forever.
	var pts []ForecastPoint
	for i := 0; ; i++ {
		t := from + float64(i)*step
		if t >= to {
			break
		}
		pts = append(pts, ForecastPoint{T: t, QPS: model.Rate(t)})
	}
	return pts, nil
}

// Status is a workload snapshot.
type Status struct {
	Arrivals      int     `json:"arrivals_recorded"`
	TrainedOn     int     `json:"arrivals_in_model"`
	ModelReady    bool    `json:"model_ready"`
	PeriodSeconds float64 `json:"period_seconds"`
	RateNow       float64 `json:"rate_now_qps"`
}

// Status reports the workload's ingestion and model state.
func (e *Engine) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Status{
		Arrivals:   len(e.arrivals),
		TrainedOn:  e.trainedN,
		ModelReady: e.model != nil,
	}
	if e.model != nil {
		st.PeriodSeconds = e.model.PeriodSeconds
		st.RateNow = e.model.Rate(e.cfg.Now())
	}
	return st
}
