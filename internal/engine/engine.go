// Package engine owns the model lifecycle of scaled workloads: each
// Engine holds one workload's arrival history, fitted NHPP model and
// plan/forecast math, and a Registry multiplexes many such workloads in
// one process with per-workload locking (sharded — no global mutex) plus
// a background retraining worker pool. The HTTP control plane
// (internal/server) is a thin routing layer over this package, the shape
// a reconciler-style autoscaler operator integrates with: one registry
// of scaled targets, each with an isolated model and concurrent
// retraining.
//
// The registry is also the unit of durability: Registry.Snapshot and
// Registry.Restore persist every workload's history, model and config
// through internal/store's atomic on-disk format (per-workload
// serialization via Engine.MarshalState / Engine.RestoreState), and a
// background Snapshotter keeps the snapshot fresh the same way the
// Retrainer keeps models fresh.
package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"robustscaler"
	"robustscaler/internal/decision"
	"robustscaler/internal/metrics"
	"robustscaler/internal/nhpp"
	"robustscaler/internal/stats"
	"robustscaler/internal/timeseries"
	"robustscaler/internal/wal"
)

// Sentinel errors; the HTTP layer maps them onto status codes.
var (
	// ErrNoData means training was requested before enough arrivals.
	ErrNoData = errors.New("need at least 2 recorded arrivals")
	// ErrNoModel means a plan/forecast was requested before training.
	ErrNoModel = errors.New("no trained model; train first")
	// ErrInvalid wraps request-validation failures.
	ErrInvalid = errors.New("invalid request")
)

// Config parameterizes one workload's engine (and, via Registry, every
// workload it creates). The per-workload fields (Dt, Pending,
// HistoryWindow, MCSamples, the plan targets and RetrainEvery) only
// seed the workload's initial EngineConfig — after creation they are
// read, persisted and updated through the versioned config plane
// (EngineConfig / SetEngineConfig), so on a running daemon the flags
// behind this struct are fleet defaults, not live settings.
type Config struct {
	// Dt is the modeling bin width in seconds.
	Dt float64
	// Pending is the instance startup time τ in seconds.
	Pending float64
	// Train configures model fitting.
	Train robustscaler.TrainConfig
	// HistoryWindow bounds the retained arrival history in seconds;
	// 0 keeps everything.
	HistoryWindow float64
	// MCSamples for the rt/cost plan variants.
	MCSamples int
	// MCWorkers bounds the pool that parallelizes Monte Carlo draws
	// within one planning round; ≤0 uses GOMAXPROCS. Purely a latency
	// knob: plans are bit-identical for every worker count, because
	// samples are drawn from fixed per-block RNG streams (see mc.go).
	MCWorkers int
	// Seed drives Monte Carlo draws.
	Seed int64
	// Now supplies the current time as a Unix-epoch-like second count;
	// defaults to time.Now. Tests inject a fake clock.
	Now func() float64
	// HPTarget is the default hit-probability target for hp plans;
	// 0 means 0.9.
	HPTarget float64
	// RTTarget is the default wait budget (seconds) for rt plans;
	// 0 means 0.9 (the pre-config-plane request default).
	RTTarget float64
	// CostTarget is the default idle budget (seconds) for cost plans;
	// 0 means 0.9 (the pre-config-plane request default).
	CostTarget float64
	// PlanHorizon is the default planning horizon in seconds; 0 means
	// 600.
	PlanHorizon float64
	// RetrainEvery is the per-workload minimum seconds between
	// background refits; 0 refits whenever stale.
	RetrainEvery float64
}

// DefaultConfig returns a production-shaped configuration.
func DefaultConfig() Config {
	return Config{
		Dt:            60,
		Pending:       13,
		Train:         robustscaler.DefaultTrainConfig(),
		HistoryWindow: 28 * 86400,
		MCSamples:     1000,
	}
}

// validate normalizes defaults in place and rejects unusable settings.
func (c *Config) validate() error {
	if c.Dt <= 0 {
		return fmt.Errorf("engine: non-positive Dt %g", c.Dt)
	}
	if c.Pending < 0 {
		return fmt.Errorf("engine: negative pending time %g", c.Pending)
	}
	if c.MCSamples <= 0 {
		c.MCSamples = 1000
	}
	if c.MCWorkers < 0 {
		c.MCWorkers = 0
	}
	if c.Now == nil {
		c.Now = func() float64 { return float64(time.Now().UnixNano()) / 1e9 }
	}
	if c.HPTarget == 0 {
		c.HPTarget = 0.9
	}
	if c.RTTarget == 0 {
		c.RTTarget = 0.9
	}
	if c.CostTarget == 0 {
		c.CostTarget = 0.9
	}
	if c.PlanHorizon == 0 {
		c.PlanHorizon = 600
	}
	return nil
}

// engineConfig derives the initial per-workload EngineConfig from a
// normalized template. applyEngineConfig is its inverse; a new
// per-workload knob must be added to both (and to the EngineConfig
// struct itself).
func (c Config) engineConfig() EngineConfig {
	return EngineConfig{
		Version:       1,
		Dt:            c.Dt,
		Pending:       c.Pending,
		HistoryWindow: c.HistoryWindow,
		MCSamples:     c.MCSamples,
		HPTarget:      c.HPTarget,
		RTTarget:      c.RTTarget,
		CostTarget:    c.CostTarget,
		PlanHorizon:   c.PlanHorizon,
		RetrainEvery:  c.RetrainEvery,
		// Train starts at the zero value: every knob at "fleet default",
		// i.e. the template's TrainConfig applies unmodified.
	}
}

// applyEngineConfig returns a copy of c with the per-workload tunables
// replaced by ec's values — the inverse of engineConfig.
func (c Config) applyEngineConfig(ec EngineConfig) Config {
	c.Dt = ec.Dt
	c.Pending = ec.Pending
	c.HistoryWindow = ec.HistoryWindow
	c.MCSamples = ec.MCSamples
	c.HPTarget = ec.HPTarget
	c.RTTarget = ec.RTTarget
	c.CostTarget = ec.CostTarget
	c.PlanHorizon = ec.PlanHorizon
	c.RetrainEvery = ec.RetrainEvery
	c.Train = overlayTrainKnobs(c.Train, ec.Train, ec.Dt)
	return c
}

// overlayTrainKnobs overlays the per-workload training knobs onto the
// fleet default TrainConfig: zero-valued knobs keep the default. dt is
// the workload's modeling bin width, needed to convert the
// candidate-period knob (seconds) into detector bins.
func overlayTrainKnobs(tc robustscaler.TrainConfig, k TrainKnobs, dt float64) robustscaler.TrainConfig {
	if k.ADMMMaxIter > 0 {
		tc.Fit.MaxIter = k.ADMMMaxIter
	}
	if k.ADMMTol > 0 {
		tc.Fit.Tol = k.ADMMTol
	}
	if k.DisablePeriodicity {
		tc.DetectPeriodicity = false
	}
	if len(k.CandidatePeriods) > 0 && dt > 0 {
		cands := make([]int, 0, len(k.CandidatePeriods))
		for _, p := range k.CandidatePeriods {
			if bins := int(math.Round(p / dt)); bins >= 2 {
				cands = append(cands, bins)
			}
		}
		tc.Periodicity.CandidatePeriods = cands
	}
	return tc
}

// Engine is the scaling brain of a single workload: sorted arrival
// history, the current NHPP model, and the decision math that turns the
// model into creation plans. All methods are safe for concurrent use,
// with one carve-out: RestoreState rewrites the RNG seed that
// MarshalState reads, so it must complete before the engine serves
// traffic (the boot sequence in cmd/scalerd guarantees this). Model
// fitting runs outside the lock so a slow refit never blocks ingest or
// planning.
//
// cfg holds the static, immutable-after-New parts (Train sub-config,
// clock, MC worker pool, seed); the per-workload tunables live in ec,
// guarded by mu, because SetEngineConfig mutates them at runtime.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	ec       EngineConfig
	arrivals []float64 // sorted
	model    *robustscaler.Model
	trainedN int // arrivals included in the current model
	// stateGen counts durable-state mutations (ingest, train install,
	// restore, config update); the snapshotter uses it to skip workloads
	// unchanged since the last persisted generation.
	stateGen uint64
	// lastTrainAt is when the current model was installed (engine clock
	// seconds); RetrainEvery gates the background sweep against it. Not
	// persisted: after a restore the first due refit may run immediately.
	lastTrainAt float64
	// gen counts ingested batches; trainedGen is the gen the current
	// model saw. Staleness is a generation comparison, not an arrival
	// count: with a full history window the trim can remove exactly as
	// many points as a batch adds, leaving the count unchanged while the
	// data under the model rolls over.
	gen        int64
	trainedGen int64
	// failedGen is the gen of the last failed fit; the background
	// retrainer skips the workload until new arrivals advance gen, so a
	// permanently degenerate history isn't refit on every sweep.
	failedGen int64
	rng       *rand.Rand

	// wal, when attached (Registry.AttachWAL — before the engine serves
	// traffic), makes every accepted batch durable before it is
	// acknowledged: ingest appends the batch under walSeq+1 and only
	// then mutates state. walSeq is the workload's monotone batch
	// sequence; it rides in the snapshot blob so boot-time replay knows
	// which log records the snapshot already covers (see wal.go).
	wal    *wal.Log
	walSeq uint64
	// staleSince is the engine-clock time the model first fell behind
	// the arrival history; 0 while fresh. The staleness-threshold alert
	// gauges read it. Not persisted: after a restore a still-stale model
	// re-ages from the boot clock, which can only delay an alert by one
	// restart.
	staleSince float64

	// Result cache for Plan/Forecast, also guarded by mu. Entries are
	// valid only while (cacheGen, cacheModel, cacheCfgVer) still match
	// (gen, model, ec.Version); ingest bumps gen, train installs a new
	// model pointer, restore resets all three and a config update bumps
	// the version (plans depend on Pending/MCSamples/...), so each
	// invalidates the cache without touching it. Bounded by
	// maxCachedResults; see cachedPlanLocked.
	cacheGen    int64
	cacheModel  *robustscaler.Model
	cacheCfgVer int64
	planCache   map[planKey]*Plan
	fcCache     map[forecastKey]*forecastEntry

	// m holds the workload's lifetime counters (see metrics.go). The
	// fields are atomic: the hot paths bump them without extra locking,
	// and Stats reads them lock-free. fleet and fitSeconds, when set
	// (Registry.Instrument — before the engine serves traffic),
	// dual-write each event into the fleet-wide series, so a /metrics
	// scrape never has to walk engines to total the counters (and the
	// totals stay monotonic when workloads are deleted).
	m          engineMetrics
	fleet      *fleetCounters
	fitSeconds *metrics.Histogram
}

// planKey identifies one cacheable planning round. Clock-anchored
// requests (HasNow false) are keyed on a quantized now — see Plan.
// hasNow keeps the two namespaces apart: an explicit now= that happens
// to land on a quantum multiple must not be served a clock-anchored
// round computed elsewhere in that window (its Now could be off by up
// to the quantum, and the explicit form promises exact anchoring).
type planKey struct {
	variant string
	target  float64
	horizon float64
	now     float64
	hasNow  bool
}

// forecastKey identifies one cacheable forecast.
type forecastKey struct {
	from, to, step float64
}

// maxCachedResults bounds the per-engine result cache. Dashboards
// repeat a handful of distinct queries, so the bound only matters when
// callers sweep parameters; on overflow the cache is simply reset.
const maxCachedResults = 256

// New creates an Engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ec := cfg.engineConfig()
	if err := ec.validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, ec: ec, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Config returns the engine's configuration in the constructor's shape:
// the static template fields plus the current values of the
// per-workload tunables (which may have moved since construction via
// SetEngineConfig).
func (e *Engine) Config() Config {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg.applyEngineConfig(e.ec)
}

// Now reads the engine's clock — the injectable time source callers use
// to default request anchors consistently with the engine.
func (e *Engine) Now() float64 { return e.cfg.Now() }

// maxTimestamp bounds accepted arrival epochs (seconds): ~31M years
// either side of the epoch — far past any clock, but small enough that
// a stray millisecond-scaled or corrupted value can't wedge training
// with an astronomically wide series or trim away the real history.
const maxTimestamp = 1e15

// ValidateTimestamps rejects batches Ingest would refuse, so callers
// can vet a batch before creating a workload for it.
func ValidateTimestamps(timestamps []float64) error {
	for _, t := range timestamps {
		if math.IsNaN(t) || t < -maxTimestamp || t > maxTimestamp {
			return fmt.Errorf("%w: timestamp %g out of range", ErrInvalid, t)
		}
	}
	return nil
}

// Ingest records a batch of arrival timestamps and returns the retained
// total. The batch is sorted on its own and, in the steady state of
// in-order traffic, appended in O(batch); only a batch overlapping
// already-recorded history pays a linear merge — never a full re-sort.
func (e *Engine) Ingest(timestamps []float64) (int, error) {
	if len(timestamps) == 0 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return len(e.arrivals), nil
	}
	if err := ValidateTimestamps(timestamps); err != nil {
		return 0, err
	}
	batch := append([]float64(nil), timestamps...)
	if !sort.Float64sAreSorted(batch) {
		sort.Float64s(batch)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// A batch that already falls entirely outside the history window
	// (e.g. a backfill replaying expired data) changes nothing: skip the
	// merge and the gen bump so it doesn't trigger a redundant refit.
	if n := len(e.arrivals); n > 0 && e.ec.HistoryWindow > 0 &&
		batch[len(batch)-1] < e.arrivals[n-1]-e.ec.HistoryWindow {
		return n, nil
	}
	// Durability before acknowledgment: if the log can't take the batch,
	// the request fails with nothing mutated (see appendWALLocked).
	if err := e.appendWALLocked([][]float64{batch}); err != nil {
		return 0, err
	}
	e.gen++
	e.stateGen++
	e.countIngest(uint64(len(batch)))
	if n := len(e.arrivals); n == 0 || batch[0] >= e.arrivals[n-1] {
		e.arrivals = append(e.arrivals, batch...)
	} else {
		e.arrivals = mergeSorted(e.arrivals, batch)
	}
	e.trimLocked()
	e.markStaleLocked()
	return len(e.arrivals), nil
}

// trimLocked drops arrivals older than the history window. Re-slice
// rather than compact: a memmove of the whole retained history per
// batch would make steady-state ingest O(total) again. The dead prefix
// is reclaimed when append outgrows the backing array, which amortizes
// to O(batch).
func (e *Engine) trimLocked() {
	if e.ec.HistoryWindow <= 0 || len(e.arrivals) == 0 {
		return
	}
	cut := e.arrivals[len(e.arrivals)-1] - e.ec.HistoryWindow
	if i := sort.SearchFloat64s(e.arrivals, cut); i > 0 {
		e.arrivals = e.arrivals[i:]
	}
}

// IngestSortedChunks is the append-only fast path behind streaming
// ingest (NDJSON/binary bodies): it records a batch that arrives as a
// sequence of chunks already proven sorted — within each chunk and
// non-decreasing across chunk boundaries — and already validated
// (ValidateTimestamps). Because the values need neither a defensive
// copy nor a sort, the only work under the lock is one exactly-sized
// reserve of the history array and a memcpy per chunk; a million-event
// request body therefore materializes exactly once, in the history
// itself.
//
// The sortedness contract is the caller's to uphold for the interior of
// each chunk (the streaming decoders prove it during their single
// pass); chunk *boundaries* are re-checked here because that costs one
// comparison per chunk. In-order chunks behind already-recorded history
// fall back to the linear merge, same as Ingest.
func (e *Engine) IngestSortedChunks(chunks [][]float64) (int, error) {
	total := 0
	last := math.Inf(-1)
	for _, c := range chunks {
		if len(c) == 0 {
			continue
		}
		if c[0] < last {
			return 0, fmt.Errorf("%w: chunks out of order (%g after %g)", ErrInvalid, c[0], last)
		}
		last = c[len(c)-1]
		total += len(c)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if total == 0 {
		return len(e.arrivals), nil
	}
	// Entirely behind the history window: a no-op, like Ingest.
	if n := len(e.arrivals); n > 0 && e.ec.HistoryWindow > 0 &&
		last < e.arrivals[n-1]-e.ec.HistoryWindow {
		return n, nil
	}
	// Durability before acknowledgment, same as Ingest. The chunks are
	// logged as one record (their concatenation is the sorted batch), so
	// replay reconstructs the identical history.
	if err := e.appendWALLocked(chunks); err != nil {
		return 0, err
	}
	e.gen++
	e.stateGen++
	e.countIngest(uint64(total))
	// One grow sized for the whole batch instead of append's doubling
	// dance — the batch size is known up front, which a streaming decode
	// earns us — plus 25% headroom. The headroom is what keeps
	// steady-state ingest O(batch): trimLocked drops the dead prefix by
	// re-slicing, which permanently donates that capacity, so an
	// exactly-sized reserve would overflow again on the very next batch
	// and re-copy the entire live window per append.
	if need := len(e.arrivals) + total; need > cap(e.arrivals) {
		grown := make([]float64, len(e.arrivals), need+need/4)
		copy(grown, e.arrivals)
		e.arrivals = grown
	}
	for _, c := range chunks {
		if len(c) == 0 {
			continue
		}
		if n := len(e.arrivals); n == 0 || c[0] >= e.arrivals[n-1] {
			e.arrivals = append(e.arrivals, c...)
		} else {
			// A straggler chunk behind recorded history: linear merge.
			// Only the leading chunks of a batch can take this path —
			// once one chunk appends past the old tail, the boundary
			// check above keeps every later chunk on the append path.
			e.arrivals = mergeSorted(e.arrivals, c)
		}
	}
	e.trimLocked()
	e.markStaleLocked()
	return len(e.arrivals), nil
}

// mergeSorted merges two sorted slices into a fresh sorted slice.
func mergeSorted(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// TrainInfo reports the outcome of a fit.
type TrainInfo struct {
	Bins          int     `json:"bins"`
	PeriodSeconds float64 `json:"period_seconds"`
	Iterations    int     `json:"admm_iterations"`
	Converged     bool    `json:"converged"`
	// WarmStarted reports that the fit was seeded from the previous
	// model's ADMM solution rather than a cold initial guess.
	WarmStarted bool `json:"warm_started"`
	// Installed is false when a concurrent fit over fresher arrivals won
	// the swap; the stats above then describe the discarded model.
	Installed bool `json:"installed"`
}

// Train snapshots the arrival history, fits the NHPP model (outside the
// lock), and installs it unless a concurrent fit already covered more
// arrivals.
//
// Refits over new data warm-start from the installed model's ADMM
// solution (unless the workload's TrainKnobs disable it): the training
// objective is strictly convex, so the result is the same model, reached
// in a fraction of the cold iteration count. A refit over unchanged data
// (gen == trainedGen — e.g. an explicit train request repeated) runs
// cold so it reproduces the installed model bit-for-bit.
func (e *Engine) Train() (TrainInfo, error) {
	e.mu.Lock()
	arr := append([]float64(nil), e.arrivals...)
	gen := e.gen
	dt := e.ec.Dt
	trainCfg := overlayTrainKnobs(e.cfg.Train, e.ec.Train, e.ec.Dt)
	var warm *nhpp.WarmState
	if e.model != nil && gen != e.trainedGen && !e.ec.Train.DisableWarmStart {
		warm = e.model.NHPP.WarmState()
	}
	e.mu.Unlock()
	if len(arr) < 2 {
		return TrainInfo{}, ErrNoData
	}
	// Bound the series the fit materializes: a history whose span/Δt is
	// astronomical (one stray far-off timestamp with no history window)
	// must fail cleanly instead of allocating an O(span/Δt) series in
	// the background retrainer.
	if bins := (arr[len(arr)-1] - arr[0]) / dt; bins > maxTrainBins {
		e.mu.Lock()
		if gen > e.failedGen {
			e.failedGen = gen
			// The failed marker is persisted (engineState.Failed): without
			// this bump an incremental snapshot would keep the pre-failure
			// blob and every boot would re-run the known-doomed fit once.
			e.stateGen++
		}
		e.mu.Unlock()
		e.countRefit(0, false, false, 0)
		return TrainInfo{}, fmt.Errorf("%w: history spans %.3g bins (max %g); trim or set HistoryWindow", ErrInvalid, bins, float64(maxTrainBins))
	}
	fitStart := time.Now()
	series := buildSeries(arr, dt)
	// The arrival history is already bounded to HistoryWindow at ingest,
	// so the fit covers the whole series (window 0).
	model, err := robustscaler.FitWindowWarm(series, 0, trainCfg, warm)
	fitDur := time.Since(fitStart)
	if h := e.fitSeconds; h != nil {
		h.Observe(fitDur.Seconds())
	}
	if err != nil {
		e.mu.Lock()
		if gen > e.failedGen {
			e.failedGen = gen
			e.stateGen++ // the persisted Failed marker changed; see above
		}
		e.mu.Unlock()
		e.countRefit(fitDur.Seconds(), false, false, 0)
		return TrainInfo{}, fmt.Errorf("training failed: %w", err)
	}
	e.countRefit(fitDur.Seconds(), true, model.FitStats.WarmStarted, uint64(model.FitStats.Iterations))
	e.mu.Lock()
	installed := gen >= e.trainedGen
	if installed {
		e.model = model
		e.trainedN = len(arr)
		e.trainedGen = gen
		e.stateGen++
		e.lastTrainAt = e.cfg.Now()
		if e.gen == e.trainedGen {
			e.staleSince = 0
		} else {
			// Arrivals landed during the fit: the fresh model is already
			// behind them, but only since now — the pre-fit staleness was
			// just cured.
			e.staleSince = e.cfg.Now()
		}
	}
	e.mu.Unlock()
	return TrainInfo{
		Bins:          series.Len(),
		PeriodSeconds: model.PeriodSeconds,
		Iterations:    model.FitStats.Iterations,
		Converged:     model.FitStats.Converged,
		WarmStarted:   model.FitStats.WarmStarted,
		Installed:     installed,
	}, nil
}

// Retrain refits only when arrivals accumulated since the last fit — the
// idempotent step the background worker pool calls on every sweep. It
// reports whether a refit ran; on error the previous model is kept, per
// the retraining semantics of robustscaler.FitWindow. A per-workload
// RetrainEvery additionally rate-limits refits of an existing model:
// a stale workload whose model is younger than the cadence is skipped
// until the next sweep (an explicit Train is never gated).
func (e *Engine) Retrain() (bool, error) {
	e.mu.Lock()
	stale := len(e.arrivals) >= 2 && e.gen != e.trainedGen && e.gen != e.failedGen
	if stale && e.model != nil && e.ec.RetrainEvery > 0 &&
		e.cfg.Now()-e.lastTrainAt < e.ec.RetrainEvery {
		stale = false
	}
	e.mu.Unlock()
	if !stale {
		return false, nil
	}
	_, err := e.Train()
	return err == nil, err
}

// buildSeries bins arrivals with the configured Δt, starting at the
// bin containing the first arrival. The start is snapped to the
// absolute Δt grid (a multiple of Δt, not arr[0] itself) so that
// consecutive refits of a sliding window land on the same grid: the
// previous fit's solution then seeds the next one at a whole-bin
// offset, which is what makes warm-started refits possible.
func buildSeries(arr []float64, dt float64) *timeseries.Series {
	start := math.Floor(arr[0]/dt) * dt
	if start > arr[0] {
		// Floor(x/dt)*dt can round up past x at extreme magnitudes; the
		// series must still begin at or before the first arrival.
		start -= dt
	}
	end := arr[len(arr)-1] + dt
	return timeseries.FromArrivals(arr, start, end, dt)
}

// PlanRequest parameterizes one planning round.
type PlanRequest struct {
	// Variant is "hp" (default), "rt" or "cost".
	Variant string
	// Target is the HP probability, RT wait budget, or cost idle budget.
	Target float64
	// Horizon bounds how far ahead creations are planned, seconds.
	Horizon float64
	// Now anchors the plan; NaN or 0 with HasNow false uses the clock.
	Now    float64
	HasNow bool
}

// PlanEntry is one planned instance creation.
type PlanEntry struct {
	QueryIndex int     `json:"query_index"`
	CreateAt   float64 `json:"create_at"`
	LeadSecs   float64 `json:"lead_seconds"`
}

// Plan is a full planning-round result.
type Plan struct {
	Now     float64     `json:"now"`
	Variant string      `json:"variant"`
	Target  float64     `json:"target"`
	Kappa   int         `json:"kappa"`
	Plan    []PlanEntry `json:"plan"`
}

// maxPlanEntries bounds one planning round.
const maxPlanEntries = 10000

// maxTrainBins bounds the series a fit materializes (~3.8 years of
// minute bins).
const maxTrainBins = 2_000_000

// Plan computes upcoming instance creation times from the current model:
// the κ threshold (eq. 8) plus one creation time per upcoming query via
// the variant's solver.
//
// Results are cached per (variant, target, horizon, now) until the next
// ingest, train or restore, so a dashboard polling the same query is an
// O(1) map hit instead of a horizon recomputation. Clock-anchored
// requests (no explicit now) share a cache slot per Dt/4 of wall time —
// the plan returned may be anchored up to Dt/4 seconds in the past,
// which is below the planning grid's own resolution; pass an explicit
// now for exact anchoring. The returned Plan is shared with the cache
// and must be treated as read-only.
func (e *Engine) Plan(req PlanRequest) (*Plan, error) {
	e.mu.Lock()
	model := e.model
	gen := e.gen
	ec := e.ec
	e.mu.Unlock()
	if model == nil {
		return nil, ErrNoModel
	}
	variant := req.Variant
	if variant == "" {
		variant = "hp"
	}
	target := req.Target
	horizon := req.Horizon
	now := req.Now
	if !req.HasNow {
		now = e.cfg.Now()
	}
	// A NaN passes every range check below (all comparisons false) and
	// eventually poisons the decision horizon into an index panic.
	for _, v := range []float64{now, target, horizon} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite plan parameter", ErrInvalid)
		}
	}

	tau := ec.Pending
	alpha := 0.1
	switch variant {
	case "hp":
		if target <= 0 || target >= 1 {
			return nil, fmt.Errorf("%w: hp target must be in (0,1)", ErrInvalid)
		}
		alpha = 1 - target
	case "rt", "cost":
	default:
		return nil, fmt.Errorf("%w: unknown variant %q", ErrInvalid, variant)
	}

	keyNow := now
	if !req.HasNow {
		q := ec.Dt / 4 // the planning grid step
		keyNow = math.Floor(now/q) * q
	}
	key := planKey{variant: variant, target: target, horizon: horizon, now: keyNow, hasNow: req.HasNow}
	if p, ok := e.cachedPlan(gen, model, ec.Version, key); ok {
		e.m.planHits.Inc()
		if f := e.fleet; f != nil {
			f.planHits.Inc()
		}
		return p, nil
	}
	e.m.planMisses.Inc()
	if f := e.fleet; f != nil {
		f.planMisses.Inc()
	}

	kappa := decision.Kappa(model.Rate(now), stats.Deterministic{Value: tau}, alpha, nil, 0)
	h := decision.NewHorizon(model.NHPP, now, ec.Dt/4, 0)
	var tauS []float64
	var sampler *mcSampler
	if variant == "rt" || variant == "cost" {
		// One parent-stream draw seeds the whole Monte Carlo round,
		// forked under the lock so concurrent rounds stay race-free yet
		// deterministic in sequential use. The parent only advances for
		// the MC variants — interleaved hp or invalid requests must not
		// perturb a reproducible rt/cost sequence. (A cache hit skips
		// the draw, which is equally deterministic: hits are a pure
		// function of the request sequence since the last invalidation.)
		e.mu.Lock()
		seed := e.rng.Int63()
		e.mu.Unlock()
		sampler = newMCSampler(h, now, ec.MCSamples, seed, e.cfg.MCWorkers)
		tauS = make([]float64, ec.MCSamples)
		for i := range tauS {
			tauS[i] = tau
		}
	}

	resp := &Plan{Now: now, Variant: variant, Target: target, Kappa: kappa}
planLoop:
	for i := 1; len(resp.Plan) < maxPlanEntries; i++ {
		var x float64
		switch variant {
		case "hp":
			qv, ok := h.QuantileArrival(i, alpha)
			if !ok {
				break planLoop // no more mass
			}
			x = qv - tau
		case "rt", "cost":
			if !sampler.draw(i) {
				break planLoop // no more mass
			}
			if variant == "rt" {
				x = now + decision.SolveRT(sampler.xi, tauS, target)
			} else {
				x = now + decision.SolveCost(sampler.xi, tauS, target)
			}
		}
		if x < now {
			x = now
		}
		if x > now+horizon {
			break
		}
		resp.Plan = append(resp.Plan, PlanEntry{QueryIndex: i, CreateAt: x, LeadSecs: x - now})
	}
	e.storePlan(gen, model, ec.Version, key, resp)
	return resp, nil
}

// cachedPlan returns the cached round for key, provided the cache still
// belongs to the (gen, model, cfgVer) the caller read.
func (e *Engine) cachedPlan(gen int64, model *robustscaler.Model, cfgVer int64, key planKey) (*Plan, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cacheGen != gen || e.cacheModel != model || e.cacheCfgVer != cfgVer || e.planCache == nil {
		return nil, false
	}
	p, ok := e.planCache[key]
	return p, ok
}

// storePlan caches a computed round unless the world moved on while it
// was being computed (an ingest, train or config update landed
// mid-flight) — a stale round is still correct to return once, but must
// not be served again.
func (e *Engine) storePlan(gen int64, model *robustscaler.Model, cfgVer int64, key planKey, p *Plan) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gen != gen || e.model != model || e.ec.Version != cfgVer {
		return
	}
	e.rebindCacheLocked(gen, model, cfgVer)
	if len(e.planCache) >= maxCachedResults {
		clear(e.planCache)
	}
	e.planCache[key] = p
}

// rebindCacheLocked points the cache at (gen, model, cfgVer), dropping
// every entry of a previous binding. Invalidation is lazy: ingest/
// train/restore/config updates only move gen, the model pointer or the
// config version, and the next lookup under the new binding misses.
func (e *Engine) rebindCacheLocked(gen int64, model *robustscaler.Model, cfgVer int64) {
	if e.cacheGen == gen && e.cacheModel == model && e.cacheCfgVer == cfgVer && e.planCache != nil {
		return
	}
	e.cacheGen, e.cacheModel, e.cacheCfgVer = gen, model, cfgVer
	e.planCache = make(map[planKey]*Plan)
	e.fcCache = make(map[forecastKey]*forecastEntry)
}

// ForecastPoint is one sample of the predicted intensity.
type ForecastPoint struct {
	T   float64 `json:"t"`
	QPS float64 `json:"qps"`
}

// forecastEntry is one cached forecast: the points, plus — rendered
// lazily, on the first ForecastJSON for the key — the exact HTTP
// response body, so a repeated dashboard query costs one map lookup and
// one Write instead of a resample and a re-marshal. pts is immutable
// after creation and may be read without the lock; body is guarded by
// the engine mutex.
type forecastEntry struct {
	pts  []ForecastPoint
	body []byte
}

// Forecast samples the modeled mean intensity on [from, to) at the
// given step: point i reports the model's average rate over
// [from+i·step, from+(i+1)·step), read in O(1) off the model's
// cumulative-intensity prefix table — the whole horizon costs O(points)
// regardless of the training window size. Like Plan, results are cached
// per (from, to, step) until the next ingest, train, restore or config
// update; the returned slice is shared with the cache and must be
// treated as read-only.
func (e *Engine) Forecast(from, to, step float64) ([]ForecastPoint, error) {
	ent, err := e.forecast(from, to, step)
	if err != nil {
		return nil, err
	}
	return ent.pts, nil
}

// ForecastJSON is Forecast returning the rendered HTTP response body
// (a JSON array of points, newline-terminated — byte-identical to
// encoding the Forecast result). The body is cached next to the points,
// so the steady state of a dashboard polling one query is a map hit
// followed by a single buffer write.
func (e *Engine) ForecastJSON(from, to, step float64) ([]byte, error) {
	ent, err := e.forecast(from, to, step)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	body := ent.body
	e.mu.Unlock()
	if body != nil {
		return body, nil
	}
	body, err = json.Marshal(ent.pts)
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	e.mu.Lock()
	if ent.body == nil {
		ent.body = body
	}
	body = ent.body
	e.mu.Unlock()
	return body, nil
}

// forecast returns the cache entry for (from, to, step), computing and
// (world permitting) caching it on a miss. Every call counts exactly
// one forecast cache hit or miss.
func (e *Engine) forecast(from, to, step float64) (*forecastEntry, error) {
	e.mu.Lock()
	model := e.model
	gen := e.gen
	cfgVer := e.ec.Version
	e.mu.Unlock()
	if model == nil {
		return nil, ErrNoModel
	}
	// NaN bounds defeat every comparison below and make the point count
	// nonsensical; direct API callers don't pass the HTTP layer's
	// screening.
	for _, v := range []float64{from, to, step} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite forecast parameter", ErrInvalid)
		}
	}
	if step <= 0 || to <= from || (to-from)/step > 100000 {
		return nil, fmt.Errorf("%w: invalid range/step", ErrInvalid)
	}
	key := forecastKey{from: from, to: to, step: step}
	if ent, ok := e.cachedForecast(gen, model, cfgVer, key); ok {
		e.m.forecastHits.Inc()
		if f := e.fleet; f != nil {
			f.forecastHits.Inc()
		}
		return ent, nil
	}
	e.m.forecastMisses.Inc()
	if f := e.fleet; f != nil {
		f.forecastMisses.Inc()
	}
	// Count points by index, not accumulation: at large magnitudes
	// from + n·step can round back onto itself, so derive n from the
	// span and nudge it onto the same t >= to boundary the index loop
	// would have used.
	n := int(math.Ceil((to - from) / step))
	for n > 0 && from+float64(n-1)*step >= to {
		n--
	}
	for from+float64(n)*step < to {
		n++
	}
	pts := make([]ForecastPoint, n)
	vals := make([]float64, n)
	model.NHPP.AverageRates(from, step, vals)
	for i := range pts {
		pts[i] = ForecastPoint{T: from + float64(i)*step, QPS: vals[i]}
	}
	ent := &forecastEntry{pts: pts}
	e.storeForecast(gen, model, cfgVer, key, ent)
	return ent, nil
}

func (e *Engine) cachedForecast(gen int64, model *robustscaler.Model, cfgVer int64, key forecastKey) (*forecastEntry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cacheGen != gen || e.cacheModel != model || e.cacheCfgVer != cfgVer || e.fcCache == nil {
		return nil, false
	}
	ent, ok := e.fcCache[key]
	return ent, ok
}

func (e *Engine) storeForecast(gen int64, model *robustscaler.Model, cfgVer int64, key forecastKey, ent *forecastEntry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gen != gen || e.model != model || e.ec.Version != cfgVer {
		return
	}
	e.rebindCacheLocked(gen, model, cfgVer)
	if len(e.fcCache) >= maxCachedResults {
		clear(e.fcCache)
	}
	e.fcCache[key] = ent
}

// ExpectedArrivals returns Λ(from, to) — the model's expected arrival
// count over [from, to) — read in O(1) off the cumulative-intensity
// prefix table. This is the analyzer signal the autoscaler pipeline
// sizes replica pools from: the pool must cover the arrivals expected
// during its replenish lead time.
func (e *Engine) ExpectedArrivals(from, to float64) (float64, error) {
	model := e.Model()
	if model == nil {
		return 0, ErrNoModel
	}
	for _, v := range []float64{from, to} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("%w: non-finite arrival-count bound", ErrInvalid)
		}
	}
	if to < from {
		return 0, fmt.Errorf("%w: inverted arrival-count range [%g, %g)", ErrInvalid, from, to)
	}
	return model.NHPP.Integral(from, to), nil
}

// Model returns the currently installed arrival model, or nil before the
// first successful Train. The model is immutable once installed (refits
// swap the pointer), so callers may use it without further locking —
// e.g. to build a policy over the engine-trained forecast.
func (e *Engine) Model() *robustscaler.Model {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.model
}

// Status is a workload snapshot.
type Status struct {
	Arrivals      int     `json:"arrivals_recorded"`
	TrainedOn     int     `json:"arrivals_in_model"`
	ModelReady    bool    `json:"model_ready"`
	PeriodSeconds float64 `json:"period_seconds"`
	RateNow       float64 `json:"rate_now_qps"`
	ConfigVersion int64   `json:"config_version"`
}

// Status reports the workload's ingestion and model state.
func (e *Engine) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statusLocked()
}

// statusLocked builds the Status under the caller's lock; shared by
// Status and Stats so the two endpoints can never drift apart.
func (e *Engine) statusLocked() Status {
	st := Status{
		Arrivals:      len(e.arrivals),
		TrainedOn:     e.trainedN,
		ModelReady:    e.model != nil,
		ConfigVersion: e.ec.Version,
	}
	if e.model != nil {
		st.PeriodSeconds = e.model.PeriodSeconds
		st.RateNow = e.model.Rate(e.cfg.Now())
	}
	return st
}
