package engine

// Per-workload configuration. The paper's whole premise is that every
// workload has its own arrival dynamics and QoS targets, so the knobs
// that shape one workload's modeling and planning — bin width, pending
// time, history window, Monte Carlo budget, per-variant plan targets
// and the retrain cadence — live in a versioned EngineConfig that is
// persisted in the workload's snapshot and settable at runtime through
// the control plane (GET/PUT /v1/workloads/{id}/config). The process
// flags on scalerd only seed the fleet-wide defaults a new workload
// starts from.

import (
	"errors"
	"fmt"
	"math"
)

// ErrConflict reports a config update whose Version no longer matches
// the workload's current config — optimistic concurrency for the PUT
// config API. The HTTP layer maps it to 409.
var ErrConflict = errors.New("config version conflict")

// EngineConfig is one workload's policy: every field is per-workload,
// persisted in the workload's snapshot, and updatable at runtime.
// Version counts successful updates (starting at 1) and is the
// compare-and-swap token for concurrent updaters.
type EngineConfig struct {
	// Version is bumped on every successful update. An update must carry
	// the version it read, so two racing PUTs cannot silently stomp each
	// other.
	Version int64 `json:"version"`
	// Dt is the modeling bin width in seconds. Changing it marks the
	// model stale (its binning no longer matches) for the next retrain.
	Dt float64 `json:"dt"`
	// Pending is the instance startup time τ in seconds.
	Pending float64 `json:"pending"`
	// HistoryWindow bounds the retained arrival history in seconds;
	// 0 keeps everything. Shrinking it trims immediately.
	HistoryWindow float64 `json:"history_window"`
	// MCSamples is the Monte Carlo budget for rt/cost plan variants.
	MCSamples int `json:"mc_samples"`
	// HPTarget is the default hit-probability target for hp plans when
	// the request does not specify one.
	HPTarget float64 `json:"hp_target"`
	// RTTarget is the default wait budget (seconds) for rt plans.
	RTTarget float64 `json:"rt_target"`
	// CostTarget is the default idle budget (seconds) for cost plans.
	CostTarget float64 `json:"cost_target"`
	// PlanHorizon is the default planning horizon in seconds.
	PlanHorizon float64 `json:"plan_horizon"`
	// RetrainEvery is the minimum seconds between background refits of
	// this workload; 0 refits whenever data is stale, on every sweep.
	// It gates only the background retrainer — an explicit train request
	// always runs.
	RetrainEvery float64 `json:"retrain_every"`
	// Train tunes model fitting for this workload.
	Train TrainKnobs `json:"train"`
	// WAL tunes this workload's write-ahead-log durability.
	WAL WALKnobs `json:"wal"`
	// Autoscale tunes this workload's closed-loop replica
	// recommendations (internal/pipeline).
	Autoscale AutoscaleKnobs `json:"autoscale"`
}

// AutoscaleKnobs is the per-workload slice of the closed-loop
// autoscaler configuration: the recommendation target plus the
// HPA-style behaviors that shape how fast the replica count may move.
// The zero value means "autoscaling off, every behavior unbounded" —
// snapshots written before this struct existed restore into it and
// behave exactly as before (plans are still served; nothing acts on
// them until Enabled is set).
type AutoscaleKnobs struct {
	// Enabled turns the background actuation loop on for this workload.
	// The recommendation endpoint answers either way — dry-run
	// inspection of the decision must not require enabling actuation.
	Enabled bool `json:"enabled"`
	// MinReplicas floors the recommended pool size; the optimizer never
	// recommends below it even when the forecast goes quiet.
	MinReplicas int `json:"min_replicas"`
	// MaxReplicas caps the recommended pool size; 0 means uncapped
	// (bounded only by the engine-wide sanity cap).
	MaxReplicas int `json:"max_replicas"`
	// Target is the readiness probability the pool must cover: the pool
	// is sized to the Target-quantile of the forecast arrival count over
	// the replenish lead time. 0 uses the workload's hp_target.
	Target float64 `json:"target"`
	// LeadSeconds is the horizon the pool must cover — how far ahead
	// arrivals draw on instances committed now. 0 derives it from the
	// workload's pending time plus the decision interval.
	LeadSeconds float64 `json:"lead_seconds"`
	// IntervalSeconds rate-limits background decisions for this workload
	// (the sweep cadence is fleet-wide; a workload is skipped until its
	// own interval has passed). 0 decides on every sweep.
	IntervalSeconds float64 `json:"interval_seconds"`
	// ScaleUpMaxStep bounds how many replicas one decision may add;
	// 0 means unbounded.
	ScaleUpMaxStep int `json:"scale_up_max_step"`
	// ScaleDownMaxStep bounds how many replicas one decision may remove;
	// 0 means unbounded.
	ScaleDownMaxStep int `json:"scale_down_max_step"`
	// ScaleDownStabilizationSeconds is the HPA-style trailing window: a
	// scale-down is clamped to the highest recommendation made within
	// it, so a transient dip never drops capacity a recent decision
	// still wanted. 0 disables the window.
	ScaleDownStabilizationSeconds float64 `json:"scale_down_stabilization_seconds"`
	// ScaleDownCooldownSeconds is the minimum spacing between two
	// scale-downs; until it passes, a down verdict holds at the current
	// count. 0 disables the cooldown.
	ScaleDownCooldownSeconds float64 `json:"scale_down_cooldown_seconds"`
}

// WALKnobs is the per-workload slice of write-ahead-log configuration.
// The zero value means "process defaults" — snapshots written before
// this struct existed restore into it and behave exactly as before.
type WALKnobs struct {
	// Fsync overrides the process-wide fsync policy for this workload's
	// log: "always" (fsync before every ack — zero acknowledged loss
	// even through power failure), "interval" (fsync on a timer — a
	// crash loses at most the interval, a kill -9 loses nothing) or
	// "off" (the OS decides). "" keeps the process default.
	Fsync string `json:"fsync,omitempty"`
}

// TrainKnobs is the per-workload slice of the training configuration:
// the ADMM solver budget and the warm-start switch. The zero value means
// "fleet defaults" — snapshots written before this struct existed
// restore into it and behave exactly as before (library-default solver
// budget, warm starts enabled).
type TrainKnobs struct {
	// ADMMMaxIter caps ADMM iterations per fit; 0 keeps the fleet
	// default. Lowering it trades fit quality for bounded refit latency
	// on pathological windows.
	ADMMMaxIter int `json:"admm_max_iter"`
	// ADMMTol is the ADMM convergence tolerance; 0 keeps the fleet
	// default. Tightening it buys smoother intensities at the cost of
	// iterations — warm starts absorb most of that cost on refits.
	ADMMTol float64 `json:"admm_tol"`
	// DisableWarmStart forces every refit to run from the cold per-bin
	// MLE initial guess. Warm starts converge to the same model (the
	// objective is strictly convex), so this is a diagnostic escape
	// hatch, not a correctness knob.
	DisableWarmStart bool `json:"disable_warm_start"`
	// DisablePeriodicity turns the periodicity detector off for this
	// workload: the model fits a single homogeneous-rate profile even if
	// the history looks seasonal. For workloads whose apparent seasonality
	// is spurious (batch jobs, replayed traffic), this stops the seasonal
	// layer from hallucinating structure.
	DisablePeriodicity bool `json:"disable_periodicity"`
	// CandidatePeriods restricts the periodicity detector to these
	// periods, in seconds (±10%); empty keeps the unrestricted scan. For
	// workloads whose cadence is known a priori — daily crons, weekly
	// batch cycles — this prevents the detector from locking onto a
	// transient harmonic.
	CandidatePeriods []float64 `json:"candidate_periods,omitempty"`
}

// maxCandidatePeriods caps the candidate-period list an API caller can
// configure.
const maxCandidatePeriods = 32

// equalPeriods reports whether two candidate-period lists are
// identical. TrainKnobs carries a slice, so the struct is not
// comparable with == anymore; staleness detection compares field-wise.
func equalPeriods(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mcSamplesCap bounds the per-plan Monte Carlo budget an API caller can
// configure; beyond it one planning round becomes a CPU DoS.
const mcSamplesCap = 1_000_000

// maxReplicasCap bounds the replica counts an API caller can configure
// (and the optimizer can recommend): past a million instances the pool
// model stops describing anything real and the arithmetic starts to.
const maxReplicasCap = 1_000_000

// maxSeconds bounds duration-like config values (~31 years) so a typo
// can't wedge arithmetic downstream.
const maxSeconds = 1e9

// validate rejects unusable per-workload settings. Unlike the
// constructor-time Config.validate it never normalizes: an API update
// with a bad field is an error, not a silent correction. Errors wrap
// ErrInvalid so the HTTP layer maps them to 400.
func (c EngineConfig) validate() error {
	for name, v := range map[string]float64{
		"dt": c.Dt, "pending": c.Pending, "history_window": c.HistoryWindow,
		"hp_target": c.HPTarget, "rt_target": c.RTTarget, "cost_target": c.CostTarget,
		"plan_horizon": c.PlanHorizon, "retrain_every": c.RetrainEvery,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite %s", ErrInvalid, name)
		}
	}
	if c.Version < 1 {
		return fmt.Errorf("%w: config version %d must be >= 1", ErrInvalid, c.Version)
	}
	if c.Dt <= 0 || c.Dt > maxSeconds {
		return fmt.Errorf("%w: dt %g outside (0, %g] seconds", ErrInvalid, c.Dt, maxSeconds)
	}
	if c.Pending < 0 || c.Pending > maxSeconds {
		return fmt.Errorf("%w: pending %g outside [0, %g] seconds", ErrInvalid, c.Pending, maxSeconds)
	}
	if c.HistoryWindow < 0 || c.HistoryWindow > maxSeconds {
		return fmt.Errorf("%w: history_window %g outside [0, %g] seconds", ErrInvalid, c.HistoryWindow, maxSeconds)
	}
	if c.MCSamples < 1 || c.MCSamples > mcSamplesCap {
		return fmt.Errorf("%w: mc_samples %d outside [1, %d]", ErrInvalid, c.MCSamples, mcSamplesCap)
	}
	if c.HPTarget <= 0 || c.HPTarget >= 1 {
		return fmt.Errorf("%w: hp_target %g must be in (0,1)", ErrInvalid, c.HPTarget)
	}
	if c.RTTarget <= 0 || c.RTTarget > maxSeconds {
		return fmt.Errorf("%w: rt_target %g outside (0, %g] seconds", ErrInvalid, c.RTTarget, maxSeconds)
	}
	if c.CostTarget <= 0 || c.CostTarget > maxSeconds {
		return fmt.Errorf("%w: cost_target %g outside (0, %g] seconds", ErrInvalid, c.CostTarget, maxSeconds)
	}
	if c.PlanHorizon <= 0 || c.PlanHorizon > maxSeconds {
		return fmt.Errorf("%w: plan_horizon %g outside (0, %g] seconds", ErrInvalid, c.PlanHorizon, maxSeconds)
	}
	if c.RetrainEvery < 0 || c.RetrainEvery > maxSeconds {
		return fmt.Errorf("%w: retrain_every %g outside [0, %g] seconds", ErrInvalid, c.RetrainEvery, maxSeconds)
	}
	if it := c.Train.ADMMMaxIter; it < 0 || it > 1_000_000 {
		return fmt.Errorf("%w: train.admm_max_iter %d outside [0, 1000000]", ErrInvalid, it)
	}
	if tol := c.Train.ADMMTol; math.IsNaN(tol) || tol < 0 || tol >= 1 {
		return fmt.Errorf("%w: train.admm_tol %g outside [0, 1)", ErrInvalid, tol)
	}
	if n := len(c.Train.CandidatePeriods); n > maxCandidatePeriods {
		return fmt.Errorf("%w: train.candidate_periods has %d entries (max %d)", ErrInvalid, n, maxCandidatePeriods)
	}
	for _, p := range c.Train.CandidatePeriods {
		// A period must span at least two modeling bins to be detectable.
		if math.IsNaN(p) || p < 2*c.Dt || p > maxSeconds {
			return fmt.Errorf("%w: train.candidate_periods entry %g outside [2*dt=%g, %g] seconds", ErrInvalid, p, 2*c.Dt, maxSeconds)
		}
	}
	switch c.WAL.Fsync {
	case "", "always", "interval", "off":
	default:
		return fmt.Errorf("%w: wal.fsync %q not one of always/interval/off (or empty for the process default)", ErrInvalid, c.WAL.Fsync)
	}
	if err := c.Autoscale.validate(); err != nil {
		return err
	}
	return nil
}

// validate rejects unusable autoscale knobs, with the same field-level
// error contract as the enclosing EngineConfig.validate.
func (a AutoscaleKnobs) validate() error {
	for name, v := range map[string]float64{
		"autoscale.target": a.Target, "autoscale.lead_seconds": a.LeadSeconds,
		"autoscale.interval_seconds":                 a.IntervalSeconds,
		"autoscale.scale_down_stabilization_seconds": a.ScaleDownStabilizationSeconds,
		"autoscale.scale_down_cooldown_seconds":      a.ScaleDownCooldownSeconds,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite %s", ErrInvalid, name)
		}
	}
	if a.MinReplicas < 0 || a.MinReplicas > maxReplicasCap {
		return fmt.Errorf("%w: autoscale.min_replicas %d outside [0, %d]", ErrInvalid, a.MinReplicas, maxReplicasCap)
	}
	if a.MaxReplicas < 0 || a.MaxReplicas > maxReplicasCap {
		return fmt.Errorf("%w: autoscale.max_replicas %d outside [0, %d]", ErrInvalid, a.MaxReplicas, maxReplicasCap)
	}
	if a.MaxReplicas > 0 && a.MinReplicas > a.MaxReplicas {
		return fmt.Errorf("%w: autoscale.min_replicas %d exceeds autoscale.max_replicas %d", ErrInvalid, a.MinReplicas, a.MaxReplicas)
	}
	if a.Target != 0 && (a.Target <= 0 || a.Target >= 1) {
		return fmt.Errorf("%w: autoscale.target %g must be in (0,1), or 0 for the workload's hp_target", ErrInvalid, a.Target)
	}
	if a.LeadSeconds < 0 || a.LeadSeconds > maxSeconds {
		return fmt.Errorf("%w: autoscale.lead_seconds %g outside [0, %g] seconds", ErrInvalid, a.LeadSeconds, maxSeconds)
	}
	if a.IntervalSeconds < 0 || a.IntervalSeconds > maxSeconds {
		return fmt.Errorf("%w: autoscale.interval_seconds %g outside [0, %g] seconds", ErrInvalid, a.IntervalSeconds, maxSeconds)
	}
	if a.ScaleUpMaxStep < 0 || a.ScaleUpMaxStep > maxReplicasCap {
		return fmt.Errorf("%w: autoscale.scale_up_max_step %d outside [0, %d]", ErrInvalid, a.ScaleUpMaxStep, maxReplicasCap)
	}
	if a.ScaleDownMaxStep < 0 || a.ScaleDownMaxStep > maxReplicasCap {
		return fmt.Errorf("%w: autoscale.scale_down_max_step %d outside [0, %d]", ErrInvalid, a.ScaleDownMaxStep, maxReplicasCap)
	}
	if w := a.ScaleDownStabilizationSeconds; w < 0 || w > maxSeconds {
		return fmt.Errorf("%w: autoscale.scale_down_stabilization_seconds %g outside [0, %g] seconds", ErrInvalid, w, maxSeconds)
	}
	if cd := a.ScaleDownCooldownSeconds; cd < 0 || cd > maxSeconds {
		return fmt.Errorf("%w: autoscale.scale_down_cooldown_seconds %g outside [0, %g] seconds", ErrInvalid, cd, maxSeconds)
	}
	return nil
}

// EngineConfig returns the workload's current configuration.
func (e *Engine) EngineConfig() EngineConfig {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ec
}

// SetEngineConfig replaces the workload's configuration. The supplied
// Version must equal the current one (read it via EngineConfig); on
// success the stored config carries Version+1 and is returned. A stale
// Version returns ErrConflict and the current config, so the caller can
// re-read, re-apply and retry.
//
// Side effects are applied immediately: every cached plan/forecast is
// invalidated (results depend on the config), a Dt change marks the
// model stale for the next retrain sweep (its binning no longer matches
// the config), and a shrunken HistoryWindow trims the arrival history
// in place. The update is durable at the next snapshot tick — the
// config rides in the workload's snapshot, and the change marks the
// workload dirty.
func (e *Engine) SetEngineConfig(c EngineConfig) (EngineConfig, error) {
	if err := c.validate(); err != nil {
		return EngineConfig{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if c.Version != e.ec.Version {
		return e.ec, fmt.Errorf("%w: update carries version %d, current is %d", ErrConflict, c.Version, e.ec.Version)
	}
	old := e.ec
	c.Version = old.Version + 1
	e.ec = c
	e.stateGen++
	if c.Dt != old.Dt {
		// The model was fit on the old binning: stale, refit next sweep.
		// (The gen bump also clears a failed-fit marker — a fit that
		// failed under the old config may succeed under the new one.)
		e.gen++
	}
	if c.Train.ADMMMaxIter != old.Train.ADMMMaxIter || c.Train.ADMMTol != old.Train.ADMMTol ||
		c.Train.DisablePeriodicity != old.Train.DisablePeriodicity ||
		!equalPeriods(c.Train.CandidatePeriods, old.Train.CandidatePeriods) {
		// The model was fit under a different solver budget or periodicity
		// policy: stale, so the next sweep refits with the new one.
		e.gen++
	}
	if c.HistoryWindow != old.HistoryWindow {
		n := len(e.arrivals)
		e.trimLocked()
		if len(e.arrivals) != n {
			e.gen++ // data under the model changed
		}
	}
	if c.WAL.Fsync != old.WAL.Fsync {
		e.applyWALPolicyLocked()
	}
	e.markStaleLocked()
	return e.ec, nil
}

// StateGen returns the workload's durable-state generation: a counter
// bumped by every mutation a snapshot must capture (ingest, train,
// restore, config update). The snapshotter compares it against the
// generation it last persisted to skip unchanged workloads.
func (e *Engine) StateGen() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stateGen
}
