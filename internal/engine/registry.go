package engine

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"robustscaler/internal/metrics"
	"robustscaler/internal/wal"
)

// numShards spreads workload IDs across independently locked maps so
// engine lookup never funnels hundreds of workloads through one mutex.
// Power of two; 32 shards keep contention negligible well past the
// "hundreds of workloads" design point.
const numShards = 32

// Registry multiplexes many workloads in one process: it maps workload
// IDs to Engines, creating them on demand from a shared Config template.
// Lookup is sharded by ID hash; each Engine then locks only itself, so
// traffic on one workload never serializes against another.
type Registry struct {
	cfg    Config
	shards [numShards]shard
	// snapMu serializes SnapshotTo's collect+commit: without it, a slow
	// snapshot that collected the registry before a Remove could commit
	// its stale manifest over the delete-triggered snapshot (the last
	// commit wins), resurrecting the deleted workload on the next boot.
	// It also guards saved.
	snapMu sync.Mutex
	// saved maps data dir → workload ID → the durable-state generation
	// the last commit into that dir captured; SnapshotTo skips workloads
	// whose engines still sit at that generation (see Engine.StateGen).
	// Keyed per dir because bookkeeping is per store: a backup snapshot
	// into a second dir must not make the primary dir's next tick
	// believe its (older) files are current.
	saved map[string]map[string]uint64

	// healthMu guards snapHealth, the outcome trail of snapshot
	// attempts (see metrics.go). Separate from snapMu so a health read
	// never blocks behind an in-flight snapshot.
	healthMu   sync.Mutex
	snapHealth SnapshotHealth
	// instMu guards the shared instruments Instrument installs; fleet
	// and fitSeconds are handed to every engine at creation,
	// snapSeconds observes snapshot durations. It also guards the WAL
	// wiring (walMgr/walDir, set once by AttachWAL before traffic) and
	// the staleness alert threshold.
	instMu      sync.Mutex
	fleet       *fleetCounters
	fitSeconds  *metrics.Histogram
	snapSeconds *metrics.Histogram
	walMgr      *wal.Manager
	walDir      string
	// stalenessThreshold (seconds) feeds the
	// robustscaler_workloads_stale_over_threshold gauge; 0 disables it.
	stalenessThreshold float64
}

type shard struct {
	mu      sync.RWMutex
	engines map[string]*Engine
}

// NewRegistry validates the config template and returns an empty
// registry.
func NewRegistry(cfg Config) (*Registry, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Registry{cfg: cfg, saved: make(map[string]map[string]uint64)}
	for i := range r.shards {
		r.shards[i].engines = make(map[string]*Engine)
	}
	return r, nil
}

// fnv1a is the 64-bit FNV-1a hash, inlined to keep the hot lookup
// allocation-free.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (r *Registry) shard(id string) *shard {
	return &r.shards[fnv1a(id)&(numShards-1)]
}

// Config returns the (normalized) template every workload is created
// from.
func (r *Registry) Config() Config { return r.cfg }

// Get returns the workload's engine if it exists.
func (r *Registry) Get(id string) (*Engine, bool) {
	s := r.shard(id)
	s.mu.RLock()
	e, ok := s.engines[id]
	s.mu.RUnlock()
	return e, ok
}

// GetOrCreate returns the workload's engine, creating it on first use.
// Every workload gets its own RNG stream, derived from the template seed
// and the workload ID, so Monte Carlo draws stay deterministic per
// workload yet independent across them.
func (r *Registry) GetOrCreate(id string) (*Engine, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty workload id", ErrInvalid)
	}
	s := r.shard(id)
	s.mu.RLock()
	e, ok := s.engines[id]
	s.mu.RUnlock()
	if ok {
		return e, nil
	}
	cfg := r.cfg
	cfg.Seed = r.cfg.Seed ^ int64(fnv1a(id))
	fresh, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// Attach the shared fleet counters and fit-latency histogram (if
	// Instrument installed them) before the engine becomes reachable,
	// so the fields are never written after first use.
	r.instMu.Lock()
	fresh.fleet = r.fleet
	fresh.SetFitSeconds(r.fitSeconds)
	mgr := r.walMgr
	r.instMu.Unlock()
	if mgr != nil {
		// The write-ahead log likewise attaches before publication: the
		// first ingest the workload ever acknowledges is already durable.
		// (A lost creation race below is harmless — both racers get the
		// same *wal.Log from the manager's cache.)
		l, err := mgr.Log(id)
		if err != nil {
			return nil, fmt.Errorf("engine: opening write-ahead log for workload %q: %w", id, err)
		}
		fresh.attachWAL(l)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.engines[id]; ok { // lost the creation race
		return e, nil
	}
	s.engines[id] = fresh
	return fresh, nil
}

// Remove drops a workload and reports whether it existed. In-flight
// requests holding the engine finish against it; new lookups miss.
func (r *Registry) Remove(id string) bool {
	s := r.shard(id)
	s.mu.Lock()
	_, ok := s.engines[id]
	if ok {
		delete(s.engines, id)
	}
	s.mu.Unlock()
	if ok {
		// Drop the snapshot bookkeeping too — after the shard lock is
		// released (SnapshotTo takes snapMu before shard locks, so
		// nesting them the other way here would invite a deadlock).
		// Without this, a recreated workload whose fresh state
		// generation happens to match the stale saved one would be
		// "carried unchanged" and never persisted.
		r.snapMu.Lock()
		for _, m := range r.saved {
			delete(m, id)
		}
		r.snapMu.Unlock()
		// The workload's write-ahead log goes with it: its records
		// describe a history that no longer exists, and a recreated
		// workload under the same ID must start a fresh sequence.
		r.removeWAL(id)
	}
	return ok
}

// Len returns the number of registered workloads.
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.engines)
		s.mu.RUnlock()
	}
	return n
}

// Workloads returns the registered workload IDs, sorted.
func (r *Registry) Workloads() []string {
	var ids []string
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for id := range s.engines {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// snapshot returns all engines without holding any shard lock afterward.
func (r *Registry) snapshot() []*Engine {
	var out []*Engine
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, e := range s.engines {
			out = append(out, e)
		}
		s.mu.RUnlock()
	}
	return out
}

// RetrainAll sweeps every workload once through a pool of `workers`
// goroutines, refitting the ones with arrivals newer than their model
// (Engine.Retrain). It returns how many workloads were refitted and how
// many refits failed (those keep their previous model). This is the unit
// of work the background Retrainer schedules; it is also callable
// directly, e.g. from tests or an admin endpoint.
func (r *Registry) RetrainAll(workers int) (refitted, failed int) {
	engines := r.snapshot()
	if len(engines) == 0 {
		return 0, 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(engines) {
		workers = len(engines)
	}
	jobs := make(chan *Engine)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := range jobs {
				ran, err := retrainContained(e)
				mu.Lock()
				if ran {
					refitted++
				}
				if err != nil {
					failed++
				}
				mu.Unlock()
			}
		}()
	}
	for _, e := range engines {
		jobs <- e
	}
	close(jobs)
	wg.Wait()
	return refitted, failed
}

// retrainContained runs one refit with panic containment: inside HTTP
// handlers net/http recovers training panics per request, but the sweep
// runs on bare goroutines where one degenerate workload would otherwise
// take down every workload in the process.
func retrainContained(e *Engine) (ran bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			ran, err = false, fmt.Errorf("engine: retrain panic: %v", r)
			log.Printf("engine: background retrain panic (previous model kept): %v", r)
		}
	}()
	return e.Retrain()
}

// Retrainer periodically refreshes every workload's model, as the paper
// prescribes for the NHPP (low-frequency refits, e.g. every half hour) —
// scaled out to many workloads by the worker pool.
type Retrainer struct {
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartRetrainer launches the background sweep loop: every `every`, all
// stale workloads are refitted by `workers` concurrent fitters. Stop
// waits for an in-flight sweep to finish.
func (r *Registry) StartRetrainer(every time.Duration, workers int) *Retrainer {
	if every <= 0 {
		panic(fmt.Sprintf("engine: non-positive retrain period %v", every))
	}
	rt := &Retrainer{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(rt.done)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-rt.stop:
				return
			case <-ticker.C:
				if refitted, failed := r.RetrainAll(workers); failed > 0 {
					log.Printf("engine: background retrain sweep: %d refit, %d failed (previous models kept)", refitted, failed)
				}
			}
		}
	}()
	return rt
}

// Stop halts the sweep loop and waits for it to exit. Safe to call more
// than once (e.g. a signal handler racing a deferred cleanup).
func (rt *Retrainer) Stop() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}
