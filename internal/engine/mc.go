package engine

// Monte Carlo sampling for the rt/cost plan variants. The inner loop —
// thousands of Gamma draws and Λ⁻¹ inversions per planned query — is
// the dominant cost of a cold plan, so it is parallelized across a
// bounded worker pool. Parallelism must not cost reproducibility: the
// sample space is partitioned into fixed-size blocks, each block draws
// from its own RNG stream forked deterministically from the planning
// round's seed, and every sample lands at a fixed index. The result is
// bit-identical for every worker count (including 1, the sequential
// reference the equivalence tests pin), and identical again after a
// snapshot/restore re-seeds the parent stream.

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"robustscaler/internal/decision"
	"robustscaler/internal/stats"
)

// mcBlockLen is the number of samples one forked RNG stream covers. It
// is part of the determinism contract: changing it changes which RNG
// draws which sample, and therefore the plans themselves.
const mcBlockLen = 256

// mcSampler draws the Monte Carlo arrival samples for successive query
// indices of one planning round.
type mcSampler struct {
	h       *decision.Horizon
	now     float64
	rngs    []*rand.Rand // one per block, forked from the round seed
	xi      []float64    // sample output: i-th arrival offsets from now
	gammas  []float64    // scratch: Gamma(i,1) variates per sample
	maxes   []float64    // scratch: per-block maxima
	workers int
}

// newMCSampler forks the per-block RNG streams from seed. workers ≤ 0
// selects GOMAXPROCS; the pool never exceeds the block count.
func newMCSampler(h *decision.Horizon, now float64, samples int, seed int64, workers int) *mcSampler {
	nblocks := (samples + mcBlockLen - 1) / mcBlockLen
	src := rand.New(rand.NewSource(seed))
	rngs := make([]*rand.Rand, nblocks)
	for b := range rngs {
		rngs[b] = rand.New(rand.NewSource(src.Int63()))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nblocks {
		workers = nblocks
	}
	return &mcSampler{
		h:       h,
		now:     now,
		rngs:    rngs,
		xi:      make([]float64, samples),
		gammas:  make([]float64, samples),
		maxes:   make([]float64, nblocks),
		workers: workers,
	}
}

func (s *mcSampler) blockBounds(b int) (lo, hi int) {
	lo = b * mcBlockLen
	hi = lo + mcBlockLen
	if hi > len(s.xi) {
		hi = len(s.xi)
	}
	return lo, hi
}

// eachBlock runs fn over every block, on the pool when it pays and
// inline when it doesn't. Blocks are claimed off an atomic counter, so
// scheduling order varies — but no block's output depends on another's,
// which is what makes the parallel result equal the sequential one.
func (s *mcSampler) eachBlock(fn func(b int)) {
	if s.workers <= 1 || len(s.rngs) == 1 {
		for b := range s.rngs {
			fn(b)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= len(s.rngs) {
					return
				}
				fn(b)
			}
		}()
	}
	wg.Wait()
}

// draw fills s.xi with the round's samples of the i-th upcoming arrival
// epoch, as offsets from now. It returns false when the intensity mass
// runs out first (the planning loop's stop condition, same as the
// sequential implementation's first failing sample).
//
// Three phases keep the shared Horizon safe without a lock: the Gamma
// variates are drawn in parallel (each block touching only its own RNG
// and sample range), the cumulative grid is extended once, sequentially,
// to cover the largest variate, and then the inversions — pure reads on
// the extended grid — run in parallel again.
func (s *mcSampler) draw(i int) bool {
	shape := float64(i)
	s.eachBlock(func(b int) {
		lo, hi := s.blockBounds(b)
		rng := s.rngs[b]
		m := math.Inf(-1)
		for k := lo; k < hi; k++ {
			g := stats.Gamma{Shape: shape, Scale: 1}.Sample(rng)
			s.gammas[k] = g
			if g > m {
				m = g
			}
		}
		s.maxes[b] = m
	})
	maxMass := math.Inf(-1)
	for _, m := range s.maxes {
		if m > maxMass {
			maxMass = m
		}
	}
	if _, ok := s.h.Invert(maxMass); !ok {
		return false
	}
	s.eachBlock(func(b int) {
		lo, hi := s.blockBounds(b)
		for k := lo; k < hi; k++ {
			t, _ := s.h.Invert(s.gammas[k]) // grid already covers gammas[k] ≤ maxMass
			s.xi[k] = t - s.now
		}
	})
	return true
}
