package engine

// Observability for the engine layer. Every Engine carries its own set
// of atomic lifetime counters (engineMetrics) and dual-writes each
// event into the registry's shared fleet totals (fleetCounters), so
// the hot paths — ingest appends, plan/forecast cache lookups — pay
// two atomic adds per event class and never an extra lock or map
// lookup, while a /metrics scrape reads finished totals instead of
// walking the fleet. Two read sides:
//
//   - Engine.Stats: the per-workload JSON summary behind
//     GET /v1/workloads/{id}/stats;
//   - Registry.Instrument: the fleet counters, staleness gauges, the
//     shared refit-latency and snapshot-duration histograms, and the
//     snapshot-health series /healthz keys off.

import (
	"time"

	"robustscaler/internal/metrics"
)

// engineMetrics is one workload's lifetime counters. All fields are
// atomic; they are written on the engine's own paths and read lock-free
// by Stats.
type engineMetrics struct {
	ingestEvents  metrics.Counter
	ingestBatches metrics.Counter
	// refits counts installed-or-discarded successful fits;
	// refitFailures counts fits that errored (model kept). refitSeconds
	// accumulates the wall time of every completed fit attempt, success
	// and failure alike.
	refits        metrics.Counter
	refitFailures metrics.Counter
	refitSeconds  metrics.Float
	// refitsWarm/refitsCold split the successful fits by starting point
	// (seeded from the previous solution vs the cold initial guess), and
	// admmIterations accumulates the solver iterations they ran — the
	// pair behind the warm-start speedup dashboards: iterations per
	// refit dropping as the warm share rises.
	refitsWarm     metrics.Counter
	refitsCold     metrics.Counter
	admmIterations metrics.Counter
	planHits       metrics.Counter
	planMisses     metrics.Counter
	forecastHits   metrics.Counter
	forecastMisses metrics.Counter
	// walReplayedRecords/walReplayedEvents count batches re-applied from
	// the write-ahead log at boot. Kept apart from the ingest counters:
	// a replayed batch was already counted as ingested when it was
	// acknowledged, and double-counting would skew throughput math.
	walReplayedRecords metrics.Counter
	walReplayedEvents  metrics.Counter
}

// fleetCounters are the registry-wide totals every engine dual-writes
// alongside its own counters (one extra atomic add per event) so a
// scrape reads finished numbers instead of walking — and locking — the
// whole fleet per series. Being real counters, they also stay
// monotonic when workloads are deleted, as Prometheus expects.
type fleetCounters struct {
	ingestEvents   *metrics.Counter
	ingestBatches  *metrics.Counter
	refits         *metrics.Counter
	refitFailures  *metrics.Counter
	refitsWarm     *metrics.Counter
	refitsCold     *metrics.Counter
	admmIterations *metrics.Counter
	planHits       *metrics.Counter
	planMisses     *metrics.Counter
	forecastHits   *metrics.Counter
	forecastMisses *metrics.Counter
}

// countIngest records one accepted batch of n events.
func (e *Engine) countIngest(n uint64) {
	e.m.ingestBatches.Inc()
	e.m.ingestEvents.Add(n)
	if f := e.fleet; f != nil {
		f.ingestBatches.Inc()
		f.ingestEvents.Add(n)
	}
}

// countReplay records one WAL batch of n events re-applied at boot.
func (e *Engine) countReplay(n uint64) {
	e.m.walReplayedRecords.Inc()
	e.m.walReplayedEvents.Add(n)
}

// markStaleLocked stamps the moment the model first fell behind the
// arrival history, if it isn't already stamped. Called after every gen
// bump; the threshold-alert gauges turn the stamp's age into a signal.
// A workload too small to train (fewer than 2 arrivals) is never
// considered stale — it has no model to be behind and no fit to run.
func (e *Engine) markStaleLocked() {
	if e.staleSince == 0 && len(e.arrivals) >= 2 && e.gen != e.trainedGen {
		e.staleSince = e.cfg.Now()
	}
}

// modelStalenessSeconds reports how long the model has been behind the
// ingested arrivals; 0 when fresh. Unlike the retrainer's staleness
// check this does not exempt failed fits: a workload whose refits keep
// failing is exactly what the alert threshold exists to surface.
func (e *Engine) modelStalenessSeconds() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.staleSince == 0 {
		return 0
	}
	if age := e.cfg.Now() - e.staleSince; age > 0 {
		return age
	}
	return 0
}

// countRefit records one completed fit attempt: its wall time, whether
// it produced a model, whether it was warm-started, and the ADMM
// iterations it ran (0 for attempts rejected before fitting).
func (e *Engine) countRefit(seconds float64, ok, warm bool, iterations uint64) {
	e.m.refitSeconds.Add(seconds)
	e.m.admmIterations.Add(iterations)
	if ok {
		e.m.refits.Inc()
		if warm {
			e.m.refitsWarm.Inc()
		} else {
			e.m.refitsCold.Inc()
		}
	} else {
		e.m.refitFailures.Inc()
	}
	if f := e.fleet; f != nil {
		f.admmIterations.Add(iterations)
		if ok {
			f.refits.Inc()
			if warm {
				f.refitsWarm.Inc()
			} else {
				f.refitsCold.Inc()
			}
		} else {
			f.refitFailures.Inc()
		}
	}
}

// Stats is the per-workload observability summary: the live Status
// fields plus the workload's lifetime counters. Counters reset with the
// process (they are not persisted in snapshots), matching Prometheus
// counter semantics.
type Stats struct {
	Status
	// StalenessGenerations is how many ingest generations the current
	// model is behind the arrival history; 0 means the model covers
	// everything recorded.
	StalenessGenerations int64 `json:"staleness_generations"`
	// LastRefitAt is when the current model was installed, in engine-
	// clock seconds; 0 before the first fit (or since a restore).
	LastRefitAt float64 `json:"last_refit_at"`
	// ModelStalenessSeconds is how long the model has been behind the
	// arrival history, in engine-clock seconds; 0 when fresh. The
	// fleet-level threshold gauges aggregate this per-workload value.
	ModelStalenessSeconds float64 `json:"model_staleness_seconds"`
	IngestedEvents        uint64  `json:"ingested_events_total"`
	IngestedBatches       uint64  `json:"ingested_batches_total"`
	Refits                uint64  `json:"refits_total"`
	RefitFailures         uint64  `json:"refit_failures_total"`
	RefitSecondsTotal     float64 `json:"refit_seconds_total"`
	// WarmStartRefits/ColdStartRefits split Refits by starting point;
	// RefitADMMIterations totals the solver iterations across every fit
	// attempt, so iterations-per-refit (and its drop once warm starts
	// kick in) is derivable from lifetime counters alone.
	WarmStartRefits      uint64 `json:"warm_start_refits_total"`
	ColdStartRefits      uint64 `json:"cold_start_refits_total"`
	RefitADMMIterations  uint64 `json:"refit_admm_iterations_total"`
	PlanCacheHits        uint64 `json:"plan_cache_hits_total"`
	PlanCacheMisses      uint64 `json:"plan_cache_misses_total"`
	ForecastCacheHits    uint64 `json:"forecast_cache_hits_total"`
	ForecastCacheMisses  uint64 `json:"forecast_cache_misses_total"`
	PlanCacheEntries     int    `json:"plan_cache_entries"`
	ForecastCacheEntries int    `json:"forecast_cache_entries"`
	// WAL state, present when a write-ahead log is attached: the last
	// acknowledged batch sequence, the log's on-disk footprint, whether
	// the log is wedged (appends failing until restart), and how much of
	// the current history arrived via boot-time replay.
	WALLastSeq         uint64 `json:"wal_last_seq,omitempty"`
	WALSegments        int    `json:"wal_segments,omitempty"`
	WALSizeBytes       int64  `json:"wal_size_bytes,omitempty"`
	WALBroken          bool   `json:"wal_broken,omitempty"`
	WALReplayedRecords uint64 `json:"wal_replayed_records_total,omitempty"`
	WALReplayedEvents  uint64 `json:"wal_replayed_events_total,omitempty"`
}

// Stats reports the workload's observability summary.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := Stats{
		Status:               e.statusLocked(),
		StalenessGenerations: e.gen - e.trainedGen,
		LastRefitAt:          e.lastTrainAt,
		PlanCacheEntries:     len(e.planCache),
		ForecastCacheEntries: len(e.fcCache),
		WALLastSeq:           e.walSeq,
	}
	if e.staleSince > 0 {
		if age := e.cfg.Now() - e.staleSince; age > 0 {
			st.ModelStalenessSeconds = age
		}
	}
	wlog := e.wal
	e.mu.Unlock()
	if wlog != nil {
		ls := wlog.Stats()
		st.WALSegments = ls.Segments
		st.WALSizeBytes = ls.SizeBytes
		st.WALBroken = ls.Broken
		st.WALReplayedRecords = e.m.walReplayedRecords.Value()
		st.WALReplayedEvents = e.m.walReplayedEvents.Value()
	}
	st.IngestedEvents = e.m.ingestEvents.Value()
	st.IngestedBatches = e.m.ingestBatches.Value()
	st.Refits = e.m.refits.Value()
	st.RefitFailures = e.m.refitFailures.Value()
	st.RefitSecondsTotal = e.m.refitSeconds.Value()
	st.WarmStartRefits = e.m.refitsWarm.Value()
	st.ColdStartRefits = e.m.refitsCold.Value()
	st.RefitADMMIterations = e.m.admmIterations.Value()
	st.PlanCacheHits = e.m.planHits.Value()
	st.PlanCacheMisses = e.m.planMisses.Value()
	st.ForecastCacheHits = e.m.forecastHits.Value()
	st.ForecastCacheMisses = e.m.forecastMisses.Value()
	return st
}

// stalenessLag returns gen - trainedGen under the lock.
func (e *Engine) stalenessLag() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gen - e.trainedGen
}

// SetFitSeconds attaches a shared fit-latency histogram; every
// completed fit attempt observes its wall time into it. Must be set
// before the engine serves traffic (the Registry does so before
// publishing a new engine).
func (e *Engine) SetFitSeconds(h *metrics.Histogram) { e.fitSeconds = h }

// SetStalenessThreshold configures the model-staleness alert: workloads
// whose model has been behind the arrival history for more than sec
// seconds are counted by the robustscaler_workloads_stale_over_threshold
// gauge. 0 disables the alert. Safe to call at any time.
func (r *Registry) SetStalenessThreshold(sec float64) {
	r.instMu.Lock()
	r.stalenessThreshold = sec
	r.instMu.Unlock()
}

// StalenessThreshold returns the configured alert threshold in seconds;
// 0 means disabled.
func (r *Registry) StalenessThreshold() float64 {
	r.instMu.Lock()
	defer r.instMu.Unlock()
	return r.stalenessThreshold
}

// SnapshotHealth describes the registry's persistence liveness — the
// outcome trail of SnapshotTo across every trigger (background tick,
// admin endpoint, durable delete, final shutdown snapshot). The health
// endpoint turns ConsecutiveFailures into a degraded signal.
type SnapshotHealth struct {
	Snapshots           uint64 `json:"snapshots_total"`
	Failures            uint64 `json:"snapshot_failures_total"`
	ConsecutiveFailures uint64 `json:"consecutive_failures"`
	// LastSuccessUnix is the wall-clock second of the last successful
	// snapshot; 0 means none has succeeded yet.
	LastSuccessUnix     int64   `json:"last_success_unix"`
	LastDurationSeconds float64 `json:"last_duration_seconds"`
	// LastError is the most recent failure's message; cleared by the
	// next success.
	LastError string `json:"last_error,omitempty"`
}

// SnapshotHealth returns the registry's persistence liveness record.
func (r *Registry) SnapshotHealth() SnapshotHealth {
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	return r.snapHealth
}

// recordSnapshot folds one snapshot outcome into the health record and
// the shared duration histogram.
func (r *Registry) recordSnapshot(dur time.Duration, err error) {
	r.instMu.Lock()
	h := r.snapSeconds
	r.instMu.Unlock()
	if h != nil {
		h.Observe(dur.Seconds())
	}
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	r.snapHealth.Snapshots++
	r.snapHealth.LastDurationSeconds = dur.Seconds()
	if err != nil {
		r.snapHealth.Failures++
		r.snapHealth.ConsecutiveFailures++
		r.snapHealth.LastError = err.Error()
		return
	}
	r.snapHealth.ConsecutiveFailures = 0
	r.snapHealth.LastError = ""
	r.snapHealth.LastSuccessUnix = time.Now().Unix()
}

// Instrument registers the engine layer's fleet-wide metrics into m:
// the fleet total counters every engine dual-writes (see
// fleetCounters), the staleness gauges (the only series that walk the
// fleet, once each, at scrape time), the refit-latency and
// snapshot-duration histograms (shared by every engine this registry
// created or will create), and the snapshot-health series. Call it
// once at startup, before traffic.
func (r *Registry) Instrument(m *metrics.Registry) {
	m.GaugeFunc("robustscaler_workloads",
		"Registered workloads.", func() float64 { return float64(r.Len()) })
	m.GaugeFunc("robustscaler_workloads_stale",
		"Workloads whose model lags the ingested arrivals.", func() float64 {
			n := 0.0
			for _, e := range r.snapshot() {
				if e.stalenessLag() > 0 {
					n++
				}
			}
			return n
		})
	m.GaugeFunc("robustscaler_staleness_generations",
		"Sum over workloads of ingest generations the model is behind.", func() float64 {
			n := 0.0
			for _, e := range r.snapshot() {
				n += float64(e.stalenessLag())
			}
			return n
		})
	m.GaugeFunc("robustscaler_staleness_threshold_seconds",
		"Configured model-staleness alert threshold; 0 when disabled.",
		r.StalenessThreshold)
	m.GaugeFunc("robustscaler_workloads_stale_over_threshold",
		"Workloads whose model has been stale for longer than the threshold (always 0 when disabled).",
		func() float64 {
			thr := r.StalenessThreshold()
			if thr <= 0 {
				return 0
			}
			n := 0.0
			for _, e := range r.snapshot() {
				if e.modelStalenessSeconds() > thr {
					n++
				}
			}
			return n
		})
	m.GaugeFunc("robustscaler_model_staleness_max_seconds",
		"Age of the stalest model in the fleet; 0 when every model is fresh.",
		func() float64 {
			worst := 0.0
			for _, e := range r.snapshot() {
				if s := e.modelStalenessSeconds(); s > worst {
					worst = s
				}
			}
			return worst
		})

	fleet := &fleetCounters{
		ingestEvents: m.Counter("robustscaler_engine_ingested_events_total",
			"Arrival timestamps recorded by engines (survives workload deletion)."),
		ingestBatches: m.Counter("robustscaler_engine_ingested_batches_total",
			"Ingest batches recorded by engines."),
		refits: m.Counter("robustscaler_refits_total",
			"Successful model fits."),
		refitFailures: m.Counter("robustscaler_refit_failures_total",
			"Failed model fits (previous model kept)."),
		refitsWarm: m.Counter("robustscaler_refit_warm_start_total",
			"Successful fits warm-started from the previous solution."),
		refitsCold: m.Counter("robustscaler_refit_cold_start_total",
			"Successful fits run from the cold initial guess."),
		admmIterations: m.Counter("robustscaler_refit_admm_iterations_total",
			"ADMM iterations across all fit attempts."),
		planHits: m.Counter("robustscaler_plan_cache_hits_total",
			"Plan requests served from the result cache."),
		planMisses: m.Counter("robustscaler_plan_cache_misses_total",
			"Plan requests that recomputed the horizon."),
		forecastHits: m.Counter("robustscaler_forecast_cache_hits_total",
			"Forecast requests served from the result cache."),
		forecastMisses: m.Counter("robustscaler_forecast_cache_misses_total",
			"Forecast requests that resampled the intensity."),
	}
	fit := m.Histogram("robustscaler_refit_seconds",
		"Wall time of one model fit attempt.", metrics.DefBuckets)
	snap := m.Histogram("robustscaler_snapshot_seconds",
		"Wall time of one registry snapshot (collect + commit).", metrics.DefBuckets)
	r.instMu.Lock()
	r.fleet = fleet
	r.fitSeconds = fit
	r.snapSeconds = snap
	r.instMu.Unlock()
	for _, e := range r.snapshot() {
		e.fleet = fleet
		e.SetFitSeconds(fit)
	}

	m.CounterFunc("robustscaler_snapshots_total",
		"Registry snapshot attempts.", func() float64 { return float64(r.SnapshotHealth().Snapshots) })
	m.CounterFunc("robustscaler_snapshot_failures_total",
		"Registry snapshot attempts that failed (previous snapshot kept).",
		func() float64 { return float64(r.SnapshotHealth().Failures) })
	m.GaugeFunc("robustscaler_snapshot_consecutive_failures",
		"Consecutive snapshot failures since the last success.",
		func() float64 { return float64(r.SnapshotHealth().ConsecutiveFailures) })
	m.GaugeFunc("robustscaler_snapshot_last_success_age_seconds",
		"Seconds since the last successful snapshot; -1 before the first.", func() float64 {
			last := r.SnapshotHealth().LastSuccessUnix
			if last == 0 {
				return -1
			}
			return time.Since(time.Unix(last, 0)).Seconds()
		})
}
