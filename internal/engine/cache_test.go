package engine

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

// planReq is the fixed round used by the cache tests.
func planReq(variant string, now float64) PlanRequest {
	target := 0.9
	if variant != "hp" {
		target = 5
	}
	return PlanRequest{Variant: variant, Target: target, Horizon: 1800, Now: now, HasNow: true}
}

// TestPlanCacheHitAndInvalidation pins the cache lifecycle: an
// identical re-request returns the cached round (same pointer — no
// recompute), new arrivals invalidate it, and a snapshot restore starts
// cold.
func TestPlanCacheHitAndInvalidation(t *testing.T) {
	const now = 4 * 3600.0
	for _, variant := range []string{"hp", "rt", "cost"} {
		t.Run(variant, func(t *testing.T) {
			e := trainedEngine(t, now)
			p1, err := e.Plan(planReq(variant, now))
			if err != nil {
				t.Fatal(err)
			}
			p2, err := e.Plan(planReq(variant, now))
			if err != nil {
				t.Fatal(err)
			}
			if p1 != p2 {
				t.Fatal("identical re-request recomputed instead of hitting the cache")
			}
			// A different query is its own slot, and must not evict the
			// first one.
			other := planReq(variant, now)
			other.Horizon = 900
			if _, err := e.Plan(other); err != nil {
				t.Fatal(err)
			}
			p3, err := e.Plan(planReq(variant, now))
			if err != nil {
				t.Fatal(err)
			}
			if p3 != p1 {
				t.Fatal("distinct query evicted an unrelated cache entry")
			}

			// Ingest invalidates: the next identical request recomputes.
			if _, err := e.Ingest([]float64{now + 1}); err != nil {
				t.Fatal(err)
			}
			p4, err := e.Plan(planReq(variant, now))
			if err != nil {
				t.Fatal(err)
			}
			if p4 == p1 {
				t.Fatal("cache survived an ingest")
			}

			// Restore invalidates too: a fresh engine restored from the
			// snapshot computes its own round.
			blob, err := e.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			dst, err := New(testConfig(now))
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.RestoreState(blob); err != nil {
				t.Fatal(err)
			}
			p5, err := dst.Plan(planReq(variant, now))
			if err != nil {
				t.Fatal(err)
			}
			if p5 == p4 {
				t.Fatal("restored engine shares cache entries with its source")
			}
		})
	}
}

// TestPlanCacheTrainInvalidates proves a model swap (same arrivals, new
// fit) misses the cache.
func TestPlanCacheTrainInvalidates(t *testing.T) {
	const now = 4 * 3600.0
	e := trainedEngine(t, now)
	p1, err := e.Plan(planReq("hp", now))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	p2, err := e.Plan(planReq("hp", now))
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("cache survived a retrain (model pointer changed)")
	}
	// The recomputed round is still the same decision — same data, same
	// deterministic fit.
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("refit over identical arrivals changed the hp plan")
	}
}

// TestForecastCacheLifecycle mirrors the plan-cache test for forecasts.
func TestForecastCacheLifecycle(t *testing.T) {
	const now = 4 * 3600.0
	e := trainedEngine(t, now)
	f1, err := e.Forecast(now, now+3600, 60)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := e.Forecast(now, now+3600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if &f1[0] != &f2[0] {
		t.Fatal("identical forecast recomputed instead of hitting the cache")
	}
	if _, err := e.Ingest([]float64{now + 1}); err != nil {
		t.Fatal(err)
	}
	f3, err := e.Forecast(now, now+3600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if &f1[0] == &f3[0] {
		t.Fatal("forecast cache survived an ingest")
	}
	if !reflect.DeepEqual(f1, f3) {
		t.Fatal("ingest without retrain changed the forecast values")
	}
}

// TestPlanCacheQuantizesClockAnchoredRequests: without an explicit now,
// polls within one Dt/4 window share a cache slot; a poll in the next
// window recomputes.
func TestPlanCacheQuantizesClockAnchoredRequests(t *testing.T) {
	const start = 4 * 3600.0
	clock := start
	cfg := testConfig(0)
	cfg.Now = func() float64 { return clock }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(trafficArrivals(7, start)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	req := PlanRequest{Variant: "hp", Target: 0.9, Horizon: 1800}
	p1, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	clock = start + e.Config().Dt/8 // same Dt/4 window
	p2, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("clock moved within one quantum but the plan recomputed")
	}
	clock = start + e.Config().Dt // next window
	p3, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("stale plan served beyond its quantum")
	}
	if p3.Now != clock {
		t.Fatalf("recomputed plan anchored at %g, want %g", p3.Now, clock)
	}

	// An explicit now= on a window's quantum boundary must NOT be served
	// the clock-anchored round cached for that window: that round is
	// anchored at the drifted clock reading, while the explicit request
	// promises exact anchoring.
	boundary := start + 2*e.Config().Dt // a fresh window's quantum boundary
	clock = boundary + 5                // clock drifted past it
	drifted, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if drifted.Now != clock {
		t.Fatalf("clock-anchored plan anchored at %g, want %g", drifted.Now, clock)
	}
	exact, err := e.Plan(PlanRequest{Variant: "hp", Target: 0.9, Horizon: 1800, Now: boundary, HasNow: true})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Now != boundary {
		t.Fatalf("explicit now=%g answered with a plan anchored at %g", boundary, exact.Now)
	}
}

// TestParallelMCEquivalence is the determinism contract of the Monte
// Carlo worker pool: under a fixed seed, every worker count produces
// the byte-for-byte plan of the sequential (1-worker) reference.
func TestParallelMCEquivalence(t *testing.T) {
	const now = 6 * 3600.0
	build := func(workers int) *Engine {
		cfg := testConfig(now)
		cfg.MCSamples = 1000 // several blocks, so the pool really fans out
		cfg.MCWorkers = workers
		cfg.Seed = 42
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Ingest(trafficArrivals(9, now)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Train(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	for _, variant := range []string{"rt", "cost"} {
		// A fresh reference per variant: each engine's round is then its
		// first parent-stream draw, so engines differ only in workers.
		want, err := build(1).Plan(planReq(variant, now))
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Plan) == 0 {
			t.Fatalf("%s reference plan is empty; the equivalence check would be vacuous", variant)
		}
		for _, workers := range []int{2, 3, 8} {
			got, err := build(workers).Plan(planReq(variant, now))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s plan with %d workers differs from sequential reference", variant, workers)
			}
		}
	}
}

// TestIngestSortedChunksMatchesIngest proves the fast path lands the
// same history the generic path would, including window trimming and
// the straggler-merge fallback.
func TestIngestSortedChunksMatchesIngest(t *testing.T) {
	const now = 4 * 3600.0
	mk := func() (*Engine, *Engine) {
		cfg := testConfig(now)
		cfg.HistoryWindow = 3000
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return a, b
	}
	arrivals := func(e *Engine) []float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return append([]float64(nil), e.arrivals...)
	}

	a, b := mk()
	warm := trafficArrivals(3, now)
	if _, err := a.Ingest(warm); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Ingest(warm); err != nil {
		t.Fatal(err)
	}
	// A sorted batch split into uneven chunks, starting behind the
	// recorded tail (straggler merge) and running past it (append).
	batch := []float64{now - 200, now - 100, now + 1, now + 2, now + 300, now + 301, now + 302}
	totalA, err := a.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	totalB, err := b.IngestSortedChunks([][]float64{batch[:2], batch[2:4], {}, batch[4:]})
	if err != nil {
		t.Fatal(err)
	}
	if totalA != totalB {
		t.Fatalf("totals differ: Ingest %d, IngestSortedChunks %d", totalA, totalB)
	}
	if got, want := arrivals(b), arrivals(a); !reflect.DeepEqual(got, want) {
		t.Fatalf("histories differ:\nfast    %v\ngeneric %v", got, want)
	}

	// Out-of-order chunk boundaries are rejected before any mutation.
	if _, err := b.IngestSortedChunks([][]float64{{5, 6}, {1}}); err == nil {
		t.Fatal("out-of-order chunk boundary accepted")
	}
	if got := arrivals(b); !reflect.DeepEqual(got, arrivals(a)) {
		t.Fatal("rejected batch mutated the history")
	}

	// An all-expired batch is a gen-preserving no-op, like Ingest.
	preGen := b.gen
	if n, err := b.IngestSortedChunks([][]float64{{1, 2}}); err != nil || n != totalB {
		t.Fatalf("expired batch = (%d, %v), want (%d, nil)", n, err, totalB)
	}
	if b.gen != preGen {
		t.Fatal("expired batch bumped gen")
	}

	// Empty chunks only: total unchanged, no gen bump.
	if n, err := b.IngestSortedChunks([][]float64{{}}); err != nil || n != totalB {
		t.Fatalf("empty batch = (%d, %v), want (%d, nil)", n, err, totalB)
	}
}

// TestIngestSortedChunksLargeAppend exercises the single up-front
// reserve across many chunks and checks the result stays sorted end to
// end. The reserve carries bounded headroom (≤ 25%) so steady-state
// ingest behind a trimming history window doesn't re-copy the live
// window on every batch.
func TestIngestSortedChunksLargeAppend(t *testing.T) {
	cfg := testConfig(0)
	cfg.HistoryWindow = 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const chunkLen, chunks = 1000, 7
	var all [][]float64
	v := 0.0
	for c := 0; c < chunks; c++ {
		chunk := make([]float64, chunkLen)
		for i := range chunk {
			v += 0.25
			chunk[i] = v
		}
		all = append(all, chunk)
	}
	total, err := e.IngestSortedChunks(all)
	if err != nil {
		t.Fatal(err)
	}
	if total != chunkLen*chunks {
		t.Fatalf("total = %d, want %d", total, chunkLen*chunks)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !sort.Float64sAreSorted(e.arrivals) {
		t.Fatal("history not sorted after chunked append")
	}
	const need = chunkLen * chunks
	if c := cap(e.arrivals); c < need || c > need+need/4 {
		t.Fatalf("reserve allocated cap %d, want in [%d, %d]", c, need, need+need/4)
	}
}

// TestIngestSortedChunksSteadyStateAmortized pins the reserve's headroom
// against a regression where streaming ingest behind a full history
// window reallocated (and copied the entire live window) on every
// batch: trimLocked re-slices the dead prefix away, permanently
// donating that capacity, so an exactly-sized reserve overflows again
// immediately. With headroom the grows must be a small fraction of the
// batches.
func TestIngestSortedChunksSteadyStateAmortized(t *testing.T) {
	cfg := testConfig(0)
	cfg.HistoryWindow = 1000 // ~1000 resident at 1s spacing
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 50
	ts := 0.0
	next := func() []float64 {
		chunk := make([]float64, batch)
		for i := range chunk {
			ts++
			chunk[i] = ts
		}
		return chunk
	}
	// Fill the window so every further batch runs in steady state.
	for n := 0; n < 1000; n += batch {
		if _, err := e.IngestSortedChunks([][]float64{next()}); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 60
	grows := 0
	prevCap := cap(e.arrivals)
	for r := 0; r < rounds; r++ {
		if _, err := e.IngestSortedChunks([][]float64{next()}); err != nil {
			t.Fatal(err)
		}
		if c := cap(e.arrivals); c > prevCap {
			grows++
		}
		prevCap = cap(e.arrivals)
	}
	if grows > rounds/2 {
		t.Fatalf("steady-state ingest grew the backing array %d times in %d batches; reserve headroom is not amortizing", grows, rounds)
	}
}

// TestForecastRejectsNonFinite pins the guard Plan and Forecast share:
// NaN/Inf bounds return ErrInvalid instead of looping or poisoning the
// series (satellite regression test; the HTTP layer screens these too,
// but direct API callers bypass it).
func TestForecastRejectsNonFinite(t *testing.T) {
	const now = 4 * 3600.0
	e := trainedEngine(t, now)
	for _, bad := range [][3]float64{
		{math.NaN(), now + 600, 60},
		{now, math.NaN(), 60},
		{now, now + 600, math.NaN()},
		{math.Inf(-1), now + 600, 60},
		{now, math.Inf(1), 60},
		{now, now + 600, math.Inf(1)},
	} {
		if _, err := e.Forecast(bad[0], bad[1], bad[2]); err == nil {
			t.Fatalf("Forecast(%v) accepted non-finite bounds", bad)
		}
	}
}
