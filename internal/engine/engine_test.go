package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"robustscaler/internal/nhpp"
)

// testConfig returns a fast-training config with a fake clock.
func testConfig(now float64) Config {
	cfg := DefaultConfig()
	cfg.MCSamples = 100
	cfg.Now = func() float64 { return now }
	return cfg
}

// trafficArrivals draws a periodic NHPP trace for ingestion.
func trafficArrivals(seed int64, horizon float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	in := nhpp.Func{F: func(t float64) float64 {
		return 0.3 + 0.25*math.Sin(2*math.Pi*t/3600)
	}, Step: 10, MaxHorizon: horizon * 2}
	return nhpp.Simulate(rng, in, 0, horizon)
}

func TestIngestMergesOutOfOrderBatches(t *testing.T) {
	e, err := New(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	// In-order, overlapping, and fully interleaved batches must all land
	// sorted — the same result as the seed's sort-everything ingest.
	batches := [][]float64{
		{10, 20, 30},
		{40, 50},          // steady-state append path
		{25, 35},          // overlap: merge path
		{5, 45, 15},       // unsorted batch
		{50, 50, 60, 0.5}, // duplicates + early straggler
	}
	var all []float64
	for _, b := range batches {
		all = append(all, b...)
		e.Ingest(b)
	}
	sort.Float64s(all)
	e.mu.Lock()
	got := append([]float64(nil), e.arrivals...)
	e.mu.Unlock()
	if !reflect.DeepEqual(got, all) {
		t.Fatalf("arrivals = %v, want %v", got, all)
	}
}

func TestIngestTrimsHistoryWindow(t *testing.T) {
	cfg := testConfig(0)
	cfg.HistoryWindow = 100
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total, err := e.Ingest([]float64{0, 10, 500, 560, 590})
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Fatalf("retained %d arrivals, want 3 (window 100 ending at 590)", total)
	}
	for _, bad := range [][]float64{{math.NaN()}, {2e15}, {-2e15}, {1, math.Inf(1)}} {
		if _, err := e.Ingest(bad); !errors.Is(err, ErrInvalid) {
			t.Fatalf("Ingest(%v): err %v, want ErrInvalid", bad, err)
		}
	}
}

func TestTrainRejectsAstronomicalSpan(t *testing.T) {
	cfg := testConfig(0)
	cfg.HistoryWindow = 0 // nothing trims the stray far-off point
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]float64{0, 1, 1e12}); err != nil {
		t.Fatal(err)
	}
	// Span/Dt ≈ 1.7e10 bins: the fit must refuse cleanly instead of
	// materializing the series, and the background sweep must not retry
	// until new data arrives.
	if _, err := e.Train(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("train on astronomical span: err %v, want ErrInvalid", err)
	}
	if ran, _ := e.Retrain(); ran {
		t.Fatal("Retrain retried the known-failing gen")
	}
}

func TestTrainPlanForecastLifecycle(t *testing.T) {
	const horizon = 6 * 3600.0
	e, err := New(testConfig(horizon))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != ErrNoData {
		t.Fatalf("train on empty engine: %v, want ErrNoData", err)
	}
	if _, err := e.Plan(PlanRequest{Variant: "hp", Target: 0.9, Horizon: 120}); err != ErrNoModel {
		t.Fatalf("plan without model: %v, want ErrNoModel", err)
	}
	e.Ingest(trafficArrivals(1, horizon))
	info, err := e.Train()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Converged {
		t.Fatal("training did not converge")
	}
	if math.Abs(info.PeriodSeconds-3600) > 600 {
		t.Fatalf("period %g, want ≈3600", info.PeriodSeconds)
	}
	plan, err := e.Plan(PlanRequest{Variant: "hp", Target: 0.9, Horizon: 120, Now: horizon, HasNow: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Plan) == 0 || plan.Kappa < 1 {
		t.Fatalf("plan %+v", plan)
	}
	for _, entry := range plan.Plan {
		if entry.CreateAt < horizon || entry.CreateAt > horizon+120 {
			t.Fatalf("creation %g outside [now, now+120]", entry.CreateAt)
		}
	}
	if _, err := e.Plan(PlanRequest{Variant: "bogus", Target: 0.9, Horizon: 120}); err == nil {
		t.Fatal("bogus variant accepted")
	}
	// Non-finite parameters pass every range comparison and used to
	// panic inside the decision horizon.
	for _, req := range []PlanRequest{
		{Variant: "hp", Target: 0.9, Horizon: 120, Now: math.NaN(), HasNow: true},
		{Variant: "hp", Target: math.NaN(), Horizon: 120},
		{Variant: "rt", Target: 5, Horizon: math.Inf(1)},
	} {
		if _, err := e.Plan(req); !errors.Is(err, ErrInvalid) {
			t.Fatalf("non-finite plan request %+v: err %v, want ErrInvalid", req, err)
		}
	}
	pts, err := e.Forecast(horizon, horizon+3600, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("forecast points %d, want 12", len(pts))
	}
	for _, bad := range [][3]float64{
		{0, math.NaN(), 60},
		{math.NaN(), 100, 60},
		{0, 100, math.NaN()},
		{0, math.Inf(1), 60},
	} {
		if _, err := e.Forecast(bad[0], bad[1], bad[2]); !errors.Is(err, ErrInvalid) {
			t.Fatalf("Forecast(%v): err %v, want ErrInvalid", bad, err)
		}
	}
	st := e.Status()
	if !st.ModelReady || st.TrainedOn != st.Arrivals || st.RateNow <= 0 {
		t.Fatalf("status %+v", st)
	}
}

func TestRegistryIsolatesWorkloads(t *testing.T) {
	const horizon = 4 * 3600.0
	reg, err := NewRegistry(testConfig(horizon))
	if err != nil {
		t.Fatal(err)
	}
	a, err := reg.GetOrCreate("registry-eu")
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.GetOrCreate("ci-runners")
	if err != nil {
		t.Fatal(err)
	}
	a.Ingest(trafficArrivals(1, horizon))
	b.Ingest(trafficArrivals(2, horizon))
	if _, err := a.Train(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Train(); err != nil {
		t.Fatal(err)
	}
	req := PlanRequest{Variant: "hp", Target: 0.9, Horizon: 300, Now: horizon, HasNow: true}
	planB1, err := b.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	fcB1, err := b.Forecast(horizon, horizon+1800, 60)
	if err != nil {
		t.Fatal(err)
	}

	// Hammer workload A: more traffic at triple the rate, then retrain.
	extra := trafficArrivals(3, horizon)
	for i := range extra {
		extra[i] = horizon + extra[i]/3
	}
	a.Ingest(extra)
	if ran, err := a.Retrain(); err != nil || !ran {
		t.Fatalf("retrain A: ran=%v err=%v", ran, err)
	}

	// Workload B's outputs must be bit-identical.
	planB2, err := b.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	fcB2, err := b.Forecast(horizon, horizon+1800, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(planB1, planB2) {
		t.Fatalf("B's plan changed after traffic to A:\n%+v\n%+v", planB1, planB2)
	}
	if !reflect.DeepEqual(fcB1, fcB2) {
		t.Fatal("B's forecast changed after traffic to A")
	}
}

func TestRegistryLifecycle(t *testing.T) {
	reg, err := NewRegistry(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.GetOrCreate(""); err == nil {
		t.Fatal("empty workload id accepted")
	}
	if _, ok := reg.Get("a"); ok {
		t.Fatal("Get invented a workload")
	}
	ea, err := reg.GetOrCreate("a")
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := reg.GetOrCreate("a"); again != ea {
		t.Fatal("GetOrCreate returned a different engine for the same id")
	}
	reg.GetOrCreate("b")
	if got := reg.Workloads(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Workloads = %v", got)
	}
	if reg.Len() != 2 {
		t.Fatalf("Len = %d", reg.Len())
	}
	if !reg.Remove("a") || reg.Remove("a") {
		t.Fatal("Remove semantics wrong")
	}
	if reg.Len() != 1 {
		t.Fatalf("Len after remove = %d", reg.Len())
	}
}

func TestRetrainAllRefitsOnlyStaleWorkloads(t *testing.T) {
	const horizon = 2 * 3600.0
	reg, err := NewRegistry(testConfig(horizon))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		e, err := reg.GetOrCreate(fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatal(err)
		}
		e.Ingest(trafficArrivals(int64(i+1), horizon))
	}
	// Also an empty workload the sweep must skip without error.
	reg.GetOrCreate("idle")

	refitted, failed := reg.RetrainAll(3)
	if refitted != 4 || failed != 0 {
		t.Fatalf("first sweep: refitted=%d failed=%d, want 4,0", refitted, failed)
	}
	// Nothing changed: second sweep is a no-op.
	refitted, failed = reg.RetrainAll(3)
	if refitted != 0 || failed != 0 {
		t.Fatalf("idempotent sweep: refitted=%d failed=%d, want 0,0", refitted, failed)
	}
	// New traffic on one workload: only that one refits.
	e, _ := reg.Get("w2")
	e.Ingest([]float64{horizon + 1, horizon + 2})
	refitted, _ = reg.RetrainAll(3)
	if refitted != 1 {
		t.Fatalf("stale-only sweep: refitted=%d, want 1", refitted)
	}
}

// TestConcurrentWorkloads exercises parallel ingest/train/plan/forecast
// across many workloads plus concurrent registry lookups and background
// sweeps; run under -race it proves the sharded locking sound.
func TestConcurrentWorkloads(t *testing.T) {
	const (
		horizon   = 2 * 3600.0
		workloads = 8
		rounds    = 3
	)
	cfg := testConfig(horizon)
	cfg.MCSamples = 30
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traces := make([][]float64, workloads)
	for i := range traces {
		traces[i] = trafficArrivals(int64(i+1), horizon)
	}
	var wg sync.WaitGroup
	for i := 0; i < workloads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("workload-%d", i)
			trace := traces[i]
			chunk := len(trace)/rounds + 1
			for r := 0; r < rounds; r++ {
				e, err := reg.GetOrCreate(id)
				if err != nil {
					t.Error(err)
					return
				}
				lo := r * chunk
				hi := min(len(trace), lo+chunk)
				e.Ingest(trace[lo:hi])
				if _, err := e.Train(); err != nil {
					t.Errorf("%s train: %v", id, err)
					return
				}
				if _, err := e.Plan(PlanRequest{Variant: "rt", Target: 5, Horizon: 60, Now: horizon, HasNow: true}); err != nil {
					t.Errorf("%s plan: %v", id, err)
					return
				}
				if _, err := e.Forecast(horizon, horizon+600, 60); err != nil {
					t.Errorf("%s forecast: %v", id, err)
					return
				}
				e.Status()
			}
		}(i)
	}
	// A concurrent background sweep, as the Retrainer would run it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			reg.RetrainAll(4)
		}
	}()
	wg.Wait()
	if reg.Len() != workloads {
		t.Fatalf("registry has %d workloads, want %d", reg.Len(), workloads)
	}
}
