package engine

// Crash-fault injection for the durability plane: these tests drive the
// engine the way scalerd boots it (store restore → WAL attach → WAL
// replay), kill it at the worst moments, and assert the acceptance
// contract — every acknowledged batch survives restart with
// bit-identical plans and forecasts, every injected fault class either
// recovers by truncation or fails loudly, and nothing boots with
// silently corrupted history.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"robustscaler/internal/store"
	"robustscaler/internal/wal"
)

// walBoot wires a registry exactly like scalerd's boot sequence:
// restore the snapshot tolerantly, open the WAL, attach it, replay the
// surviving records. The returned report and quarantine list are what
// the daemon would surface through /healthz.
func walBoot(t *testing.T, cfg Config, storeDir, walDir string, fs wal.FS) (*Registry, *store.Store, *wal.Manager, WALReplayReport, []store.Quarantined) {
	t.Helper()
	r, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	_, quarantined, err := r.RestoreFromTolerant(st)
	if err != nil {
		t.Fatalf("RestoreFromTolerant: %v", err)
	}
	mgr, err := wal.Open(wal.Options{Dir: walDir, Policy: wal.SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	if err := r.AttachWAL(mgr, st.Dir()); err != nil {
		t.Fatalf("AttachWAL: %v", err)
	}
	rep, err := r.ReplayWAL()
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	return r, st, mgr, rep, quarantined
}

// ingestVia feeds one batch through either ingest path, so the suite
// covers both the sorted-copy path and the streaming chunk path.
func ingestVia(t *testing.T, e *Engine, chunked bool, batch []float64) {
	t.Helper()
	var err error
	if chunked {
		_, err = e.IngestSortedChunks([][]float64{batch})
	} else {
		_, err = e.Ingest(batch)
	}
	if err != nil {
		t.Fatalf("ingest %v: %v", batch, err)
	}
}

// TestKill9AckedBatchesSurviveBitIdentical is the acceptance test:
// batches acknowledged after the last snapshot tick, with the process
// then killed without any shutdown path running, must be visible after
// restart — and the restarted fleet's plans and forecasts must be
// bit-identical to an uninterrupted run that saw the same traffic.
func TestKill9AckedBatchesSurviveBitIdentical(t *testing.T) {
	now := 7200.0
	cfg := testConfig(now)
	cfg.Seed = 42
	storeDir, walDir := t.TempDir(), t.TempDir()

	// The control fleet: same config, same traffic, never interrupted.
	control, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The crashing fleet, booted cold.
	r, st, _, rep, _ := walBoot(t, cfg, storeDir, walDir, nil)
	if rep.Workloads != 0 {
		t.Fatalf("cold boot replayed %d workloads", rep.Workloads)
	}

	web := trafficArrivals(1, 3600)
	api := trafficArrivals(2, 3600)
	feed := func(r *Registry, id string, chunked bool, batch []float64) {
		e, err := r.GetOrCreate(id)
		if err != nil {
			t.Fatal(err)
		}
		ingestVia(t, e, chunked, batch)
	}
	// Phase 1: traffic that makes it into a snapshot tick.
	feed(r, "web", false, web[:len(web)/2])
	feed(r, "api", true, api[:len(api)/3])
	feed(control, "web", false, web[:len(web)/2])
	feed(control, "api", true, api[:len(api)/3])
	if _, err := r.SnapshotTo(st); err != nil {
		t.Fatalf("snapshot tick: %v", err)
	}
	// Phase 2: acknowledged after the tick — lives only in the WAL.
	feed(r, "web", true, web[len(web)/2:])
	feed(r, "api", false, api[len(api)/3:])
	feed(control, "web", true, web[len(web)/2:])
	feed(control, "api", false, api[len(api)/3:])

	// kill -9: no snapshot, no WAL close, no flush. The registry and
	// manager are simply abandoned; a new process boots from disk.
	r2, _, _, rep2, quarantined := walBoot(t, cfg, storeDir, walDir, nil)
	if len(quarantined) != 0 {
		t.Fatalf("quarantined on boot: %+v", quarantined)
	}
	if rep2.Records == 0 || len(rep2.Reset) != 0 || rep2.Truncations != 0 {
		t.Fatalf("replay report = %+v, want clean replay of the acked tail", rep2)
	}

	for _, id := range []string{"web", "api"} {
		ce, _ := control.Get(id)
		re, ok := r2.Get(id)
		if !ok {
			t.Fatalf("workload %q lost across the crash", id)
		}
		cn, _ := ce.Ingest(nil)
		rn, _ := re.Ingest(nil)
		if cn != rn {
			t.Fatalf("%q: restarted history has %d arrivals, control %d", id, rn, cn)
		}
		// Both fleets train cold over identical histories, then must
		// produce bit-identical plans (deterministic hp and Monte Carlo
		// rt — the restored RNG is re-seeded, and the control's stream is
		// untouched) and forecasts.
		if _, err := ce.Train(); err != nil {
			t.Fatal(err)
		}
		if _, err := re.Train(); err != nil {
			t.Fatal(err)
		}
		for _, variant := range []string{"hp", "rt"} {
			cp := planOf(t, ce, variant, now)
			rp := planOf(t, re, variant, now)
			if !reflect.DeepEqual(cp, rp) {
				t.Fatalf("%q: %s plan diverged after crash recovery:\ncontrol: %+v\nrestart: %+v", id, variant, cp, rp)
			}
		}
		cf, err := ce.Forecast(now, now+1800, 60)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := re.Forecast(now, now+1800, 60)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cf, rf) {
			t.Fatalf("%q: forecast diverged after crash recovery", id)
		}
	}
}

// TestSnapshotCheckpointTruncatesWAL: a snapshot commit must checkpoint
// the logs (the records are now redundant), and the next boot replays
// nothing.
func TestSnapshotCheckpointTruncatesWAL(t *testing.T) {
	cfg := testConfig(1000)
	storeDir, walDir := t.TempDir(), t.TempDir()
	r, st, mgr, _, _ := walBoot(t, cfg, storeDir, walDir, nil)
	e, err := r.GetOrCreate("web")
	if err != nil {
		t.Fatal(err)
	}
	ingestVia(t, e, false, []float64{10, 20, 30})
	ingestVia(t, e, true, []float64{40, 50})
	l, err := mgr.Log("web")
	if err != nil {
		t.Fatal(err)
	}
	if ls := l.Stats(); ls.LastSeq != 2 || ls.SizeBytes == 0 {
		t.Fatalf("pre-snapshot log stats = %+v", ls)
	}
	if _, err := r.SnapshotTo(st); err != nil {
		t.Fatal(err)
	}
	if ls := l.Stats(); ls.Segments != 0 {
		t.Fatalf("post-snapshot log still holds %d segments", ls.Segments)
	}
	r2, _, _, rep, _ := walBoot(t, cfg, storeDir, walDir, nil)
	if rep.Records != 0 {
		t.Fatalf("replayed %d records after a checkpointing snapshot", rep.Records)
	}
	e2, ok := r2.Get("web")
	if !ok {
		t.Fatal("workload lost")
	}
	if n, _ := e2.Ingest(nil); n != 5 {
		t.Fatalf("restored history has %d arrivals, want 5", n)
	}
	// And the sequence continues where it left off, not from zero.
	ingestVia(t, e2, false, []float64{60})
	if got := e2.Stats().WALLastSeq; got != 3 {
		t.Fatalf("post-restart append got seq %d, want 3", got)
	}
}

// TestBackupSnapshotDoesNotTruncateWAL: committing into a second store
// (an operator backup) must not checkpoint the primary's logs — the
// primary snapshot never captured those batches.
func TestBackupSnapshotDoesNotTruncateWAL(t *testing.T) {
	cfg := testConfig(1000)
	storeDir, walDir := t.TempDir(), t.TempDir()
	r, _, mgr, _, _ := walBoot(t, cfg, storeDir, walDir, nil)
	e, err := r.GetOrCreate("web")
	if err != nil {
		t.Fatal(err)
	}
	ingestVia(t, e, false, []float64{10, 20, 30})
	backup, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.SnapshotTo(backup); err != nil {
		t.Fatal(err)
	}
	l, err := mgr.Log("web")
	if err != nil {
		t.Fatal(err)
	}
	if ls := l.Stats(); ls.Segments == 0 {
		t.Fatal("backup snapshot truncated the primary WAL")
	}
}

// TestFailedFsyncRejectsBatchUnacknowledged: under the always policy a
// batch whose fsync fails must be rejected with nothing mutated — the
// caller sees an error, the history is unchanged, and a restart does
// not resurrect the batch.
func TestFailedFsyncRejectsBatchUnacknowledged(t *testing.T) {
	cfg := testConfig(1000)
	storeDir, walDir := t.TempDir(), t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS())
	r, _, _, _, _ := walBoot(t, cfg, storeDir, walDir, ffs)
	e, err := r.GetOrCreate("web")
	if err != nil {
		t.Fatal(err)
	}
	ingestVia(t, e, false, []float64{10, 20})
	before := e.Stats()

	ffs.FailSyncs(errors.New("disk on fire"))
	if _, err := e.Ingest([]float64{30, 40}); err == nil {
		t.Fatal("Ingest acked a batch whose fsync failed")
	}
	if _, err := e.IngestSortedChunks([][]float64{{50}}); err == nil {
		t.Fatal("IngestSortedChunks acked a batch whose fsync failed")
	}
	ffs.FailSyncs(nil)

	after := e.Stats()
	if n, _ := e.Ingest(nil); n != 2 {
		t.Fatalf("rejected batch mutated the history: %d arrivals", n)
	}
	if after.IngestedBatches != before.IngestedBatches || after.WALLastSeq != before.WALLastSeq {
		t.Fatalf("rejected batch advanced counters: before %+v after %+v", before, after)
	}
	// The log recovered in place: the next batch is accepted and the
	// whole acked set survives a restart.
	ingestVia(t, e, false, []float64{60})
	r2, _, _, rep, _ := walBoot(t, cfg, storeDir, walDir, nil)
	if len(rep.Reset) != 0 {
		t.Fatalf("replay reset a log after a recovered fsync failure: %+v", rep.Reset)
	}
	e2, _ := r2.Get("web")
	if n, _ := e2.Ingest(nil); n != 3 {
		t.Fatalf("restart sees %d arrivals, want the 3 acked ones", n)
	}
}

// TestTornWriteTruncatedOnBoot: a write torn mid-record by a crash
// (simulated as a silent partial write — the process "dies" before
// observing the result) must be truncated away at boot, with every
// earlier acknowledged batch intact.
func TestTornWriteTruncatedOnBoot(t *testing.T) {
	cfg := testConfig(1000)
	storeDir, walDir := t.TempDir(), t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS())
	r, _, _, _, _ := walBoot(t, cfg, storeDir, walDir, ffs)
	e, err := r.GetOrCreate("web")
	if err != nil {
		t.Fatal(err)
	}
	ingestVia(t, e, false, []float64{10, 20})
	ingestVia(t, e, true, []float64{30})
	// The next record loses all but 5 bytes mid-write; the "ack" the
	// caller sees never escapes the dying process.
	ffs.TearNextWrite(5)
	_, _ = e.Ingest([]float64{40, 50})

	r2, _, _, rep, _ := walBoot(t, cfg, storeDir, walDir, nil)
	if rep.Truncations != 1 {
		t.Fatalf("boot did not report the torn tail: %+v", rep)
	}
	e2, _ := r2.Get("web")
	if n, _ := e2.Ingest(nil); n != 3 {
		t.Fatalf("restart sees %d arrivals, want the 3 fully-written ones", n)
	}
	// The repaired log accepts new traffic and survives another cycle.
	ingestVia(t, e2, false, []float64{60})
	r3, _, _, rep3, _ := walBoot(t, cfg, storeDir, walDir, nil)
	if rep3.Truncations != 0 || len(rep3.Reset) != 0 {
		t.Fatalf("second boot after repair not clean: %+v", rep3)
	}
	e3, _ := r3.Get("web")
	if n, _ := e3.Ingest(nil); n != 4 {
		t.Fatalf("second restart sees %d arrivals, want 4", n)
	}
}

// TestBitFlipTruncatesFromCorruption: a flipped bit in an early record
// cuts the log there — later records are gone (their base history is
// unreliable), earlier ones survive, and the boot says so.
func TestBitFlipTruncatesFromCorruption(t *testing.T) {
	cfg := testConfig(1000)
	storeDir, walDir := t.TempDir(), t.TempDir()
	r, _, mgr, _, _ := walBoot(t, cfg, storeDir, walDir, nil)
	e, err := r.GetOrCreate("web")
	if err != nil {
		t.Fatal(err)
	}
	ingestVia(t, e, false, []float64{10})
	ingestVia(t, e, false, []float64{20})
	ingestVia(t, e, false, []float64{30})
	// Flip one payload bit in the middle of the segment, offline.
	seg := segmentPathOf(t, mgr, "web")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, _, _, rep, _ := walBoot(t, cfg, storeDir, walDir, nil)
	if rep.Truncations != 1 {
		t.Fatalf("boot did not report the corruption: %+v", rep)
	}
	e2, _ := r2.Get("web")
	n, _ := e2.Ingest(nil)
	if n >= 3 {
		t.Fatalf("restart sees %d arrivals — corrupt history served silently", n)
	}
}

// segmentPathOf returns the path of the workload's single on-disk WAL
// segment file.
func segmentPathOf(t *testing.T, mgr *wal.Manager, id string) string {
	t.Helper()
	des, err := os.ReadDir(mgr.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if !de.IsDir() || !strings.HasPrefix(de.Name(), id+"-") {
			continue
		}
		segs, err := os.ReadDir(filepath.Join(mgr.Dir(), de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != 1 {
			t.Fatalf("workload %q has %d segments, want 1", id, len(segs))
		}
		return filepath.Join(mgr.Dir(), de.Name(), segs[0].Name())
	}
	t.Fatalf("no WAL dir for %q", id)
	return ""
}

// TestWALGapResetsLogKeepsSnapshot: replaying a log whose sequence
// numbers don't continue the snapshot (here: a point-in-time restore to
// an older generation with the newer log left in place) must not
// stitch the timelines together — the snapshot wins, the log is reset,
// and the incident is reported for the degraded-boot detail.
func TestWALGapResetsLogKeepsSnapshot(t *testing.T) {
	cfg := testConfig(1000)
	storeDir, walDir := t.TempDir(), t.TempDir()
	r, st, _, _, _ := walBoot(t, cfg, storeDir, walDir, nil)
	st.SetRetain(4)
	e, err := r.GetOrCreate("web")
	if err != nil {
		t.Fatal(err)
	}
	ingestVia(t, e, false, []float64{10}) // seq 1
	if _, err := r.SnapshotTo(st); err != nil {
		t.Fatal(err) // generation at walSeq 1; WAL truncated
	}
	ingestVia(t, e, false, []float64{20}) // seq 2
	if _, err := r.SnapshotTo(st); err != nil {
		t.Fatal(err) // generation at walSeq 2; WAL truncated
	}
	ingestVia(t, e, false, []float64{30}) // seq 3, WAL only
	ingestVia(t, e, false, []float64{40}) // seq 4, WAL only

	// Disk-level point-in-time restore to the first generation, without
	// resetting the WAL (the mistake the gap check exists to catch):
	// the snapshot says walSeq 1, the log holds records 3 and 4.
	gens := st.Generations()
	if err := st.RestoreGeneration(gens[0].Seq); err != nil {
		t.Fatal(err)
	}

	r2, _, mgr2, rep, _ := walBoot(t, cfg, storeDir, walDir, nil)
	if len(rep.Reset) != 1 || rep.Reset[0].ID != "web" {
		t.Fatalf("gap not reported: %+v", rep)
	}
	e2, _ := r2.Get("web")
	if n, _ := e2.Ingest(nil); n != 1 {
		t.Fatalf("restored history has %d arrivals, want the snapshot's 1", n)
	}
	l, err := mgr2.Log("web")
	if err != nil {
		t.Fatal(err)
	}
	if ls := l.Stats(); ls.Segments != 0 {
		t.Fatalf("gapped log not reset: %+v", ls)
	}
	// The workload keeps working: new ingests log fine and survive.
	ingestVia(t, e2, false, []float64{50})
	r3, _, _, rep3, _ := walBoot(t, cfg, storeDir, walDir, nil)
	if len(rep3.Reset) != 0 {
		t.Fatalf("boot after gap recovery not clean: %+v", rep3)
	}
	e3, _ := r3.Get("web")
	if n, _ := e3.Ingest(nil); n != 2 {
		t.Fatalf("post-recovery restart sees %d arrivals, want 2", n)
	}
}

// TestReloadFromRestoresGenerationAndResetsWAL exercises the runtime
// (admin-endpoint) half of point-in-time restore: RestoreGeneration
// rewires the manifest, ReloadFrom swaps the fleet and resets the logs.
func TestReloadFromRestoresGenerationAndResetsWAL(t *testing.T) {
	cfg := testConfig(1000)
	storeDir, walDir := t.TempDir(), t.TempDir()
	r, st, mgr, _, _ := walBoot(t, cfg, storeDir, walDir, nil)
	st.SetRetain(4)
	e, err := r.GetOrCreate("web")
	if err != nil {
		t.Fatal(err)
	}
	ingestVia(t, e, false, []float64{10, 20})
	if _, err := r.SnapshotTo(st); err != nil {
		t.Fatal(err)
	}
	ingestVia(t, e, false, []float64{30, 40})
	if _, err := r.SnapshotTo(st); err != nil {
		t.Fatal(err)
	}
	gens := st.Generations()
	if err := st.RestoreGeneration(gens[0].Seq); err != nil {
		t.Fatal(err)
	}
	n, err := r.ReloadFrom(st)
	if err != nil || n != 1 {
		t.Fatalf("ReloadFrom = %d, %v", n, err)
	}
	e2, ok := r.Get("web")
	if !ok || e2 == e {
		t.Fatal("reload did not replace the engine")
	}
	if got, _ := e2.Ingest(nil); got != 2 {
		t.Fatalf("reloaded history has %d arrivals, want the restored generation's 2", got)
	}
	l, err := mgr.Log("web")
	if err != nil {
		t.Fatal(err)
	}
	if ls := l.Stats(); ls.Segments != 0 {
		t.Fatalf("reload left the abandoned timeline's WAL in place: %+v", ls)
	}
	// Post-restore traffic is durable on the restored timeline.
	ingestVia(t, e2, false, []float64{50})
	if _, err := r.SnapshotTo(st); err != nil {
		t.Fatal(err)
	}
	r2, _, _, _, _ := walBoot(t, cfg, storeDir, walDir, nil)
	e3, _ := r2.Get("web")
	if got, _ := e3.Ingest(nil); got != 3 {
		t.Fatalf("restart after reload sees %d arrivals, want 3", got)
	}
}

// TestBootQuarantineKeepsFleetServing: an unreadable snapshot file must
// not take the whole fleet down — the bad workload is quarantined and
// reported, the rest boot normally. Covers both store-level corruption
// (bad checksum) and an engine-rejected blob (valid checksum, invalid
// content).
func TestBootQuarantineKeepsFleetServing(t *testing.T) {
	cfg := testConfig(1000)
	storeDir, walDir := t.TempDir(), t.TempDir()
	r, st, _, _, _ := walBoot(t, cfg, storeDir, walDir, nil)
	for _, id := range []string{"web", "api", "batch"} {
		e, err := r.GetOrCreate(id)
		if err != nil {
			t.Fatal(err)
		}
		ingestVia(t, e, false, []float64{10, 20, 30})
	}
	if _, err := r.SnapshotTo(st); err != nil {
		t.Fatal(err)
	}
	// Corrupt api's file on disk (checksum failure at the store layer)
	// and replace batch's blob with one the engine rejects (unsorted
	// arrivals) but the store accepts (checksum is over the bytes).
	files, err := os.ReadDir(filepath.Join(storeDir, store.WorkloadDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range files {
		if strings.HasPrefix(de.Name(), "api-") {
			p := filepath.Join(storeDir, store.WorkloadDir, de.Name())
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-3] ^= 0x40
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := st.Commit([]store.Workload{{ID: "batch", State: []byte(`{"arrivals":[3,2,1]}`)}}, []string{"web", "api"}); err != nil {
		t.Fatal(err)
	}

	r2, st2, _, _, quarantined := walBoot(t, cfg, storeDir, walDir, nil)
	if len(quarantined) != 2 {
		t.Fatalf("quarantined = %+v, want api (corrupt) and batch (rejected)", quarantined)
	}
	ids := map[string]bool{}
	for _, q := range quarantined {
		if q.Reason == "" {
			t.Fatalf("quarantine without a reason: %+v", q)
		}
		ids[q.ID] = true
	}
	if !ids["api"] || !ids["batch"] {
		t.Fatalf("quarantined = %+v, want api and batch", quarantined)
	}
	if _, ok := r2.Get("web"); !ok || r2.Len() != 1 {
		t.Fatalf("survivors = %v, want just web", r2.Workloads())
	}
	if st2.Has("api") || st2.Has("batch") {
		t.Fatal("manifest still names quarantined workloads")
	}
	// The quarantined files are preserved for forensics.
	qdir, err := os.ReadDir(filepath.Join(storeDir, store.QuarantineDir))
	if err != nil || len(qdir) != 2 {
		t.Fatalf("quarantine dir holds %d files, %v; want 2", len(qdir), err)
	}
}

// TestDeleteRemovesWALAndRestartsSequence: deleting a workload drops
// its log; a recreated workload under the same ID starts a fresh
// sequence with no inherited history.
func TestDeleteRemovesWALAndRestartsSequence(t *testing.T) {
	cfg := testConfig(1000)
	storeDir, walDir := t.TempDir(), t.TempDir()
	r, _, mgr, _, _ := walBoot(t, cfg, storeDir, walDir, nil)
	e, err := r.GetOrCreate("web")
	if err != nil {
		t.Fatal(err)
	}
	ingestVia(t, e, false, []float64{10, 20})
	if !r.Remove("web") {
		t.Fatal("Remove reported the workload missing")
	}
	des, err := os.ReadDir(mgr.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 0 {
		t.Fatalf("WAL dir still holds %d entries after delete", len(des))
	}
	e2, err := r.GetOrCreate("web")
	if err != nil {
		t.Fatal(err)
	}
	ingestVia(t, e2, false, []float64{99})
	if got := e2.Stats().WALLastSeq; got != 1 {
		t.Fatalf("recreated workload continues old sequence: seq %d", got)
	}
	r2, _, _, rep, _ := walBoot(t, cfg, storeDir, walDir, nil)
	if rep.Records != 1 {
		t.Fatalf("replayed %d records, want just the recreated workload's 1", rep.Records)
	}
	e3, _ := r2.Get("web")
	if n, _ := e3.Ingest(nil); n != 1 {
		t.Fatalf("restart sees %d arrivals, want 1 (the deleted history must stay dead)", n)
	}
}

// TestStalenessThresholdGauge: the alert clock starts when the model
// first falls behind, survives the fresh/stale transitions, and the
// registry counts workloads over the threshold.
func TestStalenessThresholdGauge(t *testing.T) {
	now := 1000.0
	cfg := testConfig(0)
	cfg.Now = func() float64 { return now }
	r, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.SetStalenessThreshold(300)
	e, err := r.GetOrCreate("web")
	if err != nil {
		t.Fatal(err)
	}
	if s := e.modelStalenessSeconds(); s != 0 {
		t.Fatalf("empty workload stale for %gs", s)
	}
	ingestVia(t, e, false, trafficArrivals(1, 600))
	now = 1400 // stale since 1000, age 400 > threshold 300
	if s := e.modelStalenessSeconds(); s != 400 {
		t.Fatalf("staleness = %gs, want 400", s)
	}
	over := 0
	for _, en := range r.snapshot() {
		if en.modelStalenessSeconds() > r.StalenessThreshold() {
			over++
		}
	}
	if over != 1 {
		t.Fatalf("workloads over threshold = %d, want 1", over)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	if s := e.modelStalenessSeconds(); s != 0 {
		t.Fatalf("freshly trained workload stale for %gs", s)
	}
	if st := e.Stats(); st.ModelStalenessSeconds != 0 {
		t.Fatalf("Stats reports staleness %g after train", st.ModelStalenessSeconds)
	}
	// New traffic re-arms the clock from now, not from the old stamp.
	now = 2000
	ingestVia(t, e, false, []float64{700})
	now = 2100
	if s := e.modelStalenessSeconds(); s != 100 {
		t.Fatalf("staleness after re-arm = %gs, want 100", s)
	}
}
