package engine

// Write-ahead logging for the engine layer. With a WAL attached
// (Registry.AttachWAL, at boot), every accepted ingest batch is
// appended — and, under the "always" fsync policy, synced — to the
// workload's log *before* the engine mutates its history and the
// request is acknowledged. Restart then becomes snapshot + replay: the
// store restores the last committed snapshot and ReplayWAL re-applies
// the acknowledged batches the snapshot had not yet captured, so an
// acked ingest survives a kill -9 between snapshot ticks.
//
// The sequencing contract that makes replay idempotent: every logged
// batch carries walSeq+1, walSeq is persisted inside the workload's
// snapshot blob, and a successful snapshot commit checkpoints the log
// (TruncateThrough the committed walSeq). Replay skips records at or
// below the restored walSeq and requires the rest to be gap-free; a
// gap means the log and the snapshot describe different timelines
// (e.g. a point-in-time restore over a newer log), in which case the
// snapshot wins, the log is reset, and the incident is reported so the
// boot can surface as degraded rather than silently serving a history
// with holes.

import (
	"errors"
	"fmt"
	"log"
	"sort"

	"robustscaler/internal/store"
	"robustscaler/internal/wal"
)

// attachWAL hands the engine its per-workload log and pushes the
// workload's fsync override onto it. Called before the engine is
// reachable (creation) or before it serves traffic (boot).
func (e *Engine) attachWAL(l *wal.Log) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.wal = l
	e.applyWALPolicyLocked()
}

// applyWALPolicyLocked applies EngineConfig.WAL.Fsync to the attached
// log: "" defers to the process-wide policy, anything else overrides it
// for this workload.
func (e *Engine) applyWALPolicyLocked() {
	if e.wal == nil {
		return
	}
	if e.ec.WAL.Fsync == "" {
		e.wal.ClearSyncPolicy()
		return
	}
	p, err := wal.ParseSyncPolicy(e.ec.WAL.Fsync)
	if err != nil {
		// validate() rejects unknown policies on every write path; only a
		// snapshot from a newer build can carry one. Keep the process
		// default rather than guessing at the unknown policy's meaning.
		log.Printf("engine: ignoring unknown wal fsync policy %q", e.ec.WAL.Fsync)
		return
	}
	e.wal.SetSyncPolicy(p)
}

// appendWALLocked logs one accepted batch under the next sequence
// number, before any state mutates. An error means durability could not
// be guaranteed: the caller must reject the batch unacknowledged
// (walSeq does not advance, so the sequence is never reused — if the
// failed append did reach disk, replay will skip or re-apply it
// idempotently, never misattribute it).
func (e *Engine) appendWALLocked(chunks [][]float64) error {
	if e.wal == nil {
		return nil
	}
	if err := e.wal.Append(e.walSeq+1, chunks); err != nil {
		return fmt.Errorf("engine: write-ahead log append: %w", err)
	}
	e.walSeq++
	return nil
}

// ApplyWALRecord folds one replayed WAL batch into the engine — the
// apply callback of boot-time replay. Records the restored snapshot
// already covers (seq ≤ the persisted walSeq) are skipped; the rest
// must arrive gap-free in sequence order, and each is applied with
// Ingest's exact semantics (sort, behind-window early-out, merge,
// trim), so the post-replay history is bit-identical to the history an
// uninterrupted process would hold.
func (e *Engine) ApplyWALRecord(seq uint64, timestamps []float64) error {
	if err := ValidateTimestamps(timestamps); err != nil {
		return err
	}
	batch := append([]float64(nil), timestamps...)
	if !sort.Float64sAreSorted(batch) {
		sort.Float64s(batch)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if seq <= e.walSeq {
		return nil // the snapshot already captured this batch
	}
	if seq != e.walSeq+1 {
		return fmt.Errorf("wal record %d follows %d: the log and the snapshot describe different timelines", seq, e.walSeq)
	}
	e.walSeq = seq
	e.stateGen++ // walSeq is durable state: the next snapshot must persist it
	if len(batch) == 0 {
		return nil
	}
	// Mirror Ingest's behind-window early-out. Ingest never logs such a
	// batch, and replay starts from a state no newer than the one the
	// batch was accepted against, so this fires only if the history
	// window shrank between the append and the replay.
	if n := len(e.arrivals); n > 0 && e.ec.HistoryWindow > 0 &&
		batch[len(batch)-1] < e.arrivals[n-1]-e.ec.HistoryWindow {
		return nil
	}
	e.gen++
	e.countReplay(uint64(len(batch)))
	if n := len(e.arrivals); n == 0 || batch[0] >= e.arrivals[n-1] {
		e.arrivals = append(e.arrivals, batch...)
	} else {
		e.arrivals = mergeSorted(e.arrivals, batch)
	}
	e.trimLocked()
	e.markStaleLocked()
	return nil
}

// replayWAL replays the engine's attached log into it (no-op when none
// is attached).
func (e *Engine) replayWAL() (wal.ReplayStats, error) {
	e.mu.Lock()
	l := e.wal
	e.mu.Unlock()
	if l == nil {
		return wal.ReplayStats{}, nil
	}
	return l.Replay(e.ApplyWALRecord)
}

// walLog returns the attached log, if any.
func (e *Engine) walLog() *wal.Log {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.wal
}

// stateGenAndWALSeq reads both under one lock hold, so the snapshotter
// can pair an "unchanged since last commit" verdict with the walSeq
// that commit persisted (walSeq never moves without a stateGen bump).
func (e *Engine) stateGenAndWALSeq() (uint64, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stateGen, e.walSeq
}

// truncateWAL checkpoints the engine's log through seq after a
// successful snapshot commit. Failures are logged, not returned: the
// snapshot is already durable, and an un-truncated log only costs a few
// idempotently re-skipped records on the next boot.
func (e *Engine) truncateWAL(seq uint64) {
	l := e.walLog()
	if l == nil || seq == 0 {
		return
	}
	if err := l.TruncateThrough(seq); err != nil && !errors.Is(err, wal.ErrClosed) {
		log.Printf("engine: wal checkpoint truncation through %d: %v", seq, err)
	}
}

// AttachWAL wires a WAL manager into the registry: every existing and
// future engine gets its per-workload log (appends become
// durable-before-ack), and snapshots committed into the store rooted at
// storeDir checkpoint the logs. Snapshots into any other directory —
// e.g. an operator backup — leave the logs alone: truncating against a
// secondary store would let the primary boot lose acknowledged batches
// its own snapshot never captured. Call at boot, after the snapshot is
// restored and before traffic.
func (r *Registry) AttachWAL(mgr *wal.Manager, storeDir string) error {
	r.instMu.Lock()
	r.walMgr = mgr
	r.walDir = storeDir
	r.instMu.Unlock()
	for _, id := range r.Workloads() {
		e, ok := r.Get(id)
		if !ok {
			continue
		}
		l, err := mgr.Log(id)
		if err != nil {
			return fmt.Errorf("engine: attaching wal for workload %q: %w", id, err)
		}
		e.attachWAL(l)
	}
	return nil
}

// walManager returns the attached manager, if any.
func (r *Registry) walManager() *wal.Manager {
	r.instMu.Lock()
	defer r.instMu.Unlock()
	return r.walMgr
}

// removeWAL drops a deleted workload's log from disk.
func (r *Registry) removeWAL(id string) {
	mgr := r.walManager()
	if mgr == nil {
		return
	}
	if err := mgr.Remove(id); err != nil && !errors.Is(err, wal.ErrClosed) {
		log.Printf("engine: removing wal for deleted workload %q: %v", id, err)
	}
}

// WALResetIssue names a workload whose log disagreed with the snapshot
// beyond repair and was dropped in favor of the snapshot state.
type WALResetIssue struct {
	ID     string `json:"id"`
	Reason string `json:"reason"`
}

// WALReplayReport summarizes boot-time WAL replay across the fleet.
type WALReplayReport struct {
	// Workloads is how many logs were found and replayed; Records and
	// Events total the batches and arrival timestamps re-applied.
	Workloads int `json:"workloads"`
	Records   int `json:"records"`
	Events    int `json:"events"`
	// Truncations counts logs whose tail was cut at the first corrupt
	// record — the expected signature of a crash mid-append, recovered
	// by design (the torn record was never acknowledged).
	Truncations int `json:"truncations,omitempty"`
	// UnidentifiedDirs counts log directories whose contents could not
	// be attributed to a workload and were reset.
	UnidentifiedDirs int `json:"unidentified_dirs,omitempty"`
	// Reset lists workloads whose replay failed mid-apply (sequence gap
	// or rejected record); their logs were reset, their snapshot state
	// kept, and the boot should report as degraded.
	Reset []WALResetIssue `json:"reset,omitempty"`
}

// ReplayWAL replays every workload's surviving WAL records on top of
// the restored snapshot, recreating engines for workloads that have a
// log but no snapshot entry (acknowledged before the first snapshot
// tick ever covered them). Replay is idempotent against the snapshot
// (see ApplyWALRecord); per-workload corruption is repaired by
// truncation inside the wal package and only counted here. An apply
// failure — the one case where log and snapshot genuinely disagree —
// resets that workload's log, keeps its snapshot state, and is reported
// in the returned report rather than failing the boot; only filesystem
// errors are returned. Call after AttachWAL, before traffic.
func (r *Registry) ReplayWAL() (WALReplayReport, error) {
	var rep WALReplayReport
	mgr := r.walManager()
	if mgr == nil {
		return rep, nil
	}
	ids, reset, err := mgr.ScanWorkloads()
	if err != nil {
		return rep, fmt.Errorf("engine: scanning write-ahead logs: %w", err)
	}
	rep.UnidentifiedDirs = reset
	for _, id := range ids {
		e, err := r.GetOrCreate(id)
		if err != nil {
			return rep, fmt.Errorf("engine: wal replay for workload %q: %w", id, err)
		}
		st, rerr := e.replayWAL()
		rep.Workloads++
		rep.Records += st.Records
		rep.Events += st.Events
		if st.Truncated {
			rep.Truncations++
			log.Printf("engine: wal for %q truncated during replay at segment %d offset %d: %s",
				id, st.TruncatedSegment, st.TruncatedOffset, st.Reason)
		}
		if rerr != nil {
			log.Printf("engine: wal replay for %q failed; resetting the log, keeping snapshot state: %v", id, rerr)
			rep.Reset = append(rep.Reset, WALResetIssue{ID: id, Reason: rerr.Error()})
			if l := e.walLog(); l != nil {
				if err := l.Reset(); err != nil {
					return rep, fmt.Errorf("engine: resetting wal for workload %q: %w", id, err)
				}
			}
		}
	}
	return rep, nil
}

// RestoreFromTolerant is the boot-time restore: like RestoreFrom, but a
// workload whose snapshot file is unreadable (store-level corruption)
// or whose blob the engine rejects is quarantined — the file preserved
// under the store's quarantine directory, the manifest rewritten
// without it — instead of failing the whole boot. The returned list
// names the casualties so the process can report itself degraded; the
// error covers only infrastructure failures (the quarantine itself
// failing, an engine the template cannot create).
func (r *Registry) RestoreFromTolerant(st *store.Store) (int, []store.Quarantined, error) {
	workloads, quarantined, err := st.LoadTolerant()
	if err != nil {
		if errors.Is(err, store.ErrNoSnapshot) {
			return 0, nil, nil
		}
		return 0, nil, err
	}
	n := 0
	for _, w := range workloads {
		e, err := r.GetOrCreate(w.ID)
		if err != nil {
			return n, quarantined, fmt.Errorf("engine: restoring workload %q: %w", w.ID, err)
		}
		if rerr := e.RestoreState(w.State); rerr != nil {
			// The blob passed the store's checksum but the engine rejects
			// its contents: quarantine it exactly like an unreadable file.
			log.Printf("engine: quarantining workload %q: restored blob rejected: %v", w.ID, rerr)
			if qerr := st.Quarantine(w.ID, rerr.Error()); qerr != nil {
				return n, quarantined, fmt.Errorf("engine: quarantining workload %q: %v (blob rejected: %w)", w.ID, qerr, rerr)
			}
			quarantined = append(quarantined, store.Quarantined{ID: w.ID, Reason: rerr.Error()})
			// RestoreState validates before mutating, so the engine is the
			// fresh empty one GetOrCreate just made; don't serve it.
			r.Remove(w.ID)
			continue
		}
		if st.Has(w.ID) {
			r.snapMu.Lock()
			if r.saved[st.Dir()] == nil {
				r.saved[st.Dir()] = make(map[string]uint64)
			}
			r.saved[st.Dir()][w.ID] = e.StateGen()
			r.snapMu.Unlock()
		}
		n++
	}
	return n, quarantined, nil
}

// ReloadFrom replaces the registry's in-memory fleet with the snapshot
// currently committed in st — the runtime half of a point-in-time
// restore, called after store.RestoreGeneration rewires the manifest.
// In-flight requests holding old engines finish against them; new
// lookups see the restored fleet. Attached WALs are reset first: their
// records continue the abandoned timeline and must not replay over the
// restored one. Serialized against snapshots, so a background tick
// cannot commit a half-reloaded fleet.
func (r *Registry) ReloadFrom(st *store.Store) (int, error) {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	if mgr := r.walManager(); mgr != nil {
		if err := mgr.ResetAll(); err != nil {
			return 0, fmt.Errorf("engine: resetting write-ahead logs for reload: %w", err)
		}
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.engines = make(map[string]*Engine)
		s.mu.Unlock()
	}
	// All incremental-snapshot bookkeeping describes the dropped
	// engines; a recreated engine whose fresh StateGen coincided with a
	// stale entry would never be persisted.
	r.saved = make(map[string]map[string]uint64)
	workloads, err := st.Load()
	if err != nil {
		if errors.Is(err, store.ErrNoSnapshot) {
			return 0, nil
		}
		return 0, err
	}
	n := 0
	for _, w := range workloads {
		e, err := r.GetOrCreate(w.ID)
		if err != nil {
			return n, fmt.Errorf("engine: reloading workload %q: %w", w.ID, err)
		}
		if err := e.RestoreState(w.State); err != nil {
			return n, fmt.Errorf("engine: reloading workload %q: %w", w.ID, err)
		}
		if st.Has(w.ID) {
			if r.saved[st.Dir()] == nil {
				r.saved[st.Dir()] = make(map[string]uint64)
			}
			r.saved[st.Dir()][w.ID] = e.StateGen()
		}
		n++
	}
	return n, nil
}
