package engine

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"robustscaler/internal/store"
)

func TestEngineConfigDefaultsAndVersioning(t *testing.T) {
	e, err := New(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	ec := e.EngineConfig()
	if ec.Version != 1 {
		t.Fatalf("fresh engine config version = %d, want 1", ec.Version)
	}
	if ec.Dt != 60 || ec.Pending != 13 || ec.HPTarget != 0.9 || ec.PlanHorizon != 600 {
		t.Fatalf("template-derived config = %+v", ec)
	}
	ec.Pending = 30
	applied, err := e.SetEngineConfig(ec)
	if err != nil {
		t.Fatal(err)
	}
	if applied.Version != 2 || applied.Pending != 30 {
		t.Fatalf("applied = %+v, want version 2 pending 30", applied)
	}
	if got := e.EngineConfig(); !reflect.DeepEqual(got, applied) {
		t.Fatalf("EngineConfig() = %+v, want %+v", got, applied)
	}
	// Config() mirrors the live values in the constructor shape.
	if cfg := e.Config(); cfg.Pending != 30 {
		t.Fatalf("Config().Pending = %g after update, want 30", cfg.Pending)
	}
	// Status surfaces the version for operators.
	if st := e.Status(); st.ConfigVersion != 2 {
		t.Fatalf("status config_version = %d, want 2", st.ConfigVersion)
	}
}

func TestSetEngineConfigRejectsStaleVersion(t *testing.T) {
	e, err := New(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	ec := e.EngineConfig()
	if _, err := e.SetEngineConfig(ec); err != nil { // v1 → v2
		t.Fatal(err)
	}
	// A second update carrying the stale version must be refused, and
	// the current config returned for a re-read.
	ec.Pending = 99
	cur, err := e.SetEngineConfig(ec)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("stale update err = %v, want ErrConflict", err)
	}
	if cur.Version != 2 || cur.Pending == 99 {
		t.Fatalf("conflict returned %+v, want the live config", cur)
	}
}

func TestSetEngineConfigValidates(t *testing.T) {
	e, err := New(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	base := e.EngineConfig()
	cases := []struct {
		name string
		mut  func(*EngineConfig)
	}{
		{"zero dt", func(c *EngineConfig) { c.Dt = 0 }},
		{"negative pending", func(c *EngineConfig) { c.Pending = -1 }},
		{"hp target 1", func(c *EngineConfig) { c.HPTarget = 1 }},
		{"hp target 0", func(c *EngineConfig) { c.HPTarget = 0 }},
		{"zero rt target", func(c *EngineConfig) { c.RTTarget = 0 }},
		{"zero mc samples", func(c *EngineConfig) { c.MCSamples = 0 }},
		{"mc samples DoS", func(c *EngineConfig) { c.MCSamples = 10_000_000 }},
		{"negative retrain cadence", func(c *EngineConfig) { c.RetrainEvery = -5 }},
		{"huge horizon", func(c *EngineConfig) { c.PlanHorizon = 1e18 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ec := base
			tc.mut(&ec)
			if _, err := e.SetEngineConfig(ec); !errors.Is(err, ErrInvalid) {
				t.Fatalf("err = %v, want ErrInvalid", err)
			}
			if got := e.EngineConfig(); !reflect.DeepEqual(got, base) {
				t.Fatalf("rejected update mutated the config: %+v", got)
			}
		})
	}
}

// TestConfigChangeInvalidatesPlanCache pins the satellite contract: a
// config update drops every cached plan/forecast, and the recomputed
// plan reflects the new parameters.
func TestConfigChangeInvalidatesPlanCache(t *testing.T) {
	const now = 4 * 3600.0
	e := trainedEngine(t, now)
	req := planReq("hp", now)
	p1, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if p2, _ := e.Plan(req); p2 != p1 {
		t.Fatal("warm-up: identical re-request missed the cache")
	}
	f1, err := e.Forecast(now, now+3600, 60)
	if err != nil {
		t.Fatal(err)
	}

	ec := e.EngineConfig()
	ec.Pending = ec.Pending + 60 // plans lead creations by τ: must shift
	if _, err := e.SetEngineConfig(ec); err != nil {
		t.Fatal(err)
	}
	p3, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("plan cache survived a config update")
	}
	if reflect.DeepEqual(p1.Plan, p3.Plan) {
		t.Fatal("plan unchanged by a pending-time change: stale parameters used")
	}
	f2, err := e.Forecast(now, now+3600, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Forecast values don't depend on Pending, but the cached slice must
	// have been recomputed (fresh backing array), not served stale.
	if &f1[0] == &f2[0] {
		t.Fatal("forecast cache survived a config update")
	}
}

func TestConfigDtChangeMarksModelStale(t *testing.T) {
	const now = 4 * 3600.0
	e := trainedEngine(t, now)
	if ran, err := e.Retrain(); err != nil || ran {
		t.Fatalf("fresh model retrained: (%v, %v)", ran, err)
	}
	ec := e.EngineConfig()
	ec.Dt = 30
	if _, err := e.SetEngineConfig(ec); err != nil {
		t.Fatal(err)
	}
	// The model was fit on 60s bins; the next sweep must refit on 30s.
	ran, err := e.Retrain()
	if err != nil || !ran {
		t.Fatalf("Retrain after Dt change = (%v, %v), want (true, nil)", ran, err)
	}
}

func TestConfigHistoryWindowShrinkTrims(t *testing.T) {
	e, err := New(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]float64{0, 1000, 2000, 3000, 4000}); err != nil {
		t.Fatal(err)
	}
	ec := e.EngineConfig()
	ec.HistoryWindow = 1500
	if _, err := e.SetEngineConfig(ec); err != nil {
		t.Fatal(err)
	}
	if got := e.Status().Arrivals; got != 2 {
		t.Fatalf("arrivals after window shrink = %d, want 2 (3000, 4000)", got)
	}
}

func TestRetrainCadenceGatesBackgroundRefits(t *testing.T) {
	now := 4 * 3600.0
	cfg := testConfig(0)
	cfg.Now = func() float64 { return now }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(trafficArrivals(7, now)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	ec := e.EngineConfig()
	ec.RetrainEvery = 600
	if _, err := e.SetEngineConfig(ec); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]float64{now + 1, now + 2}); err != nil {
		t.Fatal(err)
	}
	// Stale, but the model is younger than the cadence: skipped.
	if ran, err := e.Retrain(); err != nil || ran {
		t.Fatalf("Retrain within cadence = (%v, %v), want skip", ran, err)
	}
	// Advance the clock past the cadence: the sweep refits.
	now += 601
	if ran, err := e.Retrain(); err != nil || !ran {
		t.Fatalf("Retrain past cadence = (%v, %v), want (true, nil)", ran, err)
	}
	// An explicit Train is never gated.
	if _, err := e.Ingest([]float64{now + 1, now + 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigSurvivesMarshalRestore(t *testing.T) {
	const now = 4 * 3600.0
	src := trainedEngine(t, now)
	ec := src.EngineConfig()
	ec.HPTarget = 0.75
	ec.RetrainEvery = 1234
	if _, err := src.SetEngineConfig(ec); err != nil {
		t.Fatal(err)
	}
	want := src.EngineConfig() // version 2
	blob, err := src.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	dst, err := New(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if got := dst.EngineConfig(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored config = %+v, want %+v", got, want)
	}
}

// TestIncrementalSnapshotRewritesOnlyDirty is the acceptance check for
// dirty-generation snapshots: a tick with one changed workload out of N
// rewrites exactly that workload's file plus the manifest, everything
// else is carried by reference.
func TestIncrementalSnapshotRewritesOnlyDirty(t *testing.T) {
	const now = 4 * 3600.0
	dir := t.TempDir()
	reg, err := NewRegistry(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"a", "b", "c"}
	for i, id := range ids {
		e, err := reg.GetOrCreate(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Ingest(trafficArrivals(int64(i+1), now)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := reg.SnapshotTo(st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != 3 || stats.Kept != 0 {
		t.Fatalf("first tick stats = %+v, want 3 written", stats)
	}
	files := func() map[string]bool {
		entries, err := os.ReadDir(filepath.Join(dir, store.WorkloadDir))
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, en := range entries {
			out[en.Name()] = true
		}
		return out
	}
	before := files()

	// Idle tick: nothing marshaled, nothing rewritten.
	stats, err = reg.SnapshotTo(st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != 0 || stats.Kept != 3 {
		t.Fatalf("idle tick stats = %+v, want 0 written / 3 kept", stats)
	}
	if got := files(); !reflect.DeepEqual(got, before) {
		t.Fatalf("idle tick touched files: %v -> %v", before, got)
	}

	// Dirty exactly one workload; the tick rewrites exactly one file.
	e, _ := reg.Get("b")
	if _, err := e.Ingest([]float64{now + 5}); err != nil {
		t.Fatal(err)
	}
	stats, err = reg.SnapshotTo(st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != 1 || stats.Kept != 2 || stats.Removed != 1 {
		t.Fatalf("dirty tick stats = %+v, want 1 written / 2 kept / 1 removed", stats)
	}
	after := files()
	carried := 0
	for name := range after {
		if before[name] {
			carried++
		}
	}
	if len(after) != 3 || carried != 2 {
		t.Fatalf("dirty tick rewrote %d files, want exactly 1 (before %v after %v)",
			len(after)-carried, before, after)
	}

	// A config update also dirties its workload.
	ec := e.EngineConfig()
	ec.Pending = 42
	if _, err := e.SetEngineConfig(ec); err != nil {
		t.Fatal(err)
	}
	stats, err = reg.SnapshotTo(st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != 1 || stats.Kept != 2 {
		t.Fatalf("config-dirty tick stats = %+v, want 1 written / 2 kept", stats)
	}

	// The incremental snapshot restores completely.
	dst, err := NewRegistry(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := dst.RestoreFrom(st2); err != nil || n != 3 {
		t.Fatalf("RestoreFrom = (%d, %v), want (3, nil)", n, err)
	}
	db, _ := dst.Get("b")
	if got := db.EngineConfig().Pending; got != 42 {
		t.Fatalf("restored b pending = %g, want 42", got)
	}
	// And a restored-but-unchanged fleet snapshots as a no-op.
	if stats, err := dst.SnapshotTo(st2); err != nil || stats.Written != 0 {
		t.Fatalf("post-restore tick stats = %+v (%v), want 0 written", stats, err)
	}
}

// TestRemoveClearsSnapshotBookkeeping pins a subtle dirty-tracking
// hazard: removing a workload must forget its saved generation, or a
// recreated workload whose fresh StateGen happens to coincide with the
// stale one would be "carried unchanged" and its new data never
// persisted.
func TestRemoveClearsSnapshotBookkeeping(t *testing.T) {
	dir := t.TempDir()
	reg, err := NewRegistry(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.GetOrCreate("w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]float64{1, 2, 3}); err != nil { // stateGen 1
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SnapshotTo(st); err != nil {
		t.Fatal(err)
	}
	if !reg.Remove("w") {
		t.Fatal("remove failed")
	}
	// Recreate with different data; one ingest lands the fresh engine on
	// the same state generation the old saved entry recorded.
	e2, err := reg.GetOrCreate("w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Ingest([]float64{10, 20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	stats, err := reg.SnapshotTo(st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != 1 {
		t.Fatalf("recreated workload carried as unchanged (stats %+v); its data was never persisted", stats)
	}
	dst, err := NewRegistry(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Restore(dir); err != nil {
		t.Fatal(err)
	}
	dw, _ := dst.Get("w")
	if got := dw.Status().Arrivals; got != 4 {
		t.Fatalf("restored arrivals = %d, want the recreated workload's 4", got)
	}
}

// TestSnapshotBookkeepingIsPerDir pins another dirty-tracking hazard:
// a backup snapshot into a second directory must not convince the
// primary directory's next tick that its older files are current.
func TestSnapshotBookkeepingIsPerDir(t *testing.T) {
	reg, err := NewRegistry(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.GetOrCreate("w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	primary, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SnapshotTo(primary); err != nil {
		t.Fatal(err)
	}
	// New data lands, then an operator takes a backup into another dir.
	if _, err := e.Ingest([]float64{4, 5}); err != nil {
		t.Fatal(err)
	}
	backup, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if stats, err := reg.SnapshotTo(backup); err != nil || stats.Written != 1 {
		t.Fatalf("backup snapshot = %+v (%v), want 1 written", stats, err)
	}
	// The primary tick must still see the workload as dirty: its dir
	// holds the pre-backup state.
	stats, err := reg.SnapshotTo(primary)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != 1 {
		t.Fatalf("primary tick after backup = %+v, want 1 written (stale file kept instead)", stats)
	}
	dst, err := NewRegistry(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.RestoreFrom(primary); err != nil {
		t.Fatal(err)
	}
	dw, _ := dst.Get("w")
	if got := dw.Status().Arrivals; got != 5 {
		t.Fatalf("primary restore has %d arrivals, want 5", got)
	}
}

// TestV1MonolithicMigrationPreservesPlans is the acceptance check for
// read-side migration: a fleet persisted in the legacy v1 monolithic
// format restores through the v2 store with byte-identical plan and
// forecast output, both straight off the legacy file and again after
// the migration commit rewrites it as the per-workload layout.
func TestV1MonolithicMigrationPreservesPlans(t *testing.T) {
	const now = 4 * 3600.0
	dir := t.TempDir()
	src, err := NewRegistry(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"registry-eu", "ci-runners"}
	type golden struct{ hp, rt, fc string }
	want := map[string]golden{}
	var v1 []store.Workload
	for i, id := range ids {
		e, err := src.GetOrCreate(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Ingest(trafficArrivals(int64(i+1), now)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Train(); err != nil {
			t.Fatal(err)
		}
		want[id] = golden{
			hp: mustJSONString(t, planOf(t, e, "hp", now)),
			rt: mustJSONString(t, planOf(t, e, "rt", now)),
			fc: mustJSONString(t, mustForecast(t, e, now)),
		}
		// A true pre-config-plane blob has no "config" object: strip it,
		// so the legacy restore path is what's under test.
		blob, err := e.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(blob, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "config")
		legacy, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		v1 = append(v1, store.Workload{ID: id, State: legacy})
	}
	if err := store.SaveV1(dir, v1); err != nil {
		t.Fatal(err)
	}

	check := func(stage string, r *Registry) {
		t.Helper()
		for _, id := range ids {
			e, ok := r.Get(id)
			if !ok {
				t.Fatalf("%s: workload %s missing", stage, id)
			}
			if got := mustJSONString(t, planOf(t, e, "hp", now)); got != want[id].hp {
				t.Fatalf("%s: %s hp plan drifted across migration:\ngot  %s\nwant %s", stage, id, got, want[id].hp)
			}
			if got := mustJSONString(t, planOf(t, e, "rt", now)); got != want[id].rt {
				t.Fatalf("%s: %s rt plan drifted across migration", stage, id)
			}
			if got := mustJSONString(t, mustForecast(t, e, now)); got != want[id].fc {
				t.Fatalf("%s: %s forecast drifted across migration", stage, id)
			}
		}
	}

	// Restore straight off the legacy monolithic file.
	mid, err := NewRegistry(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := mid.RestoreFrom(st); err != nil || n != len(ids) {
		t.Fatalf("legacy RestoreFrom = (%d, %v), want (%d, nil)", n, err, len(ids))
	}
	check("legacy restore", mid)

	// One snapshot tick migrates the layout (and must rewrite all of it:
	// the legacy file never counts as covering a workload).
	stats, err := mid.SnapshotTo(st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != len(ids) {
		t.Fatalf("migration tick wrote %d, want %d", stats.Written, len(ids))
	}
	if _, err := os.Stat(filepath.Join(dir, store.SnapshotFile)); !os.IsNotExist(err) {
		t.Fatal("legacy monolithic snapshot survived migration")
	}

	// Restore from the migrated per-workload layout: same bytes out.
	dst, err := NewRegistry(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := dst.Restore(dir); err != nil || n != len(ids) {
		t.Fatalf("post-migration Restore = (%d, %v), want (%d, nil)", n, err, len(ids))
	}
	check("post-migration restore", dst)
}

func mustJSONString(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func mustForecast(t *testing.T, e *Engine, now float64) []ForecastPoint {
	t.Helper()
	pts, err := e.Forecast(now, now+3600, 60)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}
