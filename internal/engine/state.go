package engine

// This file is the durability layer of the engine: what survives a
// process restart, and how. Engine.MarshalState / Engine.RestoreState
// define the per-workload state blob (arrival history, fitted model,
// and the versioned per-workload EngineConfig); Registry.SnapshotTo /
// RestoreFrom move every workload through internal/store's per-workload
// manifest layout; the Snapshotter mirrors the Retrainer's
// background-loop pattern to keep snapshots fresh without operator
// action.
//
// Snapshots are incremental: every engine carries a durable-state
// generation (stateGen, bumped by ingest/train/restore/config updates)
// and the registry remembers the generation it last persisted per
// workload, so a snapshot tick marshals and rewrites only workloads
// that changed — a large idle fleet costs one manifest write, not a
// fleet-wide serialization.
//
// JSON encoding and disk I/O run outside the engine mutex; the lock is
// held only for a defensive copy of the arrival history (required —
// ingest appends into the shared backing array), so the stall a
// snapshot can impose on ingest or planning is one memcpy, never an
// encode or a write.

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"robustscaler"
	"robustscaler/internal/nhpp"
	"robustscaler/internal/store"
)

// engineState is the persisted form of one Engine: the per-workload
// configuration, the retained arrival history and the fitted model. The
// Train sub-config and the clock are deliberately not persisted — they
// describe how future fits run, not what was learned, so the restoring
// process's (possibly newer) settings apply.
//
// The scalar fields (Dt..Seed) are the v1 blob schema; v2 blobs carry
// the full versioned config under "config" and keep writing the scalars
// so a pre-config-plane build can still restore the snapshot after a
// rollback. RestoreState reads either shape.
type engineState struct {
	Dt            float64 `json:"dt"`
	Pending       float64 `json:"pending"`
	HistoryWindow float64 `json:"history_window"`
	MCSamples     int     `json:"mc_samples"`
	Seed          int64   `json:"seed"`
	// Config is the versioned per-workload configuration (v2 blobs);
	// nil in blobs written before the config plane existed.
	Config   *EngineConfig `json:"config,omitempty"`
	Arrivals []float64     `json:"arrivals"`
	TrainedN int           `json:"trained_n"`
	// Stale records whether arrivals had landed after the model's fit at
	// snapshot time, so a restart cannot launder an outdated model into a
	// fresh-looking one: the restored engine re-enters the background
	// retrainer's queue exactly when the pre-crash engine would have.
	Stale bool `json:"stale,omitempty"`
	// Failed records that the last fit over the current arrivals failed,
	// so a restart doesn't re-run a known-failing (potentially expensive)
	// fit on every boot — the retrainer keeps skipping the workload until
	// new arrivals land, same as pre-crash.
	Failed bool        `json:"failed,omitempty"`
	Model  *modelState `json:"model,omitempty"`
	// WALSeq is the last write-ahead-log batch sequence this blob's
	// arrival history covers; boot-time replay skips records at or below
	// it and re-applies the rest. 0 in blobs written without a WAL.
	WALSeq uint64 `json:"wal_seq,omitempty"`
}

// modelState is the persisted form of a fitted model. Only the fit's
// inputs-of-record are stored (start, bin width, log-intensity vector,
// period); the derived lookup tables are rebuilt deterministically by
// nhpp.NewModel on restore, which is what makes the round trip
// bit-for-bit: same inputs, same construction, same outputs.
type modelState struct {
	Start         float64       `json:"start"`
	Dt            float64       `json:"dt"`
	LogIntensity  []float64     `json:"log_intensity"`
	PeriodBins    int           `json:"period_bins"`
	PeriodSeconds float64       `json:"period_seconds"`
	FitStats      nhpp.FitStats `json:"fit_stats"`
}

// marshalState serializes the engine's durable state and reports the
// state generation the blob captures, so the snapshotter can record
// exactly what it persisted even if the engine moves on mid-write. The
// engine lock is held only to copy the state out (an O(history) memcpy
// — the backing array is shared with ingest); JSON encoding happens
// unlocked.
func (e *Engine) marshalState() ([]byte, uint64, uint64, error) {
	e.mu.Lock()
	arr := append([]float64(nil), e.arrivals...)
	model := e.model
	trainedN := e.trainedN
	stale := e.gen != e.trainedGen
	failed := e.gen > 0 && e.gen == e.failedGen
	ec := e.ec
	seed := e.cfg.Seed
	gen := e.stateGen
	walSeq := e.walSeq
	e.mu.Unlock()

	st := engineState{
		Dt:            ec.Dt,
		Pending:       ec.Pending,
		HistoryWindow: ec.HistoryWindow,
		MCSamples:     ec.MCSamples,
		Seed:          seed,
		Config:        &ec,
		Arrivals:      arr,
		TrainedN:      trainedN,
		Stale:         stale,
		Failed:        failed,
		WALSeq:        walSeq,
	}
	if model != nil {
		st.Model = &modelState{
			Start:         model.NHPP.Start,
			Dt:            model.NHPP.Dt,
			LogIntensity:  model.NHPP.R,
			PeriodBins:    model.NHPP.Period,
			PeriodSeconds: model.PeriodSeconds,
			FitStats:      model.FitStats,
		}
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("engine: marshaling state: %w", err)
	}
	return blob, gen, walSeq, nil
}

// MarshalState serializes the engine's durable state (per-workload
// config, arrival history, fitted model, staleness) to a JSON blob for
// Engine.RestoreState.
func (e *Engine) MarshalState() ([]byte, error) {
	blob, _, _, err := e.marshalState()
	return blob, err
}

// logIntensityBound rejects restored log intensities outside the fit's
// own clamp (±40, see nhpp): anything beyond it cannot have come from a
// real fit and would overflow exp() into Inf rates.
const logIntensityBound = 40.0

// RestoreState replaces the engine's state with a blob produced by
// MarshalState: per-workload config, arrival history, fitted model, and
// the Monte Carlo RNG re-seeded from the persisted seed. The Train
// sub-config and clock keep their current (constructor-supplied)
// values. Every field is validated before anything is mutated, so a
// corrupt blob leaves the engine untouched and returns an error wrapping
// ErrInvalid rather than panicking.
//
// Blobs written before the config plane existed carry only the scalar
// config fields; the missing knobs (plan targets, horizon, retrain
// cadence) take the booting process's template values and the restored
// config starts at version 1.
//
// RestoreState must run before the engine serves traffic: the boot
// sequence in cmd/scalerd guarantees this. At boot, plans resume
// bit-for-bit from the snapshot, except that rt/cost Monte Carlo
// streams restart from the seed (mid-stream RNG position is not
// persisted).
func (e *Engine) RestoreState(blob []byte) error {
	var st engineState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("%w: decoding engine state: %v", ErrInvalid, err)
	}
	var ec EngineConfig
	if st.Config != nil {
		ec = *st.Config
		if ec.Version == 0 {
			ec.Version = 1
		}
		if err := ec.validate(); err != nil {
			return fmt.Errorf("restored config: %w", err)
		}
	} else {
		// Legacy (pre-config-plane) blob: scalars from the blob, the rest
		// from this engine's template, with the legacy normalizations
		// (e.g. mc_samples 0 → 1000) the v1 reader applied.
		ec = e.EngineConfig()
		ec.Version = 1
		ec.Dt = st.Dt
		ec.Pending = st.Pending
		ec.HistoryWindow = st.HistoryWindow
		ec.MCSamples = st.MCSamples
		if ec.MCSamples <= 0 {
			ec.MCSamples = 1000
		}
		if err := ec.validate(); err != nil {
			return fmt.Errorf("restored config: %w", err)
		}
	}
	if err := ValidateTimestamps(st.Arrivals); err != nil {
		return fmt.Errorf("restored arrivals: %w", err)
	}
	if !sort.Float64sAreSorted(st.Arrivals) {
		return fmt.Errorf("%w: restored arrivals are not sorted", ErrInvalid)
	}
	if st.TrainedN < 0 {
		return fmt.Errorf("%w: negative trained_n %d", ErrInvalid, st.TrainedN)
	}
	var model *robustscaler.Model
	if ms := st.Model; ms != nil {
		if ms.Dt <= 0 {
			return fmt.Errorf("%w: restored model has non-positive dt %g", ErrInvalid, ms.Dt)
		}
		if len(ms.LogIntensity) == 0 {
			return fmt.Errorf("%w: restored model has empty log-intensity", ErrInvalid)
		}
		for i, v := range ms.LogIntensity {
			if v < -logIntensityBound || v > logIntensityBound {
				return fmt.Errorf("%w: restored log-intensity %g at bin %d outside ±%g", ErrInvalid, v, i, logIntensityBound)
			}
		}
		if ms.PeriodBins < 0 || ms.PeriodBins >= len(ms.LogIntensity) {
			return fmt.Errorf("%w: restored period %d bins outside [0, %d)", ErrInvalid, ms.PeriodBins, len(ms.LogIntensity))
		}
		model = &robustscaler.Model{
			NHPP:          nhpp.NewModel(ms.Start, ms.Dt, ms.LogIntensity, ms.PeriodBins),
			PeriodBins:    ms.PeriodBins,
			PeriodSeconds: ms.PeriodSeconds,
			FitStats:      ms.FitStats,
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	e.ec = ec
	e.cfg.Seed = st.Seed
	e.rng = rand.New(rand.NewSource(st.Seed))
	e.arrivals = st.Arrivals
	e.model = model
	e.trainedN = st.TrainedN
	e.failedGen = 0
	e.stateGen++
	e.lastTrainAt = 0
	e.walSeq = st.WALSeq
	// The restored config may carry a per-workload fsync override.
	e.applyWALPolicyLocked()
	// Drop any cached plans/forecasts: they were computed for the
	// pre-restore model and generation. (The binding check would miss
	// them anyway — the model pointer is fresh — but holding onto dead
	// entries across a restore would be a leak.)
	e.cacheGen, e.cacheModel, e.cacheCfgVer = 0, nil, 0
	e.planCache, e.fcCache = nil, nil
	switch {
	case model != nil && !st.Stale:
		// The restored model covers the restored arrivals: not stale, the
		// background retrainer leaves it alone until new traffic lands.
		e.gen, e.trainedGen = 1, 1
	case model != nil:
		// Arrivals had landed after the fit when the snapshot was taken:
		// keep serving the restored model but let the next retrain sweep
		// refresh it, exactly as it would have pre-restart.
		e.gen, e.trainedGen = 1, 0
	case len(st.Arrivals) >= 2:
		// Arrivals without a model (snapshot taken before first fit): mark
		// stale so the next retrain sweep fits one.
		e.gen, e.trainedGen = 1, 0
	default:
		e.gen, e.trainedGen = 0, 0
	}
	if st.Failed {
		e.failedGen = e.gen
	}
	// Re-stamp staleness from the boot clock: the pre-crash stamp is not
	// persisted, and a stale model should age (toward the alert
	// threshold) from now, not look fresh forever.
	e.staleSince = 0
	e.markStaleLocked()
	return nil
}

// SnapshotTo persists the registry into st incrementally: workloads
// whose durable state moved since the generation last committed for
// them (or that the store has never committed) are marshaled and
// rewritten; everything else is carried by ID, costing no serialization
// and no I/O. Workloads are ordered by ID so identical registry state
// produces an identical manifest. A workload that fails to serialize
// aborts the snapshot with an error naming it; the previous on-disk
// snapshot is left intact.
//
// Concurrent SnapshotTo calls are serialized so that what lands on disk
// last was also collected last — a registry change (e.g. a delete)
// followed by a snapshot is durable even while a slower snapshot of the
// pre-change registry is still in flight.
func (r *Registry) SnapshotTo(st *store.Store) (store.CommitStats, error) {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	return r.snapshotLocked(st)
}

// snapshotLocked runs one snapshot and records its outcome (duration,
// success/failure) into the registry's snapshot-health trail, which
// /healthz and the /metrics snapshot series read.
func (r *Registry) snapshotLocked(st *store.Store) (store.CommitStats, error) {
	start := time.Now()
	stats, err := r.collectAndCommitLocked(st)
	r.recordSnapshot(time.Since(start), err)
	return stats, err
}

func (r *Registry) collectAndCommitLocked(st *store.Store) (store.CommitStats, error) {
	type entry struct {
		id string
		e  *Engine
	}
	var entries []entry
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for id, e := range s.engines {
			entries = append(entries, entry{id, e})
		}
		s.mu.RUnlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })

	var changed []store.Workload
	var keep []string
	prev := r.saved[st.Dir()]
	newGens := make(map[string]uint64, len(entries))
	// walSeqs pairs each engine with the WAL sequence the blob being
	// committed covers, so a successful commit can checkpoint the logs.
	// The pairing must be read atomically with the staleness verdict:
	// for a "kept" workload the current walSeq equals the persisted one
	// only while stateGen still matches (walSeq never moves without a
	// stateGen bump); a changed workload's walSeq is captured inside
	// marshalState, under the same lock hold as the history copy.
	type walMark struct {
		e   *Engine
		seq uint64
	}
	var walSeqs []walMark
	for _, en := range entries {
		sg, wseq := en.e.stateGenAndWALSeq()
		if g, ok := prev[en.id]; ok && st.Has(en.id) && g == sg {
			keep = append(keep, en.id)
			newGens[en.id] = g
			walSeqs = append(walSeqs, walMark{en.e, wseq})
			continue
		}
		blob, gen, wseq, err := en.e.marshalState()
		if err != nil {
			return store.CommitStats{}, fmt.Errorf("engine: snapshotting workload %q: %w", en.id, err)
		}
		changed = append(changed, store.Workload{ID: en.id, State: blob})
		newGens[en.id] = gen
		walSeqs = append(walSeqs, walMark{en.e, wseq})
	}
	stats, err := st.Commit(changed, keep)
	if err != nil {
		return stats, err
	}
	// The snapshot now covers every batch up to each captured walSeq:
	// checkpoint the logs. Only for the store the WAL is paired with —
	// truncating against a backup snapshot in another directory would
	// let the primary boot lose batches its own snapshot never saw.
	r.instMu.Lock()
	checkpoint := r.walMgr != nil && st.Dir() == r.walDir
	r.instMu.Unlock()
	if checkpoint {
		for _, wm := range walSeqs {
			wm.e.truncateWAL(wm.seq)
		}
	}
	// Record bookkeeping only for engines still registered under their
	// ID: a workload removed — or removed and recreated — while this
	// snapshot was collecting must not inherit the old engine's saved
	// generation, or a recreated engine whose fresh StateGen coincides
	// with it would be "kept" as the stale file forever.
	validated := make(map[string]uint64, len(newGens))
	for _, en := range entries {
		if cur, ok := r.Get(en.id); ok && cur == en.e {
			validated[en.id] = newGens[en.id]
		}
	}
	r.saved[st.Dir()] = validated
	return stats, nil
}

// Snapshot persists every registered workload into dir and returns how
// many workloads the resulting snapshot covers. It opens the store
// fresh each call; long-lived callers (the Snapshotter, the HTTP admin
// endpoint) hold one open Store and use SnapshotTo instead. The open
// happens under the same serialization as the commits: store.Open
// sweeps unmanifested files as crash debris, so it must never run
// while another snapshot of this registry is mid-commit in the same
// directory.
func (r *Registry) Snapshot(dir string) (int, error) {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	st, err := store.Open(dir)
	if err != nil {
		return 0, err
	}
	stats, err := r.snapshotLocked(st)
	return stats.Total, err
}

// RestoreFrom loads the snapshot committed in st, recreating every
// persisted workload and its state, and returns how many were restored.
// A store with no snapshot is the clean cold-boot case and returns
// (0, nil); a snapshot that exists but fails validation (store-level
// corruption or an invalid per-workload blob) returns an error naming
// the failure, with the registry left holding whatever restored before
// it. RestoreFrom is meant for boot, before the registry serves
// traffic; it also primes the incremental-snapshot bookkeeping, so the
// first tick after a v2 restore rewrites nothing.
func (r *Registry) RestoreFrom(st *store.Store) (int, error) {
	workloads, err := st.Load()
	if err != nil {
		if errors.Is(err, store.ErrNoSnapshot) {
			return 0, nil
		}
		return 0, err
	}
	n := 0
	for _, w := range workloads {
		e, err := r.GetOrCreate(w.ID)
		if err != nil {
			return n, fmt.Errorf("engine: restoring workload %q: %w", w.ID, err)
		}
		if err := e.RestoreState(w.State); err != nil {
			return n, fmt.Errorf("engine: restoring workload %q: %w", w.ID, err)
		}
		if st.Has(w.ID) {
			// The engine now mirrors the committed file exactly; record the
			// generation so an idle workload isn't rewritten on the next
			// tick. (Legacy v1 snapshots report Has=false, which is what
			// forces the migration commit to write everything once.)
			r.snapMu.Lock()
			if r.saved[st.Dir()] == nil {
				r.saved[st.Dir()] = make(map[string]uint64)
			}
			r.saved[st.Dir()][w.ID] = e.StateGen()
			r.snapMu.Unlock()
		}
		n++
	}
	return n, nil
}

// Restore loads the snapshot in dir via a freshly opened store; see
// RestoreFrom. The open is serialized against this registry's
// snapshots, for the same sweep-vs-commit reason as Snapshot.
func (r *Registry) Restore(dir string) (int, error) {
	r.snapMu.Lock()
	st, err := store.Open(dir)
	r.snapMu.Unlock()
	if err != nil {
		return 0, err
	}
	return r.RestoreFrom(st)
}

// Snapshotter periodically persists the whole registry, the durability
// counterpart of the Retrainer: same background-loop shape, same
// stop-once semantics.
type Snapshotter struct {
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	// finalErr records the outcome of the final snapshot taken on Stop;
	// written before done closes, read only after it.
	finalErr error
}

// StartSnapshotter launches the background snapshot loop: every
// `every`, the registry is committed incrementally into st
// (Registry.SnapshotTo), so a tick over an idle fleet writes one
// manifest and nothing else. Errors are logged and the previous on-disk
// snapshot survives; the loop keeps trying on the next tick. Stop takes
// one final snapshot so a graceful shutdown persists the latest state.
func (r *Registry) StartSnapshotter(st *store.Store, every time.Duration) *Snapshotter {
	if every <= 0 {
		panic(fmt.Sprintf("engine: non-positive snapshot period %v", every))
	}
	sn := &Snapshotter{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(sn.done)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-sn.stop:
				if _, err := r.SnapshotTo(st); err != nil {
					log.Printf("engine: final snapshot on stop failed: %v", err)
					sn.finalErr = err
				}
				return
			case <-ticker.C:
				if _, err := r.SnapshotTo(st); err != nil {
					log.Printf("engine: background snapshot failed (previous snapshot kept): %v", err)
				}
			}
		}
	}()
	return sn
}

// Stop halts the snapshot loop, takes a final snapshot, waits for the
// loop to exit, and reports the final snapshot's outcome — so a
// graceful shutdown can tell the operator whether the latest state
// actually reached disk. Safe to call more than once (later calls
// return the same outcome).
func (sn *Snapshotter) Stop() error {
	sn.stopOnce.Do(func() { close(sn.stop) })
	<-sn.done
	return sn.finalErr
}
