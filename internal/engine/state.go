package engine

// This file is the durability layer of the engine: what survives a
// process restart, and how. Engine.MarshalState / Engine.RestoreState
// define the per-workload state blob; Registry.Snapshot / Restore move
// every workload through internal/store's atomic on-disk format; the
// Snapshotter mirrors the Retrainer's background-loop pattern to keep
// snapshots fresh without operator action. JSON encoding and disk I/O
// run outside the engine mutex; the lock is held only for a defensive
// copy of the arrival history (required — ingest appends into the
// shared backing array), so the stall a snapshot can impose on ingest
// or planning is one memcpy, never an encode or a write.

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"robustscaler"
	"robustscaler/internal/nhpp"
	"robustscaler/internal/store"
)

// engineState is the persisted form of one Engine: the scalar workload
// configuration, the retained arrival history and the fitted model. The
// Train sub-config and the clock are deliberately not persisted — they
// describe how future fits run, not what was learned, so the restoring
// process's (possibly newer) settings apply.
type engineState struct {
	Dt            float64   `json:"dt"`
	Pending       float64   `json:"pending"`
	HistoryWindow float64   `json:"history_window"`
	MCSamples     int       `json:"mc_samples"`
	Seed          int64     `json:"seed"`
	Arrivals      []float64 `json:"arrivals"`
	TrainedN      int       `json:"trained_n"`
	// Stale records whether arrivals had landed after the model's fit at
	// snapshot time, so a restart cannot launder an outdated model into a
	// fresh-looking one: the restored engine re-enters the background
	// retrainer's queue exactly when the pre-crash engine would have.
	Stale bool `json:"stale,omitempty"`
	// Failed records that the last fit over the current arrivals failed,
	// so a restart doesn't re-run a known-failing (potentially expensive)
	// fit on every boot — the retrainer keeps skipping the workload until
	// new arrivals land, same as pre-crash.
	Failed bool        `json:"failed,omitempty"`
	Model  *modelState `json:"model,omitempty"`
}

// modelState is the persisted form of a fitted model. Only the fit's
// inputs-of-record are stored (start, bin width, log-intensity vector,
// period); the derived lookup tables are rebuilt deterministically by
// nhpp.NewModel on restore, which is what makes the round trip
// bit-for-bit: same inputs, same construction, same outputs.
type modelState struct {
	Start         float64       `json:"start"`
	Dt            float64       `json:"dt"`
	LogIntensity  []float64     `json:"log_intensity"`
	PeriodBins    int           `json:"period_bins"`
	PeriodSeconds float64       `json:"period_seconds"`
	FitStats      nhpp.FitStats `json:"fit_stats"`
}

// MarshalState serializes the engine's durable state (config scalars,
// arrival history, fitted model, staleness) to a JSON blob for
// Engine.RestoreState. The engine lock is held only to copy the state
// out (an O(history) memcpy — the backing array is shared with ingest);
// JSON encoding happens unlocked.
func (e *Engine) MarshalState() ([]byte, error) {
	e.mu.Lock()
	arr := append([]float64(nil), e.arrivals...)
	model := e.model
	trainedN := e.trainedN
	stale := e.gen != e.trainedGen
	failed := e.gen > 0 && e.gen == e.failedGen
	e.mu.Unlock()

	st := engineState{
		Dt:            e.cfg.Dt,
		Pending:       e.cfg.Pending,
		HistoryWindow: e.cfg.HistoryWindow,
		MCSamples:     e.cfg.MCSamples,
		Seed:          e.cfg.Seed,
		Arrivals:      arr,
		TrainedN:      trainedN,
		Stale:         stale,
		Failed:        failed,
	}
	if model != nil {
		st.Model = &modelState{
			Start:         model.NHPP.Start,
			Dt:            model.NHPP.Dt,
			LogIntensity:  model.NHPP.R,
			PeriodBins:    model.NHPP.Period,
			PeriodSeconds: model.PeriodSeconds,
			FitStats:      model.FitStats,
		}
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("engine: marshaling state: %w", err)
	}
	return blob, nil
}

// logIntensityBound rejects restored log intensities outside the fit's
// own clamp (±40, see nhpp): anything beyond it cannot have come from a
// real fit and would overflow exp() into Inf rates.
const logIntensityBound = 40.0

// RestoreState replaces the engine's state with a blob produced by
// MarshalState: scalar config, arrival history, fitted model, and the
// Monte Carlo RNG re-seeded from the persisted seed. The Train
// sub-config and clock keep their current (constructor-supplied)
// values. Every field is validated before anything is mutated, so a
// corrupt blob leaves the engine untouched and returns an error wrapping
// ErrInvalid rather than panicking.
//
// RestoreState must run before the engine serves traffic: it rewrites
// the configuration that the other methods deliberately read without
// locking (they rely on cfg being immutable once serving starts), so
// calling it on a live engine is a data race, not just a semantic
// surprise. At boot, plans resume bit-for-bit from the snapshot, except
// that rt/cost Monte Carlo streams restart from the seed (mid-stream
// RNG position is not persisted).
func (e *Engine) RestoreState(blob []byte) error {
	var st engineState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("%w: decoding engine state: %v", ErrInvalid, err)
	}
	cfg := e.cfg
	cfg.Dt = st.Dt
	cfg.Pending = st.Pending
	cfg.HistoryWindow = st.HistoryWindow
	cfg.MCSamples = st.MCSamples
	cfg.Seed = st.Seed
	if err := cfg.validate(); err != nil {
		return fmt.Errorf("%w: restored config: %v", ErrInvalid, err)
	}
	if err := ValidateTimestamps(st.Arrivals); err != nil {
		return fmt.Errorf("restored arrivals: %w", err)
	}
	if !sort.Float64sAreSorted(st.Arrivals) {
		return fmt.Errorf("%w: restored arrivals are not sorted", ErrInvalid)
	}
	if st.TrainedN < 0 {
		return fmt.Errorf("%w: negative trained_n %d", ErrInvalid, st.TrainedN)
	}
	var model *robustscaler.Model
	if ms := st.Model; ms != nil {
		if ms.Dt <= 0 {
			return fmt.Errorf("%w: restored model has non-positive dt %g", ErrInvalid, ms.Dt)
		}
		if len(ms.LogIntensity) == 0 {
			return fmt.Errorf("%w: restored model has empty log-intensity", ErrInvalid)
		}
		for i, v := range ms.LogIntensity {
			if v < -logIntensityBound || v > logIntensityBound {
				return fmt.Errorf("%w: restored log-intensity %g at bin %d outside ±%g", ErrInvalid, v, i, logIntensityBound)
			}
		}
		if ms.PeriodBins < 0 || ms.PeriodBins >= len(ms.LogIntensity) {
			return fmt.Errorf("%w: restored period %d bins outside [0, %d)", ErrInvalid, ms.PeriodBins, len(ms.LogIntensity))
		}
		model = &robustscaler.Model{
			NHPP:          nhpp.NewModel(ms.Start, ms.Dt, ms.LogIntensity, ms.PeriodBins),
			PeriodBins:    ms.PeriodBins,
			PeriodSeconds: ms.PeriodSeconds,
			FitStats:      ms.FitStats,
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg = cfg
	e.rng = rand.New(rand.NewSource(cfg.Seed))
	e.arrivals = st.Arrivals
	e.model = model
	e.trainedN = st.TrainedN
	e.failedGen = 0
	// Drop any cached plans/forecasts: they were computed for the
	// pre-restore model and generation. (The binding check would miss
	// them anyway — the model pointer is fresh — but holding onto dead
	// entries across a restore would be a leak.)
	e.cacheGen, e.cacheModel = 0, nil
	e.planCache, e.fcCache = nil, nil
	switch {
	case model != nil && !st.Stale:
		// The restored model covers the restored arrivals: not stale, the
		// background retrainer leaves it alone until new traffic lands.
		e.gen, e.trainedGen = 1, 1
	case model != nil:
		// Arrivals had landed after the fit when the snapshot was taken:
		// keep serving the restored model but let the next retrain sweep
		// refresh it, exactly as it would have pre-restart.
		e.gen, e.trainedGen = 1, 0
	case len(st.Arrivals) >= 2:
		// Arrivals without a model (snapshot taken before first fit): mark
		// stale so the next retrain sweep fits one.
		e.gen, e.trainedGen = 1, 0
	default:
		e.gen, e.trainedGen = 0, 0
	}
	if st.Failed {
		e.failedGen = e.gen
	}
	return nil
}

// Snapshot atomically persists every registered workload into dir using
// the internal/store format, replacing any previous snapshot there, and
// returns how many workloads were written. Workloads are ordered by ID
// so identical registry state produces an identical snapshot. A
// workload that fails to serialize aborts the snapshot with an error
// naming it; the previous on-disk snapshot is left intact.
//
// Concurrent Snapshot calls are serialized so that what lands on disk
// last was also collected last — a registry change (e.g. a delete)
// followed by a Snapshot is durable even while a slower snapshot of the
// pre-change registry is still in flight.
func (r *Registry) Snapshot(dir string) (int, error) {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	type entry struct {
		id string
		e  *Engine
	}
	var entries []entry
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for id, e := range s.engines {
			entries = append(entries, entry{id, e})
		}
		s.mu.RUnlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	workloads := make([]store.Workload, 0, len(entries))
	for _, en := range entries {
		blob, err := en.e.MarshalState()
		if err != nil {
			return 0, fmt.Errorf("engine: snapshotting workload %q: %w", en.id, err)
		}
		workloads = append(workloads, store.Workload{ID: en.id, State: blob})
	}
	if err := store.Save(dir, workloads); err != nil {
		return 0, err
	}
	return len(workloads), nil
}

// Restore loads the snapshot in dir, recreating every persisted
// workload and its state, and returns how many were restored. A missing
// snapshot is the clean cold-boot case and returns (0, nil); a snapshot
// that exists but fails validation (store-level corruption or an
// invalid per-workload blob) returns an error naming the failure, with
// the registry left holding whatever restored before it. Restore is
// meant for boot, before the registry serves traffic.
func (r *Registry) Restore(dir string) (int, error) {
	workloads, err := store.Load(dir)
	if err != nil {
		if errors.Is(err, store.ErrNoSnapshot) {
			return 0, nil
		}
		return 0, err
	}
	n := 0
	for _, w := range workloads {
		e, err := r.GetOrCreate(w.ID)
		if err != nil {
			return n, fmt.Errorf("engine: restoring workload %q: %w", w.ID, err)
		}
		if err := e.RestoreState(w.State); err != nil {
			return n, fmt.Errorf("engine: restoring workload %q: %w", w.ID, err)
		}
		n++
	}
	return n, nil
}

// Snapshotter periodically persists the whole registry, the durability
// counterpart of the Retrainer: same background-loop shape, same
// stop-once semantics.
type Snapshotter struct {
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartSnapshotter launches the background snapshot loop: every
// `every`, the full registry is persisted into dir (Registry.Snapshot).
// Errors are logged and the previous on-disk snapshot survives; the
// loop keeps trying on the next tick. Stop takes one final snapshot so
// a graceful shutdown persists the latest state.
func (r *Registry) StartSnapshotter(dir string, every time.Duration) *Snapshotter {
	if every <= 0 {
		panic(fmt.Sprintf("engine: non-positive snapshot period %v", every))
	}
	sn := &Snapshotter{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(sn.done)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-sn.stop:
				if _, err := r.Snapshot(dir); err != nil {
					log.Printf("engine: final snapshot on stop failed: %v", err)
				}
				return
			case <-ticker.C:
				if _, err := r.Snapshot(dir); err != nil {
					log.Printf("engine: background snapshot failed (previous snapshot kept): %v", err)
				}
			}
		}
	}()
	return sn
}

// Stop halts the snapshot loop, takes a final snapshot, and waits for
// the loop to exit. Safe to call more than once.
func (sn *Snapshotter) Stop() {
	sn.stopOnce.Do(func() { close(sn.stop) })
	<-sn.done
}
