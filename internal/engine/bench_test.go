package engine

import (
	"testing"
)

// BenchmarkEngineIngest measures steady-state ingest: in-order batches
// appended to a large existing history. The seed implementation re-sorted
// the whole history on every POST (O(n log n) per event); the engine
// appends sorted batches in O(batch).
func BenchmarkEngineIngest(b *testing.B) {
	const batchSize = 100
	cfg := DefaultConfig()
	cfg.HistoryWindow = 0 // isolate append cost from trimming
	cfg.Now = func() float64 { return 0 }
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Warm history: a day of minute-spaced arrivals.
	warm := make([]float64, 86400/60)
	for i := range warm {
		warm[i] = float64(i * 60)
	}
	e.Ingest(warm)
	batch := make([]float64, batchSize)
	next := warm[len(warm)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			next += 0.5
			batch[j] = next
		}
		e.Ingest(batch)
	}
}

// BenchmarkEngineIngestOutOfOrder measures the merge fallback for
// batches that land behind already-recorded history.
func BenchmarkEngineIngestOutOfOrder(b *testing.B) {
	const batchSize = 100
	cfg := DefaultConfig()
	cfg.HistoryWindow = 0
	cfg.Now = func() float64 { return 0 }
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	warm := make([]float64, 86400/60)
	for i := range warm {
		warm[i] = float64(i * 60)
	}
	e.Ingest(warm)
	batch := make([]float64, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = float64((i*batchSize+j)%86000) + 0.25
		}
		e.Ingest(batch)
	}
}
