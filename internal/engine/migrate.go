package engine

import (
	"fmt"

	"robustscaler/internal/store"
)

// Migration support: the fleet layer moves a workload between nodes
// with a two-phase protocol — an unpaused snapshot handoff (phase 1)
// followed by a short ingest-paused catch-up (phase 2) that replays
// only the WAL tail written since the handoff. These accessors expose
// the generation bookkeeping that protocol needs; the state blob
// itself is the ordinary MarshalState/RestoreState format, so a
// migrated workload is bit-identical to a restored one by
// construction.

// MarshalStateSeq serializes the engine's durable state like
// MarshalState and additionally reports, from the same lock hold, the
// durable-state generation and WAL sequence the blob captures. The
// migration coordinator compares these against a later
// StateGenWALSeq reading to decide whether a WAL-tail replay fully
// covers what happened since the handoff (every generation bump came
// from an ingest, i.e. the deltas match) or whether a non-WAL mutation
// (train, config update, restore) slipped in and the blob must be cut
// again.
func (e *Engine) MarshalStateSeq() ([]byte, uint64, uint64, error) {
	return e.marshalState()
}

// StateGenWALSeq returns the current durable-state generation and WAL
// sequence under one lock hold.
func (e *Engine) StateGenWALSeq() (stateGen, walSeq uint64) {
	return e.stateGenAndWALSeq()
}

// SnapshotWorkloadTo commits a snapshot that rewrites only the named
// workload's blob, carrying every other manifested workload by ID.
// This is the durability step a migration cutover takes inside its
// ingest-pause gate: the pause must cost O(one workload), where
// SnapshotTo would serialize whatever else the node hosts. On a legacy
// (v1) store nothing can be carried by ID, so it falls back to a full
// snapshot. The workload's WAL is checkpointed through the captured
// sequence exactly as the full path would; the snapshot-health trail is
// not touched (this is not a full snapshot, and must not make a stale
// one look fresh).
func (r *Registry) SnapshotWorkloadTo(st *store.Store, id string) error {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	e, ok := r.Get(id)
	if !ok {
		return fmt.Errorf("engine: snapshotting workload %q: not registered", id)
	}
	covered, ok := st.CoveredIDs()
	if !ok {
		_, err := r.snapshotLocked(st)
		return err
	}
	blob, gen, wseq, err := e.marshalState()
	if err != nil {
		return fmt.Errorf("engine: snapshotting workload %q: %w", id, err)
	}
	keep := covered[:0]
	for _, k := range covered {
		if k != id {
			keep = append(keep, k)
		}
	}
	if _, err := st.Commit([]store.Workload{{ID: id, State: blob}}, keep); err != nil {
		return err
	}
	r.instMu.Lock()
	checkpoint := r.walMgr != nil && st.Dir() == r.walDir
	r.instMu.Unlock()
	if checkpoint {
		e.truncateWAL(wseq)
	}
	// Same bookkeeping rule as the full path: record the committed
	// generation only while the engine is still registered under its ID,
	// so a remove-and-recreate cannot inherit it.
	if cur, ok := r.Get(id); ok && cur == e {
		if r.saved[st.Dir()] == nil {
			r.saved[st.Dir()] = map[string]uint64{}
		}
		r.saved[st.Dir()][id] = gen
	}
	return nil
}
