package engine

// Migration support: the fleet layer moves a workload between nodes
// with a two-phase protocol — an unpaused snapshot handoff (phase 1)
// followed by a short ingest-paused catch-up (phase 2) that replays
// only the WAL tail written since the handoff. These accessors expose
// the generation bookkeeping that protocol needs; the state blob
// itself is the ordinary MarshalState/RestoreState format, so a
// migrated workload is bit-identical to a restored one by
// construction.

// MarshalStateSeq serializes the engine's durable state like
// MarshalState and additionally reports, from the same lock hold, the
// durable-state generation and WAL sequence the blob captures. The
// migration coordinator compares these against a later
// StateGenWALSeq reading to decide whether a WAL-tail replay fully
// covers what happened since the handoff (every generation bump came
// from an ingest, i.e. the deltas match) or whether a non-WAL mutation
// (train, config update, restore) slipped in and the blob must be cut
// again.
func (e *Engine) MarshalStateSeq() ([]byte, uint64, uint64, error) {
	return e.marshalState()
}

// StateGenWALSeq returns the current durable-state generation and WAL
// sequence under one lock hold.
func (e *Engine) StateGenWALSeq() (stateGen, walSeq uint64) {
	return e.stateGenAndWALSeq()
}
