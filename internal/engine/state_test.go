package engine

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"robustscaler/internal/store"
)

// trainedEngine builds an engine with a fitted model over periodic
// traffic, the normal pre-snapshot state.
func trainedEngine(t *testing.T, now float64) *Engine {
	t.Helper()
	e, err := New(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(trafficArrivals(7, now)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	return e
}

// planOf runs a fixed planning round, the fingerprint compared across a
// marshal/restore round trip.
func planOf(t *testing.T, e *Engine, variant string, now float64) *Plan {
	t.Helper()
	target := 0.9
	if variant == "rt" {
		target = 5
	}
	p, err := e.Plan(PlanRequest{Variant: variant, Target: target, Horizon: 1800, Now: now, HasNow: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMarshalRestoreRoundTripBitForBit(t *testing.T) {
	const now = 4 * 3600.0
	src := trainedEngine(t, now)
	wantHP := planOf(t, src, "hp", now)
	// rt exercises the Monte Carlo path: the first rt plan after restore
	// must match the first rt plan after training, because the restored
	// RNG restarts from the persisted seed.
	wantRT := planOf(t, src, "rt", now)
	wantFC, err := src.Forecast(now, now+3600, 60)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus := src.Status()

	blob, err := src.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	dst, err := New(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreState(blob); err != nil {
		t.Fatal(err)
	}

	if got := dst.Status(); !reflect.DeepEqual(got, wantStatus) {
		t.Fatalf("status after restore = %+v, want %+v", got, wantStatus)
	}
	if got := planOf(t, dst, "hp", now); !reflect.DeepEqual(got, wantHP) {
		t.Fatalf("hp plan after restore = %+v, want %+v", got, wantHP)
	}
	if got := planOf(t, dst, "rt", now); !reflect.DeepEqual(got, wantRT) {
		t.Fatalf("rt plan after restore = %+v, want %+v", got, wantRT)
	}
	got, err := dst.Forecast(now, now+3600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantFC) {
		t.Fatal("forecast after restore differs")
	}
}

func TestRestoreMarksModelFresh(t *testing.T) {
	const now = 4 * 3600.0
	blob, err := trainedEngine(t, now).MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	// The restored model covers the restored arrivals: no refit due.
	if ran, err := e.Retrain(); err != nil || ran {
		t.Fatalf("Retrain after restore = (%v, %v), want (false, nil)", ran, err)
	}
	// New traffic makes it stale again.
	if _, err := e.Ingest([]float64{now + 1, now + 2}); err != nil {
		t.Fatal(err)
	}
	if ran, err := e.Retrain(); err != nil || !ran {
		t.Fatalf("Retrain after new traffic = (%v, %v), want (true, nil)", ran, err)
	}
}

func TestRestorePreservesStaleness(t *testing.T) {
	const now = 4 * 3600.0
	src := trainedEngine(t, now)
	// Traffic lands after the fit: the workload is due a refit, and a
	// snapshot+restart must not launder that away.
	if _, err := src.Ingest([]float64{now + 1, now + 2}); err != nil {
		t.Fatal(err)
	}
	blob, err := src.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	// The stale model still serves plans immediately...
	if _, err := e.Plan(PlanRequest{Target: 0.9, Horizon: 60, HasNow: true, Now: now}); err != nil {
		t.Fatalf("plan on restored stale model: %v", err)
	}
	// ...but the next sweep refits it, as it would have pre-restart.
	if ran, err := e.Retrain(); err != nil || !ran {
		t.Fatalf("Retrain of restored stale workload = (%v, %v), want (true, nil)", ran, err)
	}
}

func TestRestorePreservesFailedFit(t *testing.T) {
	const now = 4 * 3600.0
	src, err := New(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	// A history spanning more than maxTrainBins bins fails the fit and
	// marks the generation failed, so retrain sweeps skip the workload.
	if _, err := src.Ingest([]float64{0, 3e8}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Train(); err == nil {
		t.Fatal("expected training to fail on an astronomic span")
	}
	if ran, err := src.Retrain(); err != nil || ran {
		t.Fatalf("pre-snapshot Retrain = (%v, %v), want skip", ran, err)
	}
	blob, err := src.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	// The restored engine must keep skipping the known-failing fit, same
	// as pre-crash, instead of re-running it on every boot's first sweep.
	if ran, err := e.Retrain(); err != nil || ran {
		t.Fatalf("post-restore Retrain = (%v, %v), want skip", ran, err)
	}
	// New arrivals lift the skip, exactly like before the restart (here
	// the fit even succeeds: the history window trims the stray ancient
	// timestamp once recent traffic lands).
	if _, err := e.Ingest([]float64{3e8 + 60, 3e8 + 120, 3e8 + 180}); err != nil {
		t.Fatal(err)
	}
	if ran, err := e.Retrain(); !ran && err == nil {
		t.Fatal("Retrain after new arrivals still skipped; failed marker not cleared by fresh traffic")
	}
}

func TestRestoreUntrainedStateTriggersRetrain(t *testing.T) {
	const now = 4 * 3600.0
	src, err := New(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Ingest(trafficArrivals(7, now)); err != nil {
		t.Fatal(err)
	}
	blob, err := src.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Plan(PlanRequest{Target: 0.9, Horizon: 60, HasNow: true, Now: now}); !errors.Is(err, ErrNoModel) {
		t.Fatalf("plan before fit = %v, want ErrNoModel", err)
	}
	if ran, err := e.Retrain(); err != nil || !ran {
		t.Fatalf("Retrain of restored untrained workload = (%v, %v), want (true, nil)", ran, err)
	}
}

func TestRestoreStateRejectsBadBlobs(t *testing.T) {
	const now = 4 * 3600.0
	cases := []struct {
		name string
		blob string
	}{
		{"not json", `}{`},
		{"bad dt", `{"dt":-1,"mc_samples":10}`},
		{"unsorted arrivals", `{"dt":60,"arrivals":[3,1,2]}`},
		{"out-of-range arrival", `{"dt":60,"arrivals":[1e301]}`},
		{"negative trained_n", `{"dt":60,"trained_n":-4}`},
		{"model bad dt", `{"dt":60,"model":{"dt":0,"log_intensity":[1]}}`},
		{"model empty intensity", `{"dt":60,"model":{"dt":60,"log_intensity":[]}}`},
		{"model wild intensity", `{"dt":60,"model":{"dt":60,"log_intensity":[700]}}`},
		{"model bad period", `{"dt":60,"model":{"dt":60,"log_intensity":[1,2],"period_bins":9}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := trainedEngine(t, now)
			want := e.Status()
			err := e.RestoreState([]byte(tc.blob))
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("err = %v, want ErrInvalid", err)
			}
			// Failed validation must leave the engine untouched.
			if got := e.Status(); !reflect.DeepEqual(got, want) {
				t.Fatalf("engine mutated by rejected blob: %+v -> %+v", want, got)
			}
		})
	}
}

func TestRegistrySnapshotRestoreRoundTrip(t *testing.T) {
	const now = 4 * 3600.0
	dir := t.TempDir()
	src, err := NewRegistry(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"registry-eu", "ci-runners", "faas-img"}
	for i, id := range ids {
		e, err := src.GetOrCreate(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Ingest(trafficArrivals(int64(i+1), now)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Train(); err != nil {
			t.Fatal(err)
		}
	}
	n, err := src.Snapshot(dir)
	if err != nil || n != len(ids) {
		t.Fatalf("Snapshot = (%d, %v), want (%d, nil)", n, err, len(ids))
	}

	dst, err := NewRegistry(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := dst.Restore(dir); err != nil || n != len(ids) {
		t.Fatalf("Restore = (%d, %v), want (%d, nil)", n, err, len(ids))
	}
	if got, want := dst.Workloads(), src.Workloads(); !reflect.DeepEqual(got, want) {
		t.Fatalf("workloads after restore = %v, want %v", got, want)
	}
	for _, id := range ids {
		a, _ := src.Get(id)
		b, ok := dst.Get(id)
		if !ok {
			t.Fatalf("workload %s missing after restore", id)
		}
		if got, want := planOf(t, b, "hp", now), planOf(t, a, "hp", now); !reflect.DeepEqual(got, want) {
			t.Fatalf("workload %s plan after restore differs", id)
		}
	}
}

func TestRegistryRestoreColdBoot(t *testing.T) {
	r, err := NewRegistry(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := r.Restore(t.TempDir()); err != nil || n != 0 {
		t.Fatalf("Restore of empty dir = (%d, %v), want (0, nil)", n, err)
	}
}

func TestRegistryRestoreRejectsCorruptSnapshot(t *testing.T) {
	const now = 4 * 3600.0
	dir := t.TempDir()
	src, err := NewRegistry(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	e, err := src.GetOrCreate("w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt the manifest (the commit point) and then, separately, a
	// workload file: both must fail the restore loudly.
	for _, path := range []string{
		filepath.Join(dir, store.ManifestFile),
		workloadFilePath(t, dir),
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)-2] ^= 0xff
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		dst, err := NewRegistry(testConfig(now))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dst.Restore(dir); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("Restore with corrupt %s = %v, want ErrCorrupt", filepath.Base(path), err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil { // heal for the next case
			t.Fatal(err)
		}
	}
}

// workloadFilePath returns the single per-workload snapshot file in dir.
func workloadFilePath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, store.WorkloadDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("want exactly 1 workload file, got %d", len(entries))
	}
	return filepath.Join(dir, store.WorkloadDir, entries[0].Name())
}

func TestSnapshotterWritesAndStops(t *testing.T) {
	const now = 4 * 3600.0
	dir := t.TempDir()
	r, err := NewRegistry(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	e, err := r.GetOrCreate("w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A long interval: only Stop's final snapshot should fire, which
	// keeps the test deterministic.
	sn := r.StartSnapshotter(st, time.Hour)
	sn.Stop()
	sn.Stop() // idempotent
	dst, err := NewRegistry(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := dst.Restore(dir); err != nil || n != 1 {
		t.Fatalf("Restore after snapshotter stop = (%d, %v), want (1, nil)", n, err)
	}
}

func TestRestoreStateOverridesScalarConfig(t *testing.T) {
	const now = 4 * 3600.0
	cfg := testConfig(now)
	cfg.Dt = 30
	cfg.Pending = 7
	cfg.HistoryWindow = 86400
	src, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := src.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	// Restore into an engine built from different flags: the snapshot's
	// scalars win, so plans keep the exact shape they had pre-restart.
	dst, err := New(testConfig(now))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	got := dst.Config()
	if got.Dt != 30 || got.Pending != 7 || got.HistoryWindow != 86400 {
		t.Fatalf("restored config = Dt %g Pending %g HistoryWindow %g, want 30/7/86400",
			got.Dt, got.Pending, got.HistoryWindow)
	}
}
