package engine

import (
	"os"
	"strings"
	"testing"

	"robustscaler/internal/metrics"
	"robustscaler/internal/store"
)

// metricsTestConfig returns a config whose fits are fast and whose
// clock is fixed.
func metricsTestConfig() Config {
	cfg := DefaultConfig()
	cfg.MCSamples = 50
	cfg.Now = func() float64 { return 7200 }
	return cfg
}

// denseArrivals returns n arrivals at a steady pace ending before the
// fake clock.
func denseArrivals(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * 7000 / float64(n)
	}
	return out
}

func TestEngineStatsCounters(t *testing.T) {
	e, err := New(metricsTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(denseArrivals(200)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.IngestedEvents != 200 || st.IngestedBatches != 1 {
		t.Fatalf("after ingest: events=%d batches=%d, want 200/1", st.IngestedEvents, st.IngestedBatches)
	}
	if st.StalenessGenerations != 1 {
		t.Fatalf("staleness before train = %d, want 1", st.StalenessGenerations)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	req := PlanRequest{Variant: "hp", Target: 0.9, Horizon: 600, Now: 7200, HasNow: true}
	if _, err := e.Plan(req); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Plan(req); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Forecast(7200, 7800, 60); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Refits != 1 || st.RefitFailures != 0 || st.RefitSecondsTotal <= 0 {
		t.Fatalf("refit stats = %d/%d/%g, want 1/0/>0", st.Refits, st.RefitFailures, st.RefitSecondsTotal)
	}
	if st.StalenessGenerations != 0 {
		t.Fatalf("staleness after train = %d, want 0", st.StalenessGenerations)
	}
	if st.PlanCacheMisses != 1 || st.PlanCacheHits != 1 {
		t.Fatalf("plan cache = %d hits / %d misses, want 1/1", st.PlanCacheHits, st.PlanCacheMisses)
	}
	if st.ForecastCacheMisses != 1 || st.PlanCacheEntries != 1 || st.ForecastCacheEntries != 1 {
		t.Fatalf("forecast/entries = %d misses, %d plan entries, %d fc entries, want 1/1/1",
			st.ForecastCacheMisses, st.PlanCacheEntries, st.ForecastCacheEntries)
	}
	if st.LastRefitAt != 7200 {
		t.Fatalf("LastRefitAt = %g, want the fake clock 7200", st.LastRefitAt)
	}

	// A failed fit counts as a failure, not a refit. (Window 0 keeps
	// both points, so the astronomical span reaches the bins guard.)
	badCfg := metricsTestConfig()
	badCfg.HistoryWindow = 0
	bad, err := New(badCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Ingest([]float64{0, 1e14}); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Train(); err == nil {
		t.Fatal("degenerate history trained successfully?")
	}
	if bst := bad.Stats(); bst.Refits != 0 || bst.RefitFailures != 1 {
		t.Fatalf("failed fit stats = %d/%d, want 0/1", bst.Refits, bst.RefitFailures)
	}
}

// TestRegistrySnapshotHealth pins the persistence-health trail: success
// primes it, failures accumulate consecutively, and the next success
// clears the streak (while the lifetime failure count stays).
func TestRegistrySnapshotHealth(t *testing.T) {
	reg, err := NewRegistry(metricsTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.GetOrCreate("w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(denseArrivals(10)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h := reg.SnapshotHealth(); h.Snapshots != 0 || h.LastSuccessUnix != 0 {
		t.Fatalf("pristine health = %+v", h)
	}
	if _, err := reg.SnapshotTo(st); err != nil {
		t.Fatal(err)
	}
	h := reg.SnapshotHealth()
	if h.Snapshots != 1 || h.Failures != 0 || h.ConsecutiveFailures != 0 || h.LastSuccessUnix == 0 {
		t.Fatalf("health after success = %+v", h)
	}

	// Break the directory; two failing snapshots must stack.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if _, err := e.Ingest([]float64{7000 + float64(i)}); err != nil {
			t.Fatal(err) // dirty the workload so the commit writes a file
		}
		if _, err := reg.SnapshotTo(st); err == nil {
			t.Fatal("snapshot into a broken dir succeeded")
		}
		h = reg.SnapshotHealth()
		if h.ConsecutiveFailures != uint64(i) || h.Failures != uint64(i) || h.LastError == "" {
			t.Fatalf("health after %d failures = %+v", i, h)
		}
	}

	if err := os.Remove(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir+"/workloads", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SnapshotTo(st); err != nil {
		t.Fatal(err)
	}
	h = reg.SnapshotHealth()
	if h.ConsecutiveFailures != 0 || h.Failures != 2 || h.Snapshots != 4 || h.LastError != "" {
		t.Fatalf("health after recovery = %+v", h)
	}
}

// TestRegistryInstrumentAggregates pins the fleet aggregates: two
// workloads' counters must sum on the exposition page, and the shared
// refit histogram must observe fits from engines created after
// Instrument ran.
func TestRegistryInstrumentAggregates(t *testing.T) {
	reg, err := NewRegistry(metricsTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := metrics.NewRegistry()
	reg.Instrument(m)
	for _, id := range []string{"a", "b"} {
		e, err := reg.GetOrCreate(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Ingest(denseArrivals(100)); err != nil {
			t.Fatal(err)
		}
	}
	ea, _ := reg.Get("a")
	if _, err := ea.Train(); err != nil {
		t.Fatal(err)
	}
	for series, want := range map[string]float64{
		"robustscaler_workloads":                    2,
		"robustscaler_engine_ingested_events_total": 200,
		"robustscaler_refits_total":                 1,
		"robustscaler_workloads_stale":              1, // b has data, no model
		"robustscaler_staleness_generations":        1,
	} {
		if got, ok := m.Value(series); !ok || got != want {
			t.Errorf("%s = %g (present %v), want %g", series, got, ok, want)
		}
	}
	if got, _ := m.Value("robustscaler_refit_seconds"); got != 1 {
		t.Errorf("refit histogram count = %g, want 1", got)
	}
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "robustscaler_refit_seconds_bucket") {
		t.Errorf("exposition missing refit histogram:\n%s", sb.String())
	}
}
