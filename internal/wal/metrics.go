package wal

import "robustscaler/internal/metrics"

// managerMetrics are always-on internal counters (zero-value usable);
// Instrument exposes them as robustscaler_wal_* series. Histograms are
// nil until Instrument runs — appends check before observing.
type managerMetrics struct {
	appends      metrics.Counter
	appendEvents metrics.Counter
	appendBytes  metrics.Counter
	appendErrors metrics.Counter

	fsyncs        metrics.Counter
	fsyncFailures metrics.Counter

	segmentsCreated metrics.Counter
	segmentsRemoved metrics.Counter

	// truncations counts checkpoint truncations (TruncateThrough after a
	// snapshot commit); replayTruncations counts corruption repairs —
	// the alarming kind.
	truncations       metrics.Counter
	replayTruncations metrics.Counter

	replayRecords metrics.Counter
	replayEvents  metrics.Counter

	appendSeconds *metrics.Histogram
	fsyncSeconds  *metrics.Histogram
}

func counterFloat(c *metrics.Counter) func() float64 {
	return func() float64 { return float64(c.Value()) }
}

// Instrument registers the manager's robustscaler_wal_* series on m.
// Call once, before traffic.
func (mg *Manager) Instrument(m *metrics.Registry) {
	met := &mg.met
	m.CounterFunc("robustscaler_wal_appends_total",
		"WAL batch records appended.", counterFloat(&met.appends))
	m.CounterFunc("robustscaler_wal_append_events_total",
		"Arrival events appended to WALs.", counterFloat(&met.appendEvents))
	m.CounterFunc("robustscaler_wal_append_bytes_total",
		"Bytes appended to WAL segments.", counterFloat(&met.appendBytes))
	m.CounterFunc("robustscaler_wal_append_errors_total",
		"Failed WAL appends (the batch was not acknowledged).", counterFloat(&met.appendErrors))
	m.CounterFunc("robustscaler_wal_fsyncs_total",
		"WAL fsync calls.", counterFloat(&met.fsyncs))
	m.CounterFunc("robustscaler_wal_fsync_failures_total",
		"Failed WAL fsyncs.", counterFloat(&met.fsyncFailures))
	m.CounterFunc("robustscaler_wal_segments_created_total",
		"WAL segments opened.", counterFloat(&met.segmentsCreated))
	m.CounterFunc("robustscaler_wal_segments_removed_total",
		"WAL segments deleted (checkpoint or repair).", counterFloat(&met.segmentsRemoved))
	m.CounterFunc("robustscaler_wal_truncations_total",
		"Checkpoint truncations after snapshot commits.", counterFloat(&met.truncations))
	m.CounterFunc("robustscaler_wal_replay_truncations_total",
		"Corruption repairs: logs cut at the first bad record during recovery.",
		counterFloat(&met.replayTruncations))
	m.CounterFunc("robustscaler_wal_replay_records_total",
		"Batch records replayed into engines at boot.", counterFloat(&met.replayRecords))
	m.CounterFunc("robustscaler_wal_replay_events_total",
		"Arrival events replayed into engines at boot.", counterFloat(&met.replayEvents))
	met.appendSeconds = m.Histogram("robustscaler_wal_append_seconds",
		"WAL append latency (excluding fsync).", metrics.DefBuckets)
	met.fsyncSeconds = m.Histogram("robustscaler_wal_fsync_seconds",
		"WAL fsync latency.", metrics.DefBuckets)
	m.GaugeFunc("robustscaler_wal_logs", "Open per-workload WALs.", func() float64 {
		mg.mu.Lock()
		defer mg.mu.Unlock()
		return float64(len(mg.logs))
	})
	m.GaugeFunc("robustscaler_wal_size_bytes", "Total bytes across all WAL segments.", func() float64 {
		mg.mu.Lock()
		logs := make([]*Log, 0, len(mg.logs))
		for _, l := range mg.logs {
			logs = append(logs, l)
		}
		mg.mu.Unlock()
		var total int64
		for _, l := range logs {
			total += l.Stats().SizeBytes
		}
		return float64(total)
	})
}
