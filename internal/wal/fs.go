package wal

// The filesystem seam. Everything the WAL does to disk goes through the
// FS interface, so the crash-fault injection harness (FaultFS) can fail
// fsyncs, tear writes mid-record and break truncations underneath the
// real append/replay code paths — the exact code that runs in
// production, not a mock of it.

import (
	"io"
	"io/fs"
	"os"
)

// FS is the slice of filesystem behavior the WAL needs. The default is
// the real OS filesystem (osFS); tests substitute a FaultFS.
type FS interface {
	MkdirAll(path string) error
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]fs.DirEntry, error)
	Remove(path string) error
	RemoveAll(path string) error
	// Truncate shortens the file at path to size bytes (replay uses it
	// to cut a corrupt tail off a closed segment).
	Truncate(path string, size int64) error
}

// File is an open append-mode segment.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	// Truncate shortens the open file to size bytes; with O_APPEND the
	// next write lands at the new end, which is what makes a failed
	// append rollable-back.
	Truncate(size int64) error
	Close() error
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the production filesystem implementation.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }
func (osFS) Remove(path string) error                   { return os.Remove(path) }
func (osFS) RemoveAll(path string) error                { return os.RemoveAll(path) }
func (osFS) Truncate(path string, size int64) error     { return os.Truncate(path, size) }
