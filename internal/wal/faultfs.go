package wal

// FaultFS is the crash-fault injection harness: a wrapping FS whose
// failure modes are armed by tests. It lives in the package proper (not
// a _test file) so other packages' crash tests — engine's kill-and-
// restart suite, the CI crash-recovery job — can drive the same faults
// through the same production code paths.

import (
	"fmt"
	"io/fs"
	"sync"
)

// FaultFS wraps an FS and injects failures on demand: failing fsyncs,
// tearing writes mid-record, breaking truncations. Bit flips and tail
// truncations of *closed* files don't need an FS hook — tests edit the
// segment bytes directly between a crash and the reopen.
type FaultFS struct {
	inner FS

	mu sync.Mutex
	// syncErr, when set, fails every File.Sync.
	syncErr error
	// truncErr, when set, fails every truncate (both the path-based FS
	// method and open-file rollbacks) — the way to wedge a log.
	truncErr error
	// tearAfter, when armed (≥ 0), lets the next write through for only
	// tearAfter bytes, reports success for the torn length, then
	// disarms. Simulates the machine dying mid-write: the caller never
	// learns, exactly like a kill -9.
	tearAfter int
	// writeErr, when set, fails every write after writing tearAfter
	// bytes (if armed) or zero bytes: a disk error the caller DOES see.
	writeErr error
}

// NewFaultFS wraps inner (the real FS in the crash tests).
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, tearAfter: -1}
}

// FailSyncs arms (or with nil, disarms) fsync failure.
func (f *FaultFS) FailSyncs(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr = err
}

// FailTruncates arms (or with nil, disarms) truncate failure.
func (f *FaultFS) FailTruncates(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.truncErr = err
}

// TearNextWrite arms a one-shot torn write: the next write persists
// only n bytes but reports full success — the crash-mid-append fault.
func (f *FaultFS) TearNextWrite(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tearAfter = n
}

// FailWrites arms (or with nil, disarms) write failure; writes persist
// zero bytes and return err.
func (f *FaultFS) FailWrites(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErr = err
}

func (f *FaultFS) MkdirAll(path string) error           { return f.inner.MkdirAll(path) }
func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.inner.ReadFile(path) }
func (f *FaultFS) ReadDir(path string) ([]fs.DirEntry, error) {
	return f.inner.ReadDir(path)
}
func (f *FaultFS) Remove(path string) error    { return f.inner.Remove(path) }
func (f *FaultFS) RemoveAll(path string) error { return f.inner.RemoveAll(path) }

func (f *FaultFS) Truncate(path string, size int64) error {
	f.mu.Lock()
	err := f.truncErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.Truncate(path, size)
}

func (f *FaultFS) OpenAppend(path string) (File, error) {
	file, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// faultFile routes the open-file operations through the armed faults.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	tear := ff.fs.tearAfter
	werr := ff.fs.writeErr
	if tear >= 0 {
		ff.fs.tearAfter = -1 // one-shot
	}
	ff.fs.mu.Unlock()
	if tear >= 0 {
		if tear > len(p) {
			tear = len(p)
		}
		if _, err := ff.inner.Write(p[:tear]); err != nil {
			return 0, err
		}
		if werr != nil {
			// Torn AND surfaced: a disk error after a partial write.
			return tear, werr
		}
		// Torn silently: report success for bytes that never all landed.
		return len(p), nil
	}
	if werr != nil {
		return 0, werr
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	err := ff.fs.syncErr
	ff.fs.mu.Unlock()
	if err != nil {
		return fmt.Errorf("injected: %w", err)
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	ff.fs.mu.Lock()
	err := ff.fs.truncErr
	ff.fs.mu.Unlock()
	if err != nil {
		return fmt.Errorf("injected: %w", err)
	}
	return ff.inner.Truncate(size)
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
