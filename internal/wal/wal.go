// Package wal is the durability layer between acknowledged ingest and
// the periodic snapshot: a per-workload append-only write-ahead log.
// Every acknowledged ingest batch is framed (CRC-32 per record, see
// record.go) and appended to the workload's active segment before the
// engine applies it, so a crash between snapshot ticks loses nothing
// that was acknowledged — boot replays the log on top of the snapshot.
//
// Layout: one directory per workload under the manager's root, holding
// numbered segment files:
//
//	<root>/<sanitized-id>-<fnv64>/00000000000000000001.rswal
//	<root>/<sanitized-id>-<fnv64>/00000000000000000002.rswal
//
// Every segment opens with a meta record naming its workload, so boot
// maps directories back to IDs without trusting directory names.
// Appends go to the highest-numbered segment; when it outgrows
// SegmentBytes the log rotates to a fresh one. A checkpoint
// (TruncateThrough, called after a successful snapshot commit) deletes
// segments wholly covered by the snapshot — the log stays short-lived
// by design, bounded by the snapshot cadence.
//
// Durability is the fsync policy's call: SyncAlways fsyncs every append
// before it is acknowledged (no acknowledged write can be lost, at disk
// latency per batch); SyncInterval marks segments dirty and a manager
// flusher fsyncs them on a short cadence (bounded loss window, ingest
// stays at memory speed); SyncOff leaves flushing to the OS. The policy
// is per-manager with a per-log override, which is how the per-workload
// `wal.fsync` config knob lands.
//
// A failed append — short write or failed SyncAlways fsync — is rolled
// back by truncating the segment to its pre-append length, so the
// failed record cannot survive on disk while the client saw an error:
// otherwise its sequence number would be burned, and replay would hand
// the engine a batch that was never acknowledged in place of one that
// was. If the rollback itself fails the log wedges (every later append
// returns the sticky error) rather than risk exactly that; a restart
// repairs the tear by replay's truncate-at-first-corruption pass.
package wal

import (
	"errors"
	"fmt"
	"log"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrClosed reports an operation on a closed log or manager.
var ErrClosed = errors.New("wal: closed")

// SyncPolicy says when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every append returns: an acknowledged
	// batch is on stable storage, full stop.
	SyncAlways SyncPolicy = iota
	// SyncInterval batches fsyncs on the manager's flush cadence: a
	// crash can lose up to one interval of acknowledged batches, in
	// exchange for ingest at memory speed.
	SyncInterval
	// SyncOff never fsyncs; the OS flushes when it pleases. For
	// workloads whose history is reconstructible (or disposable).
	SyncOff
)

// ParseSyncPolicy maps the config/flag spelling onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Defaults.
const (
	// DefaultInterval is the SyncInterval flush cadence.
	DefaultInterval = 100 * time.Millisecond
	// DefaultSegmentBytes rotates segments at 64 MiB.
	DefaultSegmentBytes = 64 << 20
)

// Options parameterize a Manager. The zero value of Policy is
// SyncAlways — the safe default.
type Options struct {
	// Dir is the WAL root; one subdirectory per workload is created
	// under it.
	Dir string
	// Policy is the manager-wide fsync policy (per-log overrides via
	// Log.SetSyncPolicy).
	Policy SyncPolicy
	// Interval is the SyncInterval flush cadence; 0 means
	// DefaultInterval.
	Interval time.Duration
	// SegmentBytes rotates a segment once it reaches this size; 0 means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// FS is the filesystem; nil means the real one. Tests inject a
	// FaultFS here.
	FS FS
}

// Manager owns the per-workload logs under one root directory and runs
// the shared interval flusher. Safe for concurrent use.
type Manager struct {
	opts Options
	fs   FS

	mu     sync.Mutex
	logs   map[string]*Log
	closed bool

	stop chan struct{}
	done chan struct{}

	met managerMetrics
}

// Open validates opts, creates the root directory and starts the
// flusher. Close releases everything.
func Open(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.FS == nil {
		opts.FS = OSFS()
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	m := &Manager{
		opts: opts,
		fs:   opts.FS,
		logs: map[string]*Log{},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go m.flushLoop()
	return m, nil
}

// Dir returns the WAL root directory.
func (m *Manager) Dir() string { return m.opts.Dir }

// Log returns the workload's log, creating its directory on first use.
func (m *Manager) Log(id string) (*Log, error) {
	if id == "" {
		return nil, errors.New("wal: empty workload id")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if l, ok := m.logs[id]; ok {
		return l, nil
	}
	dir := filepath.Join(m.opts.Dir, dirNameFor(id))
	if err := m.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: creating log dir for %q: %w", id, err)
	}
	l := &Log{mgr: m, id: id, dir: dir, segMax: map[uint64]uint64{}, sizes: map[uint64]int64{}}
	m.logs[id] = l
	return l, nil
}

// Remove closes the workload's log and deletes its directory — the WAL
// half of a workload delete.
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	l := m.logs[id]
	delete(m.logs, id)
	m.mu.Unlock()
	if l != nil {
		l.close()
	}
	return m.fs.RemoveAll(filepath.Join(m.opts.Dir, dirNameFor(id)))
}

// ScanWorkloads maps the on-disk log directories back to workload IDs by
// reading each one's opening meta record — the boot step that discovers
// which workloads have WAL tails to replay (including workloads that
// exist only in the WAL, never yet snapshotted). A directory whose
// identity cannot be established (empty, unreadable or corrupt head,
// or a meta record disagreeing with the directory name) is reset —
// its segments deleted, loudly — because appending to or replaying an
// unidentifiable log could hand one workload another's history.
func (m *Manager) ScanWorkloads() (ids []string, reset int, err error) {
	entries, err := m.fs.ReadDir(m.opts.Dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: scanning %s: %w", m.opts.Dir, err)
	}
	for _, de := range entries {
		if !de.IsDir() {
			continue
		}
		dir := filepath.Join(m.opts.Dir, de.Name())
		segs, serr := listSegments(m.fs, dir)
		if serr != nil || len(segs) == 0 {
			continue
		}
		id, ok := m.identifyDir(dir, de.Name(), segs[0])
		if !ok {
			log.Printf("wal: log directory %s is unidentifiable (corrupt opening record); resetting it — its unsnapshotted tail is lost", dir)
			for _, s := range segs {
				m.fs.Remove(filepath.Join(dir, segmentName(s)))
			}
			m.met.replayTruncations.Inc()
			reset++
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, reset, nil
}

// identifyDir reads the first record of the directory's first segment
// and checks it names a workload whose directory this is.
func (m *Manager) identifyDir(dir, base string, firstSeg uint64) (string, bool) {
	data, err := m.fs.ReadFile(filepath.Join(dir, segmentName(firstSeg)))
	if err != nil {
		return "", false
	}
	rec, _, status, _ := decodeRecord(data)
	if status != decodeOK || rec.typ != recordMeta {
		return "", false
	}
	meta, err := decodeMetaPayload(rec.payload)
	if err != nil || dirNameFor(meta.Workload) != base {
		return "", false
	}
	return meta.Workload, true
}

// ResetAll wipes every log — cached and on-disk alike — the
// point-in-time-restore step that discards a WAL tail which would
// otherwise replay the rewound state forward again.
func (m *Manager) ResetAll() error {
	m.mu.Lock()
	logs := make([]*Log, 0, len(m.logs))
	owned := map[string]bool{}
	for _, l := range m.logs {
		logs = append(logs, l)
		owned[filepath.Base(l.dir)] = true
	}
	m.mu.Unlock()
	var firstErr error
	for _, l := range logs {
		if err := l.Reset(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	entries, err := m.fs.ReadDir(m.opts.Dir)
	if err != nil {
		return firstErr
	}
	for _, de := range entries {
		if de.IsDir() && !owned[de.Name()] {
			if err := m.fs.RemoveAll(filepath.Join(m.opts.Dir, de.Name())); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Close flushes and closes every log and stops the flusher. Appends
// after Close fail with ErrClosed.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	logs := make([]*Log, 0, len(m.logs))
	for _, l := range m.logs {
		logs = append(logs, l)
	}
	m.mu.Unlock()
	close(m.stop)
	<-m.done
	var firstErr error
	for _, l := range logs {
		if err := l.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// flushLoop is the SyncInterval engine: every interval it fsyncs the
// segments appends dirtied since the last pass. A failing flush is
// counted and retried next tick — that bounded window is exactly the
// durability SyncInterval trades away.
func (m *Manager) flushLoop() {
	defer close(m.done)
	ticker := time.NewTicker(m.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.mu.Lock()
			logs := make([]*Log, 0, len(m.logs))
			for _, l := range m.logs {
				logs = append(logs, l)
			}
			m.mu.Unlock()
			for _, l := range logs {
				l.flushIfDirty()
			}
		}
	}
}

// Log is one workload's write-ahead log. Append/Replay/TruncateThrough
// are safe for concurrent use with each other; Replay is meant for
// boot, before the log takes appends (cmd/scalerd guarantees the
// ordering).
type Log struct {
	mgr *Manager
	id  string
	dir string

	mu sync.Mutex
	// policy/hasPolicy: per-log override of the manager's fsync policy.
	policy    SyncPolicy
	hasPolicy bool
	f         File
	// seg is the active segment number — also the high-water mark: a
	// full truncation keeps it so a recreated segment never reuses a
	// number replay might still find stale remnants of.
	seg     uint64
	segSize int64
	segs    []uint64 // existing segment numbers, sorted
	segMax  map[uint64]uint64
	sizes   map[uint64]int64
	lastSeq uint64
	dirty   bool
	// recovered: the on-disk state has been scanned (by Replay or
	// lazily before the first append), so segs/segMax/lastSeq/segSize
	// are trustworthy and the active tail is frame-clean.
	recovered bool
	broken    error
	closed    bool
	buf       []byte
}

// SetSyncPolicy overrides the manager's fsync policy for this log (the
// per-workload `wal.fsync` config knob).
func (l *Log) SetSyncPolicy(p SyncPolicy) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.policy, l.hasPolicy = p, true
}

// ClearSyncPolicy reverts the log to the manager's policy.
func (l *Log) ClearSyncPolicy() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hasPolicy = false
}

func (l *Log) policyLocked() SyncPolicy {
	if l.hasPolicy {
		return l.policy
	}
	return l.mgr.opts.Policy
}

// Append durably records one acknowledged ingest batch under the given
// sequence number (the engine's per-workload batch counter; strictly
// increasing). It must succeed before the batch is applied or
// acknowledged. chunks follow IngestSortedChunks' shape — the batch's
// timestamps in order, possibly split across slices.
func (l *Log) Append(seq uint64, chunks [][]float64) error {
	events := 0
	for _, c := range chunks {
		events += len(c)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return l.broken
	}
	if !l.recovered {
		if _, _, err := l.scanLocked(false); err != nil {
			return err
		}
	}
	if err := l.ensureSegmentLocked(); err != nil {
		return err
	}
	l.buf = appendBatchRecord(l.buf[:0], seq, chunks)
	pre := l.segSize
	start := time.Now()
	nw, err := l.f.Write(l.buf)
	if err != nil || nw != len(l.buf) {
		l.mgr.met.appendErrors.Inc()
		l.rollbackLocked(pre)
		if err == nil {
			err = fmt.Errorf("short write: %d of %d bytes", nw, len(l.buf))
		}
		return fmt.Errorf("wal %s: append: %w", l.id, err)
	}
	l.segSize = pre + int64(nw)
	l.sizes[l.seg] = l.segSize
	switch l.policyLocked() {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			l.mgr.met.appendErrors.Inc()
			l.rollbackLocked(pre)
			return fmt.Errorf("wal %s: fsync: %w", l.id, err)
		}
	case SyncInterval:
		l.dirty = true
	}
	if seq > l.lastSeq {
		l.lastSeq = seq
	}
	l.segMax[l.seg] = seq
	met := &l.mgr.met
	met.appends.Inc()
	met.appendEvents.Add(uint64(events))
	met.appendBytes.Add(uint64(nw))
	if h := met.appendSeconds; h != nil {
		h.Observe(time.Since(start).Seconds())
	}
	return nil
}

// rollbackLocked undoes a failed append by truncating the segment back
// to its pre-append length. If even that fails the log wedges: leaving
// a possibly-written record whose sequence number the engine will reuse
// (the append errored, so the engine won't advance its counter) would
// make the next replay substitute an unacknowledged batch for an
// acknowledged one — silent corruption. Wedged means every later append
// fails with the sticky error until a restart, whose replay truncates
// the tear properly.
func (l *Log) rollbackLocked(pre int64) {
	if err := l.f.Truncate(pre); err != nil {
		l.broken = fmt.Errorf("wal %s: wedged: failed append could not be rolled back (%v); restart to repair by replay", l.id, err)
		log.Print(l.broken)
		return
	}
	l.segSize = pre
	l.sizes[l.seg] = pre
}

// syncLocked fsyncs the active segment, with metrics.
func (l *Log) syncLocked() error {
	met := &l.mgr.met
	start := time.Now()
	err := l.f.Sync()
	if h := met.fsyncSeconds; h != nil {
		h.Observe(time.Since(start).Seconds())
	}
	met.fsyncs.Inc()
	if err != nil {
		met.fsyncFailures.Inc()
		return err
	}
	l.dirty = false
	return nil
}

// flushIfDirty is the flusher's per-log step.
func (l *Log) flushIfDirty() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dirty || l.f == nil || l.closed || l.broken != nil {
		return
	}
	if err := l.syncLocked(); err != nil {
		// Keep dirty: retried next tick. This loss window is what
		// SyncInterval means; SyncAlways surfaces the same failure to the
		// client instead.
		log.Printf("wal %s: interval fsync failed (will retry): %v", l.id, err)
	}
}

// ensureSegmentLocked makes sure an open, not-yet-full active segment
// is ready for the next append: reattach to the existing tail segment,
// or rotate to a fresh one.
func (l *Log) ensureSegmentLocked() error {
	if l.f != nil && l.segSize < l.mgr.opts.SegmentBytes {
		return nil
	}
	if l.f == nil && l.hasSegLocked(l.seg) && l.segSize < l.mgr.opts.SegmentBytes {
		f, err := l.mgr.fs.OpenAppend(l.segPath(l.seg))
		if err != nil {
			return fmt.Errorf("wal %s: reopening segment %d: %w", l.id, l.seg, err)
		}
		l.f = f
		return nil
	}
	return l.rotateLocked()
}

// rotateLocked closes the active segment and opens the next one,
// writing its meta record. On failure the log stays on no segment and
// the next append retries the rotation.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if l.dirty && l.policyLocked() != SyncOff {
			// The closing segment will never be written again; flush it now
			// or its tail would ride on the OS cache with no flusher handle.
			l.syncLocked()
		}
		l.f.Close()
		l.f = nil
		l.dirty = false
	}
	next := l.seg + 1
	path := l.segPath(next)
	f, err := l.mgr.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("wal %s: creating segment %d: %w", l.id, next, err)
	}
	l.buf = l.buf[:0]
	l.buf, err = appendMetaRecord(l.buf, l.id, next)
	if err == nil {
		var nw int
		nw, err = f.Write(l.buf)
		if err == nil && nw != len(l.buf) {
			err = fmt.Errorf("short write: %d of %d bytes", nw, len(l.buf))
		}
	}
	if err != nil {
		f.Close()
		l.mgr.fs.Remove(path)
		return fmt.Errorf("wal %s: opening segment %d: %w", l.id, next, err)
	}
	l.f = f
	l.seg = next
	l.segSize = int64(len(l.buf))
	l.segs = append(l.segs, next)
	l.sizes[next] = l.segSize
	l.mgr.met.segmentsCreated.Inc()
	// The meta record rides to disk with the first batch's fsync (same
	// file, same policy); under SyncInterval, mark it dirty now.
	if l.policyLocked() == SyncInterval {
		l.dirty = true
	}
	return nil
}

// TruncateThrough checkpoints the log: every record with sequence ≤ seq
// is covered by a committed snapshot and no longer needed for recovery.
// Fully covered non-active segments are deleted; when the whole log is
// covered it is reset (all segments deleted — the next append opens a
// fresh, higher-numbered segment). Errors are returned but the log
// stays usable: an undeleted segment only costs replay time.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || seq == 0 {
		return nil
	}
	if l.broken != nil {
		return l.broken
	}
	if !l.recovered {
		if _, _, err := l.scanLocked(false); err != nil {
			return err
		}
	}
	if len(l.segs) == 0 {
		return nil
	}
	l.mgr.met.truncations.Inc()
	if l.lastSeq <= seq {
		return l.resetLocked()
	}
	var firstErr error
	kept := l.segs[:0]
	for _, s := range l.segs {
		if s != l.seg {
			if max, ok := l.segMax[s]; ok && max <= seq {
				if err := l.mgr.fs.Remove(l.segPath(s)); err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("wal %s: removing checkpointed segment %d: %w", l.id, s, err)
					}
					kept = append(kept, s)
					continue
				}
				delete(l.segMax, s)
				delete(l.sizes, s)
				l.mgr.met.segmentsRemoved.Inc()
				continue
			}
		}
		kept = append(kept, s)
	}
	l.segs = kept
	return firstErr
}

// Reset discards the whole log on disk and in memory (keeping the
// segment high-water mark). Used by full checkpoints and point-in-time
// restores.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// A reset clears a wedged log too: the broken tail is deleted wholesale.
	l.broken = nil
	if !l.recovered {
		// Trust only the directory listing; in-memory state is unprimed.
		segs, err := listSegments(l.mgr.fs, l.dir)
		if err != nil {
			return fmt.Errorf("wal %s: reset: %w", l.id, err)
		}
		l.segs = segs
		if n := len(segs); n > 0 && segs[n-1] > l.seg {
			l.seg = segs[n-1]
		}
	}
	return l.resetLocked()
}

// resetLocked deletes every segment file and clears the in-memory state
// except the segment high-water mark.
func (l *Log) resetLocked() error {
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	var firstErr error
	for _, s := range l.segs {
		if err := l.mgr.fs.Remove(l.segPath(s)); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("wal %s: removing segment %d: %w", l.id, s, err)
			}
			continue
		}
		l.mgr.met.segmentsRemoved.Inc()
	}
	if firstErr != nil {
		return firstErr
	}
	l.segs = nil
	l.segMax = map[uint64]uint64{}
	l.sizes = map[uint64]int64{}
	l.segSize = 0
	l.lastSeq = 0
	l.dirty = false
	l.recovered = true
	return nil
}

// close flushes and closes the active segment.
func (l *Log) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	var err error
	if l.dirty && l.broken == nil && l.policyLocked() != SyncOff {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// LogStats is the per-workload WAL summary surfaced in /stats.
type LogStats struct {
	LastSeq   uint64
	Segments  int
	SizeBytes int64
	Broken    bool
}

// Stats reports the log's current shape.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LogStats{LastSeq: l.lastSeq, Segments: len(l.segs), Broken: l.broken != nil}
	for _, n := range l.sizes {
		st.SizeBytes += n
	}
	return st
}

func (l *Log) segPath(seg uint64) string {
	return filepath.Join(l.dir, segmentName(seg))
}

func (l *Log) hasSegLocked(seg uint64) bool {
	for _, s := range l.segs {
		if s == seg {
			return true
		}
	}
	return false
}

// segmentName formats a segment file name; the fixed width keeps
// lexical order equal to numeric order.
func segmentName(seg uint64) string {
	return fmt.Sprintf("%020d.rswal", seg)
}

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (uint64, bool) {
	if len(name) != 20+len(".rswal") || !strings.HasSuffix(name, ".rswal") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[:20], 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// listSegments returns the directory's segment numbers, sorted.
func listSegments(fsys FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		if n, ok := parseSegmentName(de.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// dirNameFor derives a workload's log directory name: a sanitized,
// human-recognizable prefix plus the full ID's FNV-64 for uniqueness
// (same scheme as internal/store's workload file names).
func dirNameFor(id string) string {
	return fmt.Sprintf("%s-%016x", sanitizeID(id), fnv1a(id))
}

// sanitizeID keeps a recognizable, filesystem-safe prefix of the ID.
func sanitizeID(id string) string {
	const maxLen = 40
	b := make([]byte, 0, maxLen)
	for i := 0; i < len(id) && len(b) < maxLen; i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	if len(b) == 0 {
		return "workload"
	}
	return string(b)
}

// fnv1a is the 64-bit FNV-1a hash.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
