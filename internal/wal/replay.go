package wal

// Replay and crash repair. A crash can leave the log with a torn final
// record (a write stopped mid-frame) or — under injected faults and
// dying disks — a corrupt one (bit flip, bad CRC). Recovery policy:
// the log is exactly its valid prefix. The scan walks segments in
// order, verifies every frame, and at the first bad record truncates
// the segment there and deletes every later segment (records are
// strictly ordered across segments, so nothing after the first bad
// offset can be trusted to be contiguous). A torn tail therefore never
// fails boot; it just shortens the log to what was durable. What DOES
// fail loudly: filesystem errors during the scan or repair (the log
// cannot be trusted if the repair didn't happen) and apply errors (a
// CRC-valid record the engine rejects means a bug, not bit rot — better
// to refuse boot than run with silently wrong history).

import (
	"fmt"
	"log"
)

// replayRec is one decoded batch record held between scan and apply.
type replayRec struct {
	seq uint64
	ts  []float64
}

// ReplayStats summarizes one replay/recovery pass.
type ReplayStats struct {
	// Segments scanned (before any drop), Records/Events successfully
	// decoded and kept.
	Segments int
	Records  int
	Events   int
	// Truncated reports the valid prefix ended before the physical end:
	// the log was cut at TruncatedSegment/TruncatedOffset for Reason,
	// dropping DroppedSegments later segments.
	Truncated        bool
	TruncatedSegment uint64
	TruncatedOffset  int64
	DroppedSegments  int
	Reason           string
}

// Replay feeds every durable batch record to apply in order, after
// repairing any crash damage (see the package comment on recovery
// policy). It is the boot path: snapshot restore first, then Replay on
// top. apply is called outside the log's lock (the engine's apply takes
// its own lock, which is also held when calling Append — holding both
// here would invert that order); an apply error aborts and is returned.
func (l *Log) Replay(apply func(seq uint64, ts []float64) error) (ReplayStats, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ReplayStats{}, ErrClosed
	}
	recs, stats, err := l.scanLocked(true)
	l.mu.Unlock()
	if err != nil {
		return stats, err
	}
	met := &l.mgr.met
	for _, r := range recs {
		if err := apply(r.seq, r.ts); err != nil {
			return stats, fmt.Errorf("wal %s: applying record seq %d: %w", l.id, r.seq, err)
		}
		met.replayRecords.Inc()
		met.replayEvents.Add(uint64(len(r.ts)))
	}
	return stats, nil
}

// scanLocked rebuilds the log's in-memory state from disk, repairing
// crash damage as it goes, and (when collect is set) returns the
// decoded batch records. It is the single source of truth for what "the
// valid prefix" means; the lazy recovery before a first append runs it
// with collect=false. Requires l.mu.
func (l *Log) scanLocked(collect bool) ([]replayRec, ReplayStats, error) {
	var stats ReplayStats
	if l.f != nil {
		l.f.Close()
		l.f = nil
		l.dirty = false
	}
	segs, err := listSegments(l.mgr.fs, l.dir)
	if err != nil {
		return nil, stats, fmt.Errorf("wal %s: scan: %w", l.id, err)
	}
	if n := len(segs); n > 0 && segs[n-1] > l.seg {
		l.seg = segs[n-1]
	}
	l.segs = segs
	l.segMax = map[uint64]uint64{}
	l.sizes = map[uint64]int64{}
	l.lastSeq = 0
	l.segSize = 0
	stats.Segments = len(segs)

	var recs []replayRec
	var lastSeq uint64
	for i, segNo := range segs {
		path := l.segPath(segNo)
		data, err := l.mgr.fs.ReadFile(path)
		if err != nil {
			return nil, stats, fmt.Errorf("wal %s: reading segment %d: %w", l.id, segNo, err)
		}
		valid := int64(0) // bytes of verified-good prefix in this segment
		bad := ""
		for bad == "" {
			rec, n, status, reason := decodeRecord(data[valid:])
			switch status {
			case decodeEOF:
				if valid == 0 {
					// A zero-length segment has no meta record, so an append
					// reattaching to it would violate the every-segment-opens-
					// with-meta invariant. Crash debris; cut it.
					bad = "empty segment (crash before the meta record)"
					continue
				}
				// segment fully consumed
			case decodeTorn:
				bad = fmt.Sprintf("torn record (%s)", reason)
			case decodeCorrupt:
				bad = fmt.Sprintf("corrupt record (%s)", reason)
			case decodeOK:
				switch {
				case valid == 0:
					// Every segment opens with its own meta record.
					if rec.typ != recordMeta {
						bad = "segment does not open with a meta record"
						continue
					}
					meta, merr := decodeMetaPayload(rec.payload)
					if merr != nil {
						bad = fmt.Sprintf("bad meta record: %v", merr)
						continue
					}
					if meta.Workload != l.id || meta.Segment != segNo {
						bad = fmt.Sprintf("meta record names workload %q segment %d, want %q segment %d",
							meta.Workload, meta.Segment, l.id, segNo)
						continue
					}
				case rec.typ != recordBatch:
					bad = "meta record past segment start"
					continue
				default:
					seq, ts, berr := decodeBatchPayload(rec.payload)
					if berr != nil {
						bad = fmt.Sprintf("bad batch record: %v", berr)
						continue
					}
					if seq <= lastSeq {
						bad = fmt.Sprintf("sequence went backwards: %d after %d", seq, lastSeq)
						continue
					}
					lastSeq = seq
					l.segMax[segNo] = seq
					stats.Records++
					stats.Events += len(ts)
					if collect {
						recs = append(recs, replayRec{seq: seq, ts: ts})
					}
				}
				valid += int64(n)
				continue
			}
			break
		}
		if bad == "" {
			l.sizes[segNo] = valid
			continue
		}
		// First bad record: the log ends here. Cut this segment at the
		// valid prefix (drop it entirely if even its meta is bad) and
		// delete everything after it.
		stats.Truncated = true
		stats.TruncatedSegment = segNo
		stats.TruncatedOffset = valid
		stats.Reason = bad
		log.Printf("wal %s: segment %d: %s at offset %d; truncating log here (dropping %d later segment(s))",
			l.id, segNo, bad, valid, len(segs)-i-1)
		if err := l.repairLocked(segs, i, valid, &stats); err != nil {
			return nil, stats, err
		}
		break
	}
	if n := len(l.segs); n > 0 {
		l.segSize = l.sizes[l.segs[n-1]]
	}
	// Drop segMax entries for segments the repair deleted, and recompute
	// lastSeq as the max surviving sequence (a truncation may have cut
	// records already counted into lastSeq).
	surviving := map[uint64]bool{}
	for _, s := range l.segs {
		surviving[s] = true
	}
	l.lastSeq = 0
	for s, max := range l.segMax {
		if !surviving[s] {
			delete(l.segMax, s)
			continue
		}
		if max > l.lastSeq {
			l.lastSeq = max
		}
	}
	l.recovered = true
	if stats.Truncated {
		l.mgr.met.replayTruncations.Inc()
	}
	return recs, stats, nil
}

// repairLocked executes the truncate-at-first-corruption decision: cut
// segment segs[i] to validLen bytes (remove it when nothing valid
// remains) and delete all later segments. A failing repair is returned
// as an error — boot must not proceed on a log whose bad tail is still
// on disk.
func (l *Log) repairLocked(segs []uint64, i int, validLen int64, stats *ReplayStats) error {
	segNo := segs[i]
	keep := segs[:i]
	if validLen > 0 {
		if err := l.mgr.fs.Truncate(l.segPath(segNo), validLen); err != nil {
			return fmt.Errorf("wal %s: truncating corrupt tail of segment %d: %w", l.id, segNo, err)
		}
		l.sizes[segNo] = validLen
		keep = segs[:i+1]
	} else {
		if err := l.mgr.fs.Remove(l.segPath(segNo)); err != nil {
			return fmt.Errorf("wal %s: removing corrupt segment %d: %w", l.id, segNo, err)
		}
		delete(l.sizes, segNo)
		l.mgr.met.segmentsRemoved.Inc()
	}
	for _, s := range segs[i+1:] {
		if err := l.mgr.fs.Remove(l.segPath(s)); err != nil {
			return fmt.Errorf("wal %s: removing post-corruption segment %d: %w", l.id, s, err)
		}
		delete(l.sizes, s)
		l.mgr.met.segmentsRemoved.Inc()
		stats.DroppedSegments++
	}
	l.segs = append([]uint64(nil), keep...)
	return nil
}
