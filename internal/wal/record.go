package wal

// On-disk record framing. A segment is a flat sequence of records, each
// carrying its own CRC so corruption is detected per record, not per
// file:
//
//	crc32  uint32 LE   IEEE CRC-32 of type||payload
//	len    uint32 LE   payload length in bytes
//	type   byte        recordMeta or recordBatch
//	payload [len]byte
//
// recordMeta opens every segment: a small JSON document naming the
// workload the segment belongs to, so boot can map log directories back
// to workload IDs without trusting directory names. recordBatch is one
// acknowledged ingest batch: the engine's per-workload batch sequence
// number (uint64 LE) followed by the batch's timestamps as little-endian
// float64s — the same wire shape internal/encode's binary ingest format
// uses.
//
// Decoding classifies failures into exactly two kinds: a torn tail
// (fewer bytes than the header or payload announce — the normal debris
// of a crash mid-append) and corruption (bad CRC, absurd length, unknown
// type, malformed payload). Replay treats both the same way — truncate
// the log at the first bad record — but the split is kept because the
// fault-injection tests assert each class is actually exercised.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
)

// Record types.
const (
	recordMeta  = byte(1)
	recordBatch = byte(2)
)

// recordHeaderLen is crc32 (4) + len (4) + type (1).
const recordHeaderLen = 9

// maxRecordPayload caps one record's payload (1 GiB). Far above any real
// batch (the HTTP layer caps ingest bodies well below it), and small
// enough that a bit-flipped length field reads as corruption instead of
// a monstrous allocation.
const maxRecordPayload = 1 << 30

// segMeta is the JSON payload of a recordMeta.
type segMeta struct {
	Workload string `json:"workload"`
	Segment  uint64 `json:"segment"`
}

// decoded is one successfully framed record.
type decoded struct {
	typ     byte
	payload []byte
}

// Decode outcomes.
type decodeStatus int

const (
	// decodeOK: a record was framed; consume its bytes and continue.
	decodeOK decodeStatus = iota
	// decodeEOF: the buffer is exactly exhausted.
	decodeEOF
	// decodeTorn: the buffer ends mid-record — a crash tail.
	decodeTorn
	// decodeCorrupt: the bytes are structurally broken (CRC mismatch,
	// absurd length, unknown type).
	decodeCorrupt
)

// decodeRecord frames the record at the front of data. On decodeOK, n is
// the total bytes the record occupies; on any other status n is 0 and
// reason (for the non-OK, non-EOF cases) says what was wrong.
func decodeRecord(data []byte) (rec decoded, n int, status decodeStatus, reason string) {
	if len(data) == 0 {
		return decoded{}, 0, decodeEOF, ""
	}
	if len(data) < recordHeaderLen {
		return decoded{}, 0, decodeTorn, fmt.Sprintf("%d trailing bytes, header needs %d", len(data), recordHeaderLen)
	}
	sum := binary.LittleEndian.Uint32(data[0:4])
	length := binary.LittleEndian.Uint32(data[4:8])
	if length > maxRecordPayload {
		return decoded{}, 0, decodeCorrupt, fmt.Sprintf("payload length %d exceeds cap %d", length, maxRecordPayload)
	}
	total := recordHeaderLen + int(length)
	if len(data) < total {
		return decoded{}, 0, decodeTorn, fmt.Sprintf("payload truncated: have %d of %d bytes", len(data)-recordHeaderLen, length)
	}
	framed := data[8:total] // type || payload
	if got := crc32.ChecksumIEEE(framed); got != sum {
		return decoded{}, 0, decodeCorrupt, fmt.Sprintf("crc mismatch: computed %08x, header %08x", got, sum)
	}
	typ := framed[0]
	if typ != recordMeta && typ != recordBatch {
		return decoded{}, 0, decodeCorrupt, fmt.Sprintf("unknown record type %d", typ)
	}
	return decoded{typ: typ, payload: framed[1:]}, total, decodeOK, ""
}

// appendRecord appends one framed record (header + payload) to dst.
func appendRecord(dst []byte, typ byte, payload []byte) []byte {
	var hdr [recordHeaderLen]byte
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[0:4], crc.Sum32())
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	hdr[8] = typ
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendBatchRecord frames one acknowledged ingest batch: seq, then the
// chunks' timestamps as little-endian float64s.
func appendBatchRecord(dst []byte, seq uint64, chunks [][]float64) []byte {
	n := 0
	for _, c := range chunks {
		n += len(c)
	}
	payload := make([]byte, 8+8*n)
	binary.LittleEndian.PutUint64(payload, seq)
	off := 8
	for _, c := range chunks {
		for _, v := range c {
			binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(v))
			off += 8
		}
	}
	return appendRecord(dst, recordBatch, payload)
}

// appendMetaRecord frames a segment-opening meta record.
func appendMetaRecord(dst []byte, workload string, segment uint64) ([]byte, error) {
	payload, err := json.Marshal(segMeta{Workload: workload, Segment: segment})
	if err != nil {
		return dst, err
	}
	return appendRecord(dst, recordMeta, payload), nil
}

// decodeBatchPayload unpacks a recordBatch payload. A CRC-valid batch
// can still be malformed only through an astronomically unlucky
// collision, but the check costs nothing and keeps garbage out of the
// engine.
func decodeBatchPayload(payload []byte) (seq uint64, ts []float64, err error) {
	if len(payload) < 8 || (len(payload)-8)%8 != 0 {
		return 0, nil, fmt.Errorf("batch payload length %d is not 8+8k", len(payload))
	}
	seq = binary.LittleEndian.Uint64(payload)
	n := (len(payload) - 8) / 8
	ts = make([]float64, n)
	for i := 0; i < n; i++ {
		ts[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8+8*i:]))
	}
	return seq, ts, nil
}

// decodeMetaPayload unpacks a recordMeta payload.
func decodeMetaPayload(payload []byte) (segMeta, error) {
	var m segMeta
	if err := json.Unmarshal(payload, &m); err != nil {
		return m, fmt.Errorf("meta payload: %w", err)
	}
	if m.Workload == "" {
		return m, fmt.Errorf("meta payload names no workload")
	}
	return m, nil
}
