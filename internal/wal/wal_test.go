package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testOpen opens a manager rooted in a fresh temp dir.
func testOpen(t *testing.T, opts Options) *Manager {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = filepath.Join(t.TempDir(), "wal")
	}
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func mustLog(t *testing.T, m *Manager, id string) *Log {
	t.Helper()
	l, err := m.Log(id)
	if err != nil {
		t.Fatalf("Log(%q): %v", id, err)
	}
	return l
}

func mustAppend(t *testing.T, l *Log, seq uint64, ts ...float64) {
	t.Helper()
	if err := l.Append(seq, [][]float64{ts}); err != nil {
		t.Fatalf("Append(seq=%d): %v", seq, err)
	}
}

// replayAll replays the log into a flat list.
func replayAll(t *testing.T, l *Log) ([]replayRec, ReplayStats) {
	t.Helper()
	var recs []replayRec
	stats, err := l.Replay(func(seq uint64, ts []float64) error {
		recs = append(recs, replayRec{seq: seq, ts: ts})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, stats
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"off", SyncOff}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted an unknown policy")
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir, Policy: SyncAlways})
	l := mustLog(t, m, "web")
	mustAppend(t, l, 1, 10, 11, 12)
	mustAppend(t, l, 2, 13)
	if err := l.Append(3, [][]float64{{14, 15}, {16}}); err != nil {
		t.Fatalf("chunked append: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2 := testOpen(t, Options{Dir: dir})
	recs, stats := replayAll(t, mustLog(t, m2, "web"))
	if len(recs) != 3 || stats.Records != 3 || stats.Events != 7 || stats.Truncated {
		t.Fatalf("replay got %d recs, stats %+v; want 3 records, 7 events, no truncation", len(recs), stats)
	}
	want := []replayRec{
		{1, []float64{10, 11, 12}},
		{2, []float64{13}},
		{3, []float64{14, 15, 16}},
	}
	for i, r := range recs {
		if r.seq != want[i].seq || len(r.ts) != len(want[i].ts) {
			t.Fatalf("rec %d = %+v, want %+v", i, r, want[i])
		}
		for j := range r.ts {
			if r.ts[j] != want[i].ts[j] {
				t.Fatalf("rec %d ts[%d] = %v, want %v", i, j, r.ts[j], want[i].ts[j])
			}
		}
	}
	// Replay is idempotent: a second pass yields the same records.
	recs2, _ := replayAll(t, mustLog(t, m2, "web"))
	if len(recs2) != 3 {
		t.Fatalf("second replay got %d records, want 3", len(recs2))
	}
	// And the log accepts appends after replay.
	mustAppend(t, mustLog(t, m2, "web"), 4, 17)
	recs3, _ := replayAll(t, mustLog(t, m2, "web"))
	if len(recs3) != 4 || recs3[3].seq != 4 {
		t.Fatalf("after post-replay append, replay got %+v", recs3)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir, Policy: SyncOff, SegmentBytes: 128})
	l := mustLog(t, m, "web")
	for i := 1; i <= 20; i++ {
		mustAppend(t, l, uint64(i), float64(i), float64(i)+0.5)
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	if st.LastSeq != 20 {
		t.Fatalf("LastSeq = %d, want 20", st.LastSeq)
	}
	m.Close()

	m2 := testOpen(t, Options{Dir: dir})
	recs, stats := replayAll(t, mustLog(t, m2, "web"))
	if len(recs) != 20 || stats.Truncated {
		t.Fatalf("replay across segments got %d records (stats %+v), want 20", len(recs), stats)
	}
	for i, r := range recs {
		if r.seq != uint64(i+1) {
			t.Fatalf("replay out of order: rec %d has seq %d", i, r.seq)
		}
	}
}

func TestTruncateThrough(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir, Policy: SyncOff, SegmentBytes: 128})
	l := mustLog(t, m, "web")
	for i := 1; i <= 20; i++ {
		mustAppend(t, l, uint64(i), float64(i), float64(i)+0.5)
	}
	before := l.Stats()

	// Partial checkpoint: old fully-covered segments go, the tail stays.
	if err := l.TruncateThrough(10); err != nil {
		t.Fatalf("TruncateThrough(10): %v", err)
	}
	mid := l.Stats()
	if mid.Segments >= before.Segments || mid.Segments == 0 {
		t.Fatalf("partial checkpoint: segments %d -> %d, want fewer but nonzero", before.Segments, mid.Segments)
	}
	recs, _ := replayAll(t, l)
	if len(recs) == 0 || recs[len(recs)-1].seq != 20 {
		t.Fatalf("after partial checkpoint, tail records missing: %+v", recs)
	}

	// Appending still works, and seqs stay contiguous from the engine's
	// point of view.
	mustAppend(t, l, 21, 99)

	// Full checkpoint: everything covered → log reset.
	if err := l.TruncateThrough(21); err != nil {
		t.Fatalf("TruncateThrough(21): %v", err)
	}
	if st := l.Stats(); st.Segments != 0 || st.SizeBytes != 0 {
		t.Fatalf("full checkpoint left %+v, want empty", st)
	}
	recs, _ = replayAll(t, l)
	if len(recs) != 0 {
		t.Fatalf("replay after full checkpoint got %d records, want 0", len(recs))
	}
	// Fresh appends after a reset land in a brand-new, higher segment.
	mustAppend(t, l, 22, 100)
	recs, _ = replayAll(t, l)
	if len(recs) != 1 || recs[0].seq != 22 {
		t.Fatalf("append after reset: replay got %+v", recs)
	}
}

// segFiles lists the workload's segment files, sorted.
func segFiles(t *testing.T, root, id string) []string {
	t.Helper()
	dir := filepath.Join(root, dirNameFor(id))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	var out []string
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), ".rswal") {
			out = append(out, filepath.Join(dir, de.Name()))
		}
	}
	return out
}

// buildLog writes a small healthy log (3 batches in one segment) and
// closes the manager, returning the segment path.
func buildLog(t *testing.T, dir string) string {
	t.Helper()
	m := testOpen(t, Options{Dir: dir, Policy: SyncAlways})
	l := mustLog(t, m, "web")
	mustAppend(t, l, 1, 10, 11)
	mustAppend(t, l, 2, 12)
	mustAppend(t, l, 3, 13, 14)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	files := segFiles(t, dir, "web")
	if len(files) != 1 {
		t.Fatalf("expected 1 segment, got %d", len(files))
	}
	return files[0]
}

// TestCorruptionCorpus is the table-driven torn-tail/truncation/bit-flip
// corpus: every fault either recovers by truncation at the first bad
// record or (for unreadable identity) resets — and never yields wrong
// records.
func TestCorruptionCorpus(t *testing.T) {
	// The healthy segment layout: meta record, then batches at seqs
	// 1 (2 events), 2 (1 event), 3 (2 events).
	type tc struct {
		name    string
		corrupt func(t *testing.T, data []byte) []byte
		// wantRecords: batch records expected to survive replay.
		wantRecords int
		// wantTruncated: replay reports a truncation repair.
		wantTruncated bool
	}
	// Record offsets within the built segment, computed from the framing.
	metaLen := func(data []byte) int {
		_, n, status, _ := decodeRecord(data)
		if status != decodeOK {
			t.Fatalf("corpus setup: meta record unreadable")
		}
		return n
	}
	recLen := func(events int) int { return recordHeaderLen + 8 + 8*events }

	cases := []tc{
		{
			name: "torn tail mid-payload",
			corrupt: func(t *testing.T, data []byte) []byte {
				return data[:len(data)-5]
			},
			wantRecords: 2, wantTruncated: true,
		},
		{
			name: "torn tail mid-header",
			corrupt: func(t *testing.T, data []byte) []byte {
				return data[:len(data)-recLen(2)+3]
			},
			wantRecords: 2, wantTruncated: true,
		},
		{
			name: "tail truncated exactly at a record boundary",
			corrupt: func(t *testing.T, data []byte) []byte {
				return data[:len(data)-recLen(2)]
			},
			wantRecords: 2, wantTruncated: false,
		},
		{
			name: "bit flip in last record payload",
			corrupt: func(t *testing.T, data []byte) []byte {
				data[len(data)-1] ^= 0x40
				return data
			},
			wantRecords: 2, wantTruncated: true,
		},
		{
			name: "bit flip in first batch record CRC",
			corrupt: func(t *testing.T, data []byte) []byte {
				data[metaLen(data)] ^= 0x01
				return data
			},
			wantRecords: 0, wantTruncated: true,
		},
		{
			name: "length field blown up",
			corrupt: func(t *testing.T, data []byte) []byte {
				off := metaLen(data) + 4 // length field of batch 1
				data[off], data[off+1], data[off+2], data[off+3] = 0xff, 0xff, 0xff, 0x7f
				return data
			},
			wantRecords: 0, wantTruncated: true,
		},
		{
			name: "unknown record type",
			corrupt: func(t *testing.T, data []byte) []byte {
				// Re-frame the middle record with a bogus type so the CRC is
				// valid but the type is not: decoder must reject it.
				off := metaLen(data) + recLen(2)
				good := data[:off]
				rest := data[off+recLen(1):]
				forged := appendRecord(nil, 0x7e, []byte("junk"))
				out := append(append(append([]byte{}, good...), forged...), rest...)
				return out
			},
			wantRecords: 1, wantTruncated: true,
		},
		{
			name: "meta record corrupted",
			corrupt: func(t *testing.T, data []byte) []byte {
				data[recordHeaderLen+2] ^= 0x20
				return data
			},
			wantRecords: 0, wantTruncated: true,
		},
		{
			name: "empty segment file",
			corrupt: func(t *testing.T, data []byte) []byte {
				return nil
			},
			wantRecords: 0, wantTruncated: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "wal")
			seg := buildLog(t, dir)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatalf("reading segment: %v", err)
			}
			if err := os.WriteFile(seg, tc.corrupt(t, append([]byte{}, data...)), 0o644); err != nil {
				t.Fatalf("writing corrupted segment: %v", err)
			}

			m := testOpen(t, Options{Dir: dir})
			recs, stats := replayAll(t, mustLog(t, m, "web"))
			if len(recs) != tc.wantRecords {
				t.Fatalf("replay got %d records (stats %+v), want %d", len(recs), stats, tc.wantRecords)
			}
			if stats.Truncated != tc.wantTruncated {
				t.Fatalf("Truncated = %v (reason %q), want %v", stats.Truncated, stats.Reason, tc.wantTruncated)
			}
			// Survivors must be the exact valid prefix.
			for i, r := range recs {
				if r.seq != uint64(i+1) {
					t.Fatalf("rec %d has seq %d, want %d", i, r.seq, i+1)
				}
			}
			// The log must accept appends after repair, and a fresh replay
			// must see prefix + new record with no gap in between.
			next := uint64(tc.wantRecords + 1)
			mustAppend(t, mustLog(t, m, "web"), next, 42)
			recs2, stats2 := replayAll(t, mustLog(t, m, "web"))
			if len(recs2) != tc.wantRecords+1 || stats2.Truncated {
				t.Fatalf("post-repair append: replay got %d records (stats %+v), want %d", len(recs2), stats2, tc.wantRecords+1)
			}
			if recs2[len(recs2)-1].seq != next {
				t.Fatalf("post-repair append seq = %d, want %d", recs2[len(recs2)-1].seq, next)
			}
		})
	}
}

func TestCorruptionInMiddleSegmentDropsLaterSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir, Policy: SyncOff, SegmentBytes: 128})
	l := mustLog(t, m, "web")
	for i := 1; i <= 20; i++ {
		mustAppend(t, l, uint64(i), float64(i), float64(i)+0.5)
	}
	m.Close()
	files := segFiles(t, dir, "web")
	if len(files) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(files))
	}
	// Flip a bit in the middle segment's tail.
	mid := files[len(files)/2]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x10
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := testOpen(t, Options{Dir: dir})
	recs, stats := replayAll(t, mustLog(t, m2, "web"))
	if !stats.Truncated || stats.DroppedSegments == 0 {
		t.Fatalf("expected truncation dropping later segments, got %+v", stats)
	}
	// Contiguous prefix only: seqs 1..len(recs), nothing after the cut.
	for i, r := range recs {
		if r.seq != uint64(i+1) {
			t.Fatalf("rec %d has seq %d — replay kept records past the corruption", i, r.seq)
		}
	}
	if len(recs) >= 20 {
		t.Fatalf("replay kept %d records despite mid-log corruption", len(recs))
	}
}

func TestFailedFsyncRollsBackAppend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	ffs := NewFaultFS(OSFS())
	m := testOpen(t, Options{Dir: dir, Policy: SyncAlways, FS: ffs})
	l := mustLog(t, m, "web")
	mustAppend(t, l, 1, 10)

	ffs.FailSyncs(errors.New("disk on fire"))
	err := l.Append(2, [][]float64{{11}})
	if err == nil {
		t.Fatal("Append succeeded under failing fsync; acknowledged durability would be a lie")
	}
	ffs.FailSyncs(nil)

	// The failed record must not be on disk: the same seq is reusable.
	mustAppend(t, l, 2, 12)
	m.Close()
	m2 := testOpen(t, Options{Dir: dir})
	recs, _ := replayAll(t, mustLog(t, m2, "web"))
	if len(recs) != 2 || recs[1].seq != 2 || recs[1].ts[0] != 12 {
		t.Fatalf("replay got %+v; the rolled-back append leaked or the retry vanished", recs)
	}
}

func TestFailedWriteRollsBack(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	ffs := NewFaultFS(OSFS())
	m := testOpen(t, Options{Dir: dir, Policy: SyncOff, FS: ffs})
	l := mustLog(t, m, "web")
	mustAppend(t, l, 1, 10)

	// Partial write + surfaced error: rollback must erase the torn bytes.
	ffs.TearNextWrite(7)
	ffs.FailWrites(errors.New("io error"))
	if err := l.Append(2, [][]float64{{11}}); err == nil {
		t.Fatal("Append succeeded under failing write")
	}
	ffs.FailWrites(nil)
	mustAppend(t, l, 2, 12)
	m.Close()

	m2 := testOpen(t, Options{Dir: dir})
	recs, stats := replayAll(t, mustLog(t, m2, "web"))
	if stats.Truncated {
		t.Fatalf("rollback left a torn record for replay to repair: %+v", stats)
	}
	if len(recs) != 2 || recs[1].ts[0] != 12 {
		t.Fatalf("replay got %+v", recs)
	}
}

func TestRollbackFailureWedgesLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	ffs := NewFaultFS(OSFS())
	m := testOpen(t, Options{Dir: dir, Policy: SyncAlways, FS: ffs})
	l := mustLog(t, m, "web")
	mustAppend(t, l, 1, 10)

	// Fsync fails AND the rollback truncate fails: the log must wedge
	// rather than leave a maybe-written record whose seq will be reused.
	ffs.FailSyncs(errors.New("disk on fire"))
	ffs.FailTruncates(errors.New("truncate broken too"))
	if err := l.Append(2, [][]float64{{11}}); err == nil {
		t.Fatal("Append succeeded under failing fsync")
	}
	ffs.FailSyncs(nil)
	ffs.FailTruncates(nil)
	err := l.Append(2, [][]float64{{12}})
	if err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("append on a wedged log: err = %v, want sticky wedged error", err)
	}

	// Restart recovers. The wedged record's write DID land before its
	// fsync failed, so replay surfaces it: an errored append is
	// indeterminate (at-least-once), which is the standard WAL contract.
	// What the wedge must prevent is the fatal variant — a LATER append
	// reusing seq 2 with different data, which replay would read as
	// sequence corruption and truncate acknowledged records for.
	m.Close()
	m2 := testOpen(t, Options{Dir: dir})
	l2 := mustLog(t, m2, "web")
	recs, stats := replayAll(t, l2)
	if stats.Truncated {
		t.Fatalf("unexpected truncation after wedge-restart: %+v", stats)
	}
	if len(recs) < 1 || recs[0].seq != 1 || (len(recs) == 2 && recs[1].ts[0] != 11) || len(recs) > 2 {
		t.Fatalf("replay after wedge-restart got %+v", recs)
	}
	mustAppend(t, l2, uint64(len(recs)+1), 13)
}

func TestSilentTornWriteRepairedOnRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	ffs := NewFaultFS(OSFS())
	m := testOpen(t, Options{Dir: dir, Policy: SyncOff, FS: ffs})
	l := mustLog(t, m, "web")
	mustAppend(t, l, 1, 10)
	mustAppend(t, l, 2, 11)
	// The machine dies mid-write: only 5 bytes of the record land, but
	// the writer never learns (kill -9 semantics). No clean close.
	ffs.TearNextWrite(5)
	mustAppend(t, l, 3, 12)

	m2 := testOpen(t, Options{Dir: dir})
	recs, stats := replayAll(t, mustLog(t, m2, "web"))
	if !stats.Truncated {
		t.Fatalf("torn tail not detected: %+v", stats)
	}
	if len(recs) != 2 || recs[1].seq != 2 {
		t.Fatalf("replay got %+v, want exactly the two durable records", recs)
	}
}

func TestScanWorkloads(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir, Policy: SyncAlways})
	for _, id := range []string{"web", "api", "weird/id with spaces"} {
		mustAppend(t, mustLog(t, m, id), 1, 10)
	}
	m.Close()

	m2 := testOpen(t, Options{Dir: dir})
	ids, reset, err := m2.ScanWorkloads()
	if err != nil {
		t.Fatalf("ScanWorkloads: %v", err)
	}
	if reset != 0 || len(ids) != 3 {
		t.Fatalf("ScanWorkloads = %v (reset %d), want 3 ids", ids, reset)
	}
	want := map[string]bool{"web": true, "api": true, "weird/id with spaces": true}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected workload %q", id)
		}
	}
}

func TestScanWorkloadsResetsUnidentifiableDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir, Policy: SyncAlways})
	mustAppend(t, mustLog(t, m, "web"), 1, 10)
	mustAppend(t, mustLog(t, m, "api"), 1, 10)
	m.Close()

	// Corrupt web's opening meta record: the directory's identity is gone.
	seg := segFiles(t, dir, "web")[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeaderLen] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := testOpen(t, Options{Dir: dir})
	ids, reset, err := m2.ScanWorkloads()
	if err != nil {
		t.Fatalf("ScanWorkloads: %v", err)
	}
	if reset != 1 || len(ids) != 1 || ids[0] != "api" {
		t.Fatalf("ScanWorkloads = %v (reset %d), want just api with 1 reset", ids, reset)
	}
	if files := segFiles(t, dir, "web"); len(files) != 0 {
		t.Fatalf("unidentifiable dir not reset: %v", files)
	}
}

func TestRemoveDeletesLogDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir, Policy: SyncAlways})
	mustAppend(t, mustLog(t, m, "web"), 1, 10)
	if err := m.Remove("web"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, dirNameFor("web"))); !os.IsNotExist(err) {
		t.Fatalf("log dir survived Remove: %v", err)
	}
	// The workload can come back with a fresh log.
	mustAppend(t, mustLog(t, m, "web"), 1, 20)
	recs, _ := replayAll(t, mustLog(t, m, "web"))
	if len(recs) != 1 || recs[0].ts[0] != 20 {
		t.Fatalf("recreated log replay = %+v", recs)
	}
}

func TestResetAllWipesEverything(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir, Policy: SyncAlways})
	mustAppend(t, mustLog(t, m, "web"), 1, 10)
	m.Close()

	// Reopen: "web" exists only on disk, not cached; plus one cached log.
	m2 := testOpen(t, Options{Dir: dir, Policy: SyncAlways})
	mustAppend(t, mustLog(t, m2, "api"), 1, 10)
	if err := m2.ResetAll(); err != nil {
		t.Fatalf("ResetAll: %v", err)
	}
	ids, _, err := m2.ScanWorkloads()
	if err != nil || len(ids) != 0 {
		t.Fatalf("after ResetAll, ScanWorkloads = %v, %v; want none", ids, err)
	}
	recs, _ := replayAll(t, mustLog(t, m2, "api"))
	if len(recs) != 0 {
		t.Fatalf("cached log not reset: %+v", recs)
	}
}

func TestIntervalPolicyFlushes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir, Policy: SyncInterval, Interval: 5 * time.Millisecond})
	l := mustLog(t, m, "web")
	mustAppend(t, l, 1, 10)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if m.met.fsyncs.Value() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never synced a dirty log")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPerLogPolicyOverride(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir, Policy: SyncOff})
	l := mustLog(t, m, "web")
	l.SetSyncPolicy(SyncAlways)
	mustAppend(t, l, 1, 10)
	if got := m.met.fsyncs.Value(); got == 0 {
		t.Fatal("per-log SyncAlways override did not fsync")
	}
	before := m.met.fsyncs.Value()
	l.ClearSyncPolicy()
	mustAppend(t, l, 2, 11)
	if got := m.met.fsyncs.Value(); got != before {
		t.Fatalf("after ClearSyncPolicy, fsyncs moved %d -> %d under SyncOff", before, got)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir})
	l := mustLog(t, m, "web")
	mustAppend(t, l, 1, 10)
	m.Close()
	if err := l.Append(2, [][]float64{{11}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: err = %v, want ErrClosed", err)
	}
	if _, err := m.Log("other"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Log after Close: err = %v, want ErrClosed", err)
	}
}

func TestDirNameDeterministicAndSafe(t *testing.T) {
	a := dirNameFor("web/../../etc")
	if strings.ContainsAny(a, "/\\") || a == "." || a == ".." {
		t.Fatalf("dirNameFor produced unsafe name %q", a)
	}
	if a != dirNameFor("web/../../etc") {
		t.Fatal("dirNameFor not deterministic")
	}
	if dirNameFor("a") == dirNameFor("b") {
		t.Fatal("dirNameFor collided on distinct ids")
	}
}

func TestReplayApplyErrorAborts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	seg := buildLog(t, dir)
	_ = seg
	m := testOpen(t, Options{Dir: dir})
	l := mustLog(t, m, "web")
	boom := errors.New("engine rejected record")
	calls := 0
	_, err := l.Replay(func(seq uint64, ts []float64) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Replay err = %v, want the apply error surfaced", err)
	}
	if calls != 2 {
		t.Fatalf("apply called %d times, want abort right after the failure", calls)
	}
}

func TestStatsShape(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir, Policy: SyncOff, SegmentBytes: 128})
	l := mustLog(t, m, "web")
	for i := 1; i <= 10; i++ {
		mustAppend(t, l, uint64(i), float64(i))
	}
	st := l.Stats()
	if st.LastSeq != 10 || st.Segments == 0 || st.SizeBytes == 0 || st.Broken {
		t.Fatalf("Stats = %+v", st)
	}
	var total int64
	for _, f := range segFiles(t, dir, "web") {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	if st.SizeBytes != total {
		t.Fatalf("Stats.SizeBytes = %d, on-disk total = %d", st.SizeBytes, total)
	}
}

func TestManagerMetricsMove(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	m := testOpen(t, Options{Dir: dir, Policy: SyncAlways})
	l := mustLog(t, m, "web")
	mustAppend(t, l, 1, 10, 11, 12)
	if got := m.met.appends.Value(); got != 1 {
		t.Fatalf("appends = %d, want 1", got)
	}
	if got := m.met.appendEvents.Value(); got != 3 {
		t.Fatalf("appendEvents = %d, want 3", got)
	}
	if m.met.appendBytes.Value() == 0 || m.met.fsyncs.Value() == 0 || m.met.segmentsCreated.Value() == 0 {
		t.Fatalf("metrics stuck at zero: %+v", fmt.Sprintf("bytes=%d fsyncs=%d segs=%d",
			m.met.appendBytes.Value(), m.met.fsyncs.Value(), m.met.segmentsCreated.Value()))
	}
}
