package wal

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the record decoder — the
// exact code replay uses to walk a crashed segment — and checks the
// invariants recovery depends on: no panics, monotone progress, n never
// exceeding the buffer, and (via re-encoding) that every accepted
// record is byte-identical to what the writer would have produced for
// its content. Regression seeds live in testdata/fuzz/FuzzWALDecode.
func FuzzWALDecode(f *testing.F) {
	// A healthy two-record stream: segment meta, then a batch.
	var healthy []byte
	healthy, _ = appendMetaRecord(healthy, "web", 1)
	healthy = appendBatchRecord(healthy, 1, [][]float64{{10.5, 11}, {12}})
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-5]) // torn tail
	f.Add(healthy[:3])              // torn header
	f.Add([]byte{})
	flipped := append([]byte{}, healthy...)
	flipped[len(flipped)-2] ^= 0x08
	f.Add(flipped) // bit flip in the last payload
	big := append([]byte{}, healthy...)
	binary.LittleEndian.PutUint32(big[4:8], 0xffffffff)
	f.Add(big) // absurd length field
	f.Add(appendRecord(nil, 0x7f, []byte("unknown type, valid crc")))
	f.Add(appendBatchRecord(nil, math.MaxUint64, [][]float64{{math.Inf(1), math.NaN()}}))
	f.Add(appendRecord(nil, recordBatch, []byte{1, 2, 3})) // batch payload not 8+8k

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for {
			rec, n, status, reason := decodeRecord(data[off:])
			switch status {
			case decodeOK:
				if n < recordHeaderLen || off+n > len(data) {
					t.Fatalf("decodeOK with n=%d at off=%d of %d bytes", n, off, len(data))
				}
				// Round-trip oracle: re-encoding the accepted record must
				// reproduce the accepted bytes exactly (the CRC and length
				// are functions of type+payload alone).
				if re := appendRecord(nil, rec.typ, rec.payload); !bytes.Equal(re, data[off:off+n]) {
					t.Fatalf("re-encode mismatch at off=%d", off)
				}
				switch rec.typ {
				case recordBatch:
					seq, ts, err := decodeBatchPayload(rec.payload)
					if err == nil {
						// Payload round trip through the writer.
						chunks := [][]float64{ts}
						re := appendBatchRecord(nil, seq, chunks)
						if !bytes.Equal(re, data[off:off+n]) {
							t.Fatalf("batch re-encode mismatch at off=%d", off)
						}
					} else if (len(rec.payload)-8)%8 == 0 && len(rec.payload) >= 8 {
						t.Fatalf("well-shaped batch payload rejected: %v", err)
					}
				case recordMeta:
					// Meta payloads are JSON; the decoder may reject them, but
					// must not panic (exercised by the call).
					decodeMetaPayload(rec.payload)
				default:
					t.Fatalf("decodeOK accepted unknown type %d", rec.typ)
				}
				off += n
				continue
			case decodeEOF:
				if off != len(data) {
					t.Fatalf("decodeEOF with %d bytes left", len(data)-off)
				}
			case decodeTorn, decodeCorrupt:
				if n != 0 {
					t.Fatalf("non-OK status with n=%d", n)
				}
				if reason == "" {
					t.Fatalf("status %d with empty reason", status)
				}
			default:
				t.Fatalf("unknown status %d", status)
			}
			return
		}
	})
}
