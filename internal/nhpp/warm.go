package nhpp

// Warm-started refits. The serving engine refits each workload's model
// on a cadence, and between consecutive refits the training window
// barely moves: a few new bins on the right, a few trimmed on the left.
// The previous ADMM solution is therefore an excellent starting point —
// the objective is strictly convex (Δt·diag(e^r) plus PSD penalties), so
// warm and cold starts converge to the same unique optimum, and starting
// near it cuts the iteration count by an order of magnitude. WarmState
// captures everything a restart needs: the primal iterate, both slack
// vectors and both duals, plus the grid and penalty parameters that
// decide whether the solution is transferable at all.

import (
	"math"

	"robustscaler/internal/linalg"
)

// WarmState is a completed fit's ADMM solution, reusable as the starting
// point of the next fit over a compatible window. It is immutable after
// creation (FitWarm only reads it), so one WarmState may seed concurrent
// refits. Obtain it from Model.WarmState; restored models carry none
// (the duals are not persisted), so the first refit after a process
// restart runs cold.
type WarmState struct {
	// Start and Dt locate the solution's bin grid in absolute time. A new
	// window may slide along this grid (any whole-bin offset), but a bin
	// width or phase change makes the solution non-transferable.
	Start, Dt float64
	// Period, Beta1, Beta2 and Rho pin the objective the solution solves.
	// Any mismatch — a different detected period, retuned penalties, a
	// different (normalized) ADMM step — forces a cold start: duals of a
	// different objective are not a descent direction for this one.
	Period            int
	Beta1, Beta2, Rho float64
	// R is the primal log-intensity, Y/NuY the D2 slack and dual, Z/NuZ
	// the DL slack and dual (empty when the fit had no DL term).
	R, Y, NuY, Z, NuZ []float64
}

// offsetFor reports whether the warm state can seed a fit on the given
// grid and objective, and the whole-bin offset of the new window's first
// bin on the warm grid. cfg must already be normalized (Rho resolved).
func (w *WarmState) offsetFor(start, dt float64, cfg FitConfig, period int) (int, bool) {
	if w == nil || len(w.R) == 0 || dt <= 0 {
		return 0, false
	}
	if w.Dt != dt || w.Period != period ||
		w.Beta1 != cfg.Beta1 || w.Beta2 != cfg.Beta2 || w.Rho != cfg.Rho {
		return 0, false
	}
	off := (start - w.Start) / dt
	rounded := math.Round(off)
	if math.Abs(off-rounded) > 1e-6*math.Max(1, math.Abs(rounded)) || math.Abs(rounded) > 1e12 {
		return 0, false // off-grid start or absurd shift: cold
	}
	return int(rounded), true
}

// logRateAt returns the warm solution's log intensity at bin idx of its
// own grid, extrapolated beyond its ends the same way Model extrapolates
// (first bin to the left, periodically or last bin to the right).
func (w *WarmState) logRateAt(idx int) float64 {
	t := len(w.R)
	switch {
	case idx < 0:
		return w.R[0]
	case idx < t:
		return w.R[idx]
	case w.Period > 0:
		return w.R[t-w.Period+(idx-t)%w.Period]
	default:
		return w.R[t-1]
	}
}

// seed initializes a fit's iterates from the warm solution: bin i of the
// new window is bin i+off of the warm grid. Rows of the difference
// operators shift by the same offset; rows that fall outside the warm
// solution (new bins on either edge) get consistent slack (the operator
// applied to the seeded r) and a zero dual.
func (w *WarmState) seed(off int, r, y, nuY, z, nuZ linalg.Vector, period int) {
	for i := range r {
		v := w.logRateAt(i + off)
		if v > logRateClamp {
			v = logRateClamp
		} else if v < -logRateClamp {
			v = -logRateClamp
		}
		r[i] = v
	}
	for j := range y {
		if k := j + off; k >= 0 && k < len(w.Y) {
			y[j], nuY[j] = w.Y[k], w.NuY[k]
		} else {
			y[j], nuY[j] = r[j]-2*r[j+1]+r[j+2], 0
		}
	}
	for j := range z {
		if k := j + off; k >= 0 && k < len(w.Z) {
			z[j], nuZ[j] = w.Z[k], w.NuZ[k]
		} else {
			z[j], nuZ[j] = r[j]-r[j+period], 0
		}
	}
}
