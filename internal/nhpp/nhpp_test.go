package nhpp

import (
	"math"
	"math/rand"
	"testing"

	"robustscaler/internal/stats"
	"robustscaler/internal/timeseries"
)

func TestConstantIntensity(t *testing.T) {
	c := Constant{Lambda: 2}
	if c.Rate(99) != 2 {
		t.Fatal("Rate wrong")
	}
	if got := c.Integral(1, 4); got != 6 {
		t.Fatalf("Integral = %g, want 6", got)
	}
	u, ok := c.InverseIntegral(10, 6)
	if !ok || u != 13 {
		t.Fatalf("InverseIntegral = %g,%v, want 13,true", u, ok)
	}
	if _, ok := (Constant{}).InverseIntegral(0, 1); ok {
		t.Fatal("zero-rate InverseIntegral should fail")
	}
	if u, ok := c.InverseIntegral(5, 0); !ok || u != 5 {
		t.Fatal("zero-mass InverseIntegral should return from")
	}
}

func TestFuncIntensityIntegralAccuracy(t *testing.T) {
	f := Func{F: func(t float64) float64 { return 2 * t }, Step: 0.01, MaxHorizon: 1e6}
	got := f.Integral(0, 10) // ∫2t = 100
	if math.Abs(got-100) > 0.01 {
		t.Fatalf("Integral = %g, want 100", got)
	}
	u, ok := f.InverseIntegral(0, 100)
	if !ok || math.Abs(u-10) > 0.01 {
		t.Fatalf("InverseIntegral = %g,%v, want 10,true", u, ok)
	}
}

func TestFuncIntensityUnreachableMass(t *testing.T) {
	f := Func{F: func(t float64) float64 { return 0 }, Step: 1, MaxHorizon: 100}
	if _, ok := f.InverseIntegral(0, 1); ok {
		t.Fatal("unreachable mass should return false")
	}
}

func TestModelIntegralInverseRoundTrip(t *testing.T) {
	r := []float64{math.Log(1), math.Log(2), math.Log(4), math.Log(1)}
	m := NewModel(0, 10, r, 0)
	// Λ(0,40) = 10·(1+2+4+1) = 80.
	if got := m.Integral(0, 40); math.Abs(got-80) > 1e-9 {
		t.Fatalf("Integral = %g, want 80", got)
	}
	// Partial bins: Λ(5, 15) = 5·1 + 5·2 = 15.
	if got := m.Integral(5, 15); math.Abs(got-15) > 1e-9 {
		t.Fatalf("partial Integral = %g, want 15", got)
	}
	for _, mass := range []float64{0.5, 3, 17, 42, 79} {
		u, ok := m.InverseIntegral(0, mass)
		if !ok {
			t.Fatalf("mass %g unreachable", mass)
		}
		back := m.Integral(0, u)
		if math.Abs(back-mass) > 1e-8 {
			t.Fatalf("round trip mass %g gave %g", mass, back)
		}
	}
}

func TestModelPeriodicExtrapolation(t *testing.T) {
	// Two periods of [log1, log3] then extrapolate.
	r := []float64{0, math.Log(3), 0, math.Log(3)}
	m := NewModel(0, 1, r, 2)
	if got := m.Rate(4.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("extrapolated Rate(4.5) = %g, want 1", got)
	}
	if got := m.Rate(5.5); math.Abs(got-3) > 1e-12 {
		t.Fatalf("extrapolated Rate(5.5) = %g, want 3", got)
	}
	// Far future stays periodic.
	if got := m.Rate(101.5); math.Abs(got-3) > 1e-12 {
		t.Fatalf("far extrapolated Rate = %g, want 3", got)
	}
}

func TestModelAperiodicExtrapolationHoldsTailLevel(t *testing.T) {
	r := make([]float64, 100)
	for i := range r {
		r[i] = math.Log(5)
	}
	m := NewModel(0, 1, r, 0)
	if got := m.Rate(1e6); math.Abs(got-5) > 1e-9 {
		t.Fatalf("tail extrapolation = %g, want 5", got)
	}
}

func TestModelMaxRate(t *testing.T) {
	r := []float64{0, math.Log(7), math.Log(2)}
	m := NewModel(0, 1, r, 0)
	if got := m.MaxRate(0, 2.9); math.Abs(got-7) > 1e-12 {
		t.Fatalf("MaxRate = %g, want 7", got)
	}
}

func TestSimulateHomogeneousCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	arr := Simulate(rng, Constant{Lambda: 3}, 0, 1000)
	mean := float64(len(arr)) / 1000
	if math.Abs(mean-3) > 0.2 {
		t.Fatalf("simulated rate %g, want 3", mean)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] <= arr[i-1] {
			t.Fatal("arrivals not strictly increasing")
		}
	}
}

func TestSimulateTimeRescaling(t *testing.T) {
	// For any NHPP, Λ(ξ_i) − Λ(ξ_{i−1}) must be i.i.d. Exp(1).
	rng := rand.New(rand.NewSource(2))
	r := []float64{math.Log(0.5), math.Log(4), math.Log(1), math.Log(8)}
	m := NewModel(0, 50, r, 4)
	arr := Simulate(rng, m, 0, 20000)
	if len(arr) < 1000 {
		t.Fatalf("too few arrivals: %d", len(arr))
	}
	prev := 0.0
	var gaps []float64
	for _, a := range arr {
		gaps = append(gaps, m.Integral(0, a)-prev)
		prev = m.Integral(0, a)
	}
	if m := stats.Mean(gaps); math.Abs(m-1) > 0.05 {
		t.Fatalf("rescaled gap mean %g, want 1", m)
	}
	if v := stats.Variance(gaps); math.Abs(v-1) > 0.15 {
		t.Fatalf("rescaled gap variance %g, want 1", v)
	}
}

func TestFitConstantIntensityRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const (
		lambda = 2.5
		dt     = 60.0
		n      = 500
	)
	q := make([]float64, n)
	for i := range q {
		q[i] = float64(stats.Poisson{Lambda: lambda * dt}.Sample(rng))
	}
	cfg := DefaultFitConfig()
	cfg.Beta1 = 50 // smoothing weight proportionate to ~150 counts/bin
	m, st, err := Fit(0, dt, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("ADMM did not converge in %d iterations (step %g)", st.Iterations, st.FinalStepNorm)
	}
	lam := m.IntensitySeries()
	if mean := stats.Mean(lam); math.Abs(mean-lambda) > 0.1 {
		t.Fatalf("mean intensity %g, want ≈%g", mean, lambda)
	}
	// Interior bins (edges get less smoothing from the D2 penalty).
	for i := 5; i < n-5; i++ {
		if math.Abs(lam[i]-lambda) > 0.35 {
			t.Fatalf("bin %d intensity %g, want ≈%g", i, lam[i], lambda)
		}
	}
}

func TestFitOutlierDoesNotCorruptNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const (
		lambda = 1.0
		dt     = 60.0
		n      = 300
	)
	q := make([]float64, n)
	for i := range q {
		q[i] = float64(stats.Poisson{Lambda: lambda * dt}.Sample(rng))
	}
	q[150] = 4000 // single massive outlier bin
	m, _, err := Fit(0, dt, q, DefaultFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	lam := m.IntensitySeries()
	// The L1 trend penalty admits sparse kinks, so the spike itself is
	// tracked by the likelihood — but it must not leak into bins a few
	// steps away.
	for _, i := range []int{140, 145, 155, 160} {
		if lam[i] > 3*lambda {
			t.Fatalf("bin %d intensity %g contaminated by outlier", i, lam[i])
		}
	}
}

// In the full pipeline, outliers are winsorized before fitting (the robust
// decomposition role); after clipping, the fitted intensity at the outlier
// bin must stay near the base rate.
func TestFitAfterWinsorizeSmoothsOutlier(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const (
		lambda = 1.0
		dt     = 60.0
		n      = 300
	)
	s := timeseries.New(0, dt, n)
	for i := range s.Values {
		s.Values[i] = float64(stats.Poisson{Lambda: lambda * dt}.Sample(rng))
	}
	s.Values[150] = 4000
	s.WinsorizeMAD(6)
	m, _, err := Fit(0, dt, s.Values, DefaultFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	if lam := m.IntensitySeries()[150]; lam > 3*lambda {
		t.Fatalf("winsorized outlier bin intensity %g, want ≤ %g", lam, 3*lambda)
	}
}

// The paper's Table III ablation in miniature: with a periodic ground
// truth, the periodicity penalty must reduce intensity MSE.
func TestFitPeriodicityRegularizationImprovesMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const (
		dt     = 60.0
		period = 100
		n      = 800
	)
	truth := make([]float64, n)
	q := make([]float64, n)
	for i := range q {
		truth[i] = 1.5 + 1.4*math.Sin(2*math.Pi*float64(i)/period)
		q[i] = float64(stats.Poisson{Lambda: truth[i] * dt}.Sample(rng))
	}
	base := DefaultFitConfig()
	base.Period = 0
	mNo, _, err := Fit(0, dt, q, base)
	if err != nil {
		t.Fatal(err)
	}
	withP := DefaultFitConfig()
	withP.Period = period
	mYes, _, err := Fit(0, dt, q, withP)
	if err != nil {
		t.Fatal(err)
	}
	mseNo := stats.MSE(mNo.IntensitySeries(), truth)
	mseYes := stats.MSE(mYes.IntensitySeries(), truth)
	if mseYes >= mseNo {
		t.Fatalf("periodicity regularization did not help: %g vs %g", mseYes, mseNo)
	}
}

func TestFitLossDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const dt = 60.0
	q := make([]float64, 200)
	for i := range q {
		q[i] = float64(stats.Poisson{Lambda: (1 + math.Sin(float64(i)/10)) * dt}.Sample(rng))
	}
	cfg := DefaultFitConfig()
	cfg.Period = 63
	m, st, err := Fit(0, dt, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Loss at the solution must beat the naive per-bin MLE start.
	r0 := make([]float64, len(q))
	for i := range r0 {
		r0[i] = math.Log((q[i] + 0.1) / dt)
	}
	if st.FinalLoss >= Loss(r0, q, dt, cfg)+1e-6 {
		t.Fatalf("final loss %g worse than init %g", st.FinalLoss, Loss(r0, q, dt, cfg))
	}
	_ = m
}

func TestFitInputValidation(t *testing.T) {
	if _, _, err := Fit(0, 60, nil, DefaultFitConfig()); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, _, err := Fit(0, 0, []float64{1}, DefaultFitConfig()); err == nil {
		t.Fatal("zero dt accepted")
	}
	if _, _, err := Fit(0, 60, []float64{1, -2}, DefaultFitConfig()); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestFitZeroCountsSeries(t *testing.T) {
	// All-zero traffic must fit without blowing up (log-intensity floor).
	q := make([]float64, 50)
	m, _, err := Fit(0, 60, q, DefaultFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, lam := range m.IntensitySeries() {
		if lam > 0.01 {
			t.Fatalf("zero-traffic intensity %g too high", lam)
		}
	}
}

func TestFitShortSeriesNoD2(t *testing.T) {
	// T=2: the D2 operator is empty; the fit must still work.
	m, _, err := Fit(0, 60, []float64{5, 7}, DefaultFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.R) != 2 {
		t.Fatal("wrong model size")
	}
}

func TestLossMatchesManualComputation(t *testing.T) {
	r := []float64{0, 0.1, -0.2, 0.3}
	q := []float64{1, 2, 0, 1}
	dt := 2.0
	cfg := FitConfig{Beta1: 0.5, Beta2: 1.5, Period: 2}
	var want float64
	for i := range r {
		want += -q[i]*r[i] + dt*math.Exp(r[i])
	}
	d2a := r[0] - 2*r[1] + r[2]
	d2b := r[1] - 2*r[2] + r[3]
	want += 0.5 * (math.Abs(d2a) + math.Abs(d2b))
	dla := r[0] - r[2]
	dlb := r[1] - r[3]
	want += 1.5 / 2 * (dla*dla + dlb*dlb)
	got := Loss(r, q, dt, cfg)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Loss = %g, want %g", got, want)
	}
}

// CG and banded solvers must agree on the fitted intensity.
func TestFitCGMatchesBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const (
		dt     = 60.0
		period = 50
		n      = 400
	)
	q := make([]float64, n)
	for i := range q {
		lam := 1 + 0.8*math.Sin(2*math.Pi*float64(i)/period)
		q[i] = float64(stats.Poisson{Lambda: lam * dt}.Sample(rng))
	}
	cfgB := DefaultFitConfig()
	cfgB.Period = period
	cfgB.Solver = SolverBanded
	mB, _, err := Fit(0, dt, q, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	cfgC := cfgB
	cfgC.Solver = SolverCG
	mC, _, err := Fit(0, dt, q, cfgC)
	if err != nil {
		t.Fatal(err)
	}
	lb, lc := mB.IntensitySeries(), mC.IntensitySeries()
	for i := range lb {
		if math.Abs(lb[i]-lc[i]) > 1e-3*(1+lb[i]) {
			t.Fatalf("bin %d: banded %g vs CG %g", i, lb[i], lc[i])
		}
	}
}

// A week of minute bins with a daily period (L=1440) must train in
// reasonable time via the auto-selected CG path.
func TestFitLargePeriodUsesCGAndConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const (
		dt     = 60.0
		period = 1440 // one day of minutes
		n      = 7 * 1440
	)
	q := make([]float64, n)
	truth := make([]float64, n)
	for i := range q {
		truth[i] = 0.4 + 0.35*math.Sin(2*math.Pi*float64(i)/period)
		q[i] = float64(stats.Poisson{Lambda: truth[i] * dt}.Sample(rng))
	}
	cfg := DefaultFitConfig()
	cfg.Period = period
	cfg.MaxIter = 150
	m, _, err := Fit(0, dt, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mse := stats.MSE(m.IntensitySeries(), truth); mse > 0.002 {
		t.Fatalf("large-period fit MSE %g too high", mse)
	}
}
