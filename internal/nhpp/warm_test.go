package nhpp

import (
	"math"
	"math/rand"
	"testing"
)

// warmTestWindows enumerates the window shapes the equivalence property
// is checked across: flat, ramping, periodic, bursty, and near-empty
// traffic, with and without a DL period.
var warmTestWindows = []struct {
	name   string
	period int
	gen    func(rng *rand.Rand, t int) []float64
}{
	{"flat", 0, func(rng *rand.Rand, t int) []float64 {
		q := make([]float64, t)
		for i := range q {
			q[i] = float64(rng.Intn(7) + 3)
		}
		return q
	}},
	{"ramp", 0, func(rng *rand.Rand, t int) []float64 {
		q := make([]float64, t)
		for i := range q {
			q[i] = math.Round(1 + 20*float64(i)/float64(t) + rng.Float64()*2)
		}
		return q
	}},
	{"periodic", 48, func(rng *rand.Rand, t int) []float64 {
		q := make([]float64, t)
		for i := range q {
			lam := 6 + 5*math.Sin(2*math.Pi*float64(i)/48)
			q[i] = math.Round(lam + rng.NormFloat64())
			if q[i] < 0 {
				q[i] = 0
			}
		}
		return q
	}},
	{"bursty", 0, func(rng *rand.Rand, t int) []float64 {
		q := make([]float64, t)
		for i := range q {
			q[i] = float64(rng.Intn(3))
			if rng.Float64() < 0.05 {
				q[i] += 40
			}
		}
		return q
	}},
	{"sparse", 24, func(rng *rand.Rand, t int) []float64 {
		q := make([]float64, t)
		for i := range q {
			if i%24 < 3 {
				q[i] = float64(rng.Intn(4) + 1)
			}
		}
		return q
	}},
}

// fitCfg returns the config the warm tests share: a tight tolerance so
// "same optimum" is checked well below the comparison threshold.
func warmFitCfg(period int) FitConfig {
	cfg := DefaultFitConfig()
	cfg.Period = period
	cfg.Tol = 1e-7
	cfg.MaxIter = 3000
	return cfg
}

// TestWarmStartEquivalence is the correctness half of the warm-start
// contract, property-tested across window shapes: fit q1 cold, extend
// the window with fresh bins (the steady-state refit shape), then fit
// the extended window both cold and warm-started from q1's solution.
// The objective is strictly convex, so the two must agree on the
// log-intensity within the solver tolerance — and the warm run must not
// need more iterations than the cold one.
func TestWarmStartEquivalence(t *testing.T) {
	const tBins, dt = 240, 60.0
	for _, tc := range warmTestWindows {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			cfg := warmFitCfg(tc.period)
			q1 := tc.gen(rng, tBins)
			m1, st1, err := Fit(0, dt, q1, cfg)
			if err != nil {
				t.Fatalf("cold fit q1: %v", err)
			}
			if st1.WarmStarted {
				t.Fatal("cold fit reported WarmStarted")
			}
			if m1.WarmState() == nil {
				t.Fatal("fit produced no warm state")
			}

			// Slide the window: drop 8 bins on the left, add 8 fresh bins
			// on the right, keeping the absolute grid.
			fresh := tc.gen(rng, 8)
			q2 := append(append([]float64(nil), q1[8:]...), fresh...)
			start2 := 8 * dt

			cold, stCold, err := Fit(start2, dt, q2, cfg)
			if err != nil {
				t.Fatalf("cold fit q2: %v", err)
			}
			warm, stWarm, err := FitWarm(start2, dt, q2, cfg, m1.WarmState())
			if err != nil {
				t.Fatalf("warm fit q2: %v", err)
			}
			if !stWarm.WarmStarted {
				t.Fatal("compatible warm state did not warm-start")
			}
			var maxDiff float64
			for i := range cold.R {
				if d := math.Abs(cold.R[i] - warm.R[i]); d > maxDiff {
					maxDiff = d
				}
			}
			// The stopping rule leaves ~√Tol slack in the primal residuals,
			// so the two runs may part in the last ~1e-3 of log-rate.
			if maxDiff > 1e-2 {
				t.Fatalf("warm and cold optima disagree: max |Δr| = %g", maxDiff)
			}
			if stWarm.Iterations > stCold.Iterations {
				t.Fatalf("warm start took more iterations than cold (%d > %d)",
					stWarm.Iterations, stCold.Iterations)
			}
			// The losses agree too (both at the unique optimum).
			if relDiff(stWarm.FinalLoss, stCold.FinalLoss) > 1e-4 {
				t.Fatalf("warm loss %g vs cold loss %g", stWarm.FinalLoss, stCold.FinalLoss)
			}
		})
	}
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestWarmStartIdenticalDataConvergesImmediately pins the speed half of
// the contract in its purest form: re-fitting the exact window the warm
// state came from converges almost immediately (the iterates start at
// the optimum).
func TestWarmStartIdenticalDataConvergesImmediately(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := warmFitCfg(48)
	q := warmTestWindows[2].gen(rng, 240)
	m1, st1, err := Fit(0, 60, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st1.Converged {
		t.Fatal("cold fit did not converge")
	}
	_, st2, err := FitWarm(0, 60, q, cfg, m1.WarmState())
	if err != nil {
		t.Fatal(err)
	}
	if !st2.WarmStarted || !st2.Converged {
		t.Fatalf("warm refit: WarmStarted=%v Converged=%v", st2.WarmStarted, st2.Converged)
	}
	if st2.Iterations > 3 {
		t.Fatalf("warm refit of identical data took %d iterations, want <= 3", st2.Iterations)
	}
}

// TestWarmStartIncompatibleFallsBackCold enumerates the compatibility
// gate: any grid or objective mismatch must silently run cold, never
// seed from a solution of a different problem.
func TestWarmStartIncompatibleFallsBackCold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := warmFitCfg(48)
	q := warmTestWindows[2].gen(rng, 240)
	m, _, err := Fit(0, 60, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := m.WarmState()
	cases := []struct {
		name  string
		start float64
		dt    float64
		cfg   FitConfig
		warm  *WarmState
	}{
		{"nil warm", 0, 60, cfg, nil},
		{"dt change", 0, 30, cfg, ws},
		{"off-grid start", 17, 60, cfg, ws},
		{"period change", 0, 60, func() FitConfig { c := cfg; c.Period = 24; return c }(), ws},
		{"beta1 change", 0, 60, func() FitConfig { c := cfg; c.Beta1 = 5; return c }(), ws},
		{"beta2 change", 0, 60, func() FitConfig { c := cfg; c.Beta2 = 1; return c }(), ws},
		{"rho change", 0, 60, func() FitConfig { c := cfg; c.Rho = 9; return c }(), ws},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			qq := q
			if tc.dt != 60 {
				qq = q[:120]
			}
			_, st, err := FitWarm(tc.start, tc.dt, qq, tc.cfg, tc.warm)
			if err != nil {
				t.Fatal(err)
			}
			if st.WarmStarted {
				t.Fatal("incompatible warm state was used")
			}
		})
	}
}

// TestWarmStartColdPathUnchanged pins that the workspace refactor did
// not perturb the cold path: Fit is deterministic, and two cold fits of
// the same data — interleaved with unrelated fits of other shapes to
// force workspace recycling — produce bit-identical log-intensities.
func TestWarmStartColdPathUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := warmFitCfg(48)
	q := warmTestWindows[2].gen(rng, 240)
	m1, _, err := Fit(0, 60, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pollute the pool with differently shaped fits.
	for _, n := range []int{31, 500, 120} {
		if _, _, err := Fit(5, 7, warmTestWindows[0].gen(rng, n), warmFitCfg(0)); err != nil {
			t.Fatal(err)
		}
	}
	m2, _, err := Fit(0, 60, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.R {
		if m1.R[i] != m2.R[i] {
			t.Fatalf("cold fit not deterministic at bin %d: %g vs %g", i, m1.R[i], m2.R[i])
		}
	}
}

// TestWarmStateImmutableUnderReuse guards the pooling boundary: the
// warm state captured on a model must not alias workspace buffers, so
// later fits (which recycle the workspace) cannot corrupt it.
func TestWarmStateImmutableUnderReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := warmFitCfg(48)
	q := warmTestWindows[2].gen(rng, 240)
	m, _, err := Fit(0, 60, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := m.WarmState()
	snapY := append([]float64(nil), ws.Y...)
	snapZ := append([]float64(nil), ws.Z...)
	for i := 0; i < 4; i++ {
		if _, _, err := Fit(0, 60, warmTestWindows[3].gen(rng, 240), warmFitCfg(0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := range snapY {
		if ws.Y[i] != snapY[i] {
			t.Fatalf("warm state Y corrupted at %d by a later fit", i)
		}
	}
	for i := range snapZ {
		if ws.Z[i] != snapZ[i] {
			t.Fatalf("warm state Z corrupted at %d by a later fit", i)
		}
	}
}

// TestAverageRatesMatchesIntegral pins the forecast fast path to the
// semantics it promises: each point is Integral over its step window
// divided by the step, including across the training-horizon boundary
// into the extrapolated region.
func TestAverageRatesMatchesIntegral(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := warmTestWindows[2].gen(rng, 240)
	cfg := warmFitCfg(48)
	m, _, err := Fit(100, 60, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const step = 90.0
	from := m.End() - 40*60 // straddle the horizon boundary
	dst := make([]float64, 120)
	m.AverageRates(from, step, dst)
	for i, got := range dst {
		a := from + float64(i)*step
		want := m.Integral(a, a+step) / step
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("point %d: AverageRates %g vs Integral/step %g", i, got, want)
		}
	}
	// A constant model's average rate equals its point rate exactly.
	flat := NewModel(0, 60, []float64{1, 1, 1, 1, 1}, 0)
	out := flat.AverageRates(30, 45, make([]float64, 10))
	for i, v := range out {
		if math.Abs(v-math.E) > 1e-12 {
			t.Fatalf("flat model point %d: %g, want e", i, v)
		}
	}
}
