package nhpp

import (
	"math"

	"robustscaler/internal/linalg"
)

// Solver selects how the ADMM r-subproblem (the SPD system A_k·r = B_k)
// is solved.
type Solver int

const (
	// SolverAuto uses the banded Cholesky for small bandwidths and
	// switches to conjugate gradient when the period makes the O(T·L²)
	// factorization more expensive than a few matrix-free O(T) passes.
	SolverAuto Solver = iota
	// SolverBanded always uses the banded Cholesky factorization.
	SolverBanded
	// SolverCG always uses Jacobi-preconditioned conjugate gradient with
	// matrix-free A products (the D2/DL stencils are applied directly).
	SolverCG
)

// cgBandwidthCutoff is the period above which SolverAuto prefers CG: the
// Cholesky costs ~T·L²/2 flops versus ~iterations·10·T for CG, so beyond a
// few dozen bins the iterative solve wins decisively.
const cgBandwidthCutoff = 64

// cgWorkspace holds the CG iteration vectors so ADMM can reuse them
// across iterations and — via the pooled fitWorkspace (workspace.go) —
// across fits.
type cgWorkspace struct {
	res, p, ap, z, d2buf, dlbuf, diag linalg.Vector
}

// applyA computes dst = A·x with
// A = diag(w) + ρ·D2ᵀD2 + ρ·DLᵀDL (+ridge included in w), matrix-free.
func (ws *cgWorkspace) applyA(dst, x, w linalg.Vector, rho float64, period int) {
	for i := range dst {
		dst[i] = w[i] * x[i]
	}
	if len(ws.d2buf) > 0 {
		linalg.D2Mul(ws.d2buf, x)
		linalg.D2TMul(ws.z, ws.d2buf)
		linalg.AXPY(dst, dst, rho, ws.z)
	}
	if period > 0 && len(ws.dlbuf) > 0 {
		linalg.DLMul(ws.dlbuf, x, period)
		linalg.DLTMul(ws.z, ws.dlbuf, period)
		linalg.AXPY(dst, dst, rho, ws.z)
	}
}

// solveCG solves A·x = b to relative tolerance tol, starting from x
// (a warm start from the previous ADMM iterate), with Jacobi
// preconditioning. Returns the iteration count.
func (ws *cgWorkspace) solveCG(x, b, w linalg.Vector, rho float64, period int, tol float64, maxIter int) int {
	t := len(x)
	// Jacobi preconditioner: the diagonal of A.
	for i := range ws.diag {
		d := w[i]
		// D2ᵀD2 diagonal entries: rows i, i−1, i−2 contribute 1, 4, 1 when
		// within range.
		n2 := linalg.D2Rows(t)
		if n2 > 0 {
			if i < n2 {
				d += rho
			}
			if i >= 1 && i-1 < n2 {
				d += 4 * rho
			}
			if i >= 2 && i-2 < n2 {
				d += rho
			}
		}
		if period > 0 {
			nl := linalg.DLRows(t, period)
			if i < nl {
				d += rho
			}
			if i >= period && i-period < nl {
				d += rho
			}
		}
		ws.diag[i] = d
	}
	ws.applyA(ws.ap, x, w, rho, period)
	linalg.Sub(ws.res, b, ws.ap)
	bNorm := linalg.Norm2(b)
	if bNorm == 0 {
		bNorm = 1
	}
	// z = M⁻¹ r.
	for i := range ws.z {
		ws.z[i] = ws.res[i] / ws.diag[i]
	}
	copy(ws.p, ws.z)
	rz := linalg.Dot(ws.res, ws.z)
	iter := 0
	for ; iter < maxIter; iter++ {
		if linalg.Norm2(ws.res) <= tol*bNorm {
			break
		}
		ws.applyA(ws.ap, ws.p, w, rho, period)
		pap := linalg.Dot(ws.p, ws.ap)
		if pap <= 0 || math.IsNaN(pap) {
			break // loss of positive-definiteness in finite precision
		}
		alpha := rz / pap
		linalg.AXPY(x, x, alpha, ws.p)
		linalg.AXPY(ws.res, ws.res, -alpha, ws.ap)
		for i := range ws.z {
			ws.z[i] = ws.res[i] / ws.diag[i]
		}
		rzNew := linalg.Dot(ws.res, ws.z)
		beta := rzNew / rz
		rz = rzNew
		for i := range ws.p {
			ws.p[i] = ws.z[i] + beta*ws.p[i]
		}
	}
	return iter
}
