package nhpp

import (
	"errors"
	"fmt"
	"math"

	"robustscaler/internal/linalg"
)

// FitConfig configures the regularized NHPP fit (eq. 1 of the paper).
type FitConfig struct {
	// Beta1 is the L1 smoothness weight on the second difference D2·r.
	Beta1 float64
	// Beta2 is the L2 periodicity weight on the L-step difference DL·r.
	// Ignored when Period == 0.
	Beta2 float64
	// Period L in bins, from periodicity detection; 0 disables the DL term.
	Period int
	// Rho is the ADMM penalty parameter; ≤ 0 selects max(1, Beta1)
	// automatically, which keeps the soft-threshold width Beta1/Rho ≈ 1
	// and the duals well-conditioned.
	Rho float64
	// MaxIter caps ADMM iterations.
	MaxIter int
	// Tol is the convergence tolerance on primal residuals and the r step.
	Tol float64
	// Solver selects the r-subproblem method (see Solver constants).
	Solver Solver
}

// DefaultFitConfig returns the settings used across the experiments.
func DefaultFitConfig() FitConfig {
	return FitConfig{
		Beta1:   3,
		Beta2:   20,
		Period:  0,
		Rho:     0, // auto: max(1, Beta1)
		MaxIter: 600,
		Tol:     1e-5,
	}
}

// FitStats reports how the ADMM run went.
type FitStats struct {
	Iterations    int
	Converged     bool
	FinalLoss     float64
	PrimalResidY  float64
	PrimalResidZ  float64
	FinalStepNorm float64
	// WarmStarted records that the run was seeded from a previous
	// solution (FitWarm with a compatible WarmState) instead of the
	// per-bin MLE initial guess.
	WarmStarted bool
}

// logRateClamp bounds the log-intensity iterates. exp(±40) spans rates from
// 4e-18 to 2e17 per second — far beyond any workload — while keeping the
// quadratic approximation's diag(e^r) finite.
const logRateClamp = 40.0

// Loss evaluates the regularized objective (eq. 1):
//
//	−Qᵀr + Δt·1ᵀe^r + β1‖D2 r‖₁ + (β2/2)‖DL r‖₂².
func Loss(r, q []float64, dt float64, cfg FitConfig) float64 {
	if len(r) != len(q) {
		panic("nhpp: Loss length mismatch")
	}
	var v float64
	for i := range r {
		v += -q[i]*r[i] + dt*math.Exp(r[i])
	}
	n2 := linalg.D2Rows(len(r))
	if n2 > 0 && cfg.Beta1 > 0 {
		d2 := linalg.D2Mul(linalg.NewVector(n2), r)
		v += cfg.Beta1 * linalg.Norm1(d2)
	}
	nL := linalg.DLRows(len(r), cfg.Period)
	if nL > 0 && cfg.Beta2 > 0 {
		dl := linalg.DLMul(linalg.NewVector(nL), r, cfg.Period)
		n := linalg.Norm2(dl)
		v += cfg.Beta2 / 2 * n * n
	}
	return v
}

// Fit trains the NHPP log-intensity on the count series q (counts per bin
// of width dt starting at start) with Algorithm 2: linearized ADMM whose
// r-subproblem is a banded SPD solve of cost O(T·max(2,L)²).
func Fit(start, dt float64, q []float64, cfg FitConfig) (*Model, FitStats, error) {
	return FitWarm(start, dt, q, cfg, nil)
}

// FitWarm is Fit with an optional warm start: when warm (a previous
// fit's solution, from Model.WarmState) is compatible with this fit's
// grid and objective, the ADMM iterates start from it instead of the
// per-bin MLE guess, which cuts steady-state refits to a fraction of the
// cold iteration count. An incompatible or nil warm state silently falls
// back to a cold start — FitStats.WarmStarted reports which path ran.
// The objective is strictly convex, so both paths converge to the same
// model up to the solver tolerance.
func FitWarm(start, dt float64, q []float64, cfg FitConfig, warm *WarmState) (*Model, FitStats, error) {
	t := len(q)
	if t == 0 {
		return nil, FitStats{}, errors.New("nhpp: empty count series")
	}
	if dt <= 0 {
		return nil, FitStats{}, fmt.Errorf("nhpp: non-positive dt %g", dt)
	}
	for i, c := range q {
		if c < 0 || math.IsNaN(c) {
			return nil, FitStats{}, fmt.Errorf("nhpp: negative/NaN count %g at bin %d", c, i)
		}
	}
	if cfg.Rho <= 0 {
		cfg.Rho = 1
		if cfg.Beta1 > 1 {
			cfg.Rho = cfg.Beta1
		}
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 300
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	period := cfg.Period
	if period >= t || period < 0 {
		period = 0
	}

	n2 := linalg.D2Rows(t)
	nL := linalg.DLRows(t, period)
	useDL := nL > 0 && cfg.Beta2 > 0
	nlBuf := 0
	if useDL {
		nlBuf = nL
	}

	kd := 2
	if useDL && period > kd {
		kd = period
	}
	if kd >= t {
		kd = t - 1
	}
	useCG := cfg.Solver == SolverCG || (cfg.Solver == SolverAuto && kd > cgBandwidthCutoff)

	// Scratch comes from the pool; r is allocated fresh because it
	// becomes the model's log-intensity and must outlive the workspace.
	wk := acquireFitWorkspace(t, kd, n2, nlBuf, useCG)
	defer wk.release()
	a, fact, ws := wk.a, wk.fact, wk.cg
	expR, b, rNew, tmpT := wk.expR, wk.b, wk.rNew, wk.tmpT
	y, nuY, tmp2 := wk.y, wk.nuY, wk.tmp2
	var z, nuZ, tmpL linalg.Vector
	if useDL {
		z, nuZ, tmpL = wk.z, wk.nuZ, wk.tmpL
	}

	r := linalg.NewVector(t)
	stats := FitStats{}
	if off, ok := warm.offsetFor(start, dt, cfg, period); ok {
		stats.WarmStarted = true
		warm.seed(off, r, y, nuY, z, nuZ, period)
	} else {
		// Cold initial guess: per-bin MLE with additive smoothing, slack
		// at the operator images, duals at zero.
		for i := range r {
			r[i] = math.Log((q[i] + 0.1) / dt)
		}
		if n2 > 0 {
			linalg.D2Mul(y, r)
			linalg.Fill(nuY, 0)
		}
		if useDL {
			linalg.DLMul(z, r, period)
			linalg.Fill(nuZ, 0)
		}
	}
	rho := cfg.Rho
	for k := 0; k < cfg.MaxIter; k++ {
		stats.Iterations = k + 1
		linalg.Exp(expR, r)

		// A_k = Δt·diag(e^r) + ρ·D2ᵀD2 + ρ·DLᵀDL, plus a tiny ridge: when
		// traffic is (near) zero, diag(e^r) underflows and the difference
		// Grams alone are singular (their null space contains linear
		// trends). weights holds the diagonal part.
		const ridge = 1e-8
		weights := tmpT
		linalg.Scale(weights, dt, expR)
		for i := range weights {
			weights[i] += ridge
		}

		// Assemble B_k = Q − Δt·e^r + Δt·diag(e^r)·r + D2ᵀ(νy+ρy) + DLᵀ(νz+ρz).
		for i := 0; i < t; i++ {
			b[i] = q[i] - dt*expR[i] + dt*expR[i]*r[i]
		}
		if n2 > 0 {
			linalg.AXPY(tmp2, nuY, rho, y)
			linalg.D2TMul(rNew, tmp2) // rNew as scratch
			linalg.Add(b, b, rNew)
		}
		if useDL {
			linalg.AXPY(tmpL, nuZ, rho, z)
			linalg.DLTMul(rNew, tmpL, period)
			linalg.Add(b, b, rNew)
		}

		if useCG {
			copy(rNew, r) // warm start from the previous iterate
			ws.solveCG(rNew, b, weights, rho, period, 1e-10, 4*t)
		} else {
			a.Reset()
			a.AddDiag(weights)
			if n2 > 0 {
				linalg.AddD2Gram(a, rho)
			}
			if useDL {
				linalg.AddDLGram(a, rho, period)
			}
			var err error
			fact, err = a.Cholesky(fact)
			wk.fact = fact // keep the (possibly grown) factor pooled
			if err != nil {
				return nil, stats, fmt.Errorf("nhpp: ADMM iteration %d: %w", k, err)
			}
			fact.Solve(rNew, b)
		}
		for i := range rNew {
			if rNew[i] > logRateClamp {
				rNew[i] = logRateClamp
			} else if rNew[i] < -logRateClamp {
				rNew[i] = -logRateClamp
			}
		}
		stats.FinalStepNorm = stepNorm(rNew, r)
		copy(r, rNew)

		// y-update: soft threshold (prox of β1‖·‖₁).
		if n2 > 0 {
			linalg.D2Mul(tmp2, r)
			linalg.AXPY(tmp2, tmp2, -1/rho, nuY)
			linalg.SoftThreshold(y, tmp2, cfg.Beta1/rho)
			// Dual update νy += ρ(y − D2 r); recompute D2 r into tmp2.
			linalg.D2Mul(tmp2, r)
			for i := range nuY {
				nuY[i] += rho * (y[i] - tmp2[i])
			}
			stats.PrimalResidY = residNorm(y, tmp2)
		}

		// z-update: closed-form prox of (β2/2)‖·‖₂².
		if useDL {
			linalg.DLMul(tmpL, r, period)
			for i := range z {
				z[i] = (rho*tmpL[i] - nuZ[i]) / (cfg.Beta2 + rho)
			}
			for i := range nuZ {
				nuZ[i] += rho * (z[i] - tmpL[i])
			}
			stats.PrimalResidZ = residNorm(z, tmpL)
		}

		if stats.FinalStepNorm < cfg.Tol &&
			stats.PrimalResidY < math.Sqrt(cfg.Tol) &&
			stats.PrimalResidZ < math.Sqrt(cfg.Tol) {
			stats.Converged = true
			break
		}
	}
	stats.FinalLoss = Loss(r, q, dt, FitConfig{
		Beta1: cfg.Beta1, Beta2: cfg.Beta2, Period: period,
	})
	m := NewModel(start, dt, r, period)
	// Capture the full solution for the next refit. The slack and dual
	// vectors live in the pooled workspace, so they are copied out; r is
	// shared with the model (both sides treat it as read-only).
	m.warm = &WarmState{
		Start: start, Dt: dt, Period: period,
		Beta1: cfg.Beta1, Beta2: cfg.Beta2, Rho: cfg.Rho,
		R:   r,
		Y:   linalg.Clone(y),
		NuY: linalg.Clone(nuY),
		Z:   linalg.Clone(z),
		NuZ: linalg.Clone(nuZ),
	}
	return m, stats, nil
}

// stepNorm returns ‖a−b‖₂ / (1 + ‖b‖₂).
func stepNorm(a, b linalg.Vector) float64 {
	var num, den float64
	for i := range a {
		d := a[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	return math.Sqrt(num) / (1 + math.Sqrt(den))
}

// residNorm returns ‖a−b‖₂ / √len (RMS primal residual).
func residNorm(a, b linalg.Vector) float64 {
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}
