package nhpp

import (
	"math"
	"math/rand"
	"testing"
)

// cumModels builds models covering the extrapolation variants: periodic
// and aperiodic, with non-zero start offsets.
func cumModels() []*Model {
	rng := rand.New(rand.NewSource(7))
	r := make([]float64, 500)
	for i := range r {
		r[i] = 0.3*math.Sin(2*math.Pi*float64(i)/100) + 0.1*rng.NormFloat64()
	}
	return []*Model{
		NewModel(0, 60, r, 100),                        // periodic
		NewModel(0, 60, r, 0),                          // aperiodic (tail level)
		NewModel(-1234, 7, r, 100),                     // shifted origin, odd bin width
		NewModel(50, 60, []float64{0, 1, 0.5, 1.2}, 0), // tiny
	}
}

// TestIntegralMatchesScan cross-checks the prefix-table Integral against
// the exact bin-scan reference across every region: before the training
// window, inside it, straddling the horizon, and deep in extrapolation.
func TestIntegralMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for mi, m := range cumModels() {
		span := m.End() - m.Start
		for trial := 0; trial < 500; trial++ {
			a := m.Start - span/4 + rng.Float64()*span*3
			b := a + rng.Float64()*span/2
			want := m.integralScan(a, b)
			got := m.Integral(a, b)
			tol := 1e-9 * (1 + math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("model %d: Integral(%g,%g) = %g, scan = %g", mi, a, b, got, want)
			}
		}
	}
}

// TestInverseIntegralMatchesScan cross-checks the table-based inversion
// against the bin walk, and verifies the Λ∘Λ⁻¹ round trip.
func TestInverseIntegralMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for mi, m := range cumModels() {
		span := m.End() - m.Start
		for trial := 0; trial < 500; trial++ {
			from := m.Start - span/4 + rng.Float64()*span*2
			mass := rng.Float64() * m.Integral(m.Start, m.End()) * 1.5
			want, wok := m.inverseIntegralScan(from, mass)
			got, gok := m.InverseIntegral(from, mass)
			if wok != gok {
				t.Fatalf("model %d: InverseIntegral(%g,%g) ok=%v, scan ok=%v", mi, from, mass, gok, wok)
			}
			if !wok {
				continue
			}
			// Differencing the prefix table loses precision relative to
			// the total accumulated mass, not the answer, so tolerances
			// scale with the window mass.
			total := m.Integral(m.Start, m.End())
			tol := 1e-9 * (1 + math.Abs(want) + math.Abs(from) + total)
			if math.Abs(got-want) > tol {
				t.Fatalf("model %d: InverseIntegral(%g,%g) = %g, scan = %g", mi, from, mass, got, want)
			}
			if back := m.Integral(from, got); math.Abs(back-mass) > 1e-9*(1+mass+total) {
				t.Fatalf("model %d: round trip Λ(%g,%g) = %g, want %g", mi, from, got, back, mass)
			}
		}
	}
}

// TestIntegralFarFutureNoPanic guards the float→int conversion in the
// periodic extrapolation: a hostile or buggy far-future time (reachable
// remotely via ?now=1e300) must not index the profile with an
// overflowed negative bin count.
func TestIntegralFarFutureNoPanic(t *testing.T) {
	for _, m := range cumModels() {
		for _, far := range []float64{1e12, 1e300, math.MaxFloat64} {
			if got := m.Integral(m.Start, far); got <= 0 || math.IsNaN(got) {
				t.Fatalf("Integral to %g = %g", far, got)
			}
			if r := m.Rate(far); r <= 0 || math.IsNaN(r) {
				t.Fatalf("Rate(%g) = %g", far, r)
			}
			// At these magnitudes the inversion may legitimately answer
			// (mass 1 is one arrival away) or hit the horizon cap; it
			// must not panic or return NaN.
			if u, ok := m.InverseIntegral(far/2, 1); ok && math.IsNaN(u) {
				t.Fatalf("InverseIntegral from %g = NaN", far/2)
			}
		}
	}
}

// TestRateMatchesBinIndexing pins the float-safe Rate path to the
// int-indexed logRateAt reference wherever the latter is defined.
func TestRateMatchesBinIndexing(t *testing.T) {
	for mi, m := range cumModels() {
		span := m.End() - m.Start
		for i := 0; i < 400; i++ {
			tt := m.Start - span/4 + float64(i)*span*3/400
			idx := int(math.Floor((tt - m.Start) / m.Dt))
			want := math.Exp(m.logRateAt(idx))
			if got := m.Rate(tt); got != want {
				t.Fatalf("model %d: Rate(%g) = %g, logRateAt(%d) = %g", mi, tt, got, idx, want)
			}
		}
	}
}

// TestMaxRateMatchesBinWalk cross-checks the region-wise MaxRate against
// the seed's per-bin walk, and pins far-future ranges to terminate with
// a sane bound.
func TestMaxRateMatchesBinWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for mi, m := range cumModels() {
		span := m.End() - m.Start
		for trial := 0; trial < 300; trial++ {
			a := m.Start - span/4 + rng.Float64()*span*2
			b := a + rng.Float64()*span
			ia := int(math.Floor((a - m.Start) / m.Dt))
			ib := int(math.Floor((b - m.Start) / m.Dt))
			want := math.Inf(-1)
			for i := ia; i <= ib; i++ {
				if lr := m.logRateAt(i); lr > want {
					want = lr
				}
			}
			if got := m.MaxRate(a, b); got != math.Exp(want) {
				t.Fatalf("model %d: MaxRate(%g,%g) = %g, walk = %g", mi, a, b, got, math.Exp(want))
			}
		}
		if got := m.MaxRate(m.Start, 1e300); got <= 0 || math.IsNaN(got) {
			t.Fatalf("model %d: far-future MaxRate = %g", mi, got)
		}
	}
}

// TestInverseIntegralHorizonCap keeps the bounded-look-ahead contract:
// a mass far beyond maxInverseBins of intensity reports failure rather
// than an absurd epoch.
func TestInverseIntegralHorizonCap(t *testing.T) {
	m := NewModel(0, 60, []float64{-200, -200}, 0) // ~e⁻²⁰⁰ ≈ 0 rate
	if _, ok := m.InverseIntegral(0, 1); ok {
		t.Fatal("near-zero-rate model should not reach mass 1 within the horizon")
	}
}

// TestInverseIntegralNaNInputs pins ok=false for NaN from/mass: ok=true
// with a NaN time would hang Simulate's arrival loop.
func TestInverseIntegralNaNInputs(t *testing.T) {
	for mi, m := range cumModels() {
		if u, ok := m.InverseIntegral(math.NaN(), 1); ok {
			t.Fatalf("model %d: NaN from accepted (t=%g)", mi, u)
		}
		if u, ok := m.InverseIntegral(100, math.NaN()); ok {
			t.Fatalf("model %d: NaN mass accepted (t=%g)", mi, u)
		}
		// A -Inf overflow in cumAt(from) must not surface as ok=true.
		if u, ok := m.InverseIntegral(-1e308, 1); ok && (math.IsInf(u, 0) || math.IsNaN(u)) {
			t.Fatalf("model %d: InverseIntegral(-1e308, 1) = %g, ok=true", mi, u)
		}
		for _, inf := range []float64{math.Inf(1), math.Inf(-1)} {
			if u, ok := m.InverseIntegral(inf, 1); ok {
				t.Fatalf("model %d: InverseIntegral(%g, 1) = %g, ok=true", mi, inf, u)
			}
		}
	}
}
