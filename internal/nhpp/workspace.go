package nhpp

// The ADMM trainer's scratch memory. One fit needs ~10 vectors plus the
// banded system and its Cholesky factor; at fleet scale the retrain pool
// runs thousands of refits per sweep, so allocating them per call churns
// the GC for no reason — the shapes barely change between refits of the
// same workload. fitWorkspace bundles every buffer one fit needs and a
// sync.Pool recycles them across fits (and across the retrain pool's
// workers): a steady-state refit of a same-sized window performs no
// solver allocations at all (see linalg's TestSteadyStateSolveZeroAlloc
// for the invariant at the factorization layer).

import (
	"sync"

	"robustscaler/internal/linalg"
)

// fitWorkspace holds every reusable buffer of one ADMM run. The fitted
// log-intensity vector r is deliberately NOT part of the workspace — it
// outlives the fit as Model.R, so pooling it would alias live models.
type fitWorkspace struct {
	// Banded path: the assembled system and its reused factorization.
	a    *linalg.SymBanded
	fact *linalg.BandedCholesky
	// CG path: iteration vectors for the matrix-free solve.
	cg *cgWorkspace

	// Length-t buffers.
	expR, b, rNew, tmpT linalg.Vector
	// Length-n2 buffers (D2 rows): slack, dual, scratch.
	y, nuY, tmp2 linalg.Vector
	// Length-nl buffers (DL rows): slack, dual, scratch.
	z, nuZ, tmpL linalg.Vector
}

// fitPool recycles workspaces across fits. sync.Pool's per-P caching
// means each retrain worker effectively keeps its own warm workspace
// without any coordination.
var fitPool = sync.Pool{New: func() any { return new(fitWorkspace) }}

// acquireFitWorkspace returns a workspace sized for a t-bin fit with n2
// D2 rows and nl DL rows, reusing pooled capacity. Buffer contents are
// unspecified; the fit zeroes or overwrites what it reads. Exactly one
// of the banded system (kd ≥ 0) or the CG vectors is prepared.
func acquireFitWorkspace(t, kd, n2, nl int, useCG bool) *fitWorkspace {
	w := fitPool.Get().(*fitWorkspace)
	w.expR = linalg.Resize(w.expR, t)
	w.b = linalg.Resize(w.b, t)
	w.rNew = linalg.Resize(w.rNew, t)
	w.tmpT = linalg.Resize(w.tmpT, t)
	w.y = linalg.Resize(w.y, n2)
	w.nuY = linalg.Resize(w.nuY, n2)
	w.tmp2 = linalg.Resize(w.tmp2, n2)
	w.z = linalg.Resize(w.z, nl)
	w.nuZ = linalg.Resize(w.nuZ, nl)
	w.tmpL = linalg.Resize(w.tmpL, nl)
	if useCG {
		if w.cg == nil {
			w.cg = new(cgWorkspace)
		}
		w.cg.resize(t, n2, nl)
	} else if w.a == nil {
		w.a = linalg.NewSymBanded(t, kd)
	} else {
		w.a.Resize(t, kd)
	}
	return w
}

// release returns the workspace to the pool. The caller must not touch
// any buffer afterwards — anything that outlives the fit (Model.R, the
// captured WarmState) is copied out before release.
func (w *fitWorkspace) release() { fitPool.Put(w) }

// resize grows the CG iteration vectors in place, reusing capacity.
func (ws *cgWorkspace) resize(t, n2, nl int) {
	ws.res = linalg.Resize(ws.res, t)
	ws.p = linalg.Resize(ws.p, t)
	ws.ap = linalg.Resize(ws.ap, t)
	ws.z = linalg.Resize(ws.z, t)
	ws.diag = linalg.Resize(ws.diag, t)
	ws.d2buf = linalg.Resize(ws.d2buf, n2)
	ws.dlbuf = linalg.Resize(ws.dlbuf, nl)
}
