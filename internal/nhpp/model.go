// Package nhpp implements the paper's core contribution: a
// non-homogeneous Poisson process model of query arrivals with a
// periodicity-regularized log-intensity, trained by a quadratically
// approximated ADMM (Algorithm 2), plus intensity forecasting and exact
// NHPP simulation via time rescaling.
package nhpp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Intensity is a (possibly time-varying) arrival intensity λ(t) with its
// integral Λ and inverse integral, which together support Monte Carlo
// sampling of future arrival epochs: the i-th arrival after time t0 is
// Λ⁻¹(Λ(t0) + Gamma(i,1)) by the time-rescaling theorem.
type Intensity interface {
	// Rate returns λ(t) ≥ 0.
	Rate(t float64) float64
	// Integral returns Λ(a,b) = ∫_a^b λ(u) du for a ≤ b.
	Integral(a, b float64) float64
	// InverseIntegral returns the smallest t ≥ from with
	// Integral(from, t) ≥ mass, and false if the mass is not reached
	// within the implementation's horizon.
	InverseIntegral(from, mass float64) (float64, bool)
}

// Constant is a homogeneous Poisson intensity, used by baselines, tests
// and the κ threshold's constant upper-bound analysis.
type Constant struct {
	Lambda float64
}

// Rate implements Intensity.
func (c Constant) Rate(float64) float64 { return c.Lambda }

// Integral implements Intensity.
func (c Constant) Integral(a, b float64) float64 {
	if b < a {
		panic(fmt.Sprintf("nhpp: Integral with b=%g < a=%g", b, a))
	}
	return c.Lambda * (b - a)
}

// InverseIntegral implements Intensity.
func (c Constant) InverseIntegral(from, mass float64) (float64, bool) {
	if mass <= 0 {
		return from, true
	}
	if c.Lambda <= 0 {
		return 0, false
	}
	return from + mass/c.Lambda, true
}

// Func adapts an arbitrary λ(t) function to the Intensity interface by
// numerical integration on a fixed grid. Used by the synthetic experiments
// (Fig. 8, Table III) whose ground-truth intensities are closed-form.
type Func struct {
	F    func(t float64) float64
	Step float64 // integration step, seconds
	// MaxHorizon bounds InverseIntegral's search beyond `from`.
	MaxHorizon float64
}

// Rate implements Intensity.
func (f Func) Rate(t float64) float64 { return f.F(t) }

// Integral implements Intensity using the composite trapezoid rule with a
// uniform grid of width ≤ Step.
func (f Func) Integral(a, b float64) float64 {
	if b < a {
		panic(fmt.Sprintf("nhpp: Integral with b=%g < a=%g", b, a))
	}
	if a == b {
		return 0
	}
	step := f.Step
	if step <= 0 {
		step = 1
	}
	n := int(math.Ceil((b - a) / step))
	h := (b - a) / float64(n)
	acc := (f.F(a) + f.F(b)) / 2
	for i := 1; i < n; i++ {
		acc += f.F(a + float64(i)*h)
	}
	return acc * h
}

// InverseIntegral implements Intensity by stepping the grid.
func (f Func) InverseIntegral(from, mass float64) (float64, bool) {
	if mass <= 0 {
		return from, true
	}
	step := f.Step
	if step <= 0 {
		step = 1
	}
	horizon := f.MaxHorizon
	if horizon <= 0 {
		horizon = 1e9
	}
	var acc float64
	t := from
	prev := f.F(t)
	for t < from+horizon {
		next := t + step
		cur := f.F(next)
		cell := (prev + cur) / 2 * step
		if acc+cell >= mass {
			// Solve within the cell assuming linear rate.
			need := mass - acc
			lo, hi := t, next
			for i := 0; i < 60; i++ {
				mid := (lo + hi) / 2
				rm := prev + (cur-prev)*(mid-t)/step
				got := (prev + rm) / 2 * (mid - t)
				if got < need {
					lo = mid
				} else {
					hi = mid
				}
			}
			return (lo + hi) / 2, true
		}
		acc += cell
		t = next
		prev = cur
	}
	return 0, false
}

// Model is a fitted NHPP with piecewise-constant intensity
// λ(t) = exp(r_t) on bins of width Dt starting at Start. Beyond the
// training horizon the log-intensity is extended periodically with the
// detected period (in bins); without a period the trailing mean level is
// held.
type Model struct {
	Start  float64   // absolute time of bin 0, seconds
	Dt     float64   // bin width, seconds
	R      []float64 // log-intensity per training bin
	Period int       // period in bins; 0 = none detected

	// tailLevel is exp-mean log intensity of the trailing window, used for
	// extrapolation when Period == 0.
	tailLevel float64
	// profile is the recency-weighted per-phase mean log intensity used
	// for extrapolation when Period > 0. Averaging across observed periods
	// cancels the per-period noise a single-period repeat would inherit.
	profile []float64

	// cum[i] = Λ(Start, Start+i·Dt) over the training bins, so any
	// Integral inside the training window is a prefix-sum difference
	// instead of a bin scan; len(cum) = len(R)+1.
	cum []float64
	// profCum is the same prefix table over one extrapolated cycle of
	// profile (len Period+1); profCum[Period] is the mass of a full cycle.
	profCum []float64

	// warm is the ADMM solution the model was fit with (nil for models
	// built via NewModel directly, e.g. restored from a snapshot — the
	// duals are not persisted, so the first refit after a restart runs
	// cold). Immutable after the fit.
	warm *WarmState
}

// WarmState returns the fit solution usable to warm-start the next
// refit over a compatible window (see FitWarm), or nil when the model
// was not produced by a fit in this process. The returned state is
// shared and read-only.
func (m *Model) WarmState() *WarmState { return m.warm }

// NewModel builds a model from a fitted log-intensity vector.
func NewModel(start, dt float64, r []float64, periodBins int) *Model {
	if dt <= 0 {
		panic(fmt.Sprintf("nhpp: NewModel dt=%g", dt))
	}
	if len(r) == 0 {
		panic("nhpp: NewModel with empty log-intensity")
	}
	if periodBins >= len(r) || periodBins < 0 {
		periodBins = 0
	}
	m := &Model{Start: start, Dt: dt, R: r, Period: periodBins}
	// Trailing level: average of the last min(T, max(period, 32)) bins.
	w := periodBins
	if w < 32 {
		w = 32
	}
	if w > len(r) {
		w = len(r)
	}
	var s float64
	for _, v := range r[len(r)-w:] {
		s += v
	}
	m.tailLevel = s / float64(w)
	if periodBins > 0 {
		m.profile = seasonalProfile(r, periodBins)
	}
	m.cum = cumTable(r, dt)
	if periodBins > 0 {
		m.profCum = cumTable(m.profile, dt)
	}
	return m
}

// cumTable returns the cumulative-intensity prefix table of a
// log-intensity vector: out[i] = Σ_{j<i} exp(r[j])·dt.
func cumTable(r []float64, dt float64) []float64 {
	out := make([]float64, len(r)+1)
	for i, v := range r {
		out[i+1] = out[i] + math.Exp(v)*dt
	}
	return out
}

// seasonalProfile returns the per-phase weighted mean of r over its
// periods, weighting each period by decay^k with k periods back from the
// end, so recent behaviour dominates without inheriting a single period's
// noise.
func seasonalProfile(r []float64, period int) []float64 {
	const decay = 0.7
	t := len(r)
	prof := make([]float64, period)
	wsum := make([]float64, period)
	// Align phases to the end of the series: the last bin has phase
	// period-1, so extrapolated bin idx has phase (idx-t) mod period
	// continuing seamlessly.
	for j := t - 1; j >= 0; j-- {
		back := t - 1 - j
		phase := period - 1 - back%period
		k := back / period
		w := math.Pow(decay, float64(k))
		prof[phase] += w * r[j]
		wsum[phase] += w
	}
	for p := range prof {
		if wsum[p] > 0 {
			prof[p] /= wsum[p]
		}
	}
	return prof
}

// End returns the end of the training horizon.
func (m *Model) End() float64 { return m.Start + float64(len(m.R))*m.Dt }

// logRateAt returns the extrapolated log intensity for an arbitrary bin
// index (possibly beyond the training range).
func (m *Model) logRateAt(idx int) float64 {
	t := len(m.R)
	switch {
	case idx < 0:
		return m.R[0]
	case idx < t:
		return m.R[idx]
	case m.Period > 0:
		// Continue the seasonal profile: the last training bin has phase
		// Period−1, so bin t has phase 0 of the next cycle.
		off := (idx - t) % m.Period
		return m.profile[off]
	default:
		return m.tailLevel
	}
}

// Rate implements Intensity.
func (m *Model) Rate(t float64) float64 {
	return math.Exp(m.logRateAtTime(t))
}

// logRateAtTime is the float-safe variant of logRateAt: the bin index
// stays in float64 until its region is known, so a far-future t (e.g. a
// hostile ?now= parameter) can't overflow the int conversion into an
// architecture-dependent index.
func (m *Model) logRateAtTime(t float64) float64 {
	idx := math.Floor((t - m.Start) / m.Dt)
	total := float64(len(m.R))
	switch {
	case idx < 0:
		return m.R[0]
	case idx < total:
		return m.R[int(idx)]
	case m.Period > 0:
		rem := int(math.Mod(idx-total, float64(m.Period)))
		if rem < 0 || rem >= m.Period { // float edge guards
			rem = 0
		}
		return m.profile[rem]
	default:
		return m.tailLevel
	}
}

// cumAt returns the signed cumulative intensity relative to Start:
// Λ(Start, t) for t ≥ Start and −Λ(t, Start) for t < Start. It is
// strictly increasing in t (λ = exp(r) > 0 up to float underflow), which
// makes Integral a two-lookup difference and InverseIntegral a binary
// search.
func (m *Model) cumAt(t float64) float64 {
	if t <= m.Start {
		// Before the training window the first bin's rate extends left.
		return (t - m.Start) * math.Exp(m.R[0])
	}
	total := len(m.R)
	end := m.End()
	if t < end {
		idx := int(math.Floor((t - m.Start) / m.Dt))
		if idx >= total { // float edge at the right boundary
			idx = total - 1
		}
		return m.cum[idx] + math.Exp(m.R[idx])*(t-(m.Start+float64(idx)*m.Dt))
	}
	base := m.cum[total]
	if m.Period == 0 {
		return base + math.Exp(m.tailLevel)*(t-end)
	}
	// Beyond the horizon the seasonal profile repeats: whole cycles, then
	// a partial cycle from the profile's own prefix table. Bin counts
	// stay in float64 — a far-future t (e.g. a hostile ?now= parameter)
	// overflows int conversion to a negative index.
	bins := math.Floor((t - end) / m.Dt)
	period := float64(m.Period)
	cycles := math.Floor(bins / period)
	rem := int(bins - cycles*period)
	if rem < 0 { // float round-off guards
		rem = 0
	} else if rem >= m.Period {
		rem = m.Period - 1
	}
	// Mathematically into ∈ [0, Dt); clamp the float evaluation so the
	// extreme-magnitude case (bins·Dt rounding to +Inf) yields +Inf
	// overall instead of a NaN from Inf−Inf.
	into := t - (end + bins*m.Dt)
	if !(into > 0) {
		into = 0
	} else if into > m.Dt {
		into = m.Dt
	}
	return base + cycles*m.profCum[m.Period] + m.profCum[rem] +
		math.Exp(m.profile[rem])*into
}

// AverageRates fills dst[i] with the mean intensity over the i-th step
// window [from+i·step, from+(i+1)·step), i.e. Λ(window)/step, and
// returns dst. Each point is one difference of adjacent cumulative-
// intensity lookups and the running prefix is carried between points,
// so an n-point forecast costs n+1 table lookups total — O(horizon),
// independent of how many bins each step spans. This is the forecast
// hot path: a step-averaged rate is also the honest answer for a
// sampled forecast (a point sample of exp(r) aliases bins narrower
// than the step).
func (m *Model) AverageRates(from, step float64, dst []float64) []float64 {
	if step <= 0 {
		panic(fmt.Sprintf("nhpp: AverageRates step %g <= 0", step))
	}
	prev := m.cumAt(from)
	for i := range dst {
		next := m.cumAt(from + float64(i+1)*step)
		dst[i] = (next - prev) / step
		prev = next
	}
	return dst
}

// Integral implements Intensity as a cumulative-table difference, O(1)
// regardless of how many bins [a, b] spans.
func (m *Model) Integral(a, b float64) float64 {
	if b < a {
		panic(fmt.Sprintf("nhpp: Integral with b=%g < a=%g", b, a))
	}
	if a == b {
		return 0
	}
	return m.cumAt(b) - m.cumAt(a)
}

// integralScan is the pre-cache reference implementation (exact
// summation over the piecewise-constant bins, O(bins) per call); kept for
// cross-checking the table and benchmarking the speedup.
func (m *Model) integralScan(a, b float64) float64 {
	if b < a {
		panic(fmt.Sprintf("nhpp: Integral with b=%g < a=%g", b, a))
	}
	if a == b {
		return 0
	}
	ia := int(math.Floor((a - m.Start) / m.Dt))
	ib := int(math.Floor((b - m.Start) / m.Dt))
	if ia == ib {
		return math.Exp(m.logRateAt(ia)) * (b - a)
	}
	var acc float64
	// Partial first bin.
	acc += math.Exp(m.logRateAt(ia)) * (m.Start + float64(ia+1)*m.Dt - a)
	// Whole middle bins.
	for i := ia + 1; i < ib; i++ {
		acc += math.Exp(m.logRateAt(i)) * m.Dt
	}
	// Partial last bin.
	acc += math.Exp(m.logRateAt(ib)) * (b - (m.Start + float64(ib)*m.Dt))
	return acc
}

// maxInverseBins bounds the InverseIntegral look-ahead; with per-minute
// bins this is ~19 years, far beyond any planning horizon.
const maxInverseBins = 10_000_000

// InverseIntegral implements Intensity by inverting the cumulative
// tables: binary search within the training window or the seasonal
// profile, closed form in the constant-rate regions — O(log bins) per
// call.
func (m *Model) InverseIntegral(from, mass float64) (float64, bool) {
	if mass <= 0 {
		return from, true
	}
	// NaN falls through every comparison below into the closed-form
	// arithmetic, and from=+Inf makes the final t-from range guard
	// compare NaN; the old bin walk implicitly terminated with false,
	// and callers (e.g. Simulate) rely on ok=true implying a usable
	// time.
	if math.IsNaN(from) || math.IsInf(from, 0) || math.IsNaN(mass) {
		return 0, false
	}
	target := m.cumAt(from) + mass
	total := len(m.R)
	var t float64
	switch {
	case target <= 0:
		// Still left of the training window.
		rate := math.Exp(m.R[0])
		if rate <= 0 {
			return 0, false
		}
		t = m.Start + target/rate
	case target <= m.cum[total]:
		// Inside the training window: first bin whose cumulative reaches
		// the target; its rate is positive since cum strictly increased.
		k := sort.SearchFloat64s(m.cum, target)
		t = m.Start + float64(k-1)*m.Dt + (target-m.cum[k-1])/math.Exp(m.R[k-1])
	case m.Period == 0:
		rate := math.Exp(m.tailLevel)
		if rate <= 0 {
			return 0, false
		}
		t = m.End() + (target-m.cum[total])/rate
	default:
		cycle := m.profCum[m.Period]
		if cycle <= 0 {
			return 0, false
		}
		extra := target - m.cum[total]
		cycles := math.Floor(extra / cycle)
		rem := extra - cycles*cycle
		t = m.End() + cycles*float64(m.Period)*m.Dt
		if rem > 0 {
			k := sort.SearchFloat64s(m.profCum, rem)
			if k > m.Period { // float edge: rem ≈ cycle
				k = m.Period
			}
			t += float64(k-1)*m.Dt + (rem-m.profCum[k-1])/math.Exp(m.profile[k-1])
		}
	}
	if math.IsNaN(t) || math.IsInf(t, -1) || t-from > maxInverseBins*m.Dt {
		return 0, false
	}
	if t < from { // float round-off: the inverse is mathematically ≥ from
		t = from
	}
	return t, true
}

// inverseIntegralScan is the pre-cache reference implementation (linear
// bin walk); kept for cross-checking and benchmarks.
func (m *Model) inverseIntegralScan(from, mass float64) (float64, bool) {
	if mass <= 0 {
		return from, true
	}
	idx := int(math.Floor((from - m.Start) / m.Dt))
	pos := from
	acc := 0.0
	for steps := 0; steps < maxInverseBins; steps++ {
		rate := math.Exp(m.logRateAt(idx))
		binEnd := m.Start + float64(idx+1)*m.Dt
		cell := rate * (binEnd - pos)
		if acc+cell >= mass {
			if rate <= 0 {
				return 0, false
			}
			return pos + (mass-acc)/rate, true
		}
		acc += cell
		pos = binEnd
		idx++
	}
	return 0, false
}

// MaxRate returns the maximum intensity over [a, b] (bin-wise supremum),
// the λ̄ upper bound used by the κ threshold (eq. 8). Bin indices stay in
// float64 until clamped, and the extrapolated region is covered through
// the seasonal profile instead of a per-bin walk, so far-future ranges
// neither overflow the int conversion nor take astronomically many
// iterations.
func (m *Model) MaxRate(a, b float64) float64 {
	if b < a {
		a, b = b, a
	}
	total := len(m.R)
	iaF := math.Floor((a - m.Start) / m.Dt)
	ibF := math.Floor((b - m.Start) / m.Dt)
	// Bins left of the window all read R[0], same as bin 0.
	if iaF < 0 {
		iaF = 0
	}
	if ibF < 0 {
		ibF = 0
	}
	maxLog := math.Inf(-1)
	if iaF < float64(total) {
		hi := total - 1
		if ibF < float64(hi) {
			hi = int(ibF)
		}
		for i := int(iaF); i <= hi; i++ {
			if m.R[i] > maxLog {
				maxLog = m.R[i]
			}
		}
	}
	if ibF >= float64(total) {
		switch {
		case m.Period == 0:
			if m.tailLevel > maxLog {
				maxLog = m.tailLevel
			}
		default:
			start := math.Max(iaF, float64(total))
			if ibF-start >= float64(m.Period-1) {
				// A full cycle (or more): every phase is reachable.
				for _, v := range m.profile {
					if v > maxLog {
						maxLog = v
					}
				}
			} else {
				p0 := math.Mod(start-float64(total), float64(m.Period))
				for k := 0; k <= int(ibF-start); k++ {
					ph := int(math.Mod(p0+float64(k), float64(m.Period)))
					if ph < 0 || ph >= m.Period { // float edge guards
						ph = 0
					}
					if v := m.profile[ph]; v > maxLog {
						maxLog = v
					}
				}
			}
		}
	}
	return math.Exp(maxLog)
}

// IntensitySeries returns λ at each training bin (exp of R), e.g. for
// accuracy metrics against a ground truth (Table III).
func (m *Model) IntensitySeries() []float64 {
	out := make([]float64, len(m.R))
	for i, r := range m.R {
		out[i] = math.Exp(r)
	}
	return out
}

// Simulate draws NHPP arrival times on [from, to) under intensity in, by
// inverting the integrated intensity over i.i.d. Exp(1) increments (exact,
// no thinning rejection error).
func Simulate(rng *rand.Rand, in Intensity, from, to float64) []float64 {
	var out []float64
	t := from
	for {
		u, ok := in.InverseIntegral(t, rng.ExpFloat64())
		if !ok || u >= to {
			return out
		}
		out = append(out, u)
		t = u
	}
}
