// Package nhpp implements the paper's core contribution: a
// non-homogeneous Poisson process model of query arrivals with a
// periodicity-regularized log-intensity, trained by a quadratically
// approximated ADMM (Algorithm 2), plus intensity forecasting and exact
// NHPP simulation via time rescaling.
package nhpp

import (
	"fmt"
	"math"
	"math/rand"
)

// Intensity is a (possibly time-varying) arrival intensity λ(t) with its
// integral Λ and inverse integral, which together support Monte Carlo
// sampling of future arrival epochs: the i-th arrival after time t0 is
// Λ⁻¹(Λ(t0) + Gamma(i,1)) by the time-rescaling theorem.
type Intensity interface {
	// Rate returns λ(t) ≥ 0.
	Rate(t float64) float64
	// Integral returns Λ(a,b) = ∫_a^b λ(u) du for a ≤ b.
	Integral(a, b float64) float64
	// InverseIntegral returns the smallest t ≥ from with
	// Integral(from, t) ≥ mass, and false if the mass is not reached
	// within the implementation's horizon.
	InverseIntegral(from, mass float64) (float64, bool)
}

// Constant is a homogeneous Poisson intensity, used by baselines, tests
// and the κ threshold's constant upper-bound analysis.
type Constant struct {
	Lambda float64
}

// Rate implements Intensity.
func (c Constant) Rate(float64) float64 { return c.Lambda }

// Integral implements Intensity.
func (c Constant) Integral(a, b float64) float64 {
	if b < a {
		panic(fmt.Sprintf("nhpp: Integral with b=%g < a=%g", b, a))
	}
	return c.Lambda * (b - a)
}

// InverseIntegral implements Intensity.
func (c Constant) InverseIntegral(from, mass float64) (float64, bool) {
	if mass <= 0 {
		return from, true
	}
	if c.Lambda <= 0 {
		return 0, false
	}
	return from + mass/c.Lambda, true
}

// Func adapts an arbitrary λ(t) function to the Intensity interface by
// numerical integration on a fixed grid. Used by the synthetic experiments
// (Fig. 8, Table III) whose ground-truth intensities are closed-form.
type Func struct {
	F    func(t float64) float64
	Step float64 // integration step, seconds
	// MaxHorizon bounds InverseIntegral's search beyond `from`.
	MaxHorizon float64
}

// Rate implements Intensity.
func (f Func) Rate(t float64) float64 { return f.F(t) }

// Integral implements Intensity using the composite trapezoid rule with a
// uniform grid of width ≤ Step.
func (f Func) Integral(a, b float64) float64 {
	if b < a {
		panic(fmt.Sprintf("nhpp: Integral with b=%g < a=%g", b, a))
	}
	if a == b {
		return 0
	}
	step := f.Step
	if step <= 0 {
		step = 1
	}
	n := int(math.Ceil((b - a) / step))
	h := (b - a) / float64(n)
	acc := (f.F(a) + f.F(b)) / 2
	for i := 1; i < n; i++ {
		acc += f.F(a + float64(i)*h)
	}
	return acc * h
}

// InverseIntegral implements Intensity by stepping the grid.
func (f Func) InverseIntegral(from, mass float64) (float64, bool) {
	if mass <= 0 {
		return from, true
	}
	step := f.Step
	if step <= 0 {
		step = 1
	}
	horizon := f.MaxHorizon
	if horizon <= 0 {
		horizon = 1e9
	}
	var acc float64
	t := from
	prev := f.F(t)
	for t < from+horizon {
		next := t + step
		cur := f.F(next)
		cell := (prev + cur) / 2 * step
		if acc+cell >= mass {
			// Solve within the cell assuming linear rate.
			need := mass - acc
			lo, hi := t, next
			for i := 0; i < 60; i++ {
				mid := (lo + hi) / 2
				rm := prev + (cur-prev)*(mid-t)/step
				got := (prev + rm) / 2 * (mid - t)
				if got < need {
					lo = mid
				} else {
					hi = mid
				}
			}
			return (lo + hi) / 2, true
		}
		acc += cell
		t = next
		prev = cur
	}
	return 0, false
}

// Model is a fitted NHPP with piecewise-constant intensity
// λ(t) = exp(r_t) on bins of width Dt starting at Start. Beyond the
// training horizon the log-intensity is extended periodically with the
// detected period (in bins); without a period the trailing mean level is
// held.
type Model struct {
	Start  float64   // absolute time of bin 0, seconds
	Dt     float64   // bin width, seconds
	R      []float64 // log-intensity per training bin
	Period int       // period in bins; 0 = none detected

	// tailLevel is exp-mean log intensity of the trailing window, used for
	// extrapolation when Period == 0.
	tailLevel float64
	// profile is the recency-weighted per-phase mean log intensity used
	// for extrapolation when Period > 0. Averaging across observed periods
	// cancels the per-period noise a single-period repeat would inherit.
	profile []float64
}

// NewModel builds a model from a fitted log-intensity vector.
func NewModel(start, dt float64, r []float64, periodBins int) *Model {
	if dt <= 0 {
		panic(fmt.Sprintf("nhpp: NewModel dt=%g", dt))
	}
	if len(r) == 0 {
		panic("nhpp: NewModel with empty log-intensity")
	}
	if periodBins >= len(r) || periodBins < 0 {
		periodBins = 0
	}
	m := &Model{Start: start, Dt: dt, R: r, Period: periodBins}
	// Trailing level: average of the last min(T, max(period, 32)) bins.
	w := periodBins
	if w < 32 {
		w = 32
	}
	if w > len(r) {
		w = len(r)
	}
	var s float64
	for _, v := range r[len(r)-w:] {
		s += v
	}
	m.tailLevel = s / float64(w)
	if periodBins > 0 {
		m.profile = seasonalProfile(r, periodBins)
	}
	return m
}

// seasonalProfile returns the per-phase weighted mean of r over its
// periods, weighting each period by decay^k with k periods back from the
// end, so recent behaviour dominates without inheriting a single period's
// noise.
func seasonalProfile(r []float64, period int) []float64 {
	const decay = 0.7
	t := len(r)
	prof := make([]float64, period)
	wsum := make([]float64, period)
	// Align phases to the end of the series: the last bin has phase
	// period-1, so extrapolated bin idx has phase (idx-t) mod period
	// continuing seamlessly.
	for j := t - 1; j >= 0; j-- {
		back := t - 1 - j
		phase := period - 1 - back%period
		k := back / period
		w := math.Pow(decay, float64(k))
		prof[phase] += w * r[j]
		wsum[phase] += w
	}
	for p := range prof {
		if wsum[p] > 0 {
			prof[p] /= wsum[p]
		}
	}
	return prof
}

// End returns the end of the training horizon.
func (m *Model) End() float64 { return m.Start + float64(len(m.R))*m.Dt }

// logRateAt returns the extrapolated log intensity for an arbitrary bin
// index (possibly beyond the training range).
func (m *Model) logRateAt(idx int) float64 {
	t := len(m.R)
	switch {
	case idx < 0:
		return m.R[0]
	case idx < t:
		return m.R[idx]
	case m.Period > 0:
		// Continue the seasonal profile: the last training bin has phase
		// Period−1, so bin t has phase 0 of the next cycle.
		off := (idx - t) % m.Period
		return m.profile[off]
	default:
		return m.tailLevel
	}
}

// Rate implements Intensity.
func (m *Model) Rate(t float64) float64 {
	idx := int(math.Floor((t - m.Start) / m.Dt))
	return math.Exp(m.logRateAt(idx))
}

// Integral implements Intensity by exact summation over the piecewise
// constant bins.
func (m *Model) Integral(a, b float64) float64 {
	if b < a {
		panic(fmt.Sprintf("nhpp: Integral with b=%g < a=%g", b, a))
	}
	if a == b {
		return 0
	}
	ia := int(math.Floor((a - m.Start) / m.Dt))
	ib := int(math.Floor((b - m.Start) / m.Dt))
	if ia == ib {
		return math.Exp(m.logRateAt(ia)) * (b - a)
	}
	var acc float64
	// Partial first bin.
	acc += math.Exp(m.logRateAt(ia)) * (m.Start + float64(ia+1)*m.Dt - a)
	// Whole middle bins.
	for i := ia + 1; i < ib; i++ {
		acc += math.Exp(m.logRateAt(i)) * m.Dt
	}
	// Partial last bin.
	acc += math.Exp(m.logRateAt(ib)) * (b - (m.Start + float64(ib)*m.Dt))
	return acc
}

// maxInverseBins bounds the InverseIntegral bin walk; with per-minute bins
// this is ~19 years of look-ahead, far beyond any planning horizon.
const maxInverseBins = 10_000_000

// InverseIntegral implements Intensity.
func (m *Model) InverseIntegral(from, mass float64) (float64, bool) {
	if mass <= 0 {
		return from, true
	}
	idx := int(math.Floor((from - m.Start) / m.Dt))
	pos := from
	acc := 0.0
	for steps := 0; steps < maxInverseBins; steps++ {
		rate := math.Exp(m.logRateAt(idx))
		binEnd := m.Start + float64(idx+1)*m.Dt
		cell := rate * (binEnd - pos)
		if acc+cell >= mass {
			if rate <= 0 {
				return 0, false
			}
			return pos + (mass-acc)/rate, true
		}
		acc += cell
		pos = binEnd
		idx++
	}
	return 0, false
}

// MaxRate returns the maximum intensity over [a, b] (bin-wise supremum),
// the λ̄ upper bound used by the κ threshold (eq. 8).
func (m *Model) MaxRate(a, b float64) float64 {
	ia := int(math.Floor((a - m.Start) / m.Dt))
	ib := int(math.Floor((b - m.Start) / m.Dt))
	if ib < ia {
		ia, ib = ib, ia
	}
	maxLog := math.Inf(-1)
	for i := ia; i <= ib; i++ {
		if lr := m.logRateAt(i); lr > maxLog {
			maxLog = lr
		}
	}
	return math.Exp(maxLog)
}

// IntensitySeries returns λ at each training bin (exp of R), e.g. for
// accuracy metrics against a ground truth (Table III).
func (m *Model) IntensitySeries() []float64 {
	out := make([]float64, len(m.R))
	for i, r := range m.R {
		out[i] = math.Exp(r)
	}
	return out
}

// Simulate draws NHPP arrival times on [from, to) under intensity in, by
// inverting the integrated intensity over i.i.d. Exp(1) increments (exact,
// no thinning rejection error).
func Simulate(rng *rand.Rand, in Intensity, from, to float64) []float64 {
	var out []float64
	t := from
	for {
		u, ok := in.InverseIntegral(t, rng.ExpFloat64())
		if !ok || u >= to {
			return out
		}
		out = append(out, u)
		t = u
	}
}
