package nhpp

import (
	"math"
	"math/rand"
	"testing"

	"robustscaler/internal/stats"
)

func benchCounts(n, period int) []float64 {
	rng := rand.New(rand.NewSource(1))
	q := make([]float64, n)
	for i := range q {
		lam := 1 + 0.8*math.Sin(2*math.Pi*float64(i)/float64(period))
		q[i] = float64(stats.Poisson{Lambda: lam * 60}.Sample(rng))
	}
	return q
}

// BenchmarkFitBanded measures a full ADMM fit with the banded Cholesky
// path (small period).
func BenchmarkFitBanded(b *testing.B) {
	q := benchCounts(1000, 50)
	cfg := DefaultFitConfig()
	cfg.Period = 50
	cfg.Solver = SolverBanded
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fit(0, 60, q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitCG measures the conjugate-gradient path at the CRS scale:
// a week of minute bins with a daily period (L = 1440), where the banded
// factorization's O(T·L²) would be prohibitive.
func BenchmarkFitCG(b *testing.B) {
	q := benchCounts(7*1440, 1440)
	cfg := DefaultFitConfig()
	cfg.Period = 1440
	cfg.MaxIter = 60
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fit(0, 60, q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchModel10k() *Model {
	r := make([]float64, 10080)
	for i := range r {
		r[i] = math.Sin(float64(i) / 100)
	}
	return NewModel(0, 60, r, 1440)
}

// BenchmarkModelIntegral measures the cached (prefix-table) Λ evaluation
// on a 10k-bin model; compare with BenchmarkModelIntegralScan.
func BenchmarkModelIntegral(b *testing.B) {
	m := benchModel10k()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Integral(1000, 500000)
	}
}

// BenchmarkModelIntegralScan measures the seed implementation (per-bin
// scan) of the same evaluation, kept as the baseline for the cache.
func BenchmarkModelIntegralScan(b *testing.B) {
	m := benchModel10k()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.integralScan(1000, 500000)
	}
}

// BenchmarkModelInverseIntegral measures the cached Λ⁻¹ — the per-sample
// hot path of Monte Carlo planning.
func BenchmarkModelInverseIntegral(b *testing.B) {
	m := benchModel10k()
	mass := m.Integral(0, 500000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.InverseIntegral(0, mass)
	}
}

// BenchmarkModelInverseIntegralScan measures the seed bin-walk inversion.
func BenchmarkModelInverseIntegralScan(b *testing.B) {
	m := benchModel10k()
	mass := m.Integral(0, 500000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.inverseIntegralScan(0, mass)
	}
}

// BenchmarkModelRate measures the point-intensity evaluation λ(t) — the
// inner call of every forecast point and of the planning κ threshold,
// so its cost multiplies directly into the control plane's GET paths.
func BenchmarkModelRate(b *testing.B) {
	m := benchModel10k()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// In-window and extrapolated lookups alternate, matching a
		// forecast that starts at "now" and runs past the trained range.
		m.Rate(float64(i%1200000) * 0.7)
	}
}

// BenchmarkHorizonIntegralStep measures the short-span Λ(a, a+Δt/4)
// integrals the decision horizon builds its cumulative grid from — the
// per-cell cost of extending a plan's look-ahead.
func BenchmarkHorizonIntegralStep(b *testing.B) {
	m := benchModel10k()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := float64(i%40000) * 15
		m.Integral(a, a+15)
	}
}

// BenchmarkSimulate measures exact NHPP simulation throughput.
func BenchmarkSimulate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := NewModel(0, 60, []float64{0, 1, 0.5, 1.2}, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(rng, m, 0, 10000)
	}
}
