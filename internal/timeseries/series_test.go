package timeseries

import (
	"math"
	"testing"
)

func TestFromArrivals(t *testing.T) {
	arr := []float64{0.5, 1.5, 1.9, 2.5, 9.99, 10.0, -1}
	s := FromArrivals(arr, 0, 10, 1)
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	want := []float64{1, 2, 1, 0, 0, 0, 0, 0, 0, 1}
	for i, w := range want {
		if s.Values[i] != w {
			t.Fatalf("bin %d = %g, want %g", i, s.Values[i], w)
		}
	}
	if got := s.Total(); got != 5 {
		t.Fatalf("Total = %g, want 5 (out-of-range arrivals must be dropped)", got)
	}
}

func TestQPSAndMeanQPS(t *testing.T) {
	s := New(0, 60, 3)
	s.Values[0], s.Values[1], s.Values[2] = 60, 120, 0
	qps := s.QPS()
	for i, w := range []float64{1, 2, 0} {
		if qps[i] != w {
			t.Fatalf("QPS[%d] = %g, want %g", i, qps[i], w)
		}
	}
	if got := s.MeanQPS(); got != 1 {
		t.Fatalf("MeanQPS = %g, want 1", got)
	}
}

func TestAggregate(t *testing.T) {
	s := New(0, 1, 7)
	copy(s.Values, []float64{1, 3, 5, 7, 9, 11, 100})
	a := s.Aggregate(2)
	if a.Len() != 3 || a.Dt != 2 {
		t.Fatalf("Aggregate shape: len=%d dt=%g", a.Len(), a.Dt)
	}
	for i, w := range []float64{2, 6, 10} {
		if a.Values[i] != w {
			t.Fatalf("Aggregate[%d] = %g, want %g", i, a.Values[i], w)
		}
	}
}

func TestSlice(t *testing.T) {
	s := New(100, 10, 5)
	copy(s.Values, []float64{1, 2, 3, 4, 5})
	sub := s.Slice(1, 4)
	if sub.Start != 110 || sub.Len() != 3 || sub.Values[0] != 2 {
		t.Fatalf("Slice wrong: start=%g len=%d v0=%g", sub.Start, sub.Len(), sub.Values[0])
	}
	sub.Values[0] = 99
	if s.Values[1] == 99 {
		t.Fatal("Slice must copy, not alias")
	}
}

func TestEraseRange(t *testing.T) {
	s := New(0, 1, 10)
	for i := range s.Values {
		s.Values[i] = 1
	}
	s.EraseRange(2.5, 5.5)
	want := []float64{1, 1, 0, 0, 0, 0, 1, 1, 1, 1}
	for i, w := range want {
		if s.Values[i] != w {
			t.Fatalf("after EraseRange bin %d = %g, want %g", i, s.Values[i], w)
		}
	}
}

func TestMedian(t *testing.T) {
	s := New(0, 1, 4)
	copy(s.Values, []float64{4, 1, 3, 2})
	if got := s.Median(); got != 2.5 {
		t.Fatalf("Median = %g, want 2.5", got)
	}
	s2 := New(0, 1, 3)
	copy(s2.Values, []float64{9, 1, 5})
	if got := s2.Median(); got != 5 {
		t.Fatalf("odd Median = %g, want 5", got)
	}
}

func TestWinsorizeMAD(t *testing.T) {
	s := New(0, 1, 11)
	for i := range s.Values {
		s.Values[i] = 10
	}
	s.Values[0] = 12
	s.Values[1] = 8
	s.Values[5] = 1000 // outlier
	s.WinsorizeMAD(5)
	if s.Values[5] >= 1000 {
		t.Fatalf("outlier not clipped: %g", s.Values[5])
	}
	if s.Values[2] != 10 {
		t.Fatalf("inlier changed: %g", s.Values[2])
	}
}

func TestWinsorizeMADConstantSeriesNoop(t *testing.T) {
	s := New(0, 1, 5)
	for i := range s.Values {
		s.Values[i] = 7
	}
	s.WinsorizeMAD(3)
	for _, v := range s.Values {
		if v != 7 {
			t.Fatal("constant series must be untouched")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(0, 1, 2)
	s.Values[0] = 5
	c := s.Clone()
	c.Values[0] = 9
	if s.Values[0] != 5 {
		t.Fatal("Clone aliases the original")
	}
}

func TestFromArrivalsEdgeBinning(t *testing.T) {
	// An arrival exactly at end-epsilon must not index out of range.
	s := FromArrivals([]float64{9.9999999999}, 0, 10, 3)
	if s.Len() != 4 {
		t.Fatalf("ceil bins = %d, want 4", s.Len())
	}
	if s.Total() != 1 {
		t.Fatalf("edge arrival lost: total %g", s.Total())
	}
	if math.IsNaN(s.MeanQPS()) {
		t.Fatal("MeanQPS NaN")
	}
}

func TestWinsorizeMADSeasonalKeepsRecurringSpikes(t *testing.T) {
	// Period 10: every cycle has a big spike at phase 3. A global
	// winsorize would clip it; the seasonal one must keep it.
	const period, cycles = 10, 12
	s := New(0, 60, period*cycles)
	for i := range s.Values {
		s.Values[i] = 5
		if i%period == 3 {
			s.Values[i] = 90
		}
	}
	s.Values[53] = 500 // one-off anomaly at phase 3 of cycle 5
	s.WinsorizeMADSeasonal(period, 6)
	if s.Values[3] != 90 || s.Values[13] != 90 {
		t.Fatalf("recurring spike clipped: %g, %g", s.Values[3], s.Values[13])
	}
	if s.Values[53] >= 500 {
		t.Fatalf("one-off anomaly not clipped: %g", s.Values[53])
	}
	if s.Values[0] != 5 {
		t.Fatalf("baseline changed: %g", s.Values[0])
	}
}

func TestWinsorizeMADSeasonalFallsBackWithoutPeriod(t *testing.T) {
	s := New(0, 1, 20)
	for i := range s.Values {
		s.Values[i] = 10
	}
	s.Values[7] = 1000
	s.Values[2] = 12
	s.Values[4] = 8
	s.WinsorizeMADSeasonal(0, 5) // no period → global clipping
	if s.Values[7] >= 1000 {
		t.Fatal("fallback did not clip")
	}
}

func TestWinsorizeMADSeasonalShortSeries(t *testing.T) {
	// Fewer than 3 cycles: phases are left untouched rather than clipped
	// on no evidence.
	s := New(0, 1, 8)
	copy(s.Values, []float64{1, 50, 1, 50, 1, 50, 1, 50})
	before := append([]float64(nil), s.Values...)
	s.WinsorizeMADSeasonal(4, 3)
	for i := range before {
		if s.Values[i] != before[i] {
			t.Fatalf("short series modified at %d", i)
		}
	}
}
