// Package timeseries provides the QPS-series substrate: binned query
// counts, aggregation, masking for missing data, and basic transforms used
// by periodicity detection and the NHPP trainer.
package timeseries

import (
	"fmt"
	"math"
	"sort"
)

// Series is a regularly spaced count series: Values[t] queries arrived in
// [Start + t·Dt, Start + (t+1)·Dt). Dt is in seconds. Dividing Values by Dt
// yields the QPS series of the paper.
type Series struct {
	Start  float64   // absolute time of the first bin, seconds
	Dt     float64   // bin width, seconds
	Values []float64 // query count per bin
}

// New returns a zeroed series with n bins.
func New(start, dt float64, n int) *Series {
	if dt <= 0 {
		panic(fmt.Sprintf("timeseries: non-positive dt %g", dt))
	}
	return &Series{Start: start, Dt: dt, Values: make([]float64, n)}
}

// FromArrivals bins raw arrival timestamps into counts over [start, end).
// Arrivals outside the range are ignored. The input need not be sorted.
func FromArrivals(arrivals []float64, start, end, dt float64) *Series {
	if end <= start || dt <= 0 {
		panic(fmt.Sprintf("timeseries: invalid range [%g,%g) dt=%g", start, end, dt))
	}
	n := int(math.Ceil((end - start) / dt))
	s := New(start, dt, n)
	for _, a := range arrivals {
		if a < start || a >= end {
			continue
		}
		idx := int((a - start) / dt)
		if idx >= n { // float edge case at the right boundary
			idx = n - 1
		}
		s.Values[idx]++
	}
	return s
}

// Len returns the number of bins.
func (s *Series) Len() int { return len(s.Values) }

// End returns the absolute end time of the series.
func (s *Series) End() float64 { return s.Start + float64(len(s.Values))*s.Dt }

// QPS returns the queries-per-second series Values/Dt as a new slice.
func (s *Series) QPS() []float64 {
	out := make([]float64, len(s.Values))
	for i, v := range s.Values {
		out[i] = v / s.Dt
	}
	return out
}

// Clone returns a deep copy.
func (s *Series) Clone() *Series {
	out := &Series{Start: s.Start, Dt: s.Dt, Values: make([]float64, len(s.Values))}
	copy(out.Values, s.Values)
	return out
}

// Slice returns the sub-series covering bins [lo, hi).
func (s *Series) Slice(lo, hi int) *Series {
	if lo < 0 || hi > len(s.Values) || lo > hi {
		panic(fmt.Sprintf("timeseries: Slice bounds [%d,%d) of %d", lo, hi, len(s.Values)))
	}
	vals := make([]float64, hi-lo)
	copy(vals, s.Values[lo:hi])
	return &Series{Start: s.Start + float64(lo)*s.Dt, Dt: s.Dt, Values: vals}
}

// Aggregate pools w consecutive bins by averaging, dropping the ragged
// tail. This is the "time aggregation" pre-step of the periodicity module
// (Sec. IV): averaging reduces Poisson noise and reveals hidden cycles.
func (s *Series) Aggregate(w int) *Series {
	if w <= 0 {
		panic(fmt.Sprintf("timeseries: Aggregate window %d <= 0", w))
	}
	n := len(s.Values) / w
	out := &Series{Start: s.Start, Dt: s.Dt * float64(w), Values: make([]float64, n)}
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < w; j++ {
			sum += s.Values[i*w+j]
		}
		out.Values[i] = sum / float64(w)
	}
	return out
}

// Total returns the total query count.
func (s *Series) Total() float64 {
	var t float64
	for _, v := range s.Values {
		t += v
	}
	return t
}

// MeanQPS returns the average queries per second over the whole series.
func (s *Series) MeanQPS() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Total() / (float64(len(s.Values)) * s.Dt)
}

// EraseRange zeroes all bins intersecting absolute time range [t0, t1) —
// used to inject missing data (Sec. VII-B3 deletes one full day of queries).
func (s *Series) EraseRange(t0, t1 float64) {
	for i := range s.Values {
		binStart := s.Start + float64(i)*s.Dt
		if binStart+s.Dt > t0 && binStart < t1 {
			s.Values[i] = 0
		}
	}
}

// Median returns the median of the values (robust center, used for
// detrending before periodicity detection).
func (s *Series) Median() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(s.Values))
	copy(sorted, s.Values)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// WinsorizeMAD clips values farther than k median-absolute-deviations from
// the median. It is the outlier guard in front of periodicity detection and
// keeps single bursts (like the Alibaba day-4 spike) from dominating the
// periodogram.
func (s *Series) WinsorizeMAD(k float64) {
	winsorize(s.Values, k)
}

// WinsorizeMADSeasonal clips outliers phase-by-phase: each bin is compared
// against the median/MAD of the bins at the same phase of the detected
// period. Recurring spikes (the same phase of every cycle) survive intact
// while one-off anomalies — a burst that other cycles do not share — are
// clipped. This plays the role of the paper's robust seasonal-trend
// decomposition in front of the NHPP likelihood.
func (s *Series) WinsorizeMADSeasonal(period int, k float64) {
	if period <= 0 || period >= len(s.Values) {
		s.WinsorizeMAD(k)
		return
	}
	phaseVals := make([]float64, 0, len(s.Values)/period+1)
	idx := make([]int, 0, cap(phaseVals))
	for p := 0; p < period; p++ {
		phaseVals = phaseVals[:0]
		idx = idx[:0]
		for j := p; j < len(s.Values); j += period {
			phaseVals = append(phaseVals, s.Values[j])
			idx = append(idx, j)
		}
		if len(phaseVals) < 3 {
			continue // not enough cycles to judge outliers at this phase
		}
		winsorize(phaseVals, k)
		for i, j := range idx {
			s.Values[j] = phaseVals[i]
		}
	}
}

// winsorize clips xs in place at k robust standard deviations around the
// median.
func winsorize(xs []float64, k float64) {
	if len(xs) == 0 {
		return
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	med := medianSorted(sorted)
	dev := make([]float64, len(xs))
	for i, v := range xs {
		dev[i] = math.Abs(v - med)
	}
	sort.Float64s(dev)
	mad := medianSorted(dev)
	scale := 1.4826 * mad // 1.4826 ≈ consistency factor for normal data
	if mad == 0 {
		// Over half the values sit exactly at the median; fall back to the
		// mean absolute deviation so isolated bursts are still clipped.
		var meanDev float64
		for _, d := range dev {
			meanDev += d
		}
		meanDev /= float64(len(dev))
		if meanDev == 0 {
			return // truly constant values
		}
		scale = meanDev
	}
	lim := k * scale
	for i, v := range xs {
		if v > med+lim {
			xs[i] = med + lim
		} else if v < med-lim {
			xs[i] = med - lim
		}
	}
}

func medianSorted(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
