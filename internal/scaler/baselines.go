// Package scaler implements the autoscaling policies compared in the
// paper: the Backup Pool and Adaptive Backup Pool heuristics, and the
// RobustScaler-HP/-RT/-cost variants built on the NHPP forecast and the
// stochastically constrained decision solvers.
package scaler

import (
	"fmt"

	"robustscaler/internal/sim"
)

// BP is the Backup Pool heuristic: it keeps a pool of exactly B instances,
// replenishing immediately after each query consumes one. B = 0 is the
// pure reactive strategy (every query cold-starts).
type BP struct {
	B int
}

// Init implements sim.Autoscaler.
func (p *BP) Init(ctx *sim.Context) {
	for i := 0; i < p.B; i++ {
		ctx.Schedule(ctx.Now())
	}
}

// OnTick implements sim.Autoscaler.
func (p *BP) OnTick(*sim.Context, float64) {}

// OnArrival implements sim.Autoscaler: replenish the consumed instance.
func (p *BP) OnArrival(ctx *sim.Context, _ sim.Query) {
	if p.B > 0 {
		ctx.Schedule(ctx.Now())
	}
}

// String identifies the policy in experiment output.
func (p *BP) String() string { return fmt.Sprintf("BP(B=%d)", p.B) }

// AdapBP is the Adaptive Backup Pool heuristic: every ResizeInterval
// seconds the pool size target is reset to Factor × (average QPS over the
// trailing Window seconds), and arrivals replenish up to the current
// target.
type AdapBP struct {
	// Factor is the pre-fixed constant multiplying the QPS estimate.
	Factor float64
	// Window is the QPS estimation window in seconds (paper: 600).
	Window float64
	// ResizeInterval is how often the target is recomputed (paper: 600).
	ResizeInterval float64

	target     int
	lastResize float64
	started    bool
}

// NewAdapBP returns an AdapBP with the paper's 10-minute window and
// resize cadence.
func NewAdapBP(factor float64) *AdapBP {
	return &AdapBP{Factor: factor, Window: 600, ResizeInterval: 600}
}

// Init implements sim.Autoscaler.
func (p *AdapBP) Init(ctx *sim.Context) {
	p.target = 0
	p.lastResize = ctx.Now()
	p.started = true
}

// OnTick implements sim.Autoscaler: periodically retarget the pool.
func (p *AdapBP) OnTick(ctx *sim.Context, now float64) {
	if now-p.lastResize < p.ResizeInterval && now != p.lastResize {
		return
	}
	p.lastResize = now
	qps := ctx.RecentQPS(p.Window)
	p.target = int(p.Factor*qps + 0.5)
	p.reconcile(ctx)
}

// OnArrival implements sim.Autoscaler: replenish toward the target.
func (p *AdapBP) OnArrival(ctx *sim.Context, _ sim.Query) {
	p.reconcile(ctx)
}

// reconcile brings the committed instance count to the target.
func (p *AdapBP) reconcile(ctx *sim.Context) {
	have := ctx.AvailableCount()
	switch {
	case have < p.target:
		for i := have; i < p.target; i++ {
			ctx.Schedule(ctx.Now())
		}
	case have > p.target:
		excess := have - p.target
		excess -= ctx.CancelScheduled(excess)
		if excess > 0 {
			ctx.DeleteIdle(excess)
		}
	}
}

// String identifies the policy in experiment output.
func (p *AdapBP) String() string { return fmt.Sprintf("AdapBP(c=%g)", p.Factor) }
