package scaler

import (
	"fmt"
	"math"
	"math/rand"

	"robustscaler/internal/decision"
	"robustscaler/internal/nhpp"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
)

// Variant selects which stochastically constrained formulation the
// RobustScaler policy solves per upcoming query.
type Variant int

const (
	// HP minimizes expected cost subject to a hitting-probability floor
	// (eq. 2/3); the paper's RobustScaler-HP.
	HP Variant = iota
	// RT minimizes expected cost subject to an expected response-time
	// ceiling (eq. 4/5); RobustScaler-RT.
	RT
	// Cost minimizes expected waiting subject to a per-instance cost
	// budget (eq. 6/7); RobustScaler-cost.
	Cost
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case HP:
		return "HP"
	case RT:
		return "RT"
	case Cost:
		return "cost"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// RobustConfig parameterizes a RobustScaler policy.
type RobustConfig struct {
	// Variant selects the constraint type.
	Variant Variant
	// Alpha: HP variant targets hitting probability 1−Alpha.
	Alpha float64
	// RTTarget: RT variant's waiting budget d − µs (seconds, net of
	// processing time).
	RTTarget float64
	// CostBudget: Cost variant's idle budget B − µτ − µs (seconds per
	// instance, net of the irreducible pending+processing cost).
	CostBudget float64
	// Tau is the pending-time distribution (must match the simulator's).
	Tau stats.Dist
	// MCSamples R for the Monte Carlo solvers; the HP variant with a
	// deterministic Tau uses the exact Gamma-quantile path instead.
	MCSamples int
	// PlanWindow Δ: each planning round schedules every creation that
	// falls within the next Δ seconds. Should equal the simulator's
	// TickInterval.
	PlanWindow float64
	// HorizonStep is the integration grid for inverting Λ; ≤0 picks a
	// sensible default from the intensity scale.
	HorizonStep float64
	// MaxPerTick caps creations scheduled in one round (safety valve).
	MaxPerTick int
	// Seed drives the policy's Monte Carlo draws.
	Seed int64
	// PlanEveryArrivals m > 0 selects the literal Algorithm 4 cadence:
	// planning happens every m query arrivals and commits creation times
	// for the next κ+m upcoming queries, ignoring the Δ window. 0 (the
	// default) uses the Δ-window variant the paper's experiments run.
	PlanEveryArrivals int
	// WindowExtension widens the planning window to Δ + WindowExtension
	// seconds — the paper's compensation for decision-computation delay in
	// real environments (Sec. VII-B2).
	WindowExtension float64
}

// RobustScaler is the paper's proactive policy: at every planning round it
// schedules instance creations for upcoming queries, each at the optimum
// of the selected stochastically constrained formulation, always planning
// far enough ahead that the first κ infeasible queries are already covered
// (the Δ-window form of Algorithm 4 with time-dependent κ).
type RobustScaler struct {
	cfg RobustConfig
	in  nhpp.Intensity
	rng *rand.Rand

	// Plan cache: skip recomputation while no arrivals occurred, the
	// committed-instance count is unchanged, and the next creation time is
	// still beyond the window.
	lastArrivals int
	lastAvail    int
	nextCreateAt float64
	cacheValid   bool

	// arrivalsSincePlan counts arrivals in PlanEveryArrivals mode.
	arrivalsSincePlan int

	xiBuf  []float64
	tauBuf []float64
}

// NewRobustScaler builds the policy for a forecast intensity.
func NewRobustScaler(in nhpp.Intensity, cfg RobustConfig) (*RobustScaler, error) {
	if in == nil {
		return nil, fmt.Errorf("scaler: nil intensity")
	}
	if cfg.Tau == nil {
		return nil, fmt.Errorf("scaler: nil pending-time distribution")
	}
	switch cfg.Variant {
	case HP:
		if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
			return nil, fmt.Errorf("scaler: HP variant needs Alpha in (0,1), got %g", cfg.Alpha)
		}
	case RT:
		if cfg.RTTarget < 0 {
			return nil, fmt.Errorf("scaler: negative RTTarget %g", cfg.RTTarget)
		}
	case Cost:
		if cfg.CostBudget < 0 {
			return nil, fmt.Errorf("scaler: negative CostBudget %g", cfg.CostBudget)
		}
	default:
		return nil, fmt.Errorf("scaler: unknown variant %d", cfg.Variant)
	}
	if cfg.MCSamples <= 0 {
		cfg.MCSamples = 400
	}
	if cfg.PlanWindow <= 0 {
		cfg.PlanWindow = 1
	}
	if cfg.MaxPerTick <= 0 {
		cfg.MaxPerTick = 1 << 17
	}
	return &RobustScaler{
		cfg: cfg,
		in:  in,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// String identifies the policy in experiment output.
func (p *RobustScaler) String() string {
	switch p.cfg.Variant {
	case HP:
		return fmt.Sprintf("RobustScaler-HP(1-α=%.3g)", 1-p.cfg.Alpha)
	case RT:
		return fmt.Sprintf("RobustScaler-RT(d-µs=%.3g)", p.cfg.RTTarget)
	default:
		return fmt.Sprintf("RobustScaler-cost(budget=%.3g)", p.cfg.CostBudget)
	}
}

// Init implements sim.Autoscaler.
func (p *RobustScaler) Init(ctx *sim.Context) {
	p.cacheValid = false
	p.plan(ctx, ctx.Now())
}

// OnTick implements sim.Autoscaler.
func (p *RobustScaler) OnTick(ctx *sim.Context, now float64) {
	if p.cfg.PlanEveryArrivals > 0 {
		return // arrival-count cadence: ticks are ignored
	}
	// Fast path: nothing changed and the next creation is still beyond
	// this window.
	if p.cacheValid &&
		ctx.ArrivalsSeen() == p.lastArrivals &&
		ctx.AvailableCount() == p.lastAvail &&
		p.nextCreateAt > now+p.cfg.PlanWindow {
		return
	}
	p.plan(ctx, now)
}

// OnArrival implements sim.Autoscaler: an arrival consumed an instance, so
// the pipeline is one short. Algorithm 4 plans on arrival events; waiting
// for the next tick would delay the marginal (tightest) creation by up to
// Δ and erode the hit-probability guarantee.
func (p *RobustScaler) OnArrival(ctx *sim.Context, _ sim.Query) {
	if m := p.cfg.PlanEveryArrivals; m > 0 {
		p.arrivalsSincePlan++
		if p.arrivalsSincePlan < m {
			return
		}
		p.arrivalsSincePlan = 0
	}
	p.plan(ctx, ctx.Now())
}

// horizonStep picks the Λ-inversion grid width.
func (p *RobustScaler) horizonStep(now float64) float64 {
	if p.cfg.HorizonStep > 0 {
		return p.cfg.HorizonStep
	}
	// Aim for ~1 expected arrival per cell, clamped to [0.05 s, 60 s].
	rate := p.in.Rate(now)
	if rate <= 0 {
		return 60
	}
	step := 1 / rate
	if step < 0.05 {
		step = 0.05
	}
	if step > 60 {
		step = 60
	}
	return step
}

// plan runs one round. Two commitments are combined, per Algorithm 4 and
// its Δ-window variant:
//
//   - depth: the next κ+1 upcoming queries must always have committed
//     creation times, however far in the future they fall — the κ
//     threshold (eq. 8) marks the queries that cannot reach the QoS
//     target if planned only when they become imminent. Without this,
//     sparse traffic starves: the (κ+1)-th arrival's creation time
//     recedes with the clock and is never scheduled in time.
//   - window: beyond that depth, schedule every creation that falls
//     inside [now, now+Δ] (the batch form used in the experiments).
func (p *RobustScaler) plan(ctx *sim.Context, now float64) {
	deadline := now + p.cfg.PlanWindow + p.cfg.WindowExtension
	h := decision.NewHorizon(p.in, now, p.horizonStep(now), 0)
	detTau, tauIsDet := p.cfg.Tau.(stats.Deterministic)
	minDepth := p.kappaNow(now) + 1
	if m := p.cfg.PlanEveryArrivals; m > 0 {
		// Literal Algorithm 4: commit the next κ+m creations, no window.
		minDepth = p.kappaNow(now) + m
		deadline = now
	}

	scheduled := 0
	i := ctx.AvailableCount() + 1
	nextAt := math.Inf(1)
	for scheduled < p.cfg.MaxPerTick {
		x, ok := p.decideOne(h, now, i, detTau, tauIsDet)
		if !ok {
			// Intensity mass exhausted within the look-ahead: the i-th
			// arrival is effectively never coming; stop planning.
			break
		}
		if i > minDepth && x > deadline {
			nextAt = x
			break
		}
		ctx.Schedule(x)
		scheduled++
		i++
	}
	p.lastArrivals = ctx.ArrivalsSeen()
	p.lastAvail = ctx.AvailableCount()
	p.nextCreateAt = nextAt
	p.cacheValid = true
}

// kappaNow evaluates the κ threshold (eq. 8) at the local intensity, the
// paper's recommended choice over a global bound. The RT and cost variants
// have no hitting-probability parameter; their planning depth uses the
// median (α = 0.5), deep enough to keep the pipeline primed while the
// window criterion governs the rest.
func (p *RobustScaler) kappaNow(now float64) int {
	rate := p.in.Rate(now)
	if r2 := p.in.Rate(now + meanOf(p.cfg.Tau)); r2 > rate {
		rate = r2 // look one startup-time ahead so ramps are not missed
	}
	alpha := 0.5
	if p.cfg.Variant == HP {
		alpha = p.cfg.Alpha
	}
	mc := p.cfg.MCSamples
	if mc > 200 {
		mc = 200 // κ only needs a coarse estimate
	}
	return decision.Kappa(rate, p.cfg.Tau, alpha, p.rng, mc)
}

// meanOf estimates a distribution's central value from its median.
func meanOf(d stats.Dist) float64 { return d.Quantile(0.5) }

// decideOne returns the absolute creation time for the i-th upcoming query
// after now under the configured formulation.
func (p *RobustScaler) decideOne(h *decision.Horizon, now float64, i int, detTau stats.Deterministic, tauIsDet bool) (float64, bool) {
	if p.cfg.Variant == HP && tauIsDet {
		// Exact path: x = Λ⁻¹(Gamma_i⁻¹(α)) − τ, clamped to now.
		q, ok := h.QuantileArrival(i, p.cfg.Alpha)
		if !ok {
			return 0, false
		}
		x := q - detTau.Value
		if x < now {
			x = now
		}
		return x, true
	}
	r := p.cfg.MCSamples
	if cap(p.xiBuf) < r {
		p.xiBuf = make([]float64, r)
		p.tauBuf = make([]float64, r)
	}
	xi := p.xiBuf[:r]
	tau := p.tauBuf[:r]
	for k := 0; k < r; k++ {
		u, ok := h.SampleArrival(p.rng, i)
		if !ok {
			return 0, false
		}
		xi[k] = u - now // relative epochs
		tau[k] = p.cfg.Tau.Sample(p.rng)
	}
	var xRel float64
	switch p.cfg.Variant {
	case HP:
		xRel, _ = decision.SolveHP(xi, tau, p.cfg.Alpha)
	case RT:
		xRel = decision.SolveRT(xi, tau, p.cfg.RTTarget)
	case Cost:
		xRel = decision.SolveCost(xi, tau, p.cfg.CostBudget)
	}
	if xRel < 0 {
		xRel = 0
	}
	return now + xRel, true
}
