package scaler

import (
	"math"
	"math/rand"
	"testing"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
)

// poissonQueries draws a homogeneous Poisson arrival sequence with
// exponential service times.
func poissonQueries(seed int64, lambda, horizon, meanSvc float64) []sim.Query {
	rng := rand.New(rand.NewSource(seed))
	arr := nhpp.Simulate(rng, nhpp.Constant{Lambda: lambda}, 0, horizon)
	qs := make([]sim.Query, len(arr))
	for i, a := range arr {
		qs[i] = sim.Query{Arrival: a, Service: stats.Exponential{Mean: meanSvc}.Sample(rng)}
	}
	return qs
}

func simCfg(horizon float64, tick float64) sim.Config {
	return sim.Config{
		Start:        0,
		End:          horizon,
		PendingDist:  stats.Deterministic{Value: 13},
		MeanPending:  13,
		MeanService:  20,
		TickInterval: tick,
		Seed:         7,
	}
}

func TestBPZeroIsReactive(t *testing.T) {
	qs := poissonQueries(1, 0.2, 2000, 20)
	res, err := sim.Run(qs, &BP{B: 0}, simCfg(2000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate() != 0 {
		t.Fatalf("BP(0) hit rate = %g, want 0", res.HitRate())
	}
	if math.Abs(res.RelativeCost()-1) > 0.05 {
		t.Fatalf("BP(0) relative cost = %g, want ≈1", res.RelativeCost())
	}
}

func TestBPLargePoolHitsEverything(t *testing.T) {
	// Sparse arrivals, big pool: every query should find a ready instance.
	qs := poissonQueries(2, 0.02, 5000, 20)
	res, err := sim.Run(qs, &BP{B: 5}, simCfg(5000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate() < 0.95 {
		t.Fatalf("BP(5) hit rate = %g, want ≥ 0.95", res.HitRate())
	}
	if res.RelativeCost() < 1.5 {
		t.Fatalf("BP(5) relative cost = %g, should far exceed reactive", res.RelativeCost())
	}
}

func TestBPPoolSizeMonotoneInQoS(t *testing.T) {
	qs := poissonQueries(3, 0.1, 5000, 20)
	var prevHit float64 = -1
	for _, b := range []int{0, 1, 3, 6} {
		res, err := sim.Run(qs, &BP{B: b}, simCfg(5000, 0))
		if err != nil {
			t.Fatal(err)
		}
		if res.HitRate() < prevHit-0.02 {
			t.Fatalf("hit rate degraded when pool grew: B=%d rate=%g prev=%g", b, res.HitRate(), prevHit)
		}
		prevHit = res.HitRate()
	}
}

func TestAdapBPTracksLoad(t *testing.T) {
	// Rate jumps 0.05 → 0.5 halfway; AdapBP should end with a larger pool
	// than it started and beat BP(1) on hit rate in the busy half.
	rng := rand.New(rand.NewSource(4))
	step := nhpp.Func{F: func(tt float64) float64 {
		if tt < 6000 {
			return 0.05
		}
		return 0.5
	}, Step: 10, MaxHorizon: 1e6}
	arr := nhpp.Simulate(rng, step, 0, 12000)
	qs := make([]sim.Query, len(arr))
	for i, a := range arr {
		qs[i] = sim.Query{Arrival: a, Service: 20}
	}
	cfg := simCfg(12000, 60)
	res, err := sim.Run(qs, NewAdapBP(30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate() < 0.5 {
		t.Fatalf("AdapBP hit rate = %g, too low", res.HitRate())
	}
}

func TestAdapBPShrinksPoolWhenIdle(t *testing.T) {
	// Traffic stops at t=2000; resize ticks must shed instances instead of
	// paying for an oversized pool forever.
	rng := rand.New(rand.NewSource(5))
	burst := nhpp.Func{F: func(tt float64) float64 {
		if tt < 2000 {
			return 0.3
		}
		return 0
	}, Step: 10, MaxHorizon: 1e6}
	arr := nhpp.Simulate(rng, burst, 0, 20000)
	qs := make([]sim.Query, len(arr))
	for i, a := range arr {
		qs[i] = sim.Query{Arrival: a, Service: 10}
	}
	cfg := simCfg(20000, 60)
	res, err := sim.Run(qs, NewAdapBP(20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With shedding, the post-traffic cost must be bounded: relative cost
	// stays modest instead of ~ pool × 18000 s.
	if res.RelativeCost() > 3 {
		t.Fatalf("AdapBP failed to shrink: relative cost %g", res.RelativeCost())
	}
}

func TestRobustConfigValidation(t *testing.T) {
	in := nhpp.Constant{Lambda: 1}
	tau := stats.Deterministic{Value: 13}
	cases := []RobustConfig{
		{Variant: HP, Alpha: 0, Tau: tau},
		{Variant: HP, Alpha: 1.2, Tau: tau},
		{Variant: RT, RTTarget: -1, Tau: tau},
		{Variant: Cost, CostBudget: -0.1, Tau: tau},
		{Variant: Variant(99), Tau: tau},
		{Variant: HP, Alpha: 0.1}, // nil Tau
	}
	for i, c := range cases {
		if _, err := NewRobustScaler(in, c); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewRobustScaler(nil, RobustConfig{Variant: HP, Alpha: 0.1, Tau: tau}); err == nil {
		t.Fatal("nil intensity accepted")
	}
}

// The core guarantee (Proposition 1): with the true intensity as input,
// RobustScaler-HP achieves hitting probability ≈ 1−α.
func TestRobustScalerHPAchievesTarget(t *testing.T) {
	const (
		lambda  = 0.5
		horizon = 8000.0
	)
	for _, alpha := range []float64{0.1, 0.3} {
		qs := poissonQueries(6, lambda, horizon, 20)
		p, err := NewRobustScaler(nhpp.Constant{Lambda: lambda}, RobustConfig{
			Variant: HP, Alpha: alpha,
			Tau:        stats.Deterministic{Value: 13},
			PlanWindow: 1, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(qs, p, simCfg(horizon, 1))
		if err != nil {
			t.Fatal(err)
		}
		got := res.HitRate()
		if math.Abs(got-(1-alpha)) > 0.05 {
			t.Fatalf("α=%g: hit rate %g, want %g", alpha, got, 1-alpha)
		}
	}
}

// RobustScaler-HP via the Monte Carlo path (non-deterministic τ) must also
// land near the target.
func TestRobustScalerHPMonteCarloPath(t *testing.T) {
	const (
		lambda  = 0.5
		horizon = 6000.0
		alpha   = 0.2
	)
	rng := rand.New(rand.NewSource(8))
	arr := nhpp.Simulate(rng, nhpp.Constant{Lambda: lambda}, 0, horizon)
	qs := make([]sim.Query, len(arr))
	for i, a := range arr {
		qs[i] = sim.Query{Arrival: a, Service: 20}
	}
	tau := stats.Exponential{Mean: 13}
	p, err := NewRobustScaler(nhpp.Constant{Lambda: lambda}, RobustConfig{
		Variant: HP, Alpha: alpha, Tau: tau,
		MCSamples: 500, PlanWindow: 1, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := simCfg(horizon, 1)
	cfg.PendingDist = tau
	res, err := sim.Run(qs, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.HitRate()-(1-alpha)) > 0.06 {
		t.Fatalf("MC-path hit rate %g, want %g", res.HitRate(), 1-alpha)
	}
}

// RobustScaler-RT: the average waiting time must be ≈ the target.
func TestRobustScalerRTAchievesTarget(t *testing.T) {
	const (
		lambda  = 0.5
		horizon = 6000.0
		target  = 2.0 // seconds of allowed expected wait
	)
	qs := poissonQueries(9, lambda, horizon, 20)
	p, err := NewRobustScaler(nhpp.Constant{Lambda: lambda}, RobustConfig{
		Variant: RT, RTTarget: target,
		Tau:       stats.Deterministic{Value: 13},
		MCSamples: 500, PlanWindow: 1, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(qs, p, simCfg(horizon, 1))
	if err != nil {
		t.Fatal(err)
	}
	meanWait := stats.Mean(res.Waits)
	if math.Abs(meanWait-target) > 0.8 {
		t.Fatalf("mean wait %g, want ≈%g", meanWait, target)
	}
}

// RobustScaler-cost: average idle time per instance ≈ the budget.
func TestRobustScalerCostRespectsBudget(t *testing.T) {
	const (
		lambda  = 0.5
		horizon = 6000.0
		budget  = 2.0
	)
	qs := poissonQueries(10, lambda, horizon, 20)
	p, err := NewRobustScaler(nhpp.Constant{Lambda: lambda}, RobustConfig{
		Variant: Cost, CostBudget: budget,
		Tau:       stats.Deterministic{Value: 13},
		MCSamples: 500, PlanWindow: 1, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(qs, p, simCfg(horizon, 1))
	if err != nil {
		t.Fatal(err)
	}
	idle := res.IdleCostPerQuery(13)
	if math.Abs(idle-budget) > 1.0 {
		t.Fatalf("idle cost per query %g, want ≈%g", idle, budget)
	}
}

// A tighter α must not cost less: the HP-cost trade-off is monotone.
func TestRobustScalerParetoMonotonicity(t *testing.T) {
	const (
		lambda  = 0.3
		horizon = 6000.0
	)
	qs := poissonQueries(11, lambda, horizon, 20)
	var prevCost float64 = -1
	var prevHit float64 = -1
	for _, alpha := range []float64{0.5, 0.2, 0.05} {
		p, err := NewRobustScaler(nhpp.Constant{Lambda: lambda}, RobustConfig{
			Variant: HP, Alpha: alpha,
			Tau:        stats.Deterministic{Value: 13},
			PlanWindow: 1, Seed: 15,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(qs, p, simCfg(horizon, 1))
		if err != nil {
			t.Fatal(err)
		}
		if res.HitRate() < prevHit-0.03 {
			t.Fatalf("hit rate dropped when α tightened: %g after %g", res.HitRate(), prevHit)
		}
		if res.TotalCost < prevCost*0.95 {
			t.Fatalf("cost dropped when α tightened: %g after %g", res.TotalCost, prevCost)
		}
		prevCost = res.TotalCost
		prevHit = res.HitRate()
	}
}

// Coarser planning windows must not reduce cost (Fig. 10(d) direction).
func TestPlanningFrequencyCostEffect(t *testing.T) {
	const (
		lambda  = 0.5
		horizon = 6000.0
	)
	qs := poissonQueries(12, lambda, horizon, 20)
	var costs []float64
	for _, delta := range []float64{1, 30} {
		p, err := NewRobustScaler(nhpp.Constant{Lambda: lambda}, RobustConfig{
			Variant: HP, Alpha: 0.1,
			Tau:        stats.Deterministic{Value: 13},
			PlanWindow: delta, Seed: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := simCfg(horizon, delta)
		res, err := sim.Run(qs, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, res.TotalCost)
	}
	if costs[1] < costs[0]*0.98 {
		t.Fatalf("Δ=30 cost %g below Δ=1 cost %g", costs[1], costs[0])
	}
}

func TestRobustScalerZeroTrafficSchedulesNothing(t *testing.T) {
	p, err := NewRobustScaler(nhpp.Constant{Lambda: 0}, RobustConfig{
		Variant: HP, Alpha: 0.1,
		Tau: stats.Deterministic{Value: 13}, PlanWindow: 1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nil, p, simCfg(1000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCost != 0 {
		t.Fatalf("zero traffic produced cost %g", res.TotalCost)
	}
	if res.InstancesCreated != 0 {
		t.Fatalf("zero traffic created %d instances", res.InstancesCreated)
	}
}

func TestPolicyStringLabels(t *testing.T) {
	if (&BP{B: 3}).String() != "BP(B=3)" {
		t.Fatal("BP label")
	}
	if NewAdapBP(30).String() != "AdapBP(c=30)" {
		t.Fatal("AdapBP label")
	}
	p, _ := NewRobustScaler(nhpp.Constant{Lambda: 1}, RobustConfig{
		Variant: HP, Alpha: 0.1, Tau: stats.Deterministic{Value: 1},
	})
	if p.String() != "RobustScaler-HP(1-α=0.9)" {
		t.Fatalf("RS label: %s", p.String())
	}
}
