package scaler

import (
	"math"
	"testing"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
)

func TestCalibrateHPProducesMonotoneCurve(t *testing.T) {
	const (
		lambda  = 0.4
		horizon = 6000.0
	)
	qs := poissonQueries(31, lambda, horizon, 20)
	tau := stats.Deterministic{Value: 13}
	cal, err := CalibrateHP(nhpp.Constant{Lambda: lambda}, qs, 0, horizon,
		[]float64{0.3, 0.6, 0.9}, RobustConfig{
			Variant: HP, Alpha: 0.5, Tau: tau, PlanWindow: 1, Seed: 32,
		}, tau, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Points) != 3 {
		t.Fatalf("calibration has %d points", len(cal.Points))
	}
	for i := 1; i < len(cal.Points); i++ {
		if cal.Points[i].Achieved < cal.Points[i-1].Achieved {
			t.Fatal("calibration points not sorted by achieved level")
		}
	}
	// With the true intensity the curve should sit near the diagonal.
	for _, pt := range cal.Points {
		if math.Abs(pt.Achieved-pt.Nominal) > 0.1 {
			t.Fatalf("nominal %g achieved %g — calibration curve too far off", pt.Nominal, pt.Achieved)
		}
	}
	// Inversion: asking for an achieved level between two measured points
	// must land between their nominal levels.
	mid := (cal.Points[0].Achieved + cal.Points[1].Achieved) / 2
	nom := cal.NominalFor(mid)
	lo, hi := cal.Points[0].Nominal, cal.Points[1].Nominal
	if lo > hi {
		lo, hi = hi, lo
	}
	if nom < lo-1e-9 || nom > hi+1e-9 {
		t.Fatalf("NominalFor(%g) = %g outside [%g, %g]", mid, nom, lo, hi)
	}
}

func TestCalibrationNominalForClamps(t *testing.T) {
	cal := &Calibration{Points: []CalibrationPoint{
		{Nominal: 0.5, Achieved: 0.55},
		{Nominal: 0.9, Achieved: 0.92},
	}}
	if got := cal.NominalFor(0.1); got != 0.5 {
		t.Fatalf("below-range NominalFor = %g, want 0.5", got)
	}
	if got := cal.NominalFor(0.99); got != 0.9 {
		t.Fatalf("above-range NominalFor = %g, want 0.9", got)
	}
	if got := cal.NominalFor(0.735); math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("interpolated NominalFor = %g, want 0.7", got)
	}
}

func TestCalibrateHPValidation(t *testing.T) {
	tau := stats.Deterministic{Value: 13}
	if _, err := CalibrateHP(nhpp.Constant{Lambda: 1}, nil, 0, 10,
		[]float64{0.5}, RobustConfig{Variant: HP, Alpha: 0.5, Tau: tau, PlanWindow: 1}, tau, 1); err == nil {
		t.Fatal("single nominal level accepted")
	}
	if _, err := CalibrateHP(nhpp.Constant{Lambda: 1}, nil, 0, 10,
		[]float64{0.5, 1.5}, RobustConfig{Variant: HP, Alpha: 0.5, Tau: tau, PlanWindow: 1}, tau, 1); err == nil {
		t.Fatal("out-of-range nominal accepted")
	}
}

// Literal Algorithm 4 cadence (plan every m arrivals, commit κ+m deep)
// must deliver the same 1−α guarantee as the Δ-window variant.
func TestRobustScalerArrivalCadenceAchievesTarget(t *testing.T) {
	const (
		lambda  = 0.5
		horizon = 8000.0
		alpha   = 0.2
	)
	qs := poissonQueries(34, lambda, horizon, 20)
	p, err := NewRobustScaler(nhpp.Constant{Lambda: lambda}, RobustConfig{
		Variant: HP, Alpha: alpha,
		Tau:               stats.Deterministic{Value: 13},
		PlanEveryArrivals: 3,
		Seed:              35,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(qs, p, sim.Config{
		Start: 0, End: horizon,
		PendingDist: stats.Deterministic{Value: 13}, MeanPending: 13,
		TickInterval: 0, // no ticks: pure arrival cadence
		Seed:         36,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.HitRate()-(1-alpha)) > 0.05 {
		t.Fatalf("arrival-cadence hit rate %g, want %g", res.HitRate(), 1-alpha)
	}
}

// Proposition 1's variance bound: the hitting ratio of N queries has
// variance ≤ 2(κ+m)α(1−α)/(N−κ). Check the empirical across independent
// replications stays within a small multiple of the bound.
func TestProposition1VarianceBound(t *testing.T) {
	const (
		lambda = 0.5
		alpha  = 0.2
		nQ     = 300
		reps   = 30
	)
	tau := stats.Deterministic{Value: 13}
	kappa := 0
	for i := 1; ; i++ {
		if (stats.Gamma{Shape: float64(i), Scale: 1}).Quantile(alpha)/lambda >= 13 {
			kappa = i - 1
			break
		}
	}
	m := 1
	var ratios []float64
	for rep := 0; rep < reps; rep++ {
		qs := poissonQueries(int64(100+rep), lambda, float64(nQ)*3/lambda, 20)
		if len(qs) > nQ {
			qs = qs[:nQ]
		}
		p, err := NewRobustScaler(nhpp.Constant{Lambda: lambda}, RobustConfig{
			Variant: HP, Alpha: alpha, Tau: tau,
			PlanEveryArrivals: m, Seed: int64(rep),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(qs, p, sim.Config{
			Start: 0, End: qs[len(qs)-1].Arrival + 1,
			PendingDist: tau, MeanPending: 13, Seed: int64(rep),
		})
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for i := kappa; i < len(res.Hits); i++ {
			if res.Hits[i] {
				hits++
			}
		}
		ratios = append(ratios, float64(hits)/float64(len(res.Hits)-kappa))
	}
	bound := 2 * float64(kappa+m) * alpha * (1 - alpha) / float64(nQ-kappa)
	varr := stats.Variance(ratios)
	// The bound is loose; the empirical variance must certainly respect it
	// (allow sampling error of the variance estimate itself).
	if varr > 2*bound {
		t.Fatalf("empirical hitting-ratio variance %g exceeds 2× Proposition 1 bound %g", varr, bound)
	}
}

// WindowExtension must lead to creations at or before the unextended
// variant's, compensating decision latency (more cost, never less lead).
func TestWindowExtensionAddsLead(t *testing.T) {
	const (
		lambda  = 0.5
		horizon = 4000.0
	)
	qs := poissonQueries(37, lambda, horizon, 20)
	run := func(ext float64) float64 {
		p, err := NewRobustScaler(nhpp.Constant{Lambda: lambda}, RobustConfig{
			Variant: HP, Alpha: 0.1,
			Tau:             stats.Deterministic{Value: 13},
			PlanWindow:      5,
			WindowExtension: ext,
			Seed:            38,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(qs, p, sim.Config{
			Start: 0, End: horizon,
			PendingDist: stats.Deterministic{Value: 13}, MeanPending: 13,
			TickInterval: 5, Seed: 39,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.HitRate()
	}
	base := run(0)
	extended := run(10)
	if extended < base-0.02 {
		t.Fatalf("extension reduced hit rate: %g vs %g", extended, base)
	}
}
