package scaler

import (
	"fmt"
	"sort"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/sim"
	"robustscaler/internal/stats"
)

// CalibrationPoint is one (nominal, achieved) hitting-probability pair
// measured on training data.
type CalibrationPoint struct {
	Nominal  float64
	Achieved float64
}

// Calibration maps nominal hitting-probability levels to the levels the
// deployed system actually achieves, following the paper's practical
// guideline (Sec. VI-C): run Algorithm 4 on training data at a ladder of
// nominal levels, record the achieved hit rates, and invert the mapping
// to pick the nominal level that delivers a desired actual level.
type Calibration struct {
	Points []CalibrationPoint // ascending by Achieved
}

// CalibrateHP replays the training queries under RobustScaler-HP at each
// nominal level and records the achieved hitting probability. queries
// must be sorted by arrival; cfg supplies the pending-time distribution
// and planning window, and its Alpha is overwritten per level.
func CalibrateHP(in nhpp.Intensity, queries []sim.Query, start, end float64,
	nominals []float64, cfg RobustConfig, tau stats.Dist, simSeed int64) (*Calibration, error) {
	if len(nominals) < 2 {
		return nil, fmt.Errorf("scaler: calibration needs ≥ 2 nominal levels, got %d", len(nominals))
	}
	cal := &Calibration{}
	for _, nom := range nominals {
		if nom <= 0 || nom >= 1 {
			return nil, fmt.Errorf("scaler: nominal level %g outside (0,1)", nom)
		}
		c := cfg
		c.Variant = HP
		c.Alpha = 1 - nom
		p, err := NewRobustScaler(in, c)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(queries, p, sim.Config{
			Start:        start,
			End:          end,
			PendingDist:  tau,
			MeanPending:  tau.Quantile(0.5),
			TickInterval: c.PlanWindow,
			Seed:         simSeed,
		})
		if err != nil {
			return nil, err
		}
		cal.Points = append(cal.Points, CalibrationPoint{Nominal: nom, Achieved: res.HitRate()})
	}
	sort.Slice(cal.Points, func(i, j int) bool {
		return cal.Points[i].Achieved < cal.Points[j].Achieved
	})
	return cal, nil
}

// NominalFor returns the nominal level to configure so the system
// achieves the desired actual hitting probability, by monotone linear
// interpolation of the calibration curve (clamped at the measured
// endpoints).
func (c *Calibration) NominalFor(desiredActual float64) float64 {
	pts := c.Points
	if len(pts) == 0 {
		return desiredActual
	}
	if desiredActual <= pts[0].Achieved {
		return pts[0].Nominal
	}
	last := pts[len(pts)-1]
	if desiredActual >= last.Achieved {
		return last.Nominal
	}
	for i := 1; i < len(pts); i++ {
		if desiredActual <= pts[i].Achieved {
			lo, hi := pts[i-1], pts[i]
			if hi.Achieved == lo.Achieved {
				return lo.Nominal
			}
			frac := (desiredActual - lo.Achieved) / (hi.Achieved - lo.Achieved)
			return lo.Nominal + frac*(hi.Nominal-lo.Nominal)
		}
	}
	return last.Nominal
}
