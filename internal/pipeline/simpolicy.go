package pipeline

// SimPolicy adapts the pipeline's Optimize stage to internal/sim's
// Autoscaler interface, closing the loop inside the simulator: every
// planning tick collects the committed pool size from the simulation
// context, analyzes the expected arrivals over the replenish lead from
// the engine-trained model, optimizes through the same Decider the live
// controller runs (min/max, rate steps, stabilization window,
// cooldown), and actuates by reconciling the pool with Schedule /
// CancelScheduled / DeleteIdle — the same mutation verbs the paper's
// AdapBP baseline uses, so the scorecard compares policies, not
// plumbing.

import (
	"fmt"

	"robustscaler/internal/engine"
	"robustscaler/internal/sim"
)

// SimPolicy replays the Collect → Analyze → Optimize → Actuate stages
// inside a simulation run. Fields are set before the run; the decision
// state resets in Init.
type SimPolicy struct {
	// Analyzer supplies Λ(from, to) — typically the engine trained on
	// the scenario's ingest phase.
	Analyzer Analyzer
	// Knobs are the HPA-style behaviors under test.
	Knobs engine.AutoscaleKnobs
	// Target is the readiness probability (resolved; 0 is invalid
	// here — the scenario resolves defaults before the run).
	Target float64
	// Lead is the replenish lead time in seconds (pending + tick).
	Lead float64

	dec    Decider
	target int
	stats  SimStats
}

// SimStats tallies the replayed decisions for the scorecard.
type SimStats struct {
	Decisions int `json:"decisions"`
	Up        int `json:"up"`
	Down      int `json:"down"`
	Hold      int `json:"hold"`
	Clamped   int `json:"clamped"`
}

// Stats returns the decision tallies of the last run.
func (p *SimPolicy) Stats() SimStats { return p.stats }

// Init implements sim.Autoscaler.
func (p *SimPolicy) Init(*sim.Context) {
	p.dec = Decider{}
	p.target = 0
	p.stats = SimStats{}
}

// OnTick implements sim.Autoscaler: one full pipeline decision.
func (p *SimPolicy) OnTick(ctx *sim.Context, now float64) {
	lambda, err := p.Analyzer.ExpectedArrivals(now, now+p.Lead)
	if err != nil {
		return // no model: leave the pool alone (reactive fallback)
	}
	rec := p.dec.Decide(DecideInput{
		Now:     now,
		Lambda:  lambda,
		Lead:    p.Lead,
		Target:  p.Target,
		Current: ctx.AvailableCount(),
		Knobs:   p.Knobs,
	})
	p.stats.Decisions++
	switch rec.Verdict {
	case VerdictUp:
		p.stats.Up++
	case VerdictDown:
		p.stats.Down++
	default:
		p.stats.Hold++
	}
	if rec.ClampedBy != "" {
		p.stats.Clamped++
	}
	p.target = rec.Desired
	p.reconcile(ctx)
}

// OnArrival implements sim.Autoscaler: the consumed instance is
// replenished toward the current target (the pool model's replenish
// step; the target itself only moves on ticks).
func (p *SimPolicy) OnArrival(ctx *sim.Context, _ sim.Query) {
	p.reconcile(ctx)
}

// reconcile brings the committed instance count to the target, the
// same way AdapBP does: schedule up, cancel-then-delete down.
func (p *SimPolicy) reconcile(ctx *sim.Context) {
	have := ctx.AvailableCount()
	switch {
	case have < p.target:
		for i := have; i < p.target; i++ {
			ctx.Schedule(ctx.Now())
		}
	case have > p.target:
		excess := have - p.target
		excess -= ctx.CancelScheduled(excess)
		if excess > 0 {
			ctx.DeleteIdle(excess)
		}
	}
}

// String identifies the policy in experiment output.
func (p *SimPolicy) String() string {
	return fmt.Sprintf("Pipeline(target=%g)", p.Target)
}
