package pipeline

// Observability for the autoscaler pipeline, following the repo's
// cardinality rule: verdict/clamp labels are a small fixed set, and the
// replica gauges are fleet aggregates computed at scrape time — never
// per-workload label values.

import (
	"robustscaler/internal/metrics"
)

// Metrics is the pipeline's fleet-wide instrument set.
type Metrics struct {
	recommendations map[string]*metrics.Counter
	actuations      *metrics.Counter
	failures        *metrics.Counter
	decisionSeconds *metrics.Histogram
}

// countRecommendation records one decision: its verdict (up/down/hold,
// or "clamped" when a behavior bounded it) and its latency.
func (m *Metrics) countRecommendation(rec *Recommendation, seconds float64) {
	verdict := rec.Verdict
	if rec.ClampedBy != "" {
		verdict = "clamped"
	}
	if c, ok := m.recommendations[verdict]; ok {
		c.Inc()
	}
	m.decisionSeconds.Observe(seconds)
}

// Instrument registers the pipeline's metrics into m and wires them
// into every controller the manager creates (call once at startup,
// before traffic, like Registry.Instrument).
func (mgr *Manager) Instrument(m *metrics.Registry) {
	pm := &Metrics{recommendations: map[string]*metrics.Counter{}}
	for _, verdict := range []string{"up", "down", "hold", "clamped"} {
		pm.recommendations[verdict] = m.Counter("robustscaler_autoscale_recommendations_total",
			"Autoscale recommendations computed, by verdict (clamped = a behavior or window bounded the decision).",
			metrics.Label{Name: "verdict", Value: verdict})
	}
	pm.actuations = m.Counter("robustscaler_autoscale_actuations_total",
		"Recommendations applied to the actuator backend by the background loop.")
	pm.failures = m.Counter("robustscaler_autoscale_failures_total",
		"Pipeline decisions or actuations that failed (collect error, missing model, backend error).")
	pm.decisionSeconds = m.Histogram("robustscaler_autoscale_decision_seconds",
		"Wall time of one Collect-Analyze-Optimize pass.", metrics.DefBuckets)
	m.GaugeFunc("robustscaler_autoscale_desired_replicas",
		"Sum over workloads of the last applied desired replica count.", func() float64 {
			n := 0.0
			for _, c := range mgr.snapshot() {
				n += float64(c.act.State(c.id, c.eng.Now()).Desired)
			}
			return n
		})
	m.GaugeFunc("robustscaler_autoscale_current_replicas",
		"Sum over workloads of the actuator's created replica count.", func() float64 {
			n := 0.0
			for _, c := range mgr.snapshot() {
				n += float64(c.act.State(c.id, c.eng.Now()).Current)
			}
			return n
		})
	m.GaugeFunc("robustscaler_autoscale_workloads_enabled",
		"Workloads with autoscale actuation enabled.", func() float64 {
			n := 0.0
			for _, id := range mgr.reg.Workloads() {
				if e, ok := mgr.reg.Get(id); ok && e.EngineConfig().Autoscale.Enabled {
					n++
				}
			}
			return n
		})

	mgr.mu.Lock()
	mgr.m = pm
	for _, c := range mgr.ctrls {
		c.m = pm
	}
	mgr.mu.Unlock()
}
