package pipeline

// The Optimize stage: a pure, deterministic decision function from
// forecast inputs to a clamped replica recommendation. The Decider
// carries only the state the HPA-style behaviors need — the trailing
// recommendation history for the scale-down stabilization window and
// the last scale-down stamp for the cooldown — so the same type drives
// the live controller, the simulated replay (SimPolicy) and the unit
// tests, and a fixed input sequence always yields byte-identical
// recommendations.

import (
	"math"

	"robustscaler/internal/engine"
	"robustscaler/internal/stats"
)

// Clamp reasons, reported in Recommendation.ClampedBy so an operator
// can see which behavior or window bounded the decision.
const (
	ClampMinReplicas   = "min_replicas"
	ClampMaxReplicas   = "max_replicas"
	ClampUpStep        = "scale_up_max_step"
	ClampDownStep      = "scale_down_max_step"
	ClampStabilization = "scale_down_stabilization_window"
	ClampCooldown      = "scale_down_cooldown"
)

// Verdicts: the decision's direction relative to the current count.
const (
	VerdictUp   = "up"
	VerdictDown = "down"
	VerdictHold = "hold"
)

// DecideInput is one decision's inputs.
type DecideInput struct {
	// Now anchors the decision (workload clock seconds).
	Now float64
	// Lambda is Λ(now, now+Lead): the expected arrivals over the
	// replenish lead time, from the analyzer.
	Lambda float64
	// Lead is the covered horizon in seconds (reported back in the
	// recommendation inputs).
	Lead float64
	// Target is the readiness probability the pool must cover.
	Target float64
	// Current is the replica count the backend reports now.
	Current int
	// Knobs are the workload's autoscale behaviors.
	Knobs engine.AutoscaleKnobs
}

// Inputs echoes what a recommendation was computed from, so the
// endpoint's response is auditable without correlating logs.
type Inputs struct {
	ExpectedArrivals float64 `json:"expected_arrivals"`
	LeadSeconds      float64 `json:"lead_seconds"`
	Target           float64 `json:"target"`
	CurrentReplicas  int     `json:"current_replicas"`
}

// Recommendation is one decision: the desired replica count, the
// direction, which behavior clamped it, and the inputs it came from —
// the ADR-003 HPA shape (min/max, behaviors, windows) as a decision
// record.
type Recommendation struct {
	Workload string  `json:"workload,omitempty"`
	Now      float64 `json:"now"`
	// Desired is the post-clamp replica target the actuator applies.
	Desired int `json:"desired_replicas"`
	// Raw is the model-driven pool size before any behavior clamped it:
	// the Target-quantile of Poisson(Λ).
	Raw int `json:"raw_replicas"`
	// Verdict is "up", "down" or "hold", comparing Desired to the
	// current count.
	Verdict string `json:"verdict"`
	// ClampedBy names the behavior/window that bounded the decision
	// ("" when the raw recommendation was applied unclamped).
	ClampedBy string `json:"clamped_by,omitempty"`
	// Inputs echoes the decision inputs.
	Inputs Inputs `json:"inputs"`
	// Sample is the collected state the decision ran over (set by the
	// controller; absent in bare Decider use).
	Sample *Sample `json:"sample,omitempty"`
}

// histEntry is one trailing recommendation (post min/max, pre-relative
// clamps) for the stabilization window.
type histEntry struct {
	at      float64
	bounded int
}

// Decider is the optimizer's decision state. The zero value is ready to
// use.
type Decider struct {
	hist []histEntry
	// lastScaleDown stamps the most recent decision that actually
	// lowered the desired count; the cooldown measures from it.
	lastScaleDown float64
	hasScaledDown bool
}

// Decide computes one recommendation and records it in the trailing
// history. Pure apart from the Decider's own state: no clock, no RNG —
// a fixed input sequence yields an identical recommendation sequence.
func (d *Decider) Decide(in DecideInput) Recommendation {
	k := in.Knobs
	rec := Recommendation{
		Now: in.Now,
		Inputs: Inputs{
			ExpectedArrivals: in.Lambda,
			LeadSeconds:      in.Lead,
			Target:           in.Target,
			CurrentReplicas:  in.Current,
		},
	}

	// Analyze → raw desired: the pool must hold the Target-quantile of
	// the arrivals expected before replacements can be ready (the
	// paper's one-instance-per-query pool model).
	raw := poissonQuantile(in.Lambda, in.Target)
	rec.Raw = raw

	// Absolute bounds first: min/max replicas.
	desired := raw
	if desired < k.MinReplicas {
		desired = k.MinReplicas
		rec.ClampedBy = ClampMinReplicas
	}
	maxR := k.MaxReplicas
	if maxR <= 0 {
		maxR = maxDesiredReplicas
	}
	if desired > maxR {
		desired = maxR
		if k.MaxReplicas > 0 {
			rec.ClampedBy = ClampMaxReplicas
		}
	}

	// The stabilization window looks at bounded recommendations — what
	// the optimizer wanted within min/max — not at post-rate-clamp
	// values, which would make the window see its own damping.
	d.push(in.Now, desired, k.ScaleDownStabilizationSeconds)

	cur := in.Current
	switch {
	case desired > cur:
		if k.ScaleUpMaxStep > 0 && desired-cur > k.ScaleUpMaxStep {
			desired = cur + k.ScaleUpMaxStep
			rec.ClampedBy = ClampUpStep
		}
	case desired < cur:
		// HPA scale-down stabilization: never drop below the highest
		// recommendation made within the trailing window.
		if w := k.ScaleDownStabilizationSeconds; w > 0 {
			if m := d.windowMax(in.Now - w); m > desired {
				desired = m
				if desired > cur {
					desired = cur
				}
				rec.ClampedBy = ClampStabilization
			}
		}
		if desired < cur {
			if cd := k.ScaleDownCooldownSeconds; cd > 0 && d.hasScaledDown && in.Now-d.lastScaleDown < cd {
				desired = cur
				rec.ClampedBy = ClampCooldown
			} else if k.ScaleDownMaxStep > 0 && cur-desired > k.ScaleDownMaxStep {
				desired = cur - k.ScaleDownMaxStep
				rec.ClampedBy = ClampDownStep
			}
		}
	}

	if desired < cur {
		d.lastScaleDown = in.Now
		d.hasScaledDown = true
	}
	rec.Desired = desired
	switch {
	case desired > cur:
		rec.Verdict = VerdictUp
	case desired < cur:
		rec.Verdict = VerdictDown
	default:
		rec.Verdict = VerdictHold
	}
	return rec
}

// push appends one bounded recommendation and trims entries older than
// the window (plus the newest one outside it is kept until it expires
// naturally; an empty window keeps nothing).
func (d *Decider) push(at float64, bounded int, window float64) {
	if window <= 0 {
		d.hist = d.hist[:0]
		return
	}
	d.hist = append(d.hist, histEntry{at: at, bounded: bounded})
	cut := at - window
	i := 0
	for i < len(d.hist) && d.hist[i].at < cut {
		i++
	}
	if i > 0 {
		d.hist = append(d.hist[:0], d.hist[i:]...)
	}
	// A poller hammering the recommendation endpoint fills the window
	// with duplicates; bound the memory by dropping the oldest entries
	// (the guarantee degrades gracefully — the window can only get
	// shorter, never stale).
	if len(d.hist) > maxHistEntries {
		d.hist = append(d.hist[:0], d.hist[len(d.hist)-maxHistEntries:]...)
	}
}

// maxHistEntries bounds the stabilization history.
const maxHistEntries = 4096

// windowMax returns the highest bounded recommendation at or after cut.
func (d *Decider) windowMax(cut float64) int {
	m := 0
	for _, h := range d.hist {
		if h.at >= cut && h.bounded > m {
			m = h.bounded
		}
	}
	return m
}

// maxDesiredReplicas is the sanity cap applied when max_replicas is
// unset, mirroring the config plane's validation cap.
const maxDesiredReplicas = 1_000_000

// poissonQuantile returns the smallest k with P(X ≤ k) ≥ q for
// X ~ Poisson(lambda): the pool size covering the arrival count at
// probability q. Guarded against degenerate inputs: a non-positive or
// non-finite lambda recommends 0 and lets min_replicas speak.
func poissonQuantile(lambda, q float64) int {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return 0
	}
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		q = 1 - 1e-12
	}
	// Past the sanity cap the quantile is within a rounding error of the
	// mean anyway, and the caller clamps to the cap regardless; skip the
	// scan instead of walking it a million steps.
	if lambda >= maxDesiredReplicas {
		return maxDesiredReplicas
	}
	p := stats.Poisson{Lambda: lambda}
	k := int(lambda - 10*math.Sqrt(lambda) - 2)
	if k < 0 {
		k = 0
	}
	for p.CDF(k) < q {
		k++
	}
	for k > 0 && p.CDF(k-1) >= q {
		k--
	}
	return k
}
