package pipeline

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"robustscaler/internal/engine"
	"robustscaler/internal/stats"
)

// knobs is shorthand for test decider configs.
type knobs = engine.AutoscaleKnobs

func TestPoissonQuantile(t *testing.T) {
	cases := []struct {
		lambda, q float64
		want      int
	}{
		{0, 0.9, 0},
		{-5, 0.9, 0},
		{math.NaN(), 0.9, 0},
		{math.Inf(1), 0.9, 0},
		{10, 0, 0},
	}
	for _, tc := range cases {
		if got := poissonQuantile(tc.lambda, tc.q); got != tc.want {
			t.Errorf("poissonQuantile(%g, %g) = %d, want %d", tc.lambda, tc.q, got, tc.want)
		}
	}
	// The definition: smallest k with CDF(k) ≥ q.
	for _, lambda := range []float64{0.3, 2, 17.5, 400} {
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
			k := poissonQuantile(lambda, q)
			qq := q
			if qq >= 1 {
				qq = 1 - 1e-12
			}
			p := stats.Poisson{Lambda: lambda}
			if p.CDF(k) < qq {
				t.Fatalf("quantile(%g, %g) = %d but CDF(k) = %g < q", lambda, q, k, p.CDF(k))
			}
			if k > 0 && p.CDF(k-1) >= qq {
				t.Fatalf("quantile(%g, %g) = %d not minimal: CDF(k-1) = %g ≥ q", lambda, q, k, p.CDF(k-1))
			}
		}
	}
	// The cap short-circuit: an absurd lambda recommends the cap, not a
	// million-step scan.
	if got := poissonQuantile(2e6, 0.9); got != maxDesiredReplicas {
		t.Fatalf("quantile(2e6) = %d, want the %d cap", got, maxDesiredReplicas)
	}
}

func TestDeciderBehaviors(t *testing.T) {
	// Each case is a fresh decider deciding once (relative behaviors
	// that need history get their own subtests below).
	cases := []struct {
		name        string
		in          DecideInput
		wantDesired int
		wantVerdict string
		wantClamp   string
	}{
		{"raw up", DecideInput{Lambda: 20, Target: 0.9, Current: 10}, 26, VerdictUp, ""},
		{"raw hold", DecideInput{Lambda: 20, Target: 0.9, Current: 26}, 26, VerdictHold, ""},
		{"raw down", DecideInput{Lambda: 20, Target: 0.9, Current: 40}, 26, VerdictDown, ""},
		{"min floor", DecideInput{Lambda: 0, Target: 0.9, Current: 0,
			Knobs: knobs{MinReplicas: 3}}, 3, VerdictUp, ClampMinReplicas},
		{"max cap", DecideInput{Lambda: 20, Target: 0.9, Current: 5,
			Knobs: knobs{MaxReplicas: 10}}, 10, VerdictUp, ClampMaxReplicas},
		{"up step", DecideInput{Lambda: 20, Target: 0.9, Current: 5,
			Knobs: knobs{ScaleUpMaxStep: 4}}, 9, VerdictUp, ClampUpStep},
		{"down step", DecideInput{Lambda: 20, Target: 0.9, Current: 40,
			Knobs: knobs{ScaleDownMaxStep: 6}}, 34, VerdictDown, ClampDownStep},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d Decider
			rec := d.Decide(tc.in)
			if rec.Desired != tc.wantDesired || rec.Verdict != tc.wantVerdict || rec.ClampedBy != tc.wantClamp {
				t.Fatalf("Decide(%+v) = desired %d verdict %q clamp %q, want %d %q %q",
					tc.in, rec.Desired, rec.Verdict, rec.ClampedBy, tc.wantDesired, tc.wantVerdict, tc.wantClamp)
			}
		})
	}

	t.Run("stabilization window", func(t *testing.T) {
		var d Decider
		k := knobs{ScaleDownStabilizationSeconds: 60}
		// A high recommendation at t=0...
		d.Decide(DecideInput{Now: 0, Lambda: 40, Target: 0.9, Current: 48, Knobs: k})
		// ...pins the floor for a drop at t=30: the window's max (48) caps
		// at current, so the decision is a hold, clamped by the window.
		rec := d.Decide(DecideInput{Now: 30, Lambda: 2, Target: 0.9, Current: 48, Knobs: k})
		if rec.Desired != 48 || rec.Verdict != VerdictHold || rec.ClampedBy != ClampStabilization {
			t.Fatalf("inside window: desired %d verdict %q clamp %q, want 48 hold %q",
				rec.Desired, rec.Verdict, rec.ClampedBy, ClampStabilization)
		}
		// Past the window the old high opinion has expired and the drop
		// goes through (only the trailing 60 s of history counts).
		rec = d.Decide(DecideInput{Now: 120, Lambda: 2, Target: 0.9, Current: 48, Knobs: k})
		if rec.Verdict != VerdictDown {
			t.Fatalf("outside window: verdict %q (desired %d), want down", rec.Verdict, rec.Desired)
		}
	})

	t.Run("cooldown", func(t *testing.T) {
		var d Decider
		k := knobs{ScaleDownCooldownSeconds: 120}
		// First scale-down goes through and stamps the cooldown.
		rec := d.Decide(DecideInput{Now: 0, Lambda: 2, Target: 0.9, Current: 20, Knobs: k})
		if rec.Verdict != VerdictDown {
			t.Fatalf("first drop: verdict %q, want down", rec.Verdict)
		}
		// A second drop inside the cooldown holds.
		rec = d.Decide(DecideInput{Now: 60, Lambda: 1, Target: 0.9, Current: rec.Desired, Knobs: k})
		if rec.Verdict != VerdictHold || rec.ClampedBy != ClampCooldown {
			t.Fatalf("inside cooldown: verdict %q clamp %q, want hold %q", rec.Verdict, rec.ClampedBy, ClampCooldown)
		}
		// Scale-ups are never cooled down.
		rec = d.Decide(DecideInput{Now: 70, Lambda: 50, Target: 0.9, Current: 5, Knobs: k})
		if rec.Verdict != VerdictUp {
			t.Fatalf("up during cooldown: verdict %q, want up", rec.Verdict)
		}
		// Past the cooldown the drop resumes.
		rec = d.Decide(DecideInput{Now: 200, Lambda: 1, Target: 0.9, Current: 20, Knobs: k})
		if rec.Verdict != VerdictDown {
			t.Fatalf("after cooldown: verdict %q, want down", rec.Verdict)
		}
	})
}

// TestFlashCrowdNeverViolatesAntiFlapping replays a flash-crowd spike +
// decay through the Decider across a grid of behavior settings and
// asserts the two anti-flapping invariants on every decision:
//
//  1. Stabilization: the applied desired count never drops below the
//     highest bounded (post-min/max) recommendation made within the
//     trailing window.
//  2. Cooldown: once a decision lowers the count, no later decision
//     lowers it again until the cooldown has fully elapsed.
//
// The λ sequence is seeded pseudo-random jitter over a deterministic
// spike shape, so failures reproduce exactly.
func TestFlashCrowdNeverViolatesAntiFlapping(t *testing.T) {
	shapes := []struct {
		name             string
		window, cooldown float64
	}{
		{"window only", 120, 0},
		{"cooldown only", 0, 90},
		{"both", 300, 60},
		{"tight", 30, 15},
	}
	const tick = 15.0
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			k := knobs{
				MinReplicas:                   1,
				ScaleDownStabilizationSeconds: sh.window,
				ScaleDownCooldownSeconds:      sh.cooldown,
			}
			var d Decider
			type past struct {
				at      float64
				bounded int
			}
			var history []past
			cur := 1
			lastDownAt := math.Inf(-1)
			for i := 0; i < 400; i++ {
				now := float64(i) * tick
				// Flash crowd: quiet base, a sharp spike at t=1500 s, then
				// exponential decay — plus jitter so ties and near-misses
				// get exercised.
				lambda := 2.0
				if now >= 1500 {
					lambda += 80 * math.Exp(-(now-1500)/600)
				}
				lambda *= 0.8 + 0.4*rng.Float64()

				rec := d.Decide(DecideInput{Now: now, Lambda: lambda, Target: 0.9, Current: cur, Knobs: k})

				// Recompute the bounded recommendation independently.
				bounded := poissonQuantile(lambda, 0.9)
				if bounded < k.MinReplicas {
					bounded = k.MinReplicas
				}
				history = append(history, past{at: now, bounded: bounded})

				// Invariant 1: stabilization window.
				if w := k.ScaleDownStabilizationSeconds; w > 0 && rec.Desired < cur {
					floor := 0
					for _, h := range history {
						if h.at >= now-w && h.bounded > floor {
							floor = h.bounded
						}
					}
					if floor > cur {
						floor = cur
					}
					if rec.Desired < floor {
						t.Fatalf("t=%g: scaled down to %d below the window floor %d (window %gs)",
							now, rec.Desired, floor, w)
					}
				}
				// Invariant 2: cooldown.
				if rec.Desired < cur {
					if cd := k.ScaleDownCooldownSeconds; cd > 0 && now-lastDownAt < cd {
						t.Fatalf("t=%g: scale-down %gs after the previous one, inside the %gs cooldown",
							now, now-lastDownAt, cd)
					}
					lastDownAt = now
				}
				// Converged actuator: the next decision sees what this one
				// applied.
				cur = rec.Desired
			}
		})
	}
}

// TestDeciderByteDeterministic replays the identical input sequence
// through two fresh Deciders and requires byte-identical marshaled
// recommendations — the property CLOSEDLOOP.json's CI byte-equality
// gate rests on.
func TestDeciderByteDeterministic(t *testing.T) {
	replay := func() []byte {
		rng := rand.New(rand.NewSource(11))
		var d Decider
		k := knobs{MinReplicas: 1, MaxReplicas: 500, ScaleUpMaxStep: 25,
			ScaleDownStabilizationSeconds: 120, ScaleDownCooldownSeconds: 45}
		cur := 1
		var recs []Recommendation
		for i := 0; i < 300; i++ {
			lambda := 30*rng.Float64() + 5*math.Sin(float64(i)/9)
			rec := d.Decide(DecideInput{Now: float64(i) * 10, Lambda: lambda, Target: 0.95, Current: cur, Knobs: k})
			recs = append(recs, rec)
			cur = rec.Desired
		}
		blob, err := json.Marshal(recs)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := replay(), replay()
	if string(a) != string(b) {
		t.Fatal("identical decision sequences marshaled to different bytes")
	}
}

func TestSimCluster(t *testing.T) {
	sc := NewSimCluster(13)
	if err := sc.Apply("w", 3, 100); err != nil {
		t.Fatal(err)
	}
	st := sc.State("w", 100)
	if st.Desired != 3 || st.Current != 3 || st.Ready != 0 {
		t.Fatalf("right after scale-up: %+v, want 3 current, 0 ready", st)
	}
	st = sc.State("w", 113)
	if st.Ready != 3 {
		t.Fatalf("after the pending delay: ready %d, want 3", st.Ready)
	}
	// Scale up again at t=120, then immediately down: the two pending
	// instances (least ready) must be removed first, keeping the three
	// warm ones.
	if err := sc.Apply("w", 5, 120); err != nil {
		t.Fatal(err)
	}
	if err := sc.Apply("w", 3, 121); err != nil {
		t.Fatal(err)
	}
	st = sc.State("w", 121)
	if st.Current != 3 || st.Ready != 3 {
		t.Fatalf("after up-then-down: %+v, want the 3 warm instances kept", st)
	}
	created, deleted := sc.Lifecycle("w")
	if created != 5 || deleted != 2 {
		t.Fatalf("lifecycle = (%d created, %d deleted), want (5, 2)", created, deleted)
	}
	if st.Actuations != 3 {
		t.Fatalf("actuations = %d, want 3", st.Actuations)
	}
	// Unknown workloads read as empty, not as an error.
	if st := sc.State("ghost", 0); st != (ReplicaState{}) {
		t.Fatalf("unknown workload state = %+v", st)
	}
}

func TestDryRunConverges(t *testing.T) {
	d := NewDryRun()
	if err := d.Apply("w", 7, 50); err != nil {
		t.Fatal(err)
	}
	st := d.State("w", 50)
	if st.Desired != 7 || st.Current != 7 || st.Ready != 7 || st.Actuations != 1 {
		t.Fatalf("dry-run state = %+v, want a converged 7", st)
	}
}

// testRegistry builds an engine registry with an adjustable clock and
// one trained workload.
func testRegistry(t *testing.T, now *float64) (*engine.Registry, *engine.Engine) {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.MCSamples = 200
	cfg.Seed = 1
	cfg.Now = func() float64 { return *now }
	reg, err := engine.NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.GetOrCreate("svc")
	if err != nil {
		t.Fatal(err)
	}
	var arr []float64
	ts := 0.0
	for ts < *now {
		ts += 2 + math.Sin(2*math.Pi*ts/3600)
		arr = append(arr, ts)
	}
	if _, err := e.Ingest(arr); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	return reg, e
}

func TestManagerSweepActuatesEnabledWorkloads(t *testing.T) {
	now := 6 * 3600.0
	reg, e := testRegistry(t, &now)
	mgr := NewManager(reg, nil)

	// Nothing enabled: the sweep is a no-op.
	if decided, failed := mgr.SweepOnce(); decided != 0 || failed != 0 {
		t.Fatalf("sweep with autoscale off = (%d, %d), want (0, 0)", decided, failed)
	}

	ec := e.EngineConfig()
	ec.Autoscale.Enabled = true
	ec.Autoscale.MinReplicas = 1
	ec.Autoscale.IntervalSeconds = 30
	if _, err := e.SetEngineConfig(ec); err != nil {
		t.Fatal(err)
	}
	if decided, failed := mgr.SweepOnce(); decided != 1 || failed != 0 {
		t.Fatalf("sweep = (%d, %d), want (1, 0)", decided, failed)
	}
	c := mgr.For("svc", e)
	st := c.Status()
	if !st.Enabled || st.LastRecommendation == nil {
		t.Fatalf("status after sweep = %+v, want enabled with a recommendation", st)
	}
	if st.Replicas.Desired != st.LastRecommendation.Desired || st.Replicas.Actuations != 1 {
		t.Fatalf("actuator state %+v does not reflect the decision %+v", st.Replicas, st.LastRecommendation)
	}
	if st.LastRecommendation.Desired < 1 {
		t.Fatalf("desired %d below min_replicas", st.LastRecommendation.Desired)
	}

	// The per-workload interval gates the next sweep until the clock
	// moves.
	if decided, _ := mgr.SweepOnce(); decided != 0 {
		t.Fatalf("re-sweep inside interval_seconds decided %d, want 0", decided)
	}
	now += 31
	if decided, _ := mgr.SweepOnce(); decided != 1 {
		t.Fatalf("sweep after interval decided %d, want 1", decided)
	}
}

func TestManagerControllerIdentityPinnedToEngine(t *testing.T) {
	now := 6 * 3600.0
	reg, e := testRegistry(t, &now)
	mgr := NewManager(reg, nil)
	c1 := mgr.For("svc", e)
	if mgr.For("svc", e) != c1 {
		t.Fatal("same engine, different controller")
	}
	// A recreated workload (fresh engine pointer) gets a fresh
	// controller — stale stabilization history must not leak across.
	reg.Remove("svc")
	e2, err := reg.GetOrCreate("svc")
	if err != nil {
		t.Fatal(err)
	}
	if mgr.For("svc", e2) == c1 {
		t.Fatal("recreated workload kept the old controller")
	}
}

// TestAnalyzerSeamIsTheEngine pins the refactor's bytes-identical
// guarantee: the Analyzer the control plane serves plans and forecasts
// through is the engine itself, so the rewired handlers cannot change a
// single response byte.
func TestAnalyzerSeamIsTheEngine(t *testing.T) {
	now := 6 * 3600.0
	reg, e := testRegistry(t, &now)
	mgr := NewManager(reg, nil)
	az := mgr.For("svc", e).Analyzer()
	if az != Analyzer(e) {
		t.Fatal("controller analyzer is not the workload's engine")
	}
	want, err := e.ForecastJSON(now, now+600, 60)
	if err != nil {
		t.Fatal(err)
	}
	got, err := az.ForecastJSON(now, now+600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatal("forecast bytes differ through the analyzer seam")
	}
}

func TestRecommendWithoutModelFails(t *testing.T) {
	now := 100.0
	cfg := engine.DefaultConfig()
	cfg.Now = func() float64 { return now }
	reg, err := engine.NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.GetOrCreate("cold")
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(reg, nil)
	c := mgr.For("cold", e)
	if _, err := c.Recommend(); err == nil {
		t.Fatal("recommendation without a model succeeded")
	}
	st := c.Status()
	if st.LastError == "" {
		t.Fatalf("status after failed decision carries no error: %+v", st)
	}
}
