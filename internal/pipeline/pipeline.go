// Package pipeline closes the loop the paper leaves open: it turns
// NHPP forecasts into replica counts and replica counts into cluster
// mutations, as a staged Collect → Analyze → Optimize → Actuate
// pipeline with an explicit interface per stage.
//
//   - Collector gathers the decision inputs: the workload's ingestion
//     state and the live replica state of whatever backend actuates it.
//   - Analyzer is the existing NHPP fit/forecast seam — *engine.Engine
//     satisfies it directly, so the plan/forecast bytes a rewired
//     control plane serves are identical to calling the engine.
//   - Optimizer turns the forecast into a replica recommendation with
//     HPA-style behaviors: per-workload min/max replicas, scale-up/down
//     rate steps, a scale-down stabilization window and a scale-down
//     cooldown (knobs in EngineConfig.Autoscale, settable through the
//     config plane).
//   - Actuator applies the decision: a no-op dry-run backend that only
//     records it, or a simulated cluster that models instance creation
//     with the workload's pending time.
//
// A Controller wires the four stages for one workload and a Manager
// multiplexes controllers across the registry, with a background Loop
// sweeping the enabled workloads the way the engine's Retrainer sweeps
// stale models. The same Optimizer drives the closed-loop scorecard:
// SimPolicy adapts a Decider to internal/sim's Autoscaler interface so
// a generated trace can be replayed through ingest → analyze →
// optimize → actuate → simulate and scored against the paper's BP and
// AdapBP baselines (internal/scenario, CLOSEDLOOP.json).
package pipeline

import (
	"fmt"
	"log"
	"sync"
	"time"

	"robustscaler/internal/engine"
)

// Analyzer is the model seam between the control plane and the
// pipeline: the NHPP fit/forecast surface a recommendation is computed
// from. *engine.Engine satisfies it; tests substitute fakes.
type Analyzer interface {
	// Plan computes upcoming instance creation times (the paper's
	// per-query creation plan).
	Plan(req engine.PlanRequest) (*engine.Plan, error)
	// ForecastJSON renders the predicted intensity over [from, to) at
	// the given step as the HTTP response body.
	ForecastJSON(from, to, step float64) ([]byte, error)
	// ExpectedArrivals returns Λ(from, to), the expected arrival count.
	ExpectedArrivals(from, to float64) (float64, error)
	// EngineConfig returns the workload's current configuration (the
	// autoscale knobs ride in it).
	EngineConfig() engine.EngineConfig
	// Now reads the workload's clock.
	Now() float64
}

// Engine is the analyzer the production pipeline runs over.
var _ Analyzer = (*engine.Engine)(nil)

// Collector gathers the decision inputs for one workload: arrival/model
// state from the analyzer and live replica state from the actuator.
type Collector interface {
	Collect(now float64) (Sample, error)
}

// Sample is one collected decision input set.
type Sample struct {
	// Now anchors the decision (workload clock seconds).
	Now float64 `json:"now"`
	// Arrivals is the recorded arrival count; ModelReady reports
	// whether a trained model is installed.
	Arrivals   int  `json:"arrivals_recorded"`
	ModelReady bool `json:"model_ready"`
	// Replicas is the actuator's live replica state.
	Replicas ReplicaState `json:"replicas"`
}

// engineCollector is the production Collector: engine status + actuator
// state.
type engineCollector struct {
	eng *engine.Engine
	act Actuator
	id  string
}

func (c *engineCollector) Collect(now float64) (Sample, error) {
	st := c.eng.Status()
	return Sample{
		Now:        now,
		Arrivals:   st.Arrivals,
		ModelReady: st.ModelReady,
		Replicas:   c.act.State(c.id, now),
	}, nil
}

// Controller runs the staged pipeline for one workload: it owns the
// decision state (trailing recommendations, cooldown stamp) and the
// collected/actuated halves around the pure Decider.
type Controller struct {
	id   string
	eng  *engine.Engine
	coll Collector
	act  Actuator

	mu  sync.Mutex
	dec Decider
	// last is the most recent recommendation ("" verdict before the
	// first); lastErr the most recent decision failure, cleared by the
	// next success.
	last    *Recommendation
	lastErr string
	// lastDecideAt gates the background sweep against the workload's
	// IntervalSeconds, like RetrainEvery gates the retrainer.
	lastDecideAt float64
	hasDecided   bool

	m *Metrics
}

// Analyzer returns the controller's model seam — the handle the control
// plane serves plans and forecasts through.
func (c *Controller) Analyzer() Analyzer { return c.eng }

// Workload returns the workload ID the controller scales.
func (c *Controller) Workload() string { return c.id }

// Recommend runs Collect → Analyze → Optimize for one decision without
// actuating it — the GET recommendation endpoint. The decision is
// recorded in the stabilization history: a recommendation served to an
// operator is a decision made, and the anti-flapping windows must see
// it.
func (c *Controller) Recommend() (*Recommendation, error) {
	return c.decide(false)
}

// Step runs one full pipeline pass: Collect → Analyze → Optimize →
// Actuate. The background loop calls it on every sweep for enabled
// workloads.
func (c *Controller) Step() (*Recommendation, error) {
	return c.decide(true)
}

func (c *Controller) decide(actuate bool) (*Recommendation, error) {
	start := time.Now()
	now := c.eng.Now()
	sample, err := c.coll.Collect(now)
	if err != nil {
		return nil, c.fail(fmt.Errorf("pipeline: collect %s: %w", c.id, err))
	}
	ec := c.eng.EngineConfig()
	knobs := ec.Autoscale
	lead := leadSeconds(knobs, ec.Pending)
	lambda, err := c.eng.ExpectedArrivals(now, now+lead)
	if err != nil {
		return nil, c.fail(fmt.Errorf("pipeline: analyze %s: %w", c.id, err))
	}
	target := knobs.Target
	if target == 0 {
		target = ec.HPTarget
	}

	c.mu.Lock()
	rec := c.dec.Decide(DecideInput{
		Now:     now,
		Lambda:  lambda,
		Lead:    lead,
		Target:  target,
		Current: sample.Replicas.Current,
		Knobs:   knobs,
	})
	rec.Workload = c.id
	rec.Sample = &sample
	c.last = &rec
	c.lastErr = ""
	c.lastDecideAt = now
	c.hasDecided = true
	c.mu.Unlock()

	if c.m != nil {
		c.m.countRecommendation(&rec, time.Since(start).Seconds())
	}
	if actuate && knobs.Enabled {
		if err := c.act.Apply(c.id, rec.Desired, now); err != nil {
			return &rec, c.fail(fmt.Errorf("pipeline: actuate %s: %w", c.id, err))
		}
		if c.m != nil {
			c.m.actuations.Inc()
		}
	}
	return &rec, nil
}

// fail records a decision failure for Status and passes the error on.
func (c *Controller) fail(err error) error {
	c.mu.Lock()
	c.lastErr = err.Error()
	c.mu.Unlock()
	if c.m != nil {
		c.m.failures.Inc()
	}
	return err
}

// due reports whether the workload's own IntervalSeconds has passed
// since its last decision.
func (c *Controller) due(now, interval float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.hasDecided || interval <= 0 || now-c.lastDecideAt >= interval
}

// Status is the operator-debuggable autoscale state exposed in
// GET /v1/workloads/{id}/stats: the last decision, what clamped it, and
// how much cooldown remains — holds explained without scraping
// /metrics.
type Status struct {
	Enabled bool `json:"enabled"`
	// LastRecommendation is the most recent decision (nil before the
	// first).
	LastRecommendation *Recommendation `json:"last_recommendation,omitempty"`
	// LastError is the most recent decision failure, cleared by the
	// next successful decision.
	LastError string `json:"last_error,omitempty"`
	// CooldownRemainingSeconds is how long scale-downs stay held; 0
	// when free to move.
	CooldownRemainingSeconds float64 `json:"cooldown_remaining_seconds"`
	// Replicas is the actuator's live view.
	Replicas ReplicaState `json:"replicas"`
}

// Status reports the controller's current autoscale state.
func (c *Controller) Status() Status {
	now := c.eng.Now()
	knobs := c.eng.EngineConfig().Autoscale
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Enabled:            knobs.Enabled,
		LastRecommendation: c.last,
		LastError:          c.lastErr,
		Replicas:           c.act.State(c.id, now),
	}
	if cd := knobs.ScaleDownCooldownSeconds; cd > 0 && c.dec.hasScaledDown {
		if rem := cd - (now - c.dec.lastScaleDown); rem > 0 {
			st.CooldownRemainingSeconds = rem
		}
	}
	return st
}

// leadSeconds resolves the pool's replenish lead time: the configured
// override, or the workload's pending time plus its decision interval —
// instances committed now must cover every arrival until the next
// decision's instances are ready.
func leadSeconds(k engine.AutoscaleKnobs, pending float64) float64 {
	if k.LeadSeconds > 0 {
		return k.LeadSeconds
	}
	interval := k.IntervalSeconds
	if interval <= 0 {
		interval = DefaultInterval.Seconds()
	}
	return pending + interval
}

// DefaultInterval is the default background sweep cadence (and the
// interval assumed when deriving a lead time for workloads that set
// neither knob).
const DefaultInterval = 15 * time.Second

// Workloads is the registry surface the Manager multiplexes over;
// *engine.Registry satisfies it.
type Workloads interface {
	Workloads() []string
	Get(id string) (*engine.Engine, bool)
}

// Manager multiplexes per-workload Controllers over a registry,
// creating them on demand and dropping them when their workload is
// deleted or recreated (the controller is bound to the engine pointer
// it was created over).
type Manager struct {
	reg Workloads
	mk  func(id string, e *engine.Engine) Actuator

	mu    sync.Mutex
	ctrls map[string]*Controller
	m     *Metrics
}

// NewManager builds a Manager whose controllers actuate through the
// given backend factory; nil defaults to dry-run actuation.
func NewManager(reg Workloads, mk func(id string, e *engine.Engine) Actuator) *Manager {
	if mk == nil {
		mk = func(string, *engine.Engine) Actuator { return NewDryRun() }
	}
	return &Manager{reg: reg, mk: mk, ctrls: make(map[string]*Controller)}
}

// SetActuatorFactory swaps the backend factory new controllers actuate
// through; nil restores the dry-run default. Call it once at startup,
// before traffic — controllers already created keep their backend.
func (mgr *Manager) SetActuatorFactory(mk func(id string, e *engine.Engine) Actuator) {
	if mk == nil {
		mk = func(string, *engine.Engine) Actuator { return NewDryRun() }
	}
	mgr.mu.Lock()
	mgr.mk = mk
	mgr.mu.Unlock()
}

// For returns the workload's controller, creating it on first use. The
// engine pointer pins controller identity: a deleted-and-recreated
// workload gets a fresh controller (fresh stabilization history), not
// the ghost of the old one.
func (mgr *Manager) For(id string, e *engine.Engine) *Controller {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if c, ok := mgr.ctrls[id]; ok && c.eng == e {
		return c
	}
	act := mgr.mk(id, e)
	c := &Controller{
		id:   id,
		eng:  e,
		coll: &engineCollector{eng: e, act: act, id: id},
		act:  act,
		m:    mgr.m,
	}
	mgr.ctrls[id] = c
	return c
}

// snapshot returns the live controllers (pruning ones whose workload is
// gone).
func (mgr *Manager) snapshot() []*Controller {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	out := make([]*Controller, 0, len(mgr.ctrls))
	for id, c := range mgr.ctrls {
		if e, ok := mgr.reg.Get(id); !ok || e != c.eng {
			delete(mgr.ctrls, id)
			continue
		}
		out = append(out, c)
	}
	return out
}

// SweepOnce runs one actuation pass over every autoscale-enabled
// workload whose per-workload interval has elapsed, returning how many
// decisions ran and how many failed. This is the unit of work the
// background Loop schedules; tests and admin paths can call it
// directly.
func (mgr *Manager) SweepOnce() (decided, failed int) {
	for _, id := range mgr.reg.Workloads() {
		e, ok := mgr.reg.Get(id)
		if !ok {
			continue
		}
		ec := e.EngineConfig()
		if !ec.Autoscale.Enabled {
			continue
		}
		c := mgr.For(id, e)
		if !c.due(e.Now(), ec.Autoscale.IntervalSeconds) {
			continue
		}
		decided++
		if _, err := stepContained(c); err != nil {
			failed++
		}
	}
	return decided, failed
}

// stepContained runs one pipeline pass with panic containment — the
// sweep runs on a bare goroutine where one degenerate workload would
// otherwise take down the whole process (same rationale as the
// retrainer's).
func stepContained(c *Controller) (rec *Recommendation, err error) {
	defer func() {
		if r := recover(); r != nil {
			rec, err = nil, fmt.Errorf("pipeline: step panic: %v", r)
			log.Printf("pipeline: actuation step panic for %s (skipped): %v", c.id, r)
		}
	}()
	return c.Step()
}

// Loop is the background actuation loop, Retrainer-shaped: a ticker
// sweeping the enabled workloads, stopped once.
type Loop struct {
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartLoop launches the background actuation sweep on the given
// cadence (the fleet-wide tick; per-workload IntervalSeconds gates
// inside it).
func (mgr *Manager) StartLoop(every time.Duration) *Loop {
	if every <= 0 {
		panic(fmt.Sprintf("pipeline: non-positive actuation period %v", every))
	}
	l := &Loop{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(l.done)
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-ticker.C:
				if decided, failed := mgr.SweepOnce(); failed > 0 {
					log.Printf("pipeline: actuation sweep: %d decided, %d failed", decided, failed)
				}
			}
		}
	}()
	return l
}

// Stop halts the loop and waits for an in-flight sweep to finish. Safe
// to call more than once.
func (l *Loop) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}
