package pipeline

// The Actuate stage: backends that apply a replica recommendation.
// Two ship with the daemon — DryRun, which records decisions without
// acting (the safe default: scalerd stays an advisor), and SimCluster,
// an in-process simulated cluster that models instance creation with a
// per-workload pending delay, so the whole closed loop is exercisable
// on one laptop with no cluster attached. A real backend (a Kubernetes
// scale subresource, a cloud instance group) implements the same two
// methods.

import (
	"sort"
	"sync"
)

// ReplicaState is an actuator's live view of one workload's pool.
type ReplicaState struct {
	// Desired is the last applied target ("what the actuator is
	// converging to").
	Desired int `json:"desired_replicas"`
	// Current is the created replica count, ready or still pending.
	Current int `json:"current_replicas"`
	// Ready is how many of Current have finished their startup delay.
	Ready int `json:"ready_replicas"`
	// Actuations counts Apply calls for this workload.
	Actuations uint64 `json:"actuations_total"`
}

// Actuator applies replica decisions for workloads. Implementations
// must be safe for concurrent use; the recommendation endpoint and the
// background loop race.
type Actuator interface {
	// Apply moves the workload toward desired replicas at time now.
	Apply(workload string, desired int, now float64) error
	// State reports the workload's live replica state at time now.
	State(workload string, now float64) ReplicaState
}

// DryRun is the no-op backend: it records the last applied target and
// reports it as already current, so the relative behaviors (steps,
// windows, cooldowns) shape successive recommendations exactly as they
// would against a converged cluster — without creating anything.
type DryRun struct {
	mu    sync.Mutex
	state map[string]*ReplicaState
}

// NewDryRun returns an empty dry-run actuator.
func NewDryRun() *DryRun { return &DryRun{state: make(map[string]*ReplicaState)} }

// Apply implements Actuator.
func (d *DryRun) Apply(workload string, desired int, _ float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.state[workload]
	if !ok {
		st = &ReplicaState{}
		d.state[workload] = st
	}
	st.Desired = desired
	st.Current = desired
	st.Ready = desired
	st.Actuations++
	return nil
}

// State implements Actuator.
func (d *DryRun) State(workload string, _ float64) ReplicaState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if st, ok := d.state[workload]; ok {
		return *st
	}
	return ReplicaState{}
}

// SimCluster is the simulated-cluster backend: each workload has a pool
// of instances that take Pending seconds from creation to readiness.
// Apply reconciles the pool — scale-up creates instances (ready at
// now+Pending), scale-down removes the least-ready first, mirroring
// the simulator's DeleteIdle preference. Deterministic: readiness is
// the fixed pending delay, no RNG, so a replayed decision sequence
// reproduces the same pool byte-for-byte.
type SimCluster struct {
	// Pending is the instance startup delay in seconds.
	Pending float64

	mu    sync.Mutex
	pools map[string]*simPool
}

type simPool struct {
	desired    int
	readyAt    []float64 // one entry per live instance, unsorted
	actuations uint64
	created    uint64
	deleted    uint64
}

// NewSimCluster returns a simulated cluster whose instances become
// ready pending seconds after creation.
func NewSimCluster(pending float64) *SimCluster {
	if pending < 0 {
		pending = 0
	}
	return &SimCluster{Pending: pending, pools: make(map[string]*simPool)}
}

// Apply implements Actuator.
func (s *SimCluster) Apply(workload string, desired int, now float64) error {
	if desired < 0 {
		desired = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pools[workload]
	if !ok {
		p = &simPool{}
		s.pools[workload] = p
	}
	p.desired = desired
	p.actuations++
	switch have := len(p.readyAt); {
	case have < desired:
		for i := have; i < desired; i++ {
			p.readyAt = append(p.readyAt, now+s.Pending)
			p.created++
		}
	case have > desired:
		// Remove the least-ready instances first: cancelling a pending
		// creation is cheaper than killing a warm one.
		sort.Float64s(p.readyAt)
		p.deleted += uint64(have - desired)
		p.readyAt = p.readyAt[:desired]
	}
	return nil
}

// State implements Actuator.
func (s *SimCluster) State(workload string, now float64) ReplicaState {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pools[workload]
	if !ok {
		return ReplicaState{}
	}
	st := ReplicaState{Desired: p.desired, Current: len(p.readyAt), Actuations: p.actuations}
	for _, at := range p.readyAt {
		if at <= now {
			st.Ready++
		}
	}
	return st
}

// Lifecycle reports the workload's cumulative instance churn (created,
// deleted) — the cost signal dashboards plot next to the decision
// verdicts.
func (s *SimCluster) Lifecycle(workload string) (created, deleted uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pools[workload]; ok {
		return p.created, p.deleted
	}
	return 0, 0
}
