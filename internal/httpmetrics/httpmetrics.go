// Package httpmetrics is the shared per-route HTTP instrumentation
// used by both the single-node server mux and the fleet router: a
// request counter by route pattern and status class plus a latency
// histogram by route pattern. Routes are always labeled with the mux
// pattern (e.g. "/v1/workloads/{id}/plan"), never the concrete URL, so
// per-workload cardinality can not reach the metric space no matter
// how many workloads exist.
//
// Instruments are resolved once, when a handler is wrapped — a request
// updates them with atomic operations only, never a registry lookup
// (except on the cold non-2xx/4xx/5xx path).
package httpmetrics

import (
	"net/http"
	"time"

	"robustscaler/internal/metrics"
)

// Metric names shared by every HTTP surface in the process; series
// from different surfaces are told apart by labels (the fleet router
// adds node="router" when it merges expositions), not by name.
const (
	RequestsTotalName = "robustscaler_http_requests_total"
	requestsTotalHelp = "HTTP requests served, by route pattern and status class."
	SecondsName       = "robustscaler_http_request_seconds"
	secondsHelp       = "HTTP request latency, by route pattern."
)

// routeMetrics are one route's pre-resolved instruments. The three
// eager status classes are the ones this API can produce in volume;
// anything else falls back to a registry lookup on the (cold) error
// path.
type routeMetrics struct {
	seconds *metrics.Histogram
	c2xx    *metrics.Counter
	c4xx    *metrics.Counter
	c5xx    *metrics.Counter
}

// Wrap instruments a handler with request counting and latency
// observation in reg under the given route label.
func Wrap(reg *metrics.Registry, route string, h http.HandlerFunc) http.HandlerFunc {
	label := metrics.Label{Name: "route", Value: route}
	rm := &routeMetrics{
		seconds: reg.Histogram(SecondsName, secondsHelp, metrics.DefBuckets, label),
		c2xx:    reg.Counter(RequestsTotalName, requestsTotalHelp, label, metrics.Label{Name: "code", Value: "2xx"}),
		c4xx:    reg.Counter(RequestsTotalName, requestsTotalHelp, label, metrics.Label{Name: "code", Value: "4xx"}),
		c5xx:    reg.Counter(RequestsTotalName, requestsTotalHelp, label, metrics.Label{Name: "code", Value: "5xx"}),
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &StatusWriter{ResponseWriter: w, Code: http.StatusOK}
		h(sw, r)
		rm.seconds.Observe(time.Since(start).Seconds())
		switch sw.Code / 100 {
		case 2:
			rm.c2xx.Inc()
		case 4:
			rm.c4xx.Inc()
		case 5:
			rm.c5xx.Inc()
		default:
			reg.Counter(RequestsTotalName, requestsTotalHelp, label,
				metrics.Label{Name: "code", Value: statusClass(sw.Code)}).Inc()
		}
	}
}

func statusClass(code int) string {
	switch code / 100 {
	case 1:
		return "1xx"
	case 3:
		return "3xx"
	default:
		return "other"
	}
}

// StatusWriter remembers the status code a handler wrote. Exported so
// callers with bespoke middleware (the fleet router's forward path)
// can observe response codes without double-wrapping.
type StatusWriter struct {
	http.ResponseWriter
	Code int
}

func (w *StatusWriter) WriteHeader(code int) {
	w.Code = code
	w.ResponseWriter.WriteHeader(code)
}
