package decision

import (
	"math/rand"
	"testing"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/stats"
)

func benchSamples(r int) (xi, tau []float64) {
	rng := rand.New(rand.NewSource(1))
	xi = make([]float64, r)
	tau = make([]float64, r)
	for i := range xi {
		xi[i] = rng.ExpFloat64() * 40
		tau[i] = 13
	}
	return xi, tau
}

// BenchmarkSolveHP measures the quantile solution (eq. 3) at the paper's
// R = 1000.
func BenchmarkSolveHP(b *testing.B) {
	xi, tau := benchSamples(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveHP(xi, tau, 0.1)
	}
}

// BenchmarkSolveRT measures Algorithm 3 (sort-and-search, O(R log R)).
func BenchmarkSolveRT(b *testing.B) {
	xi, tau := benchSamples(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveRT(xi, tau, 2)
	}
}

// BenchmarkNaiveSolveRT measures the bisection baseline Algorithm 3
// replaces.
func BenchmarkNaiveSolveRT(b *testing.B) {
	xi, tau := benchSamples(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaiveSolveRT(xi, tau, 2, 1e-9)
	}
}

// BenchmarkSolveCost measures the cost-constrained solution (eq. 7).
func BenchmarkSolveCost(b *testing.B) {
	xi, tau := benchSamples(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveCost(xi, tau, 2)
	}
}

// BenchmarkSampleArrival measures one Monte Carlo arrival draw through
// the cached integrated-intensity horizon.
func BenchmarkSampleArrival(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	h := NewHorizon(nhpp.Constant{Lambda: 5}, 0, 0.2, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := h.SampleArrival(rng, 20); !ok {
			b.Fatal("sample failed")
		}
	}
}

// BenchmarkKappa measures the planning-threshold computation (eq. 8).
func BenchmarkKappa(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Kappa(10, detTau13, 0.1, nil, 0)
	}
}

// detTau13 is the fixed 13 s pending time used across benches.
var detTau13 = stats.Deterministic{Value: 13}
