package decision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/stats"
)

// randomSamples builds a random decision instance from a seed.
func randomSamples(seed int64) (xi, tau []float64) {
	rng := rand.New(rand.NewSource(seed))
	n := 20 + rng.Intn(300)
	xi = make([]float64, n)
	tau = make([]float64, n)
	for i := range xi {
		xi[i] = rng.ExpFloat64() * (5 + 100*rng.Float64())
		tau[i] = 1 + 30*rng.Float64()
	}
	return xi, tau
}

// Property: ExpectedWait is non-decreasing and ExpectedIdle non-increasing
// in the creation time — the monotonicity that makes (3)/(5)/(7) solvable
// by quantiles and line searches.
func TestWaitIdleMonotonicityProperty(t *testing.T) {
	f := func(seed int64, x1Raw, x2Raw float64) bool {
		xi, tau := randomSamples(seed)
		x1 := math.Mod(math.Abs(x1Raw), 200)
		x2 := math.Mod(math.Abs(x2Raw), 200)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if ExpectedWait(xi, tau, x1) > ExpectedWait(xi, tau, x2)+1e-9 {
			return false
		}
		return ExpectedIdle(xi, tau, x1)+1e-9 >= ExpectedIdle(xi, tau, x2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the SolveRT root satisfies its constraint with near-equality
// (or the boundary cases) on arbitrary instances.
func TestSolveRTConstraintProperty(t *testing.T) {
	f := func(seed int64, targetRaw float64) bool {
		xi, tau := randomSamples(seed)
		target := math.Mod(math.Abs(targetRaw), 20)
		x := SolveRT(xi, tau, target)
		w := ExpectedWait(xi, tau, x)
		if w > target+1e-6 {
			return false
		}
		// Maximality: a slightly later creation must violate the target
		// (unless the constraint is everywhere satisfiable).
		var maxTau float64
		for _, v := range tau {
			if v > maxTau {
				maxTau = v
			}
		}
		meanTau := 0.0
		for _, v := range tau {
			meanTau += v
		}
		meanTau /= float64(len(tau))
		if target >= meanTau {
			return true // unconstrained case
		}
		return ExpectedWait(xi, tau, x+1e-3) >= target-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the SolveCost root respects its budget and is minimal.
func TestSolveCostConstraintProperty(t *testing.T) {
	f := func(seed int64, budgetRaw float64) bool {
		xi, tau := randomSamples(seed)
		budget := math.Mod(math.Abs(budgetRaw), 50)
		x := SolveCost(xi, tau, budget)
		if x < 0 {
			return false
		}
		if ExpectedIdle(xi, tau, x) > budget+1e-6 {
			return false
		}
		// Minimality: an earlier creation (if legal) must exceed the
		// budget, unless x is already 0.
		if x == 0 {
			return true
		}
		return ExpectedIdle(xi, tau, x-1e-3) >= budget-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveHP's creation time achieves empirical hit fraction ≥ 1−α
// on its own samples (up to one order statistic).
func TestSolveHPCoverageProperty(t *testing.T) {
	f := func(seed int64, aRaw float64) bool {
		xi, tau := randomSamples(seed)
		alpha := 0.05 + math.Mod(math.Abs(aRaw), 0.9)
		if alpha >= 1 {
			alpha = 0.5
		}
		x, feasible := SolveHP(xi, tau, alpha)
		if !feasible {
			return x == 0
		}
		hits := 0
		for i := range xi {
			if xi[i] > x+tau[i] {
				hits++
			}
		}
		frac := float64(hits) / float64(len(xi))
		return frac >= 1-alpha-2.0/float64(len(xi))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Horizon.Invert is the inverse of Mass for random piecewise
// intensities.
func TestHorizonInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nBins := 3 + rng.Intn(20)
		r := make([]float64, nBins)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		m := nhpp.NewModel(0, 5+10*rng.Float64(), r, 0)
		h := NewHorizon(m, 0, 0.5, 0)
		for trial := 0; trial < 10; trial++ {
			mass := rng.Float64() * 20
			u, ok := h.Invert(mass)
			if !ok {
				return false // tail level keeps rate positive; must invert
			}
			back := h.Mass(u)
			if math.Abs(back-mass) > 1e-6*(1+mass) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: κ is non-decreasing in the rate bound and in the pending time.
func TestKappaMonotoneProperty(t *testing.T) {
	f := func(lRaw, tRaw float64) bool {
		l := 0.01 + math.Mod(math.Abs(lRaw), 5)
		tau := 0.5 + math.Mod(math.Abs(tRaw), 30)
		k1 := Kappa(l, detTau(tau), 0.1, nil, 0)
		k2 := Kappa(2*l, detTau(tau), 0.1, nil, 0)
		k3 := Kappa(l, detTau(2*tau), 0.1, nil, 0)
		return k2 >= k1 && k3 >= k1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// detTau builds a deterministic pending time for property tests.
func detTau(v float64) stats.Dist { return stats.Deterministic{Value: v} }
