package decision

import (
	"fmt"
	"math/rand"
	"sort"

	"robustscaler/internal/stats"
)

// kappaCap bounds the κ search; a threshold this deep means the pending
// time spans millions of expected arrivals and planning that far ahead is
// pointless.
const kappaCap = 1 << 20

// Kappa computes the planning threshold κ of eq. 8:
//
//	κ = max{ i ≥ 1 : α-quantile of (γ_i/λ̄ − τ_i) < 0 },
//
// with γ_i ~ Gamma(i, 1) independent of τ_i, λ̄ an upper bound on the
// intensity, and 1−α the target hitting probability. Queries within the
// next κ arrivals cannot reach the target HP even with immediate creation,
// so the sequential scheme always plans at least κ+1 arrivals ahead.
//
// For a deterministic pending time the condition is evaluated exactly via
// the Gamma quantile; otherwise by Monte Carlo with mcSamples draws of τ.
// κ = 0 when even the first upcoming query can achieve the target.
func Kappa(lambdaBar float64, tau stats.Dist, alpha float64, rng *rand.Rand, mcSamples int) int {
	if lambdaBar <= 0 {
		return 0 // no traffic: any HP target is attainable
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("decision: Kappa alpha=%g outside (0,1)", alpha))
	}
	if det, ok := tau.(stats.Deterministic); ok {
		return kappaDeterministic(lambdaBar, det.Value, alpha)
	}
	if mcSamples <= 0 {
		mcSamples = 1000
	}
	tauSamples := make([]float64, mcSamples)
	for r := range tauSamples {
		tauSamples[r] = tau.Sample(rng)
	}
	sort.Float64s(tauSamples)
	// The α-quantile of γ_i/λ̄ − τ_i is increasing in i; find the last i
	// where it is negative.
	cond := func(i int) bool { // true while quantile < 0
		g := stats.Gamma{Shape: float64(i), Scale: 1}
		diff := make([]float64, mcSamples)
		for r := range diff {
			diff[r] = g.Sample(rng)/lambdaBar - tauSamples[r]
		}
		sort.Float64s(diff)
		return stats.QuantileSorted(diff, alpha) < 0
	}
	return lastTrue(cond)
}

func kappaDeterministic(lambdaBar, tauVal, alpha float64) int {
	if tauVal <= 0 {
		return 0
	}
	cond := func(i int) bool {
		q := stats.Gamma{Shape: float64(i), Scale: 1}.Quantile(alpha)
		return q/lambdaBar < tauVal
	}
	return lastTrue(cond)
}

// lastTrue returns the largest i ≥ 1 with cond(i) true, assuming cond is
// monotone (true then false), or 0 when cond(1) is already false. It
// doubles to bracket the boundary then binary-searches, so the cost is
// O(log κ) condition evaluations.
func lastTrue(cond func(int) bool) int {
	if !cond(1) {
		return 0
	}
	lo := 1
	hi := 2
	for cond(hi) {
		lo = hi
		hi *= 2
		if hi > kappaCap {
			return kappaCap
		}
	}
	// Invariant: cond(lo) true, cond(hi) false.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if cond(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
