package decision

import (
	"fmt"
	"math"
	"sort"

	"robustscaler/internal/stats"
)

// SolveHP returns the cost-minimal instance creation time that achieves a
// hitting probability of at least 1−alpha for one query, given Monte Carlo
// samples of its arrival epoch ξ and pending time τ (eq. 3 of the paper:
// the α-quantile of ξ−τ). feasible is false when the quantile is negative,
// i.e. the target hit probability is unattainable even by creating the
// instance immediately — exactly the situation that motivates planning
// κ+1 arrivals ahead.
func SolveHP(xi, tau []float64, alpha float64) (x float64, feasible bool) {
	checkSamples(xi, tau)
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("decision: SolveHP alpha=%g outside [0,1]", alpha))
	}
	d := make([]float64, len(xi))
	for r := range xi {
		d[r] = xi[r] - tau[r]
	}
	sort.Float64s(d)
	q := stats.QuantileSorted(d, alpha)
	if q < 0 {
		return 0, false
	}
	return q, true
}

// SolveRT implements Algorithm 3 (sort-and-search) for the RT-constrained
// formulation (eq. 5): it returns the largest creation time x with
// Ê(x) := (1/R)·Σ_r (τ_r − (ξ_r − x)₊)₊ ≤ target, where target = d − µs is
// the response-time budget net of processing. Ê is piecewise linear and
// non-decreasing with slope changes only at the points ξ_r−τ_r (+1/R) and
// ξ_r (−1/R), so one sorted sweep finds the root in O(R log R).
//
// When target ≥ E[τ] every x satisfies the constraint; following the paper
// the maximum arrival sample is returned (the query will almost surely
// arrive first and trigger reactive creation). When target < 0 the
// constraint is infeasible; the largest x with Ê(x) = 0 is returned as the
// best achievable decision.
func SolveRT(xi, tau []float64, target float64) float64 {
	checkSamples(xi, tau)
	r := len(xi)
	type bp struct {
		x  float64
		ds float64 // slope change in units of 1/R
	}
	bps := make([]bp, 0, 2*r)
	maxXi := math.Inf(-1)
	for i := range xi {
		bps = append(bps, bp{xi[i] - tau[i], 1}, bp{xi[i], -1})
		if xi[i] > maxXi {
			maxXi = xi[i]
		}
	}
	sort.Slice(bps, func(a, b int) bool { return bps[a].x < bps[b].x })

	if target <= 0 {
		// Largest x with zero expected wait: the first breakpoint.
		return bps[0].x
	}
	slope := 0.0 // Ê slope · R
	e := 0.0
	xl := bps[0].x
	for _, b := range bps {
		eNext := e + slope/float64(r)*(b.x-xl)
		if eNext >= target && slope > 0 {
			return xl + (target-e)*float64(r)/slope
		}
		e = eNext
		xl = b.x
		slope += b.ds
	}
	// Ê plateaus at mean(τ) ≤ target: unconstrained.
	return maxXi
}

// SolveCost implements the cost-constrained solution (eq. 7): the smallest
// creation time x ≥ 0 with expected idle cost
// Ĉ(x) := (1/R)·Σ_r (ξ_r − τ_r − x)₊ ≤ budget, where budget = B − µτ − µs.
// Ĉ is piecewise linear and non-increasing with breakpoints at ξ_r−τ_r.
// A non-positive budget yields the largest breakpoint (idle cost can be
// driven to zero but no lower).
func SolveCost(xi, tau []float64, budget float64) float64 {
	checkSamples(xi, tau)
	r := len(xi)
	d := make([]float64, r)
	for i := range xi {
		d[i] = xi[i] - tau[i]
	}
	sort.Float64s(d)
	// Suffix sums: cost at x = d[k] is Σ_{j>k}(d[j]−d[k])/R.
	// Walk from the left; the first segment where Ĉ dips below budget
	// contains the root.
	var total float64
	for _, v := range d {
		total += v
	}
	// Ĉ(x) on segment x ∈ [d[k−1], d[k]] (with d[−1] = −∞):
	// (S_k − (R−k)·x)/R where S_k = Σ_{j≥k} d[j].
	sk := total
	for k := 0; k < r; k++ {
		cAtDk := (sk - float64(r-k)*d[k]) / float64(r)
		if cAtDk <= budget {
			// Root in (previous breakpoint, d[k]].
			x := (sk - float64(r)*budget) / float64(r-k)
			if x < 0 {
				x = 0
			}
			return x
		}
		sk -= d[k]
	}
	// budget < 0 (or no segment reached it): zero idle cost at the largest
	// breakpoint.
	x := d[r-1]
	if x < 0 {
		x = 0
	}
	return x
}

// ExpectedWait evaluates E[(τ − (ξ − x)₊)₊] by direct averaging. O(R);
// used in tests and as the naive baseline for the sort-and-search
// ablation.
func ExpectedWait(xi, tau []float64, x float64) float64 {
	checkSamples(xi, tau)
	var s float64
	for r := range xi {
		gap := xi[r] - x
		if gap < 0 {
			gap = 0
		}
		w := tau[r] - gap
		if w > 0 {
			s += w
		}
	}
	return s / float64(len(xi))
}

// ExpectedIdle evaluates E[(ξ − τ − x)₊] by direct averaging.
func ExpectedIdle(xi, tau []float64, x float64) float64 {
	checkSamples(xi, tau)
	var s float64
	for r := range xi {
		v := xi[r] - tau[r] - x
		if v > 0 {
			s += v
		}
	}
	return s / float64(len(xi))
}

// NaiveSolveRT solves eq. 5 by bisection over ExpectedWait, costing
// O(R log(range/tol)) per evaluation sweep. It exists to cross-check
// Algorithm 3 and as the ablation baseline.
func NaiveSolveRT(xi, tau []float64, target float64, tol float64) float64 {
	checkSamples(xi, tau)
	lo, hi := math.Inf(1), math.Inf(-1)
	for r := range xi {
		if v := xi[r] - tau[r]; v < lo {
			lo = v
		}
		if xi[r] > hi {
			hi = xi[r]
		}
	}
	if target <= 0 {
		return lo
	}
	if ExpectedWait(xi, tau, hi) <= target {
		return hi
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if ExpectedWait(xi, tau, mid) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func checkSamples(xi, tau []float64) {
	if len(xi) == 0 || len(xi) != len(tau) {
		panic(fmt.Sprintf("decision: bad sample slices (len %d vs %d)", len(xi), len(tau)))
	}
}
