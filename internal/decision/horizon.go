// Package decision computes the paper's optimal scaling decisions from a
// predicted arrival intensity: the HP-constrained quantile solution
// (eq. 3), the RT-constrained sort-and-search (Algorithm 3 / eq. 5), the
// cost-constrained solution (eq. 7), and the κ planning threshold (eq. 8).
//
// All three formulations are separable per upcoming query, so every solver
// here takes Monte Carlo samples of a single query's arrival epoch ξ_i and
// pending time τ_i and returns one creation time.
package decision

import (
	"fmt"
	"math/rand"
	"sort"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/stats"
)

// Horizon caches the cumulative integrated intensity Λ(t0, ·) on a regular
// grid so arrival epochs can be sampled in O(log n) per draw via the
// time-rescaling identity ξ_i = Λ⁻¹(Gamma(i, 1)). A planning round builds
// one Horizon and draws thousands of samples from it.
type Horizon struct {
	in    nhpp.Intensity
	start float64
	step  float64
	cum   []float64 // cum[k] = Λ(start, start + k·step); cum[0] = 0
	max   int       // grid-cell cap for Ensure
}

// NewHorizon creates a horizon anchored at start with the given grid step.
// maxCells caps the look-ahead (maxCells·step seconds); ≤0 selects a
// generous default.
func NewHorizon(in nhpp.Intensity, start, step float64, maxCells int) *Horizon {
	if step <= 0 {
		panic(fmt.Sprintf("decision: non-positive horizon step %g", step))
	}
	if maxCells <= 0 {
		maxCells = 4_000_000
	}
	return &Horizon{in: in, start: start, step: step, cum: []float64{0}, max: maxCells}
}

// ensure extends the cumulative grid until it covers mass, returning false
// when the cap is hit first (e.g. a zero-rate tail).
func (h *Horizon) ensure(mass float64) bool {
	for h.cum[len(h.cum)-1] < mass {
		if len(h.cum) > h.max {
			return false
		}
		k := len(h.cum) - 1
		a := h.start + float64(k)*h.step
		h.cum = append(h.cum, h.cum[k]+h.in.Integral(a, a+h.step))
	}
	return true
}

// Invert returns the time t with Λ(start, t) = mass.
func (h *Horizon) Invert(mass float64) (float64, bool) {
	if mass <= 0 {
		return h.start, true
	}
	if !h.ensure(mass) {
		return 0, false
	}
	// Binary search for the containing cell, then linear interpolation
	// (the intensity is treated as constant within a cell).
	k := sort.SearchFloat64s(h.cum, mass)
	lo := h.cum[k-1]
	hi := h.cum[k]
	t := h.start + float64(k-1)*h.step
	if hi > lo {
		t += h.step * (mass - lo) / (hi - lo)
	} else {
		t += h.step
	}
	return t, true
}

// Mass returns Λ(start, t) for t ≥ start, extending the grid as needed.
func (h *Horizon) Mass(t float64) float64 {
	if t <= h.start {
		return 0
	}
	k := int((t - h.start) / h.step)
	for len(h.cum) <= k+1 {
		if len(h.cum) > h.max {
			break
		}
		j := len(h.cum) - 1
		a := h.start + float64(j)*h.step
		h.cum = append(h.cum, h.cum[j]+h.in.Integral(a, a+h.step))
	}
	if k+1 >= len(h.cum) {
		return h.cum[len(h.cum)-1]
	}
	frac := (t - (h.start + float64(k)*h.step)) / h.step
	return h.cum[k] + (h.cum[k+1]-h.cum[k])*frac
}

// SampleArrival draws one Monte Carlo realization of the i-th upcoming
// arrival epoch after the horizon start (i ≥ 1): Λ⁻¹ of a Gamma(i,1)
// variate. ok is false if the intensity mass runs out first.
func (h *Horizon) SampleArrival(rng *rand.Rand, i int) (float64, bool) {
	if i < 1 {
		panic(fmt.Sprintf("decision: SampleArrival i=%d < 1", i))
	}
	g := stats.Gamma{Shape: float64(i), Scale: 1}.Sample(rng)
	return h.Invert(g)
}

// QuantileArrival returns the exact p-quantile of the i-th upcoming
// arrival epoch: Λ⁻¹(Gamma_i⁻¹(p)). Used by the fast path of the
// HP-constrained solution when the pending time is deterministic.
func (h *Horizon) QuantileArrival(i int, p float64) (float64, bool) {
	if i < 1 {
		panic(fmt.Sprintf("decision: QuantileArrival i=%d < 1", i))
	}
	g := stats.Gamma{Shape: float64(i), Scale: 1}.Quantile(p)
	return h.Invert(g)
}
