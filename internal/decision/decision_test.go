package decision

import (
	"math"
	"math/rand"
	"testing"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/stats"
)

func TestHorizonConstantIntensity(t *testing.T) {
	h := NewHorizon(nhpp.Constant{Lambda: 2}, 100, 1, 0)
	u, ok := h.Invert(6)
	if !ok || math.Abs(u-103) > 1e-9 {
		t.Fatalf("Invert(6) = %g,%v, want 103", u, ok)
	}
	if got := h.Mass(103); math.Abs(got-6) > 1e-9 {
		t.Fatalf("Mass(103) = %g, want 6", got)
	}
	if u, ok := h.Invert(0); !ok || u != 100 {
		t.Fatalf("Invert(0) = %g, want start", u)
	}
}

func TestHorizonZeroIntensityFails(t *testing.T) {
	h := NewHorizon(nhpp.Constant{Lambda: 0}, 0, 1, 100)
	if _, ok := h.Invert(1); ok {
		t.Fatal("Invert should fail with zero intensity")
	}
}

func TestHorizonMatchesModelInverse(t *testing.T) {
	r := []float64{math.Log(0.5), math.Log(2), math.Log(1)}
	m := nhpp.NewModel(0, 10, r, 0)
	h := NewHorizon(m, 0, 0.5, 0)
	for _, mass := range []float64{0.3, 4.9, 13, 30} {
		hu, ok1 := h.Invert(mass)
		mu, ok2 := m.InverseIntegral(0, mass)
		if !ok1 || !ok2 {
			t.Fatalf("mass %g: inversion failed (%v %v)", mass, ok1, ok2)
		}
		if math.Abs(hu-mu) > 0.5 { // grid resolution
			t.Fatalf("mass %g: horizon %g vs model %g", mass, hu, mu)
		}
	}
}

func TestHorizonSampleArrivalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHorizon(nhpp.Constant{Lambda: 4}, 0, 0.25, 0)
	// i-th arrival of rate-4 Poisson process has mean i/4.
	for _, i := range []int{1, 5, 20} {
		const n = 20000
		var sum float64
		for k := 0; k < n; k++ {
			u, ok := h.SampleArrival(rng, i)
			if !ok {
				t.Fatal("sample failed")
			}
			sum += u
		}
		mean := sum / n
		want := float64(i) / 4
		if math.Abs(mean-want) > 0.05*want+0.02 {
			t.Fatalf("arrival %d mean %g, want %g", i, mean, want)
		}
	}
}

func TestHorizonQuantileArrival(t *testing.T) {
	h := NewHorizon(nhpp.Constant{Lambda: 2}, 0, 0.01, 0)
	got, ok := h.QuantileArrival(3, 0.7)
	if !ok {
		t.Fatal("quantile failed")
	}
	want := stats.Gamma{Shape: 3, Scale: 1}.Quantile(0.7) / 2
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("QuantileArrival = %g, want %g", got, want)
	}
}

func TestSolveHPQuantileSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 50000
	xi := make([]float64, n)
	tau := make([]float64, n)
	for r := range xi {
		xi[r] = 100 + 20*rng.NormFloat64()
		tau[r] = 13
	}
	alpha := 0.1
	x, feasible := SolveHP(xi, tau, alpha)
	if !feasible {
		t.Fatal("should be feasible")
	}
	// Empirical hit fraction at x must be ≈ 1−α.
	hits := 0
	for r := range xi {
		if xi[r] > x+tau[r] {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.9) > 0.01 {
		t.Fatalf("hit fraction %g, want 0.90", frac)
	}
}

func TestSolveHPInfeasible(t *testing.T) {
	// Arrivals sooner than the pending time: target 99% HP unattainable.
	xi := []float64{1, 2, 1.5}
	tau := []float64{10, 10, 10}
	x, feasible := SolveHP(xi, tau, 0.01)
	if feasible {
		t.Fatal("should be infeasible")
	}
	if x != 0 {
		t.Fatalf("infeasible x = %g, want 0", x)
	}
}

func TestSolveRTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(500)
		xi := make([]float64, n)
		tau := make([]float64, n)
		for r := range xi {
			xi[r] = rng.ExpFloat64() * 50
			tau[r] = 5 + 10*rng.Float64()
		}
		target := rng.Float64() * 8
		fast := SolveRT(xi, tau, target)
		slow := NaiveSolveRT(xi, tau, target, 1e-10)
		// Both must satisfy the constraint with near-equality.
		if w := ExpectedWait(xi, tau, fast); w > target+1e-9 {
			t.Fatalf("trial %d: Alg3 x=%g violates: wait %g > %g", trial, fast, w, target)
		}
		wf, ws := ExpectedWait(xi, tau, fast), ExpectedWait(xi, tau, slow)
		if math.Abs(wf-ws) > 1e-6*(1+target) {
			t.Fatalf("trial %d: Alg3 wait %g vs naive wait %g", trial, wf, ws)
		}
	}
}

func TestSolveRTRootHitsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 2000
	xi := make([]float64, n)
	tau := make([]float64, n)
	for r := range xi {
		xi[r] = 30 + 10*rng.NormFloat64()
		tau[r] = 13
	}
	target := 2.0
	x := SolveRT(xi, tau, target)
	if w := ExpectedWait(xi, tau, x); math.Abs(w-target) > 1e-9 {
		t.Fatalf("wait at root = %g, want %g", w, target)
	}
}

func TestSolveRTUnconstrainedTarget(t *testing.T) {
	xi := []float64{10, 20, 30}
	tau := []float64{1, 1, 1}
	// target ≥ mean τ = 1: every x works; Algorithm 3 returns max ξ.
	if got := SolveRT(xi, tau, 5); got != 30 {
		t.Fatalf("unconstrained SolveRT = %g, want 30", got)
	}
}

func TestSolveRTZeroTarget(t *testing.T) {
	xi := []float64{10, 20, 30}
	tau := []float64{4, 4, 4}
	// target 0 → largest x with zero wait = min(ξ−τ) = 6.
	if got := SolveRT(xi, tau, 0); got != 6 {
		t.Fatalf("zero-target SolveRT = %g, want 6", got)
	}
}

func TestSolveCostSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 2000
	xi := make([]float64, n)
	tau := make([]float64, n)
	for r := range xi {
		xi[r] = 50 + 15*rng.NormFloat64()
		tau[r] = 13
	}
	budget := 3.0
	x := SolveCost(xi, tau, budget)
	if c := ExpectedIdle(xi, tau, x); math.Abs(c-budget) > 1e-9 {
		t.Fatalf("idle at root = %g, want %g", c, budget)
	}
	// Huge budget → x = 0 (eq. 7's first case).
	if x := SolveCost(xi, tau, 1e9); x != 0 {
		t.Fatalf("large-budget x = %g, want 0", x)
	}
	// Zero budget → largest breakpoint (zero idle cost).
	x0 := SolveCost(xi, tau, 0)
	if c := ExpectedIdle(xi, tau, x0); c > 1e-9 {
		t.Fatalf("zero-budget idle = %g, want 0", c)
	}
}

func TestSolveCostNeverNegative(t *testing.T) {
	xi := []float64{1, 2}
	tau := []float64{10, 10} // all breakpoints negative
	if x := SolveCost(xi, tau, 0.5); x < 0 {
		t.Fatalf("negative creation time %g", x)
	}
}

func TestExpectedWaitAndIdleManual(t *testing.T) {
	xi := []float64{10}
	tau := []float64{4}
	// x=8: instance ready at 12, arrival at 10 → wait 2, idle 0.
	if w := ExpectedWait(xi, tau, 8); w != 2 {
		t.Fatalf("wait = %g, want 2", w)
	}
	if c := ExpectedIdle(xi, tau, 8); c != 0 {
		t.Fatalf("idle = %g, want 0", c)
	}
	// x=2: ready at 6, arrival at 10 → wait 0, idle 4.
	if w := ExpectedWait(xi, tau, 2); w != 0 {
		t.Fatalf("wait = %g, want 0", w)
	}
	if c := ExpectedIdle(xi, tau, 2); c != 4 {
		t.Fatalf("idle = %g, want 4", c)
	}
}

func TestKappaDeterministic(t *testing.T) {
	// λ̄=1, τ=5, α=0.1: κ is the largest i with Gamma(i,1) 0.1-quantile < 5.
	var want int
	for i := 1; ; i++ {
		if (stats.Gamma{Shape: float64(i), Scale: 1}).Quantile(0.1) >= 5 {
			want = i - 1
			break
		}
	}
	got := Kappa(1, stats.Deterministic{Value: 5}, 0.1, nil, 0)
	if got != want {
		t.Fatalf("Kappa = %d, want %d", got, want)
	}
	if want < 3 {
		t.Fatalf("sanity: expected κ of several arrivals, got %d", want)
	}
}

func TestKappaEdgeCases(t *testing.T) {
	if got := Kappa(0, stats.Deterministic{Value: 5}, 0.1, nil, 0); got != 0 {
		t.Fatalf("zero-rate κ = %d, want 0", got)
	}
	if got := Kappa(1, stats.Deterministic{Value: 0}, 0.1, nil, 0); got != 0 {
		t.Fatalf("zero-pending κ = %d, want 0", got)
	}
	// Tiny λ̄: even the first arrival is far away → κ = 0.
	if got := Kappa(1e-6, stats.Deterministic{Value: 5}, 0.1, nil, 0); got != 0 {
		t.Fatalf("slow-traffic κ = %d, want 0", got)
	}
}

func TestKappaScalesWithRate(t *testing.T) {
	k1 := Kappa(1, stats.Deterministic{Value: 10}, 0.1, nil, 0)
	k10 := Kappa(10, stats.Deterministic{Value: 10}, 0.1, nil, 0)
	if k10 <= k1 {
		t.Fatalf("κ must grow with rate: κ(1)=%d κ(10)=%d", k1, k10)
	}
}

// Monte Carlo κ with a point-mass-like distribution must be close to the
// deterministic computation.
type almostDeterministic struct{ v float64 }

func (a almostDeterministic) Sample(rng *rand.Rand) float64 { return a.v }
func (a almostDeterministic) Quantile(float64) float64      { return a.v }
func (a almostDeterministic) CDF(x float64) float64 {
	if x < a.v {
		return 0
	}
	return 1
}

func TestKappaMonteCarloMatchesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	det := Kappa(2, stats.Deterministic{Value: 8}, 0.1, nil, 0)
	mc := Kappa(2, almostDeterministic{v: 8}, 0.1, rng, 4000)
	if math.Abs(float64(mc-det)) > math.Max(2, 0.15*float64(det)) {
		t.Fatalf("MC κ = %d, deterministic κ = %d", mc, det)
	}
}

// End-to-end decision sanity: under a constant-rate NHPP, scheduling each
// query i at SolveHP of its sampled arrivals must give ≈ the target hit
// rate when arrivals are re-simulated.
func TestDecisionAchievesTargetHP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const (
		lambda = 0.5
		tauVal = 13.0
		alpha  = 0.2
		nQuery = 40
		nRep   = 400
	)
	in := nhpp.Constant{Lambda: lambda}
	h := NewHorizon(in, 0, 0.1, 0)
	// Plan creation times for queries 1..nQuery at time 0.
	plan := make([]float64, nQuery+1)
	tauS := make([]float64, 800)
	for r := range tauS {
		tauS[r] = tauVal
	}
	for i := 1; i <= nQuery; i++ {
		xiS := make([]float64, 800)
		for r := range xiS {
			u, ok := h.SampleArrival(rng, i)
			if !ok {
				t.Fatal("sampling failed")
			}
			xiS[r] = u
		}
		x, _ := SolveHP(xiS, tauS, alpha)
		plan[i] = x
	}
	// Replay: simulate fresh arrival sequences and count hits for queries
	// beyond the infeasible prefix κ.
	kappa := Kappa(lambda, stats.Deterministic{Value: tauVal}, alpha, nil, 0)
	if kappa >= nQuery {
		t.Fatalf("κ=%d too large for test horizon", kappa)
	}
	var hits, total int
	for rep := 0; rep < nRep; rep++ {
		arr := nhpp.Simulate(rng, in, 0, float64(3*nQuery)/lambda)
		for i := kappa + 1; i <= nQuery && i <= len(arr); i++ {
			total++
			if arr[i-1] > plan[i]+tauVal {
				hits++
			}
		}
	}
	frac := float64(hits) / float64(total)
	if math.Abs(frac-(1-alpha)) > 0.04 {
		t.Fatalf("achieved HP %g, want %g", frac, 1-alpha)
	}
}
