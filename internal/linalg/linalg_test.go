package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestVectorOps(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	dst := NewVector(3)

	Add(dst, a, b)
	want := Vector{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Add[%d] = %g, want %g", i, dst[i], want[i])
		}
	}

	Sub(dst, b, a)
	for i, w := range []float64{3, 3, 3} {
		if dst[i] != w {
			t.Fatalf("Sub[%d] = %g, want %g", i, dst[i], w)
		}
	}

	Scale(dst, 2, a)
	for i, w := range []float64{2, 4, 6} {
		if dst[i] != w {
			t.Fatalf("Scale[%d] = %g, want %g", i, dst[i], w)
		}
	}

	AXPY(dst, a, -1, b)
	for i, w := range []float64{-3, -3, -3} {
		if dst[i] != w {
			t.Fatalf("AXPY[%d] = %g, want %g", i, dst[i], w)
		}
	}

	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
	if got := Sum(a); got != 6 {
		t.Fatalf("Sum = %g, want 6", got)
	}
	if got := Norm1(Vector{-1, 2, -3}); got != 6 {
		t.Fatalf("Norm1 = %g, want 6", got)
	}
	if got := Norm2(Vector{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %g, want 5", got)
	}
	if got := NormInf(Vector{-7, 2}); got != 7 {
		t.Fatalf("NormInf = %g, want 7", got)
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	a := Vector{-2, -0.5, 0, 0.5, 2}
	e := NewVector(len(a))
	l := NewVector(len(a))
	Exp(e, a)
	Log(l, e)
	for i := range a {
		if !almostEq(l[i], a[i], 1e-12) {
			t.Fatalf("log(exp(x))[%d] = %g, want %g", i, l[i], a[i])
		}
	}
}

func TestSoftThreshold(t *testing.T) {
	a := Vector{-3, -1, 0, 1, 3}
	dst := NewVector(len(a))
	SoftThreshold(dst, a, 2)
	want := Vector{-1, 0, 0, 0, 1}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("SoftThreshold[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}

// Soft thresholding is the prox of c·‖·‖₁: it must shrink magnitude by at
// most c and never flip signs.
func TestSoftThresholdProperties(t *testing.T) {
	f := func(x float64, cRaw float64) bool {
		c := math.Abs(cRaw)
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		dst := NewVector(1)
		SoftThreshold(dst, Vector{x}, c)
		y := dst[0]
		if x > 0 && y < 0 || x < 0 && y > 0 {
			return false
		}
		return math.Abs(y) <= math.Abs(x) && math.Abs(x)-math.Abs(y) <= c+1e-9*math.Abs(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymBandedSetAt(t *testing.T) {
	m := NewSymBanded(5, 2)
	m.Set(1, 3, 7)
	if got := m.At(3, 1); got != 7 {
		t.Fatalf("symmetric At = %g, want 7", got)
	}
	if got := m.At(0, 4); got != 0 {
		t.Fatalf("outside band At = %g, want 0", got)
	}
	m.AddAt(1, 3, 1)
	if got := m.At(1, 3); got != 8 {
		t.Fatalf("AddAt result = %g, want 8", got)
	}
}

func TestSymBandedMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, kd int }{{1, 0}, {4, 1}, {7, 3}, {12, 5}, {12, 11}} {
		m := NewSymBanded(tc.n, tc.kd)
		for i := 0; i < tc.n; i++ {
			for j := i; j <= i+tc.kd && j < tc.n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		x := NewVector(tc.n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVec(NewVector(tc.n), x)
		dense := m.Dense()
		for i := 0; i < tc.n; i++ {
			var want float64
			for j := 0; j < tc.n; j++ {
				want += dense[i][j] * x[j]
			}
			if !almostEq(got[i], want, 1e-12) {
				t.Fatalf("n=%d kd=%d MulVec[%d] = %g, want %g", tc.n, tc.kd, i, got[i], want)
			}
		}
	}
}

// randomSPDBanded builds diag-dominant random banded SPD matrices.
func randomSPDBanded(rng *rand.Rand, n, kd int) *SymBanded {
	m := NewSymBanded(n, kd)
	for i := 0; i < n; i++ {
		for j := i + 1; j <= i+kd && j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	// Make strictly diagonally dominant, hence SPD.
	for i := 0; i < n; i++ {
		var rowAbs float64
		for j := 0; j < n; j++ {
			if j != i {
				rowAbs += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, rowAbs+1+rng.Float64())
	}
	return m
}

func TestBandedCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ n, kd int }{{1, 0}, {3, 1}, {10, 2}, {50, 7}, {100, 25}} {
		m := randomSPDBanded(rng, tc.n, tc.kd)
		xTrue := NewVector(tc.n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := m.MulVec(NewVector(tc.n), xTrue)
		fact, err := m.Cholesky(nil)
		if err != nil {
			t.Fatalf("n=%d kd=%d Cholesky: %v", tc.n, tc.kd, err)
		}
		x := fact.Solve(NewVector(tc.n), b)
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-8) {
				t.Fatalf("n=%d kd=%d Solve[%d] = %g, want %g", tc.n, tc.kd, i, x[i], xTrue[i])
			}
		}
	}
}

func TestBandedCholeskyReuseFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomSPDBanded(rng, 20, 3)
	fact, err := m.Cholesky(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Refactor a different matrix into the same storage.
	m2 := randomSPDBanded(rng, 20, 3)
	fact2, err := m2.Cholesky(fact)
	if err != nil {
		t.Fatal(err)
	}
	if fact2 != fact {
		t.Fatal("Cholesky did not reuse compatible factorization storage")
	}
	xTrue := NewVector(20)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := m2.MulVec(NewVector(20), xTrue)
	x := fact2.Solve(NewVector(20), b)
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-8) {
			t.Fatalf("reused Solve[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewSymBanded(3, 1)
	m.Set(0, 0, 1)
	m.Set(1, 1, -5) // negative pivot
	m.Set(2, 2, 1)
	if _, err := m.Cholesky(nil); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
}

func TestSolveInPlaceAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomSPDBanded(rng, 15, 4)
	xTrue := NewVector(15)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := m.MulVec(NewVector(15), xTrue)
	fact, err := m.Cholesky(nil)
	if err != nil {
		t.Fatal(err)
	}
	fact.Solve(b, b) // dst aliases b
	for i := range b {
		if !almostEq(b[i], xTrue[i], 1e-8) {
			t.Fatalf("aliased Solve[%d] = %g, want %g", i, b[i], xTrue[i])
		}
	}
}

func TestDenseCholeskySolveMatchesBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomSPDBanded(rng, 30, 5)
	b := NewVector(30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	fact, err := m.Cholesky(nil)
	if err != nil {
		t.Fatal(err)
	}
	xb := fact.Solve(NewVector(30), b)
	xd, err := DenseCholeskySolve(m.Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xb {
		if !almostEq(xb[i], xd[i], 1e-8) {
			t.Fatalf("dense vs banded solve[%d]: %g vs %g", i, xd[i], xb[i])
		}
	}
}

func TestD2Operators(t *testing.T) {
	r := Vector{1, 4, 9, 16, 25} // r_i = (i+1)², second difference is constant 2
	d := D2Mul(NewVector(D2Rows(len(r))), r)
	for i, v := range d {
		if v != 2 {
			t.Fatalf("D2Mul[%d] = %g, want 2", i, v)
		}
	}
	// Adjoint identity <D2 r, v> == <r, D2ᵀ v>.
	v := Vector{1, -2, 3}
	lhs := Dot(d, v)
	rt := D2TMul(NewVector(len(r)), v)
	rhs := Dot(r, rt)
	if !almostEq(lhs, rhs, 1e-12) {
		t.Fatalf("adjoint mismatch: %g vs %g", lhs, rhs)
	}
}

func TestDLOperators(t *testing.T) {
	period := 3
	r := Vector{1, 2, 3, 1, 2, 3, 1} // exactly periodic with period 3
	d := DLMul(NewVector(DLRows(len(r), period)), r, period)
	for i, v := range d {
		if v != 0 {
			t.Fatalf("DLMul[%d] = %g, want 0 for periodic input", i, v)
		}
	}
	v := Vector{2, -1, 0.5, 4}
	lhs := Dot(DLMul(NewVector(4), Vector{5, 1, 0, 2, 2, 2, 9}, period), v)
	rhs := Dot(Vector{5, 1, 0, 2, 2, 2, 9}, DLTMul(NewVector(7), v, period))
	if !almostEq(lhs, rhs, 1e-12) {
		t.Fatalf("DL adjoint mismatch: %g vs %g", lhs, rhs)
	}
}

func TestDiffEdgeCases(t *testing.T) {
	if D2Rows(1) != 0 || D2Rows(2) != 0 {
		t.Fatal("D2Rows should be 0 for t<3")
	}
	if DLRows(10, 0) != 0 {
		t.Fatal("DLRows should be 0 for period 0")
	}
	if DLRows(5, 10) != 0 {
		t.Fatal("DLRows should be 0 when t <= period")
	}
	// Empty operators must be no-ops on Gram assembly.
	m := NewSymBanded(2, 1)
	AddD2Gram(m, 1)
	AddDLGram(m, 1, 5)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("Gram of empty operator produced non-zero at (%d,%d)", i, j)
			}
		}
	}
}

// The assembled Gram matrices must equal DᵀD computed via the mat-vec
// operators on unit vectors.
func TestGramMatchesOperators(t *testing.T) {
	const n, period = 12, 4
	m := NewSymBanded(n, period) // kd = period ≥ 2
	AddD2Gram(m, 1.5)
	AddDLGram(m, 2.5, period)

	for j := 0; j < n; j++ {
		e := NewVector(n)
		e[j] = 1
		d2 := D2Mul(NewVector(D2Rows(n)), e)
		dl := DLMul(NewVector(DLRows(n, period)), e, period)
		col := Add(NewVector(n),
			Scale(NewVector(n), 1.5, D2TMul(NewVector(n), d2)),
			Scale(NewVector(n), 2.5, DLTMul(NewVector(n), dl, period)))
		for i := 0; i < n; i++ {
			if !almostEq(m.At(i, j), col[i], 1e-12) {
				t.Fatalf("Gram(%d,%d) = %g, want %g", i, j, m.At(i, j), col[i])
			}
		}
	}
}

func TestAddDiag(t *testing.T) {
	m := NewSymBanded(3, 1)
	m.AddDiag(Vector{1, 2, 3})
	m.AddDiag(Vector{1, 1, 1})
	for i, w := range []float64{2, 3, 4} {
		if m.At(i, i) != w {
			t.Fatalf("diag[%d] = %g, want %g", i, m.At(i, i), w)
		}
	}
}

// Property: banded Cholesky solve returns x with small residual ‖Ax−b‖ for
// random diag-dominant systems.
func TestCholeskySolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		kd := rng.Intn(n)
		m := randomSPDBanded(rng, n, kd)
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		fact, err := m.Cholesky(nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x := fact.Solve(NewVector(n), b)
		res := Sub(NewVector(n), m.MulVec(NewVector(n), x), b)
		if Norm2(res) > 1e-8*(1+Norm2(b)) {
			t.Fatalf("trial %d: residual %g too large", trial, Norm2(res))
		}
	}
}
