package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// TestSteadyStateSolveZeroAlloc is the workspace-reuse contract of the
// retrain pool: once a SymBanded/BandedCholesky pair has been sized, a
// full assemble→factorize→solve cycle of the same shape allocates
// nothing. The ADMM inner loop runs this cycle hundreds of times per
// refit, so a single alloc here multiplies into GC churn fleet-wide.
func TestSteadyStateSolveZeroAlloc(t *testing.T) {
	const n, kd = 512, 12
	rng := rand.New(rand.NewSource(7))
	diag := NewVector(n)
	for i := range diag {
		diag[i] = 1 + rng.Float64()
	}
	a := NewSymBanded(n, kd)
	b := NewVector(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := NewVector(n)
	var fact *BandedCholesky
	cycle := func() {
		a.Reset()
		a.AddDiag(diag)
		AddD2Gram(a, 3)
		AddDLGram(a, 20, kd)
		var err error
		fact, err = a.Cholesky(fact)
		if err != nil {
			t.Fatalf("cholesky: %v", err)
		}
		fact.Solve(x, b)
	}
	cycle() // size the factor once
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Fatalf("steady-state banded solve allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSymBandedResize checks that Resize reuses capacity, zeroes the
// matrix, and yields the same factorization as a freshly constructed
// matrix of the target shape.
func TestSymBandedResize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewSymBanded(64, 8)
	for i := 0; i < m.N; i++ {
		m.Set(i, i, 1+rng.Float64())
	}
	// Shrink: must reuse the backing array and come back zeroed.
	prev := &m.data[0]
	m.Resize(32, 4)
	if &m.data[0] != prev {
		t.Fatalf("Resize to a smaller shape reallocated")
	}
	if m.N != 32 || m.Kd != 4 || len(m.data) != 32*5 {
		t.Fatalf("Resize shape: N=%d Kd=%d len=%d", m.N, m.Kd, len(m.data))
	}
	for i, v := range m.data {
		if v != 0 {
			t.Fatalf("Resize left stale value %g at %d", v, i)
		}
	}
	// kd clamps to n-1 like NewSymBanded.
	m.Resize(4, 10)
	if m.Kd != 3 {
		t.Fatalf("Resize kd clamp: got %d, want 3", m.Kd)
	}

	// A resized matrix factors identically to a fresh one.
	want := randomSPDBanded(rng, 48, 6)
	m.Resize(48, 6)
	for i := 0; i < 48; i++ {
		for d := 0; d <= 6 && i-d >= 0; d++ {
			m.Set(i, i-d, want.At(i, i-d))
		}
	}
	b := NewVector(48)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	f1, err := m.Cholesky(nil)
	if err != nil {
		t.Fatalf("cholesky resized: %v", err)
	}
	f2, err := want.Cholesky(nil)
	if err != nil {
		t.Fatalf("cholesky fresh: %v", err)
	}
	x1, x2 := f1.Solve(NewVector(48), b), f2.Solve(NewVector(48), b)
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-12 {
			t.Fatalf("solve mismatch at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}

// TestCholeskyReuseAcrossSizes checks the capacity-reusing factor: one
// BandedCholesky serves solves of different shapes, reallocating only to
// grow.
func TestCholeskyReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var fact *BandedCholesky
	for _, shape := range []struct{ n, kd int }{{64, 8}, {32, 4}, {64, 8}, {48, 2}} {
		m := randomSPDBanded(rng, shape.n, shape.kd)
		var err error
		fact, err = m.Cholesky(fact)
		if err != nil {
			t.Fatalf("cholesky %dx kd=%d: %v", shape.n, shape.kd, err)
		}
		if fact.N != shape.n || fact.Kd != shape.kd {
			t.Fatalf("factor shape: N=%d Kd=%d, want %d/%d", fact.N, fact.Kd, shape.n, shape.kd)
		}
		b := NewVector(shape.n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := fact.Solve(NewVector(shape.n), b)
		// Residual check: A·x ≈ b.
		ax := m.MulVec(NewVector(shape.n), x)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				t.Fatalf("residual %g at %d for shape %v", ax[i]-b[i], i, shape)
			}
		}
	}
}

// TestVectorResize covers the capacity-reuse contract of Resize.
func TestVectorResize(t *testing.T) {
	v := NewVector(16)
	w := Resize(v, 8)
	if len(w) != 8 || &w[0] != &v[0] {
		t.Fatalf("Resize shrink should reslice in place")
	}
	g := Resize(w, 32)
	if len(g) != 32 {
		t.Fatalf("Resize grow length %d", len(g))
	}
	if Resize(nil, 0) == nil && len(Resize(nil, 0)) != 0 {
		t.Fatalf("Resize(nil, 0) should be empty")
	}
}
