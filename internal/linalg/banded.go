package linalg

import (
	"fmt"
	"math"
)

// SymBanded is a symmetric banded n×n matrix with half-bandwidth kd.
// Only the lower triangle is stored, row by row: element (i, i-d) for
// d = 0..kd lives at data[i*(kd+1)+d]. Entries that fall outside the
// matrix (i-d < 0) are present in storage but ignored.
//
// This is the shape of A_k = Δt·diag(e^{r_k}) + ρ·D2ᵀD2 + ρ·DLᵀDL in the
// ADMM trainer: positive diagonal plus positive semi-definite penalty
// terms, bandwidth max(2, L).
type SymBanded struct {
	N    int // matrix dimension
	Kd   int // half-bandwidth (number of sub-diagonals)
	data []float64
}

// NewSymBanded returns a zeroed symmetric banded matrix.
func NewSymBanded(n, kd int) *SymBanded {
	if n <= 0 || kd < 0 {
		panic(fmt.Sprintf("linalg: invalid banded dims n=%d kd=%d", n, kd))
	}
	if kd >= n {
		kd = n - 1
	}
	return &SymBanded{N: n, Kd: kd, data: make([]float64, n*(kd+1))}
}

// Reset zeroes the matrix in place so it can be refilled.
func (m *SymBanded) Reset() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Resize reshapes the matrix to n×n with half-bandwidth kd and zeroes
// it, reusing the existing backing array when its capacity suffices.
// Together with the capacity-reusing Cholesky below it lets one
// SymBanded/BandedCholesky pair serve fits of different window sizes
// without reallocating — the steady state is zero-allocation.
func (m *SymBanded) Resize(n, kd int) *SymBanded {
	if n <= 0 || kd < 0 {
		panic(fmt.Sprintf("linalg: invalid banded dims n=%d kd=%d", n, kd))
	}
	if kd >= n {
		kd = n - 1
	}
	need := n * (kd + 1)
	if cap(m.data) < need {
		m.data = make([]float64, need)
	}
	m.data = m.data[:need]
	m.N, m.Kd = n, kd
	m.Reset()
	return m
}

// At returns element (i, j). Elements outside the band are zero.
func (m *SymBanded) At(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	d := i - j
	if d > m.Kd {
		return 0
	}
	return m.data[i*(m.Kd+1)+d]
}

// Set assigns element (i, j) (and its mirror) within the band.
func (m *SymBanded) Set(i, j int, v float64) {
	if i < j {
		i, j = j, i
	}
	d := i - j
	if d > m.Kd {
		panic(fmt.Sprintf("linalg: (%d,%d) outside band kd=%d", i, j, m.Kd))
	}
	m.data[i*(m.Kd+1)+d] = v
}

// AddAt adds v to element (i, j) (and its mirror) within the band.
func (m *SymBanded) AddAt(i, j int, v float64) {
	if i < j {
		i, j = j, i
	}
	d := i - j
	if d > m.Kd {
		panic(fmt.Sprintf("linalg: (%d,%d) outside band kd=%d", i, j, m.Kd))
	}
	m.data[i*(m.Kd+1)+d] += v
}

// AddDiag adds d[i] to the diagonal. Panics if len(d) != N.
func (m *SymBanded) AddDiag(d Vector) {
	if len(d) != m.N {
		panic("linalg: AddDiag length mismatch")
	}
	w := m.Kd + 1
	for i := 0; i < m.N; i++ {
		m.data[i*w] += d[i]
	}
}

// MulVec stores A·x into dst and returns dst.
func (m *SymBanded) MulVec(dst, x Vector) Vector {
	if len(x) != m.N || len(dst) != m.N {
		panic("linalg: MulVec length mismatch")
	}
	w := m.Kd + 1
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.N; i++ {
		row := m.data[i*w : i*w+w]
		dst[i] += row[0] * x[i]
		dmax := m.Kd
		if i < dmax {
			dmax = i
		}
		for d := 1; d <= dmax; d++ {
			v := row[d]
			if v == 0 {
				continue
			}
			dst[i] += v * x[i-d]
			dst[i-d] += v * x[i]
		}
	}
	return dst
}

// BandedCholesky is the lower Cholesky factor L of a symmetric positive
// definite banded matrix, stored in the same banded layout.
type BandedCholesky struct {
	N    int
	Kd   int
	data []float64
}

// Cholesky computes the banded Cholesky factorization A = L·Lᵀ, reusing
// fact's storage if it is non-nil — even across size changes, as long as
// its backing array has the capacity (it is regrown otherwise). It
// returns an error if the matrix is not positive definite. Cost is
// O(N·Kd²).
func (m *SymBanded) Cholesky(fact *BandedCholesky) (*BandedCholesky, error) {
	w := m.Kd + 1
	if fact == nil {
		fact = &BandedCholesky{}
	}
	if need := m.N * w; cap(fact.data) < need {
		fact.data = make([]float64, need)
	} else {
		fact.data = fact.data[:need]
	}
	fact.N, fact.Kd = m.N, m.Kd
	L := fact.data
	copy(L, m.data)
	for i := 0; i < m.N; i++ {
		lo := i - m.Kd
		if lo < 0 {
			lo = 0
		}
		// L[i][j] for j = lo..i.
		for j := lo; j <= i; j++ {
			s := L[i*w+(i-j)]
			kLo := lo
			if jLo := j - m.Kd; jLo > kLo {
				kLo = jLo
			}
			for k := kLo; k < j; k++ {
				s -= L[i*w+(i-k)] * L[j*w+(j-k)]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (s=%g)", i, s)
				}
				L[i*w] = math.Sqrt(s)
			} else {
				L[i*w+(i-j)] = s / L[j*w]
			}
		}
	}
	return fact, nil
}

// Solve solves L·Lᵀ·x = b in place into dst (dst may alias b) and returns dst.
func (f *BandedCholesky) Solve(dst, b Vector) Vector {
	if len(b) != f.N || len(dst) != f.N {
		panic("linalg: Solve length mismatch")
	}
	w := f.Kd + 1
	L := f.data
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	// Forward substitution L·y = b.
	for i := 0; i < f.N; i++ {
		s := dst[i]
		lo := i - f.Kd
		if lo < 0 {
			lo = 0
		}
		for k := lo; k < i; k++ {
			s -= L[i*w+(i-k)] * dst[k]
		}
		dst[i] = s / L[i*w]
	}
	// Backward substitution Lᵀ·x = y.
	for i := f.N - 1; i >= 0; i-- {
		s := dst[i]
		hi := i + f.Kd
		if hi > f.N-1 {
			hi = f.N - 1
		}
		for k := i + 1; k <= hi; k++ {
			s -= L[k*w+(k-i)] * dst[k]
		}
		dst[i] = s / L[i*w]
	}
	return dst
}

// Dense returns the dense representation of the matrix, for tests and the
// dense-solve ablation bench.
func (m *SymBanded) Dense() [][]float64 {
	out := make([][]float64, m.N)
	for i := range out {
		out[i] = make([]float64, m.N)
		for j := 0; j < m.N; j++ {
			out[i][j] = m.At(i, j)
		}
	}
	return out
}

// DenseCholeskySolve solves A·x = b with a dense O(n³) Cholesky. It exists
// only as the baseline for the banded-solve ablation benchmark.
func DenseCholeskySolve(a [][]float64, b Vector) (Vector, error) {
	n := len(a)
	L := make([][]float64, n)
	for i := range L {
		L[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= L[i][k] * L[j][k]
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("linalg: dense matrix not positive definite at %d", i)
				}
				L[i][i] = math.Sqrt(s)
			} else {
				L[i][j] = s / L[j][j]
			}
		}
	}
	x := Clone(b)
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= L[i][k] * x[k]
		}
		x[i] = s / L[i][i]
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= L[k][i] * x[k]
		}
		x[i] = s / L[i][i]
	}
	return x, nil
}
