// Package linalg provides the small linear-algebra substrate RobustScaler
// needs: dense vectors, symmetric banded matrices with Cholesky
// factorization (the O(T·L²) solve inside the ADMM trainer), and the sparse
// difference operators D2 and DL from the regularized NHPP loss.
//
// The package is deliberately minimal and allocation-conscious: every hot
// routine accepts destination slices so callers can reuse buffers across
// ADMM iterations.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector = []float64

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Resize returns a length-n vector, reusing v's backing array when its
// capacity suffices (contents are unspecified — callers overwrite or
// Fill). It is the growth primitive behind the reusable ADMM workspaces:
// steady-state refits of a same-sized window never allocate.
func Resize(v Vector, n int) Vector {
	if cap(v) < n {
		return make(Vector, n)
	}
	return v[:n]
}

// Clone returns a copy of v.
func Clone(v Vector) Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to c.
func Fill(v Vector, c float64) {
	for i := range v {
		v[i] = c
	}
}

// Add stores a+b into dst and returns dst. Panics if lengths differ.
func Add(dst, a, b Vector) Vector {
	checkLen3(dst, a, b)
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Sub stores a-b into dst and returns dst.
func Sub(dst, a, b Vector) Vector {
	checkLen3(dst, a, b)
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Scale stores c*a into dst and returns dst.
func Scale(dst Vector, c float64, a Vector) Vector {
	checkLen2(dst, a)
	for i := range dst {
		dst[i] = c * a[i]
	}
	return dst
}

// AXPY stores a + c*b into dst and returns dst.
func AXPY(dst Vector, a Vector, c float64, b Vector) Vector {
	checkLen3(dst, a, b)
	for i := range dst {
		dst[i] = a[i] + c*b[i]
	}
	return dst
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) float64 {
	checkLen2(a, b)
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Sum returns the sum of the elements of v.
func Sum(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Norm1 returns the L1 norm of v.
func Norm1(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the max-abs norm of v.
func NormInf(v Vector) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Exp stores element-wise exp(a) into dst and returns dst.
func Exp(dst, a Vector) Vector {
	checkLen2(dst, a)
	for i := range dst {
		dst[i] = math.Exp(a[i])
	}
	return dst
}

// Log stores element-wise log(a) into dst and returns dst.
func Log(dst, a Vector) Vector {
	checkLen2(dst, a)
	for i := range dst {
		dst[i] = math.Log(a[i])
	}
	return dst
}

// SoftThreshold stores the element-wise soft-thresholding
// sign(a)·max(|a|−c, 0) into dst and returns dst. It is the proximal
// operator of the L1 norm used by ADMM step 3 (Algorithm 2 of the paper).
func SoftThreshold(dst, a Vector, c float64) Vector {
	checkLen2(dst, a)
	for i, x := range a {
		switch {
		case x > c:
			dst[i] = x - c
		case x < -c:
			dst[i] = x + c
		default:
			dst[i] = 0
		}
	}
	return dst
}

func checkLen2(a, b Vector) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: length mismatch %d vs %d", len(a), len(b)))
	}
}

func checkLen3(a, b, c Vector) {
	if len(a) != len(b) || len(b) != len(c) {
		panic(fmt.Sprintf("linalg: length mismatch %d/%d/%d", len(a), len(b), len(c)))
	}
}
