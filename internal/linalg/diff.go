package linalg

// This file implements the two sparse difference operators from the
// regularized NHPP loss (eq. 1 of the paper):
//
//	D2 ∈ R^{(T−2)×T}  — second-order difference, rows (1, −2, 1),
//	                    capturing smoothness of three consecutive points;
//	DL ∈ R^{(T−L)×T}  — L-step forward difference, rows (e_i − e_{i+L}),
//	                    capturing smoothness across one period length L.
//
// The operators are never materialized; mat-vec products and the banded
// Gram matrices DᵀD are computed directly from the stencil.

// D2Rows returns the number of rows of D2 for a series of length t, i.e.
// max(t−2, 0).
func D2Rows(t int) int {
	if t < 2 {
		return 0
	}
	return t - 2
}

// DLRows returns the number of rows of DL for series length t and period L,
// i.e. max(t−L, 0). A period of 0 (no periodicity detected) yields 0 rows.
func DLRows(t, period int) int {
	if period <= 0 || t <= period {
		return 0
	}
	return t - period
}

// D2Mul stores D2·r into dst (length D2Rows(len(r))) and returns dst.
func D2Mul(dst, r Vector) Vector {
	n := D2Rows(len(r))
	if len(dst) != n {
		panic("linalg: D2Mul dst length mismatch")
	}
	for i := 0; i < n; i++ {
		dst[i] = r[i] - 2*r[i+1] + r[i+2]
	}
	return dst
}

// D2TMul stores D2ᵀ·v into dst (length len(v)+2) and returns dst.
func D2TMul(dst, v Vector) Vector {
	if len(dst) != len(v)+2 {
		panic("linalg: D2TMul dst length mismatch")
	}
	Fill(dst, 0)
	for i, x := range v {
		dst[i] += x
		dst[i+1] -= 2 * x
		dst[i+2] += x
	}
	return dst
}

// DLMul stores DL·r into dst (length DLRows(len(r), period)) and returns dst.
func DLMul(dst, r Vector, period int) Vector {
	n := DLRows(len(r), period)
	if len(dst) != n {
		panic("linalg: DLMul dst length mismatch")
	}
	for i := 0; i < n; i++ {
		dst[i] = r[i] - r[i+period]
	}
	return dst
}

// DLTMul stores DLᵀ·v into dst (length len(v)+period) and returns dst.
func DLTMul(dst, v Vector, period int) Vector {
	if len(dst) != len(v)+period {
		panic("linalg: DLTMul dst length mismatch")
	}
	Fill(dst, 0)
	for i, x := range v {
		dst[i] += x
		dst[i+period] -= x
	}
	return dst
}

// AddD2Gram adds c·D2ᵀD2 to m. The Gram matrix is pentadiagonal, so m must
// have Kd ≥ 2 (when the series is long enough for D2 to be non-empty).
func AddD2Gram(m *SymBanded, c float64) {
	n := D2Rows(m.N)
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		// Row stencil values 1, −2, 1 at columns i, i+1, i+2.
		m.AddAt(i, i, c)
		m.AddAt(i+1, i+1, 4*c)
		m.AddAt(i+2, i+2, c)
		m.AddAt(i, i+1, -2*c)
		m.AddAt(i+1, i+2, -2*c)
		m.AddAt(i, i+2, c)
	}
}

// AddDLGram adds c·DLᵀDL to m for the given period. m must have Kd ≥ period
// (when DL is non-empty).
func AddDLGram(m *SymBanded, c float64, period int) {
	n := DLRows(m.N, period)
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		m.AddAt(i, i, c)
		m.AddAt(i+period, i+period, c)
		m.AddAt(i, i+period, -c)
	}
}
