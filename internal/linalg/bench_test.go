package linalg

import (
	"math/rand"
	"testing"
)

func benchSystem(n, kd int) (*SymBanded, Vector) {
	rng := rand.New(rand.NewSource(1))
	m := randomSPDBanded(rng, n, kd)
	b := NewVector(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return m, b
}

// BenchmarkBandedCholesky measures the O(T·L²) factorization at the
// ADMM's typical scale (T = 2016 ten-minute bins, L = 144 daily period).
func BenchmarkBandedCholesky(b *testing.B) {
	m, _ := benchSystem(2016, 144)
	b.ReportAllocs()
	b.ResetTimer()
	var fact *BandedCholesky
	var err error
	for i := 0; i < b.N; i++ {
		fact, err = m.Cholesky(fact)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBandedSolve measures the triangular solves after
// factorization.
func BenchmarkBandedSolve(b *testing.B) {
	m, rhs := benchSystem(2016, 144)
	fact, err := m.Cholesky(nil)
	if err != nil {
		b.Fatal(err)
	}
	x := NewVector(2016)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fact.Solve(x, rhs)
	}
}

// BenchmarkSymBandedMulVec measures the banded mat-vec used by CG.
func BenchmarkSymBandedMulVec(b *testing.B) {
	m, rhs := benchSystem(2016, 144)
	dst := NewVector(2016)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, rhs)
	}
}

// BenchmarkBandedFactorSolveReuse measures one full steady-state ADMM
// inner cycle — assemble, factorize into a reused factor, solve — at the
// trainer's banded scale. This is the workspace-reuse smoke CI runs with
// -benchmem: allocs/op must be 0 (TestSteadyStateSolveZeroAlloc asserts
// the same invariant as a plain test).
func BenchmarkBandedFactorSolveReuse(b *testing.B) {
	const n, kd = 2016, 12
	rng := rand.New(rand.NewSource(1))
	diag := NewVector(n)
	for i := range diag {
		diag[i] = 1 + rng.Float64()
	}
	rhs := NewVector(n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	a := NewSymBanded(n, kd)
	x := NewVector(n)
	var fact *BandedCholesky
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Reset()
		a.AddDiag(diag)
		AddD2Gram(a, 3)
		AddDLGram(a, 20, kd)
		fact, err = a.Cholesky(fact)
		if err != nil {
			b.Fatal(err)
		}
		fact.Solve(x, rhs)
	}
}

// BenchmarkD2Gram measures difference-operator Gram assembly.
func BenchmarkD2Gram(b *testing.B) {
	m := NewSymBanded(2016, 144)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		AddD2Gram(m, 1)
		AddDLGram(m, 1, 144)
	}
}
