package linalg

import (
	"math/rand"
	"testing"
)

func benchSystem(n, kd int) (*SymBanded, Vector) {
	rng := rand.New(rand.NewSource(1))
	m := randomSPDBanded(rng, n, kd)
	b := NewVector(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return m, b
}

// BenchmarkBandedCholesky measures the O(T·L²) factorization at the
// ADMM's typical scale (T = 2016 ten-minute bins, L = 144 daily period).
func BenchmarkBandedCholesky(b *testing.B) {
	m, _ := benchSystem(2016, 144)
	b.ReportAllocs()
	b.ResetTimer()
	var fact *BandedCholesky
	var err error
	for i := 0; i < b.N; i++ {
		fact, err = m.Cholesky(fact)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBandedSolve measures the triangular solves after
// factorization.
func BenchmarkBandedSolve(b *testing.B) {
	m, rhs := benchSystem(2016, 144)
	fact, err := m.Cholesky(nil)
	if err != nil {
		b.Fatal(err)
	}
	x := NewVector(2016)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fact.Solve(x, rhs)
	}
}

// BenchmarkSymBandedMulVec measures the banded mat-vec used by CG.
func BenchmarkSymBandedMulVec(b *testing.B) {
	m, rhs := benchSystem(2016, 144)
	dst := NewVector(2016)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, rhs)
	}
}

// BenchmarkD2Gram measures difference-operator Gram assembly.
func BenchmarkD2Gram(b *testing.B) {
	m := NewSymBanded(2016, 144)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		AddD2Gram(m, 1)
		AddDLGram(m, 1, 144)
	}
}
