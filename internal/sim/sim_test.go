package sim

import (
	"math"
	"testing"

	"robustscaler/internal/stats"
)

// nopPolicy never scales: every query cold-starts (pure reactive BP(0)).
type nopPolicy struct{}

func (nopPolicy) Init(*Context)            {}
func (nopPolicy) OnTick(*Context, float64) {}
func (nopPolicy) OnArrival(*Context, Query) {
}

// prePlanPolicy schedules a fixed list of creations at Init.
type prePlanPolicy struct{ times []float64 }

func (p *prePlanPolicy) Init(ctx *Context) {
	for _, t := range p.times {
		ctx.Schedule(t)
	}
}
func (p *prePlanPolicy) OnTick(*Context, float64)  {}
func (p *prePlanPolicy) OnArrival(*Context, Query) {}

func baseCfg() Config {
	return Config{
		Start:       0,
		End:         1000,
		PendingDist: stats.Deterministic{Value: 10},
		MeanPending: 10,
		MeanService: 5,
		Seed:        1,
	}
}

func TestReactiveColdStartsEverything(t *testing.T) {
	queries := []Query{{100, 5}, {200, 5}, {300, 5}}
	res, err := Run(queries, nopPolicy{}, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumQueries != 3 {
		t.Fatalf("NumQueries = %d", res.NumQueries)
	}
	if res.HitRate() != 0 {
		t.Fatalf("reactive hit rate = %g, want 0", res.HitRate())
	}
	// Every RT = τ + s = 15.
	for i, rt := range res.RTs {
		if rt != 15 {
			t.Fatalf("RT[%d] = %g, want 15", i, rt)
		}
	}
	// Cost = Σ(τ+s) = 45 = baseline → relative cost 1.
	if res.TotalCost != 45 {
		t.Fatalf("TotalCost = %g, want 45", res.TotalCost)
	}
	if math.Abs(res.RelativeCost()-1) > 1e-12 {
		t.Fatalf("RelativeCost = %g, want 1", res.RelativeCost())
	}
}

func TestPerfectProactivePlanHitsEverything(t *testing.T) {
	queries := []Query{{100, 5}, {200, 5}, {300, 5}}
	// Create each instance τ=10 early + margin.
	p := &prePlanPolicy{times: []float64{85, 185, 285}}
	res, err := Run(queries, p, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate() != 1 {
		t.Fatalf("hit rate = %g, want 1", res.HitRate())
	}
	for i, rt := range res.RTs {
		if rt != 5 {
			t.Fatalf("RT[%d] = %g, want 5 (no wait)", i, rt)
		}
	}
	// Each lifecycle: created at a-15, done at a+5 → 20 each.
	if res.TotalCost != 60 {
		t.Fatalf("TotalCost = %g, want 60", res.TotalCost)
	}
}

func TestPendingInstanceQueryWaits(t *testing.T) {
	queries := []Query{{100, 5}}
	// Created at 95 → ready at 105: query waits 5.
	p := &prePlanPolicy{times: []float64{95}}
	res, err := Run(queries, p, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate() != 0 {
		t.Fatalf("hit rate = %g, want 0 (pending at arrival)", res.HitRate())
	}
	if res.Waits[0] != 5 || res.RTs[0] != 10 {
		t.Fatalf("wait %g rt %g, want 5 and 10", res.Waits[0], res.RTs[0])
	}
	// Lifecycle: 95 → 110 = 15.
	if res.TotalCost != 15 {
		t.Fatalf("TotalCost = %g, want 15", res.TotalCost)
	}
}

func TestScheduledButNotCreatedIsCancelled(t *testing.T) {
	queries := []Query{{100, 5}}
	// Scheduled for 150, query arrives at 100 → cancel + cold start.
	p := &prePlanPolicy{times: []float64{150}}
	res, err := Run(queries, p, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate() != 0 || res.RTs[0] != 15 {
		t.Fatalf("cold start expected: hit %v rt %g", res.Hits[0], res.RTs[0])
	}
	// Only the cold-start instance must be accounted: τ+s = 15.
	if res.TotalCost != 15 {
		t.Fatalf("TotalCost = %g, want 15 (cancelled creation is free)", res.TotalCost)
	}
	if res.InstancesCreated != 1 {
		t.Fatalf("InstancesCreated = %d, want 1", res.InstancesCreated)
	}
}

func TestLeftoverInstanceChargedToEnd(t *testing.T) {
	p := &prePlanPolicy{times: []float64{900}}
	res, err := Run(nil, p, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Created at 900, never used, charged until End=1000.
	if res.TotalCost != 100 {
		t.Fatalf("TotalCost = %g, want 100", res.TotalCost)
	}
}

func TestEarliestReadyInstanceServesFirst(t *testing.T) {
	queries := []Query{{100, 5}}
	// Two instances: one ready at 95, one at 60. The earlier one serves.
	p := &prePlanPolicy{times: []float64{85, 50}}
	res, err := Run(queries, p, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate() != 1 {
		t.Fatal("should hit")
	}
	// Used: created 50, done 105 → 55. Leftover: created 85 → charged to 1000 → 915.
	if res.TotalCost != 55+915 {
		t.Fatalf("TotalCost = %g, want 970", res.TotalCost)
	}
}

// tickCounter counts ticks to verify the planning cadence.
type tickCounter struct {
	ticks []float64
}

func (tc *tickCounter) Init(*Context) {}
func (tc *tickCounter) OnTick(_ *Context, now float64) {
	tc.ticks = append(tc.ticks, now)
}
func (tc *tickCounter) OnArrival(*Context, Query) {}

func TestTickCadence(t *testing.T) {
	cfg := baseCfg()
	cfg.End = 100
	cfg.TickInterval = 10
	tc := &tickCounter{}
	if _, err := Run([]Query{{55, 1}}, tc, cfg); err != nil {
		t.Fatal(err)
	}
	if len(tc.ticks) != 10 {
		t.Fatalf("got %d ticks, want 10", len(tc.ticks))
	}
	for i, tk := range tc.ticks {
		if tk != float64(10*i) {
			t.Fatalf("tick %d at %g", i, tk)
		}
	}
}

// replenishPolicy keeps exactly one instance around (BP with B=1).
type replenishPolicy struct{}

func (replenishPolicy) Init(ctx *Context)        { ctx.Schedule(ctx.Now()) }
func (replenishPolicy) OnTick(*Context, float64) {}
func (replenishPolicy) OnArrival(ctx *Context, _ Query) {
	ctx.Schedule(ctx.Now())
}

func TestReplenishKeepsPoolSizeOne(t *testing.T) {
	queries := []Query{{100, 5}, {200, 5}, {300, 5}}
	res, err := Run(queries, replenishPolicy{}, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Pool created at 0, ready at 10 → all arrivals ≥ 100 hit.
	if res.HitRate() != 1 {
		t.Fatalf("hit rate = %g, want 1", res.HitRate())
	}
	// 3 used + 1 leftover = 4 instances.
	if res.InstancesCreated != 4 {
		t.Fatalf("InstancesCreated = %d, want 4", res.InstancesCreated)
	}
}

func TestRecentQPS(t *testing.T) {
	var sawQPS float64
	probe := probePolicy{f: func(ctx *Context, now float64) {
		if now == 600 {
			sawQPS = ctx.RecentQPS(600)
		}
	}}
	cfg := baseCfg()
	cfg.TickInterval = 600
	queries := make([]Query, 0, 60)
	for i := 0; i < 60; i++ {
		queries = append(queries, Query{Arrival: float64(i * 10), Service: 1})
	}
	if _, err := Run(queries, probe, cfg); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sawQPS-0.1) > 0.01 {
		t.Fatalf("RecentQPS = %g, want 0.1", sawQPS)
	}
}

type probePolicy struct{ f func(*Context, float64) }

func (p probePolicy) Init(*Context)                    {}
func (p probePolicy) OnTick(ctx *Context, now float64) { p.f(ctx, now) }
func (p probePolicy) OnArrival(*Context, Query)        {}

func TestDeleteIdle(t *testing.T) {
	queries := []Query{{500, 5}}
	deleter := probePolicy{f: func(ctx *Context, now float64) {
		if now == 400 {
			if n := ctx.DeleteIdle(1); n != 1 {
				t.Fatalf("DeleteIdle returned %d", n)
			}
		}
	}}
	cfg := baseCfg()
	cfg.TickInterval = 400
	// Pre-create two instances; one gets deleted at t=400.
	pp := struct {
		prePlanPolicy
		probePolicy
	}{prePlanPolicy{times: []float64{10, 20}}, deleter}
	combined := comboPolicy{&pp.prePlanPolicy, pp.probePolicy}
	res, err := Run(queries, combined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Deleted at 400: lifecycle 380 (created 20, the later-ready one).
	// Used: created 10, done 505 → 495.
	if math.Abs(res.TotalCost-(380+495)) > 1e-9 {
		t.Fatalf("TotalCost = %g, want 875", res.TotalCost)
	}
}

type comboPolicy struct {
	init Autoscaler
	tick Autoscaler
}

func (c comboPolicy) Init(ctx *Context)                { c.init.Init(ctx) }
func (c comboPolicy) OnTick(ctx *Context, now float64) { c.tick.OnTick(ctx, now) }
func (c comboPolicy) OnArrival(ctx *Context, q Query)  { c.init.OnArrival(ctx, q) }

func TestUnsortedQueriesRejected(t *testing.T) {
	if _, err := Run([]Query{{5, 1}, {2, 1}}, nopPolicy{}, baseCfg()); err == nil {
		t.Fatal("unsorted queries accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := baseCfg()
	cfg.PendingDist = nil
	if _, err := Run(nil, nopPolicy{}, cfg); err == nil {
		t.Fatal("nil PendingDist accepted")
	}
	cfg = baseCfg()
	cfg.End = cfg.Start
	if _, err := Run(nil, nopPolicy{}, cfg); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestQueriesOutsideRangeIgnored(t *testing.T) {
	queries := []Query{{-5, 1}, {100, 5}, {2000, 1}}
	res, err := Run(queries, nopPolicy{}, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumQueries != 1 {
		t.Fatalf("NumQueries = %d, want 1", res.NumQueries)
	}
}

func TestWindowStats(t *testing.T) {
	res := &Result{
		NumQueries: 4,
		Hits:       []bool{true, false, true, true},
		RTs:        []float64{10, 20, 10, 20},
	}
	hm, hv := res.HitRateWindowStats(2)
	if hm != 0.75 || hv != 0.0625 {
		t.Fatalf("hit window stats = %g, %g", hm, hv)
	}
	rm, rv := res.RTWindowStats(2)
	if rm != 15 || rv != 0 {
		t.Fatalf("rt window stats = %g, %g", rm, rv)
	}
}

func TestMeasuredDecisionLatencyDelaysCreations(t *testing.T) {
	cfg := baseCfg()
	cfg.TickInterval = 50
	cfg.MeasureDecisionLatency = true
	cfg.ActuationLatency = 30 // seconds added to every tick-issued creation
	// The policy schedules a creation "now" at tick 50; with 30 s actuation
	// latency it materializes at ≥ 80, becoming ready at ≥ 90 — after the
	// query at 85, so the query cold-starts.
	p := probePolicy{f: func(ctx *Context, now float64) {
		if now == 50 {
			ctx.Schedule(now)
		}
	}}
	res, err := Run([]Query{{85, 5}}, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[0] {
		t.Fatal("creation should have been delayed past readiness")
	}
	// Without latency the same plan hits (created 50, ready 60 < 85).
	cfg.MeasureDecisionLatency = false
	cfg.ActuationLatency = 0
	res2, err := Run([]Query{{85, 5}}, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Hits[0] {
		t.Fatal("without latency the query should hit")
	}
}

func TestResultQuantiles(t *testing.T) {
	res := &Result{NumQueries: 4, RTs: []float64{1, 2, 3, 4}}
	if got := res.RTQuantile(0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("RT median = %g", got)
	}
	if got := res.RTAvg(); got != 2.5 {
		t.Fatalf("RTAvg = %g", got)
	}
}
